// Benchmarks regenerating the paper's evaluation. Each table/figure
// has a bench that reports the paper's metric via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness
// (cmd/paperbench prints the same data as formatted tables).
//
// Naming map:
//
//	BenchmarkTable1V*          -> Table 1 (per-version kernel metrics)
//	BenchmarkFigure2_*         -> Figure 2 (DMA bandwidth sweep)
//	BenchmarkFigure5_*         -> Figure 5 (double buffering)
//	BenchmarkFigure8/9_*       -> Figures 8-9 (dynamic STT replacement)
//	BenchmarkFigure6/7_*       -> Section 5 composition (native scan scaling)
//	BenchmarkAblation*         -> DESIGN.md design-choice ablations
//	BenchmarkBaseline*         -> comparator algorithms
package cellmatch_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/baseline"
	"cellmatch/internal/compose"
	"cellmatch/internal/core"
	"cellmatch/internal/dfa"
	"cellmatch/internal/eib"
	"cellmatch/internal/pipeline"
	"cellmatch/internal/sim"
	"cellmatch/internal/stt"
	"cellmatch/internal/tile"
	"cellmatch/internal/workload"
)

// paperSetup builds the shared ~1520-state dictionary and its encoded
// table once.
var paperSetup = sync.OnceValues(func() (*dfa.DFA, *stt.Table) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		panic(err)
	}
	d, err := dfa.FromPatterns(pats, alphabet.CaseFold32())
	if err != nil {
		panic(err)
	}
	tab, err := stt.Encode(d, 32, 0)
	if err != nil {
		panic(err)
	}
	return d, tab
})

func paperInput(n int, seed int64) []byte {
	d, _ := paperSetup()
	out := make([]byte, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = byte((s >> 33) % uint64(d.Syms))
	}
	return out
}

// --- Table 1 -----------------------------------------------------------

func benchTable1(b *testing.B, version int) {
	d, _ := paperSetup()
	tl, err := tile.New(d, tile.Config{Version: version})
	if err != nil {
		b.Fatal(err)
	}
	g := tl.BlockGranularity()
	n := 16384 / g * g
	block := paperInput(n, int64(version))
	var row tile.Table1Row
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, prof, err := tl.MatchBlockSim(block)
		if err != nil {
			b.Fatal(err)
		}
		_ = counts
		cpt := prof.CyclesPer(int64(n))
		row = tile.Table1Row{
			CyclesPerTransition: cpt,
			CPI:                 prof.CPI(),
			DualIssuePct:        prof.DualIssuePct(),
			StallPct:            prof.StallPct(),
		}
	}
	b.ReportMetric(row.CyclesPerTransition, "cycles/transition")
	b.ReportMetric(row.CPI, "CPI")
	b.ReportMetric(row.DualIssuePct, "dual%")
	b.ReportMetric(row.StallPct, "stall%")
	b.ReportMetric(float64(tl.LastProgram.RegsUsed), "registers")
	b.ReportMetric(float64(tl.LastProgram.Spills), "spills")
}

func BenchmarkTable1V1Scalar(b *testing.B)  { benchTable1(b, 1) }
func BenchmarkTable1V2SIMD(b *testing.B)    { benchTable1(b, 2) }
func BenchmarkTable1V3Unroll2(b *testing.B) { benchTable1(b, 3) }
func BenchmarkTable1V4Unroll3(b *testing.B) { benchTable1(b, 4) }
func BenchmarkTable1V5Unroll4(b *testing.B) { benchTable1(b, 5) }

// --- Figure 2 ----------------------------------------------------------

func benchFigure2(b *testing.B, spes int, block int64) {
	var agg float64
	for i := 0; i < b.N; i++ {
		agg = eib.AggregateBandwidth(spes, block, 50*sim.Microsecond)
	}
	b.ReportMetric(agg/1e9, "GB/s")
}

func BenchmarkFigure2_1SPE_64B(b *testing.B)  { benchFigure2(b, 1, 64) }
func BenchmarkFigure2_8SPE_64B(b *testing.B)  { benchFigure2(b, 8, 64) }
func BenchmarkFigure2_8SPE_128B(b *testing.B) { benchFigure2(b, 8, 128) }
func BenchmarkFigure2_8SPE_256B(b *testing.B) { benchFigure2(b, 8, 256) }
func BenchmarkFigure2_8SPE_512B(b *testing.B) { benchFigure2(b, 8, 512) }
func BenchmarkFigure2_4SPE_16KB(b *testing.B) { benchFigure2(b, 4, 16384) }
func BenchmarkFigure2_8SPE_16KB(b *testing.B) { benchFigure2(b, 8, 16384) }

// --- Figure 3 is pure arithmetic; asserted in localstore tests ---------

// --- Figure 5 ----------------------------------------------------------

func BenchmarkFigure5DoubleBuffer(b *testing.B) {
	var res pipeline.Figure5Result
	for i := 0; i < b.N; i++ {
		res = pipeline.RunDoubleBuffer(pipeline.Figure5Config{Blocks: 16})
	}
	b.ReportMetric(res.ComputePeriod.Micros(), "compute_us")
	b.ReportMetric(res.TransferTime.Micros(), "transfer_us")
	b.ReportMetric(res.SteadyUtilization*100, "utilization%")
	b.ReportMetric(res.ThroughputGbps, "Gbps")
}

// --- Figures 8 and 9 ----------------------------------------------------

func benchFigure9(b *testing.B, stts, spes int) {
	var res pipeline.ReplacementResult
	for i := 0; i < b.N; i++ {
		res = pipeline.RunReplacement(pipeline.ReplacementConfig{
			STTs: stts, SPEs: spes, Pairs: 4,
		})
	}
	b.ReportMetric(res.SystemGbps, "Gbps")
	b.ReportMetric(pipeline.PaperReplacementGbps(5.11, stts)*float64(spes), "paper_Gbps")
}

func BenchmarkFigure8Replacement3STT(b *testing.B) { benchFigure9(b, 3, 1) }
func BenchmarkFigure9_1SPE_2STT(b *testing.B)      { benchFigure9(b, 2, 1) }
func BenchmarkFigure9_1SPE_4STT(b *testing.B)      { benchFigure9(b, 4, 1) }
func BenchmarkFigure9_8SPE_2STT(b *testing.B)      { benchFigure9(b, 2, 8) }
func BenchmarkFigure9_8SPE_6STT(b *testing.B)      { benchFigure9(b, 6, 8) }

// --- Section 5 / Figures 6-7: composed native scanning ------------------

func benchComposition(b *testing.B, groups int) {
	dict := workload.SignatureDictionary()
	m, err := core.Compile(dict, core.Options{CaseFold: true, Groups: groups})
	if err != nil {
		b.Fatal(err)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 20, MatchEvery: 64 << 10, Dictionary: dict, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Groups1(b *testing.B) { benchComposition(b, 1) }
func BenchmarkFigure6Groups2(b *testing.B) { benchComposition(b, 2) }
func BenchmarkFigure7Groups4(b *testing.B) { benchComposition(b, 4) }
func BenchmarkFigure7Groups8(b *testing.B) { benchComposition(b, 8) }

// --- Parallel speculative scan engine ------------------------------------

// benchParallelSetup compiles the signature dictionary and builds a
// traffic buffer of the given size once per (size) configuration.
func benchParallelSetup(b *testing.B, size int) (*core.Matcher, []byte) {
	b.Helper()
	dict := workload.SignatureDictionary()
	// Filter pinned off: these benches measure the parallel engine's
	// fan-out itself; BenchmarkFilter* measures the skip-scan path.
	m, err := core.Compile(dict, core.Options{
		CaseFold: true,
		Engine:   core.EngineOptions{Filter: core.FilterOff},
	})
	if err != nil {
		b.Fatal(err)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: size, MatchEvery: 64 << 10, Dictionary: dict, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, data
}

// benchScanWorkers measures FindAllParallel at a worker count
// (workers == 0 benches the sequential FindAll baseline). The
// acceptance bar for the engine is >=2x over sequential at 4 workers
// on >=1 MiB inputs on a multicore host.
func benchScanWorkers(b *testing.B, workers, size int) {
	m, data := benchParallelSetup(b, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if workers == 0 {
			_, err = m.FindAll(data)
		} else {
			_, err = m.FindAllParallel(data, core.ParallelOptions{Workers: workers})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanSequential1MiB(b *testing.B)        { benchScanWorkers(b, 0, 1<<20) }
func BenchmarkScanParallel1Worker1MiB(b *testing.B)   { benchScanWorkers(b, 1, 1<<20) }
func BenchmarkScanParallel2Workers1MiB(b *testing.B)  { benchScanWorkers(b, 2, 1<<20) }
func BenchmarkScanParallel4Workers1MiB(b *testing.B)  { benchScanWorkers(b, 4, 1<<20) }
func BenchmarkScanParallel8Workers1MiB(b *testing.B)  { benchScanWorkers(b, 8, 1<<20) }
func BenchmarkScanSequential8MiB(b *testing.B)        { benchScanWorkers(b, 0, 8<<20) }
func BenchmarkScanParallel4Workers8MiB(b *testing.B)  { benchScanWorkers(b, 4, 8<<20) }
func BenchmarkScanParallel8Workers8MiB(b *testing.B)  { benchScanWorkers(b, 8, 8<<20) }
func BenchmarkScanSequential64KiB(b *testing.B)       { benchScanWorkers(b, 0, 64<<10) }
func BenchmarkScanParallel4Workers64KiB(b *testing.B) { benchScanWorkers(b, 4, 64<<10) }

func BenchmarkScanReader4Workers1MiB(b *testing.B) {
	m, data := benchParallelSetup(b, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ScanReader(bytes.NewReader(data), core.ParallelOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Compiled kernel engine ----------------------------------------------

// benchKernelSetup compiles the paper's NIDS-style dictionary (the
// 1520-state Figure 3 workload) with the given engine options and
// builds a traffic buffer with sparse planted matches.
func benchKernelSetup(b *testing.B, size int, engine core.EngineOptions) (*core.Matcher, []byte) {
	b.Helper()
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	engine.Filter = core.FilterOff // these benches measure the raw engines
	m, err := core.Compile(pats, core.Options{CaseFold: true, Engine: engine})
	if err != nil {
		b.Fatal(err)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: size, MatchEvery: 64 << 10, Dictionary: pats, Seed: 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, data
}

func benchKernelFindAll(b *testing.B, size int, engine core.EngineOptions, wantEngine string) {
	m, data := benchKernelSetup(b, size, engine)
	if got := m.Stats().Engine; got != wantEngine {
		b.Fatalf("engine = %q, want %q", got, wantEngine)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernel is the acceptance benchmark: the dense kernel in its
// default configuration versus BenchmarkSTTLookupSequential below
// (target: >= 1.5x on the same dictionary and input).
func BenchmarkKernel(b *testing.B) {
	benchKernelFindAll(b, 8<<20, core.EngineOptions{}, "kernel")
}

func BenchmarkKernelSequential(b *testing.B) {
	benchKernelFindAll(b, 8<<20, core.EngineOptions{InterleaveK: 1}, "kernel")
}

func BenchmarkKernelInterleavedK2(b *testing.B) {
	benchKernelFindAll(b, 8<<20, core.EngineOptions{InterleaveK: 2}, "kernel")
}

func BenchmarkKernelInterleavedK4(b *testing.B) {
	benchKernelFindAll(b, 8<<20, core.EngineOptions{InterleaveK: 4}, "kernel")
}

func BenchmarkKernelInterleavedK8(b *testing.B) {
	benchKernelFindAll(b, 8<<20, core.EngineOptions{InterleaveK: 8}, "kernel")
}

// BenchmarkSTTPathFindAll is the pre-kernel production path (alphabet
// reduce + dfa table walk) on the same workload.
func BenchmarkSTTPathFindAll(b *testing.B) {
	benchKernelFindAll(b, 8<<20, core.EngineOptions{DisableKernel: true}, "stt")
}

// --- Skip-scan front-end (BNDM window filter) ----------------------------

// benchFilterSetup compiles the canonical long-pattern signature
// workload (workload.LongPatternDictionary — the same 48 patterns,
// minimum length 16, that paperbench -filter gates in
// BENCH_filter.json) with the filter in the given mode over
// mostly-benign lowercase traffic — the regime where the
// reverse-suffix window filter skips most input bytes.
func benchFilterSetup(b *testing.B, size int, mode core.FilterMode) (*core.Matcher, []byte) {
	b.Helper()
	pats, err := workload.LongPatternDictionary(48, 16, 40, 5)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Compile(pats, core.Options{Engine: core.EngineOptions{Filter: mode}})
	if err != nil {
		b.Fatal(err)
	}
	if mode == core.FilterOn && !m.Stats().FilterEnabled {
		b.Fatal("filter not enabled")
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: size, MatchEvery: 64 << 10, Dictionary: pats, Seed: 44,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, data
}

// BenchmarkFilter is the acceptance benchmark for the skip-scan
// front-end: versus BenchmarkFilterOffKernel below on the same
// dictionary and traffic (target: >= 2x; BENCH_filter.json banks it).
func BenchmarkFilter(b *testing.B) {
	m, data := benchFilterSetup(b, 8<<20, core.FilterOn)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterOffKernel(b *testing.B) {
	m, data := benchFilterSetup(b, 8<<20, core.FilterOff)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterParallel4Workers(b *testing.B) {
	m, data := benchFilterSetup(b, 8<<20, core.FilterOn)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAllParallel(data, core.ParallelOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTTLookupSequential is the one-bounds-checked-lookup-per-
// byte stt.Table.Lookup scan the kernel replaces: alphabet reduction
// pass plus the pointer-encoded table walk, measured end to end from
// raw input like the kernel is.
func BenchmarkSTTLookupSequential(b *testing.B) {
	_, tab := paperSetup()
	red := alphabet.CaseFold32()
	// Identical traffic to benchKernelSetup: same dictionary planting,
	// same seed, so the two engines scan the same bytes.
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	raw, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 8 << 20, MatchEvery: 64 << 10, Dictionary: pats, Seed: 21,
	})
	if err != nil {
		b.Fatal(err)
	}
	scratch := make([]byte, len(raw))
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		red.Apply(scratch, raw)
		tile.ScalarCount(tab, scratch)
	}
}

// BenchmarkKernelParallel composes both engines: the chunked
// goroutine scan with the dense kernel underneath.
func BenchmarkKernelParallel4Workers(b *testing.B) {
	m, data := benchKernelSetup(b, 8<<20, core.EngineOptions{})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAllParallel(data, core.ParallelOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded multi-kernel engine ------------------------------------------

// benchShardedSetup compiles a dictionary roughly 4x the paper tile
// (6000 states) against a 256 KiB per-shard budget — the SPE
// local-store figure — so the dense kernel cannot fit and the ladder
// lands on the requested tier.
func benchShardedSetup(b *testing.B, size int, engine core.EngineOptions, wantEngine string) (*core.Matcher, []byte) {
	b.Helper()
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 6000, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Compile(pats, core.Options{CaseFold: true, Engine: engine})
	if err != nil {
		b.Fatal(err)
	}
	if got := m.Stats().Engine; got != wantEngine {
		b.Fatalf("engine = %q, want %q", got, wantEngine)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: size, MatchEvery: 64 << 10, Dictionary: pats, Seed: 22,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m, data
}

const benchShardBudget = 256 << 10

// BenchmarkShardedSequential is the acceptance benchmark: the
// chunk-interleaved sharded scan versus BenchmarkShardedSTTFallback on
// the same over-budget dictionary (target: >= 2x).
func BenchmarkShardedSequential(b *testing.B) {
	m, data := benchShardedSetup(b, 8<<20, core.EngineOptions{MaxTableBytes: benchShardBudget}, "sharded")
	b.ReportMetric(float64(m.Stats().Shards), "shards")
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedParallel4Workers fans the shard x chunk work items
// across 4 workers — the one-shard-set-per-worker schedule.
func BenchmarkShardedParallel4Workers(b *testing.B) {
	m, data := benchShardedSetup(b, 8<<20, core.EngineOptions{MaxTableBytes: benchShardBudget}, "sharded")
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAllParallel(data, core.ParallelOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedSTTFallback is the comparator: the same over-budget
// dictionary with sharding disabled, i.e. what every scan paid before
// the sharded tier existed.
func BenchmarkShardedSTTFallback(b *testing.B) {
	m, data := benchShardedSetup(b, 8<<20,
		core.EngineOptions{MaxTableBytes: benchShardBudget, MaxShards: -1}, "stt")
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FindAll(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Native production path ---------------------------------------------

func BenchmarkNativeScalar(b *testing.B) {
	_, tab := paperSetup()
	input := paperInput(1<<20, 9)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tile.ScalarCount(tab, input)
	}
}

func BenchmarkNativeInterleaved16(b *testing.B) {
	_, tab := paperSetup()
	input := paperInput(1<<20, 10)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tile.InterleavedCount16(tab, input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeInterleavedUnroll3(b *testing.B) {
	_, tab := paperSetup()
	n := (1 << 20) / 48 * 48
	input := paperInput(n, 11)
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tile.InterleavedCount16Unrolled(tab, input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamAPI(b *testing.B) {
	dict := workload.SignatureDictionary()
	m, err := core.Compile(dict, core.Options{CaseFold: true})
	if err != nil {
		b.Fatal(err)
	}
	data, _, _ := workload.Traffic(workload.TrafficConfig{Bytes: 1 << 18, Seed: 12})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := m.NewStream()
		for off := 0; off < len(data); off += 1500 { // MTU-sized chunks
			end := off + 1500
			if end > len(data) {
				end = len(data)
			}
			s.Write(data[off:end])
		}
		_ = s.Matches()
	}
}

// --- Ablations (DESIGN.md section 5) -------------------------------------

// Pointer-encoded states vs index-encoded states.
func BenchmarkAblationPointerEncoding(b *testing.B) {
	_, tab := paperSetup()
	input := paperInput(1<<19, 13)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tile.ScalarCount(tab, input)
	}
}

func BenchmarkAblationIndexEncoding(b *testing.B) {
	d, _ := paperSetup()
	input := paperInput(1<<19, 13)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tile.IndexedCount(d.Next, d.Accept, d.Syms, d.Start, input)
	}
}

// 32-symbol reduced alphabet vs full 256-symbol rows: same automaton,
// 8x the STT memory (which is the paper's entire motivation for the
// reduction: 4x more states per tile at width 32 vs 128/256).
func BenchmarkAblationAlphabet32(b *testing.B) {
	d, _ := paperSetup()
	tab, err := stt.Encode(d, 32, 0)
	if err != nil {
		b.Fatal(err)
	}
	input := paperInput(1<<19, 14)
	b.SetBytes(int64(len(input)))
	b.ReportMetric(float64(tab.SizeBytes())/1024, "stt_KB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tile.ScalarCount(tab, input)
	}
}

func BenchmarkAblationAlphabet256(b *testing.B) {
	d, _ := paperSetup()
	tab, err := stt.Encode(d, 256, 0)
	if err != nil {
		b.Fatal(err)
	}
	input := paperInput(1<<19, 14)
	b.SetBytes(int64(len(input)))
	b.ReportMetric(float64(tab.SizeBytes())/1024, "stt_KB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tile.ScalarCount(tab, input)
	}
}

// Unroll-factor sweep on the simulated SPU (the Table 1 crossover).
func BenchmarkAblationUnrollSweep(b *testing.B) {
	for v := 2; v <= 5; v++ {
		v := v
		b.Run(fmt.Sprintf("unroll%d", tileUnroll(v)), func(b *testing.B) {
			benchTable1(b, v)
		})
	}
}

func tileUnroll(version int) int {
	switch version {
	case 3:
		return 2
	case 4:
		return 3
	case 5:
		return 4
	default:
		return 1
	}
}

// Content independence: the DFA's cost on benign vs adversarial input.
func BenchmarkContentDependenceDFABenign(b *testing.B) {
	benchDFAContent(b, false)
}

func BenchmarkContentDependenceDFAAdversarial(b *testing.B) {
	benchDFAContent(b, true)
}

func benchDFAContent(b *testing.B, adversarial bool) {
	_, tab := paperSetup()
	var input []byte
	if adversarial {
		input = make([]byte, 1<<19)
		for i := range input {
			input[i] = 1
		}
	} else {
		input = paperInput(1<<19, 15)
	}
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tile.ScalarCount(tab, input)
	}
}

func BenchmarkContentDependenceBMHBenign(b *testing.B) {
	benchBMHContent(b, false)
}

func BenchmarkContentDependenceBMHAdversarial(b *testing.B) {
	benchBMHContent(b, true)
}

func benchBMHContent(b *testing.B, adversarial bool) {
	pattern := append([]byte{'b'}, make([]byte, 15)...)
	for i := 1; i < len(pattern); i++ {
		pattern[i] = 'a'
	}
	m, err := baseline.NewBMH(pattern)
	if err != nil {
		b.Fatal(err)
	}
	var input []byte
	if adversarial {
		input = workload.AdversarialBMH(pattern, 1<<19)
	} else {
		input, _, _ = workload.Traffic(workload.TrafficConfig{Bytes: 1 << 19, Seed: 16})
	}
	b.SetBytes(int64(len(input)))
	var cmp int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cmp = m.Count(input)
	}
	b.ReportMetric(float64(cmp)/float64(len(input)), "comparisons/byte")
}

// --- Baselines -----------------------------------------------------------

func BenchmarkBaselineKMP(b *testing.B) {
	pattern := []byte("XPCMDSHELL")
	m, err := baseline.NewKMP(pattern)
	if err != nil {
		b.Fatal(err)
	}
	input, _, _ := workload.Traffic(workload.TrafficConfig{Bytes: 1 << 19, Seed: 17})
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(input)
	}
}

func BenchmarkBaselineACMap(b *testing.B) {
	dict := workload.SignatureDictionary()
	m, err := baseline.NewACMap(dict)
	if err != nil {
		b.Fatal(err)
	}
	input, _, _ := workload.Traffic(workload.TrafficConfig{Bytes: 1 << 19, Seed: 18})
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Count(input)
	}
}

func BenchmarkBaselineBloomPrefilter(b *testing.B) {
	dict := workload.SignatureDictionary()
	fl, err := baseline.NewBloom(dict, 4, 14, 3)
	if err != nil {
		b.Fatal(err)
	}
	input, _, _ := workload.Traffic(workload.TrafficConfig{Bytes: 1 << 19, Seed: 19})
	b.SetBytes(int64(len(input)))
	var hits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits = len(fl.FilterPositions(input))
	}
	b.ReportMetric(float64(hits)/float64(len(input))*100, "passrate%")
}

// --- Dictionary partitioning at scale -------------------------------------

func BenchmarkCompileLargeDictionary(b *testing.B) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 6000, Seed: 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := compose.NewSystem(pats, compose.Config{CaseFold: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = sys
	}
}
