// Package cellmatch is a DFA-based multi-pattern string-matching
// library reproducing "Peak-Performance DFA-based String Matching on
// the Cell Processor" (Scarpazza, Villa, Petrini — IPPS 2007).
//
// The library compiles dictionaries of exact strings (or regular
// expressions) into alphabet-reduced, pointer-encoded Aho-Corasick
// state transition tables — the paper's DFA tile — and scans data with
// content-independent cost. By default scanning runs on the dense
// compiled kernel (see EngineOptions): cache-resident flattened
// tables with the alphabet reduction baked in, scanned single-stream
// or by a K-way interleaved loop, the host-CPU analog of the paper's
// multi-buffered SPE streams. Alongside the production matcher it
// ships the paper's full performance apparatus: an instruction-level
// SPU simulator, a Cell memory-system model, and the schedules that
// regenerate every table and figure of the paper's evaluation (see
// EXPERIMENTS.md).
//
// Quick start:
//
//	m, err := cellmatch.CompileStrings([]string{"virus", "worm"},
//		cellmatch.Options{CaseFold: true})
//	if err != nil { ... }
//	matches, err := m.FindAll(packet)
//
// Incremental scanning:
//
//	s := m.NewStream()
//	s.Write(chunk1)
//	s.Write(chunk2)
//	hits := s.Matches()
//
// Parallel scanning on the host CPU — the paper's Figure 6a tiling
// mapped onto goroutines. Input is split into chunks, each scanned
// from a speculative root state, and chunk boundaries are reconciled
// by re-scanning an overlap window of MaxPatternLen-1 bytes, so the
// results are byte-for-byte identical to FindAll:
//
//	matches, err := m.FindAllParallel(data, cellmatch.ParallelOptions{Workers: 8})
//
// Batched streaming from sockets or files too large to buffer
// (memory stays O(Workers x ChunkBytes)):
//
//	matches, err := m.ScanReader(conn, cellmatch.ParallelOptions{})
//
// Performance estimation on simulated Cell hardware:
//
//	est, err := m.EstimateCell(cellmatch.DefaultBlade(), 1<<24)
//	fmt.Printf("%.2f Gbps on %d SPEs\n", est.SimulatedGbps, est.TilesUsed)
package cellmatch

import (
	"cellmatch/internal/cell"
	"cellmatch/internal/core"
	"cellmatch/internal/parallel"
	"cellmatch/internal/registry"
	"cellmatch/internal/server"
	"cellmatch/internal/tile"
)

// Matcher is a compiled dictionary; see core.Matcher.
type Matcher = core.Matcher

// Options configure compilation; see core.Options.
type Options = core.Options

// Match is one dictionary hit.
type Match = core.Match

// Stream is an incremental scanner.
type Stream = core.Stream

// ParallelOptions tune Matcher.FindAllParallel and Matcher.ScanReader;
// see core.ParallelOptions. The zero value uses one worker per CPU
// and 64 KiB chunks.
type ParallelOptions = core.ParallelOptions

// EngineOptions (the Engine field of Options) select the scan engine
// behind FindAll, FindAllParallel, Stream, and ScanReader.
//
// The default is the dense compiled kernel: each series slot's
// automaton is flattened into a cache-line-aligned table of 4-byte
// entries (row width = the reduced alphabet rounded to a power of
// two) with the byte→class alphabet reduction baked into a 256-entry
// map, so a scan is a single pass over the raw input — one indexed
// load, one AND, and one ADD per byte, with match metadata packed
// into entry flag bits exactly like the paper's pointer-encoded STT
// tile. Large inputs are scanned by a K-way interleaved loop: the
// input is split into K chunks with MaxPatternLen-1 overlap (the
// paper's Figure 6a input portions mapped onto in-loop streams
// instead of SPEs) and K independent cursors advance per iteration,
// hiding the dependent-load latency of the cache-resident table.
//
// Dense rows cost (row width × 4) bytes per state, so a dictionary's
// tables can outgrow the budget (EngineOptions.MaxTableBytes, default
// 8 MiB); the matcher then tries the compressed-row tier
// (EngineOptions.Compressed): bitmap-indexed rows that store only the
// transitions differing from a per-state default chain, shrinking the
// footprint by roughly the alphabet width so much larger dictionaries
// stay cache-resident, at a few extra ops per byte. When even the
// compressed rows overflow (or the mode is CompressedOff), the
// matcher shards the dictionary into up to MaxShards sub-dictionaries
// whose kernels each fit the budget — the paper's answer to
// dictionaries outgrowing one SPE's local store — scanning every
// shard against the input and merging the match streams into the
// unsharded order; only when even sharding cannot fit does it fall
// back to the original alphabet-reduce + stt/dfa lookup path.
// Matcher.Stats().Engine reports which tier is live ("kernel",
// "compressed", "sharded", or "stt"), with KernelTableBytes,
// CompressedTableBytes, Shards, MaxShardTableBytes, and the
// TableFitsL1/TableFitsL2 residency flags alongside.
//
// Ahead of all these tiers sits the optional skip-scan front-end
// (EngineOptions.Filter, internal/filter): a BNDM-style reverse-suffix
// window filter that skips most input bytes and hands only candidate
// windows to the verifier, making throughput scale with skip distance
// instead of input length. FilterAuto (the default) enables it when
// the dictionary qualifies; Stats().FilterEnabled, MinPatternLen, and
// WindowsSkipped report it. All configurations are byte-for-byte
// identical in output (FuzzKernelEquivalence, FuzzShardEquivalence,
// and FuzzFilterEquivalence assert this), so the knobs are purely
// performance/memory trades.
type EngineOptions = core.EngineOptions

// FilterMode is the EngineOptions.Filter policy for the skip-scan
// front-end: FilterAuto (default; on when the dictionary qualifies),
// FilterOn (forced when legal), FilterOff.
type FilterMode = core.FilterMode

// Filter policies; see FilterMode.
const (
	FilterAuto = core.FilterAuto
	FilterOn   = core.FilterOn
	FilterOff  = core.FilterOff
)

// CompressedMode is the EngineOptions.Compressed policy for the
// compressed-row tier: CompressedAuto (default; selected when the
// dense table overflows the budget and the compressed rows fit L2),
// CompressedOn (forced when it compiles within MaxTableBytes),
// CompressedOff.
type CompressedMode = core.CompressedMode

// Compressed-row policies; see CompressedMode.
const (
	CompressedAuto = core.CompressedAuto
	CompressedOn   = core.CompressedOn
	CompressedOff  = core.CompressedOff
)

// RegexSet matches whole inputs against regular expressions (the
// unbounded-repetition surface; see CompileRegexSearch for searching).
type RegexSet = core.RegexSet

// Pool is a persistent shared worker pool for scan jobs: the
// long-running-server mode of the parallel engine. Set
// ParallelOptions.Pool to scan on it instead of spawning goroutines
// per call; many concurrent scans share its fixed worker set. Create
// with NewPool, release with Close.
type Pool = parallel.Pool

// Registry manages the live dictionary of a long-running service: it
// publishes one *Matcher behind an atomic pointer and hot-swaps it
// RCU-style, so reloads never stall or tear in-flight scans. See
// internal/registry.
type Registry = registry.Registry

// RegistryEntry is one published dictionary: matcher + provenance
// (source, generation, load time).
type RegistryEntry = registry.Entry

// Loader produces a fresh matcher from a configured source; see
// ArtifactLoader and DictLoader.
type Loader = registry.Loader

// Namespace is a fleet of named Registries — one independent
// hot-swappable dictionary per tenant — served by a single Server
// under /t/{tenant}/... paths. See internal/registry.
type Namespace = registry.Namespace

// DefaultTenant is the tenant name the bare (un-prefixed) server
// paths resolve to.
const DefaultTenant = registry.DefaultTenant

// Server is the HTTP matching service behind cmd/cellmatchd: /scan,
// /scan/stream, /scan/batch (coalesced kernel passes), /reload (hot
// swap), /stats, /metrics (Prometheus text), with every endpoint also
// mounted per tenant under /t/{tenant}/... when serving a Namespace.
// See internal/server.
type Server = server.Server

// ServerConfig tunes the serving layer; the zero value plus a
// Registry (single dictionary) or a Namespace (multi-tenant) is
// production-ready. MaxInflight/MaxQueuedBytes bound admitted scan
// work — excess requests are shed with 429 + Retry-After.
type ServerConfig = server.Config

// ScanResponse is the serving layer's reply shape for scan endpoints.
type ScanResponse = server.ScanResponse

// NewPool starts a shared scan pool of workers goroutines (<=0 means
// one per CPU).
func NewPool(workers int) *Pool { return parallel.NewPool(workers) }

// NewRegistry creates a registry bound to a loader; call Reload to
// publish the first dictionary.
func NewRegistry(source string, load Loader) *Registry { return registry.New(source, load) }

// NewMatcherRegistry publishes an already-compiled matcher as
// generation 1.
func NewMatcherRegistry(m *Matcher, source string) *Registry {
	return registry.NewWithMatcher(m, source)
}

// NewNamespace creates an empty tenant namespace; populate it with
// Set(tenant, registry) and serve it via ServerConfig.Namespace.
func NewNamespace() *Namespace { return registry.NewNamespace() }

// ArtifactLoader loads a compiled Save/Load artifact from path.
func ArtifactLoader(path string) Loader { return registry.ArtifactLoader(path) }

// DictLoader compiles a plain-text pattern file (one pattern per
// line, '#' comments) with the given options.
func DictLoader(path string, opts Options) Loader { return registry.DictLoader(path, opts) }

// NewServer builds the HTTP matching service over a registry; mount
// its Handler() on any http.Server and Close it on shutdown.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Blade describes simulated Cell hardware.
type Blade = cell.Blade

// Estimate is a predicted deployment throughput.
type Estimate = cell.Estimate

// Table1Row is one measured column of the paper's Table 1.
type Table1Row = tile.Table1Row

// Compile builds a matcher from byte-string patterns.
func Compile(patterns [][]byte, opts Options) (*Matcher, error) {
	return core.Compile(patterns, opts)
}

// CompileStrings builds a matcher from string patterns.
func CompileStrings(patterns []string, opts Options) (*Matcher, error) {
	return core.CompileStrings(patterns, opts)
}

// CompileRegexes builds a whole-input regular-expression set.
func CompileRegexes(exprs []string, caseFold bool) (*RegexSet, error) {
	return core.CompileRegexes(exprs, caseFold)
}

// CompileRegexSearch builds a full search Matcher from a dictionary of
// regular expressions: a hit is reported at every offset where some
// substring ending there matches an expression — the same
// (End, Pattern) contract as literal dictionaries, so the matcher
// scans on the dense kernel, parallel/stream engines, serves through
// cellmatchd, and persists as an artifact unchanged. Expressions must
// not match the empty string and need a bounded maximum match length
// (no '*', '+', or '{m,}' — use '{m,n}', or RegexSet for whole-input
// matching). The skip-scan filter and sharded tier are literal-only
// and are bypassed. Matcher.IsRegex reports the dictionary kind;
// Pattern(i) returns the expression source.
func CompileRegexSearch(exprs []string, opts Options) (*Matcher, error) {
	return core.CompileRegexSearch(exprs, opts)
}

// RegexDictLoader compiles a plain-text regular-expression file (one
// expression per line, '#' comments) into a search matcher.
func RegexDictLoader(path string, opts Options) Loader { return registry.RegexLoader(path, opts) }

// DefaultBlade is one Cell processor (8 SPEs).
func DefaultBlade() Blade { return cell.DefaultBlade() }

// DualBlade is the paper's two-processor blade (16 SPEs).
func DualBlade() Blade { return cell.DualBlade() }

// MinimumSPEsFor returns the tile count needed to filter a link of
// linkGbps at perTileGbps each (the paper: 2 SPEs for 10 Gbps).
func MinimumSPEsFor(linkGbps, perTileGbps float64) (int, error) {
	return cell.MinimumSPEsFor(linkGbps, perTileGbps)
}
