package cellmatch_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cellmatch"
)

func TestPublicAPIQuickstart(t *testing.T) {
	m, err := cellmatch.CompileStrings([]string{"virus", "worm"},
		cellmatch.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.FindAll([]byte("a VIRUS and a worm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %v", ms)
	}
}

func TestPublicAPIStream(t *testing.T) {
	m, err := cellmatch.CompileStrings([]string{"split"}, cellmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewStream()
	s.Write([]byte("spl"))
	s.Write([]byte("it!"))
	if got := s.Matches(); len(got) != 1 || got[0].End != 5 {
		t.Fatalf("stream matches = %v", got)
	}
}

func TestPublicAPIParallel(t *testing.T) {
	m, err := cellmatch.CompileStrings([]string{"virus", "worm", "rm,"},
		cellmatch.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("a VIRUS and a worm, then calm. ", 2000))
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.FindAllParallel(data, cellmatch.ParallelOptions{Workers: 4, ChunkBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel %d matches, sequential %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: parallel %+v, sequential %+v", i, got[i], want[i])
		}
	}
	streamed, err := m.ScanReader(bytes.NewReader(data), cellmatch.ParallelOptions{ChunkBytes: 900})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want) {
		t.Fatalf("ScanReader %d matches, FindAll %d", len(streamed), len(want))
	}
}

func TestPublicAPIEngineOptions(t *testing.T) {
	dict := []string{"virus", "worm"}
	data := []byte("a virus in a WORM in a virus")
	kernelM, err := cellmatch.CompileStrings(dict, cellmatch.Options{
		CaseFold: true,
		Engine:   cellmatch.EngineOptions{InterleaveK: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sttM, err := cellmatch.CompileStrings(dict, cellmatch.Options{
		CaseFold: true,
		Engine:   cellmatch.EngineOptions{DisableKernel: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ks, ss := kernelM.Stats(), sttM.Stats()
	if ks.Engine != "stride2" || ss.Engine != "stt" {
		t.Fatalf("engines = %q / %q", ks.Engine, ss.Engine)
	}
	if ks.Stride != 2 || ks.PairTableBytes <= 0 {
		t.Fatalf("stride-2 stats incomplete: %+v", ks)
	}
	if ks.KernelTableBytes <= 0 || !ks.TableFitsL2 || ks.AlphabetUsed < 2 {
		t.Fatalf("kernel stats incomplete: %+v", ks)
	}
	want, err := sttM.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kernelM.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 3 {
		t.Fatalf("kernel %d matches, stt %d, want 3", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: kernel %+v, stt %+v", i, got[i], want[i])
		}
	}
}

func TestPublicAPIBlades(t *testing.T) {
	if cellmatch.DefaultBlade().SPEs() != 8 || cellmatch.DualBlade().SPEs() != 16 {
		t.Fatal("blade shapes")
	}
	n, err := cellmatch.MinimumSPEsFor(10, 5.11)
	if err != nil || n != 2 {
		t.Fatalf("min SPEs = %d (%v)", n, err)
	}
}

func TestPublicAPIRegex(t *testing.T) {
	rs, err := cellmatch.CompileRegexes([]string{"a+b"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.MatchWhole([]byte("aaab")); len(got) != 1 {
		t.Fatalf("regex match = %v", got)
	}
}

func TestPublicAPIServing(t *testing.T) {
	m, err := cellmatch.CompileStrings([]string{"virus"}, cellmatch.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := cellmatch.NewPool(2)
	defer pool.Close()
	got, err := m.FindAllParallel([]byte(strings.Repeat("a VIRUS here ", 500)),
		cellmatch.ParallelOptions{ChunkBytes: 256, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("pool scan found %d, want 500", len(got))
	}

	reg := cellmatch.NewMatcherRegistry(m, "inline")
	srv, err := cellmatch.NewServer(cellmatch.ServerConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/scan", "application/octet-stream",
		strings.NewReader("one virus"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr cellmatch.ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Count != 1 || sr.Generation != 1 {
		t.Fatalf("served scan = %+v", sr)
	}
}
