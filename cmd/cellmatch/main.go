// Command cellmatch compiles a dictionary and scans input with the
// paper's DFA-tile machinery.
//
//	cellmatch -dict signatures.txt -in traffic.bin
//	cellmatch -patterns "virus,worm" -casefold -in - < data
//	cellmatch -dict signatures.txt -in traffic.bin -count -stats -estimate
//	cellmatch -dict signatures.txt -in traffic.bin -parallel 8
//
// The dictionary file holds one pattern per line; blank lines and
// lines starting with '#' are ignored.
//
// With -regex the dictionary entries are regular expressions (bounded
// repetition only — no '*', '+', or '{m,}') compiled into one search
// automaton with the same per-occurrence reporting as literal
// dictionaries:
//
//	cellmatch -regex -patterns 'err(or)?,[0-9]{3}' -in access.log
//
// Match starts are unknown for regex dictionaries (lengths vary per
// occurrence), so the first output column is -1 and the pattern column
// shows the expression source.
//
// With -parallel N the input is scanned by the chunked speculative
// engine on N workers (N < 0 means one per CPU), streaming the input
// in batches instead of buffering it, with output identical to the
// sequential scan.
//
// -filter selects the skip-scan front-end (default auto): "on" forces
// the BNDM-style window filter ahead of the verifier engine, "off"
// scans every byte. Output is identical either way; -stats reports
// whether the filter is live and its window.
//
// -stride selects the kernel transition stride (default auto): "2"
// builds the class-pair tables and consumes two bytes per step, "1"
// pins the 1-byte loops, "auto" builds pair tables only when they are
// small enough to stay cache-resident. Output is identical either
// way; -stats reports the live stride and pair-table footprint.
//
// -compressed selects the compressed-row tier (default auto): "on"
// forces the bitmap-indexed compressed tables, "off" disables the
// rung, "auto" engages it when the dense table overflows the budget
// but the compressed rows stay cache-resident. Output is identical
// either way; -stats reports the compressed footprint when live.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cellmatch/internal/cell"
	"cellmatch/internal/core"
	"cellmatch/internal/registry"
)

func main() {
	var (
		dictPath = flag.String("dict", "", "dictionary file (one pattern per line)")
		patterns = flag.String("patterns", "", "comma-separated inline patterns")
		inPath   = flag.String("in", "-", "input file ('-' = stdin)")
		caseFold = flag.Bool("casefold", false, "case-insensitive matching")
		regex    = flag.Bool("regex", false, "dictionary entries are regular expressions (bounded repetition only)")
		filterMd = flag.String("filter", "auto", "skip-scan front-end: auto, on, or off")
		strideMd = flag.String("stride", "auto", "kernel transition stride: auto, 1, or 2")
		compMd   = flag.String("compressed", "auto", "compressed-row tier: auto, on, or off")
		groups   = flag.Int("groups", 1, "parallel tile groups")
		parallel = flag.Int("parallel", 0, "scan with N parallel workers (0 = sequential, <0 = one per CPU)")
		chunk    = flag.Int("chunk", 0, "parallel chunk size in bytes (0 = 64 KiB)")
		count    = flag.Bool("count", false, "print only the match count")
		quiet    = flag.Bool("quiet", false, "exit status only (0 = match found)")
		stats    = flag.Bool("stats", false, "print compiled-dictionary statistics")
		estimate = flag.Bool("estimate", false, "print simulated Cell deployment estimate")
		cworkers = flag.Int("compileworkers", 0, "dictionary compile parallelism (0 = one per CPU, 1 = sequential)")
	)
	flag.Parse()

	dict, err := loadDictionary(*dictPath, *patterns)
	if err != nil {
		fail(err)
	}
	fmode, err := core.ParseFilterMode(*filterMd)
	if err != nil {
		fail(err)
	}
	stride, err := core.ParseStride(*strideMd)
	if err != nil {
		fail(err)
	}
	cmode, err := core.ParseCompressed(*compMd)
	if err != nil {
		fail(err)
	}
	opts := core.Options{
		CaseFold: *caseFold, Groups: *groups, CompileWorkers: *cworkers,
		Engine: core.EngineOptions{Filter: fmode, Stride: stride, Compressed: cmode},
	}
	var m *core.Matcher
	if *regex {
		exprs := make([]string, len(dict))
		for i, p := range dict {
			exprs[i] = string(p)
		}
		m, err = core.CompileRegexSearch(exprs, opts)
	} else {
		m, err = core.Compile(dict, opts)
	}
	if err != nil {
		fail(err)
	}
	if *stats {
		s := m.Stats()
		fmt.Printf("patterns=%d states=%d stt_bytes=%d groups=%d series=%d tiles=%d alphabet=%d\n",
			s.Patterns, s.States, s.STTBytes, s.Groups, s.SeriesDepth, s.TilesRequired, s.AlphabetUsed)
		fmt.Printf("engine=%s kernel_table_bytes=%d budget=%d fits_l1=%v fits_l2=%v\n",
			s.Engine, s.KernelTableBytes, s.DenseTableBudget, s.TableFitsL1, s.TableFitsL2)
		fmt.Printf("filter=%v window=%d min_pattern_len=%d\n",
			s.FilterEnabled, s.FilterWindow, s.MinPatternLen)
		fmt.Printf("stride=%d pair_table_bytes=%d compressed_table_bytes=%d\n",
			s.Stride, s.PairTableBytes, s.CompressedTableBytes)
	}
	if *estimate {
		est, err := m.EstimateCell(cell.DefaultBlade(), 16*1024*1024)
		if err != nil {
			fail(err)
		}
		fmt.Printf("per_tile=%.2fGbps analytic=%.2fGbps simulated=%.2fGbps tiles=%d utilization=%.1f%%\n",
			est.PerTileGbps, est.AnalyticGbps, est.SimulatedGbps, est.TilesUsed, est.Utilization*100)
	}

	matches, err := scanInput(m, *inPath, *parallel, *chunk)
	if err != nil {
		fail(err)
	}
	switch {
	case *quiet:
		if len(matches) > 0 {
			os.Exit(0)
		}
		os.Exit(1)
	case *count:
		fmt.Println(len(matches))
	default:
		for _, hit := range matches {
			p := m.Pattern(hit.Pattern)
			start := hit.End - len(p)
			if m.IsRegex() {
				start = -1 // match length varies; only the end is known
			}
			fmt.Printf("%d\t%d\t%q\n", start, hit.Pattern, p)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cellmatch:", err)
	os.Exit(2)
}

func loadDictionary(path, inline string) ([][]byte, error) {
	var out [][]byte
	if inline != "" {
		for _, p := range strings.Split(inline, ",") {
			if p != "" {
				out = append(out, []byte(p))
			}
		}
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Same parser the daemon's registry uses, so a dictionary file
		// that serves also scans (and vice versa).
		pats, err := registry.ParsePatterns(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, pats...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns: use -dict or -patterns")
	}
	return out, nil
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// scanInput runs the matcher over the input. workers == 0 buffers the
// whole input and scans sequentially; otherwise the input is streamed
// through the parallel engine (workers < 0 = one worker per CPU).
func scanInput(m *core.Matcher, path string, workers, chunk int) ([]core.Match, error) {
	if workers == 0 {
		data, err := readInput(path)
		if err != nil {
			return nil, err
		}
		return m.FindAll(data)
	}
	if workers < 0 {
		workers = 0 // ParallelOptions default: GOMAXPROCS
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return m.ScanReader(r, core.ParallelOptions{Workers: workers, ChunkBytes: chunk})
}
