package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDictionaryInline(t *testing.T) {
	d, err := loadDictionary("", "virus,worm,")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || string(d[0]) != "virus" || string(d[1]) != "worm" {
		t.Fatalf("dict = %q", d)
	}
}

func TestLoadDictionaryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sigs.txt")
	content := "# comment\nvirus\n\n  worm  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDictionary(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || string(d[0]) != "virus" || string(d[1]) != "worm" {
		t.Fatalf("dict = %q", d)
	}
}

func TestLoadDictionaryCombined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sigs.txt")
	if err := os.WriteFile(path, []byte("filepat\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDictionary(path, "inlinepat")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Fatalf("dict = %q", d)
	}
}

func TestLoadDictionaryErrors(t *testing.T) {
	if _, err := loadDictionary("", ""); err == nil {
		t.Fatal("empty dictionary accepted")
	}
	if _, err := loadDictionary("/nonexistent/file", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadInputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.bin")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := readInput(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("read %q (%v)", data, err)
	}
	if _, err := readInput("/nonexistent/file"); err == nil {
		t.Fatal("missing input accepted")
	}
}
