package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cellmatch/internal/core"
)

func TestLoadDictionaryInline(t *testing.T) {
	d, err := loadDictionary("", "virus,worm,")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || string(d[0]) != "virus" || string(d[1]) != "worm" {
		t.Fatalf("dict = %q", d)
	}
}

func TestLoadDictionaryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sigs.txt")
	content := "# comment\nvirus\n\n  worm  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDictionary(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || string(d[0]) != "virus" || string(d[1]) != "worm" {
		t.Fatalf("dict = %q", d)
	}
}

func TestLoadDictionaryCombined(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sigs.txt")
	if err := os.WriteFile(path, []byte("filepat\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDictionary(path, "inlinepat")
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Fatalf("dict = %q", d)
	}
}

func TestLoadDictionaryErrors(t *testing.T) {
	if _, err := loadDictionary("", ""); err == nil {
		t.Fatal("empty dictionary accepted")
	}
	if _, err := loadDictionary("/nonexistent/file", ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

// The filter flag must not change scan results, only the engine path.
// (The flag vocabulary itself is core.ParseFilterMode, tested in core.)
func TestScanFilterOnOffIdentical(t *testing.T) {
	dict := [][]byte{[]byte("abracadab"), []byte("cadabraca")}
	data := []byte("abracadabra cadabraca abracadab")
	dir := t.TempDir()
	in := filepath.Join(dir, "traffic.bin")
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var results [][]core.Match
	for _, mode := range []core.FilterMode{core.FilterOn, core.FilterOff} {
		m, err := core.Compile(dict, core.Options{Engine: core.EngineOptions{Filter: mode}})
		if err != nil {
			t.Fatal(err)
		}
		ms, err := scanInput(m, in, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, ms)
	}
	if len(results[0]) == 0 || len(results[0]) != len(results[1]) {
		t.Fatalf("filter on/off differ: %d vs %d", len(results[0]), len(results[1]))
	}
	for i := range results[0] {
		if results[0][i] != results[1][i] {
			t.Fatalf("match %d: %+v vs %+v", i, results[0][i], results[1][i])
		}
	}
}

func TestScanInputSequentialVsParallel(t *testing.T) {
	m, err := core.CompileStrings([]string{"virus", "worm"}, core.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "traffic.bin")
	data := bytes.Repeat([]byte("a VIRUS and a worm passed by; "), 5000)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, err := scanInput(m, path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("sequential scan found nothing")
	}
	for _, tc := range []struct{ workers, chunk int }{
		{4, 0}, {2, 1024}, {-1, 0}, {1, 7},
	} {
		par, err := scanInput(m, path, tc.workers, tc.chunk)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d chunk=%d: %d matches, want %d",
				tc.workers, tc.chunk, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d chunk=%d: match %d = %+v, want %+v",
					tc.workers, tc.chunk, i, par[i], seq[i])
			}
		}
	}
	if _, err := scanInput(m, "/nonexistent/file", 4, 0); err == nil {
		t.Fatal("missing parallel input accepted")
	}
}

// The -regex path: a dictionary file of expressions compiles through
// core.CompileRegexSearch and scans with the same engines as literals.
func TestScanRegexDictionary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exprs.txt")
	if err := os.WriteFile(path, []byte("# exprs\nerr(or)?\n[0-9]{3}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dict, err := loadDictionary(path, "")
	if err != nil {
		t.Fatal(err)
	}
	exprs := make([]string, len(dict))
	for i, p := range dict {
		exprs[i] = string(p)
	}
	m, err := core.CompileRegexSearch(exprs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsRegex() {
		t.Fatal("matcher not flagged regex")
	}
	in := filepath.Join(dir, "traffic.bin")
	data := bytes.Repeat([]byte("an error code 404 appeared; "), 2000)
	if err := os.WriteFile(in, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, err := scanInput(m, in, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("regex scan found nothing")
	}
	// Parallel and streamed scans agree match-for-match (speculation is
	// exact because bounded expressions cap the match length).
	par, err := scanInput(m, in, 4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d matches, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i] != seq[i] {
			t.Fatalf("match %d: parallel %+v, sequential %+v", i, par[i], seq[i])
		}
	}
	// Unbounded expressions must be rejected with a pointer at the
	// offending construct.
	if _, err := core.CompileRegexSearch([]string{"a*"}, core.Options{}); err == nil {
		t.Fatal("unbounded expression accepted")
	}
}

func TestReadInputFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "in.bin")
	if err := os.WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := readInput(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("read %q (%v)", data, err)
	}
	if _, err := readInput("/nonexistent/file"); err == nil {
		t.Fatal("missing input accepted")
	}
}
