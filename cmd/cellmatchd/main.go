// Command cellmatchd serves the matching engine over HTTP: a
// long-running daemon that keeps the compiled kernel tables hot,
// scans every request on one shared worker pool, coalesces small
// payloads into batched kernel passes, and hot-swaps dictionaries
// without dropping traffic.
//
//	cellmatchd -dict signatures.txt -casefold
//	cellmatchd -regex expressions.txt                  # regex dictionary
//	cellmatchd -artifact compiled.cms -listen :8472
//	cellmatchd -artifact compiled.cms -watch           # reload on file change
//
// Endpoints (see internal/server):
//
//	POST /scan          scan the request body; ?mode=pool|seq|adhoc,
//	                    ?workers=N ?chunk=N ?count=1
//	POST /scan/stream   scan a chunked upload without buffering it
//	POST /scan/batch    coalesce small payloads into one kernel pass
//	POST /reload        swap the dictionary (?path=...
//	                    ?format=artifact|dict|regex)
//	GET  /stats         dictionary shape + request/byte/match counters
//	GET  /healthz       liveness
//
// A dictionary file holds one pattern per line ('#' comments); with
// -regex the lines are regular expressions (bounded repetition only)
// compiled into one search automaton — see core.CompileRegexSearch. An
// artifact is the output of Matcher.Save (cellmatch's compiled form),
// which loads without re-running Aho-Corasick construction; regex
// artifacts round-trip too.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
	"cellmatch/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		log.Fatal("cellmatchd: ", err)
	}
}

// run parses args, loads the initial dictionary, and serves until ctx
// is cancelled. It prints the bound address once listening (tests bind
// :0 and read it back).
func run(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("cellmatchd", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		listen        = fs.String("listen", ":8472", "HTTP listen address")
		artifact      = fs.String("artifact", "", "compiled artifact (Matcher.Save output)")
		dict          = fs.String("dict", "", "pattern file (one per line, '#' comments)")
		regex         = fs.String("regex", "", "regular-expression file (one per line, '#' comments)")
		caseFold      = fs.Bool("casefold", false, "case-insensitive matching (with -dict/-regex)")
		filterMd      = fs.String("filter", "auto", "skip-scan front-end with -dict: auto, on, or off")
		workers       = fs.Int("workers", 0, "shared scan pool size (0 = one per CPU)")
		chunk         = fs.Int("chunk", 0, "scan chunk size in bytes (0 = 64 KiB)")
		maxBody       = fs.Int64("max-body", 0, "request body cap in bytes (0 = 64 MiB)")
		batchMax      = fs.Int("batch-max", 0, "max payloads per coalesced batch (0 = 64)")
		batchLinger   = fs.Duration("batch-linger", 0, "batch collection window (0 = 2ms)")
		watch         = fs.Bool("watch", false, "poll the dictionary source and hot-reload on change")
		watchInterval = fs.Duration("watch-interval", 2*time.Second, "source poll interval with -watch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmode, err := core.ParseFilterMode(*filterMd)
	if err != nil {
		return fmt.Errorf("-filter: %w", err)
	}
	reg, err := buildRegistry(*artifact, *dict, *regex, core.Options{
		CaseFold: *caseFold,
		Engine:   core.EngineOptions{Filter: fmode},
	})
	if err != nil {
		return err
	}
	entry, err := reg.Reload()
	if err != nil {
		return err
	}
	st := entry.Matcher.Stats()
	fmt.Fprintf(w, "cellmatchd: loaded %s: %d patterns, %d states, engine=%s, filter=%v\n",
		entry.Source, st.Patterns, st.States, st.Engine, st.FilterEnabled)

	srv, err := server.New(server.Config{
		Registry:     reg,
		Workers:      *workers,
		ChunkBytes:   *chunk,
		MaxBodyBytes: *maxBody,
		BatchMax:     *batchMax,
		BatchLinger:  *batchLinger,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	if *watch {
		go reg.Watch(ctx, *watchInterval, func(e *registry.Entry, err error) {
			if err != nil {
				fmt.Fprintf(w, "cellmatchd: reload failed (keeping generation %d): %v\n",
					reg.Current().Generation, err)
				return
			}
			fmt.Fprintf(w, "cellmatchd: hot-swapped to generation %d (%d patterns)\n",
				e.Generation, e.Matcher.Stats().Patterns)
		})
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cellmatchd: listening on %s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintln(w, "cellmatchd: drained, bye")
	return nil
}

// buildRegistry wires the dictionary source from the flags: exactly
// one of -artifact, -dict, or -regex.
func buildRegistry(artifact, dict, regex string, opts core.Options) (*registry.Registry, error) {
	set := 0
	for _, s := range []string{artifact, dict, regex} {
		if s != "" {
			set++
		}
	}
	switch {
	case set > 1:
		return nil, fmt.Errorf("use exactly one of -artifact, -dict, or -regex")
	case artifact != "":
		return registry.New(artifact, registry.ArtifactLoader(artifact)), nil
	case dict != "":
		return registry.New(dict, registry.DictLoader(dict, opts)), nil
	case regex != "":
		return registry.New(regex, registry.RegexLoader(regex, opts)), nil
	default:
		return nil, fmt.Errorf("a dictionary is required: -artifact, -dict, or -regex")
	}
}
