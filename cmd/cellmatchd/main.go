// Command cellmatchd serves the matching engine over HTTP: a
// long-running daemon that keeps the compiled kernel tables hot,
// scans every request on one shared worker pool, coalesces small
// payloads into batched kernel passes, and hot-swaps dictionaries
// without dropping traffic.
//
//	cellmatchd -dict signatures.txt -casefold
//	cellmatchd -regex expressions.txt                  # regex dictionary
//	cellmatchd -artifact compiled.cms -listen :8472
//	cellmatchd -artifact compiled.cms -watch           # reload on file change
//	cellmatchd -dict base.txt -tenant acme=dict:acme.txt \
//	           -tenant edge=artifact:edge.cms          # multi-tenant fleet
//
// Endpoints (see internal/server):
//
//	POST /scan          scan the request body; ?mode=pool|seq|adhoc,
//	                    ?workers=N (adhoc only) ?chunk=N ?count=1
//	POST /scan/stream   scan a chunked upload without buffering it
//	POST /scan/batch    coalesce small payloads into one kernel pass
//	POST /reload        swap the dictionary (?path=...
//	                    ?format=artifact|dict|regex)
//	GET  /stats         dictionary shape + request/byte/match counters
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       liveness
//
// Every data/control endpoint also exists under /t/{tenant}/... for
// the dictionaries named by -tenant; the bare paths serve the
// "default" tenant (the base -artifact/-dict/-regex flags). With
// -max-inflight or -max-queued-bytes set, scan requests beyond the
// budget are refused with 429 + Retry-After instead of queueing.
//
// A dictionary file holds one pattern per line ('#' comments); with
// -regex the lines are regular expressions (bounded repetition only)
// compiled into one search automaton — see core.CompileRegexSearch. An
// artifact is the output of Matcher.Save (cellmatch's compiled form),
// which loads without re-running Aho-Corasick construction; regex
// artifacts round-trip too.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
	"cellmatch/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stdout, os.Args[1:]); err != nil {
		log.Fatal("cellmatchd: ", err)
	}
}

// tenantSpec is one parsed -tenant flag: name=format:path.
type tenantSpec struct {
	name, format, path string
}

func parseTenantSpec(v string) (tenantSpec, error) {
	name, rest, ok := strings.Cut(v, "=")
	if !ok {
		return tenantSpec{}, fmt.Errorf("want name=format:path, got %q", v)
	}
	format, path, ok := strings.Cut(rest, ":")
	if !ok || path == "" {
		return tenantSpec{}, fmt.Errorf("want name=format:path, got %q", v)
	}
	switch format {
	case "artifact", "dict", "regex":
	default:
		return tenantSpec{}, fmt.Errorf("format %q: want artifact, dict, or regex", format)
	}
	if !registry.ValidTenantName(name) {
		return tenantSpec{}, fmt.Errorf("invalid tenant name %q", name)
	}
	return tenantSpec{name, format, path}, nil
}

// run parses args, loads the initial dictionaries, and serves until
// ctx is cancelled. It prints the bound address once listening (tests
// bind :0 and read it back).
func run(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("cellmatchd", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		listen         = fs.String("listen", ":8472", "HTTP listen address")
		artifact       = fs.String("artifact", "", "compiled artifact (Matcher.Save output)")
		dict           = fs.String("dict", "", "pattern file (one per line, '#' comments)")
		regex          = fs.String("regex", "", "regular-expression file (one per line, '#' comments)")
		caseFold       = fs.Bool("casefold", false, "case-insensitive matching (with -dict/-regex)")
		filterMd       = fs.String("filter", "auto", "skip-scan front-end with -dict: auto, on, or off")
		strideMd       = fs.String("stride", "auto", "kernel transition stride with -dict/-regex: auto, 1, or 2")
		compMd         = fs.String("compressed", "auto", "compressed-row tier with -dict/-regex: auto, on, or off")
		workers        = fs.Int("workers", 0, "shared scan pool size (0 = one per CPU)")
		chunk          = fs.Int("chunk", 0, "scan chunk size in bytes (0 = 64 KiB)")
		maxBody        = fs.Int64("max-body", 0, "request body cap in bytes (0 = 64 MiB)")
		batchMax       = fs.Int("batch-max", 0, "max payloads per coalesced batch (0 = 64)")
		batchLinger    = fs.Duration("batch-linger", 0, "batch collection window (0 = 2ms)")
		maxInflight    = fs.Int("max-inflight", 0, "shed scan requests beyond this concurrency with 429 (0 = unlimited)")
		maxQueuedBytes = fs.Int64("max-queued-bytes", 0, "shed scan requests once admitted body bytes exceed this (0 = unlimited)")
		watch          = fs.Bool("watch", false, "poll every dictionary source and hot-reload on change")
		watchInterval  = fs.Duration("watch-interval", 2*time.Second, "source poll interval with -watch")
		delta          = fs.Bool("delta", true, "patch dict/regex reloads incrementally (reuse unchanged compiled units; skip the swap when the pattern set is unchanged)")
		compileWorkers = fs.Int("compileworkers", 0, "dictionary compile parallelism (0 = one per CPU, 1 = sequential)")
	)
	var tenants []tenantSpec
	fs.Func("tenant", "serve an extra dictionary as `name=format:path` (repeatable; format: artifact, dict, or regex)",
		func(v string) error {
			spec, err := parseTenantSpec(v)
			if err != nil {
				return err
			}
			tenants = append(tenants, spec)
			return nil
		})
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmode, err := core.ParseFilterMode(*filterMd)
	if err != nil {
		return fmt.Errorf("-filter: %w", err)
	}
	stride, err := core.ParseStride(*strideMd)
	if err != nil {
		return fmt.Errorf("-stride: %w", err)
	}
	cmode, err := core.ParseCompressed(*compMd)
	if err != nil {
		return fmt.Errorf("-compressed: %w", err)
	}
	opts := core.Options{
		CaseFold:       *caseFold,
		CompileWorkers: *compileWorkers,
		Engine:         core.EngineOptions{Filter: fmode, Stride: stride, Compressed: cmode},
	}

	// The base -artifact/-dict/-regex flags populate the default
	// tenant; each -tenant flag adds an independent slot.
	ns := registry.NewNamespace()
	baseSet := *artifact != "" || *dict != "" || *regex != ""
	if baseSet {
		reg, err := buildRegistry(*artifact, *dict, *regex, opts, *delta)
		if err != nil {
			return err
		}
		if err := ns.Set(registry.DefaultTenant, reg); err != nil {
			return err
		}
	} else if len(tenants) == 0 {
		return fmt.Errorf("a dictionary is required: -artifact, -dict, -regex, or -tenant")
	}
	for _, spec := range tenants {
		if spec.name == registry.DefaultTenant && baseSet {
			return fmt.Errorf("-tenant %s conflicts with the base dictionary flags", spec.name)
		}
		var reg *registry.Registry
		switch spec.format {
		case "artifact":
			reg = registry.New(spec.path, registry.ArtifactLoader(spec.path))
		case "dict":
			if *delta {
				reg = registry.NewDelta(spec.path, registry.DictDeltaLoader(spec.path, opts))
			} else {
				reg = registry.New(spec.path, registry.DictLoader(spec.path, opts))
			}
		case "regex":
			if *delta {
				reg = registry.NewDelta(spec.path, registry.RegexDeltaLoader(spec.path, opts))
			} else {
				reg = registry.New(spec.path, registry.RegexLoader(spec.path, opts))
			}
		}
		if err := ns.Set(spec.name, reg); err != nil {
			return fmt.Errorf("-tenant %s: %w", spec.name, err)
		}
	}

	// Fail fast: every tenant must load before we accept traffic.
	for _, tn := range ns.Tenants() {
		entry, err := ns.Get(tn).Reload()
		if err != nil {
			return fmt.Errorf("tenant %s: %w", tn, err)
		}
		st := entry.Matcher.Stats()
		prefix := ""
		if tn != registry.DefaultTenant {
			prefix = "tenant " + tn + ": "
		}
		fmt.Fprintf(w, "cellmatchd: %sloaded %s: %d patterns, %d states, engine=%s, stride=%d, filter=%v\n",
			prefix, entry.Source, st.Patterns, st.States, st.Engine, st.Stride, st.FilterEnabled)
	}

	srv, err := server.New(server.Config{
		Namespace:      ns,
		Workers:        *workers,
		ChunkBytes:     *chunk,
		MaxBodyBytes:   *maxBody,
		BatchMax:       *batchMax,
		BatchLinger:    *batchLinger,
		MaxInflight:    *maxInflight,
		MaxQueuedBytes: *maxQueuedBytes,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	if *watch {
		go ns.WatchAll(ctx, *watchInterval, func(tenant string, e *registry.Entry, err error) {
			if err != nil {
				fmt.Fprintf(w, "cellmatchd: tenant %s: reload failed (keeping generation %d): %v\n",
					tenant, ns.Get(tenant).Current().Generation, err)
				return
			}
			fmt.Fprintf(w, "cellmatchd: tenant %s: hot-swapped to generation %d (%d patterns)\n",
				tenant, e.Generation, e.Matcher.Stats().Patterns)
		})
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cellmatchd: listening on %s\n", ln.Addr())
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintln(w, "cellmatchd: drained, bye")
	return nil
}

// buildRegistry wires the dictionary source from the flags: exactly
// one of -artifact, -dict, or -regex. With delta set, dict and regex
// sources reload through the incremental loaders (artifacts are
// pre-compiled and always load whole).
func buildRegistry(artifact, dict, regex string, opts core.Options, delta bool) (*registry.Registry, error) {
	set := 0
	for _, s := range []string{artifact, dict, regex} {
		if s != "" {
			set++
		}
	}
	switch {
	case set > 1:
		return nil, fmt.Errorf("use exactly one of -artifact, -dict, or -regex")
	case artifact != "":
		return registry.New(artifact, registry.ArtifactLoader(artifact)), nil
	case dict != "":
		if delta {
			return registry.NewDelta(dict, registry.DictDeltaLoader(dict, opts)), nil
		}
		return registry.New(dict, registry.DictLoader(dict, opts)), nil
	case regex != "":
		if delta {
			return registry.NewDelta(regex, registry.RegexDeltaLoader(regex, opts)), nil
		}
		return registry.New(regex, registry.RegexLoader(regex, opts)), nil
	default:
		return nil, fmt.Errorf("a dictionary is required: -artifact, -dict, or -regex")
	}
}
