package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer for the daemon's log output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon runs the daemon on a random port and returns its base
// URL plus a shutdown func that waits for a clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, *syncBuffer, func()) {
	t.Helper()
	dir := t.TempDir()
	dictPath := filepath.Join(dir, "dict.txt")
	if err := os.WriteFile(dictPath, []byte("virus\nworm\ntrojan\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-listen", "127.0.0.1:0", "-dict", dictPath, "-casefold"}, extraArgs...)
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, &out, args) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop := func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon never shut down")
		}
	}
	return "http://" + addr, &out, stop
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	base, out, stop := startDaemon(t)
	defer stop()

	resp, err := http.Post(base+"/scan", "application/octet-stream",
		strings.NewReader("a VIRUS and a worm walk into a bar"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scan: %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{`"count":2`, `"VIRUS"`, `"worm"`, `"generation":1`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/scan response missing %s: %s", want, body)
		}
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	if !strings.Contains(out.String(), "loaded") {
		t.Fatalf("startup log missing load line:\n%s", out.String())
	}
}

func TestDaemonWatchHotSwap(t *testing.T) {
	// Recreate the dict file the daemon watches.
	base, out, stop := startDaemon(t, "-watch", "-watch-interval", "10ms")
	defer stop()

	// The daemon logged which dict it loaded; rewrite that file.
	m := regexp.MustCompile(`loaded (\S+):`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no load line:\n%s", out.String())
	}
	dictPath := m[1]

	probe := func() string {
		resp, err := http.Post(base+"/scan", "application/octet-stream",
			strings.NewReader("ZEBRA crossing"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if got := probe(); !strings.Contains(got, `"count":0`) {
		t.Fatalf("zebra matched before swap: %s", got)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(probe(), `"count":1`) {
		if time.Now().After(deadline) {
			t.Fatalf("hot swap never served: log\n%s", out.String())
		}
		if err := os.WriteFile(dictPath, []byte(fmt.Sprintf("zebra\n# rev %d\n", time.Now().UnixNano())), 0o644); err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "hot-swapped") {
		t.Fatalf("no hot-swap log line:\n%s", out.String())
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out syncBuffer
	if err := run(ctx, &out, nil); err == nil {
		t.Fatal("no dictionary flags accepted")
	}
	if err := run(ctx, &out, []string{"-dict", "x", "-artifact", "y"}); err == nil {
		t.Fatal("conflicting dictionary flags accepted")
	}
	if err := run(ctx, &out, []string{"-dict", "x", "-regex", "y"}); err == nil {
		t.Fatal("conflicting -dict/-regex accepted")
	}
	if err := run(ctx, &out, []string{"-dict", "/definitely/not/there"}); err == nil {
		t.Fatal("missing dict file accepted")
	}
	if err := run(ctx, &out, []string{"-regex", "/definitely/not/there"}); err == nil {
		t.Fatal("missing regex file accepted")
	}
}

// TestDaemonServesRegexDictionary boots the daemon on a regular
// expression file and checks the wire responses carry the regex
// dictionary contract: regex flag set, start=-1, expression sources.
func TestDaemonServesRegexDictionary(t *testing.T) {
	dir := t.TempDir()
	rxPath := filepath.Join(dir, "exprs.txt")
	if err := os.WriteFile(rxPath, []byte("# regex dictionary\nerr(or)?\n[0-9]{3}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"-listen", "127.0.0.1:0", "-regex", rxPath}
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, &out, args) }()
	defer func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("daemon exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon never shut down")
		}
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post("http://"+addr+"/scan", "application/octet-stream",
		strings.NewReader("an error code 404"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/scan: %d: %s", resp.StatusCode, body)
	}
	for _, want := range []string{`"regex":true`, `"start":-1`, `"err(or)?"`, `"[0-9]{3}"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/scan response missing %s: %s", want, body)
		}
	}
	if !strings.Contains(out.String(), "loaded "+rxPath) {
		t.Fatalf("startup log missing regex load line:\n%s", out.String())
	}
}

func TestDaemonTenantFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out syncBuffer
	for _, args := range [][]string{
		{"-tenant", "acme"},                          // no =
		{"-tenant", "acme=dict"},                     // no :path
		{"-tenant", "acme=tarball:x"},                // bad format
		{"-tenant", "bad name=dict:x"},               // bad name
		{"-tenant", "acme=dict:/definitely/missing"}, // missing file fails fast
		{"-dict", "x", "-tenant", "default=dict:y"},  // default collides with base
	} {
		if err := run(ctx, &out, append([]string{"-listen", "127.0.0.1:0"}, args...)); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

// TestDaemonMultiTenant boots the daemon with a base dictionary plus
// one -tenant slot and checks tenant routing, /metrics, and the
// admission budget end to end.
func TestDaemonMultiTenant(t *testing.T) {
	dir := t.TempDir()
	acmePath := filepath.Join(dir, "acme.txt")
	if err := os.WriteFile(acmePath, []byte("zebra\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, out, stop := startDaemon(t,
		"-tenant", "acme=dict:"+acmePath,
		"-max-inflight", "64")
	defer stop()

	probe := strings.NewReader
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(path, payload string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, "application/octet-stream", probe(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// The bare path serves the base dictionary; /t/acme serves its own.
	if code, body := post("/scan", "a zebra met a virus"); code != 200 || !strings.Contains(body, `"count":1`) || !strings.Contains(body, `"virus"`) {
		t.Fatalf("default scan: %d: %s", code, body)
	}
	if code, body := post("/t/acme/scan", "a zebra met a virus"); code != 200 || !strings.Contains(body, `"zebra"`) || !strings.Contains(body, `"tenant":"acme"`) {
		t.Fatalf("acme scan: %d: %s", code, body)
	}
	if code, _ := post("/t/nobody/scan", "x"); code != 404 {
		t.Fatalf("unknown tenant: %d, want 404", code)
	}

	// /metrics exposes both tenants.
	code, body := get("/metrics")
	if code != 200 ||
		!strings.Contains(body, `cellmatch_requests_total{tenant="default"} 1`) ||
		!strings.Contains(body, `cellmatch_requests_total{tenant="acme"} 1`) {
		t.Fatalf("/metrics: %d: %s", code, body)
	}

	if !strings.Contains(out.String(), "tenant acme: loaded "+acmePath) {
		t.Fatalf("startup log missing tenant load line:\n%s", out.String())
	}
}

// TestDaemonTenantWatchHotSwap: -watch polls every tenant's source;
// rewriting one tenant's file hot-swaps only that tenant.
func TestDaemonTenantWatchHotSwap(t *testing.T) {
	dir := t.TempDir()
	acmePath := filepath.Join(dir, "acme.txt")
	if err := os.WriteFile(acmePath, []byte("zebra\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, out, stop := startDaemon(t,
		"-tenant", "acme=dict:"+acmePath,
		"-watch", "-watch-interval", "10ms")
	defer stop()

	probe := func() string {
		resp, err := http.Post(base+"/t/acme/scan", "application/octet-stream",
			strings.NewReader("YAK on the loose"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(probe(), `"count":1`) {
		if time.Now().After(deadline) {
			t.Fatalf("tenant hot swap never served: log\n%s", out.String())
		}
		if err := os.WriteFile(acmePath, []byte(fmt.Sprintf("yak\n# rev %d\n", time.Now().UnixNano())), 0o644); err != nil {
			t.Fatal(err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "tenant acme: hot-swapped") {
		t.Fatalf("no tenant hot-swap log line:\n%s", out.String())
	}
	// The default tenant did not move.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"generation":1`) {
		t.Fatalf("default tenant moved: %s", body)
	}
}
