package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Bench-regression gate: compare freshly measured BENCH_*.json files
// against their committed baselines instead of hard-coded speedup
// floors. CI runs
//
//	paperbench -checkbench \
//	  -baseline BENCH_kernel.json,BENCH_server.json,BENCH_shards.json \
//	  -candidate new_kernel.json,new_server.json,new_shards.json
//
// and fails the job when any gated metric drops more than maxDrop
// (default 20%) below its baseline — the kernel rows and
// kernel-vs-stt speedup, the serving layer's /scan and /scan/stream
// throughput, and the sharded tier's throughput and sharded-vs-stt
// speedup. The before/after tables are markdown so the CI job can
// pipe them straight into the GitHub step summary.
//
// Absolute MB/s floors are only meaningful when baseline and candidate
// ran on comparable hardware: re-record the baseline
// (paperbench -kernel -benchjson BENCH_kernel.json) whenever the CI
// runner class changes. The speedup ratio is the machine-portable
// gate; the absolute rows catch same-hardware regressions the ratio
// can mask (e.g. both paths slowing down together).

// gatedMetric reports whether a BENCH_*.json field is enforced. The
// stt_* comparator rows are informational (they measure the old path,
// whose speed we do not defend), as are the serving layer's
// batch-coalescing rows (linger-dominated) and the sharded budget
// sweep; the kernel rows, the speedup ratios, the /scan and
// /scan/stream throughput, and the sharded scan schedules are the
// banked performance. Metric names are globally unique across the
// BENCH files, so one predicate serves every pair.
func gatedMetric(key string) bool {
	switch {
	case strings.HasPrefix(key, "kernel_"):
		return true
	case strings.HasPrefix(key, "stride2_"):
		return true
	case key == "parallel_4workers_kernel_MBps":
		return true
	case key == "speedup_kernel_vs_stt_lookup":
		return true
	case key == "speedup_stride2_vs_kernel":
		return true
	case strings.HasPrefix(key, "compressed_"):
		// compressed_dict_states is a meta row; runBenchCheck consults
		// metaMetric before this predicate, so only the throughput and
		// speedup rows land here. stt_compressed_dict_MBps stays
		// informational with the rest of the stt_* comparators.
		return true
	case key == "speedup_compressed_vs_stt":
		return true
	case key == "scan_MBps" || key == "stream_MBps":
		return true
	case key == "server_scan_p99_ms":
		// Tail latency of the closed-loop /scan run is banked alongside
		// its throughput; the p50 and batch latency rows stay
		// informational (p50 is linger/scheduling noise at this scale).
		return true
	case key == "sharded_seq_MBps" || key == "sharded_pool_MBps":
		return true
	case key == "speedup_sharded_vs_stt":
		return true
	case key == "filter_seq_MBps" || key == "filter_parallel4_MBps":
		return true
	case key == "speedup_filter_vs_kernel":
		return true
	case strings.HasPrefix(key, "scenario_") && strings.HasSuffix(key, "_MBps"):
		// Every scenario's throughput row (including the served regex
		// row) is banked; the scenario_*_skip_pct evidence rows stay
		// informational — skip ratio is workload shape, not speed.
		return true
	case strings.HasPrefix(key, "compile_fleet_") && strings.HasSuffix(key, "_ms"):
		// The fleet-scale compile latencies are banked (lower is
		// better); the compile_scenario_* rows are microsecond-scale
		// evidence, too noisy for a one-shot CI gate. The parallel
		// speedup ratio is gated by its conditional floor alone (see
		// floorFor) — its baseline value depends on the recording
		// host's core count, which the relative gate cannot see.
		return true
	case key == "speedup_compile_delta":
		return true
	}
	return false
}

// speedupFloors are absolute minimums enforced on top of the
// baseline-relative gate, for the ratio metrics only: ratios compare
// two engines on the same machine and traffic, so unlike the raw MB/s
// rows they are machine-portable and can carry the repo's banked
// acceptance numbers — the kernel's >= 1.5x over stt.Lookup and the
// sharded tier's >= 2x over the stt fallback — without re-recording
// when the runner class changes.
var speedupFloors = map[string]float64{
	"speedup_kernel_vs_stt_lookup": 1.5,
	"speedup_sharded_vs_stt":       2.0,
	// The skip-scan front-end must stay >= 2x over the unfiltered
	// kernel on the long-pattern workload (the ISSUE 5 acceptance bar).
	"speedup_filter_vs_kernel": 2.0,
	// The 2-byte-stride rung must stay >= 1.7x over the 1-byte kernel
	// single-stream (the ISSUE 8 acceptance bar).
	"speedup_stride2_vs_kernel": 1.7,
	// The compressed-row rung must stay >= 2x over the stt fallback on
	// the over-dense-budget dictionary it exists for (the ISSUE 10
	// acceptance bar).
	"speedup_compressed_vs_stt": 2.0,
	// Patching a 64-pattern append into a fleet-scale matcher must stay
	// >= 2x faster than the cold rebuild of the same dictionary. The
	// patch re-runs all the deterministic planning (partition, shard
	// plan) and rebuilds only the trailing units, so the ratio is
	// planning-bound, not unit-bound; both sides run sequentially, so
	// it is machine-portable.
	"speedup_compile_delta": 2.0,
}

// floorFor resolves the absolute floor for a metric, if any: the
// static speedupFloors table, plus the one conditional entry — the
// parallel-compile speedup can only express itself on a multi-core
// host, so its >= 2x floor arms only when the candidate's
// compile_cores meta row reports at least 4 cores (a 1-2 core runner
// measures ~1x by construction, and gating that would only gate the
// runner shape).
func floorFor(key string, cand map[string]float64) (float64, bool) {
	if key == "speedup_compile_parallel" {
		if cand["compile_cores"] >= 4 {
			return 2.0, true
		}
		return 0, false
	}
	f, ok := speedupFloors[key]
	return f, ok
}

// lowerIsBetter reports metrics gated in the inverted direction:
// latency rows (the *_ms fields) regress by going UP, so the gate
// fails when the candidate exceeds baseline*(1+maxDrop) instead of
// falling below baseline*(1-maxDrop).
func lowerIsBetter(key string) bool {
	return strings.HasSuffix(key, "_ms")
}

// metaMetric reports fields that describe the run, not a measurement.
func metaMetric(key string) bool {
	switch key {
	case "input_bytes", "dict_states", "compressed_dict_states",
		"scan_payload_bytes", "batch_payload_bytes", "shard_budget_bytes",
		"shards", "filter_patterns", "filter_min_pattern_len",
		"filter_window", "scenarios", "compile_cores", "compile_patterns":
		return true
	}
	return strings.HasSuffix(key, "_shards")
}

func loadBenchJSON(path string) (map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no numeric metrics", path)
	}
	return out, nil
}

// runBenchCheckFiles splits comma-separated baseline/candidate lists
// into pairs and gates each; every pair's table is printed, and the
// error aggregates regressions across all of them.
func runBenchCheckFiles(w io.Writer, baselines, candidates string, maxDrop float64) error {
	bs := strings.Split(baselines, ",")
	cs := strings.Split(candidates, ",")
	if len(bs) != len(cs) {
		return fmt.Errorf("benchcheck: %d baseline(s) but %d candidate(s)", len(bs), len(cs))
	}
	var errs []string
	for i := range bs {
		if err := runBenchCheck(w, strings.TrimSpace(bs[i]), strings.TrimSpace(cs[i]), maxDrop); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return nil
}

// runBenchCheck prints one baseline-vs-candidate markdown table and
// returns an error naming every gated metric that regressed beyond
// maxDrop (a fraction: 0.2 = 20%).
func runBenchCheck(w io.Writer, baselinePath, candidatePath string, maxDrop float64) error {
	if maxDrop <= 0 || maxDrop >= 1 {
		return fmt.Errorf("benchcheck: maxdrop %v out of (0,1)", maxDrop)
	}
	base, err := loadBenchJSON(baselinePath)
	if err != nil {
		return err
	}
	cand, err := loadBenchJSON(candidatePath)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprintf(w, "## Bench regression gate: %s (max drop %.0f%%)\n\n", baselinePath, maxDrop*100)
	fmt.Fprintf(w, "| metric | baseline | candidate | delta | gate |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---|\n")
	var regressions []string
	for _, k := range keys {
		b := base[k]
		c, ok := cand[k]
		if metaMetric(k) {
			fmt.Fprintf(w, "| %s | %.0f | %.0f | | |\n", k, b, c)
			continue
		}
		if !ok {
			// Only gated metrics are required; a dropped informational
			// comparator row is a schema change, not a regression.
			if gatedMetric(k) {
				regressions = append(regressions, fmt.Sprintf("%s: missing from candidate", k))
				fmt.Fprintf(w, "| %s | %.2f | (missing) | | FAIL |\n", k, b)
			} else {
				fmt.Fprintf(w, "| %s | %.2f | (missing) | | |\n", k, b)
			}
			continue
		}
		delta := 0.0
		if b != 0 {
			delta = (c - b) / b * 100
		}
		gate := ""
		if gatedMetric(k) {
			gate = "ok"
			if lowerIsBetter(k) {
				if c > b*(1+maxDrop) {
					gate = "FAIL"
					regressions = append(regressions,
						fmt.Sprintf("%s: %.2f -> %.2f (%+.1f%%, ceiling %.2f)", k, b, c, delta, b*(1+maxDrop)))
				}
			} else if c < b*(1-maxDrop) {
				gate = "FAIL"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f -> %.2f (%.1f%%, floor %.2f)", k, b, c, delta, b*(1-maxDrop)))
			}
		}
		// Absolute floors apply independently of the relative gate: a
		// ratio can carry a floor without a baseline-relative check
		// (speedup_compile_parallel's is conditional on the host).
		if floor, has := floorFor(k, cand); has && gate != "FAIL" {
			if c < floor {
				gate = "FAIL"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f below the absolute %.1fx floor", k, c, floor))
			} else if gate == "" {
				gate = "ok"
			}
		}
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %+.1f%% | %s |\n", k, b, c, delta, gate)
	}
	// Candidate-only keys: a baseline that dropped (or renamed) a
	// metric must not silently skip it — new rows are shown, and the
	// absolute speedup floors are enforced even without a baseline
	// value to compare against.
	extras := make([]string, 0)
	for k := range cand {
		if _, ok := base[k]; !ok {
			extras = append(extras, k)
		}
	}
	sort.Strings(extras)
	for _, k := range extras {
		c := cand[k]
		if metaMetric(k) {
			fmt.Fprintf(w, "| %s | (new) | %.0f | | |\n", k, c)
			continue
		}
		gate := ""
		if gatedMetric(k) {
			gate = "ok"
		}
		if floor, has := floorFor(k, cand); has {
			if c < floor {
				gate = "FAIL"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f below the absolute %.1fx floor (no baseline)", k, c, floor))
			} else {
				gate = "ok"
			}
		}
		fmt.Fprintf(w, "| %s | (new) | %.2f | | %s |\n", k, c, gate)
	}
	fmt.Fprintln(w)
	if len(regressions) > 0 {
		fmt.Fprintf(w, "**%d gated metric(s) regressed beyond %.0f%%.**\n", len(regressions), maxDrop*100)
		return fmt.Errorf("benchcheck %s: %d regression(s): %s",
			baselinePath, len(regressions), strings.Join(regressions, "; "))
	}
	fmt.Fprintf(w, "All gated metrics within %.0f%% of baseline.\n", maxDrop*100)
	return nil
}
