package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Bench-regression gate: compare a freshly measured BENCH_kernel.json
// against the committed baseline instead of a hard-coded speedup
// floor. CI runs
//
//	paperbench -checkbench -baseline BENCH_kernel.json -candidate new.json
//
// and fails the job when any gated kernel metric drops more than
// maxDrop (default 20%) below the baseline — including the
// kernel-vs-stt speedup ratio. The before/after table is markdown so
// the CI job can pipe it straight into the GitHub step summary.
//
// Absolute MB/s floors are only meaningful when baseline and candidate
// ran on comparable hardware: re-record the baseline
// (paperbench -kernel -benchjson BENCH_kernel.json) whenever the CI
// runner class changes. The speedup ratio is the machine-portable
// gate; the absolute rows catch same-hardware regressions the ratio
// can mask (e.g. both paths slowing down together).

// gatedMetric reports whether a BENCH_kernel.json field is enforced.
// The stt_* comparator rows are informational (they measure the old
// path, whose speed we do not defend); the kernel rows, the
// kernel-backed parallel row, and the speedup ratio are the banked
// performance.
func gatedMetric(key string) bool {
	switch {
	case strings.HasPrefix(key, "kernel_"):
		return true
	case key == "parallel_4workers_kernel_MBps":
		return true
	case key == "speedup_kernel_vs_stt_lookup":
		return true
	}
	return false
}

// metaMetric reports fields that describe the run, not a measurement.
func metaMetric(key string) bool {
	return key == "input_bytes" || key == "dict_states"
}

func loadBenchJSON(path string) (map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no numeric metrics", path)
	}
	return out, nil
}

// runBenchCheck prints the baseline-vs-candidate markdown table and
// returns an error naming every gated metric that regressed beyond
// maxDrop (a fraction: 0.2 = 20%).
func runBenchCheck(w io.Writer, baselinePath, candidatePath string, maxDrop float64) error {
	if maxDrop <= 0 || maxDrop >= 1 {
		return fmt.Errorf("benchcheck: maxdrop %v out of (0,1)", maxDrop)
	}
	base, err := loadBenchJSON(baselinePath)
	if err != nil {
		return err
	}
	cand, err := loadBenchJSON(candidatePath)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprintf(w, "## Bench regression gate (max drop %.0f%%)\n\n", maxDrop*100)
	fmt.Fprintf(w, "| metric | baseline | candidate | delta | gate |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---|\n")
	var regressions []string
	for _, k := range keys {
		b := base[k]
		c, ok := cand[k]
		if metaMetric(k) {
			fmt.Fprintf(w, "| %s | %.0f | %.0f | | |\n", k, b, c)
			continue
		}
		if !ok {
			// Only gated metrics are required; a dropped informational
			// comparator row is a schema change, not a regression.
			if gatedMetric(k) {
				regressions = append(regressions, fmt.Sprintf("%s: missing from candidate", k))
				fmt.Fprintf(w, "| %s | %.2f | (missing) | | FAIL |\n", k, b)
			} else {
				fmt.Fprintf(w, "| %s | %.2f | (missing) | | |\n", k, b)
			}
			continue
		}
		delta := 0.0
		if b != 0 {
			delta = (c - b) / b * 100
		}
		gate := ""
		if gatedMetric(k) {
			gate = "ok"
			if c < b*(1-maxDrop) {
				gate = "FAIL"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.2f -> %.2f (%.1f%%, floor %.2f)", k, b, c, delta, b*(1-maxDrop)))
			}
		}
		fmt.Fprintf(w, "| %s | %.2f | %.2f | %+.1f%% | %s |\n", k, b, c, delta, gate)
	}
	fmt.Fprintln(w)
	if len(regressions) > 0 {
		fmt.Fprintf(w, "**%d gated metric(s) regressed beyond %.0f%%.**\n", len(regressions), maxDrop*100)
		return fmt.Errorf("benchcheck: %d regression(s): %s", len(regressions), strings.Join(regressions, "; "))
	}
	fmt.Fprintf(w, "All gated metrics within %.0f%% of baseline.\n", maxDrop*100)
	return nil
}
