package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBench = `{
  "input_bytes": 8388608,
  "dict_states": 1499,
  "stt_lookup_seq_MBps": 300,
  "kernel_seq_MBps": 600,
  "kernel_interleaved_k4_MBps": 1000,
  "parallel_4workers_kernel_MBps": 550,
  "speedup_kernel_vs_stt_lookup": 3.3
}`

func TestBenchCheckPasses(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	// 15% slower everywhere: inside the 20% gate.
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "stt_lookup_seq_MBps": 100,
	  "kernel_seq_MBps": 510,
	  "kernel_interleaved_k4_MBps": 850,
	  "parallel_4workers_kernel_MBps": 468,
	  "speedup_kernel_vs_stt_lookup": 2.81
	}`)
	var b strings.Builder
	if err := runBenchCheck(&b, base, cand, 0.20); err != nil {
		t.Fatalf("within-gate candidate failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"| metric | baseline | candidate |",
		"kernel_seq_MBps | 600.00 | 510.00 | -15.0% | ok",
		"All gated metrics within 20% of baseline.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// The stt comparator collapsed by 3x and that must NOT gate.
	if strings.Contains(out, "FAIL") {
		t.Fatalf("ungated metric failed the gate:\n%s", out)
	}
}

func TestBenchCheckCatchesKernelRegression(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "stt_lookup_seq_MBps": 300,
	  "kernel_seq_MBps": 400,
	  "kernel_interleaved_k4_MBps": 1000,
	  "parallel_4workers_kernel_MBps": 550,
	  "speedup_kernel_vs_stt_lookup": 3.3
	}`)
	var b strings.Builder
	err := runBenchCheck(&b, base, cand, 0.20)
	if err == nil {
		t.Fatalf("33%% kernel drop passed the gate:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "kernel_seq_MBps") {
		t.Fatalf("regression not attributed: %v", err)
	}
	if !strings.Contains(b.String(), "FAIL") {
		t.Fatalf("table does not flag the failure:\n%s", b.String())
	}
}

func TestBenchCheckCatchesSpeedupRegression(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	// Raw kernel numbers fine, but the speedup ratio fell below
	// baseline - 20% (e.g. the stt path got faster relative to a
	// stagnant kernel — still a banked-ratio regression).
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "stt_lookup_seq_MBps": 500,
	  "kernel_seq_MBps": 600,
	  "kernel_interleaved_k4_MBps": 1000,
	  "parallel_4workers_kernel_MBps": 550,
	  "speedup_kernel_vs_stt_lookup": 2.0
	}`)
	var b strings.Builder
	if err := runBenchCheck(&b, base, cand, 0.20); err == nil ||
		!strings.Contains(err.Error(), "speedup_kernel_vs_stt_lookup") {
		t.Fatalf("speedup regression not caught: %v\n%s", err, b.String())
	}
}

func TestBenchCheckMissingMetricFails(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	cand := writeBench(t, "cand.json", `{"input_bytes": 8388608, "kernel_seq_MBps": 600}`)
	var b strings.Builder
	if err := runBenchCheck(&b, base, cand, 0.20); err == nil {
		t.Fatalf("candidate missing gated metrics passed:\n%s", b.String())
	}
	// A missing informational comparator is a schema change, not a
	// regression: dropping stt_lookup must still pass.
	cand2 := writeBench(t, "cand2.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "kernel_seq_MBps": 600,
	  "kernel_interleaved_k4_MBps": 1000,
	  "parallel_4workers_kernel_MBps": 550,
	  "speedup_kernel_vs_stt_lookup": 3.3
	}`)
	var b2 strings.Builder
	if err := runBenchCheck(&b2, base, cand2, 0.20); err != nil {
		t.Fatalf("missing ungated metric failed the gate: %v\n%s", err, b2.String())
	}
}

func TestBenchCheckBadInputs(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	var b strings.Builder
	if err := runBenchCheck(&b, base, "/no/such/file.json", 0.20); err == nil {
		t.Fatal("missing candidate accepted")
	}
	garbage := writeBench(t, "garbage.json", "not json at all")
	if err := runBenchCheck(&b, base, garbage, 0.20); err == nil {
		t.Fatal("garbage candidate accepted")
	}
	cand := writeBench(t, "cand.json", baseBench)
	if err := runBenchCheck(&b, base, cand, 1.5); err == nil {
		t.Fatal("nonsense maxdrop accepted")
	}
}

const shardBench = `{
  "input_bytes": 8388608,
  "dict_states": 5997,
  "shard_budget_bytes": 262144,
  "shards": 4,
  "stt_fallback_seq_MBps": 50,
  "sharded_seq_MBps": 115,
  "sharded_pool_MBps": 118,
  "speedup_sharded_vs_stt": 2.3,
  "sweep_128k_shards": 7,
  "sweep_128k_seq_MBps": 80
}`

const serverBenchJSON = `{
  "input_bytes": 16777216,
  "scan_payload_bytes": 262144,
  "scan_MBps": 200,
  "batch_MBps": 13,
  "stream_MBps": 347,
  "server_scan_p50_ms": 8,
  "server_scan_p99_ms": 12,
  "server_batch_p99_ms": 40
}`

// Multi-pair gating: every pair prints its own table; regressions in
// any pair fail, and informational rows (batch, sweep) never gate.
func TestBenchCheckMultiPair(t *testing.T) {
	kb := writeBench(t, "kernel.json", baseBench)
	sb := writeBench(t, "shards.json", shardBench)
	vb := writeBench(t, "server.json", serverBenchJSON)

	var b strings.Builder
	ok := kb + "," + vb + "," + sb
	if err := runBenchCheckFiles(&b, ok, ok, 0.20); err != nil {
		t.Fatalf("self-comparison failed: %v\n%s", err, b.String())
	}
	for _, want := range []string{"kernel.json", "server.json", "shards.json"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("per-pair heading %q missing:\n%s", want, b.String())
		}
	}

	// Mismatched list lengths must be rejected.
	if err := runBenchCheckFiles(&b, kb+","+sb, kb, 0.20); err == nil {
		t.Fatal("mismatched pair counts accepted")
	}

	// A sharded regression in the third pair fails the whole gate; the
	// collapsed batch row (ungated) does not.
	badShards := writeBench(t, "bad_shards.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 5997,
	  "shard_budget_bytes": 262144,
	  "shards": 4,
	  "stt_fallback_seq_MBps": 50,
	  "sharded_seq_MBps": 60,
	  "sharded_pool_MBps": 118,
	  "speedup_sharded_vs_stt": 2.3,
	  "sweep_128k_shards": 7,
	  "sweep_128k_seq_MBps": 10
	}`)
	badServer := writeBench(t, "bad_server.json", `{
	  "input_bytes": 16777216,
	  "scan_payload_bytes": 262144,
	  "scan_MBps": 200,
	  "batch_MBps": 1,
	  "stream_MBps": 347
	}`)
	var b2 strings.Builder
	err := runBenchCheckFiles(&b2, kb+","+vb+","+sb, kb+","+badServer+","+badShards, 0.20)
	if err == nil {
		t.Fatalf("sharded regression passed the multi-pair gate:\n%s", b2.String())
	}
	if !strings.Contains(err.Error(), "sharded_seq_MBps") {
		t.Fatalf("regression not attributed to the sharded metric: %v", err)
	}
	if strings.Contains(err.Error(), "batch_MBps") || strings.Contains(err.Error(), "sweep_128k") {
		t.Fatalf("informational row gated: %v", err)
	}
}

// The ratio metrics carry absolute floors on top of the relative gate:
// a sharded speedup of 1.9x is within 20% of the 2.3x baseline but
// below the banked 2x acceptance number, and must still fail.
func TestBenchCheckAbsoluteSpeedupFloor(t *testing.T) {
	sb := writeBench(t, "shards.json", shardBench)
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 5997,
	  "shard_budget_bytes": 262144,
	  "shards": 4,
	  "stt_fallback_seq_MBps": 55,
	  "sharded_seq_MBps": 105,
	  "sharded_pool_MBps": 108,
	  "speedup_sharded_vs_stt": 1.9,
	  "sweep_128k_shards": 7,
	  "sweep_128k_seq_MBps": 80
	}`)
	var b strings.Builder
	err := runBenchCheck(&b, sb, cand, 0.20)
	if err == nil {
		t.Fatalf("1.9x sharded speedup passed the 2x floor:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "absolute 2.0x floor") {
		t.Fatalf("floor breach not attributed: %v", err)
	}
}

// A baseline that dropped the speedup metric must not disable its
// absolute floor: the candidate-only row is still checked.
func TestBenchCheckFloorSurvivesMissingBaselineKey(t *testing.T) {
	noSpeedup := writeBench(t, "base.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 5997,
	  "sharded_seq_MBps": 105
	}`)
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 5997,
	  "sharded_seq_MBps": 105,
	  "speedup_sharded_vs_stt": 1.4
	}`)
	var b strings.Builder
	err := runBenchCheck(&b, noSpeedup, cand, 0.20)
	if err == nil {
		t.Fatalf("floor skipped for a candidate-only metric:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "absolute 2.0x floor (no baseline)") {
		t.Fatalf("floor breach not attributed: %v", err)
	}
	if !strings.Contains(b.String(), "(new)") {
		t.Fatalf("candidate-only row not shown:\n%s", b.String())
	}
}

// A /scan throughput collapse must gate the server pair.
func TestBenchCheckCatchesServerRegression(t *testing.T) {
	vb := writeBench(t, "server.json", serverBenchJSON)
	bad := writeBench(t, "bad.json", `{
	  "input_bytes": 16777216,
	  "scan_payload_bytes": 262144,
	  "scan_MBps": 100,
	  "batch_MBps": 13,
	  "stream_MBps": 347
	}`)
	var b strings.Builder
	if err := runBenchCheck(&b, vb, bad, 0.20); err == nil ||
		!strings.Contains(err.Error(), "scan_MBps") {
		t.Fatalf("server regression not caught: %v\n%s", err, b.String())
	}
}

// The latency rows gate in the inverted direction: p99 going UP past
// baseline*(1+maxdrop) regresses; going down (faster) never does, and
// the informational p50/batch rows never gate at all.
func TestBenchCheckLatencyGateInverted(t *testing.T) {
	vb := writeBench(t, "server.json", serverBenchJSON)
	mk := func(name string, p50, p99, batchP99 float64) string {
		return writeBench(t, name, fmt.Sprintf(`{
		  "input_bytes": 16777216,
		  "scan_payload_bytes": 262144,
		  "scan_MBps": 200,
		  "batch_MBps": 13,
		  "stream_MBps": 347,
		  "server_scan_p50_ms": %g,
		  "server_scan_p99_ms": %g,
		  "server_batch_p99_ms": %g
		}`, p50, p99, batchP99))
	}

	// +10% tail latency: inside the 20% ceiling.
	var b strings.Builder
	if err := runBenchCheck(&b, vb, mk("ok.json", 8, 13.2, 40), 0.20); err != nil {
		t.Fatalf("within-ceiling latency failed: %v\n%s", err, b.String())
	}
	// 2x faster p99 is an improvement, not a drop below a floor.
	b.Reset()
	if err := runBenchCheck(&b, vb, mk("fast.json", 4, 6, 20), 0.20); err != nil {
		t.Fatalf("latency improvement failed the gate: %v\n%s", err, b.String())
	}
	// +50% tail latency must fail, attributed to the p99 key.
	b.Reset()
	err := runBenchCheck(&b, vb, mk("slow.json", 8, 18, 40), 0.20)
	if err == nil || !strings.Contains(err.Error(), "server_scan_p99_ms") {
		t.Fatalf("tail-latency regression not caught: %v\n%s", err, b.String())
	}
	if !strings.Contains(err.Error(), "ceiling") {
		t.Fatalf("inverted gate not reported as a ceiling: %v", err)
	}
	// Informational latency rows (p50, batch p99) ballooning never gate.
	b.Reset()
	if err := runBenchCheck(&b, vb, mk("noise.json", 80, 12, 400), 0.20); err != nil {
		t.Fatalf("informational latency rows gated: %v\n%s", err, b.String())
	}
}

const compileBench = `{
  "compile_cores": 1,
  "compile_patterns": 50000,
  "compile_fleet_cold_ms": 900,
  "compile_fleet_parallel_ms": 910,
  "compile_fleet_delta_add_ms": 170,
  "speedup_compile_parallel": 0.99,
  "speedup_compile_delta": 5.3,
  "compile_scenario_log-scan_cold_ms": 0.7,
  "compile_scenario_log-scan_delta_ms": 0.8
}`

// The compile pair gates the fleet latencies in the inverted (_ms)
// direction, gates the delta speedup with its 2x floor, and keeps the
// microsecond-scale scenario rows informational.
func TestBenchCheckCompileGating(t *testing.T) {
	cb := writeBench(t, "compile.json", compileBench)

	// Self-comparison passes; a 1-core parallel "speedup" of ~1x does
	// not trip any floor (the 2x floor arms at >= 4 cores).
	var b strings.Builder
	if err := runBenchCheck(&b, cb, cb, 0.20); err != nil {
		t.Fatalf("compile self-comparison failed: %v\n%s", err, b.String())
	}

	// Fleet delta latency ballooning past the ceiling fails; a
	// scenario row ballooning does not (informational evidence).
	slow := writeBench(t, "slow.json", `{
	  "compile_cores": 1,
	  "compile_patterns": 50000,
	  "compile_fleet_cold_ms": 900,
	  "compile_fleet_parallel_ms": 910,
	  "compile_fleet_delta_add_ms": 500,
	  "speedup_compile_parallel": 0.99,
	  "speedup_compile_delta": 2.1,
	  "compile_scenario_log-scan_cold_ms": 70,
	  "compile_scenario_log-scan_delta_ms": 80
	}`)
	b.Reset()
	err := runBenchCheck(&b, cb, slow, 0.20)
	if err == nil || !strings.Contains(err.Error(), "compile_fleet_delta_add_ms") {
		t.Fatalf("delta latency regression not caught: %v\n%s", err, b.String())
	}
	if strings.Contains(err.Error(), "compile_scenario_") {
		t.Fatalf("informational scenario compile row gated: %v", err)
	}

	// Delta speedup below the 2x absolute floor fails even when within
	// the relative drop of a high baseline.
	lowDelta := writeBench(t, "lowdelta.json", `{
	  "compile_cores": 1,
	  "compile_patterns": 50000,
	  "compile_fleet_cold_ms": 900,
	  "compile_fleet_parallel_ms": 910,
	  "compile_fleet_delta_add_ms": 170,
	  "speedup_compile_parallel": 0.99,
	  "speedup_compile_delta": 1.8
	}`)
	highBase := writeBench(t, "highbase.json", `{
	  "compile_cores": 1,
	  "compile_patterns": 50000,
	  "compile_fleet_cold_ms": 900,
	  "compile_fleet_parallel_ms": 910,
	  "compile_fleet_delta_add_ms": 170,
	  "speedup_compile_parallel": 0.99,
	  "speedup_compile_delta": 2.0
	}`)
	b.Reset()
	err = runBenchCheck(&b, highBase, lowDelta, 0.20)
	if err == nil || !strings.Contains(err.Error(), "speedup_compile_delta") {
		t.Fatalf("delta speedup floor breach not caught: %v\n%s", err, b.String())
	}
}

// The parallel-compile floor is conditional on the candidate host: at
// >= 4 cores a sub-2x speedup fails, below that it is informational
// (a 1-core runner measures ~1x by construction).
func TestBenchCheckParallelFloorConditionalOnCores(t *testing.T) {
	cb := writeBench(t, "compile.json", compileBench)
	mk := func(name string, cores, speedup float64) string {
		return writeBench(t, name, fmt.Sprintf(`{
		  "compile_cores": %g,
		  "compile_patterns": 50000,
		  "compile_fleet_cold_ms": 900,
		  "compile_fleet_parallel_ms": 450,
		  "compile_fleet_delta_add_ms": 170,
		  "speedup_compile_parallel": %g,
		  "speedup_compile_delta": 5.3
		}`, cores, speedup))
	}
	var b strings.Builder
	// 2 cores at 1.4x: floor disarmed, passes.
	if err := runBenchCheck(&b, cb, mk("c2.json", 2, 1.4), 0.20); err != nil {
		t.Fatalf("2-core sub-2x speedup gated: %v\n%s", err, b.String())
	}
	// 8 cores at 1.4x: floor armed, fails.
	b.Reset()
	err := runBenchCheck(&b, cb, mk("c8.json", 8, 1.4), 0.20)
	if err == nil || !strings.Contains(err.Error(), "speedup_compile_parallel") {
		t.Fatalf("8-core sub-2x speedup passed: %v\n%s", err, b.String())
	}
	// 8 cores at 3.1x: floor armed, passes.
	b.Reset()
	if err := runBenchCheck(&b, cb, mk("c8ok.json", 8, 3.1), 0.20); err != nil {
		t.Fatalf("8-core 3.1x speedup gated: %v\n%s", err, b.String())
	}
	// The ratio must not be relatively gated: 3.1x vs a 0.99x baseline
	// is a "rise", and a later 2.2x against that would be a >20% drop —
	// but only the floor applies.
	high := mk("high.json", 8, 3.1)
	b.Reset()
	if err := runBenchCheck(&b, high, mk("c8later.json", 8, 2.2), 0.20); err != nil {
		t.Fatalf("parallel speedup relatively gated: %v\n%s", err, b.String())
	}
	if !metaMetric("compile_cores") || !metaMetric("compile_patterns") {
		t.Fatal("compile meta rows must be meta fields")
	}
}

// The committed repo baselines themselves must pass against themselves
// — keeps the gate runnable from a clean checkout.
func TestBenchCheckRepoBaselineSelfConsistent(t *testing.T) {
	for _, name := range []string{
		"BENCH_kernel.json", "BENCH_server.json", "BENCH_shards.json",
		"BENCH_filter.json", "BENCH_scenarios.json", "BENCH_compile.json",
	} {
		t.Run(name, func(t *testing.T) {
			repoBaseline := filepath.Join("..", "..", name)
			if _, err := os.Stat(repoBaseline); err != nil {
				t.Skipf("no repo baseline: %v", err)
			}
			var b strings.Builder
			if err := runBenchCheck(&b, repoBaseline, repoBaseline, 0.20); err != nil {
				t.Fatalf("repo baseline %s fails against itself: %v\n%s", name, err, b.String())
			}
		})
	}
}
