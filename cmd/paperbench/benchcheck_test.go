package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseBench = `{
  "input_bytes": 8388608,
  "dict_states": 1499,
  "stt_lookup_seq_MBps": 300,
  "kernel_seq_MBps": 600,
  "kernel_interleaved_k4_MBps": 1000,
  "parallel_4workers_kernel_MBps": 550,
  "speedup_kernel_vs_stt_lookup": 3.3
}`

func TestBenchCheckPasses(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	// 15% slower everywhere: inside the 20% gate.
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "stt_lookup_seq_MBps": 100,
	  "kernel_seq_MBps": 510,
	  "kernel_interleaved_k4_MBps": 850,
	  "parallel_4workers_kernel_MBps": 468,
	  "speedup_kernel_vs_stt_lookup": 2.81
	}`)
	var b strings.Builder
	if err := runBenchCheck(&b, base, cand, 0.20); err != nil {
		t.Fatalf("within-gate candidate failed: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"| metric | baseline | candidate |",
		"kernel_seq_MBps | 600.00 | 510.00 | -15.0% | ok",
		"All gated metrics within 20% of baseline.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// The stt comparator collapsed by 3x and that must NOT gate.
	if strings.Contains(out, "FAIL") {
		t.Fatalf("ungated metric failed the gate:\n%s", out)
	}
}

func TestBenchCheckCatchesKernelRegression(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "stt_lookup_seq_MBps": 300,
	  "kernel_seq_MBps": 400,
	  "kernel_interleaved_k4_MBps": 1000,
	  "parallel_4workers_kernel_MBps": 550,
	  "speedup_kernel_vs_stt_lookup": 3.3
	}`)
	var b strings.Builder
	err := runBenchCheck(&b, base, cand, 0.20)
	if err == nil {
		t.Fatalf("33%% kernel drop passed the gate:\n%s", b.String())
	}
	if !strings.Contains(err.Error(), "kernel_seq_MBps") {
		t.Fatalf("regression not attributed: %v", err)
	}
	if !strings.Contains(b.String(), "FAIL") {
		t.Fatalf("table does not flag the failure:\n%s", b.String())
	}
}

func TestBenchCheckCatchesSpeedupRegression(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	// Raw kernel numbers fine, but the speedup ratio fell below
	// baseline - 20% (e.g. the stt path got faster relative to a
	// stagnant kernel — still a banked-ratio regression).
	cand := writeBench(t, "cand.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "stt_lookup_seq_MBps": 500,
	  "kernel_seq_MBps": 600,
	  "kernel_interleaved_k4_MBps": 1000,
	  "parallel_4workers_kernel_MBps": 550,
	  "speedup_kernel_vs_stt_lookup": 2.0
	}`)
	var b strings.Builder
	if err := runBenchCheck(&b, base, cand, 0.20); err == nil ||
		!strings.Contains(err.Error(), "speedup_kernel_vs_stt_lookup") {
		t.Fatalf("speedup regression not caught: %v\n%s", err, b.String())
	}
}

func TestBenchCheckMissingMetricFails(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	cand := writeBench(t, "cand.json", `{"input_bytes": 8388608, "kernel_seq_MBps": 600}`)
	var b strings.Builder
	if err := runBenchCheck(&b, base, cand, 0.20); err == nil {
		t.Fatalf("candidate missing gated metrics passed:\n%s", b.String())
	}
	// A missing informational comparator is a schema change, not a
	// regression: dropping stt_lookup must still pass.
	cand2 := writeBench(t, "cand2.json", `{
	  "input_bytes": 8388608,
	  "dict_states": 1499,
	  "kernel_seq_MBps": 600,
	  "kernel_interleaved_k4_MBps": 1000,
	  "parallel_4workers_kernel_MBps": 550,
	  "speedup_kernel_vs_stt_lookup": 3.3
	}`)
	var b2 strings.Builder
	if err := runBenchCheck(&b2, base, cand2, 0.20); err != nil {
		t.Fatalf("missing ungated metric failed the gate: %v\n%s", err, b2.String())
	}
}

func TestBenchCheckBadInputs(t *testing.T) {
	base := writeBench(t, "base.json", baseBench)
	var b strings.Builder
	if err := runBenchCheck(&b, base, "/no/such/file.json", 0.20); err == nil {
		t.Fatal("missing candidate accepted")
	}
	garbage := writeBench(t, "garbage.json", "not json at all")
	if err := runBenchCheck(&b, base, garbage, 0.20); err == nil {
		t.Fatal("garbage candidate accepted")
	}
	cand := writeBench(t, "cand.json", baseBench)
	if err := runBenchCheck(&b, base, cand, 1.5); err == nil {
		t.Fatal("nonsense maxdrop accepted")
	}
}

// The committed repo baseline itself must pass against itself — keeps
// the gate runnable from a clean checkout.
func TestBenchCheckRepoBaselineSelfConsistent(t *testing.T) {
	repoBaseline := filepath.Join("..", "..", "BENCH_kernel.json")
	if _, err := os.Stat(repoBaseline); err != nil {
		t.Skipf("no repo baseline: %v", err)
	}
	var b strings.Builder
	if err := runBenchCheck(&b, repoBaseline, repoBaseline, 0.20); err != nil {
		t.Fatalf("repo baseline fails against itself: %v\n%s", err, b.String())
	}
}
