package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/report"
	"cellmatch/internal/workload"
)

// Compile-latency benchmark: how long a dictionary takes to become a
// serving matcher, cold and incrementally. Three measurements feed
// BENCH_compile.json:
//
//   - cold sequential compile (CompileWorkers: 1) of the fleet-scale
//     dictionary — the pre-parallelism baseline;
//   - the same compile with the full worker fan-out (CompileWorkers: 0)
//     — speedup_compile_parallel is the ratio, meaningful only on
//     multi-core hosts (the compile_cores meta row records the host,
//     and the benchcheck floor for the ratio only arms at >= 4 cores);
//   - an incremental AddPatterns of a 64-pattern append against the
//     cold matcher — the hot-reload path, where only the trailing
//     partition groups rebuild and everything else is adopted by
//     fingerprint. speedup_compile_delta (cold rebuild of the extended
//     set vs the patch) is machine-portable and carries an absolute
//     floor.
//
// Every measured artifact is also checked for the byte-identity
// invariant right here in the bench: the parallel and delta builds
// must Save to the same image as the sequential cold build, so a
// regression that broke determinism fails the bench run itself, not
// just the unit suite.
//
// The scenario rows (compile_scenario_<name>_*_ms) time the same cold
// and patch paths over the small deployment dictionaries; they are
// informational evidence — at a few dozen patterns the single slot
// rebuilds either way and patching ~ cold is the expected shape.
const compileBenchSeed = 907

// compileDeltaAppend is the append size for the fleet delta row: the
// shape of a signature-feed update (dozens of new entries against a
// fleet-scale base).
const compileDeltaAppend = 64

// fleetAppendPatterns builds the delta append set: in-alphabet (A-Z,
// so the reduction is unchanged and reuse is observable) with a "ZZZZ"
// prefix, so in the planner's reduced-lex packing order the new
// entries land in the trailing units and leave the rest adoptable.
func fleetAppendPatterns(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := []byte("ZZZZ")
		v := i
		for k := 0; k < 4; k++ {
			p = append(p, byte('A'+v%26))
			v /= 26
		}
		for j := 0; j < 8; j++ {
			p = append(p, byte('A'+(i*7+j*3)%26))
		}
		out[i] = p
	}
	return out
}

// timedMs runs f once and returns its wall time in milliseconds.
func timedMs(f func() error) (float64, error) {
	start := time.Now()
	if err := f(); err != nil {
		return 0, err
	}
	return float64(time.Since(start)) / float64(time.Millisecond), nil
}

// bestMs runs f reps times and returns the best wall time in
// milliseconds — the small-dictionary rows are microseconds-scale, so
// one-shot timing would be scheduler noise.
func bestMs(reps int, f func() error) (float64, error) {
	best := math.MaxFloat64
	for i := 0; i < reps; i++ {
		ms, err := timedMs(f)
		if err != nil {
			return 0, err
		}
		if ms < best {
			best = ms
		}
	}
	return best, nil
}

// saveImage serializes a matcher to its artifact bytes — the identity
// witness the bench compares across compile paths.
func saveImage(m *core.Matcher) ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runCompileBench measures the compile paths, prints the table, and
// optionally writes the flat JSON artifact.
func runCompileBench(w io.Writer, npats int, jsonPath string) error {
	dict, err := workload.FleetDictionary(npats, compileBenchSeed)
	if err != nil {
		return err
	}
	seqOpts := core.Options{CompileWorkers: 1}
	parOpts := core.Options{CompileWorkers: 0}

	fmt.Fprintf(w, "== Compile latency: cold vs parallel vs incremental (%d-pattern fleet dictionary, %d cores) ==\n",
		npats, runtime.GOMAXPROCS(0))
	t := report.NewTable("Stage", "ms", "Engine", "Notes")
	metrics := map[string]float64{
		"compile_patterns": float64(npats),
		"compile_cores":    float64(runtime.GOMAXPROCS(0)),
	}

	// Untimed warmup: the first compile of the process pays page
	// faults, map growth, and GC ramp-up that would otherwise be
	// charged to whichever row runs first (and fabricate a "speedup"
	// between two identical runs).
	if _, err := core.Compile(dict, seqOpts); err != nil {
		return fmt.Errorf("fleet warmup compile: %w", err)
	}
	var mSeq, mPar *core.Matcher
	coldMs, err := bestMs(2, func() error {
		mSeq, err = core.Compile(dict, seqOpts)
		return err
	})
	if err != nil {
		return fmt.Errorf("fleet cold compile: %w", err)
	}
	parMs, err := bestMs(2, func() error {
		mPar, err = core.Compile(dict, parOpts)
		return err
	})
	if err != nil {
		return fmt.Errorf("fleet parallel compile: %w", err)
	}
	imgSeq, err := saveImage(mSeq)
	if err != nil {
		return err
	}
	imgPar, err := saveImage(mPar)
	if err != nil {
		return err
	}
	if !bytes.Equal(imgSeq, imgPar) {
		return fmt.Errorf("compile bench: parallel compile image differs from sequential (determinism regression)")
	}
	st := mSeq.Stats()
	metrics["compile_fleet_cold_ms"] = coldMs
	metrics["compile_fleet_parallel_ms"] = parMs
	metrics["speedup_compile_parallel"] = coldMs / parMs
	t.Row("fleet cold (1 worker)", coldMs, st.Engine, fmt.Sprintf("%d states", st.States))
	t.Row("fleet parallel (all cores)", parMs, st.Engine,
		fmt.Sprintf("%.2fx, image identical", coldMs/parMs))

	// Delta append: patch the sequential matcher with 64 new patterns
	// and compare against a cold rebuild of the extended dictionary.
	extra := fleetAppendPatterns(compileDeltaAppend)
	next := append(append([][]byte{}, dict...), extra...)
	var mNextCold *core.Matcher
	coldExtMs, err := bestMs(2, func() error {
		mNextCold, err = core.Compile(next, seqOpts)
		return err
	})
	if err != nil {
		return fmt.Errorf("fleet extended cold compile: %w", err)
	}
	var mDelta *core.Matcher
	var ds *core.DeltaStats
	deltaMs, err := bestMs(2, func() error {
		mDelta, ds, err = mSeq.AddPatterns(extra)
		return err
	})
	if err != nil {
		return fmt.Errorf("fleet delta append: %w", err)
	}
	imgNext, err := saveImage(mNextCold)
	if err != nil {
		return err
	}
	imgDelta, err := saveImage(mDelta)
	if err != nil {
		return err
	}
	if !bytes.Equal(imgNext, imgDelta) {
		return fmt.Errorf("compile bench: delta-patched image differs from cold rebuild (determinism regression)")
	}
	metrics["compile_fleet_delta_add_ms"] = deltaMs
	metrics["speedup_compile_delta"] = coldExtMs / deltaMs
	t.Row(fmt.Sprintf("fleet delta (+%d patterns)", compileDeltaAppend), deltaMs, mDelta.Stats().Engine,
		fmt.Sprintf("%.2fx vs %.0f ms rebuild; %d/%d slots reused, image identical",
			coldExtMs/deltaMs, coldExtMs, ds.SlotsReused, ds.SlotsReused+ds.SlotsRebuilt))

	// Scenario dictionaries: the small deployment shapes, cold and
	// patched, best-of-5 (they compile in microseconds).
	scs, err := workload.Scenarios(compileBenchSeed, 4096)
	if err != nil {
		return err
	}
	for _, s := range scs {
		switch s.Name {
		case "log-scan", "dlp-pii", "malware-short":
		default:
			continue
		}
		opts := core.Options{CaseFold: s.CaseFold, CompileWorkers: 1}
		var m *core.Matcher
		cold, err := bestMs(5, func() error {
			m, err = core.Compile(s.Patterns, opts)
			return err
		})
		if err != nil {
			return fmt.Errorf("scenario %s cold compile: %w", s.Name, err)
		}
		// Patch with a reversed copy of the last pattern: same byte set,
		// so the alphabet reduction is unchanged and the patch is a pure
		// partition-tail rebuild.
		last := s.Patterns[len(s.Patterns)-1]
		rev := make([]byte, len(last))
		for i, b := range last {
			rev[len(last)-1-i] = b
		}
		delta, err := bestMs(5, func() error {
			_, _, err := m.AddPatterns([][]byte{rev})
			return err
		})
		if err != nil {
			return fmt.Errorf("scenario %s delta append: %w", s.Name, err)
		}
		metrics["compile_scenario_"+s.Name+"_cold_ms"] = cold
		metrics["compile_scenario_"+s.Name+"_delta_ms"] = delta
		t.Row("scenario "+s.Name+" cold", cold, m.Stats().Engine, fmt.Sprintf("%d patterns", len(s.Patterns)))
		t.Row("scenario "+s.Name+" delta (+1)", delta, m.Stats().Engine, "best of 5")
	}

	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
