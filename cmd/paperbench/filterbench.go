package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cellmatch/internal/core"
	"cellmatch/internal/report"
	"cellmatch/internal/workload"
)

// FilterBench measures the skip-scan front-end on the long-pattern
// NIDS workload it exists for: signature-style patterns (minimum
// length >= 8) over mostly-benign traffic, where the reverse-suffix
// window filter skips most input bytes and only candidate windows
// reach the dense kernel. Serialized to BENCH_filter.json so the gate
// holds the front-end's >= 2x win over the unfiltered kernel per
// commit.
type FilterBench struct {
	InputBytes    int `json:"input_bytes"`
	Patterns      int `json:"filter_patterns"`
	MinPatternLen int `json:"filter_min_pattern_len"`
	Window        int `json:"filter_window"`

	// KernelUnfiltered is the same matcher scanning every byte (the
	// filter bypassed): the pre-filter production cost.
	KernelUnfiltered float64 `json:"filter_off_kernel_MBps"`
	// FilteredSeq is the sequential FindAll with the front-end live.
	FilteredSeq float64 `json:"filter_seq_MBps"`
	// FilteredPool is the filtered scan fanned over the parallel
	// engine (4 workers) — filter and fan-out compose.
	FilteredPool float64 `json:"filter_parallel4_MBps"`
	// SkippedPct is the fraction of window positions never examined.
	SkippedPct float64 `json:"filter_windows_skipped_pct"`
	// Speedup is filtered-sequential over the unfiltered kernel on the
	// same dictionary and traffic: the banked win (absolute floor 2x).
	Speedup float64 `json:"speedup_filter_vs_kernel"`
}

// filterBenchShape is the canonical long-pattern workload: 48
// signatures of length 16..40 (workload.LongPatternDictionary seed 5),
// shared with bench_test.go's BenchmarkFilter* so the go-test numbers
// and this gated artifact measure the same dictionary.
const (
	filterBenchPatterns = 48
	filterBenchMinLen   = 16
	filterBenchMaxLen   = 40
	filterBenchSeed     = 5
)

// runFilterBench measures the filtered vs unfiltered scan on the same
// matcher and traffic, prints the comparison, and optionally writes
// the JSON artifact.
func runFilterBench(w io.Writer, inputBytes int, jsonPath string) error {
	pats, err := workload.LongPatternDictionary(
		filterBenchPatterns, filterBenchMinLen, filterBenchMaxLen, filterBenchSeed)
	if err != nil {
		return err
	}
	var data []byte
	data, _, err = workload.Traffic(workload.TrafficConfig{
		Bytes: inputBytes, MatchEvery: 64 << 10, Dictionary: pats, Seed: 44,
	})
	if err != nil {
		return err
	}
	// Stride pinned to 1: speedup_filter_vs_kernel has always meant
	// "filter vs the 1-byte kernel", and the stride-2 rung has its own
	// gated rows in BENCH_kernel.json.
	m, err := core.Compile(pats, core.Options{
		Engine: core.EngineOptions{Filter: core.FilterOn, Stride: 1},
	})
	if err != nil {
		return err
	}
	st := m.Stats()
	if !st.FilterEnabled || st.Engine != "kernel" {
		return fmt.Errorf("filter bench expects kernel+filter, got engine=%s filter=%v",
			st.Engine, st.FilterEnabled)
	}
	res := FilterBench{
		InputBytes:    inputBytes,
		Patterns:      st.Patterns,
		MinPatternLen: st.MinPatternLen,
		Window:        st.FilterWindow,
	}

	if res.KernelUnfiltered, err = measureMBps(inputBytes, func() error {
		_, err := m.FindAllUnfiltered(data)
		return err
	}); err != nil {
		return err
	}
	before := m.Stats().WindowsSkipped
	scans := 0
	if res.FilteredSeq, err = measureMBps(inputBytes, func() error {
		scans++
		_, err := m.FindAll(data)
		return err
	}); err != nil {
		return err
	}
	if positions := int64(scans) * int64(len(data)-st.FilterWindow+1); positions > 0 {
		res.SkippedPct = 100 * float64(m.Stats().WindowsSkipped-before) / float64(positions)
	}
	if res.FilteredPool, err = measureMBps(inputBytes, func() error {
		_, err := m.FindAllParallel(data, core.ParallelOptions{Workers: 4})
		return err
	}); err != nil {
		return err
	}
	if res.KernelUnfiltered > 0 {
		res.Speedup = res.FilteredSeq / res.KernelUnfiltered
	}

	fmt.Fprintf(w, "== Skip-scan filter: long-pattern workload (%d patterns, window %d, %d MiB) ==\n",
		res.Patterns, res.Window, inputBytes>>20)
	t := report.NewTable("Scan path", "MB/s")
	t.Row("kernel, filter off (every byte)", res.KernelUnfiltered)
	t.Row("kernel + filter, sequential", res.FilteredSeq)
	t.Row("kernel + filter, parallel 4 workers", res.FilteredPool)
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "windows skipped: %.1f%%; filtered vs unfiltered kernel: %.2fx\n\n",
		res.SkippedPct, res.Speedup)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
