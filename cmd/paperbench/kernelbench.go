package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/core"
	"cellmatch/internal/dfa"
	"cellmatch/internal/report"
	"cellmatch/internal/stt"
	"cellmatch/internal/tile"
	"cellmatch/internal/workload"
)

// KernelBench is the old-vs-new scan engine comparison on the paper's
// NIDS-style 1520-state dictionary, serialized to BENCH_kernel.json by
// the CI regression job so the perf trajectory is tracked per commit.
type KernelBench struct {
	InputBytes    int     `json:"input_bytes"`
	DictStates    int     `json:"dict_states"`
	STTLookupSeq  float64 `json:"stt_lookup_seq_MBps"`
	STTFindAllSeq float64 `json:"stt_findall_seq_MBps"`
	KernelSeq     float64 `json:"kernel_seq_MBps"`
	KernelK2      float64 `json:"kernel_interleaved_k2_MBps"`
	KernelK4      float64 `json:"kernel_interleaved_k4_MBps"`
	KernelK8      float64 `json:"kernel_interleaved_k8_MBps"`
	// The stride-2 rows measure the rung on its home workload: the
	// log-scan scenario (small alert dictionary over structured log
	// lines), whose pair tables pass the L2-residency auto gate. The
	// NIDS dictionary above does not qualify — its 6 MiB pair table
	// spills past L2 and measures at parity with the 1-byte kernel,
	// which is exactly why the auto policy refuses it.
	// Stride2KernelSeq is the 1-byte kernel on the SAME log-scan
	// workload: the denominator of SpeedupStride2.
	Stride2KernelSeq float64 `json:"stride2_logscan_kernel_seq_MBps"`
	Stride2Seq       float64 `json:"stride2_seq_MBps"`
	Stride2K4        float64 `json:"stride2_interleaved_k4_MBps"`
	// The compressed rows measure the rung on its home workload: a
	// dictionary whose dense table overflows the budget but whose
	// compressed rows stay L2-resident, so the auto ladder genuinely
	// selects the rung. STTCompressedDict is the stt fallback on the
	// SAME dictionary — what serving that dictionary would cost without
	// the rung, and the denominator of SpeedupCompressed.
	CompressedDictStates int     `json:"compressed_dict_states"`
	CompressedSeq        float64 `json:"compressed_MBps"`
	STTCompressedDict    float64 `json:"stt_compressed_dict_MBps"`
	Parallel4            float64 `json:"parallel_4workers_kernel_MBps"`
	SpeedupVsLookup      float64 `json:"speedup_kernel_vs_stt_lookup"`
	SpeedupStride2       float64 `json:"speedup_stride2_vs_kernel"`
	SpeedupCompressed    float64 `json:"speedup_compressed_vs_stt"`
}

// measureMBps times fn over the given volume: one warmup run, then the
// best of three — the usual noise-robust choice for short walls.
func measureMBps(bytes int, fn func() error) (float64, error) {
	if err := fn(); err != nil {
		return 0, err
	}
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(bytes) / 1e6 / best.Seconds(), nil
}

// runKernelBench measures every engine configuration on the same
// dictionary and traffic, prints the comparison table, and optionally
// writes the JSON artifact. d is the already-built paper DFA (the
// same 1520-state dictionary, Seed 1).
func runKernelBench(w io.Writer, d *dfa.DFA, inputBytes int, jsonPath string) error {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		return err
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: inputBytes, MatchEvery: 64 << 10, Dictionary: pats, Seed: 21,
	})
	if err != nil {
		return err
	}
	res := KernelBench{InputBytes: inputBytes}

	// The raw stt.Lookup comparator: alphabet reduction pass plus the
	// pointer-encoded table walk (tile.ScalarCount), end to end from
	// raw bytes exactly like the kernel.
	res.DictStates = d.NumStates()
	tab, err := stt.Encode(d, 32, 0)
	if err != nil {
		return err
	}
	red := alphabet.CaseFold32()
	scratch := make([]byte, len(data))
	res.STTLookupSeq, err = measureMBps(inputBytes, func() error {
		red.Apply(scratch, data)
		tile.ScalarCount(tab, scratch)
		return nil
	})
	if err != nil {
		return err
	}

	findAll := func(engine core.EngineOptions, wantEngine string) (float64, error) {
		// Pinned off: this mode measures the raw engines; the skip-scan
		// front-end has its own gated mode (-filter).
		engine.Filter = core.FilterOff
		m, err := core.Compile(pats, core.Options{CaseFold: true, Engine: engine})
		if err != nil {
			return 0, err
		}
		if got := m.Stats().Engine; got != wantEngine {
			return 0, fmt.Errorf("engine %q, want %q", got, wantEngine)
		}
		return measureMBps(inputBytes, func() error {
			_, err := m.FindAll(data)
			return err
		})
	}
	if res.STTFindAllSeq, err = findAll(core.EngineOptions{DisableKernel: true}, "stt"); err != nil {
		return err
	}
	// Kernel rows pin Stride 1: they measure the 1-byte loops the
	// stride-2 rows are compared against.
	if res.KernelSeq, err = findAll(core.EngineOptions{InterleaveK: 1, Stride: 1}, "kernel"); err != nil {
		return err
	}
	if res.KernelK2, err = findAll(core.EngineOptions{InterleaveK: 2, Stride: 1}, "kernel"); err != nil {
		return err
	}
	if res.KernelK4, err = findAll(core.EngineOptions{InterleaveK: 4, Stride: 1}, "kernel"); err != nil {
		return err
	}
	if res.KernelK8, err = findAll(core.EngineOptions{InterleaveK: 8, Stride: 1}, "kernel"); err != nil {
		return err
	}
	// Stride-2 section: the log-scan scenario, where the pair tables
	// are L2-resident and stride auto actually selects the rung. Both
	// sides scan the same corpus with the same dictionary; only the
	// stride differs.
	logScen, err := workload.LogScenario(8, inputBytes)
	if err != nil {
		return err
	}
	logFindAll := func(engine core.EngineOptions, wantEngine string) (float64, error) {
		engine.Filter = core.FilterOff
		m, err := core.Compile(logScen.Patterns, core.Options{Engine: engine})
		if err != nil {
			return 0, err
		}
		if got := m.Stats().Engine; got != wantEngine {
			return 0, fmt.Errorf("log-scan engine %q, want %q", got, wantEngine)
		}
		return measureMBps(len(logScen.Corpus), func() error {
			_, err := m.FindAll(logScen.Corpus)
			return err
		})
	}
	if res.Stride2KernelSeq, err = logFindAll(core.EngineOptions{InterleaveK: 1, Stride: 1}, "kernel"); err != nil {
		return err
	}
	if res.Stride2Seq, err = logFindAll(core.EngineOptions{InterleaveK: 1, Stride: 2}, "stride2"); err != nil {
		return err
	}
	if res.Stride2K4, err = logFindAll(core.EngineOptions{InterleaveK: 4, Stride: 2}, "stride2"); err != nil {
		return err
	}
	// Compressed section: a dictionary big enough that its dense table
	// overflows a 2 MiB budget while the compressed rows stay inside
	// the L2 residency gate — the over-dense-budget regime the rung
	// exists for. The stt comparator runs the same dictionary with the
	// kernel tiers disabled.
	bigPats, err := workload.Dictionary(workload.DictConfig{TargetStates: 30000, Seed: 3})
	if err != nil {
		return err
	}
	bigData, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: inputBytes, MatchEvery: 64 << 10, Dictionary: bigPats, Seed: 23,
	})
	if err != nil {
		return err
	}
	bigFindAll := func(engine core.EngineOptions, wantEngine string) (float64, int, error) {
		engine.Filter = core.FilterOff
		m, err := core.Compile(bigPats, core.Options{CaseFold: true, Engine: engine})
		if err != nil {
			return 0, 0, err
		}
		if got := m.Stats().Engine; got != wantEngine {
			return 0, 0, fmt.Errorf("big-dictionary engine %q, want %q", got, wantEngine)
		}
		mbps, err := measureMBps(inputBytes, func() error {
			_, err := m.FindAll(bigData)
			return err
		})
		return mbps, m.Stats().States, err
	}
	if res.CompressedSeq, res.CompressedDictStates, err = bigFindAll(
		core.EngineOptions{MaxTableBytes: 2 << 20}, "compressed"); err != nil {
		return err
	}
	if res.STTCompressedDict, _, err = bigFindAll(
		core.EngineOptions{DisableKernel: true}, "stt"); err != nil {
		return err
	}
	mk, err := core.Compile(pats, core.Options{
		CaseFold: true,
		Engine:   core.EngineOptions{Filter: core.FilterOff, Stride: 1},
	})
	if err != nil {
		return err
	}
	res.Parallel4, err = measureMBps(inputBytes, func() error {
		_, err := mk.FindAllParallel(data, core.ParallelOptions{Workers: 4})
		return err
	})
	if err != nil {
		return err
	}
	if res.STTLookupSeq > 0 {
		best := res.KernelSeq
		for _, v := range []float64{res.KernelK2, res.KernelK4, res.KernelK8} {
			if v > best {
				best = v
			}
		}
		res.SpeedupVsLookup = best / res.STTLookupSeq
	}
	if res.Stride2KernelSeq > 0 {
		res.SpeedupStride2 = res.Stride2Seq / res.Stride2KernelSeq
	}
	if res.STTCompressedDict > 0 {
		res.SpeedupCompressed = res.CompressedSeq / res.STTCompressedDict
	}

	fmt.Fprintf(w, "== Kernel engine: old vs new scan throughput (%d-state dictionary, %d MiB) ==\n",
		res.DictStates, inputBytes>>20)
	t := report.NewTable("Engine", "MB/s")
	t.Row("stt.Lookup sequential (reduce + pointer walk)", res.STTLookupSeq)
	t.Row("stt path FindAll (pre-kernel production)", res.STTFindAllSeq)
	t.Row("kernel single-stream", res.KernelSeq)
	t.Row("kernel interleaved K=2", res.KernelK2)
	t.Row("kernel interleaved K=4", res.KernelK4)
	t.Row("kernel interleaved K=8", res.KernelK8)
	t.Row("log-scan kernel single-stream", res.Stride2KernelSeq)
	t.Row("log-scan stride-2 single-stream", res.Stride2Seq)
	t.Row("log-scan stride-2 interleaved K=4", res.Stride2K4)
	t.Row("compressed rows (over-dense-budget dictionary)", res.CompressedSeq)
	t.Row("stt fallback on the same dictionary", res.STTCompressedDict)
	t.Row("kernel + parallel 4 workers", res.Parallel4)
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "best kernel vs stt.Lookup sequential: %.2fx\n", res.SpeedupVsLookup)
	fmt.Fprintf(w, "stride-2 vs kernel single-stream (log-scan): %.2fx\n", res.SpeedupStride2)
	fmt.Fprintf(w, "compressed vs stt on a %d-state over-budget dictionary: %.2fx\n\n",
		res.CompressedDictStates, res.SpeedupCompressed)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
