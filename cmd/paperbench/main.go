// Command paperbench regenerates every table and figure of the
// paper's evaluation on the simulated substrate:
//
//	paperbench -all        # everything (default)
//	paperbench -table1     # implementation versions 1-5
//	paperbench -fig2       # aggregate DMA bandwidth vs block size
//	paperbench -fig3       # local-store budgets
//	paperbench -fig4       # kernel instruction mix (SIMD data flow)
//	paperbench -fig5       # double-buffering schedule
//	paperbench -fig6       # series/parallel composition arithmetic
//	paperbench -fig7       # mixed composition
//	paperbench -fig8       # dynamic STT replacement schedule
//	paperbench -fig9       # throughput vs aggregate STT size
//	paperbench -kernel     # host scan engines: stt path vs dense kernel
//	paperbench -server     # serving layer: cellmatchd end-to-end over HTTP
//	paperbench -shards     # sharded engine: over-budget dictionary vs stt fallback
//	paperbench -filter     # skip-scan front-end vs the unfiltered kernel
//	paperbench -scenarios  # workload scenario suite across deployment regimes
//	paperbench -compile    # compile latency: cold vs parallel vs delta patch
//	paperbench -overload   # load-shedding smoke: 429s under oversubscription,
//	                       # zero failed responses, budget respected
//
// With -kernel, -benchjson FILE additionally writes the measured MB/s
// (sequential, parallel, kernel, interleaved-K) as a JSON artifact —
// the BENCH_kernel.json regression file CI archives per commit; with
// -server, -serverjson FILE does the same for the serving layer
// (BENCH_server.json), with -shards, -shardsjson FILE for the sharded
// tier (BENCH_shards.json), with -filter, -filterjson FILE for the
// skip-scan front-end (BENCH_filter.json), and with -scenarios,
// -scenariosjson FILE for the per-scenario suite (BENCH_scenarios.json:
// one scenario_<name>_MBps row per scenario plus skip-ratio evidence,
// with the regex scenario also served through the in-process HTTP
// stack), and with -compile, -compilejson FILE for the compile-latency
// rows (BENCH_compile.json: cold vs parallel vs incremental delta
// patch over a -compilepats fleet dictionary, lower-is-better *_ms
// rows plus the two speedup ratios).
//
// The CI bench-regression gate runs as a separate mode, accepting one
// or more comma-separated baseline/candidate pairs:
//
//	paperbench -checkbench \
//	  -baseline BENCH_kernel.json,BENCH_server.json,BENCH_shards.json \
//	  -candidate new_kernel.json,new_server.json,new_shards.json
//
// printing a baseline-vs-candidate markdown table per pair and exiting
// nonzero when any gated metric drops more than -maxdrop (default 20%)
// below the committed baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/eib"
	"cellmatch/internal/localstore"
	"cellmatch/internal/pipeline"
	"cellmatch/internal/report"
	"cellmatch/internal/sim"
	"cellmatch/internal/tile"
	"cellmatch/internal/workload"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
		os.Exit(2)
	}
	if cfg.check {
		if err := runBenchCheckFiles(os.Stdout, cfg.baseline, cfg.candidate, cfg.maxDrop); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}
	if cfg.overload {
		if err := runOverloadSmoke(os.Stdout, cfg.overloadClients, cfg.overloadInflight); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdout, cfg.secs); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// cliConfig is the parsed command line: either the bench-regression
// gate (check) or a section selection to measure.
type cliConfig struct {
	check     bool
	baseline  string
	candidate string
	maxDrop   float64

	overload         bool
	overloadClients  int
	overloadInflight int

	secs sections
}

// parseFlags parses args into a cliConfig, applying the default-to
// -all rule and validating -checkbench's requirements. Split out of
// main so tests can drive the exact CLI surface.
func parseFlags(args []string, errOut io.Writer) (*cliConfig, error) {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		all    = fs.Bool("all", false, "run everything")
		table1 = fs.Bool("table1", false, "Table 1: implementation versions")
		fig2   = fs.Bool("fig2", false, "Figure 2: DMA bandwidth")
		fig3   = fs.Bool("fig3", false, "Figure 3: local store budgets")
		fig4   = fs.Bool("fig4", false, "Figure 4: kernel instruction mix")
		fig5   = fs.Bool("fig5", false, "Figure 5: double buffering")
		fig6   = fs.Bool("fig6", false, "Figure 6: series/parallel composition")
		fig7   = fs.Bool("fig7", false, "Figure 7: mixed composition")
		fig8   = fs.Bool("fig8", false, "Figure 8: dynamic STT replacement")
		fig9   = fs.Bool("fig9", false, "Figure 9: throughput vs dictionary size")
		kern   = fs.Bool("kernel", false, "host scan engines: stt path vs dense kernel")
		kernMB = fs.Int("kernelmb", 8, "kernel benchmark input size in MiB")
		bjson  = fs.String("benchjson", "", "with -kernel: write BENCH JSON to this file")
		serv   = fs.Bool("server", false, "serving layer: cellmatchd end-to-end throughput")
		servMB = fs.Int("servermb", 16, "server benchmark input size in MiB")
		sjson  = fs.String("serverjson", "", "with -server: write BENCH_server JSON to this file")
		shard  = fs.Bool("shards", false, "sharded engine: over-budget dictionary vs stt fallback, with a per-shard budget sweep")
		shMB   = fs.Int("shardsmb", 8, "shards benchmark input size in MiB")
		shjson = fs.String("shardsjson", "", "with -shards: write BENCH_shards JSON to this file")
		filt   = fs.Bool("filter", false, "skip-scan front-end: filtered vs unfiltered kernel on the long-pattern workload")
		fMB    = fs.Int("filtermb", 16, "filter benchmark input size in MiB")
		fjson  = fs.String("filterjson", "", "with -filter: write BENCH_filter JSON to this file")
		scen   = fs.Bool("scenarios", false, "workload scenario suite: per-scenario throughput across deployment regimes")
		scenKB = fs.Int("scenarioskb", 4096, "per-scenario corpus size in KiB")
		scjson = fs.String("scenariosjson", "", "with -scenarios: write BENCH_scenarios JSON to this file")
		comp   = fs.Bool("compile", false, "dictionary compile latency: cold vs parallel vs incremental delta patch")
		cpPats = fs.Int("compilepats", 50000, "with -compile: fleet dictionary size in patterns")
		cpjson = fs.String("compilejson", "", "with -compile: write BENCH_compile JSON to this file")

		overload     = fs.Bool("overload", false, "load-shedding smoke: oversubscribe a tiny admission budget and verify 429s with zero failed responses")
		overClients  = fs.Int("overloadclients", 16, "with -overload: concurrent clients in the burst")
		overInflight = fs.Int("overloadinflight", 2, "with -overload: server max-inflight budget under test")

		check     = fs.Bool("checkbench", false, "bench-regression gate: compare -candidate against -baseline and exit nonzero on regression")
		baseline  = fs.String("baseline", "BENCH_kernel.json", "with -checkbench: committed baseline JSON (comma-separated for multiple files)")
		candidate = fs.String("candidate", "", "with -checkbench: freshly measured JSON (comma-separated, pairwise with -baseline)")
		maxDrop   = fs.Float64("maxdrop", 0.20, "with -checkbench: allowed fractional drop per gated metric")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *check {
		if *candidate == "" {
			return nil, fmt.Errorf("-checkbench requires -candidate")
		}
		return &cliConfig{check: true, baseline: *baseline, candidate: *candidate, maxDrop: *maxDrop}, nil
	}
	if *overload {
		if *overClients <= *overInflight {
			return nil, fmt.Errorf("-overloadclients (%d) must exceed -overloadinflight (%d)", *overClients, *overInflight)
		}
		return &cliConfig{overload: true, overloadClients: *overClients, overloadInflight: *overInflight}, nil
	}
	any := *table1 || *fig2 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *fig9 ||
		*kern || *serv || *shard || *filt || *scen || *comp
	if *all || !any {
		*table1, *fig2, *fig3, *fig4, *fig5 = true, true, true, true, true
		*fig6, *fig7, *fig8, *fig9 = true, true, true, true
		*kern, *serv, *shard, *filt, *scen, *comp = true, true, true, true, true, true
	}
	return &cliConfig{secs: sections{
		table1: *table1, fig2: *fig2, fig3: *fig3, fig4: *fig4, fig5: *fig5,
		fig6: *fig6, fig7: *fig7, fig8: *fig8, fig9: *fig9,
		kernel: *kern, kernelBytes: *kernMB << 20, benchJSON: *bjson,
		server: *serv, serverBytes: *servMB << 20, serverJSON: *sjson,
		shards: *shard, shardBytes: *shMB << 20, shardJSON: *shjson,
		filter: *filt, filterBytes: *fMB << 20, filterJSON: *fjson,
		scenarios: *scen, scenarioBytes: *scenKB << 10, scenarioJSON: *scjson,
		compile: *comp, compilePats: *cpPats, compileJSON: *cpjson,
	}}, nil
}

// sections selects which tables/figures to regenerate.
type sections struct {
	table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9 bool

	// kernel runs the host scan-engine comparison (stt path vs dense
	// kernel) over kernelBytes of traffic, optionally writing the MB/s
	// JSON artifact to benchJSON.
	kernel      bool
	kernelBytes int
	benchJSON   string

	// server runs the end-to-end serving-layer benchmark (in-process
	// cellmatchd over HTTP) over serverBytes of traffic, optionally
	// writing the JSON artifact to serverJSON.
	server      bool
	serverBytes int
	serverJSON  string

	// shards runs the sharded-engine benchmark (over-budget dictionary
	// vs the stt fallback, plus a per-shard budget sweep) over
	// shardBytes of traffic, optionally writing the JSON artifact to
	// shardJSON.
	shards     bool
	shardBytes int
	shardJSON  string

	// filter runs the skip-scan front-end benchmark (filtered vs
	// unfiltered kernel on the long-pattern workload) over filterBytes
	// of traffic, optionally writing the JSON artifact to filterJSON.
	filter      bool
	filterBytes int
	filterJSON  string

	// scenarios runs the workload scenario suite (per-scenario
	// throughput and skip ratio across deployment regimes, with the
	// regex scenario served through the in-process HTTP stack) at
	// scenarioBytes per corpus, optionally writing the JSON artifact
	// to scenarioJSON.
	scenarios     bool
	scenarioBytes int
	scenarioJSON  string

	// compile runs the compile-latency benchmark (cold vs parallel vs
	// incremental delta patch) over a compilePats-pattern fleet
	// dictionary, optionally writing the JSON artifact to compileJSON.
	compile     bool
	compilePats int
	compileJSON string
}

func run(w io.Writer, s sections) error {
	d, err := paperDFA()
	if err != nil {
		return err
	}
	var base tile.Table1Row
	if s.table1 || s.fig5 || s.fig6 || s.fig7 || s.fig8 || s.fig9 {
		rows, err := runTable1(w, d, s.table1)
		if err != nil {
			return err
		}
		base = tile.BestVersion(rows)
	}
	if s.fig2 {
		if err := runFigure2(w); err != nil {
			return err
		}
	}
	if s.fig3 {
		if err := runFigure3(w); err != nil {
			return err
		}
	}
	if s.fig4 {
		if err := runFigure4(w, d); err != nil {
			return err
		}
	}
	if s.fig5 {
		if err := runFigure5(w, base); err != nil {
			return err
		}
	}
	if s.fig6 || s.fig7 {
		if err := runComposition(w, base, s.fig6, s.fig7); err != nil {
			return err
		}
	}
	if s.fig8 {
		if err := runFigure8(w, base); err != nil {
			return err
		}
	}
	if s.fig9 {
		if err := runFigure9(w, base); err != nil {
			return err
		}
	}
	if s.kernel {
		bytes := s.kernelBytes
		if bytes <= 0 {
			bytes = 8 << 20
		}
		if err := runKernelBench(w, d, bytes, s.benchJSON); err != nil {
			return err
		}
	}
	if s.server {
		bytes := s.serverBytes
		if bytes <= 0 {
			bytes = 16 << 20
		}
		if err := runServerBench(w, bytes, s.serverJSON); err != nil {
			return err
		}
	}
	if s.shards {
		bytes := s.shardBytes
		if bytes <= 0 {
			bytes = 8 << 20
		}
		if err := runShardBench(w, bytes, s.shardJSON); err != nil {
			return err
		}
	}
	if s.filter {
		bytes := s.filterBytes
		if bytes <= 0 {
			bytes = 16 << 20
		}
		if err := runFilterBench(w, bytes, s.filterJSON); err != nil {
			return err
		}
	}
	if s.scenarios {
		bytes := s.scenarioBytes
		if bytes <= 0 {
			bytes = 4 << 20
		}
		if err := runScenarioBench(w, bytes, s.scenarioJSON); err != nil {
			return err
		}
	}
	if s.compile {
		npats := s.compilePats
		if npats <= 0 {
			npats = 50000
		}
		if err := runCompileBench(w, npats, s.compileJSON); err != nil {
			return err
		}
	}
	return nil
}

// paperDFA builds the ~1500-state dictionary the paper's tile holds.
func paperDFA() (*dfa.DFA, error) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		return nil, err
	}
	return dfa.FromPatterns(pats, alphabet.CaseFold32())
}

func runTable1(w io.Writer, d *dfa.DFA, print bool) ([]tile.Table1Row, error) {
	rows, err := tile.MeasureTable1(d, 16*1024, 1)
	if err != nil {
		return nil, err
	}
	if !print {
		return rows, nil
	}
	fmt.Fprintf(w, "== Table 1: DFA tile implementation versions (%d-state STT) ==\n", d.NumStates())
	tab := report.NewTable("Metric", "v1", "v2", "v3", "v4", "v5")
	row := func(name string, f func(tile.Table1Row) any) {
		cells := []any{name}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		tab.Row(cells...)
	}
	row("SIMD vectorization", func(r tile.Table1Row) any {
		if r.SIMD {
			return "yes"
		}
		return "no"
	})
	row("Loop unroll factor", func(r tile.Table1Row) any { return r.Unroll })
	row("Total cycles per block", func(r tile.Table1Row) any { return r.TotalCycles })
	row("State transitions", func(r tile.Table1Row) any { return r.Transitions })
	row("Cycles per transition", func(r tile.Table1Row) any { return r.CyclesPerTransition })
	row("Throughput (Mtrans/s)", func(r tile.Table1Row) any { return r.MTransPerSec })
	row("Throughput (Gbps)", func(r tile.Table1Row) any { return r.ThroughputGbps })
	row("Average CPI", func(r tile.Table1Row) any { return r.CPI })
	row("Dual issue %", func(r tile.Table1Row) any { return r.DualIssuePct })
	row("Stall %", func(r tile.Table1Row) any { return r.StallPct })
	row("Registers used", func(r tile.Table1Row) any {
		if r.Spilled {
			return "spill"
		}
		return r.RegistersUsed
	})
	row("Speedup", func(r tile.Table1Row) any { return r.Speedup })
	if err := tab.Write(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	return rows, nil
}

func runFigure2(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 2: aggregate memory bandwidth (GB/s) vs SPE count ==")
	tab := report.NewTable("SPEs", "64B", "128B", "256B", "512B+")
	for k := 1; k <= 8; k++ {
		cells := []any{k}
		for _, b := range []int64{64, 128, 256, 16384} {
			agg := eib.AggregateBandwidth(k, b, 100*sim.Microsecond)
			cells = append(cells, agg/1e9)
		}
		tab.Row(cells...)
	}
	if err := tab.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runFigure3(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 3: SPE local store usage per tile case ==")
	tab := report.NewTable("Case", "Input buffers", "STT size", "States", "Code+stack")
	for i, p := range localstore.Figure3Cases() {
		tab.Row(i+1,
			fmt.Sprintf("2 x %d KB", p.BufBytes/1024),
			fmt.Sprintf("%d KB", p.STTBytes/1024),
			p.MaxStates,
			fmt.Sprintf("%d KB", p.CodeStack/1024))
	}
	if err := tab.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runFigure4(w io.Writer, d *dfa.DFA) error {
	fmt.Fprintln(w, "== Figure 4: optimal SIMD kernel data flow (static mix) ==")
	tl, err := tile.New(d, tile.Config{Version: 4})
	if err != nil {
		return err
	}
	block := make([]byte, 48*16)
	if _, _, err := tl.MatchBlockSim(block); err != nil {
		return err
	}
	mix := tile.MixOf(tl.LastProgram, nil)
	tab := report.NewTable("Class", "Static instructions", "Figure 4 role")
	tab.Row("loads", mix.Loads, "input quadwords + 16 gathers per group")
	tab.Row("shuffles/rotates", mix.Shuffles, "16 offset extractions + entry alignment")
	tab.Row("SIMD/SISD arithmetic", mix.SIMDArith, "shifts, address adds, flag ANDs, counts")
	tab.Row("stores", mix.Stores, "epilogue count writeback")
	tab.Row("branches", mix.Branches, "loop control (hinted)")
	if err := tab.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func runFigure5(w io.Writer, base tile.Table1Row) error {
	cpt := base.CyclesPerTransition
	if cpt == 0 {
		cpt = 5.01
	}
	fmt.Fprintf(w, "== Figure 5: double-buffering schedule (16 KB blocks, %.2f cyc/transition, 8 SPEs) ==\n", cpt)
	res := pipeline.RunDoubleBuffer(pipeline.Figure5Config{
		Blocks: 4, CyclesPerTransition: cpt,
	})
	var entries []report.TimelineEntry
	for _, p := range res.Transfers {
		entries = append(entries, report.TimelineEntry{
			Lane: p.Name, Label: p.Label, Start: p.Start.Micros(), End: p.End.Micros()})
	}
	for _, p := range res.Computes {
		entries = append(entries, report.TimelineEntry{
			Lane: p.Name, Label: p.Label, Start: p.Start.Micros(), End: p.End.Micros()})
	}
	if err := report.WriteTimeline(w, entries); err != nil {
		return err
	}
	fmt.Fprintf(w, "compute utilization after first load: %.1f%%; effective %.2f Gbps\n\n",
		res.SteadyUtilization*100, res.ThroughputGbps)
	return nil
}

func runComposition(w io.Writer, base tile.Table1Row, f6, f7 bool) error {
	per := base.ThroughputGbps
	if per == 0 {
		per = 5.11
	}
	if f6 {
		fmt.Fprintln(w, "== Figure 6: composing tiles in parallel and in series ==")
		tab := report.NewTable("Configuration", "Tiles", "Throughput (Gbps)", "Dictionary states")
		tab.Row("1 tile", 1, per, 1520)
		tab.Row("2 in parallel (same STT)", 2, compose.Parallel(2).ThroughputGbps(per), 1520)
		tab.Row("2 in series (distinct STTs)", 2, compose.Series(2).ThroughputGbps(per), 2*1520)
		tab.Row("8 in parallel (one Cell)", 8, compose.Parallel(8).ThroughputGbps(per), 1520)
		tab.Row("16 in parallel (dual blade)", 16, compose.Parallel(16).ThroughputGbps(per), 1520)
		if err := tab.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if f7 {
		fmt.Fprintln(w, "== Figure 7: mixed series/parallel configuration ==")
		topo := compose.Mixed(2, 4)
		fmt.Fprintf(w, "2 groups x 4 series tiles = %d SPEs: %.2f Gbps, ~%dx dictionary\n\n",
			topo.TotalTiles(), topo.ThroughputGbps(per), topo.SeriesDepth)
	}
	return nil
}

func runFigure8(w io.Writer, base tile.Table1Row) error {
	cpt := base.CyclesPerTransition
	if cpt == 0 {
		cpt = 5.01
	}
	fmt.Fprintln(w, "== Figure 8: dynamic STT replacement schedule (n=3 STTs) ==")
	res := pipeline.RunReplacement(pipeline.ReplacementConfig{
		STTs: 3, Pairs: 2, CyclesPerTransition: cpt,
	})
	var entries []report.TimelineEntry
	for _, p := range res.Timeline {
		entries = append(entries, report.TimelineEntry{
			Lane: p.Name, Label: p.Label, Start: p.Start.Micros(), End: p.End.Micros()})
	}
	if err := report.WriteTimeline(w, entries); err != nil {
		return err
	}
	fmt.Fprintf(w, "effective per-SPE bandwidth: %.2f Gbps (paper closed form: %.2f)\n\n",
		res.EffectiveGbps, pipeline.PaperReplacementGbps(base.ThroughputGbps, 3))
	return nil
}

func runFigure9(w io.Writer, base tile.Table1Row) error {
	per := base.ThroughputGbps
	if per == 0 {
		per = 5.11
	}
	fmt.Fprintln(w, "== Figure 9: throughput vs aggregate STT size, dynamic replacement ==")
	tab := report.NewTable("STTs", "Aggregate KB", "SPEs", "Paper (Gbps)", "Simulated (Gbps)")
	for _, p := range pipeline.Figure9(per, []int{1, 2, 4, 8}, 6) {
		tab.Row(p.STTs, p.AggregateKB, p.SPEs, p.PaperGbps, p.SimulatedGbps)
	}
	if err := tab.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}
