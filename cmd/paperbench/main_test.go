package main

import (
	"strings"
	"testing"
)

func TestRunCheapFigures(t *testing.T) {
	// Figures 2, 3, 6, 7 are analytic (no simulator run beyond the
	// base Table 1 measurement), so -all minus the heavy sections
	// exercises the full reporting path quickly.
	var b strings.Builder
	err := run(&b, sections{fig2: true, fig3: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Figure 2: aggregate memory bandwidth",
		"== Figure 3: SPE local store usage",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1AndComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SPU simulator over five kernel versions")
	}
	var b strings.Builder
	err := run(&b, sections{table1: true, fig6: true, fig7: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Table 1: DFA tile implementation versions",
		"Cycles per transition",
		"== Figure 6: composing tiles in parallel and in series",
		"== Figure 7: mixed series/parallel configuration",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigures4589(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SPU simulator")
	}
	var b strings.Builder
	err := run(&b, sections{fig4: true, fig5: true, fig8: true, fig9: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Figure 4: optimal SIMD kernel data flow",
		"== Figure 5: double-buffering schedule",
		"== Figure 8: dynamic STT replacement schedule",
		"== Figure 9: throughput vs aggregate STT size",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPaperDFAShape(t *testing.T) {
	d, err := paperDFA()
	if err != nil {
		t.Fatal(err)
	}
	if n := d.NumStates(); n < 1400 || n > 1520 {
		t.Fatalf("paper DFA has %d states, want ~1520", n)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}
