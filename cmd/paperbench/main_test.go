package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCheapFigures(t *testing.T) {
	// Figures 2, 3, 6, 7 are analytic (no simulator run beyond the
	// base Table 1 measurement), so -all minus the heavy sections
	// exercises the full reporting path quickly.
	var b strings.Builder
	err := run(&b, sections{fig2: true, fig3: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Figure 2: aggregate memory bandwidth",
		"== Figure 3: SPE local store usage",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1AndComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SPU simulator over five kernel versions")
	}
	var b strings.Builder
	err := run(&b, sections{table1: true, fig6: true, fig7: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Table 1: DFA tile implementation versions",
		"Cycles per transition",
		"== Figure 6: composing tiles in parallel and in series",
		"== Figure 7: mixed series/parallel configuration",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFigures4589(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the SPU simulator")
	}
	var b strings.Builder
	err := run(&b, sections{fig4: true, fig5: true, fig8: true, fig9: true})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Figure 4: optimal SIMD kernel data flow",
		"== Figure 5: double-buffering schedule",
		"== Figure 8: dynamic STT replacement schedule",
		"== Figure 9: throughput vs aggregate STT size",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunKernelBenchJSON(t *testing.T) {
	var b strings.Builder
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	// 64 KiB keeps the timing loops fast; the JSON schema and engine
	// selection are what this test pins.
	err := run(&b, sections{kernel: true, kernelBytes: 64 << 10, benchJSON: path})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Kernel engine: old vs new scan throughput",
		"kernel interleaved K=4",
		"stride-2 single-stream",
		"best kernel vs stt.Lookup sequential",
		"stride-2 vs kernel single-stream",
		"compressed rows (over-dense-budget dictionary)",
		"compressed vs stt on a",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res KernelBench
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_kernel.json does not parse: %v", err)
	}
	if res.InputBytes != 64<<10 || res.DictStates < 1400 {
		t.Fatalf("bench metadata wrong: %+v", res)
	}
	for name, v := range map[string]float64{
		"stt_lookup":     res.STTLookupSeq,
		"stt_findall":    res.STTFindAllSeq,
		"kernel_seq":     res.KernelSeq,
		"kernel_k2":      res.KernelK2,
		"kernel_k4":      res.KernelK4,
		"kernel_k8":      res.KernelK8,
		"stride2_seq":    res.Stride2Seq,
		"stride2_k4":     res.Stride2K4,
		"compressed_seq": res.CompressedSeq,
		"stt_compressed": res.STTCompressedDict,
		"parallel_4":     res.Parallel4,
		"speedup":        res.SpeedupVsLookup,
		"speedup_s2":     res.SpeedupStride2,
		"speedup_comp":   res.SpeedupCompressed,
	} {
		if v <= 0 {
			t.Fatalf("%s not measured: %+v", name, res)
		}
	}
	if res.CompressedDictStates < 20000 {
		t.Fatalf("compressed section dictionary too small to overflow the dense budget: %+v", res)
	}
	if !gatedMetric("compressed_MBps") || !gatedMetric("speedup_compressed_vs_stt") {
		t.Fatal("compressed rows not gated by -checkbench")
	}
	if gatedMetric("stt_compressed_dict_MBps") {
		t.Fatal("stt comparator row must stay informational")
	}
	if !metaMetric("compressed_dict_states") {
		t.Fatal("compressed_dict_states must be a meta field")
	}
}

func TestParseFlagsDefaultsToAll(t *testing.T) {
	var errOut strings.Builder
	cfg, err := parseFlags(nil, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.secs
	if cfg.check || !s.table1 || !s.kernel || !s.server || !s.shards || !s.filter || !s.scenarios || !s.compile {
		t.Fatalf("bare invocation did not select everything: %+v", s)
	}
	if s.kernelBytes != 8<<20 || s.serverBytes != 16<<20 || s.shardBytes != 8<<20 ||
		s.filterBytes != 16<<20 || s.scenarioBytes != 4<<20 || s.compilePats != 50000 {
		t.Fatalf("default sizes wrong: %+v", s)
	}
}

func TestParseFlagsSingleSection(t *testing.T) {
	var errOut strings.Builder
	cfg, err := parseFlags([]string{"-shards", "-shardsmb", "2", "-shardsjson", "out.json"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.secs
	if !s.shards || s.shardBytes != 2<<20 || s.shardJSON != "out.json" {
		t.Fatalf("-shards selection wrong: %+v", s)
	}
	if s.kernel || s.server || s.filter || s.scenarios || s.table1 {
		t.Fatalf("-shards selected extra sections: %+v", s)
	}

	cfg, err = parseFlags([]string{"-server", "-servermb", "1", "-serverjson", "s.json",
		"-filter", "-filtermb", "3", "-filterjson", "f.json",
		"-scenarios", "-scenarioskb", "512", "-scenariosjson", "sc.json"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	s = cfg.secs
	if !s.server || s.serverBytes != 1<<20 || s.serverJSON != "s.json" {
		t.Fatalf("-server flags wrong: %+v", s)
	}
	if !s.filter || s.filterBytes != 3<<20 || s.filterJSON != "f.json" {
		t.Fatalf("-filter flags wrong: %+v", s)
	}
	if !s.scenarios || s.scenarioBytes != 512<<10 || s.scenarioJSON != "sc.json" {
		t.Fatalf("-scenarios flags wrong: %+v", s)
	}
	if s.shards || s.kernel {
		t.Fatalf("unselected sections enabled: %+v", s)
	}

	cfg, err = parseFlags([]string{"-compile", "-compilepats", "1000", "-compilejson", "c.json"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	s = cfg.secs
	if !s.compile || s.compilePats != 1000 || s.compileJSON != "c.json" {
		t.Fatalf("-compile flags wrong: %+v", s)
	}
	if s.kernel || s.server || s.shards || s.filter || s.scenarios || s.table1 {
		t.Fatalf("-compile selected extra sections: %+v", s)
	}
}

func TestParseFlagsCheckbench(t *testing.T) {
	var errOut strings.Builder
	cfg, err := parseFlags([]string{"-checkbench",
		"-baseline", "a.json,b.json", "-candidate", "c.json,d.json", "-maxdrop", "0.1"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.check || cfg.baseline != "a.json,b.json" || cfg.candidate != "c.json,d.json" || cfg.maxDrop != 0.1 {
		t.Fatalf("checkbench config wrong: %+v", cfg)
	}
	if _, err := parseFlags([]string{"-checkbench"}, &errOut); err == nil {
		t.Fatal("-checkbench without -candidate accepted")
	}
	if _, err := parseFlags([]string{"-notaflag"}, &errOut); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, err := parseFlags([]string{"-kernel", "stray"}, &errOut); err == nil {
		t.Fatal("stray positional argument accepted")
	}
}

func TestRunScenarioBenchJSON(t *testing.T) {
	var b strings.Builder
	path := filepath.Join(t.TempDir(), "BENCH_scenarios.json")
	// 16 KiB corpora keep the suite fast; the flat schema, the gated
	// key shape, and the served-regex row are what this test pins.
	err := run(&b, sections{scenarios: true, scenarioBytes: 16 << 10, scenarioJSON: path})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Scenario suite: engine ladder across deployment regimes",
		"log-scan",
		"regex-logs (served /scan)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]float64
	if err := json.Unmarshal(blob, &metrics); err != nil {
		t.Fatalf("BENCH_scenarios.json does not parse: %v", err)
	}
	if metrics["scenarios"] < 5 {
		t.Fatalf("suite records %v scenarios, want >= 5", metrics["scenarios"])
	}
	gated := 0
	for k, v := range metrics {
		if strings.HasPrefix(k, "scenario_") && strings.HasSuffix(k, "_MBps") {
			gated++
			if !gatedMetric(k) {
				t.Fatalf("throughput key %s not gated by -checkbench", k)
			}
			if v <= 0 {
				t.Fatalf("%s not measured: %v", k, v)
			}
		}
	}
	if gated < 6 { // >= 5 scenarios + the served regex row
		t.Fatalf("only %d gated throughput rows", gated)
	}
	if _, ok := metrics["scenario_regex-logs_served_MBps"]; !ok {
		t.Fatal("regex scenario not served through the HTTP stack")
	}
	if gatedMetric("scenario_log-scan_skip_pct") {
		t.Fatal("skip-ratio evidence rows must stay informational")
	}
	if !metaMetric("scenarios") {
		t.Fatal("scenarios count must be a meta field")
	}
	if metrics["scenario_log-scan_skip_pct"] <= 0 {
		t.Fatalf("log-scan skip evidence missing: %v", metrics["scenario_log-scan_skip_pct"])
	}
}

func TestRunCompileBenchJSON(t *testing.T) {
	var b strings.Builder
	path := filepath.Join(t.TempDir(), "BENCH_compile.json")
	// 600 patterns keeps the fleet compiles in the milliseconds; the
	// schema, the identity checks, and the gating shape are what this
	// test pins (the speedups themselves are hardware-dependent).
	err := run(&b, sections{compile: true, compilePats: 600, compileJSON: path})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Compile latency: cold vs parallel vs incremental",
		"fleet cold (1 worker)",
		"fleet parallel (all cores)",
		"image identical",
		"scenario log-scan cold",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics map[string]float64
	if err := json.Unmarshal(blob, &metrics); err != nil {
		t.Fatalf("BENCH_compile.json does not parse: %v", err)
	}
	for _, key := range []string{
		"compile_fleet_cold_ms", "compile_fleet_parallel_ms",
		"compile_fleet_delta_add_ms", "speedup_compile_parallel",
		"speedup_compile_delta",
		"compile_scenario_log-scan_cold_ms", "compile_scenario_dlp-pii_delta_ms",
		"compile_scenario_malware-short_cold_ms",
	} {
		if metrics[key] <= 0 {
			t.Fatalf("%s not measured: %v", key, metrics)
		}
	}
	if metrics["compile_patterns"] != 600 || metrics["compile_cores"] < 1 {
		t.Fatalf("compile meta rows wrong: %v", metrics)
	}
	// Gating shape: fleet latencies banked (inverted), scenario rows
	// informational, meta rows meta.
	for _, key := range []string{"compile_fleet_cold_ms", "compile_fleet_delta_add_ms"} {
		if !gatedMetric(key) || !lowerIsBetter(key) {
			t.Fatalf("%s must be gated lower-is-better", key)
		}
	}
	if gatedMetric("compile_scenario_log-scan_cold_ms") {
		t.Fatal("scenario compile rows must stay informational")
	}
	if gatedMetric("speedup_compile_parallel") {
		t.Fatal("parallel speedup must gate via its conditional floor, not the relative gate")
	}
	if !gatedMetric("speedup_compile_delta") {
		t.Fatal("delta speedup must be gated")
	}
	if !metaMetric("compile_cores") || !metaMetric("compile_patterns") {
		t.Fatal("compile meta rows must be meta fields")
	}
}

func TestPaperDFAShape(t *testing.T) {
	d, err := paperDFA()
	if err != nil {
		t.Fatal(err)
	}
	if n := d.NumStates(); n < 1400 || n > 1520 {
		t.Fatalf("paper DFA has %d states, want ~1520", n)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunServerBenchJSON(t *testing.T) {
	var b strings.Builder
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	// 1 MiB keeps the HTTP loops fast; the JSON schema and endpoint
	// coverage are what this test pins.
	err := run(&b, sections{server: true, serverBytes: 1 << 20, serverJSON: path})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Server engine: cellmatchd end-to-end throughput",
		"/scan/batch x32 clients",
		"batch coalescing:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res ServerBench
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_server.json does not parse: %v", err)
	}
	if res.InputBytes != 1<<20 || res.DictStates < 1400 {
		t.Fatalf("bench metadata wrong: %+v", res)
	}
	for name, v := range map[string]float64{
		"scan_MBps":      res.ScanMBps,
		"scan_reqps":     res.ScanReqPerSec,
		"batch_MBps":     res.BatchMBps,
		"batch_reqps":    res.BatchReqPerSec,
		"stream_MBps":    res.StreamMBps,
		"batch_coalesce": res.BatchCoalesceAvg,
		"scan_p50_ms":    res.ScanP50Ms,
		"scan_p99_ms":    res.ScanP99Ms,
		"batch_p50_ms":   res.BatchP50Ms,
		"batch_p99_ms":   res.BatchP99Ms,
	} {
		if v <= 0 {
			t.Fatalf("%s not measured: %+v", name, res)
		}
	}
	if res.ScanP99Ms < res.ScanP50Ms || res.BatchP99Ms < res.BatchP50Ms {
		t.Fatalf("percentiles not ordered: %+v", res)
	}
	// The tail-latency key rides the -checkbench server gate; p50 and
	// the batch rows stay informational.
	if !gatedMetric("server_scan_p99_ms") {
		t.Fatal("server_scan_p99_ms not gated by -checkbench")
	}
	if gatedMetric("server_scan_p50_ms") || gatedMetric("server_batch_p99_ms") {
		t.Fatal("informational latency keys must not gate")
	}
}

func TestParseFlagsOverload(t *testing.T) {
	var errOut strings.Builder
	cfg, err := parseFlags([]string{"-overload"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.overload || cfg.overloadClients != 16 || cfg.overloadInflight != 2 {
		t.Fatalf("overload defaults wrong: %+v", cfg)
	}
	cfg, err = parseFlags([]string{"-overload", "-overloadclients", "8", "-overloadinflight", "3"}, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.overloadClients != 8 || cfg.overloadInflight != 3 {
		t.Fatalf("overload knobs wrong: %+v", cfg)
	}
	if _, err := parseFlags([]string{"-overload", "-overloadclients", "2", "-overloadinflight", "2"}, &errOut); err == nil {
		t.Fatal("non-oversubscribing overload config accepted")
	}
}

// TestOverloadSmoke runs the CI load-shedding check in-process: it
// must pass on a healthy server and enforce oversubscription.
func TestOverloadSmoke(t *testing.T) {
	var b strings.Builder
	if err := runOverloadSmoke(&b, 8, 2); err != nil {
		t.Fatalf("overload smoke failed on a healthy server: %v\n%s", err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"== Overload smoke: 8 clients vs max-inflight=2 ==",
		"load-shedding contract held",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if err := runOverloadSmoke(&b, 2, 4); err == nil {
		t.Fatal("non-oversubscribing overload run accepted")
	}
}

func TestRunShardBenchJSON(t *testing.T) {
	var b strings.Builder
	path := filepath.Join(t.TempDir(), "BENCH_shards.json")
	// 256 KiB of traffic keeps the five scan configurations fast; the
	// schema, the shard counts, and the tier selection are what this
	// test pins.
	err := run(&b, sections{shards: true, shardBytes: 256 << 10, shardJSON: path})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Sharded engine: over-budget dictionary",
		"stt fallback (sharding disabled)",
		"sharded sequential (chunk-interleaved)",
		"best sharded vs stt fallback:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res ShardBench
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_shards.json does not parse: %v", err)
	}
	if res.Shards < 2 || res.DictStates < 5000 || res.ShardBudgetBytes != shardBenchBudget {
		t.Fatalf("bench metadata wrong: %+v", res)
	}
	if res.Sweep128KShards <= res.Shards || res.Sweep512KShards >= res.Shards {
		t.Fatalf("budget sweep shard counts not monotone: %+v", res)
	}
	for name, v := range map[string]float64{
		"stt_fallback": res.STTFallback,
		"sharded_seq":  res.ShardedSeq,
		"sharded_pool": res.ShardedPool,
		"speedup":      res.Speedup,
		"sweep_512k":   res.Sweep512KMBps,
		"sweep_128k":   res.Sweep128KMBps,
	} {
		if v <= 0 {
			t.Fatalf("%s not measured: %+v", name, res)
		}
	}
}

func TestRunFilterBenchJSON(t *testing.T) {
	var b strings.Builder
	path := filepath.Join(t.TempDir(), "BENCH_filter.json")
	// 256 KiB keeps the four scan configurations fast; the schema, the
	// filter coming up on the kernel, and the skip evidence are what
	// this test pins (the 2x floor is the CI gate's job, not a unit
	// test's — small inputs under-report the win).
	err := run(&b, sections{filter: true, filterBytes: 256 << 10, filterJSON: path})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== Skip-scan filter: long-pattern workload",
		"kernel, filter off (every byte)",
		"kernel + filter, sequential",
		"windows skipped:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res FilterBench
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_filter.json does not parse: %v", err)
	}
	if res.Patterns != 48 || res.MinPatternLen < 16 || res.Window != res.MinPatternLen {
		t.Fatalf("bench metadata wrong: %+v", res)
	}
	if res.SkippedPct < 50 {
		t.Fatalf("long-pattern workload skipped only %.1f%% of windows", res.SkippedPct)
	}
	for name, v := range map[string]float64{
		"kernel_unfiltered": res.KernelUnfiltered,
		"filtered_seq":      res.FilteredSeq,
		"filtered_pool":     res.FilteredPool,
		"speedup":           res.Speedup,
	} {
		if v <= 0 {
			t.Fatalf("%s not measured: %+v", name, res)
		}
	}
}
