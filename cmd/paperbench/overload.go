package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
	"cellmatch/internal/server"
	"cellmatch/internal/workload"
)

// runOverloadSmoke is the CI load-shedding check: an in-process server
// with a deliberately tiny admission budget takes a burst far wider
// than the budget, and the run passes only if the shedding contract
// held — every response is either a clean 200 or a 429 (nothing
// fails), at least one request was shed, every admitted response
// carries correct scan results, and the admitted high-water mark never
// exceeded the configured budget.
func runOverloadSmoke(w io.Writer, clients, maxInflight int) error {
	if clients <= maxInflight {
		return fmt.Errorf("overload: %d clients cannot oversubscribe budget %d", clients, maxInflight)
	}
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		return err
	}
	m, err := core.Compile(pats, core.Options{CaseFold: true})
	if err != nil {
		return err
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 256 << 10, MatchEvery: 8 << 10, Dictionary: pats, Seed: 7,
	})
	if err != nil {
		return err
	}
	// Reference ground truth: every admitted response must report this
	// exact count — a shed-then-retried request that produced a partial
	// or corrupted scan would show up here.
	want, err := m.Count(data)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Registry:    registry.NewWithMatcher(m, "overload-smoke"),
		MaxInflight: maxInflight,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The burst: every client loops the same payload; 429s are retried
	// (that is the contract clients are asked to honor), so each client
	// eventually lands its quota of successful scans.
	const perClient = 8
	var ok200, shed429 atomic.Uint64
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done := 0; done < perClient; {
				resp, err := http.Post(ts.URL+"/scan?count=1", "application/octet-stream", bytes.NewReader(data))
				if err != nil {
					errc <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var sr server.ScanResponse
					if err := json.Unmarshal(body, &sr); err != nil {
						errc <- err
						return
					}
					if sr.Count != want {
						errc <- fmt.Errorf("admitted scan returned %d matches, want %d", sr.Count, want)
						return
					}
					ok200.Add(1)
					done++
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						errc <- fmt.Errorf("429 without Retry-After")
						return
					}
					shed429.Add(1)
				default:
					errc <- fmt.Errorf("/scan under overload: %s: %s", resp.Status, body)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return fmt.Errorf("overload: %w", err)
	default:
	}

	var st server.StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "== Overload smoke: %d clients vs max-inflight=%d ==\n", clients, maxInflight)
	fmt.Fprintf(w, "200s=%d 429s=%d shed_total=%d inflight_peak=%d\n",
		ok200.Load(), shed429.Load(), st.Shed, st.InflightPeak)

	if got, wantOK := ok200.Load(), uint64(clients*perClient); got != wantOK {
		return fmt.Errorf("overload: %d successful scans, want %d", got, wantOK)
	}
	if shed429.Load() == 0 || st.Shed == 0 {
		return fmt.Errorf("overload: budget %d never shed under %d clients", maxInflight, clients)
	}
	if st.InflightPeak > int64(maxInflight) {
		return fmt.Errorf("overload: inflight peak %d exceeded budget %d", st.InflightPeak, maxInflight)
	}

	// /metrics must agree with /stats on the shed counter.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), fmt.Sprintf("cellmatch_requests_shed_total %d", st.Shed)) {
		return fmt.Errorf("overload: /metrics shed counter disagrees with /stats (%d)", st.Shed)
	}
	fmt.Fprintln(w, "load-shedding contract held: zero failed responses, budget respected")
	return nil
}
