package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
	"cellmatch/internal/report"
	"cellmatch/internal/server"
	"cellmatch/internal/workload"
)

// Scenario benchmark: one throughput row per workload scenario
// (internal/workload.Scenarios), each compiled with production
// defaults (FilterAuto picks the front-end, the budget picks the
// tier), so BENCH_scenarios.json tracks how the deployed engine
// ladder fares across deployment regimes — filter-friendly logs,
// verifier-bound PII text, short malware signatures, adversarial
// near-miss saturation, fold collisions, and a regex dictionary. The
// regex scenario is additionally served through the in-process
// cellmatchd stack (registry + server over HTTP), covering the regex
// surface end to end.
//
// The JSON artifact is a flat metric map, one scenario_<name>_MBps
// key per scenario (gated by -checkbench) plus scenario_<name>_skip_pct
// evidence rows (informational) and a scenarios count (meta).
const scenarioBenchSeed = 1207

// scenarioServedMBps serves the matcher through the full in-process
// HTTP stack and measures /scan throughput over the corpus.
func scenarioServedMBps(m *core.Matcher, corpus []byte) (float64, error) {
	reg := registry.NewWithMatcher(m, "scenario-bench")
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payloads := slicePayloads(corpus, 64<<10)
	post := func() error {
		for _, p := range payloads {
			resp, err := http.Post(ts.URL+"/scan?count=1", "application/octet-stream", bytes.NewReader(p))
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("/scan: %s", resp.Status)
			}
		}
		return nil
	}
	if err := post(); err != nil { // warmup
		return 0, err
	}
	start := time.Now()
	if err := post(); err != nil {
		return 0, err
	}
	return float64(len(corpus)) / 1e6 / time.Since(start).Seconds(), nil
}

// runScenarioBench measures every scenario, prints the comparison
// table, and optionally writes the flat JSON artifact.
func runScenarioBench(w io.Writer, inputBytes int, jsonPath string) error {
	scs, err := workload.Scenarios(scenarioBenchSeed, inputBytes)
	if err != nil {
		return err
	}
	metrics := map[string]float64{
		"input_bytes": float64(inputBytes),
		"scenarios":   float64(len(scs)),
	}

	fmt.Fprintf(w, "== Scenario suite: engine ladder across deployment regimes (%d scenarios, %d KiB each) ==\n",
		len(scs), inputBytes>>10)
	t := report.NewTable("Scenario", "Engine", "Filter", "MB/s", "Skip %", "Matches")
	servedRegex := false
	for _, s := range scs {
		opts := core.Options{CaseFold: s.CaseFold} // production defaults: FilterAuto, default budget
		var m *core.Matcher
		if s.Regex {
			exprs := make([]string, len(s.Patterns))
			for i, p := range s.Patterns {
				exprs[i] = string(p)
			}
			m, err = core.CompileRegexSearch(exprs, opts)
		} else {
			m, err = core.Compile(s.Patterns, opts)
		}
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		st := m.Stats()

		matches := 0
		skipBefore := m.Stats().WindowsSkipped
		scans := 0
		mbps, err := measureMBps(len(s.Corpus), func() error {
			scans++
			ms, err := m.FindAll(s.Corpus)
			matches = len(ms)
			return err
		})
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		skipPct := 0.0
		if st.FilterEnabled {
			if positions := int64(scans) * int64(len(s.Corpus)-st.FilterWindow+1); positions > 0 {
				skipPct = 100 * float64(m.Stats().WindowsSkipped-skipBefore) / float64(positions)
			}
		}
		metrics["scenario_"+s.Name+"_MBps"] = mbps
		metrics["scenario_"+s.Name+"_skip_pct"] = skipPct
		t.Row(s.Name, st.Engine, st.FilterEnabled, mbps, skipPct, matches)

		if s.Regex && !servedRegex {
			served, err := scenarioServedMBps(m, s.Corpus)
			if err != nil {
				return fmt.Errorf("scenario %s served: %w", s.Name, err)
			}
			metrics["scenario_"+s.Name+"_served_MBps"] = served
			t.Row(s.Name+" (served /scan)", st.Engine, false, served, 0.0, matches)
			servedRegex = true
		}
	}
	if !servedRegex {
		return fmt.Errorf("scenario suite has no regex scenario to serve")
	}
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(metrics, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
