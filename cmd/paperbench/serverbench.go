package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
	"cellmatch/internal/report"
	"cellmatch/internal/server"
	"cellmatch/internal/workload"
)

// ServerBench measures the serving layer end to end — HTTP in, JSON
// out — on the paper's 1520-state dictionary: large-payload /scan
// throughput, small-payload /scan/batch coalescing, and a chunked
// /scan/stream upload. Serialized to BENCH_server.json so the service
// throughput is tracked per commit alongside the kernel numbers.
type ServerBench struct {
	InputBytes int `json:"input_bytes"`
	DictStates int `json:"dict_states"`

	ScanPayloadBytes int     `json:"scan_payload_bytes"`
	ScanMBps         float64 `json:"scan_MBps"`
	ScanReqPerSec    float64 `json:"scan_req_per_sec"`
	ScanP50Ms        float64 `json:"server_scan_p50_ms"`
	ScanP99Ms        float64 `json:"server_scan_p99_ms"`

	BatchPayloadBytes int     `json:"batch_payload_bytes"`
	BatchMBps         float64 `json:"batch_MBps"`
	BatchReqPerSec    float64 `json:"batch_req_per_sec"`
	BatchCoalesceAvg  float64 `json:"batch_coalesce_avg"`
	BatchP50Ms        float64 `json:"server_batch_p50_ms"`
	BatchP99Ms        float64 `json:"server_batch_p99_ms"`

	StreamMBps float64 `json:"stream_MBps"`
}

// driveResult is one closed-loop run: aggregate throughput plus the
// per-request latency distribution.
type driveResult struct {
	MBps      float64
	ReqPerSec float64
	P50Ms     float64
	P99Ms     float64
}

// percentile returns the q-quantile (0..1) of sorted latencies by
// nearest-rank; zero when the sample is empty.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// driveConcurrent posts every payload once across `clients` concurrent
// connections (a closed loop: each client issues its next request as
// soon as the previous response lands) and records per-request wall
// latency alongside the aggregate throughput.
func driveConcurrent(url string, payloads [][]byte, clients int) (driveResult, error) {
	var next int
	var mu sync.Mutex
	take := func() []byte {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(payloads) {
			return nil
		}
		p := payloads[next]
		next++
		return p
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	errc := make(chan error, clients)
	lats := make([][]float64, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				p := take()
				if p == nil {
					return
				}
				t0 := time.Now()
				resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(p))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: %s", url, resp.Status)
					return
				}
				lats[c] = append(lats[c], float64(time.Since(t0).Microseconds())/1e3)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	select {
	case err := <-errc:
		return driveResult{}, err
	default:
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	return driveResult{
		MBps:      float64(total) / 1e6 / wall,
		ReqPerSec: float64(len(payloads)) / wall,
		P50Ms:     percentile(all, 0.50),
		P99Ms:     percentile(all, 0.99),
	}, nil
}

// slicePayloads cuts data into size-byte payloads.
func slicePayloads(data []byte, size int) [][]byte {
	var out [][]byte
	for off := 0; off < len(data); off += size {
		end := min(off+size, len(data))
		out = append(out, data[off:end])
	}
	return out
}

// runServerBench stands up the full serving stack in-process and
// measures it over inputBytes of the usual synthetic traffic.
func runServerBench(w io.Writer, inputBytes int, jsonPath string) error {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		return err
	}
	// Filter pinned off so scan_MBps/stream_MBps keep measuring the
	// serving stack over the raw kernel, independent of the auto gates.
	m, err := core.Compile(pats, core.Options{
		CaseFold: true,
		Engine:   core.EngineOptions{Filter: core.FilterOff},
	})
	if err != nil {
		return err
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: inputBytes, MatchEvery: 64 << 10, Dictionary: pats, Seed: 33,
	})
	if err != nil {
		return err
	}
	reg := registry.NewWithMatcher(m, "bench")
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res := ServerBench{
		InputBytes:        inputBytes,
		DictStates:        m.Stats().States,
		ScanPayloadBytes:  256 << 10,
		BatchPayloadBytes: 4 << 10,
	}

	// Large-payload /scan: the capture-replay workload.
	scanURL := ts.URL + "/scan?count=1"
	payloads := slicePayloads(data, res.ScanPayloadBytes)
	if _, err := driveConcurrent(scanURL, payloads[:min(4, len(payloads))], 2); err != nil {
		return err // warmup
	}
	scan, err := driveConcurrent(scanURL, payloads, 8)
	if err != nil {
		return err
	}
	res.ScanMBps, res.ScanReqPerSec = scan.MBps, scan.ReqPerSec
	res.ScanP50Ms, res.ScanP99Ms = scan.P50Ms, scan.P99Ms

	// Small-payload /scan/batch: the many-tiny-requests workload the
	// coalescer exists for. A slice of the traffic keeps the request
	// count (and wall time) sane.
	batchData := data[:min(len(data), inputBytes/4)]
	batchPayloads := slicePayloads(batchData, res.BatchPayloadBytes)
	batch, err := driveConcurrent(ts.URL+"/scan/batch?count=1", batchPayloads, 32)
	if err != nil {
		return err
	}
	res.BatchMBps, res.BatchReqPerSec = batch.MBps, batch.ReqPerSec
	res.BatchP50Ms, res.BatchP99Ms = batch.P50Ms, batch.P99Ms
	var st server.StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if st.Batches > 0 {
		res.BatchCoalesceAvg = float64(st.BatchPayloads) / float64(st.Batches)
	}

	// One chunked upload of the whole capture through /scan/stream.
	start := time.Now()
	resp, err = http.Post(ts.URL+"/scan/stream?count=1", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/scan/stream: %s", resp.Status)
	}
	res.StreamMBps = float64(len(data)) / 1e6 / time.Since(start).Seconds()

	fmt.Fprintf(w, "== Server engine: cellmatchd end-to-end throughput (%d-state dictionary, %d MiB) ==\n",
		res.DictStates, inputBytes>>20)
	t := report.NewTable("Endpoint / workload", "MB/s", "req/s", "p50 ms", "p99 ms")
	t.Row(fmt.Sprintf("/scan x8 clients (%d KiB payloads)", res.ScanPayloadBytes>>10),
		res.ScanMBps, res.ScanReqPerSec, res.ScanP50Ms, res.ScanP99Ms)
	t.Row(fmt.Sprintf("/scan/batch x32 clients (%d KiB payloads)", res.BatchPayloadBytes>>10),
		res.BatchMBps, res.BatchReqPerSec, res.BatchP50Ms, res.BatchP99Ms)
	t.Row("/scan/stream single upload", res.StreamMBps, "", "", "")
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "batch coalescing: %.1f payloads per kernel pass on average\n\n", res.BatchCoalesceAvg)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
