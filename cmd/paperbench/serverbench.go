package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
	"cellmatch/internal/report"
	"cellmatch/internal/server"
	"cellmatch/internal/workload"
)

// ServerBench measures the serving layer end to end — HTTP in, JSON
// out — on the paper's 1520-state dictionary: large-payload /scan
// throughput, small-payload /scan/batch coalescing, and a chunked
// /scan/stream upload. Serialized to BENCH_server.json so the service
// throughput is tracked per commit alongside the kernel numbers.
type ServerBench struct {
	InputBytes int `json:"input_bytes"`
	DictStates int `json:"dict_states"`

	ScanPayloadBytes int     `json:"scan_payload_bytes"`
	ScanMBps         float64 `json:"scan_MBps"`
	ScanReqPerSec    float64 `json:"scan_req_per_sec"`

	BatchPayloadBytes int     `json:"batch_payload_bytes"`
	BatchMBps         float64 `json:"batch_MBps"`
	BatchReqPerSec    float64 `json:"batch_req_per_sec"`
	BatchCoalesceAvg  float64 `json:"batch_coalesce_avg"`

	StreamMBps float64 `json:"stream_MBps"`
}

// driveConcurrent posts every payload once across `clients` concurrent
// connections and returns (MB/s, req/s).
func driveConcurrent(url string, payloads [][]byte, clients int) (float64, float64, error) {
	var next int
	var mu sync.Mutex
	take := func() []byte {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(payloads) {
			return nil
		}
		p := payloads[next]
		next++
		return p
	}
	total := 0
	for _, p := range payloads {
		total += len(p)
	}
	errc := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				p := take()
				if p == nil {
					return
				}
				resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(p))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: %s", url, resp.Status)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	select {
	case err := <-errc:
		return 0, 0, err
	default:
	}
	return float64(total) / 1e6 / wall, float64(len(payloads)) / wall, nil
}

// slicePayloads cuts data into size-byte payloads.
func slicePayloads(data []byte, size int) [][]byte {
	var out [][]byte
	for off := 0; off < len(data); off += size {
		end := min(off+size, len(data))
		out = append(out, data[off:end])
	}
	return out
}

// runServerBench stands up the full serving stack in-process and
// measures it over inputBytes of the usual synthetic traffic.
func runServerBench(w io.Writer, inputBytes int, jsonPath string) error {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 1520, Seed: 1})
	if err != nil {
		return err
	}
	// Filter pinned off so scan_MBps/stream_MBps keep measuring the
	// serving stack over the raw kernel, independent of the auto gates.
	m, err := core.Compile(pats, core.Options{
		CaseFold: true,
		Engine:   core.EngineOptions{Filter: core.FilterOff},
	})
	if err != nil {
		return err
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: inputBytes, MatchEvery: 64 << 10, Dictionary: pats, Seed: 33,
	})
	if err != nil {
		return err
	}
	reg := registry.NewWithMatcher(m, "bench")
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res := ServerBench{
		InputBytes:        inputBytes,
		DictStates:        m.Stats().States,
		ScanPayloadBytes:  256 << 10,
		BatchPayloadBytes: 4 << 10,
	}

	// Large-payload /scan: the capture-replay workload.
	scanURL := ts.URL + "/scan?count=1"
	payloads := slicePayloads(data, res.ScanPayloadBytes)
	if _, _, err := driveConcurrent(scanURL, payloads[:min(4, len(payloads))], 2); err != nil {
		return err // warmup
	}
	if res.ScanMBps, res.ScanReqPerSec, err = driveConcurrent(scanURL, payloads, 8); err != nil {
		return err
	}

	// Small-payload /scan/batch: the many-tiny-requests workload the
	// coalescer exists for. A slice of the traffic keeps the request
	// count (and wall time) sane.
	batchData := data[:min(len(data), inputBytes/4)]
	batchPayloads := slicePayloads(batchData, res.BatchPayloadBytes)
	if res.BatchMBps, res.BatchReqPerSec, err = driveConcurrent(ts.URL+"/scan/batch?count=1", batchPayloads, 32); err != nil {
		return err
	}
	var st server.StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if st.Batches > 0 {
		res.BatchCoalesceAvg = float64(st.BatchPayloads) / float64(st.Batches)
	}

	// One chunked upload of the whole capture through /scan/stream.
	start := time.Now()
	resp, err = http.Post(ts.URL+"/scan/stream?count=1", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/scan/stream: %s", resp.Status)
	}
	res.StreamMBps = float64(len(data)) / 1e6 / time.Since(start).Seconds()

	fmt.Fprintf(w, "== Server engine: cellmatchd end-to-end throughput (%d-state dictionary, %d MiB) ==\n",
		res.DictStates, inputBytes>>20)
	t := report.NewTable("Endpoint / workload", "MB/s", "req/s")
	t.Row(fmt.Sprintf("/scan x8 clients (%d KiB payloads)", res.ScanPayloadBytes>>10),
		res.ScanMBps, res.ScanReqPerSec)
	t.Row(fmt.Sprintf("/scan/batch x32 clients (%d KiB payloads)", res.BatchPayloadBytes>>10),
		res.BatchMBps, res.BatchReqPerSec)
	t.Row("/scan/stream single upload", res.StreamMBps, "")
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "batch coalescing: %.1f payloads per kernel pass on average\n\n", res.BatchCoalesceAvg)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
