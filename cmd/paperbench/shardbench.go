package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cellmatch/internal/core"
	"cellmatch/internal/parallel"
	"cellmatch/internal/report"
	"cellmatch/internal/workload"
)

// ShardBench measures the sharded multi-kernel tier on a dictionary
// roughly 4x the paper tile (6000 states) against the SPE local-store
// budget (256 KiB per shard): the regime where the single dense kernel
// cannot fit and the pre-shard system paid the stt fallback.
// Serialized to BENCH_shards.json so the gate holds the tier's >= 2x
// win over that fallback per commit.
type ShardBench struct {
	InputBytes       int `json:"input_bytes"`
	DictStates       int `json:"dict_states"`
	ShardBudgetBytes int `json:"shard_budget_bytes"`
	Shards           int `json:"shards"`

	// STTFallback is what the same over-budget dictionary scans at with
	// sharding disabled — the pre-shard production cost.
	STTFallback float64 `json:"stt_fallback_seq_MBps"`
	// ShardedSeq is the sequential chunk-interleaved schedule (every
	// shard scans each input chunk while it is cache-resident).
	ShardedSeq float64 `json:"sharded_seq_MBps"`
	// ShardedPool fans shard x chunk work items over the shared pool
	// (one shard set per worker).
	ShardedPool float64 `json:"sharded_pool_MBps"`
	// Speedup is best-sharded over the stt fallback: the banked win.
	Speedup float64 `json:"speedup_sharded_vs_stt"`

	// Budget sweep (informational): shard count and sequential MB/s at
	// other per-shard budgets.
	Sweep512KShards int     `json:"sweep_512k_shards"`
	Sweep512KMBps   float64 `json:"sweep_512k_seq_MBps"`
	Sweep128KShards int     `json:"sweep_128k_shards"`
	Sweep128KMBps   float64 `json:"sweep_128k_seq_MBps"`
}

// shardBenchBudget is the canonical per-shard budget: 256 KiB, the
// SPE local store.
const shardBenchBudget = 256 << 10

// runShardBench measures the sharded tier against the stt fallback on
// the same dictionary and traffic, prints the comparison, and
// optionally writes the JSON artifact.
func runShardBench(w io.Writer, inputBytes int, jsonPath string) error {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 6000, Seed: 2})
	if err != nil {
		return err
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: inputBytes, MatchEvery: 64 << 10, Dictionary: pats, Seed: 22,
	})
	if err != nil {
		return err
	}
	res := ShardBench{InputBytes: inputBytes, ShardBudgetBytes: shardBenchBudget}

	compileAt := func(engine core.EngineOptions, wantEngine string) (*core.Matcher, error) {
		// Pinned off: this mode measures the sharded tier itself, not
		// the skip-scan front-end (which has its own gated mode) or the
		// compressed rung (which would intercept the squeezed budget;
		// it has its own section in the kernel bench).
		engine.Filter = core.FilterOff
		engine.Compressed = core.CompressedOff
		m, err := core.Compile(pats, core.Options{CaseFold: true, Engine: engine})
		if err != nil {
			return nil, err
		}
		if got := m.Stats().Engine; got != wantEngine {
			return nil, fmt.Errorf("engine %q, want %q (budget %d)", got, wantEngine, engine.MaxTableBytes)
		}
		return m, nil
	}

	sttM, err := compileAt(core.EngineOptions{MaxTableBytes: shardBenchBudget, MaxShards: -1}, "stt")
	if err != nil {
		return err
	}
	res.DictStates = sttM.Stats().States
	if res.STTFallback, err = measureMBps(inputBytes, func() error {
		_, err := sttM.FindAll(data)
		return err
	}); err != nil {
		return err
	}

	shardedM, err := compileAt(core.EngineOptions{MaxTableBytes: shardBenchBudget}, "sharded")
	if err != nil {
		return err
	}
	res.Shards = shardedM.Stats().Shards
	if res.ShardedSeq, err = measureMBps(inputBytes, func() error {
		_, err := shardedM.FindAll(data)
		return err
	}); err != nil {
		return err
	}
	pool := parallel.NewPool(0)
	defer pool.Close()
	if res.ShardedPool, err = measureMBps(inputBytes, func() error {
		_, err := shardedM.FindAllParallel(data, core.ParallelOptions{Pool: pool})
		return err
	}); err != nil {
		return err
	}
	if res.STTFallback > 0 {
		best := res.ShardedSeq
		if res.ShardedPool > best {
			best = res.ShardedPool
		}
		res.Speedup = best / res.STTFallback
	}

	// Budget sweep: how the shard count and sequential throughput move
	// with the per-shard budget (MaxShards raised so small budgets can
	// still plan).
	sweep := func(budget int) (int, float64, error) {
		m, err := compileAt(core.EngineOptions{MaxTableBytes: budget, MaxShards: 16}, "sharded")
		if err != nil {
			return 0, 0, err
		}
		mbps, err := measureMBps(inputBytes, func() error {
			_, err := m.FindAll(data)
			return err
		})
		return m.Stats().Shards, mbps, err
	}
	if res.Sweep512KShards, res.Sweep512KMBps, err = sweep(512 << 10); err != nil {
		return err
	}
	if res.Sweep128KShards, res.Sweep128KMBps, err = sweep(128 << 10); err != nil {
		return err
	}

	fmt.Fprintf(w, "== Sharded engine: over-budget dictionary (%d states, %d KiB/shard budget, %d MiB input) ==\n",
		res.DictStates, shardBenchBudget>>10, inputBytes>>20)
	t := report.NewTable("Engine / schedule", "Shards", "MB/s")
	t.Row("stt fallback (sharding disabled)", "", res.STTFallback)
	t.Row("sharded sequential (chunk-interleaved)", res.Shards, res.ShardedSeq)
	t.Row("sharded pool (shard x chunk fan-out)", res.Shards, res.ShardedPool)
	t.Row("sweep: 512 KiB budget", res.Sweep512KShards, res.Sweep512KMBps)
	t.Row("sweep: 128 KiB budget", res.Sweep128KShards, res.Sweep128KMBps)
	if err := t.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "best sharded vs stt fallback: %.2fx\n\n", res.Speedup)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n\n", jsonPath)
	}
	return nil
}
