package cellmatch_test

import (
	"testing"

	"cellmatch/internal/conformance"
	"cellmatch/internal/core"
	"cellmatch/internal/workload"
)

// TestScenarioConformance is the cross-tier differential harness: for
// every scenario in the workload suite, every (rung x filter x
// scan-mode) configuration must reproduce the reference match set
// (End, Pattern) match-for-match — stride-2, kernel, compressed,
// sharded, and stt
// verifiers, skip-scan filter forced on and off, sequential /
// parallel / shared pool / reader / stream scan surfaces. The harness
// itself fails on any divergence; the assertions here pin the suite's
// shape on top: each scenario lands on the expected rung, the regex
// scenario routes around the literal-only tiers, and matches actually
// occur.
func TestScenarioConformance(t *testing.T) {
	corpusBytes := 1 << 18
	if testing.Short() {
		corpusBytes = 1 << 14
	}
	scs, err := workload.Scenarios(1207, corpusBytes)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := conformance.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if rep.RefMatches == 0 {
				t.Fatal("scenario matches nothing; the comparison is vacuous")
			}
			if rep.Configs < 50 { // 5 rungs x 2 filter modes x 5 scan modes
				t.Fatalf("only %d configurations compared", rep.Configs)
			}
			engines := map[string]string{}
			for _, rr := range rep.Rungs {
				engines[rr.Rung] = rr.Engine
			}
			if engines["kernel"] != "kernel" {
				t.Fatalf("stride-1 rung selected %q, want kernel", engines["kernel"])
			}
			// Forced stride-2 lands on the pair-table rung unless the
			// dictionary's pair tables blow the budget, in which case the
			// documented fallback is the 1-byte kernel — never lower.
			if engines["stride2"] != "stride2" && engines["stride2"] != "kernel" {
				t.Fatalf("forced stride-2 rung selected %q", engines["stride2"])
			}
			if engines["stt"] != "stt" {
				t.Fatalf("forced stt rung selected %q", engines["stt"])
			}
			// CompressedOn compiles the compressed rows under the default
			// 8 MiB budget, which every suite dictionary fits.
			if engines["compressed"] != "compressed" {
				t.Fatalf("forced compressed rung selected %q", engines["compressed"])
			}
			if s.Regex {
				// The sharded tier is literal-only: squeezing a regex
				// dictionary's budget must fall through to stt.
				if engines["sharded"] != "stt" {
					t.Fatalf("regex dictionary landed on %q under a shard budget, want stt",
						engines["sharded"])
				}
			} else if engines["sharded"] != "sharded" && engines["sharded"] != "stt" {
				t.Fatalf("forced shard budget selected %q", engines["sharded"])
			}
			for _, rr := range rep.Rungs {
				if rr.SkipRate < 0 || rr.SkipRate > 1 {
					t.Fatalf("rung %s: skip rate %f out of range", rr.Rung, rr.SkipRate)
				}
				if s.Regex && rr.FilterLive {
					t.Fatalf("rung %s: filter live on a regex dictionary", rr.Rung)
				}
			}
		})
	}
}

// TestScenarioFilterRegimes pins where the skip-scan front-end
// engages across the suite: live with a healthy skip rate on the
// long-pattern log scenario, and declined by FilterAuto on the
// short-signature malware mix (min length below the auto floor).
func TestScenarioFilterRegimes(t *testing.T) {
	scs, err := workload.Scenarios(1207, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]workload.Scenario{}
	for _, s := range scs {
		byName[s.Name] = s
	}
	logScan, ok := byName["log-scan"]
	if !ok {
		t.Fatal("log-scan scenario missing from the suite")
	}
	rep, err := conformance.Run(logScan)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Rungs {
		if rr.Rung == "kernel" {
			if !rr.FilterLive {
				t.Fatal("filter not live on the log-scanning workload")
			}
			if rr.SkipRate < 0.5 {
				t.Fatalf("log-scan skip rate %.2f, want > 0.5 on low-entropy lines", rr.SkipRate)
			}
		}
	}
	malware, ok := byName["malware-short"]
	if !ok {
		t.Fatal("malware-short scenario missing from the suite")
	}
	m, err := core.Compile(malware.Patterns, core.Options{}) // FilterAuto
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.FilterEnabled {
		t.Fatalf("FilterAuto accepted %d-byte minimum signatures", st.MinPatternLen)
	}
}
