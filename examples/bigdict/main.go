// Bigdict: Section 6 of the paper — dictionaries too large for one
// local store. The dictionary partitions into tile-sized automata
// (series composition); when even eight tiles cannot hold it, dynamic
// STT replacement streams table halves through each SPE at a smoothly
// degrading rate (Figure 9's trade-off).
//
// The example compiles a multi-tile dictionary, shows the partition,
// verifies matching still finds everything across partitions, and
// prints the throughput/dictionary-size trade-off curve.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"cellmatch"
	"cellmatch/internal/pipeline"
	"cellmatch/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// A dictionary of ~4000 Aho-Corasick states: needs 3 tiles of the
	// 16 KB-buffer budget (1520 states each).
	pats, err := workload.Dictionary(workload.DictConfig{
		TargetStates: 4000, PatternLen: 32, Seed: 11,
	})
	if err != nil {
		return err
	}
	m, err := cellmatch.Compile(pats, cellmatch.Options{CaseFold: true})
	if err != nil {
		return err
	}
	st := m.Stats()
	fmt.Fprintf(w, "dictionary: %d patterns, %d states -> %d series tiles (%d KB of STTs)\n",
		st.Patterns, st.States, st.SeriesDepth, st.STTBytes/1024)

	// Matching is unaffected by partitioning: plant one pattern from
	// each partition region and find them all.
	probe := []byte("...")
	probe = append(probe, pats[0]...)
	probe = append(probe, []byte("...")...)
	probe = append(probe, pats[len(pats)/2]...)
	probe = append(probe, []byte("...")...)
	probe = append(probe, pats[len(pats)-1]...)
	n, err := m.Count(probe)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "planted 3 patterns across partitions, found %d\n", n)
	if n < 3 {
		return fmt.Errorf("partitioned dictionary lost matches")
	}

	// Section 6: if the dictionary outgrows the whole machine, stream
	// STTs dynamically. Print the paper's trade-off (Figure 9 slice).
	fmt.Fprintf(w, "\ndynamic STT replacement, 8 SPEs (16 KB blocks, V4 kernel):\n")
	fmt.Fprintln(w, "STTs  dict KB  paper Gbps  simulated Gbps")
	for n := 1; n <= 6; n++ {
		res := pipeline.RunReplacement(pipeline.ReplacementConfig{
			STTs: n, SPEs: 8, Pairs: 4,
		})
		fmt.Fprintf(w, "%4d  %7d  %10.2f  %14.2f\n",
			n, n*95, 8*pipeline.PaperReplacementGbps(5.11, n), res.SystemGbps)
	}
	fmt.Fprintln(w, "\nthe dictionary size is now unbounded; throughput degrades as ~1/n")
	return nil
}
