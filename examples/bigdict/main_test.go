package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"series tiles",
		"planted 3 patterns across partitions, found 3",
		"dynamic STT replacement",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
