// NIDS: the paper's motivating scenario. A network intrusion
// detection system filters a 10 Gbps link with two DFA tiles: traffic
// is split across two parallel tile groups (with pattern-length
// overlap at the boundary), every packet's payload is scanned against
// a signature dictionary, and flagged packets are reported.
//
// The example generates synthetic traffic with planted signatures,
// scans it — first sequentially, then with the host-CPU parallel
// engine, which is the same Figure 6a tiling mapped onto goroutines —
// verifies the detection count, and asks the Cell model whether the
// deployment keeps up with the line rate: the paper's headline result
// ("two processing elements alone ... filter a network link with bit
// rates in excess of 10 Gbps").
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"cellmatch"
	"cellmatch/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Snort-flavored signature dictionary.
	dict := workload.SignatureDictionary()
	m, err := cellmatch.Compile(dict, cellmatch.Options{
		CaseFold: true,
		Groups:   2, // two parallel tiles, as in the paper's headline
	})
	if err != nil {
		return err
	}

	// 4 MB of synthetic traffic with one planted signature per ~8 KB.
	traffic, planted, err := workload.Traffic(workload.TrafficConfig{
		Bytes:      4 << 20,
		MatchEvery: 8 << 10,
		Dictionary: dict,
		Seed:       2007,
	})
	if err != nil {
		return err
	}

	seqStart := time.Now()
	matches, err := m.FindAll(traffic)
	if err != nil {
		return err
	}
	seqTime := time.Since(seqStart)
	fmt.Fprintf(w, "scanned %d MB, planted %d signatures, detected %d hits\n",
		len(traffic)>>20, planted, len(matches))
	if len(matches) < planted {
		return fmt.Errorf("missed signatures: %d < %d", len(matches), planted)
	}

	// The same scan on the host-CPU parallel engine: goroutine workers
	// over 256 KB chunks, reconciled at boundaries — results must be
	// identical to the sequential pass.
	parStart := time.Now()
	parMatches, err := m.FindAllParallel(traffic, cellmatch.ParallelOptions{
		ChunkBytes: 256 << 10,
	})
	if err != nil {
		return err
	}
	parTime := time.Since(parStart)
	if len(parMatches) != len(matches) {
		return fmt.Errorf("parallel scan diverged: %d vs %d hits", len(parMatches), len(matches))
	}
	fmt.Fprintf(w, "parallel engine: %d hits (identical), sequential %v vs parallel %v\n",
		len(parMatches), seqTime.Round(time.Millisecond), parTime.Round(time.Millisecond))

	// Batched streaming, as if the traffic arrived on a socket: same
	// hits again, without ever buffering the full capture.
	streamed, err := m.ScanReader(bytes.NewReader(traffic), cellmatch.ParallelOptions{})
	if err != nil {
		return err
	}
	if len(streamed) != len(matches) {
		return fmt.Errorf("streamed scan diverged: %d vs %d hits", len(streamed), len(matches))
	}
	fmt.Fprintf(w, "streamed scan (ScanReader): %d hits (identical)\n", len(streamed))

	// Per-signature detection histogram.
	hist := make([]int, m.NumPatterns())
	for _, hit := range matches {
		hist[hit.Pattern]++
	}
	for i, n := range hist {
		if n > 0 {
			fmt.Fprintf(w, "  %-20q %d\n", m.Pattern(i), n)
		}
	}

	// Can this two-tile deployment filter a 10 Gbps link?
	est, err := m.EstimateCell(cellmatch.DefaultBlade(), int64(len(traffic)))
	if err != nil {
		return err
	}
	verdict := "NO"
	if est.SimulatedGbps >= 10 {
		verdict = "YES"
	}
	fmt.Fprintf(w, "deployment: %d tiles x %.2f Gbps -> %.2f Gbps simulated; 10 Gbps link: %s\n",
		est.TilesUsed, est.PerTileGbps, est.SimulatedGbps, verdict)

	// How many SPEs would a 40 Gbps backbone need?
	n, err := cellmatch.MinimumSPEsFor(40, est.PerTileGbps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "a 40 Gbps link needs %d parallel tiles (one Cell has 8 SPEs)\n", n)
	return nil
}
