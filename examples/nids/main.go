// NIDS: the paper's motivating scenario. A network intrusion
// detection system filters a 10 Gbps link with two DFA tiles: traffic
// is split across two parallel tile groups (with pattern-length
// overlap at the boundary), every packet's payload is scanned against
// a signature dictionary, and flagged packets are reported.
//
// The example generates synthetic traffic with planted signatures,
// scans it, verifies the detection count, and asks the Cell model
// whether the deployment keeps up with the line rate — the paper's
// headline result ("two processing elements alone ... filter a
// network link with bit rates in excess of 10 Gbps").
package main

import (
	"fmt"
	"log"

	"cellmatch"
	"cellmatch/internal/workload"
)

func main() {
	// Snort-flavored signature dictionary.
	dict := workload.SignatureDictionary()
	m, err := cellmatch.Compile(dict, cellmatch.Options{
		CaseFold: true,
		Groups:   2, // two parallel tiles, as in the paper's headline
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4 MB of synthetic traffic with one planted signature per ~8 KB.
	traffic, planted, err := workload.Traffic(workload.TrafficConfig{
		Bytes:      4 << 20,
		MatchEvery: 8 << 10,
		Dictionary: dict,
		Seed:       2007,
	})
	if err != nil {
		log.Fatal(err)
	}

	matches, err := m.FindAll(traffic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d MB, planted %d signatures, detected %d hits\n",
		len(traffic)>>20, planted, len(matches))
	if len(matches) < planted {
		log.Fatalf("missed signatures: %d < %d", len(matches), planted)
	}

	// Per-signature detection histogram.
	hist := make([]int, m.NumPatterns())
	for _, hit := range matches {
		hist[hit.Pattern]++
	}
	for i, n := range hist {
		if n > 0 {
			fmt.Printf("  %-20q %d\n", m.Pattern(i), n)
		}
	}

	// Can this two-tile deployment filter a 10 Gbps link?
	est, err := m.EstimateCell(cellmatch.DefaultBlade(), int64(len(traffic)))
	if err != nil {
		log.Fatal(err)
	}
	verdict := "NO"
	if est.SimulatedGbps >= 10 {
		verdict = "YES"
	}
	fmt.Printf("deployment: %d tiles x %.2f Gbps -> %.2f Gbps simulated; 10 Gbps link: %s\n",
		est.TilesUsed, est.PerTileGbps, est.SimulatedGbps, verdict)

	// How many SPEs would a 40 Gbps backbone need?
	n, err := cellmatch.MinimumSPEsFor(40, est.PerTileGbps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a 40 Gbps link needs %d parallel tiles (one Cell has 8 SPEs)\n", n)
}
