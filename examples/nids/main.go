// NIDS: the paper's motivating scenario, served. A network intrusion
// detection system filters a continuous traffic feed against a
// signature dictionary — the paper's headline workload ("two
// processing elements alone ... filter a network link with bit rates
// in excess of 10 Gbps"). Earlier revisions of this example called the
// library directly; this one runs the full serving stack the way a
// deployment would: an in-process cellmatchd (internal/server behind
// an httptest listener) keeps the compiled kernel tables hot, traffic
// is POSTed to /scan and streamed to /scan/stream, the signature set
// is hot-swapped through /reload mid-run without dropping a request,
// and /stats reports the service counters. The Cell deployment
// estimate at the end is unchanged.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"cellmatch"
	"cellmatch/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Snort-flavored signature dictionary, compiled once and kept hot.
	dict := workload.SignatureDictionary()
	m, err := cellmatch.Compile(dict, cellmatch.Options{
		CaseFold: true,
		Groups:   2, // two parallel tiles, as in the paper's headline
	})
	if err != nil {
		return err
	}

	// The serving stack: registry (hot-swap) + HTTP matching service
	// with a shared scan pool, exactly what cellmatchd runs.
	reg := cellmatch.NewMatcherRegistry(m, "signatures-v1")
	srv, err := cellmatch.NewServer(cellmatch.ServerConfig{Registry: reg})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 4 MB of synthetic traffic with one planted signature per ~8 KB.
	traffic, planted, err := workload.Traffic(workload.TrafficConfig{
		Bytes:      4 << 20,
		MatchEvery: 8 << 10,
		Dictionary: dict,
		Seed:       2007,
	})
	if err != nil {
		return err
	}

	// Feed the capture through POST /scan (the shared-pool path).
	start := time.Now()
	scan, err := postScan(ts.URL+"/scan?count=1", bytes.NewReader(traffic))
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "scanned %d MB over /scan, planted %d signatures, detected %d hits (gen %d, engine %s) in %v\n",
		len(traffic)>>20, planted, scan.Count, scan.Generation, scan.Engine, elapsed.Round(time.Millisecond))
	if scan.Count < planted {
		return fmt.Errorf("missed signatures: %d < %d", scan.Count, planted)
	}

	// The same capture as a chunked upload through /scan/stream — the
	// socket-feed path; the service never buffers the whole body.
	streamed, err := postScan(ts.URL+"/scan/stream?count=1", bytes.NewReader(traffic))
	if err != nil {
		return err
	}
	if streamed.Count != scan.Count {
		return fmt.Errorf("streamed scan diverged: %d vs %d hits", streamed.Count, scan.Count)
	}
	fmt.Fprintf(w, "streamed scan (/scan/stream): %d hits (identical)\n", streamed.Count)

	// Hot-swap: extend the dictionary with a fresh signature, publish
	// it through /reload, and rescan — no restart, no dropped traffic.
	extended := append(append([][]byte{}, dict...), []byte("zero-day-beacon"))
	m2, err := cellmatch.Compile(extended, cellmatch.Options{CaseFold: true, Groups: 2})
	if err != nil {
		return err
	}
	artifact, err := saveArtifact(m2)
	if err != nil {
		return err
	}
	defer os.Remove(artifact)
	reload, err := postJSON(ts.URL + "/reload?path=" + artifact)
	if err != nil {
		return err
	}
	evil := append(bytes.Repeat([]byte("innocuous payload "), 4096), []byte("...ZERO-DAY-BEACON...")...)
	after, err := postScan(ts.URL+"/scan?count=1", bytes.NewReader(evil))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "hot-swapped to generation %d (%v patterns); zero-day probe now detected: %d hit\n",
		after.Generation, reload["patterns"], after.Count)
	if after.Generation <= scan.Generation {
		return fmt.Errorf("reload did not advance the generation")
	}
	if after.Count != 1 {
		return fmt.Errorf("hot-swapped dictionary missed the zero-day: %d hits", after.Count)
	}

	// Service counters so far.
	stats, err := getJSON(ts.URL + "/stats")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "service stats: %v requests, %v bytes scanned, %v matches found\n",
		stats["requests"], stats["bytes_scanned"], stats["matches_found"])

	// Can this two-tile deployment filter a 10 Gbps link?
	est, err := m.EstimateCell(cellmatch.DefaultBlade(), int64(len(traffic)))
	if err != nil {
		return err
	}
	verdict := "NO"
	if est.SimulatedGbps >= 10 {
		verdict = "YES"
	}
	fmt.Fprintf(w, "deployment: %d tiles x %.2f Gbps -> %.2f Gbps simulated; 10 Gbps link: %s\n",
		est.TilesUsed, est.PerTileGbps, est.SimulatedGbps, verdict)

	// How many SPEs would a 40 Gbps backbone need?
	n, err := cellmatch.MinimumSPEsFor(40, est.PerTileGbps)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "a 40 Gbps link needs %d parallel tiles (one Cell has 8 SPEs)\n", n)
	return nil
}

// postScan POSTs a payload to a scan endpoint and decodes the reply.
func postScan(url string, body io.Reader) (*cellmatch.ScanResponse, error) {
	resp, err := http.Post(url, "application/octet-stream", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	var sr cellmatch.ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

func postJSON(url string) (map[string]any, error) {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return nil, err
	}
	return decodeJSON(resp, url)
}

func getJSON(url string) (map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	return decodeJSON(resp, url)
}

func decodeJSON(resp *http.Response, url string) (map[string]any, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, msg)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// saveArtifact writes a compiled matcher to a temp file and returns
// its path — the shippable form /reload consumes.
func saveArtifact(m *cellmatch.Matcher) (string, error) {
	f, err := os.CreateTemp("", "nids-signatures-v2-*.cms")
	if err != nil {
		return "", err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), f.Close()
}
