package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"scanned 4 MB over /scan",
		"streamed scan (/scan/stream):",
		"(identical)",
		"hot-swapped to generation 2",
		"zero-day probe now detected: 1 hit",
		"service stats:",
		"10 Gbps link:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
