// Overload: why security products use DFAs. The paper (Section 1)
// notes that heuristic matchers (Boyer-Moore family) are "vulnerable
// to attacks based on malicious input streams specifically designed
// to overload them", while DFA cost is one table lookup per byte no
// matter what the bytes are.
//
// This example measures byte-comparison counts for Boyer-Moore-
// Horspool on benign vs adversarial traffic, and shows the DFA scan
// touching every byte exactly once in both cases.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"cellmatch"
	"cellmatch/internal/baseline"
	"cellmatch/internal/workload"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The attack pattern: unique head byte, repeated tail.
	pattern := append([]byte{'b'}, bytes.Repeat([]byte{'a'}, 15)...)
	n := 1 << 20

	benign, _, err := workload.Traffic(workload.TrafficConfig{Bytes: n, Seed: 1})
	if err != nil {
		return err
	}
	adversarial := workload.AdversarialBMH(pattern, n)

	bmh, err := baseline.NewBMH(pattern)
	if err != nil {
		return err
	}
	_, benignCmp := bmh.Count(benign)
	_, advCmp := bmh.Count(adversarial)
	fmt.Fprintf(w, "Boyer-Moore-Horspool over %d KB:\n", n>>10)
	fmt.Fprintf(w, "  benign traffic:      %8d byte comparisons (%.2f/byte)\n",
		benignCmp, float64(benignCmp)/float64(n))
	fmt.Fprintf(w, "  adversarial traffic: %8d byte comparisons (%.2f/byte)  <- %dx blowup\n",
		advCmp, float64(advCmp)/float64(n), advCmp/benignCmp)

	// The DFA: same work on both inputs, by construction.
	m, err := cellmatch.Compile([][]byte{pattern}, cellmatch.Options{})
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"benign", benign},
		{"adversarial", adversarial},
	} {
		start := time.Now()
		count, err := m.Count(tc.data)
		if err != nil {
			return err
		}
		el := time.Since(start)
		fmt.Fprintf(w, "DFA scan of %-11s traffic: %d matches, 1.00 lookups/byte, %v (%.0f MB/s)\n",
			tc.name, count, el, float64(n)/el.Seconds()/1e6)
	}
	fmt.Fprintln(w, "\nDFA cost is content-independent: overload attacks have no lever.")
	return nil
}
