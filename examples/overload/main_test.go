package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Boyer-Moore-Horspool",
		"blowup",
		"DFA scan of benign",
		"DFA scan of adversarial",
		"content-independent",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
