// Quickstart: compile a small dictionary, scan a buffer, stream data
// incrementally, and print the compiled artifact's shape.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"cellmatch"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// 1. Compile a case-insensitive dictionary.
	m, err := cellmatch.CompileStrings(
		[]string{"virus", "worm", "trojan"},
		cellmatch.Options{CaseFold: true},
	)
	if err != nil {
		return err
	}

	// 2. Scan a buffer: every occurrence is reported with its
	// dictionary index and end offset.
	data := []byte("A Virus was found near a WORM, then another virus.")
	matches, err := m.FindAll(data)
	if err != nil {
		return err
	}
	for _, hit := range matches {
		pat := m.Pattern(hit.Pattern)
		fmt.Fprintf(w, "pattern %q at bytes [%d, %d)\n", pat, hit.End-len(pat), hit.End)
	}

	// 3. Stream the same data in two chunks: matches carry global
	// offsets even when they straddle chunk boundaries.
	s := m.NewStream()
	s.Write(data[:20])
	s.Write(data[20:])
	fmt.Fprintf(w, "streaming found %d matches over %d bytes\n",
		len(s.Matches()), s.BytesSeen())

	// 4. Scan the same bytes with the parallel engine: identical
	// matches, chunked across one goroutine per CPU.
	par, err := m.FindAllParallel(data, cellmatch.ParallelOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "parallel scan found %d matches (identical to FindAll)\n", len(par))

	// 5. Inspect the compiled shape: states, STT size, tile budget.
	st := m.Stats()
	fmt.Fprintf(w, "dictionary: %d patterns -> %d DFA states -> %d KB of STT (%d tile)\n",
		st.Patterns, st.States, st.STTBytes/1024, st.TilesRequired)

	// 6. Ask the performance model what this costs on Cell hardware.
	est, err := m.EstimateCell(cellmatch.DefaultBlade(), 1<<24)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "one SPE filters %.2f Gbps; this deployment: %.2f Gbps on %d tile(s)\n",
		est.PerTileGbps, est.SimulatedGbps, est.TilesUsed)
	return nil
}
