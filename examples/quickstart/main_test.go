package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pattern "virus"`,
		"streaming found 3 matches",
		"parallel scan found 3 matches",
		"dictionary: 3 patterns",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
