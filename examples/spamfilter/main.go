// Spamfilter: dictionary-plus-regex filtering, the paper's other
// application domain ("intrusion detectors, deep-inspection filters,
// spam filters and on-line virus scanners"). Messages are scored by
// dictionary hits found with the DFA matcher; structured fields
// (sender addresses) are validated against a compiled regex set. Both
// run over the paper's case-folded 32-symbol alphabet.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"cellmatch"
)

var spamPhrases = []string{
	"FREE MONEY", "ACT NOW", "NO OBLIGATION", "WINNER", "CLICK HERE",
	"LIMITED TIME", "EARN CASH", "GUARANTEED", "RISK FREE", "CHEAP MEDS",
}

var messages = []struct {
	from string
	body string
}{
	{"alice@example.com", "Lunch tomorrow? No obligation, just asking."},
	{"promo@deals.biz", "WINNER! Click here for free money. Act now, limited time, guaranteed!"},
	{"bob@example.com", "The quarterly report is attached."},
	{"x@spam.click", "cheap meds, risk free, earn cash from home!!!"},
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	m, err := cellmatch.CompileStrings(spamPhrases, cellmatch.Options{CaseFold: true})
	if err != nil {
		return err
	}
	// Sender sanity: a tiny address grammar compiled to a DFA.
	addr, err := cellmatch.CompileRegexes(
		[]string{`[a-z0-9.]+@[a-z0-9]+(\.[a-z]+)+`}, true)
	if err != nil {
		return err
	}

	for i, msg := range messages {
		hits, err := m.FindAll([]byte(msg.body))
		if err != nil {
			return err
		}
		score := len(hits)
		if len(addr.MatchWhole([]byte(msg.from))) == 0 {
			score += 2 // malformed sender
		}
		verdict := "ham "
		if score >= 2 {
			verdict = "SPAM"
		}
		fmt.Fprintf(w, "message %d from %-20s score=%d verdict=%s\n", i, msg.from, score, verdict)
		for _, h := range hits {
			fmt.Fprintf(w, "    phrase %q ends at %d\n", m.Pattern(h.Pattern), h.End)
		}
	}
	return nil
}
