package main

import (
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "verdict=SPAM") != 2 {
		t.Fatalf("want 2 spam verdicts:\n%s", out)
	}
	if strings.Count(out, "verdict=ham") != 2 {
		t.Fatalf("want 2 ham verdicts:\n%s", out)
	}
}
