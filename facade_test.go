package cellmatch_test

import (
	"os"
	"path/filepath"
	"testing"

	"cellmatch"
)

// The registry/loader facade wrappers must round-trip a dictionary
// end to end: compile via DictLoader, persist via Save, reload the
// artifact via ArtifactLoader, and publish through a Namespace.
func TestPublicAPIRegistryFacade(t *testing.T) {
	dir := t.TempDir()
	dict := filepath.Join(dir, "dict.txt")
	if err := os.WriteFile(dict, []byte("virus\nworm\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := cellmatch.NewRegistry(dict, cellmatch.DictLoader(dict, cellmatch.Options{}))
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	probe := []byte("a virus and a worm")
	ms, err := r.Current().Matcher.FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("dict loader matcher found %d matches, want 2", len(ms))
	}

	art := filepath.Join(dir, "dict.cmx")
	f, err := os.Create(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Current().Matcher.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ra := cellmatch.NewRegistry(art, cellmatch.ArtifactLoader(art))
	if _, err := ra.Reload(); err != nil {
		t.Fatal(err)
	}
	ms2, err := ra.Current().Matcher.FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms2) != len(ms) {
		t.Fatalf("artifact matcher found %d matches, want %d", len(ms2), len(ms))
	}

	ns := cellmatch.NewNamespace()
	if err := ns.Set("tenant-a", r); err != nil {
		t.Fatal(err)
	}
	if got := ns.Get("tenant-a"); got != r {
		t.Fatal("namespace did not return the registered registry")
	}
}

func TestPublicAPICompileFacades(t *testing.T) {
	m, err := cellmatch.Compile([][]byte{[]byte("abc"), []byte("def")}, cellmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ms, err := m.FindAll([]byte("xxabcxxdef")); err != nil || len(ms) != 2 {
		t.Fatalf("Compile facade: matches=%v err=%v", ms, err)
	}

	rx, err := cellmatch.CompileRegexSearch([]string{"ab[cd]{1,2}"}, cellmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rx.IsRegex() {
		t.Fatal("CompileRegexSearch produced a literal matcher")
	}
	if ms, err := rx.FindAll([]byte("xabcdx")); err != nil || len(ms) == 0 {
		t.Fatalf("regex facade: matches=%v err=%v", ms, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "rx.txt")
	if err := os.WriteFile(path, []byte("ab[cd]{1,2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rr := cellmatch.NewRegistry(path, cellmatch.RegexDictLoader(path, cellmatch.Options{}))
	if _, err := rr.Reload(); err != nil {
		t.Fatal(err)
	}
	if !rr.Current().Matcher.IsRegex() {
		t.Fatal("RegexDictLoader produced a literal matcher")
	}
}
