package cellmatch_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/core"
	"cellmatch/internal/dfa"
	"cellmatch/internal/parallel"
)

// Fuzz targets. Under plain `go test` they run their seed corpora as
// regression tests; with `go test -fuzz=FuzzX` they explore further.

// FuzzRegexParse: the parser must never panic and must either reject
// or produce a DFA that validates and scans without fault.
func FuzzRegexParse(f *testing.F) {
	for _, seed := range []string{
		"abc", "(a|b)*abb", "a{2,4}", "[a-z]+@[a-z]+", "\\x41|\\n",
		"((((", "a**", "[z-a]", "{3}", "a|", "(?)", "[^\\x00-\\xff]",
		"\\", "a{999}", "x(y(z(w)))*",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		if len(expr) > 64 {
			return // keep subset-construction cost bounded
		}
		red, err := alphabet.FromPatterns([][]byte{[]byte("abcxyz")}, false, 16)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dfa.CompileRegex(expr, red)
		if err != nil {
			return // rejected: fine
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("compiled regex %q yields invalid DFA: %v", expr, err)
		}
		// Must scan arbitrary input without fault.
		d.Accepts(red.Reduce([]byte("abcabcxyzzz")))
	})
}

// FuzzMatcherScan: compile a two-pattern dictionary from fuzz input
// and verify the matcher's count equals a naive scan.
func FuzzMatcherScan(f *testing.F) {
	f.Add([]byte("virus"), []byte("worm"), []byte("a virus in a worm"))
	f.Add([]byte("aa"), []byte("aaa"), []byte("aaaaaaa"))
	f.Add([]byte{0xFF, 0x00}, []byte{0x01}, []byte{0xFF, 0x00, 0x01, 0xFF, 0x00})
	f.Fuzz(func(t *testing.T, p1, p2, data []byte) {
		if len(p1) == 0 || len(p2) == 0 || len(p1) > 32 || len(p2) > 32 || len(data) > 4096 {
			return
		}
		m, err := core.Compile([][]byte{p1, p2}, core.Options{Groups: 2})
		if err != nil {
			return // e.g. too many distinct symbols
		}
		got, err := m.Count(data)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveOccurrences(data, p1) + naiveOccurrences(data, p2)
		if got != want {
			t.Fatalf("count %d, naive %d (p1=%q p2=%q)", got, want, p1, p2)
		}
	})
}

// FuzzParallelEquivalence: the chunked speculative engine must agree
// byte-for-byte with the sequential scan for arbitrary dictionaries,
// worker counts, and chunk sizes — including chunks smaller than the
// longest pattern — via both FindAllParallel and ScanReader.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add([]byte("abra"), []byte("abracadabra"), []byte("abracadabra abracadabra"), uint8(4), uint16(3))
	f.Add([]byte("aa"), []byte("aaa"), []byte("aaaaaaaaaaaaaaaa"), uint8(2), uint16(1))
	f.Add([]byte{0xFF, 0x00}, []byte{0x01}, bytes.Repeat([]byte{0xFF, 0x00, 0x01}, 40), uint8(7), uint16(64))
	f.Add([]byte("virus"), []byte("rus"), []byte("a virus in a worm"), uint8(1), uint16(1024))
	f.Fuzz(func(t *testing.T, p1, p2, data []byte, workers uint8, chunk uint16) {
		if len(p1) == 0 || len(p2) == 0 || len(p1) > 32 || len(p2) > 32 || len(data) > 4096 {
			return
		}
		m, err := core.Compile([][]byte{p1, p2}, core.Options{})
		if err != nil {
			return // e.g. too many distinct symbols
		}
		want, err := m.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.ParallelOptions{
			Workers:    int(workers)%8 + 1,
			ChunkBytes: int(chunk)%2048 + 1,
		}
		got, err := m.FindAllParallel(data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallel %d matches, sequential %d (workers=%d chunk=%d)",
				len(got), len(want), opts.Workers, opts.ChunkBytes)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("match %d: parallel %+v, sequential %+v (workers=%d chunk=%d)",
					i, got[i], want[i], opts.Workers, opts.ChunkBytes)
			}
		}
		streamed, err := m.ScanReader(bytes.NewReader(data), opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(want) {
			t.Fatalf("ScanReader %d matches, sequential %d (workers=%d chunk=%d)",
				len(streamed), len(want), opts.Workers, opts.ChunkBytes)
		}
		for i := range want {
			if streamed[i] != want[i] {
				t.Fatalf("ScanReader match %d: %+v, want %+v", i, streamed[i], want[i])
			}
		}
	})
}

// FuzzKernelEquivalence: the dense compiled kernel must agree with the
// stt/dfa fallback path AND with a naive baseline matcher for random
// dictionaries, case folding on and off, and every interleave lane
// count 1..8 — across FindAll, FindAllParallel, and ScanReader.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte("virus"), []byte("rus w"), []byte("a virus in a worm"), false, uint8(3))
	f.Add([]byte("AbRa"), []byte("cadabra"), []byte("abracadabra ABRACADABRA"), true, uint8(7))
	f.Add([]byte("aa"), []byte("aaa"), []byte("aaaaaaaaaaaaaaaa"), false, uint8(0))
	f.Add([]byte{0xFF, 0x00}, []byte{0x01}, bytes.Repeat([]byte{0xFF, 0x00, 0x01}, 40), false, uint8(5))
	f.Fuzz(func(t *testing.T, p1, p2, data []byte, fold bool, rawK uint8) {
		if len(p1) == 0 || len(p2) == 0 || len(p1) > 32 || len(p2) > 32 || len(data) > 4096 {
			return
		}
		k := int(rawK)%8 + 1
		dict := [][]byte{p1, p2}
		kernelM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{InterleaveK: k, Stride: 1},
		})
		if err != nil {
			return // e.g. too many distinct symbols
		}
		if kernelM.Stats().Engine != "kernel" {
			t.Fatalf("kernel engine not selected for a 2-pattern dictionary")
		}
		sttM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{DisableKernel: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sttM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := kernelM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("kernel %d matches, stt %d (fold=%v k=%d)", len(got), len(want), fold, k)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("match %d: kernel %+v, stt %+v (fold=%v k=%d)", i, got[i], want[i], fold, k)
			}
		}
		// Baseline cross-check: total count equals the naive scan.
		// Patterns sharing a reduced image (e.g. "a" and "A" under
		// folding) would double-count naive hits, so require the two
		// patterns to stay distinct under the fold.
		if !bytes.Equal(foldBytes(p1, fold), foldBytes(p2, fold)) {
			naive := naiveFoldOccurrences(data, p1, fold) + naiveFoldOccurrences(data, p2, fold)
			if len(got) != naive {
				t.Fatalf("kernel %d matches, naive baseline %d (fold=%v)", len(got), naive, fold)
			}
		}
		// Parallel + streaming over the kernel engine.
		popts := core.ParallelOptions{Workers: k, ChunkBytes: len(data)/3 + 1}
		par, err := kernelM.FindAllParallel(data, popts)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := kernelM.ScanReader(bytes.NewReader(data), popts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if par[i] != want[i] {
				t.Fatalf("parallel match %d: %+v, want %+v", i, par[i], want[i])
			}
			if streamed[i] != want[i] {
				t.Fatalf("reader match %d: %+v, want %+v", i, streamed[i], want[i])
			}
		}
		if len(par) != len(want) || len(streamed) != len(want) {
			t.Fatalf("parallel %d / reader %d matches, want %d", len(par), len(streamed), len(want))
		}
	})
}

// FuzzStride2Equivalence: the 2-byte-stride pair-table rung must agree
// byte-for-byte with the 1-byte kernel AND the stt fallback for
// arbitrary dictionaries, case folding on and off, K ∈ {1,4} lanes and
// workers, across sequential FindAll, the per-request stride-1 opt-out,
// the shared pool, ScanReader, and the incremental Stream — the
// epilogue/odd-tail correctness net for matches ending on odd offsets
// and straddling every cut.
func FuzzStride2Equivalence(f *testing.F) {
	f.Add([]byte("virus"), []byte("rus w"), []byte("a virus in a worm"), false, uint8(3), uint16(7))
	f.Add([]byte("AbRa"), []byte("cadabra"), []byte("abracadabra ABRACADABRA"), true, uint8(0), uint16(3))
	f.Add([]byte("aa"), []byte("aaa"), []byte("aaaaaaaaaaaaaaaaa"), false, uint8(200), uint16(1))
	f.Add([]byte{0xFF, 0x00}, []byte{0x01}, bytes.Repeat([]byte{0xFF, 0x00, 0x01}, 41), false, uint8(129), uint16(64))
	f.Fuzz(func(t *testing.T, p1, p2, data []byte, fold bool, sel uint8, chunk uint16) {
		if len(p1) == 0 || len(p2) == 0 || len(p1) > 32 || len(p2) > 32 || len(data) > 4096 {
			return
		}
		k := 1
		if sel >= 128 {
			k = 4
		}
		dict := [][]byte{p1, p2}
		stride2M, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{InterleaveK: k, Stride: 2},
		})
		if err != nil {
			return // e.g. too many distinct symbols
		}
		if got := stride2M.Stats().Engine; got != "stride2" {
			// Forced stride 2 only yields when the pair tables blow the
			// budget, impossible for a 2-pattern dictionary.
			t.Fatalf("stride-2 engine not selected: %q", got)
		}
		kernelM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{InterleaveK: k, Stride: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		sttM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{DisableKernel: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sttM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := kernelM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "kernel-vs-stt", ref, want)
		got, err := stride2M.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "FindAll", got, want)
		if n, err := stride2M.Count(data); err != nil || n != len(want) {
			t.Fatalf("Count = %d (%v), want %d", n, err, len(want))
		}
		// The per-request stride-1 opt-out scans the same matcher on its
		// 1-byte loops.
		opt, err := stride2M.FindAllStride1(data)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "FindAllStride1", opt, want)
		pool := parallel.NewPool(2)
		defer pool.Close()
		cs := int(chunk)%2048 + 1
		for _, opts := range []core.ParallelOptions{
			{Workers: k, ChunkBytes: cs},
			{ChunkBytes: cs, Pool: pool},
			{Workers: k, ChunkBytes: cs, DisableStride2: true},
		} {
			par, err := stride2M.FindAllParallel(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualMatches(t, "FindAllParallel", par, want)
			rd, err := stride2M.ScanReader(bytes.NewReader(data), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualMatches(t, "ScanReader", rd, want)
		}
		// Incremental stream: cuts land on odd and even parities.
		s := stride2M.NewStream()
		for off := 0; off < len(data); off += cs {
			end := off + cs
			if end > len(data) {
				end = len(data)
			}
			s.Write(data[off:end])
		}
		assertEqualMatches(t, "Stream", sortedMatches(s.Matches()), sortedMatches(want))
	})
}

// FuzzCompressedEquivalence: the compressed-row rung (bitmap-indexed
// rows + default-pointer chains) must agree byte-for-byte with the
// dense kernel AND the stt fallback for arbitrary dictionaries, case
// folding on and off, K ∈ {1,4} lanes and workers, across sequential
// FindAll, Count, the shared pool, ScanReader, and the incremental
// Stream — the net over the chain-walk resolution logic and the
// carry-encoding seams the other rungs never execute.
func FuzzCompressedEquivalence(f *testing.F) {
	f.Add([]byte("virus"), []byte("rus w"), []byte("a virus in a worm"), false, uint8(3), uint16(7))
	f.Add([]byte("AbRa"), []byte("cadabra"), []byte("abracadabra ABRACADABRA"), true, uint8(0), uint16(3))
	f.Add([]byte("aa"), []byte("aaa"), []byte("aaaaaaaaaaaaaaaaa"), false, uint8(200), uint16(1))
	f.Add([]byte{0xFF, 0x00}, []byte{0x01}, bytes.Repeat([]byte{0xFF, 0x00, 0x01}, 41), false, uint8(129), uint16(64))
	f.Fuzz(func(t *testing.T, p1, p2, data []byte, fold bool, sel uint8, chunk uint16) {
		if len(p1) == 0 || len(p2) == 0 || len(p1) > 32 || len(p2) > 32 || len(data) > 4096 {
			return
		}
		k := 1
		if sel >= 128 {
			k = 4
		}
		dict := [][]byte{p1, p2}
		compM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{InterleaveK: k, Compressed: core.CompressedOn},
		})
		if err != nil {
			return // e.g. too many distinct symbols
		}
		if got := compM.Stats().Engine; got != "compressed" {
			// Forced compressed only yields when the rows blow the budget,
			// impossible for a 2-pattern dictionary.
			t.Fatalf("compressed engine not selected: %q", got)
		}
		kernelM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{InterleaveK: k, Stride: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		sttM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{DisableKernel: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sttM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := kernelM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "kernel-vs-stt", ref, want)
		got, err := compM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "FindAll", got, want)
		if n, err := compM.Count(data); err != nil || n != len(want) {
			t.Fatalf("Count = %d (%v), want %d", n, err, len(want))
		}
		pool := parallel.NewPool(2)
		defer pool.Close()
		cs := int(chunk)%2048 + 1
		for _, opts := range []core.ParallelOptions{
			{Workers: k, ChunkBytes: cs},
			{ChunkBytes: cs, Pool: pool},
		} {
			par, err := compM.FindAllParallel(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualMatches(t, "FindAllParallel", par, want)
			rd, err := compM.ScanReader(bytes.NewReader(data), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualMatches(t, "ScanReader", rd, want)
		}
		// Incremental stream: carry crosses every cut parity.
		s := compM.NewStream()
		for off := 0; off < len(data); off += cs {
			end := off + cs
			if end > len(data) {
				end = len(data)
			}
			s.Write(data[off:end])
		}
		assertEqualMatches(t, "Stream", sortedMatches(s.Matches()), sortedMatches(want))
	})
}

// FuzzShardEquivalence: the sharded multi-kernel engine must agree
// byte-for-byte with the stt path for arbitrary dictionaries, case
// folding on and off, shard caps 1..4, and both the sequential
// chunk-interleaved scan and the pool-fanned parallel scan. The
// per-shard budget is derived from the dictionary's real dense
// footprint (3/4 of it), so the dense kernel can never win the ladder
// and most inputs land on the sharded tier; inputs that cannot shard
// (a dominant single pattern) exercise the stt fallback instead, which
// must be equivalent too.
func FuzzShardEquivalence(f *testing.F) {
	f.Add([]byte("aaaaaaaa"), []byte("bbbbbbbb"), []byte("cccccccc"),
		[]byte("xxaaaaaaaabbbbbbbbxxccccccccxx"), false, uint8(1))
	f.Add([]byte("abracadab"), []byte("cadabraca"), []byte("abra"),
		[]byte("abracadabra abracadabra cadabraca"), false, uint8(3))
	f.Add([]byte("VirusSig"), []byte("WormSign"), []byte("Trojans!"),
		[]byte("a virussig, a WORMSIGN, trojans! everywhere"), true, uint8(2))
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00}, []byte{0x01, 0x02, 0x03}, []byte{0xFF, 0x01},
		bytes.Repeat([]byte{0xFF, 0x00, 0x01, 0x02, 0x03}, 30), false, uint8(0))
	f.Fuzz(func(t *testing.T, p1, p2, p3, data []byte, fold bool, rawShards uint8) {
		if len(p1) == 0 || len(p2) == 0 || len(p3) == 0 ||
			len(p1) > 32 || len(p2) > 32 || len(p3) > 32 || len(data) > 4096 {
			return
		}
		shards := int(rawShards)%4 + 1
		dict := [][]byte{p1, p2, p3}
		ref, err := core.Compile(dict, core.Options{CaseFold: fold})
		if err != nil {
			return // e.g. too many distinct symbols
		}
		budget := ref.Stats().KernelTableBytes * 3 / 4
		shardedM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{MaxTableBytes: budget, MaxShards: shards},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := shardedM.Stats().Engine; got == "kernel" {
			t.Fatalf("budget %d under the dense footprint still selected the kernel", budget)
		}
		sttM, err := core.Compile(dict, core.Options{
			CaseFold: fold,
			Engine:   core.EngineOptions{DisableKernel: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := sttM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := shardedM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("sharded %d matches, stt %d (fold=%v shards=%d engine=%s)",
				len(got), len(want), fold, shards, shardedM.Stats().Engine)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("match %d: sharded %+v, stt %+v (fold=%v shards=%d)",
					i, got[i], want[i], fold, shards)
			}
		}
		// Pool-fanned (shard x chunk work items) and ad-hoc parallel.
		pool := parallel.NewPool(2)
		defer pool.Close()
		for _, opts := range []core.ParallelOptions{
			{Workers: shards + 1, ChunkBytes: len(data)/3 + 1},
			{ChunkBytes: 64, Pool: pool},
		} {
			par, err := shardedM.FindAllParallel(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(want) {
				t.Fatalf("parallel %d matches, want %d (pool=%v)", len(par), len(want), opts.Pool != nil)
			}
			for i := range want {
				if par[i] != want[i] {
					t.Fatalf("parallel match %d: %+v, want %+v (pool=%v)", i, par[i], want[i], opts.Pool != nil)
				}
			}
		}
	})
}

// FuzzFilterEquivalence: the skip-scan front-end must be invisible in
// the output — filter-on vs filter-off byte-identical — for arbitrary
// dictionaries (including single-byte minimums, where the filter must
// auto-bypass), case folding on and off, every verifier tier (dense
// kernel, sharded, stt), K ∈ {1,4} workers, sequential FindAll, the
// shared pool, ScanReader, and the incremental Stream.
func FuzzFilterEquivalence(f *testing.F) {
	f.Add([]byte("abracadab"), []byte("cadabraca"), []byte("dabra"),
		[]byte("abracadabra abracadabra cadabraca"), false, uint8(0), uint16(7))
	f.Add([]byte("VirusSig"), []byte("WormSign"), []byte("Trojans!"),
		[]byte("a virussig, a WORMSIGN, trojans! everywhere"), true, uint8(1), uint16(64))
	f.Add([]byte("aaaa"), []byte("aaaaaaa"), []byte("aa"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaa"), false, uint8(2), uint16(3))
	f.Add([]byte{0xFF, 0x00, 0x01, 0x02}, []byte{0x01, 0x02, 0x03, 0x04}, []byte{0xFF},
		bytes.Repeat([]byte{0xFF, 0x00, 0x01, 0x02, 0x03, 0x04}, 30), false, uint8(3), uint16(1))
	f.Fuzz(func(t *testing.T, p1, p2, p3, data []byte, fold bool, sel uint8, chunk uint16) {
		if len(p1) == 0 || len(p2) == 0 || len(p3) == 0 ||
			len(p1) > 32 || len(p2) > 32 || len(p3) > 32 || len(data) > 4096 {
			return
		}
		dict := [][]byte{p1, p2, p3}
		verifier := int(sel) % 3 // 0 = kernel, 1 = sharded, 2 = stt
		workers := 1
		if sel >= 128 {
			workers = 4
		}
		engine := core.EngineOptions{}
		switch verifier {
		case 1:
			ref, err := core.Compile(dict, core.Options{CaseFold: fold})
			if err != nil {
				return // e.g. too many distinct symbols
			}
			engine.MaxTableBytes = ref.Stats().KernelTableBytes * 3 / 4
			engine.MaxShards = 4
		case 2:
			engine.DisableKernel = true
		}
		compileWith := func(mode core.FilterMode) (*core.Matcher, error) {
			e := engine
			e.Filter = mode
			return core.Compile(dict, core.Options{CaseFold: fold, Engine: e})
		}
		offM, err := compileWith(core.FilterOff)
		if err != nil {
			return // e.g. too many distinct symbols
		}
		onM, err := compileWith(core.FilterOn)
		if err != nil {
			t.Fatal(err)
		}
		want, err := offM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := onM.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "FindAll", got, want)
		if n, err := onM.Count(data); err != nil || n != len(want) {
			t.Fatalf("Count = %d (%v), want %d", n, err, len(want))
		}
		pool := parallel.NewPool(2)
		defer pool.Close()
		cs := int(chunk)%2048 + 1
		for _, opts := range []core.ParallelOptions{
			{Workers: workers, ChunkBytes: cs},
			{ChunkBytes: cs, Pool: pool},
		} {
			par, err := onM.FindAllParallel(data, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualMatches(t, "FindAllParallel", par, want)
			rd, err := onM.ScanReader(bytes.NewReader(data), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualMatches(t, "ScanReader", rd, want)
		}
		s := onM.NewStream()
		for off := 0; off < len(data); off += cs {
			end := off + cs
			if end > len(data) {
				end = len(data)
			}
			s.Write(data[off:end])
		}
		// Stream reports per-slot feed order when the filter bypasses
		// (e.g. single-byte patterns); canonicalize both sides.
		assertEqualMatches(t, "Stream", sortedMatches(s.Matches()), sortedMatches(want))
	})
}

// sortedMatches canonicalizes match order by (End, Pattern).
func sortedMatches(ms []core.Match) []core.Match {
	out := append([]core.Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// assertEqualMatches fails the fuzz case when two match slices differ.
func assertEqualMatches(t *testing.T, ctx string, got, want []core.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d is %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// foldBytes uppercases ASCII letters when fold is set — the same
// canonicalization alphabet.FromPatterns applies.
func foldBytes(b []byte, fold bool) []byte {
	if !fold {
		return b
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

// naiveFoldOccurrences counts occurrences under optional ASCII case
// folding, the oracle for the matcher's reduced-alphabet semantics.
func naiveFoldOccurrences(text, pat []byte, fold bool) int {
	t, p := foldBytes(text, fold), foldBytes(pat, fold)
	return naiveOccurrences(t, p)
}

func naiveOccurrences(text, pat []byte) int {
	n := 0
	for i := 0; i+len(pat) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pat)], pat) {
			n++
		}
	}
	return n
}

// FuzzArtifactLoad: arbitrary bytes must never panic the loader, and
// a valid artifact must round-trip.
func FuzzArtifactLoad(f *testing.F) {
	m, err := core.CompileStrings([]string{"seed", "corpus"}, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CMSAV1\x00garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		back, err := core.Load(bytes.NewReader(blob))
		if err != nil {
			return
		}
		// Whatever loaded must be usable without fault.
		if _, err := back.Count([]byte("seed corpus probe")); err != nil {
			t.Fatalf("loaded matcher cannot scan: %v", err)
		}
	})
}

// FuzzStreamChunking: any chunking of any input yields the same
// matches as a single-shot scan.
func FuzzStreamChunking(f *testing.F) {
	f.Add([]byte("abracadabra abra"), uint8(3))
	f.Add([]byte(strings.Repeat("ab", 50)), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		if len(data) > 4096 {
			return
		}
		m, err := core.CompileStrings([]string{"abra", "ab"}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		batch, err := m.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		cs := int(chunk)%16 + 1
		s := m.NewStream()
		for i := 0; i < len(data); i += cs {
			end := i + cs
			if end > len(data) {
				end = len(data)
			}
			s.Write(data[i:end])
		}
		if len(s.Matches()) != len(batch) {
			t.Fatalf("chunk %d: stream %d vs batch %d matches",
				cs, len(s.Matches()), len(batch))
		}
	})
}

// FuzzIncrementalCompile: a delta-recompiled matcher must be
// byte-identical to a cold compile of the same dictionary — same Save
// image and same match stream — for arbitrary base dictionaries,
// arbitrary edits (append, remove, replace), case folding on and off,
// and tile-size splits that force multi-slot systems. This is the
// differential net for the incremental compilation path: any reuse
// decision that is not provably content-safe shows up as an image
// mismatch here.
func FuzzIncrementalCompile(f *testing.F) {
	f.Add([]byte("virus"), []byte("worm"), []byte("trojan"), []byte("a virus in a worm"), uint8(0), uint8(0))
	f.Add([]byte("abra"), []byte("cadabra"), []byte("abracadabra"), []byte("abracadabra abracadabra"), uint8(1), uint8(40))
	f.Add([]byte("AbRa"), []byte("CAD"), []byte("ra c"), []byte("abracadabra ABRACADABRA"), uint8(130), uint8(3))
	f.Add([]byte{0xFF, 0x00}, []byte{0x01, 0x02}, []byte{0x00, 0x01}, bytes.Repeat([]byte{0xFF, 0x00, 0x01, 0x02}, 30), uint8(66), uint8(0))
	f.Fuzz(func(t *testing.T, p1, p2, p3, data []byte, sel, tile uint8) {
		for _, p := range [][]byte{p1, p2, p3} {
			if len(p) == 0 || len(p) > 32 {
				return
			}
		}
		if len(data) > 4096 {
			return
		}
		opts := core.Options{CaseFold: sel >= 128}
		if tile > 0 {
			// Small tiles force multi-slot systems, the regime where
			// per-slot reuse decisions actually differ.
			opts.MaxStatesPerTile = int(tile)%120 + 8
		}
		base, err := core.Compile([][]byte{p1, p2}, opts)
		if err != nil {
			return // e.g. too many distinct symbols
		}
		// Edit: append p3, remove an entry, or replace one with p3.
		var next [][]byte
		switch sel % 3 {
		case 0:
			next = [][]byte{p1, p2, p3}
		case 1:
			next = [][]byte{p2}
		case 2:
			next = [][]byte{p1, p3}
		}
		// The delta path must agree with the cold path even on failure:
		// an edit that the cold compiler rejects (e.g. a pattern over
		// the tile state budget) must be rejected by the patch too, and
		// vice versa.
		patched, _, deltaErr := base.RecompileDelta(next)
		cold, coldErr := core.Compile(next, opts)
		if (deltaErr == nil) != (coldErr == nil) {
			t.Fatalf("delta/cold disagree on compilability: delta=%v cold=%v", deltaErr, coldErr)
		}
		if coldErr != nil {
			return
		}
		var imgPatched, imgCold bytes.Buffer
		if err := patched.Save(&imgPatched); err != nil {
			t.Fatal(err)
		}
		if err := cold.Save(&imgCold); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(imgPatched.Bytes(), imgCold.Bytes()) {
			t.Fatalf("delta image differs from cold image (sel=%d tile=%d)", sel, tile)
		}
		want, err := cold.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := patched.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "delta-vs-cold", got, want)
	})
}
