module cellmatch

go 1.24
