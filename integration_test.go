package cellmatch_test

import (
	"strings"
	"testing"

	"cellmatch/internal/baseline"
	"cellmatch/internal/core"
	"cellmatch/internal/spu"
	"cellmatch/internal/tile"
	"cellmatch/internal/workload"
)

// TestCrossImplementationAgreement runs three independent matcher
// implementations over the same large traffic and requires identical
// total occurrence counts:
//
//  1. the production path (core: partitioned, alphabet-reduced,
//     pointer-encoded, parallel-split with overlap dedupe),
//  2. the map-based Aho-Corasick baseline over raw bytes,
//  3. per-pattern KMP sums.
func TestCrossImplementationAgreement(t *testing.T) {
	dict := workload.SignatureDictionary()
	traffic, planted, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 20, MatchEvery: 4096, Dictionary: dict, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if planted < 200 {
		t.Fatalf("planted only %d", planted)
	}
	// Production path (no case folding so the raw-byte baselines see
	// the same language). Use several parallel widths.
	var counts []int
	for _, groups := range []int{1, 3, 8} {
		m, err := core.Compile(dict, core.Options{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		n, err := m.Count(traffic)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, n)
	}
	for _, n := range counts[1:] {
		if n != counts[0] {
			t.Fatalf("parallel widths disagree: %v", counts)
		}
	}
	ac, err := baseline.NewACMap(dict)
	if err != nil {
		t.Fatal(err)
	}
	if got := ac.Count(traffic); got != counts[0] {
		t.Fatalf("ACMap %d vs core %d", got, counts[0])
	}
	kmpTotal := 0
	for _, p := range dict {
		m, err := baseline.NewKMP(p)
		if err != nil {
			t.Fatal(err)
		}
		kmpTotal += m.Count(traffic)
	}
	if kmpTotal != counts[0] {
		t.Fatalf("KMP sum %d vs core %d", kmpTotal, counts[0])
	}
	if counts[0] < planted {
		t.Fatalf("found %d < planted %d", counts[0], planted)
	}
}

// TestSimulatedKernelEndToEnd pushes real traffic through the
// simulated SPU kernel (deinterleaved into 16 streams) and checks the
// total against the production matcher: the cycle-accurate path and
// the native path are the same machine.
func TestSimulatedKernelEndToEnd(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 900, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Compile(pats, core.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	sys := m.System()
	if len(sys.Slots) != 1 {
		t.Fatalf("expected one slot, got %d", len(sys.Slots))
	}
	tl, err := tile.New(sys.Slots[0], tile.Config{Version: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 16 independent streams with planted patterns, reduced and
	// interleaved like the PPE would. 16 x 1008 = 15.75 KB fits the
	// tile's 16 KB input buffer at unroll-3 granularity.
	n := 48 * 21
	block := make([]byte, 16*n)
	var wantTotal uint64
	for i := 0; i < 16; i++ {
		stream, _, err := workload.Traffic(workload.TrafficConfig{
			Bytes: n, MatchEvery: 300, Dictionary: pats, Seed: int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		reduced := sys.Red.Reduce(stream)
		for q := 0; q < n; q++ {
			block[q*16+i] = reduced[q]
		}
		wantTotal += uint64(sys.Slots[0].CountFinalEntries(reduced))
	}
	counts, prof, err := tl.MatchBlockSim(block)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for _, c := range counts {
		got += c
	}
	if got != wantTotal {
		t.Fatalf("simulated kernel total %d, DFA oracle %d", got, wantTotal)
	}
	if prof.Cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
	// The kernel listing is inspectable.
	lst := tl.LastProgram.Listing()
	if !strings.Contains(lst, "shufb") || !strings.Contains(lst, "lqd") {
		t.Fatal("listing lacks expected instructions")
	}
	st := spu.StaticStatsOf(tl.LastProgram)
	if st.Loads == 0 || st.Branches == 0 || st.EvenPipe == 0 || st.OddPipe == 0 {
		t.Fatalf("static stats degenerate: %+v", st)
	}
}

// TestSaveLoadThroughPublicAPI round-trips a compiled artifact through
// the internal persistence layer and re-verifies matching.
func TestFullPipelinePersistence(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 2500, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Compile(pats, core.Options{CaseFold: true, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.Save(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := core.Load(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	traffic, planted, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 18, MatchEvery: 2048, Dictionary: pats, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Count(traffic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Count(traffic)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a < planted {
		t.Fatalf("persistence changed results: %d vs %d (planted %d)", a, b, planted)
	}
}
