// Package alphabet implements the input data reduction of Section 4 of
// the paper: folding the 256-value byte range into a small power-of-two
// symbol set so that STT rows shrink and more states fit in a tile.
//
// The paper's choice is 32 symbols ("the 32 values from 0x40 to 0x5F,
// which comprise the uppercase Latin alphabet plus other 6 characters"),
// justified by case-insensitive security filters. This package provides
// that exact folding plus a dictionary-derived reduction that computes
// the minimal symbol classes a given pattern set distinguishes.
package alphabet

import (
	"fmt"
)

// Reduction maps raw input bytes onto a reduced symbol set 0..Classes-1.
type Reduction struct {
	// Map gives the reduced symbol for each raw byte value.
	Map [256]byte
	// Classes is the number of distinct symbols in the image.
	Classes int
	// Width is the STT row width: the smallest power of two >= Classes
	// (and >= 2). Rows are Width entries wide so state pointers keep
	// free low bits.
	Width int
}

// widthFor returns the smallest power of two >= n, minimum 2.
func widthFor(n int) int {
	w := 2
	for w < n {
		w *= 2
	}
	return w
}

// Identity returns the trivial 256-symbol (no reduction) mapping.
func Identity() *Reduction {
	r := &Reduction{Classes: 256, Width: 256}
	for i := range r.Map {
		r.Map[i] = byte(i)
	}
	return r
}

// CaseFold32 returns the paper's reduction: every byte is folded into
// the 32-value range 0x40-0x5F by forcing bit 6 set and masking to five
// bits, which maps 'a'-'z' and 'A'-'Z' onto the same 26 symbols and
// leaves 6 extra codes for punctuation classes. The reduced symbol is
// the low five bits (0..31).
func CaseFold32() *Reduction {
	r := &Reduction{Classes: 32, Width: 32}
	for i := range r.Map {
		r.Map[i] = byte(i & 0x1F)
	}
	return r
}

// FromPatterns computes the minimal reduction that keeps the bytes used
// by the given patterns distinct. All bytes not appearing in any
// pattern share one "other" class (class 0). If caseFold is set,
// ASCII letters are folded together first. An error is returned if the
// patterns need more than maxClasses distinct symbols.
func FromPatterns(patterns [][]byte, caseFold bool, maxClasses int) (*Reduction, error) {
	if maxClasses < 2 || maxClasses > 256 {
		return nil, fmt.Errorf("alphabet: maxClasses %d out of range", maxClasses)
	}
	canon := func(b byte) byte {
		if caseFold && b >= 'a' && b <= 'z' {
			return b - 'a' + 'A'
		}
		return b
	}
	// Assign classes in first-appearance order; class 0 is "other".
	classOf := make(map[byte]byte)
	next := byte(1)
	for _, p := range patterns {
		for _, raw := range p {
			b := canon(raw)
			if _, ok := classOf[b]; ok {
				continue
			}
			if int(next) >= maxClasses {
				return nil, fmt.Errorf(
					"alphabet: patterns use more than %d distinct symbols", maxClasses-1)
			}
			classOf[b] = next
			next++
		}
	}
	r := &Reduction{Classes: int(next), Width: widthFor(maxClasses)}
	for i := 0; i < 256; i++ {
		if c, ok := classOf[canon(byte(i))]; ok {
			r.Map[i] = c
		}
	}
	return r, nil
}

// FromSets computes the minimal reduction that keeps every byte
// distinction the given membership sets make: two bytes share a class
// iff every set either contains both or excludes both. This is the
// reduction regex dictionaries use — each literal/class leaf
// contributes one set, so reduced matching is exact (no aliasing).
// Classes are numbered in first-appearance order scanning bytes 0..255,
// making the mapping deterministic for a given set list.
func FromSets(sets [][256]bool) (*Reduction, error) {
	sig := make(map[string]byte, 8)
	r := &Reduction{}
	buf := make([]byte, (len(sets)+7)/8)
	for b := 0; b < 256; b++ {
		for i := range buf {
			buf[i] = 0
		}
		for i := range sets {
			if sets[i][b] {
				buf[i/8] |= 1 << (i % 8)
			}
		}
		c, ok := sig[string(buf)]
		if !ok {
			if len(sig) >= 256 {
				return nil, fmt.Errorf("alphabet: set partition exceeds 256 classes")
			}
			c = byte(len(sig))
			sig[string(buf)] = c
		}
		r.Map[b] = c
	}
	r.Classes = len(sig)
	r.Width = widthFor(r.Classes)
	return r, nil
}

// ForDictionary returns the dictionary's preferred reduction: the
// paper's 32-symbol regime when the patterns fit it, widening to the
// full 256-class mapping otherwise (with the proportionally smaller
// per-tile state budget the Figure 3 arithmetic implies). This is the
// one fallback policy shared by system composition and the shard
// planner, so both sides classify dictionaries the same way (each
// compiled shard still derives its own, possibly narrower, reduction
// from its own pattern subset).
func ForDictionary(patterns [][]byte, caseFold bool) (*Reduction, error) {
	red, err := FromPatterns(patterns, caseFold, 32)
	if err != nil {
		return FromPatterns(patterns, caseFold, 256)
	}
	return red, nil
}

// Apply reduces src into dst (which must be at least as long) and
// returns the number of bytes written.
func (r *Reduction) Apply(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.Map[src[i]]
	}
	return n
}

// Reduce allocates and returns the reduced copy of src.
func (r *Reduction) Reduce(src []byte) []byte {
	dst := make([]byte, len(src))
	r.Apply(dst, src)
	return dst
}

// Validate checks internal consistency: every mapped value < Classes
// and Width is a power of two >= Classes.
func (r *Reduction) Validate() error {
	if r.Classes < 1 || r.Classes > 256 {
		return fmt.Errorf("alphabet: classes %d out of range", r.Classes)
	}
	if r.Width < r.Classes || r.Width&(r.Width-1) != 0 {
		return fmt.Errorf("alphabet: width %d invalid for %d classes", r.Width, r.Classes)
	}
	for i, c := range r.Map {
		if int(c) >= r.Classes {
			return fmt.Errorf("alphabet: byte %#x maps to %d >= %d classes", i, c, r.Classes)
		}
	}
	return nil
}

// Distinguishes reports whether the reduction keeps bytes a and b in
// different classes.
func (r *Reduction) Distinguishes(a, b byte) bool { return r.Map[a] != r.Map[b] }
