package alphabet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCaseFold32Shape(t *testing.T) {
	r := CaseFold32()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Classes != 32 || r.Width != 32 {
		t.Fatalf("classes=%d width=%d", r.Classes, r.Width)
	}
}

func TestCaseFold32FoldsCase(t *testing.T) {
	r := CaseFold32()
	for c := byte('a'); c <= 'z'; c++ {
		upper := c - 'a' + 'A'
		if r.Map[c] != r.Map[upper] {
			t.Fatalf("%c and %c not folded", c, upper)
		}
	}
	// Distinct letters stay distinct.
	for a := byte('A'); a <= 'Z'; a++ {
		for b := a + 1; b <= 'Z'; b++ {
			if !r.Distinguishes(a, b) {
				t.Fatalf("%c and %c collapsed", a, b)
			}
		}
	}
}

func TestCaseFold32MatchesPaperRange(t *testing.T) {
	// The paper folds into 0x40-0x5F; our symbols are the low 5 bits of
	// that range, so 'A' (0x41) must map to 1 and '_' (0x5F) to 31.
	r := CaseFold32()
	if r.Map['A'] != 1 || r.Map['Z'] != 26 || r.Map['_'] != 31 || r.Map['@'] != 0 {
		t.Fatalf("mapping: A=%d Z=%d _=%d @=%d", r.Map['A'], r.Map['Z'], r.Map['_'], r.Map['@'])
	}
}

func TestIdentity(t *testing.T) {
	r := Identity()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if r.Map[i] != byte(i) {
			t.Fatalf("identity broken at %d", i)
		}
	}
}

func TestFromPatternsMinimal(t *testing.T) {
	pats := [][]byte{[]byte("VIRUS"), []byte("WORM")}
	r, err := FromPatterns(pats, false, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Distinct pattern bytes used: V I R U S W O M = 8, plus "other".
	if r.Classes != 9 {
		t.Fatalf("classes = %d, want 9", r.Classes)
	}
	if r.Width != 32 {
		t.Fatalf("width = %d", r.Width)
	}
	// Pattern bytes must be pairwise distinct.
	used := "VIRUSWOM"
	for i := 0; i < len(used); i++ {
		for j := i + 1; j < len(used); j++ {
			if !r.Distinguishes(used[i], used[j]) {
				t.Fatalf("%c and %c collapsed", used[i], used[j])
			}
		}
	}
	// Unused bytes share class 0.
	if r.Map['x'] != 0 || r.Map[0x00] != 0 || r.Map[0xFF] != 0 {
		t.Fatal("unused bytes not in class 0")
	}
}

func TestFromPatternsCaseFold(t *testing.T) {
	r, err := FromPatterns([][]byte{[]byte("Attack")}, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	if r.Map['a'] != r.Map['A'] {
		t.Fatal("case not folded")
	}
	if r.Map['t'] != r.Map['T'] {
		t.Fatal("case not folded for t")
	}
}

func TestFromPatternsOverflow(t *testing.T) {
	var big []byte
	for i := 0; i < 40; i++ {
		big = append(big, byte(i))
	}
	if _, err := FromPatterns([][]byte{big}, false, 32); err == nil {
		t.Fatal("expected overflow error")
	}
	if _, err := FromPatterns(nil, false, 1); err == nil {
		t.Fatal("maxClasses 1 accepted")
	}
	if _, err := FromPatterns(nil, false, 300); err == nil {
		t.Fatal("maxClasses 300 accepted")
	}
}

func TestApplyAndReduce(t *testing.T) {
	r := CaseFold32()
	src := []byte("AbC")
	dst := make([]byte, 3)
	if n := r.Apply(dst, src); n != 3 {
		t.Fatalf("n = %d", n)
	}
	want := []byte{1, 2, 3}
	if !bytes.Equal(dst, want) {
		t.Fatalf("dst = %v want %v", dst, want)
	}
	if !bytes.Equal(r.Reduce(src), want) {
		t.Fatal("Reduce mismatch")
	}
	// Short destination truncates.
	short := make([]byte, 2)
	if n := r.Apply(short, src); n != 2 {
		t.Fatalf("short n = %d", n)
	}
}

// Property: any reduction from FromPatterns maps every byte into range
// and preserves equality of pattern matching alphabets: two pattern
// bytes map to the same class iff they are the same (canonical) byte.
func TestFromPatternsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 20 {
			raw = raw[:20]
		}
		r, err := FromPatterns([][]byte{raw}, false, 256)
		if err != nil {
			return true // too many classes for the cap; fine
		}
		if r.Validate() != nil {
			return false
		}
		for i := 0; i < len(raw); i++ {
			for j := 0; j < len(raw); j++ {
				same := raw[i] == raw[j]
				if (r.Map[raw[i]] == r.Map[raw[j]]) != same {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CaseFold32 output is always < 32.
func TestCaseFoldRangeProperty(t *testing.T) {
	r := CaseFold32()
	f := func(b byte) bool { return r.Map[b] < 32 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ForDictionary picks the 32-class regime when the patterns fit it and
// widens to 256 classes otherwise — the shared fallback policy of
// system composition and the shard planner.
func TestForDictionaryFallback(t *testing.T) {
	narrow, err := ForDictionary([][]byte{[]byte("virus"), []byte("WORM")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Width != 32 || narrow.Classes > 32 {
		t.Fatalf("narrow dictionary got width %d classes %d", narrow.Width, narrow.Classes)
	}
	// 40+ distinct symbols cannot fit 32 classes: must widen, not fail.
	var wide []byte
	for b := byte(0); b < 48; b++ {
		wide = append(wide, b)
	}
	r, err := ForDictionary([][]byte{wide}, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != 256 || r.Classes < 48 {
		t.Fatalf("wide dictionary got width %d classes %d", r.Width, r.Classes)
	}
}
