package alphabet

import "testing"

// FromSets: two bytes share a class iff no set distinguishes them, and
// classes number in first-appearance order.
func TestFromSets(t *testing.T) {
	var digits, vowels [256]bool
	for b := '0'; b <= '9'; b++ {
		digits[b] = true
	}
	for _, b := range "aeiou" {
		vowels[b] = true
	}
	r, err := FromSets([][256]bool{digits, vowels})
	if err != nil {
		t.Fatal(err)
	}
	// Class 0 is whatever byte 0 lands in (neither set).
	if r.Map['0'] != r.Map['9'] {
		t.Fatal("digits split across classes")
	}
	if r.Map['a'] != r.Map['e'] {
		t.Fatal("vowels split across classes")
	}
	if r.Map['a'] == r.Map['0'] || r.Map['a'] == r.Map['z'] {
		t.Fatal("distinguished bytes share a class")
	}
	if r.Map['z'] != r.Map[0] {
		t.Fatal("unmentioned bytes split across classes")
	}
	if r.Classes != 3 {
		t.Fatalf("Classes = %d, want 3", r.Classes)
	}
}
