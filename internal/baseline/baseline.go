// Package baseline implements the comparator algorithms the paper
// names (Section 1): Knuth-Morris-Pratt, Boyer-Moore(-Horspool) and a
// map-based Aho-Corasick, plus a naive scan and a Bloom-filter
// pre-filter (the paper's future-work direction).
//
// The heuristic matchers exist to demonstrate the paper's motivation:
// their throughput depends on input content, so "malicious input
// streams specifically designed to overload them" defeat them, while
// the DFA's cost is one table lookup per byte regardless of content.
package baseline

import (
	"bytes"
	"fmt"
	"hash/fnv"
)

// NaiveCount counts occurrences of pattern in text by direct
// comparison at every offset.
func NaiveCount(text, pattern []byte) int {
	if len(pattern) == 0 || len(text) < len(pattern) {
		return 0
	}
	count := 0
	for i := 0; i+len(pattern) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pattern)], pattern) {
			count++
		}
	}
	return count
}

// KMP is a compiled Knuth-Morris-Pratt matcher.
type KMP struct {
	pattern []byte
	fail    []int
}

// NewKMP preprocesses the pattern.
func NewKMP(pattern []byte) (*KMP, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("baseline: empty pattern")
	}
	fail := make([]int, len(pattern))
	k := 0
	for i := 1; i < len(pattern); i++ {
		for k > 0 && pattern[k] != pattern[i] {
			k = fail[k-1]
		}
		if pattern[k] == pattern[i] {
			k++
		}
		fail[i] = k
	}
	return &KMP{pattern: append([]byte(nil), pattern...), fail: fail}, nil
}

// Count returns the occurrence count in text.
func (m *KMP) Count(text []byte) int {
	count, k := 0, 0
	for _, c := range text {
		for k > 0 && m.pattern[k] != c {
			k = m.fail[k-1]
		}
		if m.pattern[k] == c {
			k++
		}
		if k == len(m.pattern) {
			count++
			k = m.fail[k-1]
		}
	}
	return count
}

// BMH is a compiled Boyer-Moore-Horspool matcher.
type BMH struct {
	pattern []byte
	skip    [256]int
}

// NewBMH preprocesses the pattern.
func NewBMH(pattern []byte) (*BMH, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("baseline: empty pattern")
	}
	m := &BMH{pattern: append([]byte(nil), pattern...)}
	for i := range m.skip {
		m.skip[i] = len(pattern)
	}
	for i := 0; i < len(pattern)-1; i++ {
		m.skip[pattern[i]] = len(pattern) - 1 - i
	}
	return m, nil
}

// Count returns the occurrence count in text, and the number of byte
// comparisons performed — the content-dependent cost the paper warns
// about.
func (m *BMH) Count(text []byte) (count, comparisons int) {
	n, plen := len(text), len(m.pattern)
	i := 0
	for i+plen <= n {
		j := plen - 1
		for j >= 0 {
			comparisons++
			if text[i+j] != m.pattern[j] {
				break
			}
			j--
		}
		if j < 0 {
			count++
			i++
			continue
		}
		i += m.skip[text[i+plen-1]]
	}
	return count, comparisons
}

// ACMap is a pointer-free, map-based Aho-Corasick used as a memory
// baseline against the paper's dense STT encoding.
type ACMap struct {
	next   []map[byte]int32
	fail   []int32
	output [][]int32
}

// NewACMap builds the automaton over raw bytes.
func NewACMap(patterns [][]byte) (*ACMap, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("baseline: empty dictionary")
	}
	a := &ACMap{next: []map[byte]int32{{}}, fail: []int32{0}, output: [][]int32{nil}}
	for id, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("baseline: pattern %d empty", id)
		}
		cur := int32(0)
		for _, c := range p {
			nxt, ok := a.next[cur][c]
			if !ok {
				nxt = int32(len(a.next))
				a.next = append(a.next, map[byte]int32{})
				a.fail = append(a.fail, 0)
				a.output = append(a.output, nil)
				a.next[cur][c] = nxt
			}
			cur = nxt
		}
		a.output[cur] = append(a.output[cur], int32(id))
	}
	// BFS failure links.
	var queue []int32
	for _, v := range a.next[0] {
		queue = append(queue, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for c, v := range a.next[u] {
			f := a.fail[u]
			for {
				if nxt, ok := a.next[f][c]; ok && nxt != v {
					a.fail[v] = nxt
					break
				}
				if f == 0 {
					a.fail[v] = 0
					break
				}
				f = a.fail[f]
			}
			a.output[v] = append(a.output[v], a.output[a.fail[v]]...)
			queue = append(queue, v)
		}
	}
	return a, nil
}

// Count returns the total occurrence count in text.
func (a *ACMap) Count(text []byte) int {
	count := 0
	s := int32(0)
	for _, c := range text {
		for {
			if nxt, ok := a.next[s][c]; ok {
				s = nxt
				break
			}
			if s == 0 {
				break
			}
			s = a.fail[s]
		}
		count += len(a.output[s])
	}
	return count
}

// States returns the automaton size.
func (a *ACMap) States() int { return len(a.next) }

// Bloom is a k-hash Bloom filter over fixed-length substrings, the
// paper's cited FPGA approach and its stated future work on the Cell.
type Bloom struct {
	bits   []uint64
	mask   uint64
	hashes int
	ngram  int
}

// NewBloom sizes a filter for the given capacity and builds it from
// the dictionary's prefixes of length ngram.
func NewBloom(patterns [][]byte, ngram, bitsLog2, hashes int) (*Bloom, error) {
	if ngram < 1 || bitsLog2 < 6 || bitsLog2 > 32 || hashes < 1 || hashes > 8 {
		return nil, fmt.Errorf("baseline: bad bloom parameters")
	}
	b := &Bloom{
		bits:   make([]uint64, (1<<bitsLog2)/64),
		mask:   1<<bitsLog2 - 1,
		hashes: hashes,
		ngram:  ngram,
	}
	for _, p := range patterns {
		if len(p) < ngram {
			return nil, fmt.Errorf("baseline: pattern shorter than ngram %d", ngram)
		}
		b.add(p[:ngram])
	}
	return b, nil
}

func (b *Bloom) hash(gram []byte, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte{byte(i)})
	h.Write(gram)
	return h.Sum64() & b.mask
}

func (b *Bloom) add(gram []byte) {
	for i := 0; i < b.hashes; i++ {
		h := b.hash(gram, i)
		b.bits[h/64] |= 1 << (h % 64)
	}
}

// MayContain reports whether the gram may be a dictionary prefix.
func (b *Bloom) MayContain(gram []byte) bool {
	for i := 0; i < b.hashes; i++ {
		h := b.hash(gram, i)
		if b.bits[h/64]&(1<<(h%64)) == 0 {
			return false
		}
	}
	return true
}

// FilterPositions scans text and returns candidate positions whose
// ngram may start a dictionary pattern; a downstream exact matcher
// (the DFA tile) verifies them. This is the pre-filter topology the
// paper's future work sketches.
func (b *Bloom) FilterPositions(text []byte) []int {
	var out []int
	for i := 0; i+b.ngram <= len(text); i++ {
		if b.MayContain(text[i : i+b.ngram]) {
			out = append(out, i)
		}
	}
	return out
}

// Ngram returns the filter's gram length.
func (b *Bloom) Ngram() int { return b.ngram }
