package baseline

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"cellmatch/internal/workload"
)

func TestNaiveCount(t *testing.T) {
	if NaiveCount([]byte("abcabcab"), []byte("ab")) != 3 {
		t.Fatal("naive count")
	}
	if NaiveCount([]byte("aaa"), []byte("aa")) != 2 {
		t.Fatal("overlapping count")
	}
	if NaiveCount([]byte("x"), []byte("xyz")) != 0 || NaiveCount(nil, nil) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestKMPMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		plen := 1 + rng.Intn(6)
		pattern := make([]byte, plen)
		for i := range pattern {
			pattern[i] = byte('a' + rng.Intn(2))
		}
		text := make([]byte, rng.Intn(100))
		for i := range text {
			text[i] = byte('a' + rng.Intn(2))
		}
		m, err := NewKMP(pattern)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := m.Count(text), NaiveCount(text, pattern); got != want {
			t.Fatalf("kmp %d vs naive %d for %q in %q", got, want, pattern, text)
		}
	}
}

func TestBMHMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		plen := 1 + rng.Intn(6)
		pattern := make([]byte, plen)
		for i := range pattern {
			pattern[i] = byte('a' + rng.Intn(2))
		}
		text := make([]byte, rng.Intn(100))
		for i := range text {
			text[i] = byte('a' + rng.Intn(2))
		}
		m, err := NewBMH(pattern)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := m.Count(text)
		if want := NaiveCount(text, pattern); got != want {
			t.Fatalf("bmh %d vs naive %d for %q in %q", got, want, pattern, text)
		}
	}
}

func TestEmptyPatternsRejected(t *testing.T) {
	if _, err := NewKMP(nil); err == nil {
		t.Fatal("kmp empty accepted")
	}
	if _, err := NewBMH(nil); err == nil {
		t.Fatal("bmh empty accepted")
	}
	if _, err := NewACMap(nil); err == nil {
		t.Fatal("ac empty dictionary accepted")
	}
	if _, err := NewACMap([][]byte{nil}); err == nil {
		t.Fatal("ac empty pattern accepted")
	}
}

// TestBMHContentDependence demonstrates the paper's motivation: the
// skip heuristic collapses on adversarial input, multiplying the
// comparison count, while on benign input it is sublinear.
func TestBMHContentDependence(t *testing.T) {
	// BMH's worst case: a unique head byte then a repeated tail
	// ("baaa...a") scanned over all-'a' text: every alignment matches
	// 15 bytes right-to-left before failing, and the skip is 1.
	pattern := append([]byte{'b'}, bytes.Repeat([]byte{'a'}, 15)...)
	m, err := NewBMH(pattern)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 16
	benign, _, err := workload.Traffic(workload.TrafficConfig{Bytes: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, benignCmp := m.Count(benign)
	adversarial := workload.AdversarialBMH(pattern, n)
	_, advCmp := m.Count(adversarial)
	if advCmp < 5*benignCmp {
		t.Fatalf("adversarial input did not degrade BMH: %d vs %d comparisons",
			advCmp, benignCmp)
	}
}

func TestACMapCounts(t *testing.T) {
	a, err := NewACMap([][]byte{[]byte("he"), []byte("she"), []byte("hers")})
	if err != nil {
		t.Fatal(err)
	}
	// "ushers": she@4, he@4, hers@6 -> 3 occurrences.
	if got := a.Count([]byte("ushers")); got != 3 {
		t.Fatalf("ac count = %d", got)
	}
	// Trie: root, h, he, s, sh, she, her, hers = 8 nodes.
	if a.States() != 8 {
		t.Fatalf("states = %d", a.States())
	}
}

func TestACMapMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		np := 1 + rng.Intn(4)
		dict := make([][]byte, np)
		for i := range dict {
			l := 1 + rng.Intn(4)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(2))
			}
			dict[i] = p
		}
		text := make([]byte, rng.Intn(80))
		for i := range text {
			text[i] = byte('a' + rng.Intn(2))
		}
		a, err := NewACMap(dict)
		if err != nil {
			return false
		}
		want := 0
		for _, p := range dict {
			want += NaiveCount(text, p)
		}
		return a.Count(text) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	dict := workload.SignatureDictionary()
	b, err := NewBloom(dict, 4, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dict {
		if !b.MayContain(p[:4]) {
			t.Fatalf("false negative for %q", p[:4])
		}
	}
	if b.Ngram() != 4 {
		t.Fatal("ngram accessor")
	}
}

func TestBloomFiltersMostBenign(t *testing.T) {
	dict := workload.SignatureDictionary()
	b, err := NewBloom(dict, 4, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	benign, _, err := workload.Traffic(workload.TrafficConfig{Bytes: 1 << 15, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	candidates := b.FilterPositions(benign)
	rate := float64(len(candidates)) / float64(len(benign))
	if rate > 0.05 {
		t.Fatalf("bloom passes %.1f%% of benign positions", rate*100)
	}
}

func TestBloomFindsPlanted(t *testing.T) {
	dict := workload.SignatureDictionary()
	b, err := NewBloom(dict, 4, 14, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, planted, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 14, MatchEvery: 512, Dictionary: dict, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	candidates := b.FilterPositions(data)
	if len(candidates) < planted {
		t.Fatalf("bloom missed planted prefixes: %d < %d", len(candidates), planted)
	}
}

func TestBloomParamValidation(t *testing.T) {
	dict := [][]byte{[]byte("abcd")}
	if _, err := NewBloom(dict, 0, 12, 3); err == nil {
		t.Fatal("ngram 0 accepted")
	}
	if _, err := NewBloom(dict, 4, 4, 3); err == nil {
		t.Fatal("tiny filter accepted")
	}
	if _, err := NewBloom(dict, 8, 12, 3); err == nil {
		t.Fatal("ngram longer than pattern accepted")
	}
}
