// Package cell models deployment of composed DFA-tile systems onto
// Cell hardware: one or more chips of 8 SPEs plus a PPE that performs
// stream interleaving (Section 5's full-machine arithmetic: 8 tiles =
// 40.88 Gbps per processor, 81.76 Gbps per dual-Cell blade).
package cell

import (
	"fmt"

	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/pipeline"
	"cellmatch/internal/sim"
	"cellmatch/internal/spu"
	"cellmatch/internal/tile"
)

// Blade describes the available hardware.
type Blade struct {
	// Chips is the processor count (the paper's blade has 2).
	Chips int
	// SPEsPerChip is 8 on the Cell BE.
	SPEsPerChip int
}

// DefaultBlade is one Cell processor.
func DefaultBlade() Blade { return Blade{Chips: 1, SPEsPerChip: 8} }

// DualBlade is the paper's two-processor blade.
func DualBlade() Blade { return Blade{Chips: 2, SPEsPerChip: 8} }

// SPEs is the total processing element count.
func (b Blade) SPEs() int { return b.Chips * b.SPEsPerChip }

// Deployment binds a composed system to hardware with a measured
// kernel.
type Deployment struct {
	Sys   *compose.System
	Blade Blade
	// Kernel is the Table 1 measurement of the chosen implementation
	// version on the deployment's largest automaton.
	Kernel tile.Table1Row
	// Replicas is how many copies of the topology run side by side
	// (one per chip when the topology fits a single chip).
	Replicas int
}

// Plan validates that the system's topology fits the blade and
// measures the kernel on the largest series slot (the slowest tile
// bounds the pipeline). version is a Table 1 implementation version
// (0 = the paper's optimal version 4).
func Plan(sys *compose.System, blade Blade, version int) (*Deployment, error) {
	if version == 0 {
		version = 4
	}
	perChip := blade.SPEsPerChip
	if err := sys.Topology.Validate(blade.SPEs()); err != nil {
		return nil, err
	}
	replicas := 1
	if sys.Topology.TotalTiles() <= perChip {
		replicas = blade.Chips
	}
	// Measure on the largest slot automaton.
	var biggest *dfa.DFA
	for _, d := range sys.Slots {
		if biggest == nil || d.NumStates() > biggest.NumStates() {
			biggest = d
		}
	}
	row, err := tile.MeasureVersion(biggest, version, 16*1024, 7)
	if err != nil {
		return nil, err
	}
	return &Deployment{Sys: sys, Blade: blade, Kernel: row, Replicas: replicas}, nil
}

// Estimate is the predicted filtering capability.
type Estimate struct {
	// PerTileGbps is the kernel rate of one SPE.
	PerTileGbps float64
	// AnalyticGbps is topology arithmetic: groups x replicas x per-tile.
	AnalyticGbps float64
	// SimulatedGbps runs the double-buffered DES schedule with full
	// bus contention and scales by parallel width.
	SimulatedGbps float64
	// Utilization is the simulated compute utilization (Figure 5:
	// ~1.0 when transfers hide).
	Utilization float64
	// SimTime is the simulated makespan for the requested volume.
	SimTime sim.Time
	// TilesUsed is the number of occupied SPEs.
	TilesUsed int
}

// Estimate predicts throughput for filtering inputBytes of traffic.
func (d *Deployment) Estimate(inputBytes int64) Estimate {
	blockBytes := int64(16 * 1024)
	groups := d.Sys.Topology.Groups * d.Replicas
	perGroup := inputBytes / int64(groups)
	blocks := int(perGroup / blockBytes)
	if blocks < 2 {
		blocks = 2
	}
	res := pipeline.RunDoubleBuffer(pipeline.Figure5Config{
		BlockBytes:          blockBytes,
		Blocks:              blocks,
		CyclesPerTransition: d.Kernel.CyclesPerTransition,
		ClockHz:             spu.ClockHz,
		SPEs:                d.Sys.Topology.TotalTiles() * d.Replicas,
	})
	return Estimate{
		PerTileGbps:   d.Kernel.ThroughputGbps,
		AnalyticGbps:  float64(groups) * d.Kernel.ThroughputGbps,
		SimulatedGbps: res.ThroughputGbps * float64(groups),
		Utilization:   res.SteadyUtilization,
		SimTime:       res.Total,
		TilesUsed:     d.Sys.Topology.TotalTiles() * d.Replicas,
	}
}

// Scan delegates functional matching to the composed system.
func (d *Deployment) Scan(input []byte) ([]dfa.Match, error) {
	return d.Sys.Scan(input)
}

// CanFilter reports whether the deployment sustains a link of the
// given bit rate, with the simulated (contended) throughput.
func (d *Deployment) CanFilter(gbps float64, inputBytes int64) (bool, Estimate) {
	est := d.Estimate(inputBytes)
	return est.SimulatedGbps >= gbps, est
}

// MinimumSPEsFor returns how many parallel tiles are needed for a
// link rate given a per-tile rate — the paper's headline arithmetic
// ("two processing elements ... filter a network link ... in excess
// of 10 Gbps").
func MinimumSPEsFor(linkGbps, perTileGbps float64) (int, error) {
	if perTileGbps <= 0 {
		return 0, fmt.Errorf("cell: non-positive tile throughput")
	}
	n := 1
	for float64(n)*perTileGbps < linkGbps {
		n++
		if n > 1024 {
			return 0, fmt.Errorf("cell: link rate %.2f Gbps unreachable", linkGbps)
		}
	}
	return n, nil
}
