package cell

import (
	"testing"

	"cellmatch/internal/compose"
)

func mkSystem(t *testing.T, groups int) *compose.System {
	t.Helper()
	dict := [][]byte{[]byte("VIRUS"), []byte("WORM"), []byte("TROJAN")}
	s, err := compose.NewSystem(dict, compose.Config{Groups: groups, CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBladeArithmetic(t *testing.T) {
	if DefaultBlade().SPEs() != 8 || DualBlade().SPEs() != 16 {
		t.Fatal("blade SPE counts")
	}
}

func TestPlanAndEstimate(t *testing.T) {
	sys := mkSystem(t, 2)
	d, err := Plan(sys, DefaultBlade(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kernel.Version != 4 {
		t.Fatalf("default version = %d", d.Kernel.Version)
	}
	est := d.Estimate(8 * 1024 * 1024)
	if est.PerTileGbps < 4.4 || est.PerTileGbps > 6.2 {
		t.Fatalf("per-tile = %.2f Gbps", est.PerTileGbps)
	}
	if est.Utilization < 0.98 {
		t.Fatalf("utilization = %.3f", est.Utilization)
	}
	// Analytic = groups x replicas x per-tile; 2 groups fit one chip so
	// replicas = 1 chip... DefaultBlade has 1 chip -> replicas 1.
	want := 2 * est.PerTileGbps
	if est.AnalyticGbps < want*0.99 || est.AnalyticGbps > want*1.01 {
		t.Fatalf("analytic = %.2f, want %.2f", est.AnalyticGbps, want)
	}
	// Simulation with hidden transfers tracks the analytic number.
	if est.SimulatedGbps < 0.93*est.AnalyticGbps {
		t.Fatalf("simulated %.2f far below analytic %.2f", est.SimulatedGbps, est.AnalyticGbps)
	}
}

// TestHeadline10Gbps is the paper's abstract claim: two SPEs filter a
// 10 Gbps link.
func TestHeadline10Gbps(t *testing.T) {
	sys := mkSystem(t, 2)
	d, err := Plan(sys, DefaultBlade(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, est := d.CanFilter(10.0, 16*1024*1024)
	if !ok {
		t.Fatalf("2 tiles deliver only %.2f Gbps, need 10", est.SimulatedGbps)
	}
	if est.TilesUsed != 2 {
		t.Fatalf("tiles used = %d", est.TilesUsed)
	}
}

func TestEightSPEsReach40Gbps(t *testing.T) {
	sys := mkSystem(t, 8)
	d, err := Plan(sys, DefaultBlade(), 0)
	if err != nil {
		t.Fatal(err)
	}
	est := d.Estimate(64 * 1024 * 1024)
	// Paper Section 5: 5.11 x 8 = 40.88 Gbps.
	if est.AnalyticGbps < 36 || est.AnalyticGbps > 50 {
		t.Fatalf("8-tile analytic = %.2f Gbps, want ~40.9", est.AnalyticGbps)
	}
	if est.SimulatedGbps < 0.9*est.AnalyticGbps {
		t.Fatalf("contention collapse: %.2f vs %.2f", est.SimulatedGbps, est.AnalyticGbps)
	}
}

func TestDualBladeReplication(t *testing.T) {
	sys := mkSystem(t, 8)
	d, err := Plan(sys, DualBlade(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Replicas != 2 {
		t.Fatalf("replicas = %d", d.Replicas)
	}
	est := d.Estimate(128 * 1024 * 1024)
	// Paper: 81.76 Gbps on a dual-Cell blade.
	if est.AnalyticGbps < 72 || est.AnalyticGbps > 100 {
		t.Fatalf("dual blade analytic = %.2f Gbps, want ~81.8", est.AnalyticGbps)
	}
}

func TestTopologyTooLarge(t *testing.T) {
	sys := mkSystem(t, 9)
	if _, err := Plan(sys, DefaultBlade(), 0); err == nil {
		t.Fatal("9 groups on 8 SPEs accepted")
	}
}

func TestScanThroughDeployment(t *testing.T) {
	sys := mkSystem(t, 2)
	d, err := Plan(sys, DefaultBlade(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := d.Scan([]byte("a virus and a worm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %v", ms)
	}
}

func TestMinimumSPEsFor(t *testing.T) {
	n, err := MinimumSPEsFor(10.0, 5.11)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("SPEs for 10 Gbps = %d, paper says 2", n)
	}
	if _, err := MinimumSPEsFor(10, 0); err == nil {
		t.Fatal("zero tile rate accepted")
	}
	n, err = MinimumSPEsFor(40, 5.11)
	if err != nil || n != 8 {
		t.Fatalf("SPEs for 40 Gbps = %d (%v)", n, err)
	}
}
