package cell

import (
	"fmt"

	"cellmatch/internal/dfa"
	"cellmatch/internal/eib"
	"cellmatch/internal/interleave"
	"cellmatch/internal/mfc"
	"cellmatch/internal/sim"
	"cellmatch/internal/spu"
	"cellmatch/internal/tile"
)

// ChipRun executes a parallel tile configuration end to end on one
// simulated chip: every SPE runs the *actual generated kernel* over
// its share of the input (16 interleaved streams per tile), while the
// discrete-event engine schedules the double-buffered input DMA on
// the shared bus. It unifies the functional half (real match counts
// from the instruction-level SPU) with the timing half (cycle counts
// placed on the DES clock), so throughput and correctness come from
// one execution.
type ChipRun struct {
	// Matches is the total final-entry count across all SPEs.
	Matches uint64
	// PerSPE are the per-tile totals.
	PerSPE []uint64
	// Elapsed is the simulated makespan.
	Elapsed sim.Time
	// Bytes is the total input volume filtered.
	Bytes int64
	// ThroughputGbps is Bytes*8/Elapsed.
	ThroughputGbps float64
	// KernelCycles is the per-SPE simulated compute cycle total.
	KernelCycles []int64
	// Utilization is compute busy time over elapsed (SPE 0).
	Utilization float64
}

// ChipConfig parameterizes RunChip.
type ChipConfig struct {
	// Version is the kernel implementation (default 4).
	Version int
	// SPEs is the parallel tile count (default 8).
	SPEs int
	// BlockBytes is the per-DMA input block (default 16 KB; must be a
	// multiple of 16 x unroll).
	BlockBytes int
}

// RunChip scans `streams16` (16 equal-length reduced streams per SPE;
// len(streams16) must equal 16*SPEs) against the DFA on a simulated
// chip. Stream lengths must be multiples of the kernel granularity.
func RunChip(d *dfa.DFA, streams16 [][]byte, cfg ChipConfig) (*ChipRun, error) {
	if cfg.Version == 0 {
		cfg.Version = 4
	}
	if cfg.SPEs == 0 {
		cfg.SPEs = 8
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 16 * 1024
	}
	if len(streams16) != 16*cfg.SPEs {
		return nil, fmt.Errorf("cell: need %d streams, got %d", 16*cfg.SPEs, len(streams16))
	}
	// Build one tile per SPE (same dictionary) and interleave each
	// SPE's 16 streams into its input image.
	type speRun struct {
		tl     *tile.Tile
		input  []byte // interleaved
		offset int
		states []uint32 // carried across blocks
		counts uint64
		cycles int64
		busy   sim.Time
		m      *mfc.MFC
		loaded [2]bool
		comput bool
		done   bool
		doneAt sim.Time
	}
	eng := sim.New()
	bus := eib.NewBus(eng, eib.Default())
	spes := make([]*speRun, cfg.SPEs)
	for s := 0; s < cfg.SPEs; s++ {
		tl, err := tile.New(d, tile.Config{Version: cfg.Version})
		if err != nil {
			return nil, err
		}
		block, err := interleave.Interleave(streams16[s*16 : (s+1)*16])
		if err != nil {
			return nil, err
		}
		if len(block)%tl.BlockGranularity() != 0 {
			return nil, fmt.Errorf("cell: SPE %d input %d bytes not kernel-aligned (%d)",
				s, len(block), tl.BlockGranularity())
		}
		spes[s] = &speRun{tl: tl, input: block, m: mfc.New(eng, bus, s),
			states: tl.StartStates()}
	}
	gran := spes[0].tl.BlockGranularity()
	blockBytes := cfg.BlockBytes / gran * gran
	if blockBytes == 0 {
		return nil, fmt.Errorf("cell: block size below kernel granularity")
	}

	var pump func(r *speRun)
	load := func(r *speRun, buf int, start int) {
		n := len(r.input) - start
		if n <= 0 {
			return
		}
		if n > blockBytes {
			n = blockBytes
		}
		// DMA sizes must be 16-byte multiples; kernel granularity
		// guarantees it for full blocks, and tails are stream-aligned.
		if err := r.m.Get(buf, uint32(buf*blockBytes), 0, int64(n)); err != nil {
			panic(err)
		}
		r.m.WaitTagMask(mfc.TagMask(buf), func() {
			r.loaded[buf] = true
			pump(r)
		})
	}
	pump = func(r *speRun) {
		if r.comput || r.done {
			return
		}
		buf := (r.offset / blockBytes) % 2
		if !r.loaded[buf] {
			return
		}
		n := len(r.input) - r.offset
		if n > blockBytes {
			n = blockBytes
		}
		if n <= 0 {
			r.done = true
			r.doneAt = eng.Now()
			return
		}
		chunk := r.input[r.offset : r.offset+n]
		r.offset += n
		r.loaded[buf] = false
		// Prefetch the block after next into this buffer.
		if next := r.offset + blockBytes; next < len(r.input) {
			load(r, buf, next)
		} else if r.offset < len(r.input) && !r.loaded[1-buf] {
			// Tail already covered by the other buffer's load.
			_ = next
		}
		r.comput = true
		// Execute the real kernel now (model: results available at
		// compute completion; the instruction-level cycle count sets
		// the duration). States carry from the previous block.
		counts, newStates, prof, err := r.tl.MatchBlockSimCarry(chunk, r.states)
		if err != nil {
			panic(err)
		}
		r.states = newStates
		var sum uint64
		for _, c := range counts {
			sum += c
		}
		dur := sim.CyclesToTime(prof.Cycles, spu.ClockHz)
		start := eng.Now()
		eng.After(dur, func() {
			r.counts += sum
			r.cycles += prof.Cycles
			r.busy += eng.Now() - start
			r.comput = false
			if r.offset >= len(r.input) {
				r.done = true
				r.doneAt = eng.Now()
				return
			}
			pump(r)
		})
	}
	for _, r := range spes {
		load(r, 0, 0)
		if len(r.input) > blockBytes {
			load(r, 1, blockBytes)
		}
	}
	eng.Run()

	out := &ChipRun{PerSPE: make([]uint64, cfg.SPEs), KernelCycles: make([]int64, cfg.SPEs)}
	var last sim.Time
	for s, r := range spes {
		if !r.done {
			return nil, fmt.Errorf("cell: SPE %d did not finish", s)
		}
		out.PerSPE[s] = r.counts
		out.KernelCycles[s] = r.cycles
		out.Matches += r.counts
		out.Bytes += int64(len(r.input))
		if r.doneAt > last {
			last = r.doneAt
		}
	}
	out.Elapsed = last
	if last > 0 {
		out.ThroughputGbps = float64(out.Bytes) * 8 / last.Seconds() / 1e9
		out.Utilization = float64(spes[0].busy) / float64(spes[0].doneAt)
	}
	return out, nil
}
