package cell

import (
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
	"cellmatch/internal/workload"
)

// chipStreams builds 16*spes reduced streams with planted patterns and
// returns them plus the oracle total.
func chipStreams(t *testing.T, d *dfa.DFA, red *alphabet.Reduction,
	pats [][]byte, spes, perStream int) ([][]byte, uint64) {
	t.Helper()
	streams := make([][]byte, 16*spes)
	var want uint64
	for i := range streams {
		raw, _, err := workload.Traffic(workload.TrafficConfig{
			Bytes: perStream, MatchEvery: 256, Dictionary: pats, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = red.Reduce(raw)
		want += uint64(d.CountFinalEntries(streams[i]))
	}
	return streams, want
}

func TestRunChipFunctionalAgreement(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 600, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns(pats, red)
	if err != nil {
		t.Fatal(err)
	}
	for _, spes := range []int{1, 2} {
		streams, want := chipStreams(t, d, red, pats, spes, 48*40)
		run, err := RunChip(d, streams, ChipConfig{SPEs: spes, BlockBytes: 960})
		if err != nil {
			t.Fatal(err)
		}
		if run.Matches != want {
			t.Fatalf("spes=%d: chip found %d, oracle %d", spes, run.Matches, want)
		}
		if run.Elapsed <= 0 || run.ThroughputGbps <= 0 {
			t.Fatalf("degenerate timing: %+v", run)
		}
	}
}

func TestRunChipThroughputNearKernelRate(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 600, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns(pats, red)
	if err != nil {
		t.Fatal(err)
	}
	spes := 2
	streams, _ := chipStreams(t, d, red, pats, spes, 48*80)
	run, err := RunChip(d, streams, ChipConfig{SPEs: spes, BlockBytes: 1920})
	if err != nil {
		t.Fatal(err)
	}
	// Two tiles at ~5.4 Gbps each with hidden transfers: the paper's
	// 10 Gbps headline, now from a single unified execution.
	if run.ThroughputGbps < 9.0 || run.ThroughputGbps > 12.5 {
		t.Fatalf("2-SPE chip throughput = %.2f Gbps, want ~10.7", run.ThroughputGbps)
	}
	if run.Utilization < 0.95 {
		t.Fatalf("compute utilization = %.2f, transfers not hidden", run.Utilization)
	}
}

func TestRunChipValidation(t *testing.T) {
	pats := [][]byte{[]byte("AB")}
	red := alphabet.CaseFold32()
	d, err := dfa.FromPatterns(pats, red)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunChip(d, make([][]byte, 3), ChipConfig{SPEs: 1}); err == nil {
		t.Fatal("wrong stream count accepted")
	}
	bad := make([][]byte, 16)
	for i := range bad {
		bad[i] = make([]byte, 7) // not kernel-aligned
	}
	if _, err := RunChip(d, bad, ChipConfig{SPEs: 1}); err == nil {
		t.Fatal("unaligned streams accepted")
	}
}
