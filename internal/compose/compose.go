// Package compose implements Section 5 of the paper: combining DFA
// tiles "in series" and "in parallel" to scale dictionary size and
// throughput independently.
//
//   - Parallel (Figure 6a): identical tiles scan distinct input
//     portions (with a small overlap so boundary-straddling matches
//     are not lost); throughput multiplies by the group count.
//   - Series (Figure 6b): tiles with distinct STTs scan the same
//     input; dictionary capacity multiplies by the series depth.
//   - Mixed (Figure 7): groups of series tiles over split input,
//     multiplying both.
//
// The package also contains the dictionary partitioner that splits a
// pattern set into tile-sized Aho-Corasick automata under the
// Figure 3 state budgets.
package compose

import (
	"fmt"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
	"cellmatch/internal/fanout"
	"cellmatch/internal/interleave"
	"cellmatch/internal/localstore"
)

// Topology describes a series/parallel tile arrangement.
type Topology struct {
	// Groups is the parallel width: how many input portions.
	Groups int
	// SeriesDepth is how many distinct-STT tiles scan each portion.
	SeriesDepth int
}

// Parallel returns a k-wide parallel topology (Figure 6a).
func Parallel(k int) Topology { return Topology{Groups: k, SeriesDepth: 1} }

// Series returns an m-deep series topology (Figure 6b).
func Series(m int) Topology { return Topology{Groups: 1, SeriesDepth: m} }

// Mixed returns the Figure 7 arrangement: g groups of m series tiles.
func Mixed(g, m int) Topology { return Topology{Groups: g, SeriesDepth: m} }

// TotalTiles is the SPE count the topology occupies.
func (t Topology) TotalTiles() int { return t.Groups * t.SeriesDepth }

// Validate checks the topology is non-degenerate and fits a machine
// with the given number of processing elements (0 = unconstrained).
func (t Topology) Validate(spes int) error {
	if t.Groups < 1 || t.SeriesDepth < 1 {
		return fmt.Errorf("compose: degenerate topology %+v", t)
	}
	if spes > 0 && t.TotalTiles() > spes {
		return fmt.Errorf("compose: topology needs %d tiles, only %d SPEs", t.TotalTiles(), spes)
	}
	return nil
}

// ThroughputGbps aggregates per-tile throughput over the topology:
// parallel groups multiply throughput; series tiles scan the same
// data concurrently at the group's rate (Figure 7: 2 groups x 5.11 =
// 10.22 Gbps regardless of depth).
func (t Topology) ThroughputGbps(perTile float64) float64 {
	return float64(t.Groups) * perTile
}

// Partition splits a dictionary into groups whose Aho-Corasick
// automata each fit maxStates, preserving pattern order within
// groups. It returns the per-group global pattern ids.
func Partition(patterns [][]byte, red *alphabet.Reduction, maxStates int) ([][]int, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("compose: empty dictionary")
	}
	if red == nil {
		red = alphabet.Identity()
	}
	if maxStates < 2 {
		return nil, fmt.Errorf("compose: maxStates %d too small", maxStates)
	}
	return partitionFrom(patterns, red, maxStates, 0)
}

// partitionFrom runs the greedy group packer over patterns[startID:]
// with a fresh trie, emitting groups of global ids (offset by startID).
// It is the shared tail of Partition and of the delta path's
// append-only fast partitioning, which reuses the previous build's
// group boundaries for the untouched prefix and resumes the greedy walk
// at the start of the last previous group.
func partitionFrom(patterns [][]byte, red *alphabet.Reduction, maxStates, startID int) ([][]int, error) {
	var groups [][]int
	var cur []int
	trie := newTrieCounter()
	for i, p := range patterns[startID:] {
		id := startID + i
		if len(p) == 0 {
			return nil, fmt.Errorf("compose: pattern %d empty", id)
		}
		if len(p)+1 > maxStates {
			return nil, fmt.Errorf(
				"compose: pattern %d needs %d states, budget is %d", id, len(p)+1, maxStates)
		}
		added := trie.wouldAdd(red.Reduce(p))
		if trie.nodes+added > maxStates && len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
			trie = newTrieCounter()
		}
		trie.insert(red.Reduce(p))
		cur = append(cur, id)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups, nil
}

// trieCounter incrementally counts Aho-Corasick goto-trie nodes.
type trieCounter struct {
	children map[trieKey]int32
	nodes    int
	next     int32
}

type trieKey struct {
	node int32
	sym  byte
}

func newTrieCounter() *trieCounter {
	return &trieCounter{children: map[trieKey]int32{}, nodes: 1, next: 1}
}

func (t *trieCounter) wouldAdd(p []byte) int {
	cur := int32(0)
	added := 0
	for _, c := range p {
		if added > 0 {
			added++
			continue
		}
		next, ok := t.children[trieKey{cur, c}]
		if !ok {
			added++
			continue
		}
		cur = next
	}
	return added
}

func (t *trieCounter) insert(p []byte) {
	cur := int32(0)
	for _, c := range p {
		k := trieKey{cur, c}
		next, ok := t.children[k]
		if !ok {
			next = t.next
			t.next++
			t.nodes++
			t.children[k] = next
		}
		cur = next
	}
}

// System is a composed matcher: a topology plus the per-series-slot
// automata, ready to scan raw input.
type System struct {
	Topology Topology
	Red      *alphabet.Reduction
	// Width is the STT row width in symbols: 32 in the paper's
	// case-folded regime, wider when the dictionary distinguishes
	// more byte classes (the tile state budget shrinks accordingly).
	Width int
	// Slots[i] is the automaton of series slot i (shared by every
	// parallel group).
	Slots []*dfa.DFA
	// SlotPatterns[i] maps slot-local pattern ids to global ids.
	SlotPatterns [][]int
	// MaxPatternLen drives the split overlap.
	MaxPatternLen int

	// slotFP caches per-slot content fingerprints (see delta.go) so
	// repeated delta recompiles against this system hash its dictionary
	// once, not once per reload.
	slotFP [][fpSize]byte
}

// Config for building a system.
type Config struct {
	// MaxStatesPerTile is the Figure 3 budget (default 1520).
	MaxStatesPerTile int
	// Groups is the parallel width (default 1).
	Groups int
	// MaxSPEs bounds the total tiles (0 = unconstrained).
	MaxSPEs int
	// CaseFold uses the paper's case-insensitive reduction.
	CaseFold bool
	// Workers bounds the compile-time fan-out (fanout semantics:
	// 0 = one per core, 1 = sequential). Slot automata build
	// concurrently and large slots parallelize internally; the result
	// is bit-identical at any worker count.
	Workers int
}

// tileGeometry resolves the row width and per-tile state budget for a
// reduction — the arithmetic NewSystem, NewRegexSystem, and the delta
// path must share so a delta recompile reproduces the cold partition.
func tileGeometry(red *alphabet.Reduction, maxStatesPerTile int) (width, maxStates int, err error) {
	width = 32
	for width < red.Classes {
		width *= 2
	}
	maxStates = maxStatesPerTile
	if maxStates == 0 {
		plan, err := localstore.PlanTile(16*1024, uint32(width)*4)
		if err != nil {
			return 0, 0, err
		}
		maxStates = plan.MaxStates
	}
	return width, maxStates, nil
}

// NewSystem partitions the dictionary and erects the topology.
func NewSystem(patterns [][]byte, cfg Config) (*System, error) {
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	red, err := alphabet.ForDictionary(patterns, cfg.CaseFold)
	if err != nil {
		return nil, err
	}
	width, maxStates, err := tileGeometry(red, cfg.MaxStatesPerTile)
	if err != nil {
		return nil, err
	}
	groups, err := Partition(patterns, red, maxStates)
	if err != nil {
		return nil, err
	}
	topo := Mixed(cfg.Groups, len(groups))
	if err := topo.Validate(cfg.MaxSPEs); err != nil {
		return nil, err
	}
	s := &System{Topology: topo, Red: red, Width: width, SlotPatterns: groups}
	if err := s.buildSlots(patterns, groups, nil, maxStates, cfg.Workers); err != nil {
		return nil, err
	}
	return s, nil
}

// buildSlots compiles each group's automaton, fanning the independent
// slot builds across workers (large dictionaries split into hundreds of
// tile slots, so per-slot fan-out is the dominant compile parallelism).
// reuse[i], when non-nil, supplies an already-built automaton for slot
// i (the delta path's fingerprint hits); budget checks are skipped for
// reused slots — they passed when first built. Slots land at their
// index, so the slot order (and every downstream table) is identical to
// the sequential build's.
func (s *System) buildSlots(patterns [][]byte, groups [][]int, reuse []*dfa.DFA, maxStates, workers int) error {
	s.Slots = make([]*dfa.DFA, len(groups))
	// Few slots on many cores: give each slot's own construction the
	// leftover parallelism (single-slot systems and per-shard compiles
	// hit this; many-slot systems keep slots sequential inside).
	inner := 1
	if w := fanout.Workers(workers); len(groups) < w {
		inner = (w + len(groups) - 1) / len(groups)
	}
	err := fanout.ForEachErr(len(groups), workers, func(gi int) error {
		if reuse != nil && reuse[gi] != nil {
			s.Slots[gi] = reuse[gi]
			return nil
		}
		ids := groups[gi]
		sub := make([][]byte, len(ids))
		for i, id := range ids {
			sub[i] = patterns[id]
		}
		d, err := dfa.FromPatternsParallel(sub, s.Red, inner)
		if err != nil {
			return err
		}
		if d.NumStates() > maxStates {
			return fmt.Errorf("compose: partition produced %d states, budget %d",
				d.NumStates(), maxStates)
		}
		s.Slots[gi] = d
		return nil
	})
	if err != nil {
		return err
	}
	for _, d := range s.Slots {
		if d.MaxPatternLen > s.MaxPatternLen {
			s.MaxPatternLen = d.MaxPatternLen
		}
	}
	return nil
}

// NewRegexSystem partitions a dictionary of bounded regular
// expressions (see dfa.CompileRegexSearch for the dialect and the
// bounded/non-nullable restrictions) into tile-sized unanchored search
// DFAs and erects the topology. The resulting System scans exactly
// like a literal one — Out sets carry expression ids, matches are
// reported per (expression, end offset) — so every downstream engine
// works unchanged. The reduction is derived from the expressions' own
// leaf sets (dfa.RegexReduction), so reduced matching is exact.
//
// Partitioning is by trial compilation: expressions accumulate into a
// slot until its search DFA would exceed the tile budget, then a new
// slot starts. Subset construction can entangle expressions (unlike
// literal tries, slot states are not additive), so the budget is
// enforced on the actual compiled automaton rather than predicted.
func NewRegexSystem(exprs []string, cfg Config) (*System, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("compose: empty regex dictionary")
	}
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	red, err := dfa.RegexReduction(exprs, cfg.CaseFold)
	if err != nil {
		return nil, err
	}
	// Trial compilation is inherently sequential (each trial depends on
	// the accumulated slot), so regex systems ignore cfg.Workers; delta
	// recompiles of regex dictionaries fall back to a full rebuild for
	// the same reason.
	width, maxStates, err := tileGeometry(red, cfg.MaxStatesPerTile)
	if err != nil {
		return nil, err
	}
	cfg.MaxStatesPerTile = maxStates
	s := &System{Red: red, Width: width}
	var cur []int
	var curDFA *dfa.DFA
	compile := func(ids []int) (*dfa.DFA, error) {
		sub := make([]string, len(ids))
		for i, id := range ids {
			sub[i] = exprs[id]
		}
		return dfa.CompileRegexSearch(sub, cfg.CaseFold, red)
	}
	for id := range exprs {
		d, err := compile(append(cur[:len(cur):len(cur)], id))
		if err != nil {
			return nil, err
		}
		if d.NumStates() > cfg.MaxStatesPerTile && len(cur) > 0 {
			s.Slots = append(s.Slots, curDFA)
			s.SlotPatterns = append(s.SlotPatterns, cur)
			cur = nil
			if d, err = compile([]int{id}); err != nil {
				return nil, err
			}
		}
		if d.NumStates() > cfg.MaxStatesPerTile {
			return nil, fmt.Errorf("compose: expression %d alone needs %d states, budget %d",
				id, d.NumStates(), cfg.MaxStatesPerTile)
		}
		cur = append(cur, id)
		curDFA = d
	}
	s.Slots = append(s.Slots, curDFA)
	s.SlotPatterns = append(s.SlotPatterns, cur)
	topo := Mixed(cfg.Groups, len(s.Slots))
	if err := topo.Validate(cfg.MaxSPEs); err != nil {
		return nil, err
	}
	s.Topology = topo
	for _, d := range s.Slots {
		if d.MaxPatternLen > s.MaxPatternLen {
			s.MaxPatternLen = d.MaxPatternLen
		}
	}
	return s, nil
}

// DictionaryStates is the aggregate state count across series slots.
func (s *System) DictionaryStates() int {
	total := 0
	for _, d := range s.Slots {
		total += d.NumStates()
	}
	return total
}

// Scan matches raw input against the whole dictionary, splitting it
// across parallel groups with pattern-length overlap and de-duplicating
// boundary matches. Matches are reported with global pattern ids and
// global end offsets, sorted by (End, Pattern).
func (s *System) Scan(input []byte) ([]dfa.Match, error) {
	reduced := s.Red.Reduce(input)
	overlap := 0
	if s.MaxPatternLen > 0 {
		overlap = s.MaxPatternLen - 1
	}
	chunks, err := interleave.SplitWithOverlap(len(reduced), s.Topology.Groups, overlap)
	if err != nil {
		return nil, err
	}
	var out []dfa.Match
	for _, c := range chunks {
		if c.Len() == 0 {
			continue
		}
		piece := reduced[c.Start:c.End]
		for slot, d := range s.Slots {
			for _, m := range d.FindAll(piece) {
				if m.End <= c.DedupeEnd() {
					continue // duplicate of the previous chunk
				}
				out = append(out, dfa.Match{
					Pattern: int32(s.SlotPatterns[slot][m.Pattern]),
					End:     c.GlobalEnd(m.End),
				})
			}
		}
	}
	dfa.SortMatches(out)
	return out, nil
}

// CountMatches scans and returns only the match count.
func (s *System) CountMatches(input []byte) (int, error) {
	ms, err := s.Scan(input)
	if err != nil {
		return 0, err
	}
	return len(ms), nil
}
