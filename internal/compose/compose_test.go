package compose

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
)

func pats(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestTopologyArithmetic(t *testing.T) {
	if Parallel(8).TotalTiles() != 8 || Series(4).TotalTiles() != 4 {
		t.Fatal("tile counts")
	}
	if Mixed(2, 4).TotalTiles() != 8 {
		t.Fatal("mixed tiles")
	}
	if err := Mixed(2, 4).Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := Mixed(3, 3).Validate(8); err == nil {
		t.Fatal("9 tiles on 8 SPEs accepted")
	}
	if err := Parallel(0).Validate(8); err == nil {
		t.Fatal("degenerate accepted")
	}
}

func TestSection5Throughputs(t *testing.T) {
	// Paper Section 5: 2 tiles parallel = 10.22 Gbps; 8 = 40.88; the
	// Figure 7 mixed config (2 groups x 4 series) = 10.22 Gbps.
	per := 5.11
	if got := Parallel(2).ThroughputGbps(per); got != 10.22 {
		t.Fatalf("2 parallel = %.2f", got)
	}
	if got := Parallel(8).ThroughputGbps(per); got != 40.88 {
		t.Fatalf("8 parallel = %.2f", got)
	}
	if got := Mixed(2, 4).ThroughputGbps(per); got != 10.22 {
		t.Fatalf("mixed = %.2f", got)
	}
	// Two processors (Section 5): 81.76 Gbps.
	if got := Parallel(16).ThroughputGbps(per); got != 81.76 {
		t.Fatalf("dual-Cell = %.2f", got)
	}
}

func TestPartitionRespectsBudget(t *testing.T) {
	red := alphabet.CaseFold32()
	var dict [][]byte
	for i := 0; i < 40; i++ {
		p := make([]byte, 20)
		p[0] = byte('A' + i%26)
		p[1] = byte('A' + (i/26)%26)
		for j := 2; j < 20; j++ {
			p[j] = byte('A' + (i+j)%26)
		}
		dict = append(dict, p)
	}
	groups, err := Partition(dict, red, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 {
		t.Fatalf("expected multiple groups, got %d", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		sub := make([][]byte, len(g))
		for i, id := range g {
			if seen[id] {
				t.Fatalf("pattern %d in two groups", id)
			}
			seen[id] = true
			sub[i] = dict[id]
		}
		d, err := dfa.FromPatterns(sub, red)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumStates() > 200 {
			t.Fatalf("group automaton has %d states > 200", d.NumStates())
		}
	}
	if len(seen) != len(dict) {
		t.Fatalf("only %d of %d patterns assigned", len(seen), len(dict))
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(nil, nil, 100); err == nil {
		t.Fatal("empty dictionary accepted")
	}
	if _, err := Partition(pats("TOOLONGPATTERN"), nil, 5); err == nil {
		t.Fatal("oversized pattern accepted")
	}
	if _, err := Partition(pats("A", ""), nil, 100); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestSystemScanBasic(t *testing.T) {
	s, err := NewSystem(pats("VIRUS", "WORM"), Config{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("XXVIRUSXXWORMXXVIRUS")
	ms, err := s.Scan(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("matches = %v", ms)
	}
	if ms[0].Pattern != 0 || ms[0].End != 7 {
		t.Fatalf("first match %+v", ms[0])
	}
	if ms[1].Pattern != 1 || ms[1].End != 13 {
		t.Fatalf("second match %+v", ms[1])
	}
}

func TestSystemCaseFold(t *testing.T) {
	s, err := NewSystem(pats("Attack"), Config{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := s.Scan([]byte("an ATTACK and an attack"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("case-folded matches = %v", ms)
	}
}

// naive oracle over raw bytes with a reduction.
func naiveScan(patterns [][]byte, input []byte, red *alphabet.Reduction) []dfa.Match {
	ri := red.Reduce(input)
	var out []dfa.Match
	for id, p := range patterns {
		rp := red.Reduce(p)
		for end := len(rp); end <= len(ri); end++ {
			if bytes.Equal(ri[end-len(rp):end], rp) {
				out = append(out, dfa.Match{Pattern: int32(id), End: end})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// TestBoundaryStraddlingMatches plants matches exactly on the split
// boundaries and verifies each is found exactly once.
func TestBoundaryStraddlingMatches(t *testing.T) {
	dict := pats("BOUNDARY")
	for groups := 1; groups <= 5; groups++ {
		s, err := NewSystem(dict, Config{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		// Input sized so boundaries land mid-pattern.
		n := 97
		input := bytes.Repeat([]byte{'.'}, n)
		// Plant a match around every possible chunk boundary.
		for pos := 10; pos+8 <= n; pos += 19 {
			copy(input[pos:], "BOUNDARY")
		}
		want := naiveScan(dict, input, s.Red)
		got, err := s.Scan(input)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("groups=%d: got %d matches, want %d: %v", groups, len(got), len(want), got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("groups=%d match %d: %+v vs %+v", groups, i, got[i], want[i])
			}
		}
	}
}

// TestScanRandomizedVsOracle: random dictionaries over a small
// alphabet, random parallel widths, random inputs.
func TestScanRandomizedVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		np := 1 + rng.Intn(5)
		dict := make([][]byte, np)
		for i := range dict {
			l := 1 + rng.Intn(6)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(3))
			}
			dict[i] = p
		}
		groups := 1 + rng.Intn(4)
		s, err := NewSystem(dict, Config{Groups: groups})
		if err != nil {
			t.Fatal(err)
		}
		input := make([]byte, rng.Intn(200))
		for j := range input {
			input[j] = byte('a' + rng.Intn(3))
		}
		got, err := s.Scan(input)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveScan(dict, input, s.Red)
		if len(got) != len(want) {
			t.Fatalf("trial %d (groups %d): %d vs %d matches\ndict %q",
				trial, groups, len(got), len(want), dict)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: match %d differs: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSeriesDictionaryScaling verifies that a dictionary overflowing
// one tile partitions into series slots and still finds everything.
func TestSeriesDictionaryScaling(t *testing.T) {
	var dict [][]byte
	for i := 0; i < 30; i++ {
		p := make([]byte, 30)
		p[0] = byte('A' + i%26)
		p[1] = byte('A' + (i/26)%26)
		for j := 2; j < 30; j++ {
			p[j] = byte('A' + (i*3+j)%26)
		}
		dict = append(dict, p)
	}
	s, err := NewSystem(dict, Config{MaxStatesPerTile: 300})
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology.SeriesDepth < 2 {
		t.Fatalf("series depth = %d, expected partitioning", s.Topology.SeriesDepth)
	}
	if s.DictionaryStates() <= 300 {
		t.Fatalf("aggregate states = %d", s.DictionaryStates())
	}
	// Every pattern is still found.
	for i, p := range dict {
		input := append(append([]byte("xx"), p...), 'x')
		ms, err := s.Scan(input)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range ms {
			if m.Pattern == int32(i) && m.End == 2+len(p) {
				found = true
			}
		}
		if !found {
			t.Fatalf("pattern %d lost after partitioning: %v", i, ms)
		}
	}
}

func TestCountMatches(t *testing.T) {
	s, err := NewSystem(pats("AB"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.CountMatches([]byte("ABAB"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d", n)
	}
}
