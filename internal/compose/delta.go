// Incremental system composition: rebuild only the slots a dictionary
// edit actually touched. The partitioner is deterministic, so the new
// group list can be computed cheaply (with an append-only fast path
// that reuses the previous boundaries outright) and each new group's
// automaton reused from the previous system whenever its content
// fingerprint matches — a slot DFA depends only on the reduction and
// the ordered pattern bytes of its group, never on global ids. Reused
// units are the previous build's immutable values, and rebuilt units
// run the same construction a cold build would, so the delta-composed
// system is bit-identical to NewSystem on the new dictionary.
package compose

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/dfa"
	"cellmatch/internal/fanout"
)

// fpSize is the slot fingerprint width. SHA-256 keeps accidental
// collisions out of the question: a collision would silently reuse the
// wrong automaton.
const fpSize = sha256.Size

// slotFingerprint hashes one group's ordered pattern content: per
// pattern, its length (uvarint, so concatenation ambiguity is
// impossible) then its bytes. The reduction is deliberately excluded —
// the delta path only compares fingerprints after establishing the
// reductions are equal.
func slotFingerprint(patterns [][]byte, ids []int) [fpSize]byte {
	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, id := range ids {
		p := patterns[id]
		n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:n])
		h.Write(p)
	}
	var fp [fpSize]byte
	h.Sum(fp[:0])
	return fp
}

// slotFingerprints returns (computing and caching on first use) the
// per-slot content fingerprints of a system built from the given global
// pattern list.
func (s *System) slotFingerprints(patterns [][]byte, workers int) [][fpSize]byte {
	if s.slotFP != nil {
		return s.slotFP
	}
	fps := make([][fpSize]byte, len(s.SlotPatterns))
	fanout.ForEach(len(s.SlotPatterns), workers, func(i int) {
		fps[i] = slotFingerprint(patterns, s.SlotPatterns[i])
	})
	s.slotFP = fps
	return fps
}

// partitionDelta computes the new dictionary's group list, taking the
// append-only fast path when the previous dictionary is a strict prefix
// of the new one: groups before the last previous group cannot change
// (the greedy packer's state at each boundary depends only on earlier
// patterns, which are byte-identical), so only the tail from the start
// of the last previous group is re-packed. Any other edit re-runs the
// full partitioner — still cheap next to automaton construction.
func partitionDelta(patterns [][]byte, red *alphabet.Reduction, maxStates int, prev *System, prevPatterns [][]byte) ([][]int, error) {
	if len(prev.SlotPatterns) > 0 && len(patterns) > len(prevPatterns) && isPrefix(prevPatterns, patterns) {
		last := len(prev.SlotPatterns) - 1
		resume := prev.SlotPatterns[last][0]
		groups := make([][]int, last, last+1)
		copy(groups, prev.SlotPatterns[:last])
		tail, err := partitionFrom(patterns, red, maxStates, resume)
		if err != nil {
			return nil, err
		}
		return append(groups, tail...), nil
	}
	return Partition(patterns, red, maxStates)
}

// isPrefix reports whether every old pattern equals the new pattern at
// the same index — a byte compare, far cheaper than re-walking tries.
func isPrefix(old, new [][]byte) bool {
	for i, p := range old {
		if !bytes.Equal(p, new[i]) {
			return false
		}
	}
	return true
}

// NewSystemDelta composes a system for the new dictionary, reusing
// every slot automaton of prev (built from prevPatterns, with the same
// cfg) whose group content is unchanged. It returns the system plus a
// per-slot reuse mask (diagnostics and delta accounting). The result is
// bit-identical to NewSystem(patterns, cfg); when the new reduction
// differs from prev's (an edit introduced or retired a byte class,
// re-numbering every slot's symbols) nothing is reusable and the cold
// path runs.
func NewSystemDelta(patterns [][]byte, cfg Config, prev *System, prevPatterns [][]byte) (*System, []bool, error) {
	cold := func() (*System, []bool, error) {
		s, err := NewSystem(patterns, cfg)
		if err != nil {
			return nil, nil, err
		}
		return s, make([]bool, len(s.Slots)), nil
	}
	if prev == nil || prev.Red == nil || len(prev.Slots) == 0 {
		return cold()
	}
	if cfg.Groups == 0 {
		cfg.Groups = 1
	}
	red, err := alphabet.ForDictionary(patterns, cfg.CaseFold)
	if err != nil {
		return nil, nil, err
	}
	if *red != *prev.Red {
		return cold()
	}
	width, maxStates, err := tileGeometry(red, cfg.MaxStatesPerTile)
	if err != nil {
		return nil, nil, err
	}
	groups, err := partitionDelta(patterns, red, maxStates, prev, prevPatterns)
	if err != nil {
		return nil, nil, err
	}
	topo := Mixed(cfg.Groups, len(groups))
	if err := topo.Validate(cfg.MaxSPEs); err != nil {
		return nil, nil, err
	}

	prevFPs := prev.slotFingerprints(prevPatterns, cfg.Workers)
	prevBySlot := make(map[[fpSize]byte]int, len(prevFPs))
	for i, fp := range prevFPs {
		if _, dup := prevBySlot[fp]; !dup {
			prevBySlot[fp] = i
		}
	}
	newFPs := make([][fpSize]byte, len(groups))
	fanout.ForEach(len(groups), cfg.Workers, func(i int) {
		newFPs[i] = slotFingerprint(patterns, groups[i])
	})

	s := &System{Topology: topo, Red: red, Width: width, SlotPatterns: groups, slotFP: newFPs}
	reuseSlots := make([]*dfa.DFA, len(groups))
	reused := make([]bool, len(groups))
	for i, fp := range newFPs {
		if j, ok := prevBySlot[fp]; ok {
			reuseSlots[i] = prev.Slots[j]
			reused[i] = true
		}
	}
	if err := s.buildSlots(patterns, groups, reuseSlots, maxStates, cfg.Workers); err != nil {
		return nil, nil, err
	}
	return s, reused, nil
}
