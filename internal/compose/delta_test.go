package compose

import (
	"bytes"
	"testing"
)

// deltaDict builds a deterministic multi-slot dictionary: enough
// distinct patterns that a small per-tile budget forces several groups.
func deltaDict(n int, seed uint32) [][]byte {
	x := seed | 1
	out := make([][]byte, n)
	for i := range out {
		l := 4 + int(x%6)
		p := make([]byte, l)
		for j := range p {
			x = x*1664525 + 1013904223
			p[j] = 'a' + byte((x>>16)%13)
		}
		out[i] = p
	}
	return out
}

// systemsIdentical compares two systems slot by slot at the serialized
// automaton level — the compose-tier byte-identity witness.
func systemsIdentical(t *testing.T, ctx string, got, want *System) {
	t.Helper()
	if len(got.Slots) != len(want.Slots) {
		t.Fatalf("%s: %d slots, want %d", ctx, len(got.Slots), len(want.Slots))
	}
	if *got.Red != *want.Red || got.Width != want.Width {
		t.Fatalf("%s: reduction/width mismatch", ctx)
	}
	for i := range want.Slots {
		gb, err := got.Slots[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		wb, err := want.Slots[i].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, wb) {
			t.Fatalf("%s: slot %d automaton differs", ctx, i)
		}
		if len(got.SlotPatterns[i]) != len(want.SlotPatterns[i]) {
			t.Fatalf("%s: slot %d group size differs", ctx, i)
		}
		for j, id := range want.SlotPatterns[i] {
			if got.SlotPatterns[i][j] != id {
				t.Fatalf("%s: slot %d pattern ids differ", ctx, i)
			}
		}
	}
}

func TestNewSystemDeltaAppendReusesPrefixSlots(t *testing.T) {
	cfg := Config{MaxStatesPerTile: 200}
	prevPats := deltaDict(120, 7)
	prev, err := NewSystem(prevPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Slots) < 3 {
		t.Fatalf("fixture too small: %d slots", len(prev.Slots))
	}
	newPats := append(append([][]byte{}, prevPats...), deltaDict(8, 99)...)

	cold, err := NewSystem(newPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, reused, err := NewSystemDelta(newPats, cfg, prev, prevPats)
	if err != nil {
		t.Fatal(err)
	}
	systemsIdentical(t, "append", sys, cold)

	nReused := 0
	for i, r := range reused {
		if !r {
			continue
		}
		nReused++
		// Reuse must be adoption, not recompilation: the slot pointer is
		// the previous system's.
		found := false
		for _, d := range prev.Slots {
			if d == sys.Slots[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("slot %d marked reused but automaton is not prev's", i)
		}
	}
	// Every group before the last previous one is untouched by an
	// append, so all but at most the final two slots must be reused.
	if nReused < len(prev.Slots)-1 {
		t.Fatalf("append reused %d of %d previous slots", nReused, len(prev.Slots))
	}
}

func TestNewSystemDeltaEditMiddle(t *testing.T) {
	cfg := Config{MaxStatesPerTile: 200}
	prevPats := deltaDict(120, 7)
	prev, err := NewSystem(prevPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replace one mid-dictionary pattern: the full partitioner runs, but
	// groups whose content survives intact must still be reused.
	newPats := append([][]byte{}, prevPats...)
	newPats[60] = []byte("ggggggg")

	cold, err := NewSystem(newPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, reused, err := NewSystemDelta(newPats, cfg, prev, prevPats)
	if err != nil {
		t.Fatal(err)
	}
	systemsIdentical(t, "edit", sys, cold)
	any := false
	for _, r := range reused {
		any = any || r
	}
	if !any {
		t.Fatal("mid-dictionary edit reused nothing")
	}
}

func TestNewSystemDeltaColdFallbacks(t *testing.T) {
	cfg := Config{MaxStatesPerTile: 200}
	pats := deltaDict(80, 3)
	cold, err := NewSystem(pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// nil prev: plain cold build, all-false mask.
	sys, reused, err := NewSystemDelta(pats, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	systemsIdentical(t, "nil prev", sys, cold)
	for _, r := range reused {
		if r {
			t.Fatal("nil prev produced a reused slot")
		}
	}
	// Reduction change (a new byte class re-numbers every symbol): no
	// slot is reusable even though most pattern bytes are unchanged.
	newPats := append(append([][]byte{}, pats...), []byte("zzz@zzz"))
	coldNew, err := NewSystem(newPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys2, reused2, err := NewSystemDelta(newPats, cfg, cold, pats)
	if err != nil {
		t.Fatal(err)
	}
	systemsIdentical(t, "reduction change", sys2, coldNew)
	for _, r := range reused2 {
		if r {
			t.Fatal("reduction change must not reuse slots")
		}
	}
}
