// Package conformance cross-checks the engine ladder: for one
// workload scenario it compiles the dictionary onto every verifier
// rung (stride-2 kernel, dense kernel, compressed-row kernel, sharded
// multi-kernel, stt fallback), with the
// skip-scan front-end forced on and off, and scans the corpus through
// every scan surface (sequential, parallel, shared pool, reader,
// stream). Every configuration must produce the same (End, Pattern)
// match set — the paper's byte-identical-output guarantee, checked
// match-for-match instead of per-engine-pair. The report records
// which engine each forced rung actually selected and the filter's
// skip rate per rung, so benchmarks and CI can see where a scenario
// lands on the ladder.
package conformance

import (
	"bytes"
	"fmt"
	"sort"

	"cellmatch/internal/core"
	"cellmatch/internal/parallel"
	"cellmatch/internal/workload"
)

// RungReport is one forced verifier rung's outcome on a scenario.
type RungReport struct {
	// Rung is the tier the configuration asked for ("stride2",
	// "kernel", "compressed", "sharded", "stt"); Engine is what the
	// matcher actually selected (a regex dictionary forced toward
	// "sharded" lands on "stt" — the sharded tier is literal-only — and
	// a forced stride-2 compile whose pair tables exceed the budget
	// lands on "kernel").
	Rung   string `json:"rung"`
	Engine string `json:"engine"`
	// FilterLive reports whether the skip-scan front-end came up in
	// the filter-on compile (false when the dictionary is ineligible:
	// regex, or min pattern length below the window floor).
	FilterLive bool `json:"filter_live"`
	// SkipRate is the fraction of window positions the live filter
	// skipped on the sequential filter-on scan (0 when not live).
	SkipRate float64 `json:"skip_rate"`
}

// Report is the conformance outcome for one scenario.
type Report struct {
	Scenario string `json:"scenario"`
	Regex    bool   `json:"regex"`
	// RefMatches is the reference match count (default-engine,
	// filter-off, sequential scan).
	RefMatches int `json:"ref_matches"`
	// Configs counts the (rung x filter x scan-mode) configurations
	// compared against the reference.
	Configs int          `json:"configs"`
	Rungs   []RungReport `json:"rungs"`
}

// compile builds the scenario's dictionary on the given engine
// options, routing through the regex surface when the scenario says
// so.
func compile(s workload.Scenario, eng core.EngineOptions) (*core.Matcher, error) {
	opts := core.Options{CaseFold: s.CaseFold, Engine: eng}
	if s.Regex {
		exprs := make([]string, len(s.Patterns))
		for i, p := range s.Patterns {
			exprs[i] = string(p)
		}
		return core.CompileRegexSearch(exprs, opts)
	}
	return core.Compile(s.Patterns, opts)
}

// normalize sorts matches by (End, Pattern) so comparisons are
// insensitive to emission order (streamed and chunked scans may emit
// same-end matches in different pattern order).
func normalize(ms []core.Match) []core.Match {
	out := append([]core.Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

func diff(want, got []core.Match) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// scanModes are the scan surfaces every configuration is driven
// through. Chunk sizes are deliberately small so chunked paths cross
// many boundaries even on short corpora.
var scanModes = []struct {
	name string
	run  func(m *core.Matcher, data []byte, pool *parallel.Pool) ([]core.Match, error)
}{
	{"seq", func(m *core.Matcher, data []byte, _ *parallel.Pool) ([]core.Match, error) {
		return m.FindAll(data)
	}},
	{"parallel", func(m *core.Matcher, data []byte, _ *parallel.Pool) ([]core.Match, error) {
		return m.FindAllParallel(data, core.ParallelOptions{Workers: 3, ChunkBytes: 512})
	}},
	{"pool", func(m *core.Matcher, data []byte, pool *parallel.Pool) ([]core.Match, error) {
		return m.FindAllParallel(data, core.ParallelOptions{Workers: 2, ChunkBytes: 768, Pool: pool})
	}},
	{"reader", func(m *core.Matcher, data []byte, _ *parallel.Pool) ([]core.Match, error) {
		return m.ScanReader(bytes.NewReader(data), core.ParallelOptions{Workers: 2, ChunkBytes: 640})
	}},
	{"stream", func(m *core.Matcher, data []byte, _ *parallel.Pool) ([]core.Match, error) {
		s := m.NewStream()
		for off := 0; off < len(data); off += 257 {
			end := off + 257
			if end > len(data) {
				end = len(data)
			}
			if _, err := s.Write(data[off:end]); err != nil {
				return nil, err
			}
		}
		return s.Matches(), nil
	}},
}

// Run drives one scenario through every engine configuration and
// returns the report; any output divergence is an error naming the
// configuration.
func Run(s workload.Scenario) (*Report, error) {
	// Reference: 1-byte kernel, filter off, sequential — the ladder's
	// historical baseline every other configuration is diffed against.
	refM, err := compile(s, core.EngineOptions{Filter: core.FilterOff, Stride: 1})
	if err != nil {
		return nil, fmt.Errorf("%s: reference compile: %w", s.Name, err)
	}
	refRaw, err := refM.FindAll(s.Corpus)
	if err != nil {
		return nil, fmt.Errorf("%s: reference scan: %w", s.Name, err)
	}
	ref := normalize(refRaw)
	refStats := refM.Stats()

	// Forced rungs. The sharded budget is derived from the reference
	// kernel's actual footprint so the dictionary genuinely splits;
	// when the reference has no kernel table (stt already), a 1-byte
	// budget forces the same fallback deliberately.
	shardBudget := refStats.KernelTableBytes * 3 / 4
	if shardBudget < 1 {
		shardBudget = 1
	}
	rungs := []struct {
		name string
		eng  core.EngineOptions
	}{
		{"stride2", core.EngineOptions{Stride: 2}},
		{"kernel", core.EngineOptions{Stride: 1}},
		{"compressed", core.EngineOptions{Compressed: core.CompressedOn}},
		// The shard rung pins the compressed tier off so the squeezed
		// budget genuinely reaches the shard planner.
		{"sharded", core.EngineOptions{
			MaxTableBytes: shardBudget, MaxShards: 8, Compressed: core.CompressedOff,
		}},
		{"stt", core.EngineOptions{DisableKernel: true}},
	}

	pool := parallel.NewPool(2)
	defer pool.Close()

	rep := &Report{Scenario: s.Name, Regex: s.Regex, RefMatches: len(ref)}
	for _, rung := range rungs {
		rr := RungReport{Rung: rung.name}
		for _, fm := range []core.FilterMode{core.FilterOff, core.FilterOn} {
			eng := rung.eng
			eng.Filter = fm
			m, err := compile(s, eng)
			if err != nil {
				return nil, fmt.Errorf("%s: compile rung=%s filter=%v: %w", s.Name, rung.name, fm, err)
			}
			if fm == core.FilterOff {
				rr.Engine = m.Stats().Engine
			} else {
				rr.FilterLive = m.FilterActive()
			}
			skipBefore := m.Stats().WindowsSkipped
			for _, mode := range scanModes {
				got, err := mode.run(m, s.Corpus, pool)
				if err != nil {
					return nil, fmt.Errorf("%s: rung=%s filter=%v mode=%s: %w",
						s.Name, rung.name, fm, mode.name, err)
				}
				if err := diff(ref, normalize(got)); err != nil {
					return nil, fmt.Errorf("%s: rung=%s filter=%v mode=%s diverges: %w",
						s.Name, rung.name, fm, mode.name, err)
				}
				rep.Configs++
				if fm == core.FilterOn && mode.name == "seq" && rr.FilterLive {
					st := m.Stats()
					positions := len(s.Corpus) - st.FilterWindow + 1
					if positions > 0 {
						rr.SkipRate = float64(st.WindowsSkipped-skipBefore) / float64(positions)
					}
					skipBefore = st.WindowsSkipped
				}
			}
		}
		rep.Rungs = append(rep.Rungs, rr)
	}
	return rep, nil
}

// RunSuite runs every scenario and returns the reports in suite
// order.
func RunSuite(scs []workload.Scenario) ([]*Report, error) {
	out := make([]*Report, 0, len(scs))
	for _, s := range scs {
		r, err := Run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
