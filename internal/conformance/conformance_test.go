package conformance

import (
	"testing"

	"cellmatch/internal/core"
	"cellmatch/internal/workload"
)

func TestNormalizeAndDiff(t *testing.T) {
	a := []core.Match{{End: 9, Pattern: 1}, {End: 4, Pattern: 0}, {End: 9, Pattern: 0}}
	n := normalize(a)
	if n[0].End != 4 || n[1] != (core.Match{End: 9, Pattern: 0}) || n[2].Pattern != 1 {
		t.Fatalf("normalize order: %+v", n)
	}
	if &a[0] == &n[0] {
		t.Fatal("normalize mutated its input slice")
	}
	if err := diff(n, n); err != nil {
		t.Fatalf("identical sets differ: %v", err)
	}
	if err := diff(n, n[:2]); err == nil {
		t.Fatal("length mismatch not reported")
	}
	other := append([]core.Match(nil), n...)
	other[1].Pattern = 7
	if err := diff(n, other); err == nil {
		t.Fatal("content mismatch not reported")
	}
}

func TestRunReportShape(t *testing.T) {
	s, err := workload.LogScenario(3, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != s.Name || rep.Regex {
		t.Fatalf("report header %+v", rep)
	}
	if rep.Configs != len(scanModes)*2*5 {
		t.Fatalf("configs %d, want rungs x filters x modes = %d", rep.Configs, len(scanModes)*2*5)
	}
	if len(rep.Rungs) != 5 {
		t.Fatalf("rungs %d, want 5", len(rep.Rungs))
	}
}

func TestRunSuiteOrder(t *testing.T) {
	scs, err := workload.Scenarios(5, 1024)
	if err != nil {
		t.Fatal(err)
	}
	scs = scs[:2]
	reps, err := RunSuite(scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Scenario != scs[0].Name || reps[1].Scenario != scs[1].Name {
		t.Fatalf("suite order lost: %+v", reps)
	}
}

func TestRunRejectsBrokenScenario(t *testing.T) {
	s := workload.Scenario{Name: "broken", Patterns: [][]byte{[]byte("a*")},
		Regex: true, Corpus: []byte("aaaa")}
	if _, err := Run(s); err == nil {
		t.Fatal("unbounded regex scenario accepted")
	}
}
