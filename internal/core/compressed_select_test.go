package core

import (
	"testing"

	"cellmatch/internal/kernel"
	"cellmatch/internal/workload"
)

// TestCompressedSelection pins the compressed rung's place on the
// ladder: under auto it engages exactly when the dense table overflows
// the budget but the compressed rows fit, scanning byte-identically to
// the stt path; Off makes the ladder fall past it; On forces it even
// when the dense table would have fit.
func TestCompressedSelection(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 900, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: pats, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 48 KiB: far under the ~900-state dense table, comfortably over
	// the compressed rows.
	opts := Options{CaseFold: true, Engine: EngineOptions{MaxTableBytes: 48 << 10}}
	m, err := Compile(pats, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Engine != "compressed" || m.EngineName() != "compressed" {
		t.Fatalf("engine = %q / %q, want compressed", st.Engine, m.EngineName())
	}
	if st.CompressedTableBytes <= 0 || st.CompressedTableBytes > 48<<10 {
		t.Fatalf("compressed footprint out of range: %+v", st)
	}
	if st.Stride != 1 {
		t.Fatalf("compressed rung reports stride %d, want 1", st.Stride)
	}

	sttOpts := opts
	sttOpts.Engine.DisableKernel = true
	sttM, err := Compile(pats, sttOpts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sttM.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture traffic has no matches")
	}
	got, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "compressed FindAll", got, want)

	offOpts := opts
	offOpts.Engine.Compressed = CompressedOff
	off, err := Compile(pats, offOpts)
	if err != nil {
		t.Fatal(err)
	}
	if e := off.Stats().Engine; e == "compressed" {
		t.Fatal("CompressedOff still selected the compressed rung")
	}

	on, err := Compile(pats, Options{CaseFold: true, Engine: EngineOptions{Compressed: CompressedOn}})
	if err != nil {
		t.Fatal(err)
	}
	if e := on.Stats().Engine; e != "compressed" {
		t.Fatalf("CompressedOn selected %q (dense fits, but On must force the rung)", e)
	}
	forced, err := on.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "forced compressed FindAll", forced, want)
}

// TestDenseBudgetResolver pins the single-resolver contract: the
// budget Stats reports is kernel.ResolveMaxTableBytes of the option,
// for explicit, zero, and negative MaxTableBytes alike — the kernel's
// admission checks and the reported figure can never disagree.
func TestDenseBudgetResolver(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, kernel.DefaultMaxTableBytes},
		{-5, kernel.DefaultMaxTableBytes},
		{16, 16},
		{12345, 12345},
	} {
		if got := kernel.ResolveMaxTableBytes(tc.in); got != tc.want {
			t.Fatalf("ResolveMaxTableBytes(%d) = %d, want %d", tc.in, got, tc.want)
		}
		m, err := CompileStrings([]string{"virus", "worm"}, Options{
			Engine: EngineOptions{MaxTableBytes: tc.in},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Stats().DenseTableBudget; got != tc.want {
			t.Fatalf("Stats().DenseTableBudget = %d for MaxTableBytes=%d, want %d",
				got, tc.in, tc.want)
		}
	}
}

// TestLadderMonotonicity is the aggregate-footprint admission
// property: every rung admits by comparing its whole resident
// footprint against the same resolved budget, and the ladder tries
// faster rungs first — so growing MaxTableBytes can only move the
// selection toward faster rungs, never slower ones.
func TestLadderMonotonicity(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 900, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{"stt": 0, "sharded": 1, "compressed": 2, "kernel": 3, "stride2": 4}
	budgets := []int{1, 512, 2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10, 2 << 20, 8 << 20}
	last, lastEngine, lastBudget := -1, "", 0
	for _, b := range budgets {
		m, err := Compile(pats, Options{CaseFold: true, Engine: EngineOptions{MaxTableBytes: b}})
		if err != nil {
			t.Fatal(err)
		}
		eng := m.Stats().Engine
		r, ok := rank[eng]
		if !ok {
			t.Fatalf("budget %d selected unknown engine %q", b, eng)
		}
		if r < last {
			t.Fatalf("budget %d selected %q but smaller budget %d selected %q — ladder not monotone",
				b, eng, lastBudget, lastEngine)
		}
		last, lastEngine, lastBudget = r, eng, b
	}
	if last < rank["kernel"] {
		t.Fatalf("8 MiB budget still on %q; sweep never reached the dense rungs", lastEngine)
	}
}

func TestParseCompressed(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CompressedMode
	}{
		{"", CompressedAuto}, {"auto", CompressedAuto},
		{"on", CompressedOn}, {"off", CompressedOff},
	} {
		got, err := ParseCompressed(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseCompressed(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseCompressed("bogus"); err == nil {
		t.Fatal("bogus compressed mode accepted")
	}
}
