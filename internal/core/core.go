// Package core is the library facade over the paper's system: compile
// a dictionary (exact strings or regular expressions) into DFA tiles,
// scan data or streams, and predict Cell-deployment performance.
//
// The zero-configuration path:
//
//	m, err := core.Compile([][]byte{[]byte("virus")}, core.Options{CaseFold: true})
//	matches := m.FindAll(data)
//
// matches every dictionary entry with the paper's alphabet-reduced,
// pointer-encoded Aho-Corasick machinery; EstimateCell and Table1
// expose the performance-model side.
package core

import (
	"fmt"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/cell"
	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/stt"
	"cellmatch/internal/tile"
)

// Match is one dictionary hit: Pattern is the index into the compiled
// dictionary; End is the byte offset just past the last matched byte.
type Match struct {
	Pattern int
	End     int
}

// Options configure compilation.
type Options struct {
	// CaseFold matches case-insensitively (the paper's 32-symbol
	// folding regime).
	CaseFold bool
	// Groups is the parallel width for scanning (tiles scanning
	// distinct input portions). Default 1.
	Groups int
	// MaxStatesPerTile overrides the Figure 3 budget (default 1520,
	// the 16 KB-buffer case).
	MaxStatesPerTile int
	// Version selects the kernel implementation for performance
	// estimation (Table 1; default 4, the optimum).
	Version int
}

// Matcher is a compiled dictionary.
type Matcher struct {
	sys      *compose.System
	opts     Options
	patterns [][]byte
}

// Compile builds a matcher from exact byte-string patterns.
func Compile(patterns [][]byte, opts Options) (*Matcher, error) {
	sys, err := compose.NewSystem(patterns, compose.Config{
		MaxStatesPerTile: opts.MaxStatesPerTile,
		Groups:           opts.Groups,
		CaseFold:         opts.CaseFold,
	})
	if err != nil {
		return nil, err
	}
	cp := make([][]byte, len(patterns))
	for i, p := range patterns {
		cp[i] = append([]byte(nil), p...)
	}
	return &Matcher{sys: sys, opts: opts, patterns: cp}, nil
}

// CompileStrings is Compile for string dictionaries.
func CompileStrings(patterns []string, opts Options) (*Matcher, error) {
	bs := make([][]byte, len(patterns))
	for i, s := range patterns {
		if s == "" {
			return nil, fmt.Errorf("core: pattern %d is empty", i)
		}
		bs[i] = []byte(s)
	}
	return Compile(bs, opts)
}

// FindAll reports every dictionary occurrence in data.
func (m *Matcher) FindAll(data []byte) ([]Match, error) {
	raw, err := m.sys.Scan(data)
	if err != nil {
		return nil, err
	}
	return convertMatches(raw), nil
}

func convertMatches(raw []dfa.Match) []Match {
	out := make([]Match, len(raw))
	for i, r := range raw {
		out[i] = Match{Pattern: int(r.Pattern), End: r.End}
	}
	return out
}

// Count returns the number of occurrences in data.
func (m *Matcher) Count(data []byte) (int, error) {
	return m.sys.CountMatches(data)
}

// Contains reports whether any dictionary entry occurs in data — the
// packet-discard decision of the paper's NIDS scenario.
func (m *Matcher) Contains(data []byte) (bool, error) {
	n, err := m.Count(data)
	return n > 0, err
}

// Pattern returns dictionary entry i.
func (m *Matcher) Pattern(i int) []byte { return m.patterns[i] }

// NumPatterns returns the dictionary size.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Stats describe the compiled artifact.
type Stats struct {
	Patterns      int
	States        int // aggregate across series slots
	SeriesDepth   int
	Groups        int
	TilesRequired int
	STTBytes      int // aggregate encoded table size at width 32
	AlphabetUsed  int
	MaxPatternLen int
}

// Stats reports the compiled matcher's shape.
func (m *Matcher) Stats() Stats {
	s := Stats{
		Patterns:      len(m.patterns),
		States:        m.sys.DictionaryStates(),
		SeriesDepth:   m.sys.Topology.SeriesDepth,
		Groups:        m.sys.Topology.Groups,
		TilesRequired: m.sys.Topology.TotalTiles(),
		AlphabetUsed:  m.sys.Red.Classes,
		MaxPatternLen: m.sys.MaxPatternLen,
	}
	for _, d := range m.sys.Slots {
		if t, err := stt.Encode(d, m.sys.Width, 0); err == nil {
			s.STTBytes += t.SizeBytes()
		}
	}
	return s
}

// System exposes the underlying composed system for advanced use.
func (m *Matcher) System() *compose.System { return m.sys }

// EstimateCell plans the matcher onto a blade and predicts filtering
// throughput for the given traffic volume.
func (m *Matcher) EstimateCell(blade cell.Blade, inputBytes int64) (cell.Estimate, error) {
	d, err := cell.Plan(m.sys, blade, m.opts.Version)
	if err != nil {
		return cell.Estimate{}, err
	}
	return d.Estimate(inputBytes), nil
}

// Table1 regenerates the paper's Table 1 on this matcher's largest
// series slot.
func (m *Matcher) Table1() ([]tile.Table1Row, error) {
	var biggest *dfa.DFA
	for _, d := range m.sys.Slots {
		if biggest == nil || d.NumStates() > biggest.NumStates() {
			biggest = d
		}
	}
	return tile.MeasureTable1(biggest, 16*1024, 1)
}

// CompileRegexSet builds a single-automaton matcher from regular
// expressions (the paper's Section 1 notes dictionaries "expressed as
// a set of regular expressions" compile into one DFA). Matches are
// reported per-expression via acceptance of any; position reporting
// requires exact-string dictionaries.
type RegexSet struct {
	dfas []*dfa.DFA
	red  *alphabet.Reduction
}

// CompileRegexes compiles each expression over the shared reduction.
func CompileRegexes(exprs []string, caseFold bool) (*RegexSet, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("core: no expressions")
	}
	var red *alphabet.Reduction
	if caseFold {
		red = alphabet.CaseFold32()
	} else {
		red = alphabet.Identity()
	}
	rs := &RegexSet{red: red}
	for i, e := range exprs {
		d, err := dfa.CompileRegex(e, red)
		if err != nil {
			return nil, fmt.Errorf("core: expression %d: %w", i, err)
		}
		rs.dfas = append(rs.dfas, d)
	}
	return rs, nil
}

// MatchWhole reports which expressions accept the entire input.
func (r *RegexSet) MatchWhole(data []byte) []int {
	reduced := r.red.Reduce(data)
	var out []int
	for i, d := range r.dfas {
		if d.Accept[d.Run(d.Start, reduced)] {
			out = append(out, i)
		}
	}
	return out
}

// Stream is an incremental scanner: feed data in arbitrary chunk
// sizes; matches carry global offsets. A Stream holds one cursor per
// series slot, so memory is O(dictionary), not O(input).
type Stream struct {
	m      *Matcher
	states []int // per-slot DFA state
	offset int
	found  []Match
}

// NewStream starts an incremental scan.
func (m *Matcher) NewStream() *Stream {
	st := &Stream{m: m, states: make([]int, len(m.sys.Slots))}
	for i, d := range m.sys.Slots {
		st.states[i] = d.Start
	}
	return st
}

// Write consumes the next chunk. It never fails; the error is for
// io.Writer compatibility.
func (s *Stream) Write(p []byte) (int, error) {
	reduced := s.m.sys.Red.Reduce(p)
	for i, d := range s.m.sys.Slots {
		state := s.states[i]
		for pos, c := range reduced {
			state = d.Step(state, c)
			for _, pid := range d.Out[state] {
				s.found = append(s.found, Match{
					Pattern: s.m.sys.SlotPatterns[i][pid],
					End:     s.offset + pos + 1,
				})
			}
		}
		s.states[i] = state
	}
	s.offset += len(p)
	return len(p), nil
}

// Matches returns the hits so far, in feed order per slot. Call after
// the final Write.
func (s *Stream) Matches() []Match { return s.found }

// BytesSeen reports the total volume consumed.
func (s *Stream) BytesSeen() int { return s.offset }
