// Package core is the library facade over the paper's system: compile
// a dictionary (exact strings or regular expressions) into DFA tiles,
// scan data or streams, and predict Cell-deployment performance.
//
// The zero-configuration path:
//
//	m, err := core.Compile([][]byte{[]byte("virus")}, core.Options{CaseFold: true})
//	matches := m.FindAll(data)
//
// matches every dictionary entry with the paper's alphabet-reduced,
// pointer-encoded Aho-Corasick machinery; EstimateCell and Table1
// expose the performance-model side.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/cell"
	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/filter"
	"cellmatch/internal/kernel"
	"cellmatch/internal/stt"
	"cellmatch/internal/tile"
)

// Match is one dictionary hit: Pattern is the index into the compiled
// dictionary; End is the byte offset just past the last matched byte.
type Match struct {
	Pattern int
	End     int
}

// Options configure compilation.
type Options struct {
	// CaseFold matches case-insensitively (the paper's 32-symbol
	// folding regime).
	CaseFold bool
	// Groups is the parallel width for scanning (tiles scanning
	// distinct input portions). Default 1.
	Groups int
	// MaxStatesPerTile overrides the Figure 3 budget (default 1520,
	// the 16 KB-buffer case).
	MaxStatesPerTile int
	// Version selects the kernel implementation for performance
	// estimation (Table 1; default 4, the optimum).
	Version int
	// CompileWorkers bounds the compile-time fan-out across every stage
	// (slot automaton construction, dense/pair table emission, shard
	// compilation): 0 uses one worker per core, 1 pins the sequential
	// build, n caps the pool at n. The compiled matcher is byte-identical
	// at any setting — parallelism only changes wall time. Not persisted
	// in artifacts (it describes the build host, not the matcher).
	CompileWorkers int
	// Engine tunes scan-engine selection (dense compiled kernel vs the
	// stt/dfa fallback path); the zero value enables the kernel with
	// default budgets.
	Engine EngineOptions
}

// EngineOptions select and tune the scan engine behind FindAll,
// FindAllParallel, Stream, and ScanReader.
//
// Selection ladder: stride-2 kernel → dense kernel → compressed-row
// kernel → sharded dense kernels → stt/dfa fallback. A dictionary
// whose dense table fits MaxTableBytes scans on the kernel — with
// 2-byte-stride pair tables layered on top when those also fit the
// budget (see Stride). One that exceeds it first tries the
// compressed-row tier (bitmap rows + popcount rank + default-pointer
// chains, see Compressed): when the compressed footprint stays
// L2-resident the whole dictionary still scans in one cache-hot pass.
// Past that it is partitioned into up to MaxShards sub-dictionaries
// whose kernels each fit the budget (the paper's answer to
// dictionaries outgrowing one SPE's local store: shard the pattern
// set across SPEs, every shard scanning the same stream); only when
// even sharding cannot fit does the matcher fall back to the stt/dfa
// path.
//
// By default the matcher compiles its dictionary into the dense kernel
// of internal/kernel: a cache-line-aligned []uint32 transition table
// per series slot (row width = the reduced alphabet rounded up to a
// power of two, 4 bytes per entry) with the byte→class reduction baked
// into a 256-entry map, scanned either by a single unrolled stream or
// by a K-way interleaved loop — the host-CPU analog of the paper's SPE
// local-store tile fed by multiple buffered streams (Figure 6a), where
// K independent cursors hide the latency of the dependent table loads.
//
// Fallback rules: when the aggregate dense-table size (states × row
// width × 4 bytes, summed over series slots) exceeds MaxTableBytes, or
// DisableKernel is set, the matcher scans with the original
// alphabet-reduce + dfa/stt lookup path instead. The choice is
// reported by Matcher.Stats().Engine ("kernel" or "stt").
type EngineOptions struct {
	// DisableKernel forces the stt/dfa scan path.
	DisableKernel bool
	// MaxTableBytes is the dense-table budget. <=0 means the kernel
	// default (8 MiB).
	MaxTableBytes int
	// InterleaveK fixes the interleaved scan's lane count: 1 forces the
	// single-stream loop, 2..8 force K lanes (each lane scans one chunk
	// of the input, split with MaxPatternLen-1 overlap like the paper's
	// SPE input portions), 0 picks automatically by input size.
	InterleaveK int
	// MaxShards caps how many sub-dictionary kernels the sharded tier
	// may compile when the single dense table exceeds MaxTableBytes:
	// 0 means the kernel default (8, the paper's SPE count per Cell),
	// a negative value disables sharding entirely (over-budget
	// dictionaries go straight to the stt fallback), and values above
	// kernel.MaxShardsLimit (64) are clamped to it — a dictionary
	// needing more shards than that falls back to stt regardless.
	MaxShards int
	// Stride selects how many input bytes one kernel transition
	// consumes. 0 (auto) compiles 2-byte-stride class-pair tables on
	// top of the dense kernel when they fit MaxTableBytes alongside it,
	// the reduced alphabet is small enough
	// (kernel.AutoStride2MaxClasses), and the pair tables are
	// L2-resident (kernel.L2Budget) — the regime where one pair load
	// per two bytes actually beats two 1-byte loads; 1 pins the classic
	// byte-at-a-time kernel; 2 forces pair tables whenever they fit the
	// budget, ignoring both auto gates. Over-budget pair tables always
	// fall back to the 1-byte kernel — never to a lower rung — and
	// output is byte-identical at every stride. The live choice is
	// reported by Stats().Engine ("stride2" vs "kernel").
	Stride int
	// Compressed selects the compressed-row tier (internal/kernel
	// CTable): per-state class bitmaps with popcount rank into packed
	// explicit-transition arrays plus D²FA-style default-pointer
	// chains, fitting 10-100x larger state machines in cache at a few
	// extra ops per byte. CompressedAuto (the zero value) tries the
	// tier when the dense kernel is over budget and admits it when the
	// compressed footprint fits both MaxTableBytes and the L2 budget
	// (past L2 the residency advantage that pays for the extra ops is
	// gone, and the sharded tier below usually wins); CompressedOn
	// forces the tier — even when the dense kernel would fit — bounded
	// only by MaxTableBytes; CompressedOff skips it (the pre-PR-10
	// ladder). Output is byte-identical in every mode; the live choice
	// is reported by Stats().Engine ("compressed").
	Compressed CompressedMode
	// Filter selects the skip-scan front-end (internal/filter): a
	// BNDM-style reverse-suffix window filter built from the
	// dictionary's shortest-pattern prefixes that skips most input
	// bytes and hands only candidate windows to the engine ladder
	// above. The default FilterAuto enables it when the dictionary
	// qualifies (see FilterMode); output is byte-identical either way.
	Filter FilterMode
}

// FilterMode is the EngineOptions.Filter policy for the skip-scan
// front-end — the fourth rung of engine selection, sitting AHEAD of
// the kernel/sharded/stt verifier ladder rather than replacing it.
type FilterMode int

const (
	// FilterAuto (the zero value) enables the filter when it is likely
	// to win: the shortest pattern is at least filterAutoMinLen bytes,
	// the dictionary has at most filterAutoMaxPatterns entries, and
	// the filter's evidence tables stay under filterAutoMaxDensity
	// occupancy (a saturated filter cannot rule windows out and only
	// adds overhead).
	FilterAuto FilterMode = iota
	// FilterOn forces the filter whenever it is legal (shortest
	// pattern >= filter.MinWindow bytes). Dictionaries with a
	// single-byte pattern bypass it silently — there is nothing to
	// skip — and Stats().FilterEnabled reports false.
	FilterOn
	// FilterOff disables the filter: every byte goes through the
	// verifier engine, the pre-filter behavior.
	FilterOff
)

// Auto-enable gates for FilterAuto (see FilterMode).
const (
	filterAutoMinLen      = 4
	filterAutoMaxPatterns = 256
	filterAutoMaxDensity  = 0.75
)

// ParseFilterMode maps the flag vocabulary shared by the CLIs and the
// server ("auto"/"" , "on", "off") onto a FilterMode.
func ParseFilterMode(s string) (FilterMode, error) {
	switch s {
	case "", "auto":
		return FilterAuto, nil
	case "on":
		return FilterOn, nil
	case "off":
		return FilterOff, nil
	}
	return 0, fmt.Errorf("bad filter mode %q (want auto, on, or off)", s)
}

// CompressedMode is the EngineOptions.Compressed policy for the
// compressed-row tier (the ladder rung between the dense kernel and
// the sharded tier).
type CompressedMode int

const (
	// CompressedAuto (the zero value) admits the compressed tier when
	// the dense kernel is over budget and the compressed footprint is
	// L2-resident (and within MaxTableBytes).
	CompressedAuto CompressedMode = iota
	// CompressedOn forces the compressed tier whenever it fits
	// MaxTableBytes, skipping the dense kernel and the L2 auto gate.
	CompressedOn
	// CompressedOff disables the compressed tier: over-budget
	// dictionaries go straight to the sharded/stt rungs.
	CompressedOff
)

// ParseCompressed maps the flag vocabulary shared by the CLIs and the
// server ("auto"/"", "on", "off") onto a CompressedMode.
func ParseCompressed(s string) (CompressedMode, error) {
	switch s {
	case "", "auto":
		return CompressedAuto, nil
	case "on":
		return CompressedOn, nil
	case "off":
		return CompressedOff, nil
	}
	return 0, fmt.Errorf("bad compressed mode %q (want auto, on, or off)", s)
}

// ParseStride maps the flag vocabulary shared by the CLIs and the
// server ("auto"/"", "1", "2") onto an EngineOptions.Stride value.
func ParseStride(s string) (int, error) {
	switch s {
	case "", "auto":
		return 0, nil
	case "1":
		return 1, nil
	case "2":
		return 2, nil
	}
	return 0, fmt.Errorf("bad stride %q (want auto, 1, or 2)", s)
}

// Matcher is a compiled dictionary.
type Matcher struct {
	sys      *compose.System
	opts     Options
	patterns [][]byte
	minLen   int                // shortest dictionary pattern (regex: shortest possible match)
	regex    bool               // dictionary entries are regular expressions
	eng      *kernel.Engine     // nil when the dense kernel is disabled or over budget
	comp     *kernel.Compressed // nil unless the compressed-row tier is live
	sharded  *kernel.Sharded    // nil unless the sharded tier is live
	filter   *filter.Filter     // nil when the skip-scan front-end is off/bypassed

	// windowsSkipped counts window positions the skip-scan front-end
	// never examined, accumulated across every scan (FindAll, parallel,
	// streams). Atomic: serving paths read Stats() concurrently with
	// in-flight scans.
	windowsSkipped atomic.Uint64

	// setFP caches PatternSetFingerprint (patterns are immutable after
	// compile); Once-guarded because serving paths may race the first
	// computation.
	setFPOnce sync.Once
	setFP     [32]byte
}

// Options returns the options the matcher was compiled with — what a
// delta loader needs to recompile an edited dictionary identically.
func (m *Matcher) Options() Options { return m.opts }

// initEngine walks the selection ladder: the single dense kernel, then
// the compressed-row tier, then the sharded multi-kernel engine, then
// the stt/dfa path (m.eng, m.comp, and m.sharded all nil). Budget
// overruns step down the ladder; any other compile failure is a real
// defect and propagates.
func (m *Matcher) initEngine() error {
	if s := m.opts.Engine.Stride; s < 0 || s > 2 {
		return fmt.Errorf("core: bad stride %d (want 0 auto, 1, or 2)", s)
	}
	if cm := m.opts.Engine.Compressed; cm < CompressedAuto || cm > CompressedOff {
		return fmt.Errorf("core: bad compressed mode %d", cm)
	}
	if m.opts.Engine.DisableKernel {
		return nil
	}
	if m.opts.Engine.Compressed != CompressedOn {
		eng, err := kernel.Compile(m.sys, kernel.Options{
			MaxTableBytes: m.opts.Engine.MaxTableBytes,
			InterleaveK:   m.opts.Engine.InterleaveK,
			Stride:        m.opts.Engine.Stride,
			Workers:       m.opts.CompileWorkers,
		})
		if err == nil {
			m.eng = eng
			return nil
		}
		if !errors.Is(err, kernel.ErrBudget) {
			return err
		}
	}
	if err := m.initCompressed(); err != nil {
		return err
	}
	if m.comp != nil {
		return nil
	}
	if m.opts.Engine.MaxShards < 0 {
		return nil // sharding disabled: stt fallback
	}
	if m.regex {
		// The shard planner repartitions literal patterns by trie size;
		// regex dictionaries have no such decomposition, so over-budget
		// ones go straight to the stt fallback. (The compressed tier
		// above compiles from the slot DFAs and serves regex
		// dictionaries fine — this cliff starts below it.)
		return nil
	}
	sh, err := kernel.CompileSharded(m.patterns, kernel.ShardConfig{
		CaseFold:      m.opts.CaseFold,
		MaxTableBytes: m.opts.Engine.MaxTableBytes,
		MaxShards:     m.opts.Engine.MaxShards,
		Workers:       m.opts.CompileWorkers,
	})
	if err == nil {
		m.sharded = sh
		return nil
	}
	if errors.Is(err, kernel.ErrBudget) {
		return nil // cannot shard within constraints: stt fallback
	}
	return err
}

// initCompressed tries the compressed-row tier per
// EngineOptions.Compressed. The hard budget is always the resolved
// MaxTableBytes; CompressedAuto additionally caps it at L2Budget —
// the tier trades extra ops per byte for cache residency, so a
// compressed table that spills past L2 has given up the advantage and
// the sharded tier below is the better fallback. A budget miss leaves
// m.comp nil (the ladder steps down); any other failure propagates.
func (m *Matcher) initCompressed() error {
	if m.opts.Engine.Compressed == CompressedOff {
		return nil
	}
	budget := kernel.ResolveMaxTableBytes(m.opts.Engine.MaxTableBytes)
	if m.opts.Engine.Compressed == CompressedAuto && budget > kernel.L2Budget {
		budget = kernel.L2Budget
	}
	comp, err := kernel.CompileCompressed(m.sys, kernel.Options{
		MaxTableBytes: budget,
		InterleaveK:   m.opts.Engine.InterleaveK,
		Workers:       m.opts.CompileWorkers,
	})
	if err == nil {
		m.comp = comp
		return nil
	}
	if errors.Is(err, kernel.ErrBudget) {
		return nil
	}
	return err
}

// initFilter builds the skip-scan front-end per EngineOptions.Filter.
// Dictionaries the filter cannot serve (shortest pattern a single
// byte) bypass it silently even under FilterOn; FilterAuto
// additionally requires the auto gates to pass. Out-of-range modes
// are rejected here so every compiled matcher's options survive the
// Save/Load round trip (Load enforces the same bound).
func (m *Matcher) initFilter() error {
	mode := m.opts.Engine.Filter
	if mode < FilterAuto || mode > FilterOff {
		return fmt.Errorf("core: bad filter mode %d", mode)
	}
	if mode == FilterOff || m.minLen < filter.MinWindow {
		return nil
	}
	if m.regex {
		// The filter's evidence tables are built from literal pattern
		// prefixes; regular expressions have none, so the front-end is
		// bypassed (silently, like single-byte dictionaries under
		// FilterOn) and every byte goes through the verifier engine.
		return nil
	}
	// The cheap auto gates come before the build so non-qualifying
	// dictionaries (short minimums, large pattern sets) pay nothing.
	if mode == FilterAuto &&
		(m.minLen < filterAutoMinLen || len(m.patterns) > filterAutoMaxPatterns) {
		return nil
	}
	f, err := filter.Build(m.patterns, m.sys.Red)
	if err != nil {
		return err
	}
	if mode == FilterAuto && f.Density() > filterAutoMaxDensity {
		return nil
	}
	m.filter = f
	return nil
}

// Compile builds a matcher from exact byte-string patterns.
func Compile(patterns [][]byte, opts Options) (*Matcher, error) {
	sys, err := compose.NewSystem(patterns, compose.Config{
		MaxStatesPerTile: opts.MaxStatesPerTile,
		Groups:           opts.Groups,
		CaseFold:         opts.CaseFold,
		Workers:          opts.CompileWorkers,
	})
	if err != nil {
		return nil, err
	}
	cp := make([][]byte, len(patterns))
	minLen := 0
	for i, p := range patterns {
		cp[i] = append([]byte(nil), p...)
		if minLen == 0 || len(p) < minLen {
			minLen = len(p)
		}
	}
	m := &Matcher{sys: sys, opts: opts, patterns: cp, minLen: minLen}
	if err := m.initEngine(); err != nil {
		return nil, err
	}
	if err := m.initFilter(); err != nil {
		return nil, err
	}
	return m, nil
}

// CompileRegexSearch builds a matcher from a dictionary of regular
// expressions with full search semantics: a hit is reported at every
// input offset where some substring ending there matches an
// expression, exactly the (End, Pattern) contract of literal
// dictionaries — so the compiled matcher rides the same engine
// machinery (dense kernel, parallel chunking, streams, artifacts) and
// serves through cellmatchd unchanged. Match.Pattern indexes exprs;
// Pattern(i) returns the expression source.
//
// Two restrictions (enforced at compile time) keep the chunk-overlap
// arithmetic exact: no expression may match the empty string, and
// every expression needs a bounded maximum match length — no '*', '+'
// or '{m,}' (use '{m,n}', or RegexSet for whole-input matching of
// unbounded expressions). The sharded tier and the skip-scan filter
// are literal-only and are bypassed: engine selection is kernel → stt.
func CompileRegexSearch(exprs []string, opts Options) (*Matcher, error) {
	minLen, _, err := dfa.RegexDictionaryInfo(exprs)
	if err != nil {
		return nil, err
	}
	sys, err := compose.NewRegexSystem(exprs, compose.Config{
		MaxStatesPerTile: opts.MaxStatesPerTile,
		Groups:           opts.Groups,
		CaseFold:         opts.CaseFold,
		Workers:          opts.CompileWorkers,
	})
	if err != nil {
		return nil, err
	}
	cp := make([][]byte, len(exprs))
	for i, e := range exprs {
		cp[i] = []byte(e)
	}
	m := &Matcher{sys: sys, opts: opts, patterns: cp, minLen: minLen, regex: true}
	if err := m.initEngine(); err != nil {
		return nil, err
	}
	if err := m.initFilter(); err != nil {
		return nil, err
	}
	return m, nil
}

// IsRegex reports whether the dictionary entries are regular
// expressions (compiled by CompileRegexSearch) rather than literal
// byte strings. For regex matchers a match's length is not the
// pattern's source length, so start offsets cannot be derived from
// Pattern(i).
func (m *Matcher) IsRegex() bool { return m.regex }

// CompileStrings is Compile for string dictionaries.
func CompileStrings(patterns []string, opts Options) (*Matcher, error) {
	bs := make([][]byte, len(patterns))
	for i, s := range patterns {
		if s == "" {
			return nil, fmt.Errorf("core: pattern %d is empty", i)
		}
		bs[i] = []byte(s)
	}
	return Compile(bs, opts)
}

// FindAll reports every dictionary occurrence in data. With the
// skip-scan front-end live (EngineOptions.Filter) most input bytes are
// never read: the window filter yields candidate segments and only
// those pass through the verifier engine. Otherwise the scan is a
// single pass over the raw bytes — the dense kernel by default, the
// stt/dfa fallback when disabled or over budget. Every configuration
// produces byte-identical results in the same (End, Pattern) order.
func (m *Matcher) FindAll(data []byte) ([]Match, error) {
	if m.filter != nil {
		return m.findAllFiltered(data, false)
	}
	return m.FindAllUnfiltered(data)
}

// FindAllStride1 is FindAll with the stride-2 pair loops bypassed for
// this request: the verifier engine steps one byte per transition on
// its dense tables. Output is byte-identical to FindAll — the knob is
// the differential-testing and serving-layer opt-out for the stride-2
// rung, mirroring FindAllUnfiltered for the filter rung. On matchers
// without a live stride-2 rung it is exactly FindAll.
func (m *Matcher) FindAllStride1(data []byte) ([]Match, error) {
	if m.eng == nil || m.eng.Stride() != 2 {
		return m.FindAll(data)
	}
	if m.filter != nil {
		return m.findAllFiltered(data, true)
	}
	return convertMatches(m.eng.FindAllStride1(data)), nil
}

// FindAllUnfilteredStride1 combines both per-request opt-outs: no
// skip-scan front-end AND 1-byte kernel stepping. It is the fully
// pinned sequential reference path (what the conformance harness
// compiles explicitly) available on any matcher without recompiling.
func (m *Matcher) FindAllUnfilteredStride1(data []byte) ([]Match, error) {
	if m.eng != nil {
		return convertMatches(m.eng.FindAllStride1(data)), nil
	}
	return m.FindAllUnfiltered(data)
}

// Stride reports the live kernel transition stride: 2 when the
// stride-2 pair tables are up, 1 for the 1-byte kernel, compressed,
// and sharded tiers, 0 when no kernel-family engine is live (stt
// fallback).
func (m *Matcher) Stride() int {
	switch {
	case m.eng != nil:
		return m.eng.Stride()
	case m.comp != nil, m.sharded != nil:
		return 1
	default:
		return 0
	}
}

// FindAllUnfiltered is FindAll with the skip-scan front-end bypassed:
// every byte goes through the verifier engine. It is the reference
// path the filter is differentially tested against, and the per-request
// opt-out the serving layer exposes.
func (m *Matcher) FindAllUnfiltered(data []byte) ([]Match, error) {
	if m.eng != nil {
		return convertMatches(m.eng.FindAll(data)), nil
	}
	if m.comp != nil {
		return convertMatches(m.comp.FindAll(data)), nil
	}
	if m.sharded != nil {
		return convertMatches(m.sharded.FindAll(data)), nil
	}
	raw, err := m.sys.Scan(data)
	if err != nil {
		return nil, err
	}
	return convertMatches(raw), nil
}

// findAllFiltered runs the skip-scan front-end and verifies each
// candidate segment from the verifier's root state. Segments are
// disjoint and ordered and every match lies wholly inside one (the
// filter's containment guarantee), so concatenating the per-segment
// sorted matches reproduces FindAll's global (End, Pattern) order.
func (m *Matcher) findAllFiltered(data []byte, stride1 bool) ([]Match, error) {
	segs, skipped := m.filter.Segments(data)
	m.windowsSkipped.Add(uint64(skipped))
	out := make([]Match, 0)
	for _, sg := range segs {
		ms, err := m.scanSegment(data[sg.Start:sg.End], sg.Start, stride1)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// scanSegment scans one piece from the root state on the live verifier
// engine, returning matches sorted by (End, Pattern) with End offsets
// shifted by base — the verification unit of the filtered paths.
// stride1 pins the kernel to its 1-byte loops for this piece.
func (m *Matcher) scanSegment(piece []byte, base int, stride1 bool) ([]Match, error) {
	switch {
	case m.eng != nil:
		var raw []dfa.Match
		if stride1 {
			raw = m.eng.ScanChunkStride1(piece, base, 0)
		} else {
			raw = m.eng.ScanChunk(piece, base, 0)
		}
		dfa.SortMatches(raw)
		return convertMatches(raw), nil
	case m.comp != nil:
		raw := m.comp.ScanChunk(piece, base, 0)
		dfa.SortMatches(raw)
		return convertMatches(raw), nil
	case m.sharded != nil:
		var raw []dfa.Match
		for sh := 0; sh < m.sharded.Shards(); sh++ {
			raw = append(raw, m.sharded.ScanShardChunk(sh, piece, base, 0)...)
		}
		dfa.SortMatches(raw)
		return convertMatches(raw), nil
	default:
		raw, err := m.sys.Scan(piece)
		if err != nil {
			return nil, err
		}
		for i := range raw {
			raw[i].End += base
		}
		return convertMatches(raw), nil
	}
}

func convertMatches(raw []dfa.Match) []Match {
	out := make([]Match, len(raw))
	for i, r := range raw {
		out[i] = Match{Pattern: int(r.Pattern), End: r.End}
	}
	return out
}

// Count returns the number of occurrences in data. The kernel path
// counts without materializing (or sorting) the match list; with the
// filter live only candidate segments are counted.
func (m *Matcher) Count(data []byte) (int, error) {
	if m.filter == nil {
		return m.countUnfiltered(data)
	}
	segs, skipped := m.filter.Segments(data)
	m.windowsSkipped.Add(uint64(skipped))
	total := 0
	for _, sg := range segs {
		n, err := m.countUnfiltered(data[sg.Start:sg.End])
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

func (m *Matcher) countUnfiltered(data []byte) (int, error) {
	if m.eng != nil {
		return m.eng.Count(data), nil
	}
	if m.comp != nil {
		return m.comp.Count(data), nil
	}
	if m.sharded != nil {
		return m.sharded.Count(data), nil
	}
	return m.sys.CountMatches(data)
}

// Contains reports whether any dictionary entry occurs in data — the
// packet-discard decision of the paper's NIDS scenario.
func (m *Matcher) Contains(data []byte) (bool, error) {
	n, err := m.Count(data)
	return n > 0, err
}

// Pattern returns dictionary entry i.
func (m *Matcher) Pattern(i int) []byte { return m.patterns[i] }

// NumPatterns returns the dictionary size.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Stats describe the compiled artifact: dictionary shape, alphabet
// reduction, and which scan engine is live with its cache residency,
// so callers never need to reach into internal/stt or internal/kernel.
type Stats struct {
	Patterns      int
	States        int // aggregate across series slots
	SeriesDepth   int
	Groups        int
	TilesRequired int
	STTBytes      int // aggregate encoded table size at width 32
	AlphabetUsed  int // distinct reduced symbol classes the dictionary uses
	MaxPatternLen int

	// Regex reports a regular-expression dictionary (CompileRegexSearch):
	// patterns are expression sources, MinPatternLen/MaxPatternLen are
	// match-length bounds, and the sharded/filter rungs are bypassed.
	Regex bool

	// Engine is the live scan engine behind FindAll and friends:
	// "stride2" (the dense kernel with 2-byte-stride class-pair tables
	// layered on top), "kernel" (one dense compiled table set consuming
	// one byte per transition), "compressed" (bitmap rows + popcount
	// rank + default-pointer chains for over-dense-budget
	// dictionaries), "sharded" (the multi-kernel tier: one dense table
	// set per dictionary shard), or "stt" (the reduce + dfa/stt lookup
	// fallback).
	Engine string
	// Stride is the live kernel's bytes-per-transition (2 on the
	// stride-2 rung, 1 on every other kernel tier, 0 on the stt path).
	Stride int
	// KernelTableBytes is the aggregate dense-table footprint across
	// all shards (0 when no kernel tier is live). It does NOT include
	// pair tables; see PairTableBytes.
	KernelTableBytes int
	// PairTableBytes is the aggregate 2-byte-stride pair-table
	// footprint (0 unless Engine == "stride2"). Cache residency on the
	// stride-2 rung is judged on KernelTableBytes + PairTableBytes:
	// the pair tables are the hot loop's working set and the dense
	// tables still serve epilogues, odd tails, and stream carries.
	PairTableBytes int
	// CompressedTableBytes is the compressed-row tier's aggregate
	// footprint — bitmaps, default pointers, offsets, and packed
	// explicit entries (0 unless Engine == "compressed"). Cache
	// residency on that tier is judged on this number.
	CompressedTableBytes int
	// DenseTableBudget is the byte budget the kernel was compiled
	// against — per shard when the sharded tier is live (the fallback
	// threshold either way). Always kernel.ResolveMaxTableBytes of the
	// configured EngineOptions.MaxTableBytes, so it cannot drift from
	// the admission checks inside internal/kernel.
	DenseTableBudget int
	// Shards is the shard count of the sharded tier (0 otherwise).
	Shards int
	// MaxShardTableBytes is the largest single shard's footprint — the
	// cache-residency unit of the sharded tier, since only one shard's
	// tables are hot at a time (0 when not sharded).
	MaxShardTableBytes int
	// TableFitsL1 and TableFitsL2 classify residency of the live
	// kernel tables against typical per-core cache sizes (32 KiB L1d,
	// 1 MiB L2) — the host analog of the paper's local-store budget.
	// For the sharded tier the unit is the largest single shard.
	TableFitsL1 bool
	TableFitsL2 bool

	// MinPatternLen is the shortest dictionary pattern — the window
	// length the skip-scan front-end slides (and the reason it may be
	// bypassed: windows below 2 bytes cannot skip).
	MinPatternLen int
	// FilterEnabled reports whether the skip-scan front-end is live
	// ahead of the verifier engine; FilterWindow is its window length
	// (0 when disabled).
	FilterEnabled bool
	FilterWindow  int
	// WindowsSkipped is the cumulative count of window positions the
	// filter skipped without examining, across every scan this matcher
	// has served — the sublinearity evidence. Read atomically; scans
	// may be in flight. The count is operational, not exact: chunked
	// (parallel) and streamed scans re-filter their bounded overlap /
	// tail regions, whose windows are counted once per view, so the
	// counter can exceed the single-pass window count on such paths.
	WindowsSkipped uint64
}

// Stats reports the compiled matcher's shape.
func (m *Matcher) Stats() Stats {
	s := Stats{
		Patterns:      len(m.patterns),
		States:        m.sys.DictionaryStates(),
		SeriesDepth:   m.sys.Topology.SeriesDepth,
		Groups:        m.sys.Topology.Groups,
		TilesRequired: m.sys.Topology.TotalTiles(),
		AlphabetUsed:  m.sys.Red.Classes,
		MaxPatternLen: m.sys.MaxPatternLen,
		Regex:         m.regex,
	}
	for _, d := range m.sys.Slots {
		if t, err := stt.Encode(d, m.sys.Width, 0); err == nil {
			s.STTBytes += t.SizeBytes()
		}
	}
	s.DenseTableBudget = kernel.ResolveMaxTableBytes(m.opts.Engine.MaxTableBytes)
	s.MinPatternLen = m.minLen
	s.WindowsSkipped = m.windowsSkipped.Load()
	if m.filter != nil {
		s.FilterEnabled = true
		s.FilterWindow = m.filter.Window
	}
	switch {
	case m.eng != nil:
		s.Engine = "kernel"
		s.Stride = 1
		s.KernelTableBytes = m.eng.TableBytes()
		resident := s.KernelTableBytes
		if m.eng.Stride() == 2 {
			s.Engine = "stride2"
			s.Stride = 2
			s.PairTableBytes = m.eng.PairBytes()
			resident += s.PairTableBytes
		}
		s.TableFitsL1 = resident <= kernel.L1DataBudget
		s.TableFitsL2 = resident <= kernel.L2Budget
	case m.comp != nil:
		s.Engine = "compressed"
		s.Stride = 1
		s.CompressedTableBytes = m.comp.TableBytes()
		s.TableFitsL1 = s.CompressedTableBytes <= kernel.L1DataBudget
		s.TableFitsL2 = s.CompressedTableBytes <= kernel.L2Budget
	case m.sharded != nil:
		s.Engine = "sharded"
		s.Stride = 1
		s.KernelTableBytes = m.sharded.TableBytes()
		s.Shards = m.sharded.Shards()
		s.MaxShardTableBytes = m.sharded.MaxShardBytes()
		s.TableFitsL1 = s.MaxShardTableBytes <= kernel.L1DataBudget
		s.TableFitsL2 = s.MaxShardTableBytes <= kernel.L2Budget
	default:
		s.Engine = "stt"
	}
	return s
}

// FilterActive reports whether the skip-scan front-end is live — the
// cheap per-request form for serving paths (Stats re-encodes tables).
func (m *Matcher) FilterActive() bool { return m.filter != nil }

// EngineName reports the live scan engine ("stride2", "kernel",
// "compressed", "sharded", or "stt") without computing full Stats
// (which re-encodes the STT tables) — the cheap per-request form for
// serving paths.
func (m *Matcher) EngineName() string {
	switch {
	case m.eng != nil:
		if m.eng.Stride() == 2 {
			return "stride2"
		}
		return "kernel"
	case m.comp != nil:
		return "compressed"
	case m.sharded != nil:
		return "sharded"
	}
	return "stt"
}

// carryTables flattens the live kernel-family tier's tables (one per
// series slot, across shards when sharded) as carry-scanners, or nil
// on the stt path — the carry-state unit list for incremental scans.
// Dense and compressed tables share the CarryScanner contract, so the
// stream machinery is representation-agnostic.
func (m *Matcher) carryTables() []kernel.CarryScanner {
	switch {
	case m.eng != nil:
		out := make([]kernel.CarryScanner, len(m.eng.Tables))
		for i, t := range m.eng.Tables {
			out[i] = t
		}
		return out
	case m.comp != nil:
		out := make([]kernel.CarryScanner, len(m.comp.Tables))
		for i, t := range m.comp.Tables {
			out[i] = t
		}
		return out
	case m.sharded != nil:
		tables := m.sharded.AllTables()
		out := make([]kernel.CarryScanner, len(tables))
		for i, t := range tables {
			out[i] = t
		}
		return out
	}
	return nil
}

// System exposes the underlying composed system for advanced use.
func (m *Matcher) System() *compose.System { return m.sys }

// EstimateCell plans the matcher onto a blade and predicts filtering
// throughput for the given traffic volume.
func (m *Matcher) EstimateCell(blade cell.Blade, inputBytes int64) (cell.Estimate, error) {
	d, err := cell.Plan(m.sys, blade, m.opts.Version)
	if err != nil {
		return cell.Estimate{}, err
	}
	return d.Estimate(inputBytes), nil
}

// Table1 regenerates the paper's Table 1 on this matcher's largest
// series slot.
func (m *Matcher) Table1() ([]tile.Table1Row, error) {
	var biggest *dfa.DFA
	for _, d := range m.sys.Slots {
		if biggest == nil || d.NumStates() > biggest.NumStates() {
			biggest = d
		}
	}
	return tile.MeasureTable1(biggest, 16*1024, 1)
}

// CompileRegexSet builds a single-automaton matcher from regular
// expressions (the paper's Section 1 notes dictionaries "expressed as
// a set of regular expressions" compile into one DFA). Matches are
// reported per-expression via acceptance of any; position reporting
// requires exact-string dictionaries.
type RegexSet struct {
	dfas []*dfa.DFA
	red  *alphabet.Reduction
}

// CompileRegexes compiles each expression over the shared reduction.
func CompileRegexes(exprs []string, caseFold bool) (*RegexSet, error) {
	if len(exprs) == 0 {
		return nil, fmt.Errorf("core: no expressions")
	}
	var red *alphabet.Reduction
	if caseFold {
		red = alphabet.CaseFold32()
	} else {
		red = alphabet.Identity()
	}
	rs := &RegexSet{red: red}
	for i, e := range exprs {
		d, err := dfa.CompileRegex(e, red)
		if err != nil {
			return nil, fmt.Errorf("core: expression %d: %w", i, err)
		}
		rs.dfas = append(rs.dfas, d)
	}
	return rs, nil
}

// MatchWhole reports which expressions accept the entire input.
func (r *RegexSet) MatchWhole(data []byte) []int {
	reduced := r.red.Reduce(data)
	var out []int
	for i, d := range r.dfas {
		if d.Accept[d.Run(d.Start, reduced)] {
			out = append(out, i)
		}
	}
	return out
}

// Stream is an incremental scanner: feed data in arbitrary chunk
// sizes; matches carry global offsets. A Stream holds one cursor per
// series slot (or, with the skip-scan front-end live, the last
// MaxPatternLen-1 bytes), so memory is O(dictionary), not O(input).
type Stream struct {
	m      *Matcher
	states []int                 // per-slot DFA state (stt/dfa path)
	tables []kernel.CarryScanner // flattened kernel-family tables (kernel/compressed/sharded path)
	rows   []uint32              // per-table encoded carry row (kernel/compressed/sharded path)

	// Filtered mode: the window filter needs whole windows, so the
	// stream carries the previous chunks' tail (MaxPatternLen-1 bytes)
	// and rescans it with each Write — partial windows straddling a
	// cut re-form in the next Write's view, and matches ending inside
	// the carried tail were reported by the previous Write and are
	// deduplicated, exactly like a parallel chunk's overlap prefix.
	filt *filter.Filter
	tail []byte
	buf  []byte // scratch: tail + incoming chunk

	offset int
	found  []Match
}

// NewStream starts an incremental scan.
func (m *Matcher) NewStream() *Stream {
	st := &Stream{m: m}
	if m.filter != nil {
		st.filt = m.filter
		return st
	}
	if tables := m.carryTables(); tables != nil {
		st.tables = tables
		st.rows = make([]uint32, len(tables))
		for i, t := range tables {
			st.rows[i] = t.StartRow()
		}
		return st
	}
	st.states = make([]int, len(m.sys.Slots))
	for i, d := range m.sys.Slots {
		st.states[i] = d.Start
	}
	return st
}

// writeFiltered is Write on the skip-scan path: filter the carried
// tail plus the new chunk, verify candidate segments from the root,
// and drop matches ending inside the tail (already reported).
func (s *Stream) writeFiltered(p []byte) (int, error) {
	s.buf = append(append(s.buf[:0], s.tail...), p...)
	text := s.buf
	segs, skipped := s.filt.Segments(text)
	s.m.windowsSkipped.Add(uint64(skipped))
	dedupe := len(s.tail)
	base := s.offset - dedupe
	for _, sg := range segs {
		ms, err := s.m.scanSegment(text[sg.Start:sg.End], sg.Start, false)
		if err != nil {
			return 0, err
		}
		for _, mt := range ms {
			if mt.End <= dedupe {
				continue // reported by the previous Write
			}
			mt.End += base
			s.found = append(s.found, mt)
		}
	}
	s.offset += len(p)
	keep := s.m.sys.MaxPatternLen - 1
	if keep > len(text) {
		keep = len(text)
	}
	s.tail = append(s.tail[:0], text[len(text)-keep:]...)
	return len(p), nil
}

// Write consumes the next chunk. It never fails on the unfiltered
// paths; the error satisfies io.Writer.
func (s *Stream) Write(p []byte) (int, error) {
	if s.filt != nil {
		return s.writeFiltered(p)
	}
	if s.tables != nil {
		for i, t := range s.tables {
			s.rows[i] = t.ScanCarry(p, s.rows[i], func(pid int32, end int) {
				s.found = append(s.found, Match{Pattern: int(pid), End: s.offset + end})
			})
		}
		s.offset += len(p)
		return len(p), nil
	}
	reduced := s.m.sys.Red.Reduce(p)
	for i, d := range s.m.sys.Slots {
		state := s.states[i]
		for pos, c := range reduced {
			state = d.Step(state, c)
			for _, pid := range d.Out[state] {
				s.found = append(s.found, Match{
					Pattern: s.m.sys.SlotPatterns[i][pid],
					End:     s.offset + pos + 1,
				})
			}
		}
		s.states[i] = state
	}
	s.offset += len(p)
	return len(p), nil
}

// Matches returns the hits so far, in feed order per slot. Call after
// the final Write.
func (s *Stream) Matches() []Match { return s.found }

// BytesSeen reports the total volume consumed.
func (s *Stream) BytesSeen() int { return s.offset }
