package core

import (
	"sort"
	"testing"

	"cellmatch/internal/cell"
)

func TestCompileAndFindAll(t *testing.T) {
	m, err := CompileStrings([]string{"virus", "worm"}, Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.FindAll([]byte("a VIRUS, a worm, a Virus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("matches = %v", ms)
	}
	if ms[0].Pattern != 0 || ms[0].End != 7 {
		t.Fatalf("first match %+v", ms[0])
	}
}

func TestCountAndContains(t *testing.T) {
	m, err := CompileStrings([]string{"ab"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Count([]byte("abxab"))
	if err != nil || n != 2 {
		t.Fatalf("count = %d (%v)", n, err)
	}
	ok, err := m.Contains([]byte("xxabyy"))
	if err != nil || !ok {
		t.Fatal("contains should be true")
	}
	ok, err = m.Contains([]byte("xxyy"))
	if err != nil || ok {
		t.Fatal("contains should be false")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileStrings(nil, Options{}); err == nil {
		t.Fatal("empty dictionary accepted")
	}
	if _, err := CompileStrings([]string{""}, Options{}); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestStatsShape(t *testing.T) {
	m, err := CompileStrings([]string{"alpha", "beta", "gamma"}, Options{Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Patterns != 3 || s.Groups != 2 || s.SeriesDepth != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.States < 10 || s.STTBytes != s.States*128 {
		t.Fatalf("states/STT: %+v", s)
	}
	if s.MaxPatternLen != 5 {
		t.Fatalf("max pattern len = %d", s.MaxPatternLen)
	}
	if m.NumPatterns() != 3 || string(m.Pattern(1)) != "beta" {
		t.Fatal("pattern accessors")
	}
}

func TestEstimateCellHeadline(t *testing.T) {
	m, err := CompileStrings([]string{"attack", "exploit"}, Options{Groups: 2, CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateCell(cell.DefaultBlade(), 8*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	if est.SimulatedGbps < 10 {
		t.Fatalf("2-group estimate = %.2f Gbps, want >= 10 (paper headline)", est.SimulatedGbps)
	}
}

func TestTable1ThroughFacade(t *testing.T) {
	m, err := CompileStrings([]string{"signature"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := m.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[3].Version != 4 {
		t.Fatalf("table shape: %d rows", len(rows))
	}
}

func TestRegexSet(t *testing.T) {
	rs, err := CompileRegexes([]string{"ab*c", "x[0-9]+"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.MatchWhole([]byte("abbbc")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("match = %v", got)
	}
	if got := rs.MatchWhole([]byte("x123")); len(got) != 1 || got[0] != 1 {
		t.Fatalf("match = %v", got)
	}
	if got := rs.MatchWhole([]byte("nope")); got != nil {
		t.Fatalf("match = %v", got)
	}
	if _, err := CompileRegexes([]string{"("}, false); err == nil {
		t.Fatal("bad regex accepted")
	}
	if _, err := CompileRegexes(nil, false); err == nil {
		t.Fatal("no expressions accepted")
	}
}

func TestRegexSetCaseFold(t *testing.T) {
	rs, err := CompileRegexes([]string{"virus"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.MatchWhole([]byte("VIRUS")); len(got) != 1 {
		t.Fatal("case folding lost")
	}
}

func TestStreamMatchesBatch(t *testing.T) {
	dict := []string{"needle", "edl"}
	m, err := CompileStrings(dict, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("haystack needle haystack needle end")
	batch, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	// Feed in awkward chunk sizes.
	for _, chunk := range []int{1, 3, 7, 1000} {
		s := m.NewStream()
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			if _, err := s.Write(data[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		got := s.Matches()
		sortMatches(got)
		want := append([]Match(nil), batch...)
		sortMatches(want)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d vs %d matches", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: match %d: %+v vs %+v", chunk, i, got[i], want[i])
			}
		}
		if s.BytesSeen() != len(data) {
			t.Fatalf("bytes seen = %d", s.BytesSeen())
		}
	}
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Pattern < ms[j].Pattern
	})
}

func TestStreamAcrossChunkBoundaryMatch(t *testing.T) {
	m, err := CompileStrings([]string{"boundary"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewStream()
	s.Write([]byte("xxxboun"))
	s.Write([]byte("daryxxx"))
	ms := s.Matches()
	if len(ms) != 1 || ms[0].End != 11 {
		t.Fatalf("straddling match = %v", ms)
	}
}
