// Incremental recompilation: patch a compiled matcher into a new
// dictionary instead of rebuilding it from scratch. The delta path is
// memoized recompilation — the cheap deterministic planning (alphabet
// reduction, partitioning, shard planning) re-runs in full, and every
// expensive compiled unit (slot automaton, dense table, shard engine)
// is reused from the previous matcher whenever its content fingerprint
// proves it unchanged. Reused units are the previous build's immutable
// values and rebuilt ones run the exact cold-path construction, so the
// patched matcher is byte-identical (Save image and engine tables) to
// a cold Compile of the new dictionary — the invariant the golden
// fixtures and FuzzIncrementalCompile enforce.
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/kernel"
)

// DeltaStats account for one incremental recompile: how much of the
// previous matcher survived. Slots are compose-tier automata, shards
// are sharded-tier engines; a matcher that lands on the single-kernel
// or stt rung reports zero shards either way.
type DeltaStats struct {
	SlotsReused   int
	SlotsRebuilt  int
	ShardsReused  int
	ShardsRebuilt int
}

// Reused reports whether anything at all was patched rather than
// rebuilt — the "was this actually incremental" signal for /stats.
func (d DeltaStats) Reused() bool { return d.SlotsReused > 0 || d.ShardsReused > 0 }

// RecompileDelta compiles newPatterns into a matcher, reusing every
// compiled unit of m whose content is unchanged. The receiver is not
// modified and stays fully serviceable — the serving layer swaps the
// returned matcher in atomically (registry RCU) while scans drain on
// the old one. Regex matchers have no incremental decomposition (one
// trial compile feeds the partitioner) and rebuild cold.
//
// The result is byte-identical to Compile(newPatterns, m.Options()):
// reuse is keyed on content fingerprints plus global pattern ids, and
// everything not provably unchanged re-runs the cold construction.
func (m *Matcher) RecompileDelta(newPatterns [][]byte) (*Matcher, *DeltaStats, error) {
	ds := &DeltaStats{}
	if m.regex {
		exprs := make([]string, len(newPatterns))
		for i, p := range newPatterns {
			exprs[i] = string(p)
		}
		m2, err := CompileRegexSearch(exprs, m.opts)
		if err != nil {
			return nil, nil, err
		}
		ds.SlotsRebuilt = len(m2.sys.Slots)
		return m2, ds, nil
	}
	sys, reused, err := compose.NewSystemDelta(newPatterns, compose.Config{
		MaxStatesPerTile: m.opts.MaxStatesPerTile,
		Groups:           m.opts.Groups,
		CaseFold:         m.opts.CaseFold,
		Workers:          m.opts.CompileWorkers,
	}, m.sys, m.patterns)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range reused {
		if r {
			ds.SlotsReused++
		} else {
			ds.SlotsRebuilt++
		}
	}
	cp := make([][]byte, len(newPatterns))
	minLen := 0
	for i, p := range newPatterns {
		cp[i] = append([]byte(nil), p...)
		if minLen == 0 || len(p) < minLen {
			minLen = len(p)
		}
	}
	m2 := &Matcher{sys: sys, opts: m.opts, patterns: cp, minLen: minLen}
	if err := m2.initEngineDelta(m, reused, ds); err != nil {
		return nil, nil, err
	}
	if err := m2.initFilter(); err != nil {
		return nil, nil, err
	}
	return m2, ds, nil
}

// initEngineDelta is initEngine with per-unit reuse from prev: dense
// tables whose slot automaton AND global pattern ids are unchanged are
// adopted from prev's kernel engine, and sharded compiles hand prev's
// shard engines to the fingerprint-keyed delta path. The selection
// ladder (kernel -> compressed -> sharded -> stt) is identical to the
// cold build; the compressed tier compiles cold (its build is cheap
// and deterministic, so byte-identity with the cold compile holds
// without a reuse path).
func (m *Matcher) initEngineDelta(prev *Matcher, reused []bool, ds *DeltaStats) error {
	if s := m.opts.Engine.Stride; s < 0 || s > 2 {
		return fmt.Errorf("core: bad stride %d (want 0 auto, 1, or 2)", s)
	}
	if cm := m.opts.Engine.Compressed; cm < CompressedAuto || cm > CompressedOff {
		return fmt.Errorf("core: bad compressed mode %d", cm)
	}
	if m.opts.Engine.DisableKernel {
		return nil
	}
	var prebuilt []*kernel.Table
	if prev.eng != nil && len(prev.eng.Tables) == len(prev.sys.Slots) {
		oldSlot := make(map[*dfa.DFA]int, len(prev.sys.Slots))
		for j, d := range prev.sys.Slots {
			if _, dup := oldSlot[d]; !dup {
				oldSlot[d] = j
			}
		}
		prebuilt = make([]*kernel.Table, len(m.sys.Slots))
		for i, d := range m.sys.Slots {
			if !reused[i] {
				continue
			}
			j, ok := oldSlot[d]
			if !ok {
				continue
			}
			// A reused automaton is content-identical, but the table also
			// bakes global pattern ids into its out sets — an insert that
			// shifted later ids invalidates the table even though the
			// automaton survived.
			if !intsEqual(m.sys.SlotPatterns[i], prev.sys.SlotPatterns[j]) {
				continue
			}
			prebuilt[i] = prev.eng.Tables[j]
		}
	}
	if m.opts.Engine.Compressed != CompressedOn {
		eng, err := kernel.CompileReusing(m.sys, kernel.Options{
			MaxTableBytes: m.opts.Engine.MaxTableBytes,
			InterleaveK:   m.opts.Engine.InterleaveK,
			Stride:        m.opts.Engine.Stride,
			Workers:       m.opts.CompileWorkers,
		}, prebuilt)
		if err == nil {
			m.eng = eng
			return nil
		}
		if !errors.Is(err, kernel.ErrBudget) {
			return err
		}
	}
	if err := m.initCompressed(); err != nil {
		return err
	}
	if m.comp != nil {
		return nil
	}
	if m.opts.Engine.MaxShards < 0 {
		return nil // sharding disabled: stt fallback
	}
	sh, shReused, err := kernel.CompileShardedDelta(m.patterns, kernel.ShardConfig{
		CaseFold:      m.opts.CaseFold,
		MaxTableBytes: m.opts.Engine.MaxTableBytes,
		MaxShards:     m.opts.Engine.MaxShards,
		Workers:       m.opts.CompileWorkers,
	}, prev.sharded, prev.patterns)
	if err == nil {
		m.sharded = sh
		for _, r := range shReused {
			if r {
				ds.ShardsReused++
			} else {
				ds.ShardsRebuilt++
			}
		}
		return nil
	}
	if errors.Is(err, kernel.ErrBudget) {
		return nil // cannot shard within constraints: stt fallback
	}
	return err
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// AddPatterns returns a matcher for the dictionary with add appended
// (in order, after the existing entries, so existing pattern ids are
// stable) — the append fast path of the delta compiler, where only the
// partitioner's final group and the genuinely new groups rebuild.
func (m *Matcher) AddPatterns(add [][]byte) (*Matcher, *DeltaStats, error) {
	if len(add) == 0 {
		return nil, nil, fmt.Errorf("core: AddPatterns with no patterns")
	}
	next := make([][]byte, 0, len(m.patterns)+len(add))
	next = append(next, m.patterns...)
	next = append(next, add...)
	return m.RecompileDelta(next)
}

// RemovePatterns returns a matcher for the dictionary with the given
// pattern indices removed. Surviving patterns keep their relative
// order but ids above a removed index shift down — match streams from
// the new matcher speak the NEW ids, so callers holding old ids must
// re-resolve them (Pattern(i) on the new matcher). Unit reuse is
// content-keyed, so slots composed purely of surviving patterns at
// unchanged ids are still patched, not rebuilt.
func (m *Matcher) RemovePatterns(indices []int) (*Matcher, *DeltaStats, error) {
	if len(indices) == 0 {
		return nil, nil, fmt.Errorf("core: RemovePatterns with no indices")
	}
	drop := make(map[int]bool, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(m.patterns) {
			return nil, nil, fmt.Errorf("core: RemovePatterns index %d out of range [0,%d)", i, len(m.patterns))
		}
		drop[i] = true
	}
	next := make([][]byte, 0, len(m.patterns)-len(drop))
	for i, p := range m.patterns {
		if !drop[i] {
			next = append(next, p)
		}
	}
	if len(next) == 0 {
		return nil, nil, fmt.Errorf("core: RemovePatterns would empty the dictionary")
	}
	return m.RecompileDelta(next)
}

// PatternSetFingerprint hashes a dictionary as a multiset: per-pattern
// SHA-256 digests, sorted, then hashed together. Two dictionaries with
// the same patterns in any order (duplicates counted) share a
// fingerprint — the reload short-circuit key for watchers that must
// not rebuild when a file was merely rewritten in a different order.
func PatternSetFingerprint(patterns [][]byte) [32]byte {
	digests := make([][32]byte, len(patterns))
	var lenBuf [binary.MaxVarintLen64]byte
	for i, p := range patterns {
		h := sha256.New()
		n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:n])
		h.Write(p)
		h.Sum(digests[i][:0])
	}
	sort.Slice(digests, func(i, j int) bool {
		return string(digests[i][:]) < string(digests[j][:])
	})
	h := sha256.New()
	for i := range digests {
		h.Write(digests[i][:])
	}
	var fp [32]byte
	h.Sum(fp[:0])
	return fp
}

// PatternSetFingerprint returns the matcher's dictionary fingerprint
// (see the free function), computed once and cached — patterns are
// immutable after compile.
func (m *Matcher) PatternSetFingerprint() [32]byte {
	m.setFPOnce.Do(func() {
		m.setFP = PatternSetFingerprint(m.patterns)
	})
	return m.setFP
}
