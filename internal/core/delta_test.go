package core

import (
	"bytes"
	"strings"
	"testing"
)

// matcherImage serializes everything observable about a compiled
// matcher: the Save artifact plus the live engine's table images. Two
// matchers with equal images are indistinguishable — the byte-identity
// witness for the delta compiler.
func matcherImage(t *testing.T, m *Matcher) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	switch {
	case m.eng != nil:
		for _, tab := range m.eng.Tables {
			buf.Write(tab.Bytes())
		}
	case m.sharded != nil:
		buf.Write(m.sharded.Bytes())
	}
	return buf.Bytes()
}

// assertDeltaIdentical proves a delta recompile against prev matches a
// cold compile of the new dictionary bit for bit, and cross-checks a
// scan. Returns the delta stats for tier-specific assertions.
func assertDeltaIdentical(t *testing.T, ctx string, prev *Matcher, newPats [][]byte, data []byte) *DeltaStats {
	t.Helper()
	cold, err := Compile(newPats, prev.Options())
	if err != nil {
		t.Fatalf("%s: cold compile: %v", ctx, err)
	}
	delta, ds, err := prev.RecompileDelta(newPats)
	if err != nil {
		t.Fatalf("%s: delta compile: %v", ctx, err)
	}
	if !bytes.Equal(matcherImage(t, delta), matcherImage(t, cold)) {
		t.Fatalf("%s: delta image differs from cold compile", ctx)
	}
	if delta.EngineName() != cold.EngineName() {
		t.Fatalf("%s: delta engine %q, cold %q", ctx, delta.EngineName(), cold.EngineName())
	}
	want, err := cold.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
	return ds
}

func deltaCoreDict(n int, seed uint32) [][]byte {
	x := seed | 1
	out := make([][]byte, n)
	for i := range out {
		l := 4 + int(x%7)
		p := make([]byte, l)
		for j := range p {
			x = x*1664525 + 1013904223
			p[j] = 'a' + byte((x>>16)%11)
		}
		out[i] = p
	}
	return out
}

func TestRecompileDeltaKernelTier(t *testing.T) {
	opts := Options{Engine: EngineOptions{Filter: FilterOff, Stride: 1}}
	pats := deltaCoreDict(300, 5)
	prev, err := Compile(pats, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prev.EngineName() != "kernel" {
		t.Fatalf("fixture landed on %q", prev.EngineName())
	}
	newPats := append(append([][]byte{}, pats...), deltaCoreDict(10, 77)...)
	data := bytes.Repeat(append([]byte("x"), newPats[3]...), 50)
	ds := assertDeltaIdentical(t, "kernel append", prev, newPats, data)
	if ds.SlotsReused == 0 {
		t.Fatalf("append reused no slots: %+v", ds)
	}
}

func TestRecompileDeltaStride2Tier(t *testing.T) {
	opts := Options{Engine: EngineOptions{Filter: FilterOff, Stride: 2}}
	pats := [][]byte{[]byte("virus"), []byte("worm"), []byte("trojan")}
	prev, err := Compile(pats, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prev.EngineName() != "stride2" {
		t.Fatalf("fixture landed on %q", prev.EngineName())
	}
	newPats := append(append([][]byte{}, pats...), []byte("rootkit"))
	data := []byte(strings.Repeat("xvirusxrootkitxworm", 40))
	assertDeltaIdentical(t, "stride2 append", prev, newPats, data)
}

func TestRecompileDeltaShardedTier(t *testing.T) {
	// A small per-shard budget pushes the dictionary onto the sharded
	// tier (mirrors sharded_test fixtures).
	opts := Options{Engine: EngineOptions{Filter: FilterOff, Stride: 1, MaxTableBytes: 4096}}
	pats := deltaCoreDict(400, 9)
	prev, err := Compile(pats, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prev.EngineName() != "sharded" {
		t.Skipf("fixture landed on %q, want sharded", prev.EngineName())
	}
	newPats := append(append([][]byte{}, pats...), deltaCoreDict(6, 123)...)
	data := bytes.Repeat(append([]byte("q"), newPats[7]...), 40)
	ds := assertDeltaIdentical(t, "sharded append", prev, newPats, data)
	if ds.ShardsReused == 0 {
		t.Fatalf("sharded append reused no shards: %+v", ds)
	}
}

func TestRecompileDeltaSTTAndFilterTiers(t *testing.T) {
	// stt: kernel disabled outright.
	opts := Options{Engine: EngineOptions{DisableKernel: true, Filter: FilterOff}}
	pats := deltaCoreDict(100, 21)
	prev, err := Compile(pats, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prev.EngineName() != "stt" {
		t.Fatalf("fixture landed on %q", prev.EngineName())
	}
	newPats := append(append([][]byte{}, pats...), []byte("gggggg"))
	assertDeltaIdentical(t, "stt append", prev, newPats, []byte(strings.Repeat("gggggg-", 30)))

	// filter: qualifying dictionary with the skip-scan front-end forced
	// on; the filter itself always rebuilds (it is cheap) but the
	// verifier engine underneath must still patch.
	fopts := Options{Engine: EngineOptions{Filter: FilterOn, Stride: 1}}
	fpats := [][]byte{[]byte("signature"), []byte("malware"), []byte("heuristic")}
	fprev, err := Compile(fpats, fopts)
	if err != nil {
		t.Fatal(err)
	}
	if !fprev.FilterActive() {
		t.Fatal("filter fixture has no live filter")
	}
	fnew := append(append([][]byte{}, fpats...), []byte("quarantine"))
	assertDeltaIdentical(t, "filter append", fprev, fnew, []byte(strings.Repeat("xxmalwarexxquarantinexx", 25)))
}

func TestAddRemovePatterns(t *testing.T) {
	// A small tile budget forces several slots so an append leaves
	// reusable prefix slots behind.
	pats := deltaCoreDict(120, 31)
	prev, err := Compile(pats, Options{MaxStatesPerTile: 150, Engine: EngineOptions{Filter: FilterOff}})
	if err != nil {
		t.Fatal(err)
	}
	// Stay inside the fixture's byte alphabet ('a'..'k'): a new byte
	// class would change the reduction and force a cold rebuild.
	added, ds, err := prev.AddPatterns([][]byte{[]byte("kjihg"), []byte("aacca")})
	if err != nil {
		t.Fatal(err)
	}
	if added.NumPatterns() != len(pats)+2 {
		t.Fatalf("AddPatterns count %d", added.NumPatterns())
	}
	if ds.SlotsReused == 0 {
		t.Fatalf("AddPatterns reused nothing: %+v", ds)
	}
	// Existing ids must be stable under append.
	for i := range pats {
		if !bytes.Equal(added.Pattern(i), pats[i]) {
			t.Fatalf("pattern %d moved under AddPatterns", i)
		}
	}

	removed, _, err := added.RemovePatterns([]int{0, added.NumPatterns() - 1})
	if err != nil {
		t.Fatal(err)
	}
	if removed.NumPatterns() != added.NumPatterns()-2 {
		t.Fatalf("RemovePatterns count %d", removed.NumPatterns())
	}
	// Id renumbering: the old pattern 1 is the new pattern 0.
	if !bytes.Equal(removed.Pattern(0), added.Pattern(1)) {
		t.Fatal("RemovePatterns did not shift ids down")
	}
	// Removal result must equal a cold compile of the surviving list.
	survivors := make([][]byte, 0, removed.NumPatterns())
	for i := 1; i < added.NumPatterns()-1; i++ {
		survivors = append(survivors, added.Pattern(i))
	}
	cold, err := Compile(survivors, prev.Options())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(matcherImage(t, removed), matcherImage(t, cold)) {
		t.Fatal("RemovePatterns image differs from cold compile")
	}

	if _, _, err := prev.AddPatterns(nil); err == nil {
		t.Fatal("empty AddPatterns accepted")
	}
	if _, _, err := prev.RemovePatterns([]int{-1}); err == nil {
		t.Fatal("out-of-range RemovePatterns accepted")
	}
	all := make([]int, prev.NumPatterns())
	for i := range all {
		all[i] = i
	}
	if _, _, err := prev.RemovePatterns(all); err == nil {
		t.Fatal("emptying RemovePatterns accepted")
	}
}

func TestRecompileDeltaRegexRebuildsCold(t *testing.T) {
	prev, err := CompileRegexSearch([]string{"abc", "a[xy]{1,2}z"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	next := [][]byte{[]byte("abc"), []byte("a[xy]{1,2}z"), []byte("q{2,3}")}
	delta, ds, err := prev.RecompileDelta(next)
	if err != nil {
		t.Fatal(err)
	}
	if ds.SlotsReused != 0 {
		t.Fatalf("regex delta claims reuse: %+v", ds)
	}
	if !delta.IsRegex() {
		t.Fatal("regex delta lost regex mode")
	}
	got, err := delta.FindAll([]byte("xxabcxxqqzz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("regex delta matcher finds nothing")
	}
}

func TestPatternSetFingerprint(t *testing.T) {
	a := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	b := [][]byte{[]byte("three"), []byte("one"), []byte("two")}
	if PatternSetFingerprint(a) != PatternSetFingerprint(b) {
		t.Fatal("order must not change the set fingerprint")
	}
	c := [][]byte{[]byte("one"), []byte("two")}
	if PatternSetFingerprint(a) == PatternSetFingerprint(c) {
		t.Fatal("different sets share a fingerprint")
	}
	// Duplicates are counted: {x,x} != {x}.
	d1 := [][]byte{[]byte("x"), []byte("x")}
	d2 := [][]byte{[]byte("x")}
	if PatternSetFingerprint(d1) == PatternSetFingerprint(d2) {
		t.Fatal("multiset multiplicity ignored")
	}
	// Framing: {"ab","c"} != {"a","bc"}.
	f1 := [][]byte{[]byte("ab"), []byte("c")}
	f2 := [][]byte{[]byte("a"), []byte("bc")}
	if PatternSetFingerprint(f1) == PatternSetFingerprint(f2) {
		t.Fatal("length framing missing")
	}
	m, err := Compile(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.PatternSetFingerprint() != PatternSetFingerprint(a) {
		t.Fatal("matcher fingerprint disagrees with free function")
	}
}

func TestDeltaStatsReused(t *testing.T) {
	if (DeltaStats{}).Reused() {
		t.Fatal("empty stats report reuse")
	}
	if !(DeltaStats{SlotsReused: 1}).Reused() {
		t.Fatal("slot reuse not reported")
	}
	if !(DeltaStats{ShardsReused: 2}).Reused() {
		t.Fatal("shard reuse not reported")
	}
}

// A DisableKernel matcher has no engine to patch; the delta path must
// still produce a correct (stt-tier) matcher.
func TestRecompileDeltaDisableKernel(t *testing.T) {
	opts := Options{Engine: EngineOptions{DisableKernel: true}}
	m, err := CompileStrings([]string{"alpha", "beta"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := m.RecompileDelta([][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := CompileStrings([]string{"alpha", "beta", "gamma"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := m2.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := cold.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("kernel-less delta image differs from cold compile")
	}
}
