package core

import (
	"bytes"
	"strings"
	"testing"
)

// engineMatchers compiles the same dictionary twice: once with the
// dense kernel (Stride pinned to 1 so these suites keep exercising
// the 1-byte loops; the stride-2 rung has its own equivalence matrix)
// and once forced onto the stt/dfa path. The skip-scan front-end is
// pinned off so these suites keep exercising the raw engine loops
// (the filter has its own equivalence matrix).
func engineMatchers(t *testing.T, patterns []string, caseFold bool) (kernelM, sttM *Matcher) {
	t.Helper()
	opts := Options{CaseFold: caseFold, Engine: EngineOptions{Filter: FilterOff, Stride: 1}}
	kernelM, err := CompileStrings(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	if kernelM.Stats().Engine != "kernel" {
		t.Fatal("default compile did not select the kernel engine")
	}
	opts.Engine.DisableKernel = true
	sttM, err = CompileStrings(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sttM.Stats().Engine != "stt" {
		t.Fatal("DisableKernel did not select the stt engine")
	}
	return kernelM, sttM
}

func assertSameMatches(t *testing.T, ctx string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d is %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestKernelSplitPointEquivalence drives the K-way interleaved loop
// through every chunk split point: for every input prefix length the
// interleave boundaries land on different bytes, and for every K the
// kernel must agree with the stt path exactly. Runs clean under -race
// (the interleaved loop is single-goroutine by construction).
func TestKernelSplitPointEquivalence(t *testing.T) {
	dict := []string{"abra", "abracadabra", "cadab", "ra r"}
	data := []byte(strings.Repeat("abracadabra rabcad ", 10))
	kernelM, sttM := engineMatchers(t, dict, false)
	lanes := make([]*Matcher, 9)
	for k := 1; k <= 8; k++ {
		m, err := CompileStrings(dict, Options{Engine: EngineOptions{InterleaveK: k, Filter: FilterOff, Stride: 1}})
		if err != nil {
			t.Fatal(err)
		}
		lanes[k] = m
	}
	for n := 0; n <= len(data); n++ {
		prefix := data[:n]
		want, err := sttM.FindAll(prefix)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 8; k++ {
			got, err := lanes[k].FindAll(prefix)
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, "interleaved", got, want)
		}
		got, err := kernelM.FindAll(prefix)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "auto", got, want)
	}
}

// The parallel engine with the kernel underneath must agree at every
// chunk size, i.e. with the worker split point on every byte.
func TestKernelParallelSplitPoints(t *testing.T) {
	dict := []string{"abra", "abracadabra", "dabr"}
	data := []byte(strings.Repeat("abracadabra ", 12))
	kernelM, sttM := engineMatchers(t, dict, false)
	want, err := sttM.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test data has no matches")
	}
	for chunk := 1; chunk <= len(data); chunk++ {
		got, err := kernelM.FindAllParallel(data, ParallelOptions{Workers: 3, ChunkBytes: chunk})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "parallel", got, want)
		streamed, err := kernelM.ScanReader(bytes.NewReader(data), ParallelOptions{Workers: 2, ChunkBytes: chunk})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "reader", streamed, want)
	}
}

// Stream over the kernel engine must agree with the stt stream at
// every two-part split of the input.
func TestKernelStreamSplitPoints(t *testing.T) {
	dict := []string{"virus", "us vi", "rus"}
	data := []byte("virus us virus viruses rus")
	kernelM, sttM := engineMatchers(t, dict, false)
	ref := sttM.NewStream()
	ref.Write(data)
	want := ref.Matches()
	if len(want) == 0 {
		t.Fatal("test data has no matches")
	}
	for cut := 0; cut <= len(data); cut++ {
		s := kernelM.NewStream()
		s.Write(data[:cut])
		s.Write(data[cut:])
		assertSameMatches(t, "stream", s.Matches(), want)
		if s.BytesSeen() != len(data) {
			t.Fatalf("cut %d: BytesSeen %d", cut, s.BytesSeen())
		}
	}
}

// Stats must surface the engine choice, alphabet classes, and dense
// table residency without callers digging into internal packages.
func TestStatsEngineFields(t *testing.T) {
	kernelM, sttM := engineMatchers(t, []string{"virus", "worm"}, true)
	ks := kernelM.Stats()
	if ks.Engine != "kernel" || ks.KernelTableBytes <= 0 {
		t.Fatalf("kernel stats = %+v", ks)
	}
	if !ks.TableFitsL1 || !ks.TableFitsL2 {
		t.Fatalf("tiny dictionary should be L1/L2 resident: %+v", ks)
	}
	if ks.AlphabetUsed < 2 {
		t.Fatalf("alphabet classes = %d", ks.AlphabetUsed)
	}
	if ks.DenseTableBudget <= 0 {
		t.Fatalf("budget not reported: %+v", ks)
	}
	ss := sttM.Stats()
	if ss.Engine != "stt" || ss.KernelTableBytes != 0 {
		t.Fatalf("stt stats = %+v", ss)
	}
	// A budget too small for the table forces the stt fallback, and
	// Stats reports it.
	tiny, err := CompileStrings([]string{"virus", "worm"}, Options{
		Engine: EngineOptions{MaxTableBytes: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tiny.Stats(); got.Engine != "stt" || got.DenseTableBudget != 16 {
		t.Fatalf("over-budget stats = %+v", got)
	}
}

// A saved artifact reloads with the kernel engine live and scanning
// identically — under default (auto) stride that is the stride-2 rung.
func TestPersistRebuildsEngine(t *testing.T) {
	m, err := CompileStrings([]string{"virus", "worm"}, Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().Engine != "stride2" {
		t.Fatalf("default compile engine = %q, want stride2", m.Stats().Engine)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats().Engine != "stride2" {
		t.Fatalf("loaded engine = %q", back.Stats().Engine)
	}
	data := []byte("a VIRUS in a worm in a virus")
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "loaded", got, want)

	// EngineOptions survive the artifact: a matcher saved with the
	// kernel disabled (or a bounded budget) must load the same way.
	off, err := CompileStrings([]string{"virus"}, Options{
		Engine: EngineOptions{DisableKernel: true, MaxTableBytes: 1 << 16, InterleaveK: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := off.Save(&buf); err != nil {
		t.Fatal(err)
	}
	offBack, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st := offBack.Stats(); st.Engine != "stt" || st.DenseTableBudget != 1<<16 {
		t.Fatalf("engine options dropped by Save/Load: %+v", st)
	}
}
