package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"cellmatch/internal/filter"
	"cellmatch/internal/parallel"
)

// filterVerifiers compiles one dictionary onto every verifier tier
// (dense kernel, sharded, stt) with the filter both forced on and
// forced off — the six-way matrix the filtered paths are proven
// against. Tiers that the dictionary cannot occupy (e.g. sharding a
// dictionary that fits one shard) are checked by engine name.
func filterVerifiers(t *testing.T, patterns []string, fold bool) map[string][2]*Matcher {
	t.Helper()
	out := map[string][2]*Matcher{}
	compile := func(engine EngineOptions) [2]*Matcher {
		var pair [2]*Matcher
		for i, mode := range []FilterMode{FilterOn, FilterOff} {
			e := engine
			e.Filter = mode
			m, err := CompileStrings(patterns, Options{CaseFold: fold, Engine: e})
			if err != nil {
				t.Fatal(err)
			}
			pair[i] = m
		}
		return pair
	}
	defaultPair := compile(EngineOptions{})
	if got := defaultPair[0].Stats().Engine; got != "stride2" && got != "kernel" {
		t.Fatalf("default engine = %q", got)
	}
	out[defaultPair[0].Stats().Engine] = defaultPair
	kernelPair := compile(EngineOptions{Stride: 1})
	if got := kernelPair[0].Stats().Engine; got != "kernel" {
		t.Fatalf("stride-1 engine = %q", got)
	}
	out["kernel"] = kernelPair
	budget := kernelPair[1].Stats().KernelTableBytes * 3 / 4
	shardPair := compile(EngineOptions{MaxTableBytes: budget, MaxShards: 8})
	if got := shardPair[0].Stats().Engine; got == "kernel" {
		t.Fatalf("under-budget compile still selected kernel")
	}
	out[shardPair[0].Stats().Engine] = shardPair
	out["stt"] = compile(EngineOptions{DisableKernel: true})
	return out
}

// TestFilterEquivalenceMatrix is the deterministic core of the
// FuzzFilterEquivalence guarantee: on a fixed corpus with overlapping
// patterns and matches straddling every window and chunk boundary,
// filter-on must agree byte-for-byte with filter-off on every verifier
// tier, across FindAll, Count, every two-part Stream split, and every
// parallel/reader chunk size from 1 to the input length (sequential
// workers and the shared pool both).
func TestFilterEquivalenceMatrix(t *testing.T) {
	dicts := []struct {
		name     string
		patterns []string
		fold     bool
	}{
		{
			// Overlapping suffix/prefix structure; matches straddle
			// every boundary of the repeated phrase.
			name:     "overlapping",
			patterns: []string{"abracadab", "cadabraca", "abracadabra", "dabra"},
		},
		{
			name:     "casefold",
			patterns: []string{"VirusSig", "russich", "SIGNAL"},
			fold:     true,
		},
	}
	data := []byte(strings.Repeat("abracadabra russich VirusSigNAL dabra ", 5))
	pool := parallel.NewPool(3)
	defer pool.Close()
	for _, dc := range dicts {
		t.Run(dc.name, func(t *testing.T) {
			for tier, pair := range filterVerifiers(t, dc.patterns, dc.fold) {
				onM, offM := pair[0], pair[1]
				if !onM.Stats().FilterEnabled || !onM.FilterActive() {
					t.Fatalf("%s: FilterOn did not enable the filter: %+v", tier, onM.Stats())
				}
				if offM.Stats().FilterEnabled || offM.FilterActive() {
					t.Fatalf("%s: FilterOff left the filter on", tier)
				}
				want, err := offM.FindAll(data)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 {
					t.Fatal("fixture has no matches")
				}
				got, err := onM.FindAll(data)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, tier+"/FindAll", got, want)
				// The filtered matcher's own bypass agrees too.
				bypass, err := onM.FindAllUnfiltered(data)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, tier+"/FindAllUnfiltered", bypass, want)
				if n, err := onM.Count(data); err != nil || n != len(want) {
					t.Fatalf("%s: Count = %d (%v), want %d", tier, n, err, len(want))
				}
				// Every two-part stream split.
				for cut := 0; cut <= len(data); cut++ {
					s := onM.NewStream()
					s.Write(data[:cut])
					s.Write(data[cut:])
					assertSameMatches(t, tier+"/Stream", s.Matches(), want)
				}
				// Every parallel chunk size, ad-hoc workers and pool.
				for chunk := 1; chunk <= len(data); chunk++ {
					for _, popts := range []ParallelOptions{
						{Workers: 3, ChunkBytes: chunk},
						{ChunkBytes: chunk, Pool: pool},
					} {
						par, err := onM.FindAllParallel(data, popts)
						if err != nil {
							t.Fatal(err)
						}
						assertSameMatches(t, tier+"/FindAllParallel", par, want)
						rd, err := onM.ScanReader(bytes.NewReader(data), popts)
						if err != nil {
							t.Fatal(err)
						}
						assertSameMatches(t, tier+"/ScanReader", rd, want)
					}
					// Per-request bypass is byte-identical as well.
					par, err := onM.FindAllParallel(data, ParallelOptions{
						Workers: 2, ChunkBytes: chunk, DisableFilter: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					assertSameMatches(t, tier+"/DisableFilter", par, want)
				}
			}
		})
	}
}

// TestFilterBypassesShortPatterns: a dictionary with a single-byte
// minimum gives the window filter nothing to slide — even FilterOn
// must bypass it silently, scan every byte, and stay byte-identical.
func TestFilterBypassesShortPatterns(t *testing.T) {
	patterns := []string{"a", "abra", "cadabra"}
	data := []byte(strings.Repeat("abracadabra ", 20))
	for _, mode := range []FilterMode{FilterAuto, FilterOn} {
		m, err := CompileStrings(patterns, Options{Engine: EngineOptions{Filter: mode}})
		if err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		if st.FilterEnabled || st.FilterWindow != 0 {
			t.Fatalf("mode %d: m=1 dictionary enabled the filter: %+v", mode, st)
		}
		if st.MinPatternLen != 1 {
			t.Fatalf("MinPatternLen = %d, want 1", st.MinPatternLen)
		}
		off, err := CompileStrings(patterns, Options{Engine: EngineOptions{Filter: FilterOff}})
		if err != nil {
			t.Fatal(err)
		}
		want, err := off.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.FindAll(data)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "bypass", got, want)
		if st.WindowsSkipped != 0 {
			t.Fatalf("bypassed filter skipped windows: %+v", st)
		}
	}
}

// TestFilterAutoSelection: the auto mode enables the filter only when
// the window, dictionary size, and evidence density qualify.
func TestFilterAutoSelection(t *testing.T) {
	// Qualifying: few long patterns, sparse masks.
	m, err := CompileStrings([]string{"VIRUSSIG", "WORMSIGN"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); !st.FilterEnabled || st.FilterWindow != 8 || st.MinPatternLen != 8 {
		t.Fatalf("qualifying dictionary not auto-filtered: %+v", st)
	}
	// Short minimum (below the auto threshold of 4): auto declines,
	// but FilterOn still accepts (window 2 is legal).
	m, err = CompileStrings([]string{"ab", "abracadabra"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().FilterEnabled {
		t.Fatalf("minimum length 2 auto-enabled: %+v", m.Stats())
	}
	m, err = CompileStrings([]string{"ab", "abracadabra"}, Options{Engine: EngineOptions{Filter: FilterOn}})
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); !st.FilterEnabled || st.FilterWindow != 2 {
		t.Fatalf("FilterOn with window 2 declined: %+v", st)
	}
	// Saturated evidence (every alphabet symbol at every window
	// position): auto declines even though the window length qualifies.
	m, err = CompileStrings([]string{
		"abcd", "bcda", "cdab", "dabc", "dcba", "badc", "cadb", "dbca",
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().FilterEnabled {
		t.Fatalf("saturated dictionary auto-enabled: %+v", m.Stats())
	}
	// Out-of-range modes are rejected at compile time — Load enforces
	// the same bound, so every compiled matcher's artifact round-trips.
	if _, err := CompileStrings([]string{"abcd"}, Options{
		Engine: EngineOptions{Filter: FilterMode(3)},
	}); err == nil {
		t.Fatal("out-of-range filter mode accepted")
	}
}

// TestFilterAutoBoundaries pins the FilterAuto gates at their exact
// constants — minimum pattern length 4, 256 patterns, 75% evidence
// density — so a drive-by retune of the thresholds shows up as a test
// diff, not as a silent engine-selection change in production.
func TestFilterAutoBoundaries(t *testing.T) {
	if filterAutoMinLen != 4 || filterAutoMaxPatterns != 256 || filterAutoMaxDensity != 0.75 {
		t.Fatalf("auto gate constants moved: minLen=%d maxPatterns=%d maxDensity=%v",
			filterAutoMinLen, filterAutoMaxPatterns, filterAutoMaxDensity)
	}

	enabled := func(t *testing.T, pats []string) bool {
		t.Helper()
		m, err := CompileStrings(pats, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m.Stats().FilterEnabled
	}

	// Length boundary: minimum 4 qualifies, minimum 3 does not.
	if !enabled(t, []string{"wxyz", "qrstu"}) {
		t.Fatal("min length 4 declined")
	}
	if enabled(t, []string{"wxy", "qrstu"}) {
		t.Fatal("min length 3 accepted")
	}

	// Count boundary: 256 patterns qualify, 257 do not. A shared
	// 4-byte prefix keeps the evidence tables sparse, so the count
	// gate is the only one in play.
	sharedPrefix := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("wxyz%03d", i)
		}
		return out
	}
	if !enabled(t, sharedPrefix(256)) {
		t.Fatal("256 patterns declined")
	}
	if enabled(t, sharedPrefix(257)) {
		t.Fatal("257 patterns accepted")
	}

	// Density boundary: the gate declines strictly above 0.75, so a
	// dictionary landing exactly on 0.75 keeps the filter and one bit
	// more loses it. Both dictionaries are checked against the same
	// evidence tables the matcher builds, so the test fails loudly if
	// the density arithmetic (not just the constant) changes.
	density := func(t *testing.T, pats []string) float64 {
		t.Helper()
		m, err := CompileStrings(pats, Options{Engine: EngineOptions{Filter: FilterOn}})
		if err != nil {
			t.Fatal(err)
		}
		f, err := filter.Build(m.patterns, m.sys.Red)
		if err != nil {
			t.Fatal(err)
		}
		return f.Density()
	}
	// Over {a,b,c,d}: all four symbols at positions 0-2, only three at
	// position 3 -> 15 of 20 (class, position) slots = 0.75 exactly.
	atBoundary := []string{"aaaa", "bbbb", "cccc", "dddc", "abca"}
	if d := density(t, atBoundary); d != 0.75 {
		t.Fatalf("boundary dictionary density = %v, want exactly 0.75", d)
	}
	if !enabled(t, atBoundary) {
		t.Fatal("density exactly 0.75 declined (gate must be strict-greater)")
	}
	// Adding "dddd" fills the last slot: 16/20 = 0.8 > 0.75.
	overBoundary := append(append([]string(nil), atBoundary...), "dddd")
	if d := density(t, overBoundary); d <= 0.75 {
		t.Fatalf("saturated dictionary density = %v, want > 0.75", d)
	}
	if enabled(t, overBoundary) {
		t.Fatal("density above 0.75 accepted")
	}
}

func TestParseFilterModeVocabulary(t *testing.T) {
	for in, want := range map[string]FilterMode{
		"": FilterAuto, "auto": FilterAuto, "on": FilterOn, "off": FilterOff,
	} {
		got, err := ParseFilterMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseFilterMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFilterMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

// TestFilterWindowsSkippedCounter: scans over clean input must
// advance WindowsSkipped on the sequential, parallel, and stream
// paths, and the counter must be monotone.
func TestFilterWindowsSkippedCounter(t *testing.T) {
	m, err := CompileStrings([]string{"VIRUSSIGNATURE", "WORMSIGNATURES"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Stats().FilterEnabled {
		t.Fatal("filter not enabled")
	}
	data := []byte(strings.Repeat("benign traffic with nothing to find here. ", 200))
	if _, err := m.FindAll(data); err != nil {
		t.Fatal(err)
	}
	seq := m.Stats().WindowsSkipped
	if seq == 0 {
		t.Fatal("sequential scan skipped nothing")
	}
	if _, err := m.FindAllParallel(data, ParallelOptions{Workers: 3, ChunkBytes: 512}); err != nil {
		t.Fatal(err)
	}
	par := m.Stats().WindowsSkipped
	if par <= seq {
		t.Fatalf("parallel scan did not advance the counter: %d -> %d", seq, par)
	}
	s := m.NewStream()
	for off := 0; off < len(data); off += 100 {
		end := off + 100
		if end > len(data) {
			end = len(data)
		}
		s.Write(data[off:end])
	}
	if got := m.Stats().WindowsSkipped; got <= par {
		t.Fatalf("stream did not advance the counter: %d -> %d", par, got)
	}
}

// TestFilterFactorEngineEquivalence drives the factor-table fallback
// (minimum pattern length above the 64-bit window) end to end through
// the matcher.
func TestFilterFactorEngineEquivalence(t *testing.T) {
	long1 := strings.Repeat("abcdefgh", 9)       // 72 bytes
	long2 := strings.Repeat("zyxwvuts", 9) + "Q" // 73 bytes
	patterns := []string{long1, long2}
	data := []byte("noise " + long1 + " more noise " + long2 + strings.Repeat(" filler", 40) + long1)
	onM, err := CompileStrings(patterns, Options{Engine: EngineOptions{Filter: FilterOn}})
	if err != nil {
		t.Fatal(err)
	}
	if st := onM.Stats(); !st.FilterEnabled || st.FilterWindow != 72 {
		t.Fatalf("factor filter not live: %+v", st)
	}
	offM, err := CompileStrings(patterns, Options{Engine: EngineOptions{Filter: FilterOff}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := offM.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 3 {
		t.Fatalf("fixture matches = %d, want 3", len(want))
	}
	got, err := onM.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "factor/FindAll", got, want)
	for _, chunk := range []int{1, 7, 64, 71, 72, 73, 200} {
		par, err := onM.FindAllParallel(data, ParallelOptions{Workers: 3, ChunkBytes: chunk})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "factor/FindAllParallel", par, want)
		rd, err := onM.ScanReader(bytes.NewReader(data), ParallelOptions{Workers: 2, ChunkBytes: chunk})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "factor/ScanReader", rd, want)
	}
	for cut := 0; cut <= len(data); cut += 13 {
		s := onM.NewStream()
		s.Write(data[:cut])
		s.Write(data[cut:])
		assertSameMatches(t, "factor/Stream", s.Matches(), want)
	}
}
