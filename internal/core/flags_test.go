package core

import "testing"

func TestParseStride(t *testing.T) {
	for s, want := range map[string]int{"": 0, "auto": 0, "1": 1, "2": 2} {
		got, err := ParseStride(s)
		if err != nil || got != want {
			t.Fatalf("ParseStride(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if _, err := ParseStride("3"); err == nil {
		t.Fatal("ParseStride accepted 3")
	}
}

// Stride reports the live kernel stepping; the pinned reference scan
// must agree with the default path on every tier.
func TestStrideAndPinnedReference(t *testing.T) {
	pats := []string{"alpha", "beta", "gamma"}
	data := []byte("xx alpha yy beta zz gamma alpha")

	m1, err := CompileStrings(pats, Options{Engine: EngineOptions{Stride: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Stride() != 1 {
		t.Fatalf("stride-1 matcher reports stride %d", m1.Stride())
	}
	mStt, err := CompileStrings(pats, Options{Engine: EngineOptions{DisableKernel: true}})
	if err != nil {
		t.Fatal(err)
	}
	if mStt.Stride() != 0 {
		t.Fatalf("stt matcher reports stride %d", mStt.Stride())
	}
	if m1.System() == nil || m1.System().DictionaryStates() == 0 {
		t.Fatal("System() accessor returned an empty system")
	}

	want, err := m1.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Matcher{m1, mStt} {
		got, err := m.FindAllUnfilteredStride1(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("pinned reference found %d matches, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pinned reference match %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}
