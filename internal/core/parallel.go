package core

import (
	"io"

	"cellmatch/internal/parallel"
)

// ParallelOptions tune the chunked speculative scan engine. The zero
// value scans with one worker per CPU and 64 KiB chunks.
type ParallelOptions struct {
	// Workers is the goroutine pool size. <=0 means GOMAXPROCS.
	Workers int
	// ChunkBytes is the per-worker input slice size. <=0 means 64 KiB.
	// Any positive value is legal, including sizes smaller than the
	// longest dictionary entry.
	ChunkBytes int
	// Pool, when non-nil, executes chunk jobs on a persistent shared
	// worker pool (parallel.NewPool) instead of spawning goroutines per
	// call — the long-running-server mode. Many concurrent scans share
	// the pool's fixed worker set.
	Pool *parallel.Pool
	// DisableFilter bypasses the matcher's skip-scan front-end for this
	// call (the serving layer's per-request filter=off knob). Output is
	// byte-identical either way.
	DisableFilter bool
	// DisableStride2 pins the kernel to its 1-byte scan loops for this
	// call (the serving layer's per-request stride=1 knob). Output is
	// byte-identical either way; no-op on non-stride-2 matchers.
	DisableStride2 bool
}

// engineOpts binds the matcher's live scan engine (the dense kernel,
// the sharded multi-kernel tier, or nil for the stt/dfa path) into the
// worker options. With the sharded tier live, the worker task set is
// one item per (shard, chunk) so each worker keeps one shard's tables
// hot. The skip-scan front-end, when live and not bypassed, runs per
// chunk inside each worker; its skip counter feeds the matcher's
// WindowsSkipped stat.
func (m *Matcher) engineOpts(o ParallelOptions) parallel.Options {
	po := parallel.Options{
		Workers: o.Workers, ChunkBytes: o.ChunkBytes,
		Engine: m.eng, Compressed: m.comp, Sharded: m.sharded, Pool: o.Pool,
		ForceStride1: o.DisableStride2,
	}
	if m.filter != nil && !o.DisableFilter {
		po.Filter = m.filter
		po.FilterSkipped = &m.windowsSkipped
	}
	return po
}

// FindAllParallel reports every dictionary occurrence in data, like
// FindAll, but scans chunks of data concurrently: each worker starts
// from the speculative root state and chunk boundaries are reconciled
// by re-scanning an overlap window of MaxPatternLen-1 bytes. The
// result is byte-for-byte identical to FindAll — same matches, same
// (End, Pattern) order — for every worker count and chunk size.
func (m *Matcher) FindAllParallel(data []byte, opts ParallelOptions) ([]Match, error) {
	raw, err := parallel.Scan(m.sys, data, m.engineOpts(opts))
	if err != nil {
		return nil, err
	}
	return convertMatches(raw), nil
}

// FindAllBatch scans every payload independently and returns one match
// slice per payload, each byte-identical to FindAll over that payload
// alone. All payloads' chunk jobs are flattened into a single task set
// executed in one pass over the worker pool (ParallelOptions.Pool, or
// ad-hoc workers), so a batch of small requests costs one fan-out
// instead of one per payload — the coalescing primitive behind the
// serving layer's /scan/batch endpoint.
func (m *Matcher) FindAllBatch(payloads [][]byte, opts ParallelOptions) ([][]Match, error) {
	raw, err := parallel.ScanMany(m.sys, payloads, m.engineOpts(opts))
	if err != nil {
		return nil, err
	}
	out := make([][]Match, len(raw))
	for i, r := range raw {
		out[i] = convertMatches(r)
	}
	return out, nil
}

// ScanReader scans r to EOF in batches of Workers x ChunkBytes bytes,
// each batch scanned by the parallel engine, carrying the overlap
// window between batches. Matches are identical to FindAll over the
// reader's entire contents, with global End offsets, but memory stays
// O(Workers x ChunkBytes), making it the batched-streaming entry
// point for sockets and files too large to buffer.
func (m *Matcher) ScanReader(r io.Reader, opts ParallelOptions) ([]Match, error) {
	raw, err := parallel.ScanReader(m.sys, r, m.engineOpts(opts))
	if err != nil {
		return nil, err
	}
	return convertMatches(raw), nil
}
