package core

import (
	"bytes"
	"strings"
	"testing"
)

func compileTestMatcher(t *testing.T, patterns []string, opts Options) *Matcher {
	t.Helper()
	m, err := CompileStrings(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func assertEqualMatches(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestFindAllParallelEquivalence(t *testing.T) {
	m := compileTestMatcher(t,
		[]string{"virus", "worm", "rus in", "s"},
		Options{CaseFold: true})
	data := []byte(strings.Repeat("a VIRUS in a worm, viruses galore; ", 400))
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no matches in test input")
	}
	for _, opt := range []ParallelOptions{
		{},
		{Workers: 1},
		{Workers: 4, ChunkBytes: 3}, // smaller than the longest pattern
		{Workers: 4, ChunkBytes: 777},
		{Workers: 16, ChunkBytes: 1 << 16},
	} {
		got, err := m.FindAllParallel(data, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "FindAllParallel", want, got)
	}
}

func TestFindAllParallelWithGroups(t *testing.T) {
	// The sequential path with Groups>1 already splits input across
	// tile groups; the parallel engine must still agree with it.
	m := compileTestMatcher(t, []string{"abra", "cadabra", "ra"},
		Options{Groups: 4})
	data := []byte(strings.Repeat("abracadabra! ", 1000))
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.FindAllParallel(data, ParallelOptions{Workers: 3, ChunkBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMatches(t, "Groups=4", want, got)
}

func TestScanReaderEquivalence(t *testing.T) {
	m := compileTestMatcher(t, []string{"needle", "edl", "e"}, Options{})
	data := []byte(strings.Repeat("hay needle hay eedl ", 3000))
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []ParallelOptions{
		{},
		{Workers: 2, ChunkBytes: 53},
		{Workers: 8, ChunkBytes: 4096},
	} {
		got, err := m.ScanReader(bytes.NewReader(data), opt)
		if err != nil {
			t.Fatal(err)
		}
		assertEqualMatches(t, "ScanReader", want, got)
	}
}

func TestScanReaderAgainstStream(t *testing.T) {
	// Three ways to scan the same bytes must agree on the match set:
	// batch FindAll, incremental Stream, batched-parallel ScanReader.
	m := compileTestMatcher(t, []string{"tic", "tac", "ictac"}, Options{})
	data := []byte(strings.Repeat("tictactictoc", 500))
	batch, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewStream()
	for i := 0; i < len(data); i += 7 {
		s.Write(data[i:min(i+7, len(data))])
	}
	if len(s.Matches()) != len(batch) {
		t.Fatalf("stream %d matches, batch %d", len(s.Matches()), len(batch))
	}
	rd, err := m.ScanReader(bytes.NewReader(data), ParallelOptions{Workers: 2, ChunkBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMatches(t, "ScanReader vs FindAll", batch, rd)
}
