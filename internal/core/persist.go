package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
)

// Matcher persistence: compile once, ship the artifact. The format
// stores the alphabet reduction, the partitioned automata with their
// pattern-id maps, and the original dictionary, so a loaded matcher is
// bit-for-bit equivalent to the compiled one without re-running
// Aho-Corasick construction.
//
// Layout (little-endian):
//
//	magic "CMSAV7\x00"
//	options: caseFold u8, groups u32, maxStatesPerTile u32, version u32
//	engine:  disableKernel u8, maxTableBytes u64, interleaveK u32,
//	         maxShards i32, filterMode u8, stride u8, compressed u8
//	dictKind: regex u8 (0 = literal patterns, 1 = regular expressions)
//	reduction: map[256]u8, classes u32, width u32
//	system width u32, maxPatternLen u32
//	patterns: count u32; each: len u32, bytes
//	         (regex artifacts store the expression sources)
//	slots: count u32; each: blobLen u32, dfa blob,
//	       idCount u32, ids u32...
//
// Older artifacts still load: V6 (magic "CMSAV6\x00") lacks the
// compressed byte (loaded as CompressedAuto, so dictionaries whose
// dense table overflows the budget come back on the compressed rung —
// output-identical either way), V5 ("CMSAV5\x00") additionally lacks
// the stride byte (loaded as 0 = auto, so qualifying dictionaries come
// back on the stride-2 rung — output-identical either way), V4
// ("CMSAV4\x00") additionally lacks the dictKind byte (always a
// literal dictionary), V3 ("CMSAV3\x00") additionally lacks the
// filterMode field (loaded as FilterAuto, so qualifying dictionaries
// come back with the skip-scan front-end live — output-identical
// either way), V2 ("CMSAV2\x00") additionally lacks maxShards (loaded
// as 0, the default shard cap), and V1 ("CMSAV1\x00") lacks the whole
// engine block (zero-value EngineOptions).
var (
	savMagic   = []byte("CMSAV7\x00")
	savMagicV6 = []byte("CMSAV6\x00")
	savMagicV5 = []byte("CMSAV5\x00")
	savMagicV4 = []byte("CMSAV4\x00")
	savMagicV3 = []byte("CMSAV3\x00")
	savMagicV2 = []byte("CMSAV2\x00")
	savMagicV1 = []byte("CMSAV1\x00")
)

// Save writes the compiled matcher.
func (m *Matcher) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(savMagic); err != nil {
		return err
	}
	le := binary.LittleEndian
	put32 := func(v uint32) error { return binary.Write(bw, le, v) }
	cf := byte(0)
	if m.opts.CaseFold {
		cf = 1
	}
	if err := bw.WriteByte(cf); err != nil {
		return err
	}
	for _, v := range []uint32{
		uint32(m.opts.Groups), uint32(m.opts.MaxStatesPerTile), uint32(m.opts.Version),
	} {
		if err := put32(v); err != nil {
			return err
		}
	}
	dk := byte(0)
	if m.opts.Engine.DisableKernel {
		dk = 1
	}
	if err := bw.WriteByte(dk); err != nil {
		return err
	}
	mtb := m.opts.Engine.MaxTableBytes
	if mtb < 0 {
		mtb = 0
	}
	if err := binary.Write(bw, le, uint64(mtb)); err != nil {
		return err
	}
	ik := m.opts.Engine.InterleaveK
	if ik < 0 {
		ik = 0
	}
	if err := put32(uint32(ik)); err != nil {
		return err
	}
	// maxShards is signed: negative means "sharding disabled", which
	// must survive the round trip (clamped to -1).
	ms := m.opts.Engine.MaxShards
	if ms < 0 {
		ms = -1
	}
	if err := put32(uint32(int32(ms))); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(m.opts.Engine.Filter)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(m.opts.Engine.Stride)); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(m.opts.Engine.Compressed)); err != nil {
		return err
	}
	rx := byte(0)
	if m.regex {
		rx = 1
	}
	if err := bw.WriteByte(rx); err != nil {
		return err
	}
	if _, err := bw.Write(m.sys.Red.Map[:]); err != nil {
		return err
	}
	for _, v := range []uint32{
		uint32(m.sys.Red.Classes), uint32(m.sys.Red.Width),
		uint32(m.sys.Width), uint32(m.sys.MaxPatternLen),
	} {
		if err := put32(v); err != nil {
			return err
		}
	}
	if err := put32(uint32(len(m.patterns))); err != nil {
		return err
	}
	for _, p := range m.patterns {
		if err := put32(uint32(len(p))); err != nil {
			return err
		}
		if _, err := bw.Write(p); err != nil {
			return err
		}
	}
	if err := put32(uint32(len(m.sys.Slots))); err != nil {
		return err
	}
	for i, d := range m.sys.Slots {
		blob, err := d.MarshalBinary()
		if err != nil {
			return err
		}
		if err := put32(uint32(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
		ids := m.sys.SlotPatterns[i]
		if err := put32(uint32(len(ids))); err != nil {
			return err
		}
		for _, id := range ids {
			if err := put32(uint32(id)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reconstructs a matcher written by Save.
func Load(r io.Reader) (*Matcher, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	magic := make([]byte, len(savMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: not a cellmatch artifact")
	}
	v1 := bytes.Equal(magic, savMagicV1)
	v2 := bytes.Equal(magic, savMagicV2)
	v3 := bytes.Equal(magic, savMagicV3)
	v4 := bytes.Equal(magic, savMagicV4)
	v5 := bytes.Equal(magic, savMagicV5)
	v6 := bytes.Equal(magic, savMagicV6)
	if !v1 && !v2 && !v3 && !v4 && !v5 && !v6 && !bytes.Equal(magic, savMagic) {
		return nil, fmt.Errorf("core: not a cellmatch artifact")
	}
	get32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, le, &v)
		return v, err
	}
	cf, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	var opts Options
	opts.CaseFold = cf == 1
	var g, mst, ver uint32
	for _, p := range []*uint32{&g, &mst, &ver} {
		if *p, err = get32(); err != nil {
			return nil, err
		}
	}
	opts.Groups, opts.MaxStatesPerTile, opts.Version = int(g), int(mst), int(ver)
	if !v1 { // V1 predates the engine block: zero-value EngineOptions
		dk, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		opts.Engine.DisableKernel = dk == 1
		var mtb uint64
		if err := binary.Read(br, le, &mtb); err != nil {
			return nil, err
		}
		ik, err := get32()
		if err != nil {
			return nil, err
		}
		opts.Engine.MaxTableBytes, opts.Engine.InterleaveK = int(mtb), int(ik)
		if !v2 { // V2 predates the sharded tier: default shard cap
			ms, err := get32()
			if err != nil {
				return nil, err
			}
			opts.Engine.MaxShards = int(int32(ms))
			if !v3 { // V3 predates the skip-scan front-end: FilterAuto
				fm, err := br.ReadByte()
				if err != nil {
					return nil, err
				}
				if fm > byte(FilterOff) {
					return nil, fmt.Errorf("core: bad filter mode %d", fm)
				}
				opts.Engine.Filter = FilterMode(fm)
				if !v4 && !v5 { // V5 predates the stride-2 rung: auto
					st, err := br.ReadByte()
					if err != nil {
						return nil, err
					}
					if st > 2 {
						return nil, fmt.Errorf("core: bad stride %d", st)
					}
					opts.Engine.Stride = int(st)
					if !v6 { // V6 predates the compressed rung: auto
						cm, err := br.ReadByte()
						if err != nil {
							return nil, err
						}
						if cm > byte(CompressedOff) {
							return nil, fmt.Errorf("core: bad compressed mode %d", cm)
						}
						opts.Engine.Compressed = CompressedMode(cm)
					}
				}
			}
		}
	}
	regex := false
	if !v1 && !v2 && !v3 && !v4 { // V4 predates regex dictionaries
		rx, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if rx > 1 {
			return nil, fmt.Errorf("core: bad dictionary kind %d", rx)
		}
		regex = rx == 1
	}

	red := &alphabet.Reduction{}
	if _, err := io.ReadFull(br, red.Map[:]); err != nil {
		return nil, err
	}
	var classes, rwidth, width, maxLen uint32
	for _, p := range []*uint32{&classes, &rwidth, &width, &maxLen} {
		if *p, err = get32(); err != nil {
			return nil, err
		}
	}
	red.Classes, red.Width = int(classes), int(rwidth)
	if err := red.Validate(); err != nil {
		return nil, err
	}

	np, err := get32()
	if err != nil {
		return nil, err
	}
	const maxPatterns = 1 << 22
	if np == 0 || np > maxPatterns {
		return nil, fmt.Errorf("core: implausible pattern count %d", np)
	}
	patterns := make([][]byte, np)
	for i := range patterns {
		l, err := get32()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > 1<<20 {
			return nil, fmt.Errorf("core: implausible pattern length %d", l)
		}
		patterns[i] = make([]byte, l)
		if _, err := io.ReadFull(br, patterns[i]); err != nil {
			return nil, err
		}
	}

	ns, err := get32()
	if err != nil {
		return nil, err
	}
	if ns == 0 || ns > 1<<16 {
		return nil, fmt.Errorf("core: implausible slot count %d", ns)
	}
	sys := &compose.System{
		Red:           red,
		Width:         int(width),
		MaxPatternLen: int(maxLen),
	}
	seen := make([]bool, np)
	for i := 0; i < int(ns); i++ {
		bl, err := get32()
		if err != nil {
			return nil, err
		}
		if bl == 0 || bl > 1<<30 {
			return nil, fmt.Errorf("core: implausible slot blob %d", bl)
		}
		blob := make([]byte, bl)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, err
		}
		var d dfa.DFA
		if err := d.UnmarshalBinary(blob); err != nil {
			return nil, err
		}
		if d.Out == nil {
			return nil, fmt.Errorf("core: slot %d lacks output sets", i)
		}
		sys.Slots = append(sys.Slots, &d)
		ni, err := get32()
		if err != nil {
			return nil, err
		}
		if ni > np {
			return nil, fmt.Errorf("core: slot %d claims %d patterns", i, ni)
		}
		ids := make([]int, ni)
		for j := range ids {
			id, err := get32()
			if err != nil {
				return nil, err
			}
			if id >= np || seen[id] {
				return nil, fmt.Errorf("core: bad pattern id %d in slot %d", id, i)
			}
			seen[id] = true
			ids[j] = int(id)
		}
		sys.SlotPatterns = append(sys.SlotPatterns, ids)
	}
	for id, s := range seen {
		if !s {
			return nil, fmt.Errorf("core: pattern %d not assigned to any slot", id)
		}
	}
	groups := opts.Groups
	if groups == 0 {
		groups = 1
	}
	sys.Topology = compose.Mixed(groups, len(sys.Slots))
	minLen := 0
	if regex {
		// Stored patterns are expression sources; minLen is the shortest
		// possible match, re-derived (and the dictionary re-validated)
		// from the sources.
		exprs := make([]string, len(patterns))
		for i, p := range patterns {
			exprs[i] = string(p)
		}
		var err error
		if minLen, _, err = dfa.RegexDictionaryInfo(exprs); err != nil {
			return nil, err
		}
	} else {
		for _, p := range patterns {
			if minLen == 0 || len(p) < minLen {
				minLen = len(p)
			}
		}
	}
	m := &Matcher{sys: sys, opts: opts, patterns: patterns, minLen: minLen, regex: regex}
	if err := m.initEngine(); err != nil {
		return nil, err
	}
	if err := m.initFilter(); err != nil {
		return nil, err
	}
	return m, nil
}
