package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"cellmatch/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dict := workload.SignatureDictionary()
	m, err := Compile(dict, Options{CaseFold: true, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: dict, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded matcher differs: %d vs %d matches", len(got), len(want))
	}
	// Stats survive too.
	if back.Stats() != m.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", back.Stats(), m.Stats())
	}
	if back.NumPatterns() != m.NumPatterns() {
		t.Fatal("pattern count differs")
	}
}

func TestSaveLoadMultiSlot(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 3500, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(pats, Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().SeriesDepth < 2 {
		t.Fatalf("expected multiple slots, got %d", m.Stats().SeriesDepth)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Probe with a pattern from the last slot.
	probe := append([]byte("zz"), pats[len(pats)-1]...)
	a, _ := m.Count(probe)
	b, _ := back.Count(probe)
	if a != b || a < 1 {
		t.Fatalf("counts differ after load: %d vs %d", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("not an artifact at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncations at every prefix length of a valid artifact must fail
	// cleanly (never panic, never accept).
	m, err := CompileStrings([]string{"abc", "def"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		cut := rng.Intn(len(blob))
		if _, err := Load(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	m, err := CompileStrings([]string{"abc"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	rng := rand.New(rand.NewSource(21))
	rejected := 0
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), blob...)
		corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		back, err := Load(bytes.NewReader(corrupt))
		if err != nil {
			rejected++
			continue
		}
		// A flip that survives validation must still yield a usable
		// matcher (no panics on use).
		if _, err := back.Count([]byte("xxabcxx")); err != nil {
			continue
		}
	}
	if rejected == 0 {
		t.Fatal("no corruption was ever rejected")
	}
}
