package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"cellmatch/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dict := workload.SignatureDictionary()
	m, err := Compile(dict, Options{CaseFold: true, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: dict, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("loaded matcher differs: %d vs %d matches", len(got), len(want))
	}
	// Stats survive too.
	if back.Stats() != m.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", back.Stats(), m.Stats())
	}
	if back.NumPatterns() != m.NumPatterns() {
		t.Fatal("pattern count differs")
	}
}

func TestSaveLoadMultiSlot(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 3500, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(pats, Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().SeriesDepth < 2 {
		t.Fatalf("expected multiple slots, got %d", m.Stats().SeriesDepth)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Probe with a pattern from the last slot.
	probe := append([]byte("zz"), pats[len(pats)-1]...)
	a, _ := m.Count(probe)
	b, _ := back.Count(probe)
	if a != b || a < 1 {
		t.Fatalf("counts differ after load: %d vs %d", a, b)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("not an artifact at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncations at every prefix length of a valid artifact must fail
	// cleanly (never panic, never accept).
	m, err := CompileStrings([]string{"abc", "def"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		cut := rng.Intn(len(blob))
		if _, err := Load(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Wrong magic — including the magic of a *future* version — must be
// rejected with the artifact error, not a decode panic further in.
func TestLoadRejectsWrongMagic(t *testing.T) {
	m, err := CompileStrings([]string{"abc"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for _, magic := range []string{"CMSAV8\x00", "CMSAV0\x00", "XXXXXX\x00", "cmsav7\x00"} {
		bad := append([]byte(magic), blob[len(magic):]...)
		_, err := Load(bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("magic %q accepted", magic)
		}
		if got := err.Error(); got != "core: not a cellmatch artifact" {
			t.Fatalf("magic %q: unexpected error %q", magic, got)
		}
	}
}

// Every truncation point of a valid v2 artifact — not a random sample
// — must fail cleanly.
func TestLoadRejectsEveryTruncation(t *testing.T) {
	m, err := CompileStrings([]string{"abc", "defgh"}, Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	for cut := 0; cut < len(blob); cut++ {
		if _, err := Load(bytes.NewReader(blob[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(blob))
		}
	}
}

// A v1 artifact (no engine block) must load with zero-value
// EngineOptions — which means the dense kernel is rebuilt and live —
// and scan identically to the matcher that wrote it.
func TestLoadV1ArtifactRebuildsEngine(t *testing.T) {
	dict := workload.SignatureDictionary()
	m, err := Compile(dict, Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v7 := buf.Bytes()
	// The v7 layout places the 20-byte engine block (disableKernel u8,
	// maxTableBytes u64, interleaveK u32, maxShards i32, filterMode u8,
	// stride u8, compressed u8) and the dictKind byte right after the
	// 13-byte options block; a v1 artifact is the same bytes without
	// either.
	optsEnd := len(savMagic) + 13
	v1 := append([]byte(nil), savMagicV1...)
	v1 = append(v1, v7[len(savMagic):optsEnd]...)
	v1 = append(v1, v7[optsEnd+21:]...)

	back, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 artifact rejected: %v", err)
	}
	// Zero-value EngineOptions means the auto ladder re-runs on load:
	// the loaded matcher must land on the same rung the writer's auto
	// compile picked (for this dictionary the 1-byte kernel — its pair
	// table is past the L2 residency gate).
	if got, want := back.Stats().Engine, m.Stats().Engine; got != want {
		t.Fatalf("v1 load engine = %q, want %q (zero-value EngineOptions)", got, want)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: dict, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v1-loaded matcher diverged: %d vs %d matches", len(got), len(want))
	}
	// And a truncated v1 (cut inside where v2's engine block would
	// have been) still fails cleanly.
	if _, err := Load(bytes.NewReader(v1[:len(savMagic)+10])); err == nil {
		t.Fatal("truncated v1 accepted")
	}
}

// A v2 artifact (engine block without the maxShards field) must load
// with the default shard cap, so a dictionary that outgrew the dense
// budget comes back with the sharded tier live.
func TestLoadV2ArtifactGetsDefaultShardCap(t *testing.T) {
	m, err := CompileStrings([]string{"virus", "worm"}, Options{
		Engine: EngineOptions{MaxTableBytes: 1 << 16, InterleaveK: 2, MaxShards: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v7 := buf.Bytes()
	// Drop the trailing maxShards (4 bytes), filterMode, stride, and
	// compressed (1 byte each) fields of the 20-byte engine block plus
	// the dictKind byte, and swap the magic: that is exactly a v2
	// artifact.
	engEnd := len(savMagic) + 13 + 20
	v2 := append([]byte(nil), savMagicV2...)
	v2 = append(v2, v7[len(savMagic):engEnd-7]...)
	v2 = append(v2, v7[engEnd+1:]...)

	back, err := Load(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 artifact rejected: %v", err)
	}
	if got := back.opts.Engine.MaxShards; got != 0 {
		t.Fatalf("v2 load MaxShards = %d, want 0 (default cap)", got)
	}
	if got := back.opts.Engine.MaxTableBytes; got != 1<<16 {
		t.Fatalf("v2 load MaxTableBytes = %d", got)
	}
	want, err := m.FindAll([]byte("a virus in a worm"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll([]byte("a virus in a worm"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2-loaded matcher diverged")
	}
}

// A v3 artifact (engine block without the filterMode byte) must load
// with FilterAuto — a qualifying dictionary comes back with the
// skip-scan front-end live — and scan byte-identically.
func TestLoadV3ArtifactGetsFilterAuto(t *testing.T) {
	dict := workload.SignatureDictionary()
	m, err := Compile(dict, Options{CaseFold: true, Engine: EngineOptions{Filter: FilterOff}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v7 := buf.Bytes()
	// Drop the trailing filterMode, stride, and compressed bytes of the
	// 20-byte engine block plus the dictKind byte, and swap the magic:
	// that is exactly a v3 artifact.
	engEnd := len(savMagic) + 13 + 20
	v3 := append([]byte(nil), savMagicV3...)
	v3 = append(v3, v7[len(savMagic):engEnd-3]...)
	v3 = append(v3, v7[engEnd+1:]...)

	back, err := Load(bytes.NewReader(v3))
	if err != nil {
		t.Fatalf("v3 artifact rejected: %v", err)
	}
	if got := back.opts.Engine.Filter; got != FilterAuto {
		t.Fatalf("v3 load Filter = %d, want FilterAuto", got)
	}
	if !back.Stats().FilterEnabled {
		t.Fatalf("signature dictionary under FilterAuto should enable the filter: %+v", back.Stats())
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: dict, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v3-loaded matcher diverged: %d vs %d matches", len(got), len(want))
	}
	// A current blob with an out-of-range filter mode must be rejected.
	bad := append([]byte(nil), v7...)
	bad[engEnd-3] = 7
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad filter mode accepted")
	}
}

// A v4 artifact (no dictKind byte) must load as a literal dictionary
// and scan byte-identically; a current blob with an out-of-range
// dictKind must be rejected.
func TestLoadV4ArtifactIsLiteral(t *testing.T) {
	dict := workload.SignatureDictionary()
	m, err := Compile(dict, Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v7 := buf.Bytes()
	// Drop the trailing stride and compressed bytes of the 20-byte
	// engine block and the dictKind byte right after them, and swap the
	// magic: that is exactly a v4 artifact.
	kindAt := len(savMagic) + 13 + 20
	v4 := append([]byte(nil), savMagicV4...)
	v4 = append(v4, v7[len(savMagic):kindAt-2]...)
	v4 = append(v4, v7[kindAt+1:]...)

	back, err := Load(bytes.NewReader(v4))
	if err != nil {
		t.Fatalf("v4 artifact rejected: %v", err)
	}
	if back.IsRegex() {
		t.Fatal("v4 artifact loaded as regex")
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: dict, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v4-loaded matcher diverged: %d vs %d matches", len(got), len(want))
	}

	bad := append([]byte(nil), v7...)
	bad[kindAt] = 9
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad dictionary kind accepted")
	}
}

// A v5 artifact (engine block without the stride byte) must load with
// stride auto — a qualifying dictionary comes back on the stride-2
// rung — and scan byte-identically; a current blob with an
// out-of-range stride byte must be rejected.
func TestLoadV5ArtifactGetsStrideAuto(t *testing.T) {
	// A small dictionary that passes every auto gate (classes, budget,
	// pair-table L2 residency), so stride auto demonstrably selects the
	// stride-2 rung on load.
	dict := [][]byte{
		[]byte("PANIC: runtime error"), []byte("segfault at address"),
		[]byte("disk quota exceeded"), []byte("certificate expired"),
	}
	m, err := Compile(dict, Options{CaseFold: true, Engine: EngineOptions{Stride: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v7 := buf.Bytes()
	// Drop the trailing stride and compressed bytes of the 20-byte
	// engine block and swap the magic: that is exactly a v5 artifact.
	engEnd := len(savMagic) + 13 + 20
	v5 := append([]byte(nil), savMagicV5...)
	v5 = append(v5, v7[len(savMagic):engEnd-2]...)
	v5 = append(v5, v7[engEnd:]...)

	back, err := Load(bytes.NewReader(v5))
	if err != nil {
		t.Fatalf("v5 artifact rejected: %v", err)
	}
	if got := back.opts.Engine.Stride; got != 0 {
		t.Fatalf("v5 load Stride = %d, want 0 (auto)", got)
	}
	if got := back.Stats().Engine; got != "stride2" {
		t.Fatalf("v5 load engine = %q, want stride2 under stride auto", got)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: dict, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v5-loaded matcher diverged: %d vs %d matches", len(got), len(want))
	}
	// A current blob with an out-of-range stride byte must be rejected.
	bad := append([]byte(nil), v7...)
	bad[engEnd-2] = 3
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad stride accepted")
	}
}

// A v6 artifact (engine block without the compressed byte) must load
// with CompressedAuto — a dictionary whose dense table overflows the
// budget comes back on the compressed rung — and scan byte-identically;
// a current blob with an out-of-range compressed byte must be rejected.
func TestLoadV6ArtifactGetsCompressedAuto(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 900, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Dense rows for 900 states overflow 48 KiB but the compressed rows
	// fit, so CompressedAuto demonstrably selects the compressed rung.
	m, err := Compile(pats, Options{CaseFold: true, Engine: EngineOptions{MaxTableBytes: 48 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Engine; got != "compressed" {
		t.Fatalf("fixture engine = %q, want compressed", got)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v7 := buf.Bytes()
	// Drop the trailing compressed byte of the 20-byte engine block and
	// swap the magic: that is exactly a v6 artifact.
	engEnd := len(savMagic) + 13 + 20
	v6 := append([]byte(nil), savMagicV6...)
	v6 = append(v6, v7[len(savMagic):engEnd-1]...)
	v6 = append(v6, v7[engEnd:]...)

	back, err := Load(bytes.NewReader(v6))
	if err != nil {
		t.Fatalf("v6 artifact rejected: %v", err)
	}
	if got := back.opts.Engine.Compressed; got != CompressedAuto {
		t.Fatalf("v6 load Compressed = %d, want CompressedAuto", got)
	}
	if got := back.Stats().Engine; got != "compressed" {
		t.Fatalf("v6 load engine = %q, want compressed under auto", got)
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: pats, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v6-loaded matcher diverged: %d vs %d matches", len(got), len(want))
	}
	// A current blob with an out-of-range compressed byte must be
	// rejected.
	bad := append([]byte(nil), v7...)
	bad[engEnd-1] = 9
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad compressed mode accepted")
	}
}

// A matcher running the sharded tier must survive Save/Load with the
// tier re-selected and the scan byte-identical — including the
// negative MaxShards sentinel that pins the stt fallback.
func TestSaveLoadShardedMatcher(t *testing.T) {
	pats, err := workload.Dictionary(workload.DictConfig{TargetStates: 900, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A budget far under the 900-state dense table forces the ladder
	// into the sharded tier (compressed pinned off so the cheaper rung
	// doesn't intercept).
	opts := Options{CaseFold: true, Engine: EngineOptions{
		MaxTableBytes: 48 << 10, MaxShards: 8, Compressed: CompressedOff,
	}}
	m, err := Compile(pats, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Engine; got != "sharded" {
		t.Fatalf("fixture engine = %q, want sharded", got)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != m.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", back.Stats(), m.Stats())
	}
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: 1 << 16, MatchEvery: 2048, Dictionary: pats, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded-loaded matcher diverged: %d vs %d matches", len(got), len(want))
	}

	// Negative MaxShards (sharding disabled) round-trips and pins stt.
	opts.Engine.MaxShards = -1
	off, err := Compile(pats, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := off.Stats().Engine; got != "stt" {
		t.Fatalf("MaxShards=-1 engine = %q, want stt", got)
	}
	buf.Reset()
	if err := off.Save(&buf); err != nil {
		t.Fatal(err)
	}
	offBack, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := offBack.Stats().Engine; got != "stt" {
		t.Fatalf("loaded MaxShards=-1 engine = %q, want stt", got)
	}
	if got := offBack.opts.Engine.MaxShards; got != -1 {
		t.Fatalf("MaxShards sentinel lost: %d", got)
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	m, err := CompileStrings([]string{"abc"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	rng := rand.New(rand.NewSource(21))
	rejected := 0
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), blob...)
		corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		back, err := Load(bytes.NewReader(corrupt))
		if err != nil {
			rejected++
			continue
		}
		// A flip that survives validation must still yield a usable
		// matcher (no panics on use).
		if _, err := back.Count([]byte("xxabcxx")); err != nil {
			continue
		}
	}
	if rejected == 0 {
		t.Fatal("no corruption was ever rejected")
	}
}
