package core

import (
	"bytes"
	"math/rand"
	"regexp"
	"testing"
)

var regexTestExprs = []string{
	"err(or)?",
	"[0-9]{3}",
	"GET /[a-z]{1,8}",
	"c[aou]t",
}

// regexOracle computes expected matches with the stdlib regexp: id
// reported at end e iff some substring ending at e matches the whole
// expression (the Aho-Corasick reporting contract).
func regexOracle(exprs []string, data []byte, caseFold bool) []Match {
	var out []Match
	for id, e := range exprs {
		flags := ""
		if caseFold {
			flags = "(?i)"
		}
		re := regexp.MustCompile(flags + "^(?:" + e + ")$")
		for end := 1; end <= len(data); end++ {
			for start := 0; start < end; start++ {
				if re.Match(data[start:end]) {
					out = append(out, Match{Pattern: id, End: end})
					break
				}
			}
		}
	}
	sortMatchesByEnd(out)
	return out
}

func sortMatchesByEnd(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && (ms[j].End < ms[j-1].End ||
			(ms[j].End == ms[j-1].End && ms[j].Pattern < ms[j-1].Pattern)); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func regexTestInput(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	letters := []byte("abcdefgot /0123456789 ERRc")
	data := make([]byte, n)
	for i := range data {
		data[i] = letters[rng.Intn(len(letters))]
	}
	for _, frag := range []string{"error 404", "GET /index", "cat cot cut", "err 7"} {
		pos := rng.Intn(n - len(frag))
		copy(data[pos:], frag)
	}
	return data
}

func TestRegexSearchEndToEnd(t *testing.T) {
	data := regexTestInput(2048, 11)
	want := regexOracle(regexTestExprs, data, false)
	if len(want) == 0 {
		t.Fatal("oracle found nothing; broken fixture")
	}

	m, err := CompileRegexSearch(regexTestExprs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsRegex() || !m.Stats().Regex {
		t.Fatal("regex matcher not flagged as regex")
	}
	got, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMatches(t, "regex/FindAll", want, got)

	n, err := m.Count(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("Count = %d, want %d", n, len(want))
	}
}

// TestRegexSearchCrossEngine pins the core contract: every engine rung
// and execution mode produces byte-identical (End, Pattern) output on
// a regex dictionary, just like on literal ones.
func TestRegexSearchCrossEngine(t *testing.T) {
	data := regexTestInput(2048, 23)
	want := regexOracle(regexTestExprs, data, false)

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"kernel", Options{}},
		{"stt", Options{Engine: EngineOptions{DisableKernel: true}}},
		{"kernel-folded", Options{CaseFold: true}},
	} {
		m, err := CompileRegexSearch(regexTestExprs, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		ref := want
		if tc.opts.CaseFold {
			ref = regexOracle(regexTestExprs, data, true)
		}
		seq, err := m.FindAll(data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		assertEqualMatches(t, tc.name+"/FindAll", ref, seq)

		par, err := m.FindAllParallel(data, ParallelOptions{Workers: 3, ChunkBytes: 512})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		assertEqualMatches(t, tc.name+"/FindAllParallel", ref, par)

		rd, err := m.ScanReader(bytes.NewReader(data), ParallelOptions{Workers: 2, ChunkBytes: 256})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		assertEqualMatches(t, tc.name+"/ScanReader", ref, rd)

		st := m.NewStream()
		for i := 0; i < len(data); i += 100 {
			end := i + 100
			if end > len(data) {
				end = len(data)
			}
			if _, err := st.Write(data[i:end]); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		}
		stream := append([]Match(nil), st.Matches()...)
		sortMatchesByEnd(stream)
		assertEqualMatches(t, tc.name+"/Stream", ref, stream)
	}
}

func TestRegexSearchFilterBypassed(t *testing.T) {
	// Long minimum match lengths would qualify a literal dictionary for
	// the skip-scan front-end; a regex dictionary must bypass it even
	// under FilterOn (the filter needs literal prefixes).
	m, err := CompileRegexSearch([]string{"abcdefgh", "[0-9]{8}x"},
		Options{Engine: EngineOptions{Filter: FilterOn}})
	if err != nil {
		t.Fatal(err)
	}
	if m.FilterActive() {
		t.Fatal("skip-scan front-end live on a regex dictionary")
	}
	if s := m.Stats(); s.FilterEnabled {
		t.Fatal("Stats reports filter enabled on a regex dictionary")
	}
}

func TestRegexSearchShardedBypassed(t *testing.T) {
	// Forcing the dense-table budget below the dictionary's footprint
	// sends literal dictionaries to the sharded tier; regex dictionaries
	// must step straight to stt.
	m, err := CompileRegexSearch(regexTestExprs,
		Options{Engine: EngineOptions{MaxTableBytes: 1, MaxShards: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.EngineName(); got != "stt" {
		t.Fatalf("engine = %q, want stt (sharded tier is literal-only)", got)
	}
	data := regexTestInput(2048, 5)
	got, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMatches(t, "regex/stt-fallback", regexOracle(regexTestExprs, data, false), got)
}

func TestRegexSearchRejections(t *testing.T) {
	for _, exprs := range [][]string{
		{"a*"},          // unbounded
		{"ab", "c+"},    // unbounded
		{"x?"},          // nullable
		{"ok", "a{2,}"}, // unbounded
		{},              // empty dictionary
	} {
		if _, err := CompileRegexSearch(exprs, Options{}); err == nil {
			t.Errorf("%q: expected compile error", exprs)
		}
	}
}

func TestRegexSearchSaveLoad(t *testing.T) {
	data := regexTestInput(4096, 31)
	m, err := CompileRegexSearch(regexTestExprs, Options{CaseFold: true, Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.IsRegex() {
		t.Fatal("regex flag lost in the artifact round trip")
	}
	if loaded.minLen != m.minLen {
		t.Fatalf("minLen %d != %d after round trip", loaded.minLen, m.minLen)
	}
	if got := string(loaded.Pattern(0)); got != regexTestExprs[0] {
		t.Fatalf("Pattern(0) = %q, want the expression source %q", got, regexTestExprs[0])
	}
	got, err := loaded.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualMatches(t, "regex/loaded", want, got)
}

func TestRegexSearchStatsShape(t *testing.T) {
	m, err := CompileRegexSearch([]string{"ab{1,4}", "xyz"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if !s.Regex {
		t.Error("Stats.Regex false")
	}
	if s.MinPatternLen != 2 {
		t.Errorf("MinPatternLen = %d, want 2 (shortest possible match)", s.MinPatternLen)
	}
	if s.MaxPatternLen != 5 {
		t.Errorf("MaxPatternLen = %d, want 5 (longest possible match)", s.MaxPatternLen)
	}
	if s.Patterns != 2 {
		t.Errorf("Patterns = %d, want 2", s.Patterns)
	}
}
