package core

import (
	"bytes"
	"strings"
	"testing"

	"cellmatch/internal/parallel"
)

// shardedMatchers compiles the same dictionary three times: forced
// into the sharded tier (budget far under the dense table), onto the
// plain stt path, and unrestricted (plain kernel) as a sanity anchor.
func shardedMatchers(t *testing.T, patterns []string, fold bool, maxShards int) (shardedM, sttM *Matcher) {
	t.Helper()
	// The skip-scan front-end is pinned off: these suites exercise the
	// sharded scan schedules themselves (the filter has its own
	// equivalence matrix, which covers sharded verification too). The
	// anchor compile pins Stride 1 so its dense footprint sets the
	// shard-forcing budget.
	opts := Options{CaseFold: fold, Engine: EngineOptions{Filter: FilterOff, Stride: 1}}
	kernelM, err := CompileStrings(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	if kernelM.Stats().Engine != "kernel" {
		t.Fatal("unrestricted compile did not select the kernel engine")
	}
	// Three quarters of the real dense footprint forces the ladder past
	// the plain kernel; each single pattern still fits a shard. The
	// compressed rung is pinned off so it cannot intercept the
	// over-budget dictionary before the shard planner sees it.
	budget := kernelM.Stats().KernelTableBytes * 3 / 4
	opts.Engine = EngineOptions{
		MaxTableBytes: budget, MaxShards: maxShards,
		Filter: FilterOff, Compressed: CompressedOff,
	}
	shardedM, err = CompileStrings(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = EngineOptions{DisableKernel: true, Filter: FilterOff}
	sttM, err = CompileStrings(patterns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return shardedM, sttM
}

// TestShardedEquivalenceMatrix is the deterministic core of the
// FuzzShardEquivalence guarantee: fold on and off, shard caps 1
// through 4, sequential FindAll, Count, ad-hoc parallel, shared-pool
// parallel, ScanReader, and Stream all byte-identical to the stt path.
func TestShardedEquivalenceMatrix(t *testing.T) {
	dict := []string{
		"abracadab", "cadabraca", "dabracada", "racadabra",
		"abra", "cada", "bracadabr", "acadabrac",
	}
	data := []byte(strings.Repeat("abracadabra racadabra cadabraca ", 40))
	pool := parallel.NewPool(3)
	defer pool.Close()
	for _, fold := range []bool{false, true} {
		for shards := 1; shards <= 4; shards++ {
			shardedM, sttM := shardedMatchers(t, dict, fold, shards)
			engine := shardedM.Stats().Engine
			if engine == "kernel" {
				t.Fatalf("fold=%v shards=%d: budget under the dense table still selected kernel", fold, shards)
			}
			if shards >= 2 && engine != "sharded" {
				t.Fatalf("fold=%v shards=%d: engine %q, want sharded", fold, shards, engine)
			}
			want, err := sttM.FindAll(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("fixture traffic has no matches")
			}
			got, err := shardedM.FindAll(data)
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, "FindAll", got, want)
			if n, err := shardedM.Count(data); err != nil || n != len(want) {
				t.Fatalf("Count = %d (%v), want %d", n, err, len(want))
			}
			for _, popts := range []ParallelOptions{
				{Workers: 3, ChunkBytes: 64},
				{ChunkBytes: 97, Pool: pool},
			} {
				par, err := shardedM.FindAllParallel(data, popts)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, "FindAllParallel", par, want)
				rd, err := shardedM.ScanReader(bytes.NewReader(data), popts)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, "ScanReader", rd, want)
			}
			// Batch coalescing (ScanMany's shard x chunk task set): each
			// payload's result must match a standalone scan of it.
			third := len(data) / 3
			payloads := [][]byte{data[:third], data[third : 2*third], nil, data[2*third:]}
			batch, err := shardedM.FindAllBatch(payloads, ParallelOptions{ChunkBytes: 128, Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range payloads {
				pw, err := sttM.FindAll(p)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, "FindAllBatch", batch[i], pw)
			}
			s := shardedM.NewStream()
			for off := 0; off < len(data); off += 33 {
				s.Write(data[off:min(off+33, len(data))])
			}
			if len(s.Matches()) != len(want) {
				t.Fatalf("Stream found %d matches, want %d", len(s.Matches()), len(want))
			}
		}
	}
}

// The sharded tier must report its shape through Stats and EngineName.
func TestShardedStats(t *testing.T) {
	dict := []string{"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd", "eeeeeeee"}
	shardedM, sttM := shardedMatchers(t, dict, false, 0)
	st := shardedM.Stats()
	if st.Engine != "sharded" || shardedM.EngineName() != "sharded" {
		t.Fatalf("engine = %q / %q, want sharded", st.Engine, shardedM.EngineName())
	}
	if st.Shards < 2 {
		t.Fatalf("Shards = %d, want >= 2", st.Shards)
	}
	if st.MaxShardTableBytes <= 0 || st.MaxShardTableBytes > st.KernelTableBytes {
		t.Fatalf("shard footprint out of range: %+v", st)
	}
	if st.MaxShardTableBytes > st.DenseTableBudget {
		t.Fatalf("a shard exceeds the per-shard budget: %+v", st)
	}
	if ss := sttM.Stats(); ss.Shards != 0 || ss.MaxShardTableBytes != 0 {
		t.Fatalf("stt stats carry shard fields: %+v", ss)
	}
}

// MaxShards below what the dictionary needs must degrade to stt, not
// fail compilation.
func TestShardedCapDegradesToSTT(t *testing.T) {
	dict := []string{"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd", "eeeeeeee", "ffffffff"}
	m, err := CompileStrings(dict, Options{
		Engine: EngineOptions{MaxTableBytes: 1 << 10, MaxShards: 1, Compressed: CompressedOff},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Engine; got != "stt" {
		t.Fatalf("engine = %q, want stt (cap too low to shard)", got)
	}
	if _, err := m.FindAll([]byte("xxaaaaaaaaxx")); err != nil {
		t.Fatal(err)
	}
}
