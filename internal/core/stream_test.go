package core

import (
	"sort"
	"strings"
	"testing"
)

// sortedCopy canonicalizes match order: Stream reports per-slot feed
// order while FindAll sorts by (End, Pattern).
func sortedCopy(ms []Match) []Match {
	out := append([]Match(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// TestStreamEverySplitPoint splits each input at every possible byte
// position across two Writes and requires the same matches as the
// single-shot scan — the boundary cases that historically lose
// matches are the splits inside a pattern occurrence.
func TestStreamEverySplitPoint(t *testing.T) {
	cases := []struct {
		name     string
		patterns []string
		opts     Options
		input    string
	}{
		{
			name:     "overlapping suffixes",
			patterns: []string{"abra", "cadabra", "abracadabra", "ra"},
			input:    "abracadabra abracadabra!",
		},
		{
			name:     "self-overlapping pattern",
			patterns: []string{"aaa", "aa"},
			input:    "aaaaaaaaab aaa",
		},
		{
			name:     "casefold across boundary",
			patterns: []string{"Virus", "RUS"},
			opts:     Options{CaseFold: true},
			input:    "a viRUS and a VIRUS",
		},
		{
			name:     "nested patterns",
			patterns: []string{"e", "ne", "one", "bone", "ebone"},
			input:    "trombone bones oneebone",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := compileTestMatcher(t, tc.patterns, tc.opts)
			data := []byte(tc.input)
			batch, err := m.FindAll(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) == 0 {
				t.Fatal("case plants no matches")
			}
			want := sortedCopy(batch)
			for split := 0; split <= len(data); split++ {
				s := m.NewStream()
				s.Write(data[:split])
				s.Write(data[split:])
				got := sortedCopy(s.Matches())
				if len(got) != len(want) {
					t.Fatalf("split %d: stream %d matches, batch %d",
						split, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("split %d: match %d = %+v, want %+v",
							split, i, got[i], want[i])
					}
				}
				if s.BytesSeen() != len(data) {
					t.Fatalf("split %d: BytesSeen %d, want %d",
						split, s.BytesSeen(), len(data))
				}
			}
		})
	}
}

// TestStreamThreeWaySplits cuts the input into three Writes at every
// pair of split points, catching carries that survive one boundary
// but not two.
func TestStreamThreeWaySplits(t *testing.T) {
	m := compileTestMatcher(t, []string{"abcabc", "cab", "bc"}, Options{})
	data := []byte("xabcabcabycabc")
	batch, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(batch)
	for i := 0; i <= len(data); i++ {
		for j := i; j <= len(data); j++ {
			s := m.NewStream()
			s.Write(data[:i])
			s.Write(data[i:j])
			s.Write(data[j:])
			got := sortedCopy(s.Matches())
			if len(got) != len(want) {
				t.Fatalf("splits (%d,%d): %d matches, want %d", i, j, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("splits (%d,%d): match %d = %+v, want %+v",
						i, j, k, got[k], want[k])
				}
			}
		}
	}
}

// TestStreamMultiSlot feeds a partitioned (multi-series-slot)
// dictionary one byte at a time: global pattern ids and offsets must
// survive slot remapping at every boundary.
func TestStreamMultiSlot(t *testing.T) {
	var pats []string
	for c := 'a'; c <= 'z'; c++ {
		pats = append(pats, strings.Repeat(string(c), 6))
	}
	bs := make([][]byte, len(pats))
	for i, p := range pats {
		bs[i] = []byte(p)
	}
	m, err := Compile(bs, Options{MaxStatesPerTile: 40})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().SeriesDepth < 2 {
		t.Fatalf("want multi-slot dictionary, depth %d", m.Stats().SeriesDepth)
	}
	data := []byte("zzzzzzz mmmmmm aaaaaaa")
	batch, err := m.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(batch)
	s := m.NewStream()
	for i := range data {
		s.Write(data[i : i+1])
	}
	got := sortedCopy(s.Matches())
	if len(got) != len(want) {
		t.Fatalf("byte-at-a-time stream %d matches, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
