package core

import (
	"bytes"
	"strings"
	"testing"
)

// stride2Matcher compiles the dictionary onto the stride-2 rung and
// fails the test if the rung does not come up.
func stride2Matcher(t *testing.T, dict []string, extra func(*EngineOptions)) *Matcher {
	t.Helper()
	opts := EngineOptions{Filter: FilterOff, Stride: 2}
	if extra != nil {
		extra(&opts)
	}
	m, err := CompileStrings(dict, Options{Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Engine; got != "stride2" {
		t.Fatalf("engine = %q, want stride2", got)
	}
	return m
}

// The stride-2 rung must agree with the stt reference on every prefix
// length (both parities of the odd tail) and every interleave lane
// count, and the per-request FindAllStride1 opt-out must agree too.
func TestStride2SplitPointEquivalence(t *testing.T) {
	dict := []string{"abra", "abracadabra", "cadab", "ra r"}
	data := []byte(strings.Repeat("abracadabra rabcad ", 10))
	_, sttM := engineMatchers(t, dict, false)
	lanes := make([]*Matcher, 9)
	for k := 1; k <= 8; k++ {
		kk := k
		lanes[k] = stride2Matcher(t, dict, func(o *EngineOptions) { o.InterleaveK = kk })
	}
	for n := 0; n <= len(data); n++ {
		prefix := data[:n]
		want, err := sttM.FindAll(prefix)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 8; k++ {
			got, err := lanes[k].FindAll(prefix)
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, "stride2 interleaved", got, want)
		}
		got, err := lanes[1].FindAllStride1(prefix)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "stride2 FindAllStride1", got, want)
	}
}

// The parallel pool and reader paths over a stride-2 engine must agree
// with the reference at every chunk size — with and without the
// per-request DisableStride2 opt-out.
func TestStride2ParallelSplitPoints(t *testing.T) {
	dict := []string{"abra", "abracadabra", "dabr"}
	data := []byte(strings.Repeat("abracadabra ", 12))
	m := stride2Matcher(t, dict, nil)
	_, sttM := engineMatchers(t, dict, false)
	want, err := sttM.FindAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test data has no matches")
	}
	for chunk := 1; chunk <= len(data); chunk++ {
		for _, disable := range []bool{false, true} {
			po := ParallelOptions{Workers: 3, ChunkBytes: chunk, DisableStride2: disable}
			got, err := m.FindAllParallel(data, po)
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, "stride2 parallel", got, want)
			streamed, err := m.ScanReader(bytes.NewReader(data), po)
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, "stride2 reader", streamed, want)
		}
	}
}

// Stream over the stride-2 engine must agree with the stt stream at
// every two-part cut — odd and even — and at every small chunk size.
func TestStride2StreamSplitPoints(t *testing.T) {
	dict := []string{"virus", "us vi", "rus"}
	data := []byte("virus us virus viruses rus")
	m := stride2Matcher(t, dict, nil)
	_, sttM := engineMatchers(t, dict, false)
	ref := sttM.NewStream()
	ref.Write(data)
	want := ref.Matches()
	if len(want) == 0 {
		t.Fatal("test data has no matches")
	}
	for cut := 0; cut <= len(data); cut++ {
		s := m.NewStream()
		s.Write(data[:cut])
		s.Write(data[cut:])
		assertSameMatches(t, "stride2 stream cut", s.Matches(), want)
	}
	for chunk := 1; chunk <= len(data); chunk++ {
		s := m.NewStream()
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			s.Write(data[off:end])
		}
		assertSameMatches(t, "stride2 stream chunks", s.Matches(), want)
		if s.BytesSeen() != len(data) {
			t.Fatalf("chunk %d: BytesSeen %d", chunk, s.BytesSeen())
		}
	}
}

// Every rung must report a consistent (EngineName, Stats().Engine,
// Stats().Stride, PairTableBytes) tuple — the serving layer surfaces
// all of them, so a mismatch is a live reporting bug.
func TestEngineNameStrideConsistency(t *testing.T) {
	cases := []struct {
		name       string
		opts       Options
		wantEngine string
		wantStride int
	}{
		{"stride2 auto", Options{}, "stride2", 2},
		{"kernel pinned", Options{Engine: EngineOptions{Stride: 1}}, "kernel", 1},
		{"stride2 forced", Options{Engine: EngineOptions{Stride: 2}}, "stride2", 2},
		{"stt", Options{Engine: EngineOptions{DisableKernel: true}}, "stt", 0},
	}
	for _, tc := range cases {
		m, err := CompileStrings([]string{"virus", "worm"}, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		st := m.Stats()
		if st.Engine != tc.wantEngine || m.EngineName() != tc.wantEngine {
			t.Fatalf("%s: Stats().Engine=%q EngineName()=%q, want %q",
				tc.name, st.Engine, m.EngineName(), tc.wantEngine)
		}
		if st.Stride != tc.wantStride {
			t.Fatalf("%s: Stats().Stride=%d, want %d", tc.name, st.Stride, tc.wantStride)
		}
		if (st.Engine == "stride2") != (st.PairTableBytes > 0) {
			t.Fatalf("%s: engine %q with PairTableBytes %d", tc.name, st.Engine, st.PairTableBytes)
		}
	}
}
