package dfa

import (
	"fmt"
	"sort"

	"cellmatch/internal/alphabet"
)

// acNode is one trie node during Aho-Corasick construction.
type acNode struct {
	children map[byte]int32
	fail     int32
	out      []int32
	depth    int
}

// FromPatterns builds the Aho-Corasick DFA for a dictionary, the
// paper's Section 3 construction: a goto trie, BFS failure links, and
// a dense next-move table so every transition is a single indexed load.
//
// Patterns are reduced through red before insertion; the DFA therefore
// runs over reduced input (apply red to the stream before scanning, as
// the paper's PPE-side data reduction does). Pattern IDs are indices
// into the patterns slice.
func FromPatterns(patterns [][]byte, red *alphabet.Reduction) (*DFA, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("dfa: empty dictionary")
	}
	if red == nil {
		red = alphabet.Identity()
	}
	if err := red.Validate(); err != nil {
		return nil, err
	}
	maxLen := 0
	nodes := []*acNode{{children: map[byte]int32{}}}
	for id, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("dfa: pattern %d is empty", id)
		}
		if len(p) > maxLen {
			maxLen = len(p)
		}
		cur := int32(0)
		for _, raw := range p {
			c := red.Map[raw]
			next, ok := nodes[cur].children[c]
			if !ok {
				next = int32(len(nodes))
				nodes = append(nodes, &acNode{
					children: map[byte]int32{},
					depth:    nodes[cur].depth + 1,
				})
				nodes[cur].children[c] = next
			}
			cur = next
		}
		nodes[cur].out = append(nodes[cur].out, int32(id))
	}

	// BFS failure links; out sets inherit along failure chains.
	queue := make([]int32, 0, len(nodes))
	for _, child := range sortedChildren(nodes[0]) {
		nodes[child].fail = 0
		queue = append(queue, child)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, c := range sortedSymbols(nodes[u]) {
			v := nodes[u].children[c]
			f := nodes[u].fail
			for {
				if next, ok := nodes[f].children[c]; ok && next != v {
					nodes[v].fail = next
					break
				}
				if f == 0 {
					nodes[v].fail = 0
					break
				}
				f = nodes[f].fail
			}
			nodes[v].out = append(nodes[v].out, nodes[nodes[v].fail].out...)
			queue = append(queue, v)
		}
	}

	// Dense delta: delta[s][c] = goto(s,c) if defined else delta[fail(s)][c].
	syms := red.Classes
	n := len(nodes)
	d := &DFA{
		Syms:          syms,
		Start:         0,
		Next:          make([]int32, n*syms),
		Accept:        make([]bool, n),
		Out:           make([][]int32, n),
		MaxPatternLen: maxLen,
	}
	// Process in BFS order so parents are resolved first.
	order := append([]int32{0}, queue...)
	for _, s := range order {
		node := nodes[s]
		for c := 0; c < syms; c++ {
			if next, ok := node.children[byte(c)]; ok {
				d.Next[int(s)*syms+c] = next
			} else if s == 0 {
				d.Next[c] = 0
			} else {
				d.Next[int(s)*syms+c] = d.Next[int(node.fail)*syms+c]
			}
		}
		d.Accept[s] = len(node.out) > 0
		if len(node.out) > 0 {
			out := append([]int32(nil), node.out...)
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			d.Out[s] = dedupe(out)
		}
	}
	return d, nil
}

func dedupe(sorted []int32) []int32 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func sortedChildren(n *acNode) []int32 {
	syms := sortedSymbols(n)
	out := make([]int32, len(syms))
	for i, c := range syms {
		out[i] = n.children[c]
	}
	return out
}

func sortedSymbols(n *acNode) []byte {
	out := make([]byte, 0, len(n.children))
	for c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TrieStates returns the number of Aho-Corasick states a dictionary
// needs without building the full DFA table — the quantity the tile
// partitioner budgets against (Figure 3 limits).
func TrieStates(patterns [][]byte, red *alphabet.Reduction) int {
	if red == nil {
		red = alphabet.Identity()
	}
	type key struct {
		node int32
		sym  byte
	}
	edges := map[key]int32{}
	n := int32(1)
	for _, p := range patterns {
		cur := int32(0)
		for _, raw := range p {
			c := red.Map[raw]
			k := key{cur, c}
			next, ok := edges[k]
			if !ok {
				next = n
				n++
				edges[k] = next
			}
			cur = next
		}
	}
	return int(n)
}
