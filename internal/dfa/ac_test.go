package dfa

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cellmatch/internal/alphabet"
)

// naiveFindAll is the oracle: positions where a (reduced) pattern ends
// in the (reduced) text.
func naiveFindAll(patterns [][]byte, text []byte, red *alphabet.Reduction) []Match {
	if red == nil {
		red = alphabet.Identity()
	}
	rt := red.Reduce(text)
	var out []Match
	for id, p := range patterns {
		rp := red.Reduce(p)
		for end := len(rp); end <= len(rt); end++ {
			if bytes.Equal(rt[end-len(rp):end], rp) {
				out = append(out, Match{Pattern: int32(id), End: end})
			}
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Pattern < ms[j].Pattern
	})
}

// naiveFinalEntries counts positions where at least one pattern ends.
func naiveFinalEntries(patterns [][]byte, text []byte, red *alphabet.Reduction) int {
	ms := naiveFindAll(patterns, text, red)
	seen := map[int]bool{}
	for _, m := range ms {
		seen[m.End] = true
	}
	return len(seen)
}

func pats(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestACBasic(t *testing.T) {
	d, err := FromPatterns(pats("HE", "SHE", "HIS", "HERS"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	text := []byte("USHERS")
	got := d.FindAll(text)
	sortMatches(got)
	want := naiveFindAll(pats("HE", "SHE", "HIS", "HERS"), text, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Classic: USHERS contains SHE (end 4), HE (end 4), HERS (end 6).
	if len(got) != 3 {
		t.Fatalf("expected 3 matches, got %v", got)
	}
}

func TestACCountFinalEntries(t *testing.T) {
	p := pats("AB", "BC")
	d, err := FromPatterns(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("ABCABC")
	// Ends: AB at 2, BC at 3, AB at 5, BC at 6 -> 4 distinct positions.
	if got := d.CountFinalEntries(text); got != naiveFinalEntries(p, text, nil) {
		t.Fatalf("count = %d, oracle = %d", got, naiveFinalEntries(p, text, nil))
	}
}

func TestACOverlappingPatterns(t *testing.T) {
	p := pats("AA", "AAA")
	d, err := FromPatterns(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("AAAA")
	got := d.FindAll(text)
	sortMatches(got)
	want := naiveFindAll(p, text, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestACSubstringPattern(t *testing.T) {
	// One pattern inside another: failure-chain output merging.
	p := pats("ABCDE", "BCD", "C")
	d, err := FromPatterns(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := []byte("XABCDEX")
	got := d.FindAll(text)
	sortMatches(got)
	want := naiveFindAll(p, text, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestACDuplicatePatterns(t *testing.T) {
	p := pats("DUP", "DUP")
	d, err := FromPatterns(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := d.FindAll([]byte("XDUPX"))
	if len(got) != 2 {
		t.Fatalf("duplicate patterns should both report: %v", got)
	}
}

func TestACWithReduction(t *testing.T) {
	red := alphabet.CaseFold32()
	p := pats("VIRUS")
	d, err := FromPatterns(p, red)
	if err != nil {
		t.Fatal(err)
	}
	// Scan must be over reduced text; case differences vanish.
	text := red.Reduce([]byte("a virus! And A VIRUS too"))
	if got := d.CountFinalEntries(text); got != 2 {
		t.Fatalf("case-folded count = %d, want 2", got)
	}
}

func TestACEmptyInputs(t *testing.T) {
	if _, err := FromPatterns(nil, nil); err == nil {
		t.Fatal("empty dictionary accepted")
	}
	if _, err := FromPatterns(pats("A", ""), nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestACMaxPatternLen(t *testing.T) {
	d, err := FromPatterns(pats("AB", "ABCDEF", "XY"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxPatternLen != 6 {
		t.Fatalf("MaxPatternLen = %d", d.MaxPatternLen)
	}
}

func TestACStateCountIsTrieSize(t *testing.T) {
	p := pats("HE", "SHE", "HIS", "HERS")
	d, err := FromPatterns(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Trie: root,H,HE,S,SH,SHE,HI,HIS,HER,HERS = 10 nodes.
	if d.NumStates() != 10 {
		t.Fatalf("states = %d, want 10", d.NumStates())
	}
	if TrieStates(p, nil) != 10 {
		t.Fatalf("TrieStates = %d", TrieStates(p, nil))
	}
}

func TestTrieStatesSharedPrefix(t *testing.T) {
	if n := TrieStates(pats("ABC", "ABD"), nil); n != 5 {
		t.Fatalf("shared-prefix trie = %d, want 5", n)
	}
}

func TestACStartNotAccepting(t *testing.T) {
	d, err := FromPatterns(pats("A"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accept[d.Start] {
		t.Fatal("start state accepting with nonempty patterns")
	}
}

// Differential property test: random small dictionaries over a tiny
// alphabet (to force overlaps and failure transitions) against the
// naive oracle, both for FindAll and CountFinalEntries.
func TestACRandomizedVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	letters := []byte("AB")
	for trial := 0; trial < 300; trial++ {
		np := 1 + rng.Intn(5)
		dict := make([][]byte, np)
		for i := range dict {
			l := 1 + rng.Intn(5)
			p := make([]byte, l)
			for j := range p {
				p[j] = letters[rng.Intn(len(letters))]
			}
			dict[i] = p
		}
		text := make([]byte, rng.Intn(60))
		for j := range text {
			text[j] = letters[rng.Intn(len(letters))]
		}
		d, err := FromPatterns(dict, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := d.FindAll(text)
		sortMatches(got)
		want := naiveFindAll(dict, text, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: dict %q text %q:\ngot  %v\nwant %v",
				trial, dict, text, got, want)
		}
		if c := d.CountFinalEntries(text); c != naiveFinalEntries(dict, text, nil) {
			t.Fatalf("trial %d: count %d vs oracle %d", trial, c,
				naiveFinalEntries(dict, text, nil))
		}
	}
}

// Larger randomized trial over the paper's 32-symbol reduced alphabet.
func TestACRandomizedReducedAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	red := alphabet.CaseFold32()
	for trial := 0; trial < 50; trial++ {
		np := 1 + rng.Intn(8)
		dict := make([][]byte, np)
		for i := range dict {
			l := 2 + rng.Intn(6)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('A' + rng.Intn(26))
			}
			dict[i] = p
		}
		text := make([]byte, 200)
		for j := range text {
			text[j] = byte('A' + rng.Intn(26))
		}
		d, err := FromPatterns(dict, red)
		if err != nil {
			t.Fatal(err)
		}
		rt := red.Reduce(text)
		got := d.FindAll(rt)
		sortMatches(got)
		want := naiveFindAll(dict, text, red)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d mismatch: dict %q", trial, dict)
		}
	}
}

func TestACDenseTableClosure(t *testing.T) {
	// Every state must have a transition for every symbol (the dense
	// next-move property the STT encoding depends on).
	d, err := FromPatterns(pats("ABC", "BCA"), nil)
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumStates()
	for s := 0; s < n; s++ {
		for c := 0; c < d.Syms; c++ {
			nx := d.Step(s, byte(c))
			if nx < 0 || nx >= n {
				t.Fatalf("state %d sym %d -> %d out of range", s, c, nx)
			}
		}
	}
}
