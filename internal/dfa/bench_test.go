package dfa

import (
	"fmt"
	"math/rand"
	"testing"

	"cellmatch/internal/alphabet"
)

func benchDict(states int) [][]byte {
	rng := rand.New(rand.NewSource(5))
	var pats [][]byte
	for n := 1; n < states; n += 25 {
		p := make([]byte, 25)
		seed := len(pats)
		p[0] = byte('A' + seed%26)
		p[1] = byte('A' + (seed/26)%26)
		for j := 2; j < 25; j++ {
			p[j] = byte('A' + rng.Intn(26))
		}
		pats = append(pats, p)
	}
	return pats
}

// BenchmarkACConstruction measures dictionary compile time at the
// Figure 3 tile sizes.
func BenchmarkACConstruction(b *testing.B) {
	red := alphabet.CaseFold32()
	for _, states := range []int{760, 1520, 6080} {
		pats := benchDict(states)
		b.Run(fmt.Sprintf("states%d", states), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FromPatterns(pats, red); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDFAScan is the raw index-table scan rate.
func BenchmarkDFAScan(b *testing.B) {
	red := alphabet.CaseFold32()
	d, err := FromPatterns(benchDict(1520), red)
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 1<<20)
	rng := rand.New(rand.NewSource(7))
	for i := range input {
		input[i] = byte(rng.Intn(d.Syms))
	}
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.CountFinalEntries(input)
	}
}

// BenchmarkRegexCompile measures the regex->minimized-DFA pipeline.
func BenchmarkRegexCompile(b *testing.B) {
	red := alphabet.CaseFold32()
	for i := 0; i < b.N; i++ {
		if _, err := CompileRegex("(virus|worm|trojan)[0-9]{1,3}", red); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimize measures Hopcroft on a mid-size automaton.
func BenchmarkMinimize(b *testing.B) {
	red := alphabet.CaseFold32()
	d, err := FromPatterns(benchDict(760), red)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minimize(d)
	}
}

// BenchmarkSerialize measures artifact marshal/unmarshal.
func BenchmarkSerialize(b *testing.B) {
	red := alphabet.CaseFold32()
	d, err := FromPatterns(benchDict(1520), red)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var back DFA
		if err := back.UnmarshalBinary(blob); err != nil {
			b.Fatal(err)
		}
	}
}
