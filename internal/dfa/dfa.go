// Package dfa implements the automata underlying the paper's string
// acceptors: deterministic finite automata over a reduced symbol
// alphabet, built either from dictionaries via Aho-Corasick (the
// paper's primary use case, Section 3) or from regular expressions via
// Thompson construction, subset construction and Hopcroft minimization
// (the paper cites Chang & Paige for the regex-to-DFA path).
//
// A DFA here is the quintuple (Sigma, S, s0, delta, F) of Section 3:
// Sigma is the reduced symbol set 0..Syms-1, delta is a dense table
// (one row per state, one column per symbol), and F is the accept set.
// The "enter a final state" event is the paper's match signal; Out
// optionally carries the dictionary pattern IDs recognized at each
// final state for reporting modes richer than the paper's 1-bit flag.
package dfa

import (
	"fmt"
	"sort"
)

// DFA is a deterministic finite automaton over symbols 0..Syms-1.
type DFA struct {
	// Syms is the alphabet size (the reduced symbol count).
	Syms int
	// Start is the initial state s0.
	Start int
	// Next holds the dense transition table: Next[s*Syms+c] is the
	// successor of state s on symbol c.
	Next []int32
	// Accept flags the final states F.
	Accept []bool
	// Out optionally lists the pattern IDs recognized when entering
	// each state (used by Aho-Corasick reporting). May be nil.
	Out [][]int32
	// MaxPatternLen is the longest dictionary entry, needed by stream
	// splitting to size boundary overlaps. Zero when unknown.
	MaxPatternLen int
}

// NumStates returns |S|.
func (d *DFA) NumStates() int {
	if d.Syms == 0 {
		return 0
	}
	return len(d.Next) / d.Syms
}

// Step performs one transition.
func (d *DFA) Step(s int, sym byte) int {
	return int(d.Next[s*d.Syms+int(sym)])
}

// Validate checks structural invariants: table shape, transition
// targets in range, start state in range, accept/out lengths.
func (d *DFA) Validate() error {
	if d.Syms <= 0 || d.Syms > 256 {
		return fmt.Errorf("dfa: alphabet size %d out of range", d.Syms)
	}
	if len(d.Next)%d.Syms != 0 {
		return fmt.Errorf("dfa: table length %d not a multiple of %d", len(d.Next), d.Syms)
	}
	n := d.NumStates()
	if n == 0 {
		return fmt.Errorf("dfa: no states")
	}
	if d.Start < 0 || d.Start >= n {
		return fmt.Errorf("dfa: start state %d out of range", d.Start)
	}
	if len(d.Accept) != n {
		return fmt.Errorf("dfa: accept length %d != states %d", len(d.Accept), n)
	}
	if d.Out != nil && len(d.Out) != n {
		return fmt.Errorf("dfa: out length %d != states %d", len(d.Out), n)
	}
	for i, t := range d.Next {
		if int(t) < 0 || int(t) >= n {
			return fmt.Errorf("dfa: transition %d -> %d out of range", i, t)
		}
	}
	return nil
}

// Run consumes reduced input from state s and returns the final state.
func (d *DFA) Run(s int, input []byte) int {
	for _, c := range input {
		s = d.Step(s, c)
	}
	return s
}

// Accepts reports whether the DFA accepts exactly the given input
// (classic acceptor semantics from the start state).
func (d *DFA) Accepts(input []byte) bool {
	return d.Accept[d.Run(d.Start, input)]
}

// CountFinalEntries scans input from the start state and counts how
// many transitions enter a final state. This is precisely what the
// paper's SPE kernels compute ("counts the number of occurrences of
// dictionary entries in the given block", Section 4).
func (d *DFA) CountFinalEntries(input []byte) int {
	count := 0
	s := d.Start
	for _, c := range input {
		s = d.Step(s, c)
		if d.Accept[s] {
			count++
		}
	}
	return count
}

// Match is one reported dictionary hit: pattern Pattern ends at byte
// offset End-1 of the scanned input.
type Match struct {
	Pattern int32
	End     int
}

// SortMatches orders matches by (End, Pattern) — the canonical report
// order shared by every scan engine (compose, parallel, kernel), so
// their outputs stay byte-for-byte comparable.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Pattern < ms[j].Pattern
	})
}

// FindAll scans input and reports every (pattern, end) pair using the
// Out sets. It requires Out to be populated (Aho-Corasick DFAs).
func (d *DFA) FindAll(input []byte) []Match {
	if d.Out == nil {
		panic("dfa: FindAll on a DFA without output sets")
	}
	var out []Match
	s := d.Start
	for i, c := range input {
		s = d.Step(s, c)
		for _, p := range d.Out[s] {
			out = append(out, Match{Pattern: p, End: i + 1})
		}
	}
	return out
}

// Reachable returns the set of states reachable from Start, used by
// tests and by the partitioner.
func (d *DFA) Reachable() []bool {
	n := d.NumStates()
	seen := make([]bool, n)
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := 0; c < d.Syms; c++ {
			t := int(d.Next[s*d.Syms+c])
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// Clone returns a deep copy.
func (d *DFA) Clone() *DFA {
	c := &DFA{
		Syms:          d.Syms,
		Start:         d.Start,
		Next:          append([]int32(nil), d.Next...),
		Accept:        append([]bool(nil), d.Accept...),
		MaxPatternLen: d.MaxPatternLen,
	}
	if d.Out != nil {
		c.Out = make([][]int32, len(d.Out))
		for i, o := range d.Out {
			c.Out[i] = append([]int32(nil), o...)
		}
	}
	return c
}

// Equivalent reports whether two DFAs accept the same language, by a
// product-construction reachability walk. Used by minimization tests.
func Equivalent(a, b *DFA) bool {
	if a.Syms != b.Syms {
		return false
	}
	type pair struct{ x, y int32 }
	seen := map[pair]bool{}
	stack := []pair{{int32(a.Start), int32(b.Start)}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.Accept[p.x] != b.Accept[p.y] {
			return false
		}
		for c := 0; c < a.Syms; c++ {
			q := pair{a.Next[int(p.x)*a.Syms+c], b.Next[int(p.y)*b.Syms+c]}
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return true
}
