package dfa

import (
	"sort"
)

// Minimize returns the Hopcroft-minimized equivalent of d. States are
// first restricted to those reachable from the start state. When d
// carries Out sets, states with different output sets are kept in
// different classes so reporting semantics survive minimization.
func Minimize(d *DFA) *DFA {
	n := d.NumStates()
	syms := d.Syms

	// Restrict to reachable states.
	reach := d.Reachable()
	remap := make([]int32, n)
	var states []int32
	for s := 0; s < n; s++ {
		if reach[s] {
			remap[s] = int32(len(states))
			states = append(states, int32(s))
		} else {
			remap[s] = -1
		}
	}
	m := len(states)

	// Initial partition: group by (accept, out-set signature).
	sig := make(map[string][]int32)
	for i, orig := range states {
		key := sigKey(d, int(orig))
		sig[key] = append(sig[key], int32(i))
	}
	// block[i] = partition index of compact state i.
	block := make([]int32, m)
	var blocks [][]int32
	keys := make([]string, 0, len(sig))
	for k := range sig {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		id := int32(len(blocks))
		for _, s := range sig[k] {
			block[s] = id
		}
		blocks = append(blocks, sig[k])
	}

	// Compact transition table and inverse edges.
	next := make([]int32, m*syms)
	for i, orig := range states {
		for c := 0; c < syms; c++ {
			next[i*syms+c] = remap[d.Next[int(orig)*syms+c]]
		}
	}
	inv := make([][]int32, m*syms) // inv[t*syms+c] = sources
	for s := 0; s < m; s++ {
		for c := 0; c < syms; c++ {
			t := next[s*syms+c]
			inv[int(t)*syms+c] = append(inv[int(t)*syms+c], int32(s))
		}
	}

	// Hopcroft worklist refinement.
	type work struct {
		blk int32
		sym int
	}
	var worklist []work
	inWork := map[work]bool{}
	for b := range blocks {
		for c := 0; c < syms; c++ {
			w := work{int32(b), c}
			worklist = append(worklist, w)
			inWork[w] = true
		}
	}
	for len(worklist) > 0 {
		w := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		delete(inWork, w)
		// X = states with a c-transition into block w.blk.
		touched := map[int32][]int32{} // block -> members hit
		for _, t := range blocks[w.blk] {
			for _, s := range inv[int(t)*syms+w.sym] {
				touched[block[s]] = append(touched[block[s]], s)
			}
		}
		var tb []int32
		for b := range touched {
			tb = append(tb, b)
		}
		sort.Slice(tb, func(i, j int) bool { return tb[i] < tb[j] })
		for _, b := range tb {
			hit := touched[b]
			if len(hit) == len(blocks[b]) {
				continue // whole block hit: no split
			}
			// Split block b into hit / rest.
			hitSet := make(map[int32]bool, len(hit))
			for _, s := range hit {
				hitSet[s] = true
			}
			var rest []int32
			for _, s := range blocks[b] {
				if !hitSet[s] {
					rest = append(rest, s)
				}
			}
			newID := int32(len(blocks))
			// Keep the smaller part as the new block (Hopcroft's trick).
			small, large := hit, rest
			if len(rest) < len(hit) {
				small, large = rest, hit
			}
			blocks[b] = large
			blocks = append(blocks, small)
			for _, s := range small {
				block[s] = newID
			}
			for c := 0; c < syms; c++ {
				wOld := work{b, c}
				wNew := work{newID, c}
				if inWork[wOld] {
					worklist = append(worklist, wNew)
					inWork[wNew] = true
				} else {
					// Add the smaller of the two.
					if !inWork[wNew] {
						worklist = append(worklist, wNew)
						inWork[wNew] = true
					}
				}
			}
		}
	}

	// Build the quotient automaton. Renumber blocks in BFS order from
	// the start block for determinism.
	startBlk := block[remap[d.Start]]
	order := make([]int32, 0, len(blocks))
	seen := make(map[int32]bool)
	queue := []int32{startBlk}
	seen[startBlk] = true
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		order = append(order, b)
		rep := blocks[b][0]
		for c := 0; c < syms; c++ {
			nb := block[next[int(rep)*syms+c]]
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	newID := make(map[int32]int32, len(order))
	for i, b := range order {
		newID[b] = int32(i)
	}
	out := &DFA{
		Syms:          syms,
		Start:         0,
		Next:          make([]int32, len(order)*syms),
		Accept:        make([]bool, len(order)),
		MaxPatternLen: d.MaxPatternLen,
	}
	hasOut := d.Out != nil
	if hasOut {
		out.Out = make([][]int32, len(order))
	}
	for i, b := range order {
		rep := blocks[b][0]
		orig := states[rep]
		out.Accept[i] = d.Accept[orig]
		if hasOut && d.Out[orig] != nil {
			out.Out[i] = append([]int32(nil), d.Out[orig]...)
		}
		for c := 0; c < syms; c++ {
			out.Next[i*syms+c] = newID[block[next[int(rep)*syms+c]]]
		}
	}
	return out
}

// sigKey builds the initial-partition signature of a state.
func sigKey(d *DFA, s int) string {
	key := []byte{0}
	if d.Accept[s] {
		key[0] = 1
	}
	if d.Out != nil {
		for _, p := range d.Out[s] {
			key = append(key, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
	}
	return string(key)
}
