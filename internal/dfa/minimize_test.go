package dfa

import (
	"math/rand"
	"testing"
)

// buildRedundant returns a DFA for "ends with 'ab'" padded with
// duplicate and unreachable states.
func buildRedundant() *DFA {
	// States: 0 (seen nothing useful), 1 (seen a), 2 (seen ab, accept),
	// 3 duplicate of 0, 4 unreachable.
	syms := 2 // 0='a', 1='b'
	next := []int32{
		1, 0, // 0
		1, 2, // 1
		1, 0, // 2
		1, 3, // 3 behaves like 0
		4, 4, // 4 unreachable
	}
	return &DFA{Syms: syms, Start: 3, Next: next, Accept: []bool{false, false, true, false, false}}
}

func TestMinimizeReduces(t *testing.T) {
	d := buildRedundant()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	m := Minimize(d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 3 {
		t.Fatalf("minimized states = %d, want 3", m.NumStates())
	}
	if !Equivalent(d, m) {
		t.Fatal("minimization changed the language")
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	m := Minimize(buildRedundant())
	m2 := Minimize(m)
	if m2.NumStates() != m.NumStates() {
		t.Fatalf("second minimization changed size: %d -> %d", m.NumStates(), m2.NumStates())
	}
	if !Equivalent(m, m2) {
		t.Fatal("idempotence violated")
	}
}

func TestMinimizePreservesLanguageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		syms := 2 + rng.Intn(3)
		d := &DFA{
			Syms:   syms,
			Start:  rng.Intn(n),
			Next:   make([]int32, n*syms),
			Accept: make([]bool, n),
		}
		for i := range d.Next {
			d.Next[i] = int32(rng.Intn(n))
		}
		for i := range d.Accept {
			d.Accept[i] = rng.Intn(3) == 0
		}
		m := Minimize(d)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !Equivalent(d, m) {
			t.Fatalf("trial %d: language changed", trial)
		}
		if m.NumStates() > d.NumStates() {
			t.Fatalf("trial %d: grew from %d to %d states", trial, d.NumStates(), m.NumStates())
		}
		// Inputs agree too (belt and braces beyond Equivalent).
		for k := 0; k < 20; k++ {
			in := make([]byte, rng.Intn(12))
			for j := range in {
				in[j] = byte(rng.Intn(syms))
			}
			if d.Accepts(in) != m.Accepts(in) {
				t.Fatalf("trial %d: disagree on %v", trial, in)
			}
		}
	}
}

func TestMinimizePreservesOutputs(t *testing.T) {
	// Two accept states with different pattern outputs must not merge.
	d, err := FromPatterns(pats("AA", "BB"), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := Minimize(d)
	text := []byte("AABB")
	got := m.FindAll(text)
	sortMatches(got)
	want := naiveFindAll(pats("AA", "BB"), text, nil)
	if len(got) != len(want) {
		t.Fatalf("minimized AC lost matches: %v vs %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("minimized AC outputs differ: %v vs %v", got, want)
		}
	}
}

func TestMinimizeDropsUnreachable(t *testing.T) {
	d := buildRedundant()
	m := Minimize(d)
	reach := m.Reachable()
	for s, r := range reach {
		if !r {
			t.Fatalf("state %d unreachable after minimization", s)
		}
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := mustCompile(t, "ab")
	b := mustCompile(t, "ab|ac")
	if Equivalent(a, b) {
		t.Fatal("different languages reported equivalent")
	}
	if !Equivalent(a, a.Clone()) {
		t.Fatal("clone not equivalent")
	}
}

func TestCloneIndependence(t *testing.T) {
	d, err := FromPatterns(pats("XY"), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	c.Next[0] = 1
	c.Accept[0] = true
	if d.Next[0] == 1 && d.Accept[0] {
		t.Fatal("clone shares storage")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d, err := FromPatterns(pats("AB"), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Clone()
	c.Next[3] = 9999
	if c.Validate() == nil {
		t.Fatal("out-of-range transition not caught")
	}
	c2 := d.Clone()
	c2.Start = -1
	if c2.Validate() == nil {
		t.Fatal("bad start not caught")
	}
	c3 := d.Clone()
	c3.Accept = c3.Accept[:1]
	if c3.Validate() == nil {
		t.Fatal("accept length not caught")
	}
}
