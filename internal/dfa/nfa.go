package dfa

import (
	"fmt"
	"sort"
)

// NFA is a nondeterministic finite automaton with epsilon moves over
// symbols 0..Syms-1, in the Thompson normal form produced by the regex
// compiler: one start state, one accept state. The search compiler
// additionally tags states with pattern ids (Tag), turning the
// determinized automaton into a multi-accept reporter like the
// Aho-Corasick DFAs.
type NFA struct {
	Syms   int
	Start  int32
	Accept int32
	states []nfaState
	tags   map[int32]int32 // accept state -> pattern id (search form)
}

type nfaState struct {
	eps   []int32
	edges []nfaEdge
}

type nfaEdge struct {
	sym byte
	to  int32
}

// NewNFA returns an empty NFA over the given alphabet.
func NewNFA(syms int) *NFA { return &NFA{Syms: syms} }

// AddState appends a state and returns its index.
func (n *NFA) AddState() int32 {
	n.states = append(n.states, nfaState{})
	return int32(len(n.states) - 1)
}

// NumStates returns the state count.
func (n *NFA) NumStates() int { return len(n.states) }

// AddEps adds an epsilon transition.
func (n *NFA) AddEps(from, to int32) {
	n.states[from].eps = append(n.states[from].eps, to)
}

// Tag marks state s as an accept for pattern id. Tagged NFAs are
// determinized with DeterminizeTagged, which carries the ids into the
// DFA's Out sets (the multi-pattern search form); the single Accept
// field is ignored for such automata.
func (n *NFA) Tag(s, id int32) {
	if n.tags == nil {
		n.tags = make(map[int32]int32)
	}
	n.tags[s] = id
}

// AddEdge adds a symbol transition.
func (n *NFA) AddEdge(from int32, sym byte, to int32) {
	if int(sym) >= n.Syms {
		panic(fmt.Sprintf("nfa: symbol %d out of alphabet %d", sym, n.Syms))
	}
	n.states[from].edges = append(n.states[from].edges, nfaEdge{sym, to})
}

// epsClosure expands set (sorted, deduped) to its epsilon closure,
// returned sorted.
func (n *NFA) epsClosure(set []int32) []int32 {
	seen := make(map[int32]bool, len(set))
	stack := append([]int32(nil), set...)
	for _, s := range set {
		seen[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.states[s].eps {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// move returns the states reachable from set on sym (unsorted, deduped).
func (n *NFA) move(set []int32, sym byte) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, s := range set {
		for _, e := range n.states[s].edges {
			if e.sym == sym && !seen[e.to] {
				seen[e.to] = true
				out = append(out, e.to)
			}
		}
	}
	return out
}

// MatchNFA reports whether the NFA accepts input, by direct subset
// simulation. It is the oracle the determinizer is tested against.
func (n *NFA) MatchNFA(input []byte) bool {
	cur := n.epsClosure([]int32{n.Start})
	for _, c := range input {
		if len(cur) == 0 {
			return false
		}
		cur = n.epsClosure(n.move(cur, c))
	}
	for _, s := range cur {
		if s == n.Accept {
			return true
		}
	}
	return false
}

// DeterminizeLimit bounds subset construction; regular expressions with
// exponential DFAs are rejected rather than exhausting memory.
const DeterminizeLimit = 1 << 18

// Determinize runs subset construction and returns an equivalent DFA.
func (n *NFA) Determinize() (*DFA, error) {
	contains := func(set []int32, s int32) bool {
		i := sort.Search(len(set), func(i int) bool { return set[i] >= s })
		return i < len(set) && set[i] == s
	}
	return n.determinize(func(set []int32) (bool, []int32) {
		return contains(set, n.Accept), nil
	})
}

// DeterminizeTagged runs subset construction on a Tag-annotated NFA,
// carrying the pattern ids of tagged member states into each DFA
// state's Out set (sorted, deduplicated). A state accepts iff its Out
// set is non-empty — the same reporting contract as the Aho-Corasick
// DFAs, so the result feeds every downstream scan engine unchanged.
func (n *NFA) DeterminizeTagged() (*DFA, error) {
	return n.determinize(func(set []int32) (bool, []int32) {
		var out []int32
		seen := map[int32]bool{}
		for _, s := range set {
			if id, ok := n.tags[s]; ok && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return len(out) > 0, out
	})
}

// determinize is the shared subset construction; classify computes
// each subset state's (accept, out) annotation.
func (n *NFA) determinize(classify func([]int32) (bool, []int32)) (*DFA, error) {
	if n.NumStates() == 0 {
		return nil, fmt.Errorf("dfa: empty NFA")
	}
	type setKey string
	key := func(set []int32) setKey {
		b := make([]byte, 0, len(set)*4)
		for _, s := range set {
			b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
		}
		return setKey(b)
	}
	start := n.epsClosure([]int32{n.Start})
	index := map[setKey]int32{key(start): 0}
	sets := [][]int32{start}
	var next []int32
	var accept []bool
	var outs [][]int32
	add := func(set []int32) {
		a, o := classify(set)
		accept = append(accept, a)
		outs = append(outs, o)
		next = append(next, make([]int32, n.Syms)...)
	}
	add(start)
	for i := 0; i < len(sets); i++ {
		for c := 0; c < n.Syms; c++ {
			dst := n.epsClosure(n.move(sets[i], byte(c)))
			k := key(dst)
			j, ok := index[k]
			if !ok {
				j = int32(len(sets))
				if int(j) >= DeterminizeLimit {
					return nil, fmt.Errorf("dfa: subset construction exceeded %d states", DeterminizeLimit)
				}
				index[k] = j
				sets = append(sets, dst)
				add(dst)
			}
			next[i*n.Syms+c] = j
		}
	}
	d := &DFA{Syms: n.Syms, Start: 0, Next: next, Accept: accept}
	if n.tags != nil {
		d.Out = outs
	}
	return d, nil
}
