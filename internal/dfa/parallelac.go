package dfa

import (
	"fmt"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/fanout"
)

// parallelMinPatterns gates the parallel construction: below this the
// goroutine fan-out costs more than the build itself and the sequential
// path wins outright.
const parallelMinPatterns = 64

// FromPatternsParallel is FromPatterns with the construction spread
// over up to `workers` goroutines (fanout semantics: 0 = one per core,
// 1 = the sequential reference path). The result is bit-identical to
// FromPatterns for any worker count — same state numbering, same Next
// table, same output sets — which is the invariant every caller
// (golden fixtures, artifact round trips, delta recompiles) leans on.
//
// The decomposition exploits two structural facts of the AC build:
//
//   - Goto-trie subtrees under distinct first symbols are disjoint, so
//     the trie is built per first-symbol partition concurrently and the
//     sequential insertion-order state numbering is reconstructed
//     exactly afterwards: each partition records how many nodes every
//     pattern created (a quantity independent of the other partitions),
//     a sequential prefix-sum over patterns assigns each pattern its
//     global id block, and each partition renumbers its local nodes —
//     created contiguously per pattern, in path order, exactly as the
//     sequential insert would have — into those blocks.
//
//   - fail(v) has strictly smaller depth than v, and the dense row of a
//     state only reads its failure state's row. Processing depth levels
//     in order with a barrier between them makes every cross-node read
//     target a completed shallower level, so failure links, inherited
//     output sets, and dense rows all fill level-parallel.
func FromPatternsParallel(patterns [][]byte, red *alphabet.Reduction, workers int) (*DFA, error) {
	if fanout.Workers(workers) <= 1 || len(patterns) < parallelMinPatterns {
		return FromPatterns(patterns, red)
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("dfa: empty dictionary")
	}
	if red == nil {
		red = alphabet.Identity()
	}
	if err := red.Validate(); err != nil {
		return nil, err
	}
	maxLen := 0
	for id, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("dfa: pattern %d is empty", id)
		}
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}

	// Partition patterns by first reduced symbol, preserving order.
	var partOf [256][]int32
	for id, p := range patterns {
		c := red.Map[p[0]]
		partOf[c] = append(partOf[c], int32(id))
	}
	var parts [][]int32
	var partSym []byte
	for c := 0; c < 256; c++ {
		if len(partOf[c]) > 0 {
			parts = append(parts, partOf[c])
			partSym = append(partSym, byte(c))
		}
	}

	// Per-partition local tries. Local node ids are creation-ordered;
	// the nodes a pattern creates are contiguous and in path order, the
	// same shape the sequential insert produces.
	type localNode struct {
		children map[byte]int32
		parent   int32 // local id; -1 = global root
		psym     byte
		depth    int32
		out      []int32 // global pattern ids
	}
	type partTrie struct {
		nodes []localNode
	}
	tries := make([]*partTrie, len(parts))
	newCount := make([]int32, len(patterns)) // nodes created by each pattern
	fanout.ForEach(len(parts), workers, func(pi int) {
		t := &partTrie{}
		root := map[byte]int32{}
		for _, id := range parts[pi] {
			p := patterns[id]
			cur := int32(-1) // -1 = global root
			created := int32(0)
			for d, raw := range p {
				c := red.Map[raw]
				var children map[byte]int32
				if cur < 0 {
					children = root
				} else {
					children = t.nodes[cur].children
				}
				next, ok := children[c]
				if !ok {
					next = int32(len(t.nodes))
					t.nodes = append(t.nodes, localNode{
						children: map[byte]int32{},
						parent:   cur,
						psym:     c,
						depth:    int32(d + 1),
					})
					children[c] = next
					created++
				}
				cur = next
			}
			t.nodes[cur].out = append(t.nodes[cur].out, int32(id))
			newCount[id] = created
		}
		tries[pi] = t
	})

	// Sequential prefix-sum: pattern i's new nodes get global ids
	// [base[i], base[i]+newCount[i]), exactly the ids the sequential
	// insert hands out.
	base := make([]int32, len(patterns))
	total := int32(1) // root = state 0
	for i := range patterns {
		base[i] = total
		total += newCount[i]
	}
	n := int(total)

	// Global node arrays (struct-of-arrays: the level passes touch one
	// attribute at a time across many states).
	parent := make([]int32, n)
	psym := make([]byte, n)
	depth := make([]int32, n)
	childOf := make([]map[byte]int32, n)
	outs := make([][]int32, n)
	childOf[0] = map[byte]int32{}
	maxDepth := 0
	for pi := range parts {
		if int(tries[pi].nodes[0].depth) != 1 {
			// First created node of a partition is its depth-1 root child
			// by construction.
			panic("dfa: partition root child not created first")
		}
	}
	fanout.ForEach(len(parts), workers, func(pi int) {
		t := tries[pi]
		// local -> global: walk this partition's patterns in order; the
		// nodes each created are the next contiguous local-id run.
		l2g := make([]int32, len(t.nodes))
		next := int32(0)
		for _, id := range parts[pi] {
			for k := int32(0); k < newCount[id]; k++ {
				l2g[next] = base[id] + k
				next++
			}
		}
		for lj := range t.nodes {
			ln := &t.nodes[lj]
			g := l2g[lj]
			if ln.parent < 0 {
				parent[g] = 0
			} else {
				parent[g] = l2g[ln.parent]
			}
			psym[g] = ln.psym
			depth[g] = ln.depth
			cm := make(map[byte]int32, len(ln.children))
			for c, lc := range ln.children {
				cm[c] = l2g[lc]
			}
			childOf[g] = cm
			if len(ln.out) > 0 {
				outs[g] = append([]int32(nil), ln.out...)
			}
		}
	})
	// Root children: one depth-1 node per partition (local id 0).
	for pi := range parts {
		// Local id 0 is the partition's depth-1 node; its global id is
		// the first id of the partition's first pattern's block.
		first := parts[pi][0]
		childOf[0][partSym[pi]] = base[first]
	}
	for g := 1; g < n; g++ {
		if int(depth[g]) > maxDepth {
			maxDepth = int(depth[g])
		}
	}

	// Bucket states by depth for the level passes.
	levels := make([][]int32, maxDepth+1)
	levels[0] = []int32{0}
	for g := int32(1); g < int32(n); g++ {
		levels[depth[g]] = append(levels[depth[g]], g)
	}

	// Failure links + output inheritance, level by level. fail(v) lives
	// at a strictly shallower depth, so by the time level d runs, every
	// fail target (and its fully inherited out set) is settled.
	fail := make([]int32, n)
	for d := 1; d <= maxDepth; d++ {
		lvl := levels[d]
		fanout.ForEach(len(lvl), workers, func(li int) {
			v := lvl[li]
			if d == 1 {
				fail[v] = 0
			} else {
				c := psym[v]
				f := fail[parent[v]]
				for {
					if next, ok := childOf[f][c]; ok && next != v {
						fail[v] = next
						break
					}
					if f == 0 {
						fail[v] = 0
						break
					}
					f = fail[f]
				}
			}
			if fo := outs[fail[v]]; len(fo) > 0 {
				outs[v] = append(outs[v], fo...)
			}
		})
	}

	// Dense delta, level by level: a row only reads its failure state's
	// row, which lives at a shallower, already-filled level.
	syms := red.Classes
	dfaOut := &DFA{
		Syms:          syms,
		Start:         0,
		Next:          make([]int32, n*syms),
		Accept:        make([]bool, n),
		Out:           make([][]int32, n),
		MaxPatternLen: maxLen,
	}
	for c := 0; c < syms; c++ {
		if next, ok := childOf[0][byte(c)]; ok {
			dfaOut.Next[c] = next
		}
	}
	finishState := func(s int32) {
		if len(outs[s]) > 0 {
			dfaOut.Accept[s] = true
			o := append([]int32(nil), outs[s]...)
			sortInt32(o)
			dfaOut.Out[s] = dedupe(o)
		}
	}
	finishState(0)
	for d := 1; d <= maxDepth; d++ {
		lvl := levels[d]
		fanout.ForEach(len(lvl), workers, func(li int) {
			s := lvl[li]
			row := int(s) * syms
			frow := int(fail[s]) * syms
			cm := childOf[s]
			for c := 0; c < syms; c++ {
				if next, ok := cm[byte(c)]; ok {
					dfaOut.Next[row+c] = next
				} else {
					dfaOut.Next[row+c] = dfaOut.Next[frow+c]
				}
			}
			finishState(s)
		})
	}
	return dfaOut, nil
}

// sortInt32 is an insertion sort: output sets are tiny (usually one
// entry) and this avoids a sort.Slice closure per accepting state.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
