package dfa

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cellmatch/internal/alphabet"
)

// randomDict builds a dictionary with heavy prefix sharing and
// duplicates — the shapes that exercise insertion-order numbering.
func randomDict(rng *rand.Rand, n int) [][]byte {
	roots := []string{"alpha", "alarm", "beta", "be", "gamma", "g", "delta"}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		var p []byte
		switch rng.Intn(4) {
		case 0: // shared prefix + suffix
			p = []byte(roots[rng.Intn(len(roots))] + fmt.Sprintf("%03d", rng.Intn(50)))
		case 1: // short
			p = []byte(fmt.Sprintf("%c%c", 'a'+rng.Intn(6), 'a'+rng.Intn(6)))
		case 2: // duplicate-prone
			p = []byte(roots[rng.Intn(len(roots))])
		default: // random bytes within a small alphabet
			l := 1 + rng.Intn(12)
			p = make([]byte, l)
			for j := range p {
				p[j] = byte('a' + rng.Intn(8))
			}
		}
		out = append(out, p)
	}
	return out
}

func dfasEqual(t *testing.T, want, got *DFA) {
	t.Helper()
	if want.Syms != got.Syms || want.Start != got.Start ||
		want.MaxPatternLen != got.MaxPatternLen {
		t.Fatalf("header mismatch: want {syms %d start %d maxlen %d}, got {syms %d start %d maxlen %d}",
			want.Syms, want.Start, want.MaxPatternLen, got.Syms, got.Start, got.MaxPatternLen)
	}
	if !reflect.DeepEqual(want.Next, got.Next) {
		t.Fatalf("Next tables differ (states %d vs %d)", want.NumStates(), got.NumStates())
	}
	if !reflect.DeepEqual(want.Accept, got.Accept) {
		t.Fatalf("Accept vectors differ")
	}
	if len(want.Out) != len(got.Out) {
		t.Fatalf("Out length %d vs %d", len(want.Out), len(got.Out))
	}
	for s := range want.Out {
		if len(want.Out[s]) == 0 && len(got.Out[s]) == 0 {
			continue
		}
		if !reflect.DeepEqual(want.Out[s], got.Out[s]) {
			t.Fatalf("Out[%d] differs: want %v, got %v", s, want.Out[s], got.Out[s])
		}
	}
}

// TestFromPatternsParallelIdentical pins the tentpole invariant at the
// lowest layer: the parallel construction reproduces the sequential
// automaton bit for bit — same state numbering, same dense table, same
// output sets — for every worker count and every reduction regime.
func TestFromPatternsParallelIdentical(t *testing.T) {
	reductions := map[string]*alphabet.Reduction{
		"identity": alphabet.Identity(),
		"fold32":   alphabet.CaseFold32(),
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pats := randomDict(rng, parallelMinPatterns+rng.Intn(400))
		dict, err := alphabet.ForDictionary(pats, seed%2 == 0)
		if err != nil {
			t.Fatal(err)
		}
		reductions["dictionary"] = dict
		for name, red := range reductions {
			seq, err := FromPatterns(pats, red)
			if err != nil {
				t.Fatalf("seed %d %s: sequential: %v", seed, name, err)
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := FromPatternsParallel(pats, red, workers)
				if err != nil {
					t.Fatalf("seed %d %s workers %d: %v", seed, name, workers, err)
				}
				dfasEqual(t, seq, par)
			}
		}
	}
}

// TestFromPatternsParallelSmallFallsBack checks the small-dictionary
// gate routes through the sequential builder (same pointer-free
// equality, and no goroutine overhead for tiny slots).
func TestFromPatternsParallelSmallFallsBack(t *testing.T) {
	pats := [][]byte{[]byte("he"), []byte("she"), []byte("his"), []byte("hers")}
	seq, err := FromPatterns(pats, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FromPatternsParallel(pats, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	dfasEqual(t, seq, par)
}

// TestFromPatternsParallelErrors pins error parity with the sequential
// path: empty dictionaries and empty patterns fail identically.
func TestFromPatternsParallelErrors(t *testing.T) {
	if _, err := FromPatternsParallel(nil, nil, 4); err == nil {
		t.Fatal("empty dictionary: want error")
	}
	pats := make([][]byte, parallelMinPatterns+1)
	for i := range pats {
		pats[i] = []byte{byte('a' + i%20), byte('a' + (i/20)%20)}
	}
	pats[30] = nil
	_, seqErr := FromPatterns(pats, nil)
	_, parErr := FromPatternsParallel(pats, nil, 4)
	if seqErr == nil || parErr == nil {
		t.Fatalf("empty pattern: want errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error mismatch: seq %q, par %q", seqErr, parErr)
	}
}
