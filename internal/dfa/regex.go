package dfa

import (
	"fmt"
	"strconv"

	"cellmatch/internal/alphabet"
)

// The regex dialect supported for dictionary entries expressed as
// regular expressions (the paper, Section 1, notes that dictionaries
// "expressed as a set of regular expressions" compile to a single DFA):
//
//	literal bytes        a b c ...
//	escapes              \n \t \r \0 \\ \. \* \+ \? \| \( \) \[ \] \xHH
//	any symbol           .
//	classes              [abc] [a-z0-9] [^abc]
//	grouping             ( ... )
//	alternation          a|b
//	repetition           a* a+ a? a{m,n}
//
// Regexes are compiled over a byte alphabet and mapped through an
// alphabet.Reduction at NFA-construction time, so the resulting DFA
// runs on reduced input like every other automaton in this repository.

// regexNode is the AST.
type regexNode interface{ isRegex() }

type reLit struct{ b byte }
type reClass struct {
	neg bool
	set [256]bool
}
type reAny struct{}
type reCat struct{ subs []regexNode }
type reAlt struct{ subs []regexNode }
type reStar struct{ sub regexNode }
type rePlus struct{ sub regexNode }
type reOpt struct{ sub regexNode }
type reRepeat struct {
	sub regexNode
	min int
	max int // -1 = unbounded
}

func (reLit) isRegex()    {}
func (reClass) isRegex()  {}
func (reAny) isRegex()    {}
func (reCat) isRegex()    {}
func (reAlt) isRegex()    {}
func (reStar) isRegex()   {}
func (rePlus) isRegex()   {}
func (reOpt) isRegex()    {}
func (reRepeat) isRegex() {}

// SyntaxError reports a regex parse failure with its position.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("regex %q: position %d: %s", e.Expr, e.Pos, e.Msg)
}

type regexParser struct {
	src []byte
	pos int
}

func (p *regexParser) err(msg string) error {
	return &SyntaxError{Expr: string(p.src), Pos: p.pos, Msg: msg}
}

func (p *regexParser) peek() (byte, bool) {
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

// ParseRegex parses the expression into an AST.
func ParseRegex(expr string) (regexNode, error) {
	p := &regexParser{src: []byte(expr)}
	node, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.err("unexpected trailing input")
	}
	return node, nil
}

func (p *regexParser) alternation() (regexNode, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []regexNode{first}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		next, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
	if len(subs) == 1 {
		return subs[0], nil
	}
	return reAlt{subs}, nil
}

func (p *regexParser) concat() (regexNode, error) {
	var subs []regexNode
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		atom, err := p.repeatable()
		if err != nil {
			return nil, err
		}
		subs = append(subs, atom)
	}
	switch len(subs) {
	case 0:
		return reCat{}, nil // empty string
	case 1:
		return subs[0], nil
	}
	return reCat{subs}, nil
}

func (p *regexParser) repeatable() (regexNode, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch c {
		case '*':
			p.pos++
			atom = reStar{atom}
		case '+':
			p.pos++
			atom = rePlus{atom}
		case '?':
			p.pos++
			atom = reOpt{atom}
		case '{':
			rep, err := p.braces(atom)
			if err != nil {
				return nil, err
			}
			atom = rep
		default:
			return atom, nil
		}
	}
}

func (p *regexParser) braces(sub regexNode) (regexNode, error) {
	start := p.pos
	p.pos++ // consume '{'
	readInt := func() (int, bool) {
		begin := p.pos
		for {
			c, ok := p.peek()
			if !ok || c < '0' || c > '9' {
				break
			}
			p.pos++
		}
		if p.pos == begin {
			return 0, false
		}
		v, err := strconv.Atoi(string(p.src[begin:p.pos]))
		if err != nil || v > 1000 {
			return 0, false
		}
		return v, true
	}
	min, ok := readInt()
	if !ok {
		p.pos = start
		return nil, p.err("bad repetition count")
	}
	max := min
	if c, ok2 := p.peek(); ok2 && c == ',' {
		p.pos++
		if c2, ok3 := p.peek(); ok3 && c2 == '}' {
			max = -1
		} else {
			max, ok = readInt()
			if !ok {
				return nil, p.err("bad repetition upper bound")
			}
		}
	}
	if c, ok2 := p.peek(); !ok2 || c != '}' {
		return nil, p.err("unterminated repetition")
	}
	p.pos++
	if max != -1 && max < min {
		return nil, p.err("repetition bounds inverted")
	}
	return reRepeat{sub, min, max}, nil
}

func (p *regexParser) atom() (regexNode, error) {
	c, ok := p.peek()
	if !ok {
		return nil, p.err("unexpected end of expression")
	}
	switch c {
	case '(':
		p.pos++
		inner, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if c2, ok2 := p.peek(); !ok2 || c2 != ')' {
			return nil, p.err("unbalanced parenthesis")
		}
		p.pos++
		return inner, nil
	case '.':
		p.pos++
		return reAny{}, nil
	case '[':
		return p.class()
	case '*', '+', '?', '{':
		return nil, p.err("repetition with nothing to repeat")
	case ')':
		return nil, p.err("unbalanced parenthesis")
	case '\\':
		p.pos++
		b, err := p.escape()
		if err != nil {
			return nil, err
		}
		return reLit{b}, nil
	default:
		p.pos++
		return reLit{c}, nil
	}
}

func (p *regexParser) escape() (byte, error) {
	c, ok := p.peek()
	if !ok {
		return 0, p.err("dangling backslash")
	}
	p.pos++
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'x':
		if p.pos+2 > len(p.src) {
			return 0, p.err("truncated \\x escape")
		}
		v, err := strconv.ParseUint(string(p.src[p.pos:p.pos+2]), 16, 8)
		if err != nil {
			return 0, p.err("bad \\x escape")
		}
		p.pos += 2
		return byte(v), nil
	default:
		return c, nil // \\, \., \*, etc.: the literal byte
	}
}

func (p *regexParser) class() (regexNode, error) {
	p.pos++ // consume '['
	var cl reClass
	if c, ok := p.peek(); ok && c == '^' {
		cl.neg = true
		p.pos++
	}
	first := true
	for {
		c, ok := p.peek()
		if !ok {
			return nil, p.err("unterminated character class")
		}
		if c == ']' && !first {
			p.pos++
			return cl, nil
		}
		first = false
		var lo byte
		if c == '\\' {
			p.pos++
			b, err := p.escape()
			if err != nil {
				return nil, err
			}
			lo = b
		} else {
			p.pos++
			lo = c
		}
		hi := lo
		if c2, ok2 := p.peek(); ok2 && c2 == '-' {
			if p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
				p.pos++
				c3, _ := p.peek()
				if c3 == '\\' {
					p.pos++
					b, err := p.escape()
					if err != nil {
						return nil, err
					}
					hi = b
				} else {
					p.pos++
					hi = c3
				}
				if hi < lo {
					return nil, p.err("inverted class range")
				}
			}
		}
		for b := int(lo); b <= int(hi); b++ {
			cl.set[b] = true
		}
	}
}

// CompileRegex parses expr and builds the minimized DFA over the given
// reduction. When red is nil the identity (256-symbol) alphabet is
// used. Note: over a reduction, a class like [a-c] matches any raw
// byte whose class coincides with a, b or c's — the same aliasing
// tradeoff the paper accepts for its 32-symbol folding.
func CompileRegex(expr string, red *alphabet.Reduction) (*DFA, error) {
	ast, err := ParseRegex(expr)
	if err != nil {
		return nil, err
	}
	if red == nil {
		red = alphabet.Identity()
	}
	if err := red.Validate(); err != nil {
		return nil, err
	}
	nfa, err := ThompsonNFA(ast, red)
	if err != nil {
		return nil, err
	}
	d, err := nfa.Determinize()
	if err != nil {
		return nil, err
	}
	return Minimize(d), nil
}

// ThompsonNFA compiles an AST into a Thompson-form NFA over the
// reduced alphabet.
func ThompsonNFA(ast regexNode, red *alphabet.Reduction) (*NFA, error) {
	n := NewNFA(red.Classes)
	start, accept, err := build(n, ast, red)
	if err != nil {
		return nil, err
	}
	n.Start, n.Accept = start, accept
	return n, nil
}

// build returns (start, accept) fragment states for the node.
func build(n *NFA, node regexNode, red *alphabet.Reduction) (int32, int32, error) {
	switch t := node.(type) {
	case reLit:
		s, a := n.AddState(), n.AddState()
		n.AddEdge(s, red.Map[t.b], a)
		return s, a, nil
	case reAny:
		s, a := n.AddState(), n.AddState()
		for c := 0; c < red.Classes; c++ {
			n.AddEdge(s, byte(c), a)
		}
		return s, a, nil
	case reClass:
		s, a := n.AddState(), n.AddState()
		var classes [256]bool
		for b := 0; b < 256; b++ {
			if t.set[b] != t.neg { // member XOR negated
				classes[red.Map[b]] = true
			}
		}
		any := false
		for c := 0; c < red.Classes; c++ {
			if classes[c] {
				n.AddEdge(s, byte(c), a)
				any = true
			}
		}
		if !any {
			// Empty class matches nothing; fragment with no path.
			_ = any
		}
		return s, a, nil
	case reCat:
		s := n.AddState()
		cur := s
		for _, sub := range t.subs {
			fs, fa, err := build(n, sub, red)
			if err != nil {
				return 0, 0, err
			}
			n.AddEps(cur, fs)
			cur = fa
		}
		return s, cur, nil
	case reAlt:
		s, a := n.AddState(), n.AddState()
		for _, sub := range t.subs {
			fs, fa, err := build(n, sub, red)
			if err != nil {
				return 0, 0, err
			}
			n.AddEps(s, fs)
			n.AddEps(fa, a)
		}
		return s, a, nil
	case reStar:
		s, a := n.AddState(), n.AddState()
		fs, fa, err := build(n, t.sub, red)
		if err != nil {
			return 0, 0, err
		}
		n.AddEps(s, fs)
		n.AddEps(s, a)
		n.AddEps(fa, fs)
		n.AddEps(fa, a)
		return s, a, nil
	case rePlus:
		return build(n, reCat{[]regexNode{t.sub, reStar{t.sub}}}, red)
	case reOpt:
		s, a := n.AddState(), n.AddState()
		fs, fa, err := build(n, t.sub, red)
		if err != nil {
			return 0, 0, err
		}
		n.AddEps(s, fs)
		n.AddEps(fa, a)
		n.AddEps(s, a)
		return s, a, nil
	case reRepeat:
		var subs []regexNode
		for i := 0; i < t.min; i++ {
			subs = append(subs, t.sub)
		}
		switch {
		case t.max == -1:
			subs = append(subs, reStar{t.sub})
		default:
			for i := t.min; i < t.max; i++ {
				subs = append(subs, reOpt{t.sub})
			}
		}
		return build(n, reCat{subs}, red)
	default:
		return 0, 0, fmt.Errorf("dfa: unknown regex node %T", node)
	}
}
