package dfa

import (
	"math/rand"
	"regexp"
	"testing"
)

// TestRegexVsStdlib differential-tests our regex->DFA pipeline against
// the standard library on a dialect-compatible expression corpus:
// whole-string acceptance must agree on random inputs. (The stdlib is
// only used as a test oracle; the library itself has no dependency on
// it.)
func TestRegexVsStdlib(t *testing.T) {
	exprs := []string{
		"abc",
		"a*",
		"a+b",
		"a?b?c?",
		"(ab)+",
		"(a|b)*abb",
		"a(b|c)d",
		"[abc]+",
		"[a-d]x[0-3]",
		"[^ab]c",
		"a{3}",
		"a{2,4}b",
		"(ab|cd|ef)+",
		"x(y|z)*w",
		"((a|b)(c|d))+",
		"a.c",
		"[a-c]{1,3}",
	}
	letters := []byte("abcdwxyz0123")
	rng := rand.New(rand.NewSource(8))
	for _, expr := range exprs {
		ours, err := CompileRegex(expr, nil)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		// Anchor both ends for whole-string semantics. Our '.' matches
		// any byte including newline, so use (?s).
		std, err := regexp.Compile("^(?s:" + expr + ")$")
		if err != nil {
			t.Fatalf("stdlib compile %q: %v", expr, err)
		}
		for trial := 0; trial < 400; trial++ {
			s := make([]byte, rng.Intn(8))
			for i := range s {
				s[i] = letters[rng.Intn(len(letters))]
			}
			got := ours.Accepts(s)
			want := std.Match(s)
			if got != want {
				t.Fatalf("%q on %q: ours=%v stdlib=%v", expr, s, got, want)
			}
		}
	}
}

// TestRegexVsStdlibGenerated drives the same comparison with randomly
// generated expressions from our supported grammar.
func TestRegexVsStdlibGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 {
			return string(rune('a' + rng.Intn(3)))
		}
		switch rng.Intn(6) {
		case 0:
			return string(rune('a' + rng.Intn(3)))
		case 1:
			return gen(depth-1) + gen(depth-1)
		case 2:
			return "(" + gen(depth-1) + "|" + gen(depth-1) + ")"
		case 3:
			return "(" + gen(depth-1) + ")*"
		case 4:
			return "(" + gen(depth-1) + ")?"
		default:
			return "(" + gen(depth-1) + ")+"
		}
	}
	for trial := 0; trial < 60; trial++ {
		expr := gen(3)
		ours, err := CompileRegex(expr, nil)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		std, err := regexp.Compile("^(?:" + expr + ")$")
		if err != nil {
			continue // grammar corner the stdlib rejects; skip
		}
		for k := 0; k < 200; k++ {
			s := make([]byte, rng.Intn(7))
			for i := range s {
				s[i] = byte('a' + rng.Intn(3))
			}
			if got, want := ours.Accepts(s), std.Match(s); got != want {
				t.Fatalf("generated %q on %q: ours=%v stdlib=%v", expr, s, got, want)
			}
		}
	}
}
