package dfa

import (
	"math/rand"
	"testing"

	"cellmatch/internal/alphabet"
)

// mustCompile compiles over the identity alphabet or fails the test.
func mustCompile(t *testing.T, expr string) *DFA {
	t.Helper()
	d, err := CompileRegex(expr, nil)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("validate %q: %v", expr, err)
	}
	return d
}

func TestRegexAcceptance(t *testing.T) {
	cases := []struct {
		expr string
		yes  []string
		no   []string
	}{
		{"abc", []string{"abc"}, []string{"", "ab", "abcd", "abd"}},
		{"a|b", []string{"a", "b"}, []string{"", "ab", "c"}},
		{"a*", []string{"", "a", "aaaa"}, []string{"b", "ab"}},
		{"a+", []string{"a", "aa"}, []string{"", "b"}},
		{"a?b", []string{"b", "ab"}, []string{"", "aab", "a"}},
		{"(ab)*", []string{"", "ab", "abab"}, []string{"a", "aba"}},
		{"(a|b)*c", []string{"c", "ac", "babac"}, []string{"", "ab", "ca"}},
		{"[abc]", []string{"a", "b", "c"}, []string{"d", "", "ab"}},
		{"[a-c]x", []string{"ax", "bx", "cx"}, []string{"dx", "x"}},
		{"[^a]", []string{"b", "z", "0"}, []string{"a", ""}},
		{"a{3}", []string{"aaa"}, []string{"aa", "aaaa"}},
		{"a{2,4}", []string{"aa", "aaa", "aaaa"}, []string{"a", "aaaaa"}},
		{"a{2,}", []string{"aa", "aaaaaa"}, []string{"a", ""}},
		{"\\.", []string{"."}, []string{"a"}},
		{"\\x41", []string{"A"}, []string{"B"}},
		{"\\n", []string{"\n"}, []string{"n"}},
		{"a.c", []string{"abc", "azc", "a.c"}, []string{"ac", "abcc"}},
		{"", []string{""}, []string{"a"}},
		{"()a", []string{"a"}, []string{""}},
		{"x(y|z){2}", []string{"xyy", "xyz", "xzz"}, []string{"xy", "xyzy"}},
	}
	for _, c := range cases {
		d := mustCompile(t, c.expr)
		for _, s := range c.yes {
			if !d.Accepts([]byte(s)) {
				t.Errorf("%q should accept %q", c.expr, s)
			}
		}
		for _, s := range c.no {
			if d.Accepts([]byte(s)) {
				t.Errorf("%q should reject %q", c.expr, s)
			}
		}
	}
}

func TestRegexParseErrors(t *testing.T) {
	bad := []string{
		"(", ")", "(a", "a)", "*", "+a", "?", "a{", "a{1,", "a{2,1}",
		"[", "[a", "[z-a]", "\\", "a\\x4", "a\\xZZ", "a{1001}",
	}
	for _, expr := range bad {
		if _, err := CompileRegex(expr, nil); err == nil {
			t.Errorf("expected parse error for %q", expr)
		}
	}
	// Errors carry position info.
	_, err := CompileRegex("ab(", nil)
	if se, ok := err.(*SyntaxError); !ok || se.Expr != "ab(" {
		t.Fatalf("error type: %T %v", err, err)
	}
}

func TestRegexOverReduction(t *testing.T) {
	red := alphabet.CaseFold32()
	d, err := CompileRegex("VIRUS[0-9]?", red)
	if err != nil {
		t.Fatal(err)
	}
	// Over the fold, case is gone; scan reduced bytes.
	if !d.Accepts(red.Reduce([]byte("virus"))) {
		t.Fatal("case-folded accept failed")
	}
	if !d.Accepts(red.Reduce([]byte("VIRUS"))) {
		t.Fatal("uppercase accept failed")
	}
}

func TestRegexDFAIsMinimal(t *testing.T) {
	// (a|b)*abb is the textbook example: minimal DFA has 4 states.
	d := mustCompile(t, "(a|b)*abb")
	// Our alphabet is 256-wide, adding one dead state for other bytes.
	if d.NumStates() > 5 {
		t.Fatalf("states = %d, want <= 5 after minimization", d.NumStates())
	}
}

// Differential test: DFA acceptance equals direct NFA subset simulation
// on random inputs for a library of expressions.
func TestRegexDFAMatchesNFA(t *testing.T) {
	exprs := []string{
		"abc", "(a|b)*abb", "a*b*c*", "(ab|ba)+", "a(b|c){1,3}d",
		"[ab]*c[ab]*", "x|y|z", "(a?b){2,4}",
	}
	rng := rand.New(rand.NewSource(5))
	red := alphabet.Identity()
	letters := []byte("abcdxyz")
	for _, expr := range exprs {
		ast, err := ParseRegex(expr)
		if err != nil {
			t.Fatal(err)
		}
		nfa, err := ThompsonNFA(ast, red)
		if err != nil {
			t.Fatal(err)
		}
		d, err := CompileRegex(expr, red)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			s := make([]byte, rng.Intn(10))
			for i := range s {
				s[i] = letters[rng.Intn(len(letters))]
			}
			if d.Accepts(s) != nfa.MatchNFA(s) {
				t.Fatalf("%q on %q: DFA %v, NFA %v", expr, s, d.Accepts(s), nfa.MatchNFA(s))
			}
		}
	}
}

func TestDeterminizeLimitEnforced(t *testing.T) {
	// (a|b)*a(a|b){n} has a 2^n-state DFA; n=20 exceeds the limit.
	// Use a 2-class reduction so the walk to the limit is cheap.
	red, err := alphabet.FromPatterns([][]byte{[]byte("ab")}, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileRegex("(a|b)*a(a|b){20}", red); err == nil {
		t.Fatal("subset construction limit not enforced")
	}
}

func TestNFADirect(t *testing.T) {
	// Hand-built NFA: accepts exactly "ab".
	n := NewNFA(3)
	s0, s1, s2 := n.AddState(), n.AddState(), n.AddState()
	n.AddEdge(s0, 0, s1)
	n.AddEdge(s1, 1, s2)
	n.Start, n.Accept = s0, s2
	if !n.MatchNFA([]byte{0, 1}) {
		t.Fatal("should match")
	}
	if n.MatchNFA([]byte{0}) || n.MatchNFA([]byte{1, 0}) || n.MatchNFA(nil) {
		t.Fatal("overmatch")
	}
	d, err := n.Determinize()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepts([]byte{0, 1}) || d.Accepts([]byte{0}) {
		t.Fatal("determinized mismatch")
	}
}

func TestNFAEdgeValidation(t *testing.T) {
	n := NewNFA(2)
	s := n.AddState()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-alphabet edge accepted")
		}
	}()
	n.AddEdge(s, 5, s)
}

func TestEmptyClassMatchesNothing(t *testing.T) {
	d := mustCompile(t, "a[^\\x00-\\xff]b|ok")
	if !d.Accepts([]byte("ok")) {
		t.Fatal("alternation arm lost")
	}
	if d.Accepts([]byte("aXb")) {
		t.Fatal("empty class matched")
	}
}
