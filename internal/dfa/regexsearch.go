package dfa

import (
	"fmt"

	"cellmatch/internal/alphabet"
)

// Regex *search* dictionaries: where CompileRegex builds a whole-input
// acceptor (RegexSet semantics), this file compiles a set of regular
// expressions into one unanchored multi-pattern search DFA with
// Aho-Corasick reporting semantics — Out sets carry expression ids and
// a hit is reported at every input offset where some substring ending
// there matches an expression. That contract (one report per
// (expression, end offset), matches sorted by (End, Pattern)) is
// exactly the one the literal dictionaries use, so a search DFA rides
// the whole engine ladder — dense kernel, interleaved lanes, parallel
// chunking, streams — unchanged.
//
// Two restrictions keep that machinery sound:
//
//   - no expression may match the empty string (it would report at
//     every offset), and
//   - every expression must have a bounded maximum match length
//     (no '*', '+', or '{m,}'): the speculative chunk scans assume a
//     match ending at offset e depends only on the MaxPatternLen bytes
//     before e. Unbounded expressions belong to RegexSet, the
//     whole-input surface.

// regexUnbounded marks an unbounded maximum match length.
const regexUnbounded = -1

// regexLengths returns the minimum and maximum byte lengths of strings
// the AST can match; max == regexUnbounded means unbounded.
func regexLengths(node regexNode) (min, max int) {
	switch t := node.(type) {
	case reLit, reAny, reClass:
		return 1, 1
	case reCat:
		for _, sub := range t.subs {
			lo, hi := regexLengths(sub)
			min += lo
			if max == regexUnbounded || hi == regexUnbounded {
				max = regexUnbounded
			} else {
				max += hi
			}
		}
		return min, max
	case reAlt:
		first := true
		for _, sub := range t.subs {
			lo, hi := regexLengths(sub)
			if first {
				min, max = lo, hi
				first = false
				continue
			}
			if lo < min {
				min = lo
			}
			if max != regexUnbounded && (hi == regexUnbounded || hi > max) {
				max = hi
			}
		}
		return min, max
	case reStar:
		_, hi := regexLengths(t.sub)
		if hi == 0 {
			return 0, 0
		}
		return 0, regexUnbounded
	case rePlus:
		lo, hi := regexLengths(t.sub)
		if hi == 0 {
			return lo, 0
		}
		return lo, regexUnbounded
	case reOpt:
		_, hi := regexLengths(t.sub)
		return 0, hi
	case reRepeat:
		lo, hi := regexLengths(t.sub)
		min = t.min * lo
		switch {
		case hi == 0:
			max = 0
		case t.max == regexUnbounded || hi == regexUnbounded:
			if t.max == 0 {
				max = 0
			} else {
				max = regexUnbounded
			}
		default:
			max = t.max * hi
		}
		return min, max
	default:
		return 0, regexUnbounded
	}
}

// foldRegexNode rewrites the AST for case-insensitive matching: every
// literal and character-class leaf is closed over ASCII case, so 'a'
// and [^b] treat both cases identically (negation applies after the
// closure — [^a] excludes 'A' too).
func foldRegexNode(node regexNode) regexNode {
	foldSet := func(set *[256]bool) {
		for b := 'a'; b <= 'z'; b++ {
			if set[b] || set[b-'a'+'A'] {
				set[b] = true
				set[b-'a'+'A'] = true
			}
		}
	}
	switch t := node.(type) {
	case reLit:
		if (t.b >= 'a' && t.b <= 'z') || (t.b >= 'A' && t.b <= 'Z') {
			var cl reClass
			cl.set[t.b] = true
			foldSet(&cl.set)
			return cl
		}
		return t
	case reClass:
		cl := reClass{neg: t.neg, set: t.set}
		foldSet(&cl.set)
		return cl
	case reCat:
		subs := make([]regexNode, len(t.subs))
		for i, s := range t.subs {
			subs[i] = foldRegexNode(s)
		}
		return reCat{subs}
	case reAlt:
		subs := make([]regexNode, len(t.subs))
		for i, s := range t.subs {
			subs[i] = foldRegexNode(s)
		}
		return reAlt{subs}
	case reStar:
		return reStar{foldRegexNode(t.sub)}
	case rePlus:
		return rePlus{foldRegexNode(t.sub)}
	case reOpt:
		return reOpt{foldRegexNode(t.sub)}
	case reRepeat:
		return reRepeat{foldRegexNode(t.sub), t.min, t.max}
	default:
		return node
	}
}

// leafSets appends the raw-byte membership set of every literal and
// class leaf (negation resolved) — the distinguishability evidence the
// alphabet reduction is refined against. reAny matches every byte, so
// it refines nothing and is skipped.
func leafSets(node regexNode, sets *[][256]bool) {
	switch t := node.(type) {
	case reLit:
		var s [256]bool
		s[t.b] = true
		*sets = append(*sets, s)
	case reClass:
		var s [256]bool
		for b := 0; b < 256; b++ {
			s[b] = t.set[b] != t.neg
		}
		*sets = append(*sets, s)
	case reCat:
		for _, sub := range t.subs {
			leafSets(sub, sets)
		}
	case reAlt:
		for _, sub := range t.subs {
			leafSets(sub, sets)
		}
	case reStar:
		leafSets(t.sub, sets)
	case rePlus:
		leafSets(t.sub, sets)
	case reOpt:
		leafSets(t.sub, sets)
	case reRepeat:
		leafSets(t.sub, sets)
	}
}

// parseSearchRegexes parses and validates a search dictionary: every
// expression must match at least one byte and have a bounded maximum
// match length. Returns the (case-folded, when requested) ASTs and the
// per-expression (min, max) lengths.
func parseSearchRegexes(exprs []string, caseFold bool) ([]regexNode, []int, []int, error) {
	if len(exprs) == 0 {
		return nil, nil, nil, fmt.Errorf("dfa: empty regex dictionary")
	}
	asts := make([]regexNode, len(exprs))
	mins := make([]int, len(exprs))
	maxs := make([]int, len(exprs))
	for i, e := range exprs {
		ast, err := ParseRegex(e)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("dfa: expression %d: %w", i, err)
		}
		lo, hi := regexLengths(ast)
		if lo == 0 {
			return nil, nil, nil, fmt.Errorf(
				"dfa: expression %d %q may match the empty string; search dictionaries require at least one byte", i, e)
		}
		if hi == regexUnbounded {
			return nil, nil, nil, fmt.Errorf(
				"dfa: expression %d %q has unbounded match length (*, + or {m,}); use bounded repetition {m,n}, or RegexSet for whole-input matching", i, e)
		}
		if caseFold {
			ast = foldRegexNode(ast)
		}
		asts[i] = ast
		mins[i] = lo
		maxs[i] = hi
	}
	return asts, mins, maxs, nil
}

// RegexDictionaryInfo validates a search dictionary and returns the
// shortest minimum and longest maximum match lengths across all
// expressions — the filter-gating and chunk-overlap bounds of the
// compiled matcher.
func RegexDictionaryInfo(exprs []string) (minLen, maxLen int, err error) {
	_, mins, maxs, err := parseSearchRegexes(exprs, false)
	if err != nil {
		return 0, 0, err
	}
	for i := range mins {
		if i == 0 || mins[i] < minLen {
			minLen = mins[i]
		}
		if maxs[i] > maxLen {
			maxLen = maxs[i]
		}
	}
	return minLen, maxLen, nil
}

// RegexReduction computes the minimal alphabet reduction that keeps
// every byte distinction the expressions actually make: bytes land in
// the same class iff every literal/class leaf (case-folded when
// requested) treats them identically. There is no aliasing under this
// reduction — unlike mapping a regex through CaseFold32, reduced
// matching is exact.
func RegexReduction(exprs []string, caseFold bool) (*alphabet.Reduction, error) {
	asts, _, _, err := parseSearchRegexes(exprs, caseFold)
	if err != nil {
		return nil, err
	}
	var sets [][256]bool
	for _, ast := range asts {
		leafSets(ast, &sets)
	}
	return alphabet.FromSets(sets)
}

// CompileRegexSearch compiles the expressions into one unanchored
// search DFA over the given reduction (which must come from
// RegexReduction with the same caseFold, or be at least as fine):
// state ids in Out are the expression indices, reported at every end
// offset per the Aho-Corasick contract. MaxPatternLen is set to the
// longest maximum match length, making the usual overlap arithmetic
// (chunked, interleaved, and streamed scans) exact for search DFAs
// too.
func CompileRegexSearch(exprs []string, caseFold bool, red *alphabet.Reduction) (*DFA, error) {
	asts, _, maxs, err := parseSearchRegexes(exprs, caseFold)
	if err != nil {
		return nil, err
	}
	if red == nil {
		red = alphabet.Identity()
	}
	if err := red.Validate(); err != nil {
		return nil, err
	}
	n := NewNFA(red.Classes)
	start := n.AddState()
	// Unanchored: the implicit ".*" prefix is a start-state self-loop
	// on every symbol, so the subset construction tracks every
	// still-viable match start simultaneously.
	for c := 0; c < red.Classes; c++ {
		n.AddEdge(start, byte(c), start)
	}
	maxLen := 0
	for id, ast := range asts {
		fs, fa, err := build(n, ast, red)
		if err != nil {
			return nil, err
		}
		n.AddEps(start, fs)
		n.Tag(fa, int32(id))
		if maxs[id] > maxLen {
			maxLen = maxs[id]
		}
	}
	n.Start = start
	d, err := n.DeterminizeTagged()
	if err != nil {
		return nil, err
	}
	d = Minimize(d)
	d.MaxPatternLen = maxLen
	return d, nil
}
