package dfa

import (
	"fmt"
	"math/rand"
	"regexp"
	"testing"
)

func TestRegexLengths(t *testing.T) {
	cases := []struct {
		expr     string
		min, max int
	}{
		{"abc", 3, 3},
		{"a|bc", 1, 2},
		{"a?bc", 2, 3},
		{"[0-9]{2,4}", 2, 4},
		{"(ab|c){3}", 3, 6},
		{"a.c", 3, 3},
		{"x(yz)?", 1, 3},
		{"a{0,2}b", 1, 3},
	}
	for _, c := range cases {
		ast, err := ParseRegex(c.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", c.expr, err)
		}
		lo, hi := regexLengths(ast)
		if lo != c.min || hi != c.max {
			t.Errorf("%q: lengths (%d,%d), want (%d,%d)", c.expr, lo, hi, c.min, c.max)
		}
	}
}

func TestRegexDictionaryInfoRejects(t *testing.T) {
	for _, expr := range []string{"a*", "a+", "ab{2,}", "a?", "(a|b)*c*", ""} {
		if _, _, err := RegexDictionaryInfo([]string{expr}); err == nil {
			t.Errorf("%q: expected rejection (nullable or unbounded)", expr)
		}
	}
	min, max, err := RegexDictionaryInfo([]string{"abc", "[0-9]{2,5}x", "zz"})
	if err != nil {
		t.Fatal(err)
	}
	if min != 2 || max != 6 {
		t.Errorf("bounds (%d,%d), want (2,6)", min, max)
	}
}

// searchOracle computes the expected (End, Pattern) match list with
// Go's regexp package: pattern id reported at end offset e iff some
// substring ending at e matches the whole expression.
func searchOracle(t *testing.T, exprs []string, data []byte, caseFold bool) []Match {
	t.Helper()
	var out []Match
	for id, e := range exprs {
		flags := ""
		if caseFold {
			flags = "(?i)"
		}
		re := regexp.MustCompile(flags + "^(?:" + e + ")$")
		for end := 1; end <= len(data); end++ {
			for start := 0; start < end; start++ {
				if re.Match(data[start:end]) {
					out = append(out, Match{Pattern: int32(id), End: end})
					break
				}
			}
		}
	}
	SortMatches(out)
	return out
}

func runSearch(t *testing.T, exprs []string, data []byte, caseFold bool) []Match {
	t.Helper()
	red, err := RegexReduction(exprs, caseFold)
	if err != nil {
		t.Fatal(err)
	}
	d, err := CompileRegexSearch(exprs, caseFold, red)
	if err != nil {
		t.Fatal(err)
	}
	got := d.FindAll(red.Reduce(data))
	SortMatches(got)
	return got
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRegexSearchOracle(t *testing.T) {
	exprs := []string{
		"abc",
		"a[0-9]{2}",
		"(cat|dog)s?x",
		"b.d",
		"[^ab]{3}q",
		"zz(a|b){1,3}",
	}
	rng := rand.New(rand.NewSource(7))
	letters := []byte("abcdq019 xz")
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 40+rng.Intn(80))
		for i := range data {
			data[i] = letters[rng.Intn(len(letters))]
		}
		// Plant fragments so matches actually occur.
		for _, frag := range []string{"abc", "a07", "catsx", "dogx", "bqd", "zzaba"} {
			pos := rng.Intn(len(data) - len(frag))
			copy(data[pos:], frag)
		}
		want := searchOracle(t, exprs, data, false)
		got := runSearch(t, exprs, data, false)
		if !matchesEqual(got, want) {
			t.Fatalf("trial %d: got %v, want %v\ndata %q", trial, got, want, data)
		}
	}
}

func TestRegexSearchCaseFold(t *testing.T) {
	exprs := []string{"abc", "[^a]x"}
	data := []byte("ABC ax AX bx")
	want := searchOracle(t, exprs, data, true)
	got := runSearch(t, exprs, data, true)
	if !matchesEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// The critical fold-before-negate case: [^a] must exclude BOTH
	// cases of 'a' (case closure happens before negation), so neither
	// "ax" nor "AX" matches [^a]x at its 'x'.
	for _, m := range got {
		if m.Pattern == 1 {
			end := m.End
			prev := data[end-2]
			if prev == 'a' || prev == 'A' {
				t.Fatalf("[^a]x matched with folded 'a' at %d", end)
			}
		}
	}
}

func TestRegexSearchMaxPatternLen(t *testing.T) {
	d, err := CompileRegexSearch([]string{"ab{1,4}", "xyz"}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxPatternLen != 5 {
		t.Errorf("MaxPatternLen = %d, want 5", d.MaxPatternLen)
	}
	if d.Out == nil {
		t.Fatal("search DFA lacks Out sets")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegexReductionExactness(t *testing.T) {
	// Bytes outside every leaf set share one class; distinguished bytes
	// get distinct classes. No aliasing: 'd' (outside) must not share a
	// class with 'a'.
	red, err := RegexReduction([]string{"a[bc]"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !red.Distinguishes('a', 'd') {
		t.Error("reduction aliases 'a' with an unused byte")
	}
	if !red.Distinguishes('a', 'b') {
		t.Error("reduction aliases 'a' with 'b'")
	}
	if red.Map['b'] != red.Map['c'] {
		t.Error("'b' and 'c' are interchangeable yet distinguished")
	}
	if err := red.Validate(); err != nil {
		t.Fatal(err)
	}
}

func FuzzRegexSearchVsOracle(f *testing.F) {
	f.Add("abc cats 07", int64(1))
	f.Add("zzab bqd  a12", int64(2))
	f.Fuzz(func(t *testing.T, s string, seed int64) {
		if len(s) > 200 {
			return
		}
		exprs := []string{"ab", "a[0-9]", "c.t"}
		data := []byte(s)
		want := searchOracle(t, exprs, data, false)
		got := runSearch(t, exprs, data, false)
		if !matchesEqual(got, want) {
			t.Fatalf("got %v, want %v (input %q)", got, want, s)
		}
	})
}

func ExampleCompileRegexSearch() {
	exprs := []string{"er{1,2}or", "[0-9]{3}"}
	red, _ := RegexReduction(exprs, false)
	d, _ := CompileRegexSearch(exprs, false, red)
	for _, m := range d.FindAll(red.Reduce([]byte("error 404"))) {
		fmt.Println(m.Pattern, m.End)
	}
	// Output:
	// 0 5
	// 1 9
}
