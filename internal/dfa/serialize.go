package dfa

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary serialization of compiled automata, so large dictionaries
// compile once and load instantly (the PPE-side artifact a deployment
// ships to its filtering nodes).
//
// Format (little-endian):
//
//	magic   "CMDFA1\x00"
//	uint32  syms
//	uint32  start
//	uint32  states
//	uint32  maxPatternLen
//	uint8   hasOut
//	int32   next[states*syms]
//	uint8   accept bitset, (states+7)/8 bytes
//	if hasOut: per state: uint32 n, then n uint32 pattern ids
var dfaMagic = []byte("CMDFA1\x00")

// MarshalBinary serializes the DFA.
func (d *DFA) MarshalBinary() ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(dfaMagic)
	n := d.NumStates()
	hdr := []uint32{uint32(d.Syms), uint32(d.Start), uint32(n), uint32(d.MaxPatternLen)}
	for _, h := range hdr {
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			return nil, err
		}
	}
	hasOut := byte(0)
	if d.Out != nil {
		hasOut = 1
	}
	buf.WriteByte(hasOut)
	if err := binary.Write(&buf, binary.LittleEndian, d.Next); err != nil {
		return nil, err
	}
	bits := make([]byte, (n+7)/8)
	for s, a := range d.Accept {
		if a {
			bits[s/8] |= 1 << (s % 8)
		}
	}
	buf.Write(bits)
	if hasOut == 1 {
		for _, out := range d.Out {
			if err := binary.Write(&buf, binary.LittleEndian, uint32(len(out))); err != nil {
				return nil, err
			}
			if len(out) > 0 {
				if err := binary.Write(&buf, binary.LittleEndian, out); err != nil {
					return nil, err
				}
			}
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary reconstructs a DFA serialized by MarshalBinary.
func (d *DFA) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, len(dfaMagic))
	if _, err := r.Read(magic); err != nil || !bytes.Equal(magic, dfaMagic) {
		return fmt.Errorf("dfa: bad magic")
	}
	var syms, start, states, maxLen uint32
	for _, p := range []*uint32{&syms, &start, &states, &maxLen} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return fmt.Errorf("dfa: truncated header: %w", err)
		}
	}
	if syms == 0 || syms > 256 {
		return fmt.Errorf("dfa: bad alphabet %d", syms)
	}
	const maxStates = 1 << 24
	if states == 0 || states > maxStates {
		return fmt.Errorf("dfa: bad state count %d", states)
	}
	hasOut, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("dfa: truncated flags: %w", err)
	}
	next := make([]int32, int(states)*int(syms))
	if err := binary.Read(r, binary.LittleEndian, next); err != nil {
		return fmt.Errorf("dfa: truncated table: %w", err)
	}
	bits := make([]byte, (states+7)/8)
	if _, err := r.Read(bits); err != nil {
		return fmt.Errorf("dfa: truncated accept set: %w", err)
	}
	accept := make([]bool, states)
	for s := range accept {
		accept[s] = bits[s/8]&(1<<(s%8)) != 0
	}
	var out [][]int32
	if hasOut == 1 {
		out = make([][]int32, states)
		for s := range out {
			var n uint32
			if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
				return fmt.Errorf("dfa: truncated output set: %w", err)
			}
			if n > 1<<20 {
				return fmt.Errorf("dfa: implausible output set size %d", n)
			}
			if n > 0 {
				ids := make([]int32, n)
				if err := binary.Read(r, binary.LittleEndian, ids); err != nil {
					return fmt.Errorf("dfa: truncated output ids: %w", err)
				}
				out[s] = ids
			}
		}
	}
	tmp := DFA{
		Syms:          int(syms),
		Start:         int(start),
		Next:          next,
		Accept:        accept,
		Out:           out,
		MaxPatternLen: int(maxLen),
	}
	if err := tmp.Validate(); err != nil {
		return fmt.Errorf("dfa: deserialized automaton invalid: %w", err)
	}
	*d = tmp
	return nil
}
