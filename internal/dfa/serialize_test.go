package dfa

import (
	"math/rand"
	"reflect"
	"testing"

	"cellmatch/internal/alphabet"
)

func TestSerializeRoundTrip(t *testing.T) {
	d, err := FromPatterns(pats("HE", "SHE", "HIS", "HERS"), alphabet.CaseFold32())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back DFA
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d.Next, back.Next) {
		t.Fatal("transition table changed")
	}
	if !reflect.DeepEqual(d.Accept, back.Accept) {
		t.Fatal("accept set changed")
	}
	if back.MaxPatternLen != d.MaxPatternLen || back.Start != d.Start || back.Syms != d.Syms {
		t.Fatal("header changed")
	}
	// Output sets survive, so FindAll behaves identically.
	text := alphabet.CaseFold32().Reduce([]byte("USHERS AND HIS HE"))
	got := back.FindAll(text)
	want := d.FindAll(text)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches differ after round trip: %v vs %v", got, want)
	}
}

func TestSerializeWithoutOutputs(t *testing.T) {
	d := mustCompile(t, "(a|b)*abb")
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back DFA
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Out != nil {
		t.Fatal("phantom output sets")
	}
	if !Equivalent(d, &back) {
		t.Fatal("language changed")
	}
}

func TestSerializeRejectsCorruption(t *testing.T) {
	d, err := FromPatterns(pats("AB"), nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bad magic":   func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"empty":       func(b []byte) []byte { return nil },
		"wild target": func(b []byte) []byte { b[30] = 0xFF; b[31] = 0xFF; return b },
	}
	for name, corrupt := range cases {
		blob2 := corrupt(append([]byte(nil), blob...))
		var back DFA
		if err := back.UnmarshalBinary(blob2); err == nil {
			// "wild target" may happen to hit a valid byte; the
			// validator must have accepted only a *valid* automaton.
			if back.Validate() != nil {
				t.Fatalf("%s: accepted invalid automaton", name)
			}
		}
	}
}

func TestSerializeInvalidDFA(t *testing.T) {
	bad := &DFA{Syms: 2, Next: []int32{5, 5}, Accept: []bool{false}}
	if _, err := bad.MarshalBinary(); err == nil {
		t.Fatal("invalid DFA serialized")
	}
}

// Property: random AC automata survive serialization with identical
// scan behaviour.
func TestSerializeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		np := 1 + rng.Intn(6)
		dict := make([][]byte, np)
		for i := range dict {
			l := 1 + rng.Intn(6)
			p := make([]byte, l)
			for j := range p {
				p[j] = byte('A' + rng.Intn(3))
			}
			dict[i] = p
		}
		d, err := FromPatterns(dict, nil)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := d.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back DFA
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatal(err)
		}
		text := make([]byte, 100)
		for j := range text {
			text[j] = byte('A' + rng.Intn(3))
		}
		if back.CountFinalEntries(text) != d.CountFinalEntries(text) {
			t.Fatalf("trial %d: counts differ after round trip", trial)
		}
	}
}
