// Package eib models the Cell's Element Interconnect Bus and memory
// interface controller as a fluid-flow contention model on top of the
// discrete-event engine.
//
// The model reproduces the behaviour the paper relies on (Section 2,
// Figure 2):
//
//   - the theoretical main-memory bandwidth is 25.6 GB/s, but under
//     heavy traffic the achievable aggregate saturates at 22.05 GB/s
//     (arbitration ceiling);
//   - each DMA command pays a fixed bus-negotiation overhead, so small
//     blocks waste a large fraction of the wire: the efficiency of a
//     block of B bytes is B/(B+overhead);
//   - a single SPE's MFC link cannot exceed ~7 GB/s, so several SPEs
//     are needed to saturate memory (the knee in Figure 2 at 3-4 SPEs);
//   - with all 8 SPEs streaming, each one sees 22.05/8 = 2.76 GB/s,
//     which makes a 16 KB input block take 5.94 us (Figure 5).
//
// Transfers in flight share bandwidth max-min fairly: each SPE's
// transfers split that SPE's link, and when the sum exceeds a global
// ceiling every flow is scaled back proportionally, which is how the
// EIB's round-robin data arbiter behaves.
package eib

import (
	"fmt"
	"math"

	"cellmatch/internal/sim"
)

// Model holds the calibration constants of the bandwidth model.
type Model struct {
	// WirePeakBps is the raw memory interface bandwidth (25.6 GB/s).
	WirePeakBps float64
	// ArbCeilingBps is the maximum aggregate payload under heavy
	// traffic (22.05 GB/s in the paper).
	ArbCeilingBps float64
	// SPELinkBps is the per-SPE MFC link wire limit.
	SPELinkBps float64
	// OverheadBytes is the bus-negotiation cost per DMA command,
	// expressed in equivalent wire bytes.
	OverheadBytes float64
	// MaxDMABytes is the largest single MFC command (16 KB on Cell);
	// larger requests pay the command overhead once per piece.
	MaxDMABytes int64
}

// Default returns the model calibrated against the paper's numbers.
func Default() Model {
	return Model{
		WirePeakBps:   25.6e9,
		ArbCeilingBps: 22.05e9,
		SPELinkBps:    7.0e9,
		OverheadBytes: 82.0,
		MaxDMABytes:   16 * 1024,
	}
}

// Efficiency returns the payload fraction of the wire for commands of
// blockBytes payload each.
func (m Model) Efficiency(blockBytes int64) float64 {
	if blockBytes <= 0 {
		return 0
	}
	b := float64(blockBytes)
	return b / (b + m.OverheadBytes)
}

// wireBytes returns the wire cost of moving n payload bytes in commands
// of at most MaxDMABytes.
func (m Model) wireBytes(n int64) float64 {
	if n <= 0 {
		return 0
	}
	pieces := (n + m.MaxDMABytes - 1) / m.MaxDMABytes
	return float64(n) + float64(pieces)*m.OverheadBytes
}

// Direction of a transfer relative to the SPE.
type Direction int

const (
	// Get moves data main memory -> local store.
	Get Direction = iota
	// Put moves data local store -> main memory.
	Put
)

func (d Direction) String() string {
	if d == Get {
		return "get"
	}
	return "put"
}

// Transfer is one DMA payload in flight on the bus.
type Transfer struct {
	SPE       int
	Dir       Direction
	Bytes     int64
	BlockSize int64 // per-command payload, for efficiency accounting
	Started   sim.Time
	Finished  sim.Time

	remWire   float64 // wire bytes left
	wireTotal float64 // wire bytes at start
	wireRate  float64 // current wire bytes/s
	done      func(*Transfer)
	bus       *Bus
	active    bool
}

// Bus is the shared interconnect. All SPEs' MFCs submit transfers here.
type Bus struct {
	Eng   *sim.Engine
	Model Model

	active     []*Transfer
	lastUpdate sim.Time
	nextDone   sim.EventID
	hasNext    bool

	// TotalPayload accumulates completed payload bytes, for
	// conservation checks and bandwidth measurement.
	TotalPayload int64
}

// NewBus creates a bus bound to the given engine with the given model.
func NewBus(eng *sim.Engine, m Model) *Bus {
	return &Bus{Eng: eng, Model: m, lastUpdate: eng.Now()}
}

// Start begins a transfer of n payload bytes for the given SPE. The
// done callback (may be nil) fires at completion time. blockBytes is
// the per-command payload size used for efficiency accounting; pass n
// itself for a single command.
func (b *Bus) Start(spe int, dir Direction, n, blockBytes int64, done func(*Transfer)) *Transfer {
	if n <= 0 {
		panic("eib: non-positive transfer size")
	}
	if blockBytes <= 0 || blockBytes > n {
		blockBytes = n
	}
	if blockBytes > b.Model.MaxDMABytes {
		blockBytes = b.Model.MaxDMABytes
	}
	wire := b.Model.wireBytes(n)
	t := &Transfer{
		SPE:       spe,
		Dir:       dir,
		Bytes:     n,
		BlockSize: blockBytes,
		Started:   b.Eng.Now(),
		remWire:   wire,
		wireTotal: wire,
		done:      done,
		bus:       b,
		active:    true,
	}
	b.advance()
	b.active = append(b.active, t)
	b.reallocate()
	return t
}

// InFlight returns the number of active transfers.
func (b *Bus) InFlight() int { return len(b.active) }

// PayloadProgress returns total payload bytes delivered so far,
// including the pro-rata progress of transfers still in flight. Used
// for bandwidth measurement without end-of-window truncation bias.
func (b *Bus) PayloadProgress() float64 {
	b.advance()
	p := float64(b.TotalPayload)
	for _, t := range b.active {
		if t.wireTotal > 0 {
			p += (1 - t.remWire/t.wireTotal) * float64(t.Bytes)
		}
	}
	return p
}

// advance progresses all active transfers to the current time at their
// previously computed rates.
func (b *Bus) advance() {
	now := b.Eng.Now()
	dt := (now - b.lastUpdate).Seconds()
	b.lastUpdate = now
	if dt <= 0 {
		return
	}
	for _, t := range b.active {
		t.remWire -= t.wireRate * dt
		if t.remWire < 1e-6 {
			t.remWire = 0
		}
	}
}

// reallocate computes max-min fair wire rates under the per-SPE link
// caps and the global wire/arbitration ceilings, then schedules the
// next completion event.
func (b *Bus) reallocate() {
	if b.hasNext {
		b.Eng.Cancel(b.nextDone)
		b.hasNext = false
	}
	if len(b.active) == 0 {
		return
	}
	perSPE := make(map[int]int)
	for _, t := range b.active {
		perSPE[t.SPE]++
	}
	// Step 1: each transfer gets an equal share of its SPE's link.
	var totalWire, totalPayload float64
	for _, t := range b.active {
		t.wireRate = b.Model.SPELinkBps / float64(perSPE[t.SPE])
		totalWire += t.wireRate
		totalPayload += t.wireRate * b.Model.Efficiency(t.BlockSize)
	}
	// Step 2: proportional scale-back if a global ceiling binds.
	scale := 1.0
	if totalWire > b.Model.WirePeakBps {
		scale = b.Model.WirePeakBps / totalWire
	}
	if totalPayload*scale > b.Model.ArbCeilingBps {
		scale = math.Min(scale, b.Model.ArbCeilingBps/totalPayload)
	}
	var soonest sim.Time = -1
	for _, t := range b.active {
		t.wireRate *= scale
		left := sim.Time(math.Ceil(t.remWire / t.wireRate * 1e12))
		if left < sim.Picosecond {
			left = sim.Picosecond
		}
		if soonest < 0 || left < soonest {
			soonest = left
		}
	}
	b.nextDone = b.Eng.After(soonest, b.completeDue)
	b.hasNext = true
}

// completeDue finishes every transfer that has drained.
func (b *Bus) completeDue() {
	b.hasNext = false
	b.advance()
	var finished []*Transfer
	remaining := b.active[:0]
	for _, t := range b.active {
		if t.remWire <= 0 {
			t.active = false
			t.Finished = b.Eng.Now()
			b.TotalPayload += t.Bytes
			finished = append(finished, t)
		} else {
			remaining = append(remaining, t)
		}
	}
	b.active = remaining
	b.reallocate()
	for _, t := range finished {
		if t.done != nil {
			t.done(t)
		}
	}
}

// TransferTime predicts, without running the engine, how long a
// transfer of n payload bytes takes when the SPE sees the given payload
// bandwidth. Used by analytic schedule construction.
func TransferTime(n int64, payloadBps float64) sim.Time {
	return sim.BytesToTime(n, payloadBps)
}

// AggregateBandwidth runs a saturation experiment: k SPEs each keep one
// transfer of blockBytes outstanding back-to-back for the given
// duration, and the achieved aggregate payload bandwidth is returned in
// bytes/second. This regenerates one point of Figure 2.
func AggregateBandwidth(k int, blockBytes int64, duration sim.Time) float64 {
	eng := sim.New()
	bus := NewBus(eng, Default())
	var issue func(spe int)
	issue = func(spe int) {
		bus.Start(spe, Get, blockBytes, blockBytes, func(t *Transfer) {
			if eng.Now() < duration {
				issue(spe)
			}
		})
	}
	for s := 0; s < k; s++ {
		issue(s)
	}
	eng.RunUntil(duration)
	if duration <= 0 {
		return 0
	}
	return bus.PayloadProgress() / duration.Seconds()
}

// HeavyTrafficPerSPE returns the per-SPE payload bandwidth when all 8
// SPEs stream blocks of the given size — the paper's 2.76 GB/s figure
// for 16 KB blocks.
func HeavyTrafficPerSPE(blockBytes int64) float64 {
	return AggregateBandwidth(8, blockBytes, 200*sim.Microsecond) / 8
}

func (t *Transfer) String() string {
	return fmt.Sprintf("spe%d %s %dB", t.SPE, t.Dir, t.Bytes)
}
