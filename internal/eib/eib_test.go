package eib

import (
	"testing"

	"cellmatch/internal/sim"
)

func TestEfficiencyMonotone(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, b := range []int64{16, 64, 128, 256, 512, 1024, 16384} {
		e := m.Efficiency(b)
		if e <= prev {
			t.Fatalf("efficiency not increasing at %dB: %f <= %f", b, e, prev)
		}
		if e <= 0 || e >= 1 {
			t.Fatalf("efficiency out of range at %dB: %f", b, e)
		}
		prev = e
	}
	if m.Efficiency(0) != 0 {
		t.Fatal("zero block should have zero efficiency")
	}
}

func TestSingleTransferAlone(t *testing.T) {
	eng := sim.New()
	bus := NewBus(eng, Default())
	var doneAt sim.Time
	bus.Start(0, Get, 16384, 16384, func(tr *Transfer) { doneAt = eng.Now() })
	eng.Run()
	// Alone, the SPE link (7 GB/s wire) is the bottleneck:
	// (16384+82)/7e9 = 2.352 us.
	us := doneAt.Micros()
	if us < 2.2 || us > 2.5 {
		t.Fatalf("lone 16KB transfer took %.3f us, want ~2.35", us)
	}
}

func TestHeavyTraffic16KMatchesPaper(t *testing.T) {
	// Paper Section 4 / Figure 5: worst case all 8 SPEs streaming gives
	// 22.05 GB/s aggregate, i.e. 2.76 GB/s per SPE, i.e. 5.94 us per
	// 16 KB block.
	per := HeavyTrafficPerSPE(16384)
	gb := per / 1e9
	if gb < 2.6 || gb > 2.9 {
		t.Fatalf("per-SPE heavy-traffic bandwidth = %.3f GB/s, want ~2.76", gb)
	}
	blockTime := TransferTime(16384, per)
	us := blockTime.Micros()
	if us < 5.6 || us > 6.3 {
		t.Fatalf("16KB heavy-traffic block time = %.3f us, want ~5.94", us)
	}
}

func TestFigure2Saturation(t *testing.T) {
	// Large blocks with 8 SPEs saturate near the 22.05 GB/s ceiling.
	agg := AggregateBandwidth(8, 16384, 100*sim.Microsecond)
	gb := agg / 1e9
	if gb < 21.0 || gb > 22.3 {
		t.Fatalf("8-SPE 16KB aggregate = %.2f GB/s, want ~22.05", gb)
	}
}

func TestFigure2BlockSizeOrdering(t *testing.T) {
	// At 8 SPEs the aggregate bandwidth must increase with block size
	// (the four curves of Figure 2 never cross).
	prev := 0.0
	for _, b := range []int64{64, 128, 256, 512} {
		agg := AggregateBandwidth(8, b, 100*sim.Microsecond)
		if agg <= prev {
			t.Fatalf("aggregate not increasing at %dB: %.2f <= %.2f GB/s",
				b, agg/1e9, prev/1e9)
		}
		prev = agg
	}
}

func TestFigure2SmallBlocksWaste(t *testing.T) {
	// 64-byte blocks should achieve well under half of the 512-byte
	// bandwidth's efficiency premium (paper: "close to the peak ...
	// only when transferred blocks are at least 256 bytes").
	small := AggregateBandwidth(8, 64, 100*sim.Microsecond)
	big := AggregateBandwidth(8, 512, 100*sim.Microsecond)
	if small >= 0.65*big {
		t.Fatalf("64B blocks too efficient: %.2f vs %.2f GB/s", small/1e9, big/1e9)
	}
}

func TestFigure2SPEScaling(t *testing.T) {
	// With 512B+ blocks the curve should rise with SPE count and
	// flatten once the arbitration ceiling binds (3-4 SPEs).
	var prev float64
	for k := 1; k <= 8; k++ {
		agg := AggregateBandwidth(k, 16384, 100*sim.Microsecond)
		if agg+1e8 < prev {
			t.Fatalf("aggregate dropped at k=%d: %.2f < %.2f GB/s", k, agg/1e9, prev/1e9)
		}
		prev = agg
	}
	one := AggregateBandwidth(1, 16384, 100*sim.Microsecond)
	eight := AggregateBandwidth(8, 16384, 100*sim.Microsecond)
	if eight < 2.5*one {
		t.Fatalf("no scaling: 1 SPE %.2f, 8 SPEs %.2f GB/s", one/1e9, eight/1e9)
	}
	four := AggregateBandwidth(4, 16384, 100*sim.Microsecond)
	if eight > 1.15*four {
		t.Fatalf("ceiling not binding: 4 SPEs %.2f, 8 SPEs %.2f GB/s", four/1e9, eight/1e9)
	}
}

func TestConservation(t *testing.T) {
	eng := sim.New()
	bus := NewBus(eng, Default())
	var want int64
	for s := 0; s < 4; s++ {
		for i := 0; i < 3; i++ {
			n := int64(1024 * (s + 1) * (i + 1))
			want += n
			bus.Start(s, Get, n, n, nil)
		}
	}
	eng.Run()
	if bus.TotalPayload != want {
		t.Fatalf("payload conservation: got %d want %d", bus.TotalPayload, want)
	}
	if bus.InFlight() != 0 {
		t.Fatalf("transfers left in flight: %d", bus.InFlight())
	}
}

func TestFairShareWithinSPE(t *testing.T) {
	// Two equal transfers on one SPE should complete together, in about
	// twice the time of a lone transfer.
	eng := sim.New()
	bus := NewBus(eng, Default())
	var at [2]sim.Time
	bus.Start(0, Get, 8192, 8192, func(tr *Transfer) { at[0] = eng.Now() })
	bus.Start(0, Get, 8192, 8192, func(tr *Transfer) { at[1] = eng.Now() })
	eng.Run()
	d := (at[0] - at[1]).Micros()
	if d < -0.01 || d > 0.01 {
		t.Fatalf("equal transfers finished %f us apart", d)
	}
}

func TestContentionSlowsTransfers(t *testing.T) {
	lone := func() sim.Time {
		eng := sim.New()
		bus := NewBus(eng, Default())
		var done sim.Time
		bus.Start(0, Get, 16384, 16384, func(tr *Transfer) { done = eng.Now() })
		eng.Run()
		return done
	}()
	contended := func() sim.Time {
		eng := sim.New()
		bus := NewBus(eng, Default())
		var done sim.Time
		bus.Start(0, Get, 16384, 16384, func(tr *Transfer) { done = eng.Now() })
		for s := 1; s < 8; s++ {
			bus.Start(s, Get, 1<<20, 16384, nil)
		}
		eng.Run()
		return done
	}()
	if contended <= lone {
		t.Fatalf("contention did not slow transfer: %v vs %v", contended, lone)
	}
	// Under full contention the SPE gets ~2.76 GB/s instead of ~7.
	ratio := float64(contended) / float64(lone)
	if ratio < 1.5 || ratio > 4.0 {
		t.Fatalf("contention ratio %.2f outside plausible band", ratio)
	}
}

func TestPutAndGetShareBus(t *testing.T) {
	eng := sim.New()
	bus := NewBus(eng, Default())
	done := 0
	bus.Start(0, Get, 4096, 4096, func(tr *Transfer) { done++ })
	bus.Start(0, Put, 4096, 4096, func(tr *Transfer) { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size transfer did not panic")
		}
	}()
	eng := sim.New()
	bus := NewBus(eng, Default())
	bus.Start(0, Get, 0, 0, nil)
}

func TestDirectionString(t *testing.T) {
	if Get.String() != "get" || Put.String() != "put" {
		t.Fatal("direction strings")
	}
}
