// Package fanout is the compilation-side worker fan-out: a bounded
// parallel-for used by the dictionary compilers (dfa, compose, kernel)
// to spread independent build units — per-slot automata, per-shard
// kernels, per-state table rows — across cores. It is deliberately
// tiny and separate from internal/parallel, which owns the *scan*
// path's pool (long-lived workers, scratch reuse, streaming); compile
// fan-out is a short burst of CPU-bound units where plain goroutines
// with an atomic work counter are the right tool.
//
// Every user of this package must produce byte-identical results at
// any worker count: units are independent (disjoint writes) and the
// combining step is order-insensitive or explicitly ordered by index.
package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob shared by every compile surface:
// 0 (the zero value) means one worker per core (GOMAXPROCS), 1 pins the
// sequential reference path, and any other positive value is taken
// as-is. Negative values are treated as sequential.
func Workers(n int) int {
	switch {
	case n == 0:
		return runtime.GOMAXPROCS(0)
	case n < 1:
		return 1
	}
	return n
}

// ForEach runs f(i) for every i in [0, n), on up to workers goroutines
// (resolved via Workers). Work is handed out by an atomic counter, so
// uneven unit costs balance; the call returns when every unit is done.
// With workers <= 1 (or n <= 1) it degenerates to the plain loop on the
// calling goroutine — no goroutines, no synchronization.
func ForEach(n, workers int, f func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for units that can fail: every unit still runs
// (failures do not cancel in-flight siblings — units are cheap and
// independent), and the error of the lowest-indexed failing unit is
// returned, so the reported error is deterministic regardless of
// scheduling.
func ForEachErr(n, workers int, f func(i int) error) error {
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	ForEach(n, workers, func(i int) {
		if err := f(i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}

// Split cuts n units into at most parts contiguous ranges of nearly
// equal size, returning the range boundaries (len = ranges+1,
// boundaries[0] = 0, boundaries[len-1] = n). Used when per-unit work is
// uniform and cache locality favors contiguous chunks over an atomic
// counter (table-row fills).
func Split(n, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	if parts < 1 { // n == 0
		return []int{0, 0}
	}
	bounds := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		bounds[i] = i * n / parts
	}
	return bounds
}

// ForRanges runs f(lo, hi) over the Split of [0, n) into one contiguous
// range per worker — the uniform-cost variant of ForEach used for
// per-state table fills, where contiguous ranges keep writes
// cache-friendly.
func ForRanges(n, workers int, f func(lo, hi int)) {
	w := Workers(workers)
	bounds := Split(n, w)
	ranges := len(bounds) - 1
	if ranges <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(ranges)
	for r := 0; r < ranges; r++ {
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(bounds[r], bounds[r+1])
	}
	wg.Wait()
}
