package fanout

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want sequential", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			hits := make([]atomic.Int32, n)
			ForEach(n, workers, func(i int) {
				hits[i].Add(1)
			})
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachErrReportsLowestFailingIndex(t *testing.T) {
	// Both units 3 and 7 fail; the lowest index must win regardless of
	// which goroutine finishes first.
	for _, workers := range []int{1, 4} {
		err := ForEachErr(10, workers, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("unit %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 3" {
			t.Fatalf("workers=%d: got %v, want unit 3", workers, err)
		}
	}
	if err := ForEachErr(4, 2, func(int) error { return nil }); err != nil {
		t.Fatalf("all-ok run returned %v", err)
	}
	sentinel := errors.New("boom")
	if err := ForEachErr(1, 1, func(int) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("single-unit failure lost: %v", err)
	}
}

func TestSplitBoundaries(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []int
	}{
		{10, 3, []int{0, 3, 6, 10}},
		{10, 1, []int{0, 10}},
		{3, 10, []int{0, 1, 2, 3}}, // parts clamped to n
		{5, 0, []int{0, 5}},        // parts clamped up to 1
		{0, 4, []int{0, 0}},        // empty input
	}
	for _, c := range cases {
		got := Split(c.n, c.parts)
		if len(got) != len(c.want) {
			t.Fatalf("Split(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Split(%d,%d) = %v, want %v", c.n, c.parts, got, c.want)
			}
		}
		// Contract: monotone, starts at 0, ends at n.
		if got[0] != 0 || got[len(got)-1] != c.n {
			t.Fatalf("Split(%d,%d) endpoints wrong: %v", c.n, c.parts, got)
		}
	}
}

func TestForRangesCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 7, 64} {
			hits := make([]atomic.Int32, n)
			ForRanges(n, workers, func(lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("bad range [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}
