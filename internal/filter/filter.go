// Package filter is the sublinear skip-scan front-end ahead of the DFA
// verifier engines: a reverse-suffix window filter in the style of
// BNDM (Navarro/Raffinot) and of Kearns' reverse suffix scanning, built
// from the compiled dictionary's length-m prefixes over the reduced
// alphabet, where m is the shortest pattern length.
//
// Every engine below this one — dense kernel, sharded kernels, stt —
// reads every input byte: the paper's peak-performance ceiling for
// forward DFA scanning. The filter breaks that ceiling for
// dictionaries whose patterns are not too short: it slides an m-byte
// window over the input and inspects the window FROM ITS RIGHT END
// backwards, tracking (bit-parallel, one uint64) the set of dictionary
// prefix factors that match the suffix read so far. When the set dies
// after j characters, no dictionary pattern can start anywhere in the
// window's first m-j positions, and the window jumps by the longest
// shift the factor evidence allows — most input bytes are never
// touched. Windows that survive the whole backward scan are candidate
// occurrence starts and are handed to the exact verifier.
//
// Two engines share the interface:
//
//   - bit-parallel (m <= 64): classic multi-pattern BNDM. B[c] holds,
//     for symbol class c, the positions where c occurs in any pattern's
//     length-m prefix (bit i = position m-1-i). The backward scan is
//     one AND and one shift per character examined.
//   - factor table (m > 64): a Wu-Manber-style 2-gram shift table over
//     the reduced classes. The window's last 2-gram indexes the longest
//     safe shift (default m-1 for grams absent from every prefix);
//     shift 0 marks a candidate.
//
// Both engines guarantee the no-miss property the property tests
// assert: no computed shift skips a window start where a dictionary
// occurrence begins.
//
// Verification is exact, not approximate. Candidates are merged into
// verify segments: each candidate start q is extended to q+Extend
// (Extend = the longest pattern length), overlapping or touching
// extensions coalesce, and each segment is scanned from the verifier's
// root state. This reproduces the full scan byte for byte:
//
//   - every match starts at a candidate (its first m bytes are a
//     dictionary prefix, which the window filter never slides past), so
//     every match lies wholly inside the segment containing its start
//     (segments reach Extend past each candidate);
//   - segments are disjoint and ordered, so no match is reported twice
//     and concatenating per-segment sorted matches preserves the global
//     (End, Pattern) order;
//   - a match can never straddle INTO a segment from outside: its start
//     would be a candidate whose extension overlaps the segment, which
//     would have merged them.
//
// Root-start per segment is therefore exact state carry in the only
// sense that matters: the gap between segments provably contains no
// byte of any match, so the automaton state at a segment start is
// equivalent to the root for every match the scan can report.
package filter

import (
	"errors"
	"fmt"
	"math/bits"

	"cellmatch/internal/alphabet"
)

const (
	// MinWindow is the smallest usable window. A dictionary whose
	// shortest pattern is a single byte gives the filter nothing to
	// skip with; callers must bypass it (Build refuses).
	MinWindow = 2

	// MaxBitWindow is the bit-parallel engine's window ceiling (the
	// suffix-automaton state set lives in one uint64). Longer minimum
	// pattern lengths use the factor-table engine.
	MaxBitWindow = 64
)

// ErrShort is returned by Build when the dictionary's shortest pattern
// is below MinWindow: the filter cannot help and the caller should
// scan unfiltered.
var ErrShort = errors.New("filter: shortest pattern below the minimum window")

// Segment is one verify region [Start, End) of the input: every
// dictionary occurrence intersecting it starts and ends inside it.
type Segment struct {
	Start, End int
}

// Filter is a compiled skip-scan front-end. Build once per dictionary;
// a Filter is immutable and safe for concurrent use.
type Filter struct {
	// MinLen is the shortest dictionary pattern — the window length.
	MinLen int
	// Window is the sliding window length (== MinLen; kept separate so
	// diagnostics read unambiguously).
	Window int
	// Extend is the longest dictionary pattern: how far a verify
	// segment reaches past a candidate start so any occurrence
	// beginning there is wholly contained.
	Extend int

	bit   bool        // bit-parallel engine (Window <= MaxBitWindow)
	masks [256]uint64 // bit-parallel: raw byte -> prefix position mask
	hi    uint64      // 1 << (Window-1): the "full prefix" bit

	classes int // factor engine: reduced class count
	cls     [256]byte
	shift   []uint16 // factor engine: 2-gram -> longest safe shift

	filled, slots int // occupancy of the masks / gram table
}

// Build compiles the filter for a dictionary over the given reduction
// (nil means the identity reduction). The window is the shortest
// pattern length; dictionaries with a single-byte pattern return
// ErrShort (wrapped) and must scan unfiltered.
func Build(patterns [][]byte, red *alphabet.Reduction) (*Filter, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("filter: empty dictionary")
	}
	if red == nil {
		red = alphabet.Identity()
	}
	minLen, maxLen := 0, 0
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("filter: pattern %d is empty", i)
		}
		if minLen == 0 || len(p) < minLen {
			minLen = len(p)
		}
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	if minLen < MinWindow {
		return nil, fmt.Errorf("%w: %d", ErrShort, minLen)
	}
	f := &Filter{MinLen: minLen, Window: minLen, Extend: maxLen}
	if minLen <= MaxBitWindow {
		f.buildBit(patterns, red)
	} else {
		f.buildFactor(patterns, red)
	}
	return f, nil
}

// buildBit fills the BNDM position masks: bit i of B[c] is set when
// symbol class c occurs at position Window-1-i of some pattern's
// length-Window prefix. Masks are expanded to raw-byte indexing so the
// scan consumes unreduced input, like the kernel.
func (f *Filter) buildBit(patterns [][]byte, red *alphabet.Reduction) {
	f.bit = true
	f.hi = 1 << (f.Window - 1)
	var classMask [256]uint64
	for _, p := range patterns {
		for i := 0; i < f.Window; i++ {
			classMask[red.Map[p[i]]] |= 1 << (f.Window - 1 - i)
		}
	}
	for b := 0; b < 256; b++ {
		f.masks[b] = classMask[red.Map[b]]
	}
	f.slots = red.Classes * f.Window
	for c := 0; c < red.Classes; c++ {
		f.filled += bits.OnesCount64(classMask[byte(c)])
	}
}

// buildFactor fills the Wu-Manber-style 2-gram shift table: for a gram
// ending at prefix position i the safe shift is Window-1-i; grams
// absent from every prefix shift the full Window-1.
func (f *Filter) buildFactor(patterns [][]byte, red *alphabet.Reduction) {
	f.classes = red.Classes
	f.cls = red.Map
	f.shift = make([]uint16, f.classes*f.classes)
	def := f.Window - 1
	if def > 1<<16-1 {
		def = 1<<16 - 1 // a smaller shift is always safe
	}
	for i := range f.shift {
		f.shift[i] = uint16(def)
	}
	for _, p := range patterns {
		for i := 1; i < f.Window; i++ {
			g := int(red.Map[p[i-1]])*f.classes + int(red.Map[p[i]])
			if s := f.Window - 1 - i; s < int(f.shift[g]) {
				f.shift[g] = uint16(s)
			}
		}
	}
	f.slots = f.classes * f.classes
	for _, s := range f.shift {
		if int(s) < def {
			f.filled++
		}
	}
}

// Kind names the live engine: "bndm" (bit-parallel) or "factor".
func (f *Filter) Kind() string {
	if f.bit {
		return "bndm"
	}
	return "factor"
}

// Density is the occupancy of the filter's evidence tables in [0, 1]:
// the fraction of (class, position) mask bits (bndm) or class-pair
// grams (factor) the dictionary fills. Saturated tables kill the
// filter's ability to rule windows out, so engine auto-selection
// refuses dense dictionaries.
func (f *Filter) Density() float64 {
	if f.slots == 0 {
		return 1
	}
	return float64(f.filled) / float64(f.slots)
}

// Candidates calls yield for every window start that may begin a
// dictionary occurrence, in strictly increasing order, and returns the
// number of valid window positions the scan skipped without examining
// (jumps past the last valid window start are not counted).
// The no-miss guarantee: every position where a pattern's length-
// Window prefix (under the reduction) actually occurs is yielded.
func (f *Filter) Candidates(data []byte, yield func(pos int)) int64 {
	if f.bit {
		return f.candidatesBit(data, yield)
	}
	return f.candidatesFactor(data, yield)
}

// candidatesBit is multi-pattern BNDM. The inner loop reads the window
// right to left; D's bit i tracks "the suffix read so far matches some
// prefix at offset i". The high bit reports a dictionary prefix
// aligned with the window start of the suffix read — at j == 0 that is
// the whole window: a candidate.
func (f *Filter) candidatesBit(data []byte, yield func(pos int)) int64 {
	m := f.Window
	masks := &f.masks
	hi := f.hi
	full := ^uint64(0)
	if m < 64 {
		full = 1<<m - 1
	}
	var skipped int64
	n := len(data)
	limit := n - m + 1 // one past the last valid window start
	for pos := 0; pos+m <= n; {
		j, last := m, m
		D := full
		for D != 0 {
			D &= masks[data[pos+j-1]]
			j--
			if D&hi != 0 {
				if j > 0 {
					// A dictionary prefix starts at pos+j: the next
					// window may begin there, never earlier.
					last = j
				} else {
					yield(pos)
				}
			}
			if j == 0 {
				break // whole window consumed
			}
			D <<= 1
		}
		skipped += int64(min(pos+last, limit) - pos - 1)
		pos += last
	}
	return skipped
}

// candidatesFactor is the 2-gram shift scan: index the window's last
// gram, jump by its precomputed safe shift; shift 0 is a candidate.
func (f *Filter) candidatesFactor(data []byte, yield func(pos int)) int64 {
	m := f.Window
	cls := &f.cls
	classes := f.classes
	var skipped int64
	n := len(data)
	limit := n - m + 1 // one past the last valid window start
	for pos := 0; pos+m <= n; {
		g := int(cls[data[pos+m-2]])*classes + int(cls[data[pos+m-1]])
		s := int(f.shift[g])
		if s == 0 {
			yield(pos)
			pos++
			continue
		}
		skipped += int64(min(pos+s, limit) - pos - 1)
		pos += s
	}
	return skipped
}

// Segments returns the verify regions of data — candidate starts
// extended by Extend and coalesced when they overlap or touch — plus
// the number of window positions the scan skipped. Scanning each
// segment from the verifier's root state reproduces exactly the
// matches a full scan of data would report (see the package comment
// for the argument); the gaps between segments contain no byte of any
// match.
func (f *Filter) Segments(data []byte) ([]Segment, int64) {
	var segs []Segment
	skipped := f.Candidates(data, func(pos int) {
		end := pos + f.Extend
		if end > len(data) {
			end = len(data)
		}
		if k := len(segs) - 1; k >= 0 && pos <= segs[k].End {
			if end > segs[k].End {
				segs[k].End = end
			}
			return
		}
		segs = append(segs, Segment{Start: pos, End: end})
	})
	return segs, skipped
}
