package filter

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/baseline"
)

func mustBuild(t *testing.T, patterns []string, red *alphabet.Reduction) *Filter {
	t.Helper()
	bs := make([][]byte, len(patterns))
	for i, p := range patterns {
		bs[i] = []byte(p)
	}
	f, err := Build(bs, red)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func candidateSet(f *Filter, data []byte) map[int]bool {
	out := map[int]bool{}
	f.Candidates(data, func(pos int) { out[pos] = true })
	return out
}

// naiveStarts lists every position where pattern occurs in text under
// the reduction — the ground truth the filter must never skip past.
func naiveStarts(text, pattern []byte, red *alphabet.Reduction) []int {
	rt, rp := red.Reduce(text), red.Reduce(pattern)
	var out []int
	for i := 0; i+len(rp) <= len(rt); i++ {
		if bytes.Equal(rt[i:i+len(rp)], rp) {
			out = append(out, i)
		}
	}
	return out
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Fatal("empty dictionary accepted")
	}
	if _, err := Build([][]byte{[]byte("ok"), nil}, nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
	_, err := Build([][]byte{[]byte("a"), []byte("abcd")}, nil)
	if err == nil {
		t.Fatal("single-byte minimum accepted")
	}
	if !strings.Contains(err.Error(), "below the minimum window") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestWindowAndEngineSelection(t *testing.T) {
	f := mustBuild(t, []string{"abcd", "abcdefgh"}, nil)
	if f.Window != 4 || f.MinLen != 4 || f.Extend != 8 {
		t.Fatalf("geometry = %d/%d/%d", f.Window, f.MinLen, f.Extend)
	}
	if f.Kind() != "bndm" {
		t.Fatalf("kind = %q, want bndm for window 4", f.Kind())
	}
	long := strings.Repeat("x", MaxBitWindow+1)
	f = mustBuild(t, []string{long + "tail", long}, nil)
	if f.Kind() != "factor" || f.Window != MaxBitWindow+1 {
		t.Fatalf("kind = %q window = %d, want factor/%d", f.Kind(), f.Window, MaxBitWindow+1)
	}
	f = mustBuild(t, []string{strings.Repeat("y", MaxBitWindow)}, nil)
	if f.Kind() != "bndm" {
		t.Fatalf("kind = %q, want bndm at the %d-byte boundary", f.Kind(), MaxBitWindow)
	}
}

func TestCandidatesExactOccurrences(t *testing.T) {
	f := mustBuild(t, []string{"abra", "cadabra"}, nil)
	data := []byte("abracadabra xx abra cadabra")
	got := candidateSet(f, data)
	// Every real occurrence start of either pattern must be a candidate.
	red := alphabet.Identity()
	for _, p := range [][]byte{[]byte("abra"), []byte("cadabra")} {
		for _, q := range naiveStarts(data, p, red) {
			if !got[q] {
				t.Fatalf("occurrence start %d of %q not a candidate (got %v)", q, p, got)
			}
		}
	}
}

func TestCandidatesSkipCleanText(t *testing.T) {
	f := mustBuild(t, []string{"VIRUSSIGNATURE", "WORMSIGNATURES"}, nil)
	data := []byte(strings.Repeat("benign lowercase traffic with no signatures at all. ", 100))
	var cands []int
	skipped := f.Candidates(data, func(pos int) { cands = append(cands, pos) })
	if len(cands) != 0 {
		t.Fatalf("clean text produced %d candidates", len(cands))
	}
	// Disjoint alphabets: the window filter should skip nearly
	// window-1 positions per window examined.
	examined := int64(len(data)) - skipped
	if examined*4 > int64(len(data)) {
		t.Fatalf("examined %d of %d positions; filter is not skipping", examined, len(data))
	}
}

func TestSegmentsContainAndMerge(t *testing.T) {
	f := mustBuild(t, []string{"abcd", "abcdefghij"}, nil)
	//                0123456789012345678
	data := []byte("xxabcdxxxxxxxxxabcdx")
	segs, _ := f.Segments(data)
	if len(segs) != 2 {
		t.Fatalf("segments = %+v, want two", segs)
	}
	// Each candidate extends by the longest pattern (10), clamped to n.
	if segs[0] != (Segment{Start: 2, End: 12}) {
		t.Fatalf("segment 0 = %+v", segs[0])
	}
	if segs[1] != (Segment{Start: 15, End: len(data)}) {
		t.Fatalf("segment 1 = %+v", segs[1])
	}
	// Close candidates coalesce into one segment.
	data = []byte("xxabcdabcdxx")
	segs, _ = f.Segments(data)
	if len(segs) != 1 || segs[0].Start != 2 || segs[0].End != len(data) {
		t.Fatalf("overlapping candidates did not merge: %+v", segs)
	}
	// No candidates, no segments, everything skipped or examined.
	segs, _ = f.Segments([]byte("zzzzzzzzzzzzzzzz"))
	if len(segs) != 0 {
		t.Fatalf("clean text produced segments: %+v", segs)
	}
	// Input shorter than the window can hold no match.
	segs, skipped := f.Segments([]byte("abc"))
	if len(segs) != 0 || skipped != 0 {
		t.Fatalf("short input: segs=%+v skipped=%d", segs, skipped)
	}
}

func TestCaseFoldReduction(t *testing.T) {
	red, err := alphabet.FromPatterns([][]byte{[]byte("VIRUS")}, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build([][]byte{[]byte("VIRUS")}, red)
	if err != nil {
		t.Fatal(err)
	}
	got := candidateSet(f, []byte("a virus, a VIRUS, a ViRuS"))
	for _, q := range []int{2, 11, 20} {
		if !got[q] {
			t.Fatalf("folded occurrence at %d missed: %v", q, got)
		}
	}
}

// TestShiftNeverSkipsMatch is the shift-function property test: for
// random dictionaries over small alphabets (adversarially repetitive),
// every true occurrence start — computed naively, and cross-checked
// against internal/baseline's matchers — must be a candidate, and the
// segments must wholly contain every occurrence. Both engines are
// exercised: bit-parallel via short minimums, factor-table via a
// 65+-byte minimum.
func TestShiftNeverSkipsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabets := []string{"ab", "abc", "abcdefgh"}
	for trial := 0; trial < 300; trial++ {
		sigma := alphabets[rng.Intn(len(alphabets))]
		long := trial%10 == 9 // every tenth trial drives the factor engine
		npat := 1 + rng.Intn(4)
		patterns := make([][]byte, npat)
		minAllowed := 2
		if long {
			minAllowed = MaxBitWindow + 1
		}
		for i := range patterns {
			plen := minAllowed + rng.Intn(8)
			p := make([]byte, plen)
			for j := range p {
				p[j] = sigma[rng.Intn(len(sigma))]
			}
			patterns[i] = p
		}
		text := make([]byte, 40+rng.Intn(400))
		for j := range text {
			text[j] = sigma[rng.Intn(len(sigma))]
		}
		// Plant a few occurrences so matches exist even for long patterns.
		for k := 0; k < 3 && len(text) > len(patterns[0]); k++ {
			p := patterns[rng.Intn(npat)]
			if pos := rng.Intn(len(text)); pos+len(p) <= len(text) {
				copy(text[pos:], p)
			}
		}
		f, err := Build(patterns, nil)
		if err != nil {
			t.Fatal(err)
		}
		if long != (f.Kind() == "factor") {
			t.Fatalf("trial %d: kind %q for window %d", trial, f.Kind(), f.Window)
		}
		cands := candidateSet(f, text)
		segs, _ := f.Segments(text)
		red := alphabet.Identity()
		for _, p := range patterns {
			starts := naiveStarts(text, p, red)
			// Cross-check the naive position scan against the baseline
			// package's counting matchers.
			if want := baseline.NaiveCount(text, p); want != len(starts) {
				t.Fatalf("trial %d: naive disagreement %d vs %d", trial, want, len(starts))
			}
			kmp, err := baseline.NewKMP(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := kmp.Count(text); want != len(starts) {
				t.Fatalf("trial %d: KMP disagreement %d vs %d", trial, want, len(starts))
			}
			for _, q := range starts {
				if !cands[q] {
					t.Fatalf("trial %d: shift skipped occurrence of %q at %d (patterns %q)",
						trial, p, q, patterns)
				}
				contained := false
				for _, sg := range segs {
					if q >= sg.Start && q+len(p) <= sg.End {
						contained = true
						break
					}
				}
				if !contained {
					t.Fatalf("trial %d: occurrence [%d,%d) of %q not contained in segments %+v",
						trial, q, q+len(p), p, segs)
				}
			}
		}
		// Segments are disjoint, ordered, and within bounds.
		for i, sg := range segs {
			if sg.Start < 0 || sg.End > len(text) || sg.Start >= sg.End {
				t.Fatalf("trial %d: degenerate segment %+v", trial, sg)
			}
			if i > 0 && sg.Start <= segs[i-1].End {
				t.Fatalf("trial %d: segments not disjoint: %+v", trial, segs)
			}
		}
	}
}

// TestSkippedAccounting: skipped plus examined window positions must
// tile the scannable range, and skipped must be 0 when every position
// is a candidate.
func TestSkippedAccounting(t *testing.T) {
	f := mustBuild(t, []string{"aa"}, nil)
	data := bytes.Repeat([]byte("a"), 64)
	var cands int
	skipped := f.Candidates(data, func(int) { cands++ })
	if want := len(data) - f.Window + 1; cands != want {
		t.Fatalf("all-a text: %d candidates, want %d", cands, want)
	}
	if skipped != 0 {
		t.Fatalf("all-candidate text skipped %d", skipped)
	}
}

func TestDensity(t *testing.T) {
	sparse := mustBuild(t, []string{"ABCDEFGH"}, nil)
	if d := sparse.Density(); d <= 0 || d > 0.5 {
		t.Fatalf("single-pattern density = %v", d)
	}
	// Saturating dictionary over a two-letter alphabet: every
	// (class, position) slot that the patterns can fill is filled.
	dense := mustBuild(t, []string{"aabb", "abab", "bbaa", "baba", "abba", "baab"}, nil)
	if sparse.Density() >= dense.Density() {
		t.Fatalf("density ordering wrong: sparse %v dense %v", sparse.Density(), dense.Density())
	}
}
