// Package interleave implements the PPE-side stream preparation of
// Section 4: sixteen independent input streams are woven byte-wise
// into quadwords ("each quadword of the input contains at position
// i-th a byte from the i-th stream"), so the SPE kernel advances all
// sixteen DFAs with one 128-bit load per step.
//
// It also implements the converse splitting of a single stream into
// sixteen chunks with overlapping boundaries, which is how one fast
// link is fanned onto the sixteen in-tile DFAs without losing matches
// that straddle chunk borders (Section 5's "minor overlapping"
// applied at stream granularity).
package interleave

import (
	"fmt"
)

// Streams is the fixed interleave width of a DFA tile.
const Streams = 16

// Interleave weaves 16 equal-length streams into a single block:
// output byte q*16+i is stream i's byte q. All streams must have the
// same length.
func Interleave(streams [][]byte) ([]byte, error) {
	if len(streams) != Streams {
		return nil, fmt.Errorf("interleave: need %d streams, got %d", Streams, len(streams))
	}
	n := len(streams[0])
	for i, s := range streams {
		if len(s) != n {
			return nil, fmt.Errorf("interleave: stream %d has %d bytes, want %d", i, len(s), n)
		}
	}
	out := make([]byte, n*Streams)
	for q := 0; q < n; q++ {
		base := q * Streams
		for i := 0; i < Streams; i++ {
			out[base+i] = streams[i][q]
		}
	}
	return out, nil
}

// Deinterleave splits a block back into 16 streams.
func Deinterleave(block []byte) ([][]byte, error) {
	if len(block)%Streams != 0 {
		return nil, fmt.Errorf("interleave: block length %d not a multiple of %d", len(block), Streams)
	}
	n := len(block) / Streams
	out := make([][]byte, Streams)
	for i := range out {
		out[i] = make([]byte, n)
	}
	for q := 0; q < n; q++ {
		base := q * Streams
		for i := 0; i < Streams; i++ {
			out[i][q] = block[base+i]
		}
	}
	return out, nil
}

// Chunk describes one split piece of a single stream: the half-open
// byte range [Start, End) of the original data, of which the first
// Overlap bytes repeat the tail of the previous chunk.
type Chunk struct {
	Start   int
	End     int
	Overlap int
}

// Len returns the chunk's byte count.
func (c Chunk) Len() int { return c.End - c.Start }

// SplitWithOverlap partitions [0, n) into k chunks whose boundaries
// overlap by `overlap` bytes (the longest pattern length minus one),
// so any match crossing a boundary appears complete in the following
// chunk. Matches that end inside a chunk's overlap prefix are
// duplicates of the previous chunk's matches and must be discarded by
// the caller (DedupeEnd reports the threshold).
func SplitWithOverlap(n, k, overlap int) ([]Chunk, error) {
	if k <= 0 {
		return nil, fmt.Errorf("interleave: split into %d chunks", k)
	}
	if overlap < 0 {
		return nil, fmt.Errorf("interleave: negative overlap")
	}
	if n < 0 {
		return nil, fmt.Errorf("interleave: negative length")
	}
	chunks := make([]Chunk, 0, k)
	per := (n + k - 1) / k
	for i := 0; i < k; i++ {
		start := i * per
		end := start + per
		if end > n {
			end = n
		}
		if start >= end {
			chunks = append(chunks, Chunk{Start: n, End: n})
			continue
		}
		ov := 0
		if i > 0 {
			ov = overlap
			if ov > start {
				ov = start
			}
		}
		chunks = append(chunks, Chunk{Start: start - ov, End: end, Overlap: ov})
	}
	return chunks, nil
}

// DedupeEnd returns the smallest in-chunk end offset (exclusive
// threshold) at which a match is NOT a duplicate of the previous
// chunk: matches ending at offset <= Overlap lie entirely within the
// repeated region.
func (c Chunk) DedupeEnd() int { return c.Overlap }

// GlobalEnd converts an in-chunk match end offset to the original
// stream coordinate.
func (c Chunk) GlobalEnd(localEnd int) int { return c.Start + localEnd }

// PadToMultiple extends data with the pad symbol until its length is a
// multiple of m, returning the padded slice and the number of added
// bytes. Tiles require block granularity (16 x unroll); the caller is
// responsible for choosing a pad symbol outside the dictionary's
// alphabet classes (class 0 when built with alphabet.FromPatterns).
func PadToMultiple(data []byte, m int, pad byte) ([]byte, int) {
	if m <= 1 || len(data)%m == 0 {
		return data, 0
	}
	add := m - len(data)%m
	out := make([]byte, len(data)+add)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = pad
	}
	return out, add
}
