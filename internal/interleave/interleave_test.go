package interleave

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInterleaveRoundTrip(t *testing.T) {
	streams := make([][]byte, Streams)
	for i := range streams {
		streams[i] = make([]byte, 32)
		for j := range streams[i] {
			streams[i][j] = byte(i*32 + j)
		}
	}
	block, err := Interleave(streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(block) != 16*32 {
		t.Fatalf("block length %d", len(block))
	}
	// Quadword q holds byte q of each stream.
	if block[0] != 0 || block[1] != 32 || block[17] != 33 {
		t.Fatalf("layout wrong: % x", block[:32])
	}
	back, err := Deinterleave(block)
	if err != nil {
		t.Fatal(err)
	}
	for i := range streams {
		if !bytes.Equal(back[i], streams[i]) {
			t.Fatalf("stream %d mismatch", i)
		}
	}
}

func TestInterleaveErrors(t *testing.T) {
	if _, err := Interleave(make([][]byte, 8)); err == nil {
		t.Fatal("wrong stream count accepted")
	}
	ragged := make([][]byte, Streams)
	for i := range ragged {
		ragged[i] = make([]byte, i)
	}
	if _, err := Interleave(ragged); err == nil {
		t.Fatal("ragged streams accepted")
	}
	if _, err := Deinterleave(make([]byte, 17)); err == nil {
		t.Fatal("ragged block accepted")
	}
}

func TestInterleaveProperty(t *testing.T) {
	f := func(seed int64, lenByte uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(lenByte)
		streams := make([][]byte, Streams)
		for i := range streams {
			streams[i] = make([]byte, n)
			rng.Read(streams[i])
		}
		block, err := Interleave(streams)
		if err != nil {
			return false
		}
		back, err := Deinterleave(block)
		if err != nil {
			return false
		}
		for i := range streams {
			if !bytes.Equal(back[i], streams[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitWithOverlapCoverage(t *testing.T) {
	chunks, err := SplitWithOverlap(100, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	// First chunk starts at 0 with no overlap.
	if chunks[0].Start != 0 || chunks[0].Overlap != 0 {
		t.Fatalf("chunk 0 = %+v", chunks[0])
	}
	// Every successor begins `overlap` before the previous non-overlap end.
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Start != chunks[i-1].End-chunks[i].Overlap {
			t.Fatalf("chunk %d = %+v after %+v", i, chunks[i], chunks[i-1])
		}
		if chunks[i].Overlap != 5 {
			t.Fatalf("chunk %d overlap = %d", i, chunks[i].Overlap)
		}
	}
	if chunks[len(chunks)-1].End != 100 {
		t.Fatal("coverage does not reach the end")
	}
}

func TestSplitDegenerate(t *testing.T) {
	// More chunks than bytes: trailing chunks are empty.
	chunks, err := SplitWithOverlap(3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, c := range chunks {
		if c.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("all chunks empty")
	}
	if _, err := SplitWithOverlap(10, 0, 1); err == nil {
		t.Fatal("zero chunks accepted")
	}
	if _, err := SplitWithOverlap(10, 2, -1); err == nil {
		t.Fatal("negative overlap accepted")
	}
	// Overlap larger than the chunk start clamps.
	chunks, err = SplitWithOverlap(10, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if chunks[1].Start != 0 {
		t.Fatalf("clamped overlap: %+v", chunks[1])
	}
}

// Property: chunk coverage is exact and overlaps repeat real data: the
// union of [Start+Overlap, End) intervals partitions [0, n).
func TestSplitPartitionProperty(t *testing.T) {
	f := func(rawN uint16, rawK, rawOv uint8) bool {
		n := int(rawN % 2000)
		k := int(rawK%10) + 1
		ov := int(rawOv % 32)
		chunks, err := SplitWithOverlap(n, k, ov)
		if err != nil {
			return false
		}
		covered := 0
		for _, c := range chunks {
			fresh := c.Len() - c.Overlap
			if fresh < 0 {
				return false
			}
			if c.Start+c.Overlap != covered && c.Len() > 0 {
				return false
			}
			if c.Len() > 0 {
				covered += fresh
			}
		}
		return covered == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// splitInvariants checks every structural property a split must hold,
// for any (n, k, overlap): chunk count, bounds, monotonicity, overlap
// clamping, and exact partition of [0, n) by the fresh regions.
func splitInvariants(t *testing.T, n, k, ov int) {
	t.Helper()
	chunks, err := SplitWithOverlap(n, k, ov)
	if err != nil {
		t.Fatalf("split(%d,%d,%d): %v", n, k, ov, err)
	}
	if len(chunks) != k {
		t.Fatalf("split(%d,%d,%d): %d chunks", n, k, ov, len(chunks))
	}
	covered := 0
	for i, c := range chunks {
		if c.Start < 0 || c.End > n || c.Start > c.End {
			t.Fatalf("split(%d,%d,%d) chunk %d out of bounds: %+v", n, k, ov, i, c)
		}
		if c.Overlap < 0 || c.Overlap > c.Len() {
			t.Fatalf("split(%d,%d,%d) chunk %d overlap exceeds length: %+v", n, k, ov, i, c)
		}
		if i == 0 && c.Overlap != 0 {
			t.Fatalf("split(%d,%d,%d): first chunk has overlap %d", n, k, ov, c.Overlap)
		}
		if c.Len() == 0 {
			continue
		}
		if c.Start+c.Overlap != covered {
			t.Fatalf("split(%d,%d,%d) chunk %d: fresh region starts at %d, want %d",
				n, k, ov, i, c.Start+c.Overlap, covered)
		}
		if i > 0 && c.Overlap != min(ov, covered) {
			t.Fatalf("split(%d,%d,%d) chunk %d: overlap %d, want min(%d,%d)",
				n, k, ov, i, c.Overlap, ov, covered)
		}
		covered += c.Len() - c.Overlap
	}
	if covered != n {
		t.Fatalf("split(%d,%d,%d): fresh regions cover %d of %d bytes", n, k, ov, covered, n)
	}
}

// TestSplitEdgeCases pins the regimes the happy-path tests missed:
// fewer bytes than chunks, overlap at least a whole chunk, a single
// chunk, and empty input.
func TestSplitEdgeCases(t *testing.T) {
	cases := []struct{ n, k, ov int }{
		{0, 1, 0}, {0, 5, 10}, // empty input
		{3, 8, 0}, {3, 8, 2}, {1, 2, 1}, // n < k
		{10, 2, 5}, {10, 2, 50}, // overlap >= chunk size
		{100, 1, 7}, {1, 1, 0}, // k = 1: no overlap anywhere
		{7, 7, 3}, {8, 7, 100}, // one byte per chunk, huge overlap
	}
	for _, c := range cases {
		splitInvariants(t, c.n, c.k, c.ov)
	}
	// k = 1 must never introduce an overlap regardless of ov.
	chunks, err := SplitWithOverlap(100, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if chunks[0] != (Chunk{Start: 0, End: 100, Overlap: 0}) {
		t.Fatalf("k=1 chunk = %+v", chunks[0])
	}
}

// TestSplitFullProperty sweeps the invariants over the whole parameter
// space the engines use, including overlap far beyond the chunk size
// (the small-chunk parallel regime) and n < k (interleave lanes on
// tiny inputs).
func TestSplitFullProperty(t *testing.T) {
	f := func(rawN uint16, rawK, rawOv uint8) bool {
		n := int(rawN % 512)
		k := int(rawK%16) + 1
		ov := int(rawOv) // up to 255: routinely >= chunk size
		chunks, err := SplitWithOverlap(n, k, ov)
		if err != nil {
			return false
		}
		covered := 0
		for i, c := range chunks {
			if c.Start < 0 || c.End > n || c.Start > c.End || c.Overlap < 0 || c.Overlap > c.Len() {
				return false
			}
			if i == 0 && c.Overlap != 0 {
				return false
			}
			if c.Len() == 0 {
				continue
			}
			if c.Start+c.Overlap != covered {
				return false
			}
			covered += c.Len() - c.Overlap
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalEnd(t *testing.T) {
	c := Chunk{Start: 90, End: 120, Overlap: 10}
	if c.GlobalEnd(15) != 105 {
		t.Fatalf("global end = %d", c.GlobalEnd(15))
	}
	if c.DedupeEnd() != 10 {
		t.Fatalf("dedupe end = %d", c.DedupeEnd())
	}
}

func TestPadToMultiple(t *testing.T) {
	data := []byte{1, 2, 3}
	padded, added := PadToMultiple(data, 16, 0)
	if len(padded) != 16 || added != 13 {
		t.Fatalf("padded %d added %d", len(padded), added)
	}
	if padded[2] != 3 || padded[3] != 0 {
		t.Fatal("padding content wrong")
	}
	same, added := PadToMultiple(padded, 16, 0)
	if added != 0 || len(same) != 16 {
		t.Fatal("already-aligned data re-padded")
	}
}
