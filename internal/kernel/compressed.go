// Compressed-row tables: the engine-ladder rung between the dense
// kernel and the sharded tier, for dictionaries whose dense tables
// blow the byte budget but whose *structure* is still small.
//
// A dense table spends width × 4 bytes per state regardless of how
// few transitions in a row are "interesting". On Aho-Corasick shaped
// automata almost every row is its fail state's row with a handful of
// overrides (the state's own goto edges), so the information content
// per state is tiny. The compressed representation stores exactly
// that:
//
//   - a per-state class bitmap (one bit per reduced symbol) marking
//     which columns carry an explicit transition;
//   - a packed array of the explicit transition entries, indexed by
//     popcount rank over the bitmap — no per-column storage for the
//     (vast) default majority;
//   - a per-state default transition: a D²FA-style fallback pointer to
//     another state whose row supplies every column the bitmap leaves
//     implicit. Lookups chase the default chain until a bitmap bit is
//     set; chains strictly descend toward the start state, whose row
//     is fully explicit, so every lookup terminates.
//
// The result fits 10-100x larger state machines in L2 at the cost of
// a popcount and an occasional extra hop per byte — the same
// capacity-vs-ops trade the paper makes with its alphabet reduction
// (spend a lookup to shrink the table) applied one level up.
//
// The chain walk's data-dependent branch would dominate the scan if
// every byte paid it, so compilation renumbers states by approximate
// stationary mass (hot first) and derives small dense rows for the
// top few — under real traffic the automaton spends ~99% of its time
// in those states, so the common case is the dense kernel's
// single-load step and the predictor learns the "is it hot?" branch.
// The hot rows are derived state, never serialized: images stay pure
// compressed rows and loaders rebuild the accelerator.
//
// Entries are encoded as destState<<1 | FlagOut, and the carried
// stream state (StartRow/ScanCarry) uses the same encoding, so the
// CTable satisfies the CarryScanner contract alongside the dense
// Table. Compilation derives the default pointers purely from the
// dense DFA rows (a BFS recovers the Aho-Corasick failure structure
// when it exists, and degrades to start-state defaults otherwise), so
// compiled and loaded tables are byte-identical — the same determinism
// invariant the rest of the compile pipeline keeps.
package kernel

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/fanout"
	"cellmatch/internal/interleave"
)

// CarryScanner is the incremental-scan contract shared by the dense
// table and the compressed-row table: scan a piece from an opaque
// carried row value and return the successor value. Carried values are
// representation-specific encodings (dense: state << log2(width);
// compressed: state << 1) — callers treat them as opaque and only
// thread them between pieces of one logical stream.
type CarryScanner interface {
	StartRow() uint32
	ScanCarry(piece []byte, cur uint32, emit func(pid int32, end int)) uint32
}

// Compile-time checks: both table representations satisfy the
// streaming contract.
var (
	_ CarryScanner = (*Table)(nil)
	_ CarryScanner = (*CTable)(nil)
)

// CTable is one series slot's compressed-row automaton.
type CTable struct {
	// Classes is the meaningful symbol count (the reduced alphabet).
	Classes int
	// States is the automaton size.
	States int

	// ByteClass folds the alphabet reduction into the table, exactly
	// like the dense Table: raw byte -> column index.
	ByteClass [256]byte

	// Bitmaps holds States × wpc words; bit c of state s's row marks
	// class c as an explicit transition.
	Bitmaps []uint64
	// Defaults holds the per-state default pointer: the state whose row
	// resolves every class the bitmap leaves implicit. Defaults[s] == s
	// marks a fully explicit row (the chain terminator).
	Defaults []uint32
	// Offsets[s] indexes state s's first explicit entry; Offsets has
	// States+1 entries so a row's count is Offsets[s+1]-Offsets[s].
	Offsets []uint32
	// Explicit holds the packed transition entries in class order,
	// encoded destState<<1 | FlagOut.
	Explicit []uint32

	// Outs lists the pattern ids reported when entering each state,
	// with global dictionary indices baked in (same as Table.Outs).
	Outs [][]int32

	wpc   int    // bitmap words per state: (Classes+63)/64
	start uint32 // start state id

	// hot is the derived hot-row accelerator: resolved dense rows for
	// states 0..hotLimit>>5-1, padded to a fixed stride of 32 entries so
	// indexing is a shift, each entry encoded dest<<5 | FlagOut. The
	// compile path renumbers states so the highest-stationary-mass
	// states come first, which makes "s < m" a branch the predictor
	// nearly always gets right: the chain walk only runs for the cold
	// tail. Derived (never serialized) — loaded images rebuild it.
	hot      []uint32
	hotLimit uint32 // hot-state count << 5; 0 disables the hot path
}

// hotRowCap bounds the hot-row accelerator: 128 states × 32 entries ×
// 4 bytes = 16 KiB per slot, a fraction of the dense row budget the
// rung exists to avoid, while covering the overwhelming majority of
// scan steps (the stationary distribution of AC-shaped automata is
// concentrated in the shallow states the renumbering puts first).
const hotRowCap = 128

// ctableBytes is the resident footprint of a compressed table with the
// given geometry — the arithmetic the budget pre-check and SizeBytes
// share. The derived hot rows are part of the resident set, so they
// are priced here too.
func ctableBytes(states, classes, explicit int) int {
	wpc := (classes + 63) / 64
	return states*wpc*8 + states*4 + (states+1)*4 + explicit*4 + hotBytes(states, classes)
}

// hotBytes is the hot-row accelerator's footprint for the given
// geometry: zero when the geometry disqualifies the hot path (wide
// alphabets, or state counts that would overflow the <<5 encoding).
func hotBytes(states, classes int) int {
	if classes > 32 || states > 1<<25 {
		return 0
	}
	m := hotRowCap
	if m > states {
		m = states
	}
	return m * 32 * 4
}

// SizeBytes is the compressed table's memory footprint (bitmaps,
// defaults, offsets, explicit entries).
func (t *CTable) SizeBytes() int {
	return ctableBytes(t.States, t.Classes, len(t.Explicit))
}

// StartRow returns the start state's encoded carry value.
func (t *CTable) StartRow() uint32 { return t.start << 1 }

// cplan is the allocation-free first pass over one slot: the default
// pointer per state and the explicit-entry counts, enough to price the
// table against the byte budget before building it.
type cplan struct {
	defaults []uint32
	counts   []uint32
	explicit int
}

// planCTable derives the default-pointer chain and explicit counts
// from the dense DFA rows alone. The BFS recovers Aho-Corasick
// failure structure when the automaton has it: a state first
// discovered via (s, c) gets default δ(default(s), c), which for an AC
// automaton is exactly fail(t), making the explicit set just the
// state's own goto edges. For automata without that shape (regex
// subset construction) the candidate is kept only when it was
// discovered earlier — otherwise the default degrades to the start
// state — so chains strictly descend in discovery order and always
// terminate at a fully explicit row. Correctness never depends on the
// heuristic: explicit bits are defined as "differs from the default's
// row", so any default choice yields the same resolved transitions,
// only a different footprint.
func planCTable(d *dfa.DFA) *cplan {
	n := d.NumStates()
	syms := d.Syms
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = -1
	}
	defaults := make([]uint32, n)
	queue := make([]int32, 0, n)
	idx[d.Start] = 0
	defaults[d.Start] = uint32(d.Start)
	queue = append(queue, int32(d.Start))
	order := int32(1)
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		row := d.Next[int(s)*syms : int(s)*syms+syms]
		drow := d.Next[int(defaults[s])*syms:]
		for c := 0; c < syms; c++ {
			t := row[c]
			if idx[t] >= 0 {
				continue
			}
			idx[t] = order
			order++
			cand := drow[c]
			if idx[cand] < 0 || cand == t {
				cand = int32(d.Start)
			}
			defaults[t] = uint32(cand)
			queue = append(queue, t)
		}
	}
	// Unreachable states (possible in loaded artifacts) get fully
	// explicit rows: never scanned, but the invariants stay uniform.
	for s := 0; s < n; s++ {
		if idx[s] < 0 {
			defaults[s] = uint32(s)
		}
	}
	p := &cplan{defaults: defaults, counts: make([]uint32, n)}
	for s := 0; s < n; s++ {
		def := int(defaults[s])
		if def == s {
			p.counts[s] = uint32(syms)
			p.explicit += syms
			continue
		}
		row := d.Next[s*syms : s*syms+syms]
		drow := d.Next[def*syms : def*syms+syms]
		cnt := 0
		for c := 0; c < syms; c++ {
			if row[c] != drow[c] {
				cnt++
			}
		}
		p.counts[s] = uint32(cnt)
		p.explicit += cnt
	}
	return p
}

// hotPerm orders states by approximate stationary mass under uniform
// random input — a few damped power-iteration rounds over the dense
// rows — and returns the old->new renumbering that puts the hottest
// states first. The scan loop tests hotness with a single register
// compare (s < m) precisely because of this renumbering. Returns nil
// (identity) when the geometry disqualifies the hot path. Pure
// float64 arithmetic with a deterministic tie-break, so compiles stay
// byte-identical across runs and worker counts.
func hotPerm(d *dfa.DFA) []uint32 {
	n := d.NumStates()
	if d.Syms > 32 || n > 1<<25 {
		return nil
	}
	syms := d.Syms
	p := make([]float64, n)
	q := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	const damp = 0.85
	step := damp / float64(syms)
	mix := (1 - damp) / float64(n)
	for it := 0; it < 8; it++ {
		for i := range q {
			q[i] = mix
		}
		for s := 0; s < n; s++ {
			w := p[s] * step
			row := d.Next[s*syms : s*syms+syms]
			for _, t := range row {
				q[t] += w
			}
		}
		p, q = q, p
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if p[order[a]] != p[order[b]] {
			return p[order[a]] > p[order[b]]
		}
		return order[a] < order[b]
	})
	perm := make([]uint32, n)
	for newID, old := range order {
		perm[old] = uint32(newID)
	}
	return perm
}

// buildHot derives the hot-row accelerator from the finished table:
// fully resolved rows for the first m states, stride 32, entries
// encoded dest<<5 | FlagOut. Correctness never depends on which
// states are hot — any prefix works — so loaded images (renumbered at
// compile time or not) rebuild it unconditionally when the geometry
// allows.
func (t *CTable) buildHot() {
	if t.wpc != 1 || t.Classes > 32 || t.States > 1<<25 {
		return
	}
	m := hotRowCap
	if m > t.States {
		m = t.States
	}
	hot := make([]uint32, m*32)
	for s := 0; s < m; s++ {
		for c := 0; c < t.Classes; c++ {
			e := t.next(uint32(s), uint32(c))
			hot[s<<5|c] = e>>1<<5 | e&FlagOut
		}
	}
	t.hot = hot
	t.hotLimit = uint32(m) << 5
}

// buildCTable emits the compressed table for one slot from its plan.
// byteClass is the reduction map; ids maps slot-local pattern ids to
// global ones; workers splits the row emission into contiguous state
// ranges (disjoint writes — identical output at any worker count).
// States are renumbered hot-first (see hotPerm) before emission.
func buildCTable(d *dfa.DFA, byteClass [256]byte, ids []int, plan *cplan, workers int) (*CTable, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Out == nil {
		return nil, fmt.Errorf("kernel: DFA lacks output sets")
	}
	n := d.NumStates()
	if n >= 1<<30 {
		return nil, fmt.Errorf("kernel: %d states overflow compressed entry encoding", n)
	}
	for b, c := range byteClass {
		if int(c) >= d.Syms {
			return nil, fmt.Errorf("kernel: byte %#x maps to class %d, alphabet %d", b, c, d.Syms)
		}
	}
	syms := d.Syms
	wpc := (syms + 63) / 64
	perm := hotPerm(d)
	ren := func(s uint32) uint32 {
		if perm == nil {
			return s
		}
		return perm[s]
	}
	t := &CTable{
		Classes:   syms,
		States:    n,
		ByteClass: byteClass,
		Bitmaps:   make([]uint64, n*wpc),
		Defaults:  make([]uint32, n),
		Offsets:   make([]uint32, n+1),
		Outs:      make([][]int32, n),
		wpc:       wpc,
		start:     ren(uint32(d.Start)),
	}
	counts := make([]uint32, n)
	for s := 0; s < n; s++ {
		counts[ren(uint32(s))] = plan.counts[s]
	}
	for s := 0; s < n; s++ {
		t.Offsets[s+1] = t.Offsets[s] + counts[s]
	}
	for s := 0; s < n; s++ {
		if len(d.Out[s]) > 0 {
			out := make([]int32, len(d.Out[s]))
			for i, pid := range d.Out[s] {
				if pid < 0 || int(pid) >= len(ids) {
					return nil, fmt.Errorf("kernel: state %d reports pattern %d of %d", s, pid, len(ids))
				}
				out[i] = int32(ids[pid])
			}
			t.Outs[ren(uint32(s))] = out
		}
	}
	t.Explicit = make([]uint32, plan.explicit)
	entryFor := func(next int32) uint32 {
		e := ren(uint32(next)) << 1
		if len(d.Out[next]) > 0 {
			e |= FlagOut
		}
		return e
	}
	fanout.ForRanges(n, workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			ns := ren(uint32(s))
			t.Defaults[ns] = ren(plan.defaults[s])
			row := d.Next[s*syms : s*syms+syms]
			base := int(ns) * wpc
			off := t.Offsets[ns]
			if int(plan.defaults[s]) == s {
				for c := 0; c < syms; c++ {
					t.Bitmaps[base+c>>6] |= 1 << (c & 63)
					t.Explicit[off] = entryFor(row[c])
					off++
				}
				continue
			}
			drow := d.Next[int(plan.defaults[s])*syms : int(plan.defaults[s])*syms+syms]
			for c := 0; c < syms; c++ {
				if row[c] != drow[c] {
					t.Bitmaps[base+c>>6] |= 1 << (c & 63)
					t.Explicit[off] = entryFor(row[c])
					off++
				}
			}
		}
	})
	t.buildHot()
	return t, nil
}

// next resolves one transition: chase the default chain from state s
// until a bitmap bit for class c is set, then rank into the explicit
// array. Chains terminate because they strictly descend to a fully
// explicit row (Validate enforces this on loaded images).
func (t *CTable) next(s, c uint32) uint32 {
	if t.wpc == 1 {
		bm, defs, offs, exp := t.Bitmaps, t.Defaults, t.Offsets, t.Explicit
		for {
			w := bm[s]
			if w>>c&1 != 0 {
				return exp[offs[s]+uint32(bits.OnesCount64(w&(1<<c-1)))]
			}
			s = defs[s]
		}
	}
	return t.nextWide(s, c)
}

// nextWide is the >64-class form of next: the bitmap row spans wpc
// words, so the rank sums the preceding words' popcounts.
func (t *CTable) nextWide(s, c uint32) uint32 {
	wpc := uint32(t.wpc)
	word, bit := c>>6, c&63
	for {
		base := s * wpc
		w := t.Bitmaps[base+word]
		if w>>bit&1 != 0 {
			rank := bits.OnesCount64(w & (1<<bit - 1))
			for j := uint32(0); j < word; j++ {
				rank += bits.OnesCount64(t.Bitmaps[base+j])
			}
			return t.Explicit[t.Offsets[s]+uint32(rank)]
		}
		s = t.Defaults[s]
	}
}

// cold5 resolves one transition for the hot-encoded scan loops: v is
// the current dest<<5|flag value (a cold state), c the class. It runs
// the ordinary chain walk and re-encodes the result. Out of the hot
// loops so their bodies stay tight; only the cold minority of bytes
// lands here.
func (t *CTable) cold5(v, c uint32) uint32 {
	s := v >> 5
	bm, defs := t.Bitmaps, t.Defaults
	for bm[s]>>c&1 == 0 {
		s = defs[s]
	}
	w := bm[s]
	e := t.Explicit[t.Offsets[s]+uint32(bits.OnesCount64(w&(1<<c-1)))]
	return e>>1<<5 | e&FlagOut
}

// emit5 is emit for the hot-encoded loops (v = dest<<5|flag).
func (t *CTable) emit5(v uint32, localEnd, base, dedupe int, sink *[]dfa.Match) {
	if localEnd <= dedupe {
		return
	}
	for _, pid := range t.Outs[v>>5] {
		*sink = append(*sink, dfa.Match{Pattern: pid, End: base + localEnd})
	}
}

// emit appends the output set of the state entry e transitioned into,
// unless the match ends inside the chunk's dedupe window.
func (t *CTable) emit(e uint32, localEnd, base, dedupe int, sink *[]dfa.Match) {
	if localEnd <= dedupe {
		return
	}
	for _, pid := range t.Outs[e>>1] {
		*sink = append(*sink, dfa.Match{Pattern: pid, End: base + localEnd})
	}
}

// scanSerialHot is the single-stream loop over a table with hot rows:
// the common case is one dense load (v&^1 strips the flag; the low
// five bits of a hot-encoded value are otherwise the class slot), the
// cold tail falls back to the chain walk. Unrolled 4x like the dense
// kernel's serial loop.
func (t *CTable) scanSerialHot(piece []byte, base, dedupe int, sink *[]dfa.Match) {
	cls := &t.ByteClass
	hot, limit := t.hot, t.hotLimit
	v := t.start << 5
	n := len(piece)
	i := 0
	for ; i+4 <= n; i += 4 {
		if v < limit {
			v = hot[(v&^1)+uint32(cls[piece[i]])]
		} else {
			v = t.cold5(v, uint32(cls[piece[i]]))
		}
		if v&FlagOut != 0 {
			t.emit5(v, i+1, base, dedupe, sink)
		}
		if v < limit {
			v = hot[(v&^1)+uint32(cls[piece[i+1]])]
		} else {
			v = t.cold5(v, uint32(cls[piece[i+1]]))
		}
		if v&FlagOut != 0 {
			t.emit5(v, i+2, base, dedupe, sink)
		}
		if v < limit {
			v = hot[(v&^1)+uint32(cls[piece[i+2]])]
		} else {
			v = t.cold5(v, uint32(cls[piece[i+2]]))
		}
		if v&FlagOut != 0 {
			t.emit5(v, i+3, base, dedupe, sink)
		}
		if v < limit {
			v = hot[(v&^1)+uint32(cls[piece[i+3]])]
		} else {
			v = t.cold5(v, uint32(cls[piece[i+3]]))
		}
		if v&FlagOut != 0 {
			t.emit5(v, i+4, base, dedupe, sink)
		}
	}
	for ; i < n; i++ {
		if v < limit {
			v = hot[(v&^1)+uint32(cls[piece[i]])]
		} else {
			v = t.cold5(v, uint32(cls[piece[i]]))
		}
		if v&FlagOut != 0 {
			t.emit5(v, i+1, base, dedupe, sink)
		}
	}
}

// scanSerial runs the single-stream loop over raw bytes, appending
// matches with End = base + local offset and dropping those ending at
// local offsets <= dedupe. Tables with hot rows take the dense-load
// fast path; the wpc==1 fallback keeps the whole chain-walk inline:
// one bitmap word, one popcount, one load on a hit.
func (t *CTable) scanSerial(piece []byte, base, dedupe int, sink *[]dfa.Match) {
	if t.hot != nil {
		t.scanSerialHot(piece, base, dedupe, sink)
		return
	}
	cls := &t.ByteClass
	cur := t.start
	if t.wpc == 1 {
		bm, defs, offs, exp := t.Bitmaps, t.Defaults, t.Offsets, t.Explicit
		for i := 0; i < len(piece); i++ {
			c := uint32(cls[piece[i]])
			s := cur
			for bm[s]>>c&1 == 0 {
				s = defs[s]
			}
			w := bm[s]
			e := exp[offs[s]+uint32(bits.OnesCount64(w&(1<<c-1)))]
			if e&FlagOut != 0 {
				t.emit(e, i+1, base, dedupe, sink)
			}
			cur = e >> 1
		}
		return
	}
	for i := 0; i < len(piece); i++ {
		e := t.nextWide(cur, uint32(cls[piece[i]]))
		if e&FlagOut != 0 {
			t.emit(e, i+1, base, dedupe, sink)
		}
		cur = e >> 1
	}
}

// scanInterleaved advances every chunk's cursor once per lockstep
// iteration, the same latency-hiding schedule as the dense kernel's:
// K independent chain walks in flight per iteration. Each lane starts
// from the root and its overlap prefix is deduped, so the union of
// lane matches equals the sequential scan's.
func (t *CTable) scanInterleaved(data []byte, chunks []interleave.Chunk, sink *[]dfa.Match) {
	k := len(chunks)
	if k > MaxInterleave {
		panic("kernel: more chunks than interleave lanes")
	}
	var cur [MaxInterleave]uint32
	minLen := -1
	for l := 0; l < k; l++ {
		cur[l] = t.start
		if n := chunks[l].Len(); minLen < 0 || n < minLen {
			minLen = n
		}
	}
	cls := &t.ByteClass
	if t.hot != nil {
		hot, limit := t.hot, t.hotLimit
		for l := 0; l < k; l++ {
			cur[l] = t.start << 5
		}
		for p := 0; p < minLen; p++ {
			for l := 0; l < k; l++ {
				c := chunks[l]
				v := cur[l]
				if v < limit {
					v = hot[(v&^1)+uint32(cls[data[c.Start+p]])]
				} else {
					v = t.cold5(v, uint32(cls[data[c.Start+p]]))
				}
				if v&FlagOut != 0 {
					t.emit5(v, p+1, c.Start, c.Overlap, sink)
				}
				cur[l] = v
			}
		}
		for l := 0; l < k; l++ {
			c := chunks[l]
			v := cur[l]
			for p := minLen; p < c.Len(); p++ {
				if v < limit {
					v = hot[(v&^1)+uint32(cls[data[c.Start+p]])]
				} else {
					v = t.cold5(v, uint32(cls[data[c.Start+p]]))
				}
				if v&FlagOut != 0 {
					t.emit5(v, p+1, c.Start, c.Overlap, sink)
				}
			}
		}
		return
	}
	if t.wpc == 1 {
		bm, defs, offs, exp := t.Bitmaps, t.Defaults, t.Offsets, t.Explicit
		for p := 0; p < minLen; p++ {
			for l := 0; l < k; l++ {
				c := chunks[l]
				cc := uint32(cls[data[c.Start+p]])
				s := cur[l]
				for bm[s]>>cc&1 == 0 {
					s = defs[s]
				}
				w := bm[s]
				e := exp[offs[s]+uint32(bits.OnesCount64(w&(1<<cc-1)))]
				if e&FlagOut != 0 {
					t.emit(e, p+1, c.Start, c.Overlap, sink)
				}
				cur[l] = e >> 1
			}
		}
	} else {
		for p := 0; p < minLen; p++ {
			for l := 0; l < k; l++ {
				c := chunks[l]
				e := t.nextWide(cur[l], uint32(cls[data[c.Start+p]]))
				if e&FlagOut != 0 {
					t.emit(e, p+1, c.Start, c.Overlap, sink)
				}
				cur[l] = e >> 1
			}
		}
	}
	// Uneven tails (the last chunk is usually shorter).
	for l := 0; l < k; l++ {
		c := chunks[l]
		s := cur[l]
		for p := minLen; p < c.Len(); p++ {
			e := t.next(s, uint32(cls[data[c.Start+p]]))
			if e&FlagOut != 0 {
				t.emit(e, p+1, c.Start, c.Overlap, sink)
			}
			s = e >> 1
		}
	}
}

// countSerial counts hits in piece from the root, ignoring matches
// that end inside the dedupe-byte overlap prefix.
func (t *CTable) countSerial(piece []byte, dedupe int) int {
	cls := &t.ByteClass
	count := 0
	if t.hot != nil {
		hot, limit := t.hot, t.hotLimit
		v := t.start << 5
		for i := 0; i < len(piece); i++ {
			if v < limit {
				v = hot[(v&^1)+uint32(cls[piece[i]])]
			} else {
				v = t.cold5(v, uint32(cls[piece[i]]))
			}
			if v&FlagOut != 0 && i >= dedupe {
				count += len(t.Outs[v>>5])
			}
		}
		return count
	}
	cur := t.start
	for i := 0; i < len(piece); i++ {
		e := t.next(cur, uint32(cls[piece[i]]))
		if e&FlagOut != 0 && i >= dedupe {
			count += len(t.Outs[e>>1])
		}
		cur = e >> 1
	}
	return count
}

// ScanCarry scans piece from the encoded carry cur (stream
// continuation: no speculative restart, no dedupe), calling emit for
// every hit with a 1-based piece-local end offset, and returns the
// final carry — the CarryScanner contract shared with the dense Table.
func (t *CTable) ScanCarry(piece []byte, cur uint32, emit func(pid int32, end int)) uint32 {
	cls := &t.ByteClass
	s := cur >> 1
	if t.hot != nil {
		hot, limit := t.hot, t.hotLimit
		v := s << 5
		for i := 0; i < len(piece); i++ {
			if v < limit {
				v = hot[(v&^1)+uint32(cls[piece[i]])]
			} else {
				v = t.cold5(v, uint32(cls[piece[i]]))
			}
			if v&FlagOut != 0 {
				for _, pid := range t.Outs[v>>5] {
					emit(pid, i+1)
				}
			}
		}
		return v >> 5 << 1
	}
	if t.wpc == 1 {
		bm, defs, offs, exp := t.Bitmaps, t.Defaults, t.Offsets, t.Explicit
		for i := 0; i < len(piece); i++ {
			c := uint32(cls[piece[i]])
			r := s
			for bm[r]>>c&1 == 0 {
				r = defs[r]
			}
			w := bm[r]
			e := exp[offs[r]+uint32(bits.OnesCount64(w&(1<<c-1)))]
			if e&FlagOut != 0 {
				t.emitCarry(e, i+1, emit)
			}
			s = e >> 1
		}
		return s << 1
	}
	for i := 0; i < len(piece); i++ {
		e := t.nextWide(s, uint32(cls[piece[i]]))
		if e&FlagOut != 0 {
			t.emitCarry(e, i+1, emit)
		}
		s = e >> 1
	}
	return s << 1
}

// emitCarry reports the output set of the state entry e transitioned
// into (kept out of ScanCarry's hot loop).
func (t *CTable) emitCarry(e uint32, end int, emit func(pid int32, end int)) {
	for _, pid := range t.Outs[e>>1] {
		emit(pid, end)
	}
}

// Compressed is the compiled compressed-row matcher: one CTable per
// series slot plus the scan policy, mirroring Engine's surface.
type Compressed struct {
	// Tables holds one compressed table per series slot.
	Tables []*CTable
	// MaxPatternLen sizes the interleave overlap window.
	MaxPatternLen int

	opts Options
}

// CompileCompressed flattens a composed system into compressed-row
// tables. It returns ErrBudget (wrapped) when the aggregate compressed
// footprint exceeds Options.MaxTableBytes — the caller decides the
// effective budget (the core ladder's auto policy additionally caps it
// at L2Budget, since a compressed table that spills past L2 loses the
// residency advantage that justifies its extra ops per byte). The
// planning pass prices every slot before any table is allocated, so an
// over-budget dictionary costs two row sweeps, not a build.
func CompileCompressed(sys *compose.System, opts Options) (*Compressed, error) {
	o := opts.withDefaults()
	if len(sys.Slots) == 0 {
		return nil, fmt.Errorf("kernel: system has no slots")
	}
	plans := make([]*cplan, len(sys.Slots))
	fanout.ForEach(len(sys.Slots), o.Workers, func(i int) {
		plans[i] = planCTable(sys.Slots[i])
	})
	total := 0
	for i, d := range sys.Slots {
		total += ctableBytes(d.NumStates(), d.Syms, plans[i].explicit)
		if total > o.MaxTableBytes {
			return nil, fmt.Errorf("%w: compressed rows for %d slots need > %d bytes", ErrBudget, len(sys.Slots), o.MaxTableBytes)
		}
	}
	e := &Compressed{MaxPatternLen: sys.MaxPatternLen, opts: o}
	e.Tables = make([]*CTable, len(sys.Slots))
	inner := 1
	if w := fanout.Workers(o.Workers); len(sys.Slots) < w {
		inner = (w + len(sys.Slots) - 1) / len(sys.Slots)
	}
	err := fanout.ForEachErr(len(sys.Slots), o.Workers, func(i int) error {
		t, err := buildCTable(sys.Slots[i], sys.Red.Map, sys.SlotPatterns[i], plans[i], inner)
		if err != nil {
			return err
		}
		e.Tables[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// TableBytes is the aggregate compressed-table footprint.
func (e *Compressed) TableBytes() int {
	total := 0
	for _, t := range e.Tables {
		total += t.SizeBytes()
	}
	return total
}

// InterleaveFor reports the lane count FindAll would use on an input
// of n bytes (diagnostics and benchmarks).
func (e *Compressed) InterleaveFor(n int) int { return e.chooseK(n) }

func (e *Compressed) chooseK(n int) int {
	if k := e.opts.InterleaveK; k >= 1 {
		if k > MaxInterleave {
			return MaxInterleave
		}
		return k
	}
	if n < autoInterleaveMin {
		return 1
	}
	return autoInterleaveK
}

func (e *Compressed) overlap() int {
	if e.MaxPatternLen > 0 {
		return e.MaxPatternLen - 1
	}
	return 0
}

// laneChunks returns the interleave split for a k-lane scan, or nil
// when the single-stream loop should run instead.
func (e *Compressed) laneChunks(data []byte, k int) []interleave.Chunk {
	if k <= 1 || len(data) == 0 {
		return nil
	}
	if k > MaxInterleave {
		k = MaxInterleave
	}
	chunks, err := interleave.SplitWithOverlap(len(data), k, e.overlap())
	if err != nil { // unreachable for k >= 1, n >= 0
		return nil
	}
	return chunks
}

// FindAll scans raw data and returns every dictionary occurrence with
// global pattern ids, sorted by (End, Pattern) — byte-for-byte the
// output of compose.System.Scan and of the dense engine.
func (e *Compressed) FindAll(data []byte) []dfa.Match {
	return e.FindAllK(data, e.chooseK(len(data)))
}

// FindAllK is FindAll with an explicit lane count (1 = single-stream
// loop). Any k >= 1 yields identical matches.
func (e *Compressed) FindAllK(data []byte, k int) []dfa.Match {
	var out []dfa.Match
	chunks := e.laneChunks(data, k)
	for _, t := range e.Tables {
		if chunks == nil {
			t.scanSerial(data, 0, 0, &out)
		} else {
			t.scanInterleaved(data, chunks, &out)
		}
	}
	dfa.SortMatches(out)
	return out
}

// Count returns the total occurrence count without materializing the
// match list: same lane layout as FindAll, a counter instead of a
// sink, no allocation and no sort.
func (e *Compressed) Count(data []byte) int {
	total := 0
	chunks := e.laneChunks(data, e.chooseK(len(data)))
	for _, t := range e.Tables {
		if chunks == nil {
			total += t.countSerial(data, 0)
			continue
		}
		for _, c := range chunks {
			total += t.countSerial(data[c.Start:c.Start+c.Len()], c.Overlap)
		}
	}
	return total
}

// ScanChunk scans one raw piece from the root for the parallel engine:
// matches ending at local offsets <= dedupe are dropped (overlap
// duplicates), the rest are shifted by base. Output order is per-table
// scan order; the caller merges and sorts.
func (e *Compressed) ScanChunk(piece []byte, base, dedupe int) []dfa.Match {
	var out []dfa.Match
	for _, t := range e.Tables {
		t.scanSerial(piece, base, dedupe, &out)
	}
	return out
}

// Image serialization -------------------------------------------------
//
// Per-table layout (little-endian):
//
//	magic "CMCPR1\x00"
//	u32 classes, states, startState, explicitLen
//	byteClass [256]u8
//	bitmaps states*wpc x u64
//	defaults states x u32
//	offsets (states+1) x u32
//	explicit explicitLen x u32
//	outs: per state: u32 count, count x u32 pattern ids
//
// Container layout:
//
//	magic "CMCPS1\x00"
//	u32 maxPatternLen, tableCount
//	per table: u32 len, table image

var (
	cimgMagic = []byte("CMCPR1\x00")
	compMagic = []byte("CMCPS1\x00")
)

// Bytes serializes the compressed table to its image.
func (t *CTable) Bytes() []byte {
	size := len(cimgMagic) + 4*4 + 256 + len(t.Bitmaps)*8 +
		len(t.Defaults)*4 + len(t.Offsets)*4 + len(t.Explicit)*4
	for _, o := range t.Outs {
		size += 4 + len(o)*4
	}
	out := make([]byte, 0, size)
	out = append(out, cimgMagic...)
	le := binary.LittleEndian
	out = le.AppendUint32(out, uint32(t.Classes))
	out = le.AppendUint32(out, uint32(t.States))
	out = le.AppendUint32(out, t.start)
	out = le.AppendUint32(out, uint32(len(t.Explicit)))
	out = append(out, t.ByteClass[:]...)
	for _, w := range t.Bitmaps {
		out = le.AppendUint64(out, w)
	}
	for _, v := range t.Defaults {
		out = le.AppendUint32(out, v)
	}
	for _, v := range t.Offsets {
		out = le.AppendUint32(out, v)
	}
	for _, v := range t.Explicit {
		out = le.AppendUint32(out, v)
	}
	for _, o := range t.Outs {
		out = le.AppendUint32(out, uint32(len(o)))
		for _, pid := range o {
			out = le.AppendUint32(out, uint32(pid))
		}
	}
	return out
}

// CTableFromBytes reconstructs and validates a compressed-table image.
// A loaded table scans identically to the compiled one.
func CTableFromBytes(img []byte) (*CTable, error) {
	if len(img) < len(cimgMagic)+4*4+256 || string(img[:len(cimgMagic)]) != string(cimgMagic) {
		return nil, fmt.Errorf("kernel: not a compressed-table image")
	}
	le := binary.LittleEndian
	p := len(cimgMagic)
	get := func() uint32 {
		v := le.Uint32(img[p:])
		p += 4
		return v
	}
	classes, states, start, explen := int(get()), int(get()), get(), int(get())
	if classes < 1 || classes > 256 {
		return nil, fmt.Errorf("kernel: bad compressed geometry classes=%d", classes)
	}
	wpc := (classes + 63) / 64
	if states < 1 || uint64(states)*uint64(wpc) > 1<<28 {
		return nil, fmt.Errorf("kernel: implausible compressed state count %d", states)
	}
	if int(start) >= states {
		return nil, fmt.Errorf("kernel: start state %d out of range", start)
	}
	if explen < 0 || uint64(explen) > uint64(states)*uint64(classes) {
		return nil, fmt.Errorf("kernel: implausible explicit count %d", explen)
	}
	need := 256 + states*wpc*8 + states*4 + (states+1)*4 + explen*4
	if len(img) < p+need {
		return nil, fmt.Errorf("kernel: truncated compressed image")
	}
	t := &CTable{
		Classes:  classes,
		States:   states,
		Bitmaps:  make([]uint64, states*wpc),
		Defaults: make([]uint32, states),
		Offsets:  make([]uint32, states+1),
		Explicit: make([]uint32, explen),
		Outs:     make([][]int32, states),
		wpc:      wpc,
		start:    start,
	}
	copy(t.ByteClass[:], img[p:p+256])
	p += 256
	for i := range t.Bitmaps {
		t.Bitmaps[i] = le.Uint64(img[p:])
		p += 8
	}
	for i := range t.Defaults {
		t.Defaults[i] = get()
	}
	for i := range t.Offsets {
		t.Offsets[i] = get()
	}
	for i := range t.Explicit {
		t.Explicit[i] = get()
	}
	for s := 0; s < states; s++ {
		if len(img) < p+4 {
			return nil, fmt.Errorf("kernel: truncated compressed output sets")
		}
		n := int(get())
		if n > 1<<20 || len(img) < p+n*4 {
			return nil, fmt.Errorf("kernel: implausible output set %d", n)
		}
		if n > 0 {
			o := make([]int32, n)
			for i := range o {
				pid := get()
				if pid > 1<<31-1 {
					return nil, fmt.Errorf("kernel: state %d output id %d overflows int32", s, pid)
				}
				o[i] = int32(pid)
			}
			t.Outs[s] = o
		}
	}
	if p != len(img) {
		return nil, fmt.Errorf("kernel: %d trailing bytes", len(img)-p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.buildHot()
	return t, nil
}

// Validate checks the compressed table's structural invariants: the
// offsets are an exact prefix sum of the bitmap popcounts, every
// explicit entry targets a real state with a flag that agrees with the
// destination's output set, and every default chain terminates at a
// fully explicit row (so no scan can loop).
func (t *CTable) Validate() error {
	wpc := (t.Classes + 63) / 64
	if t.wpc != wpc {
		return fmt.Errorf("kernel: compressed wpc %d, want %d", t.wpc, wpc)
	}
	if len(t.Bitmaps) != t.States*wpc || len(t.Defaults) != t.States ||
		len(t.Offsets) != t.States+1 || len(t.Outs) != t.States {
		return fmt.Errorf("kernel: compressed arrays inconsistent with %d states", t.States)
	}
	if int(t.start) >= t.States {
		return fmt.Errorf("kernel: start state %d out of range", t.start)
	}
	for _, c := range t.ByteClass {
		if int(c) >= t.Classes {
			return fmt.Errorf("kernel: byte class %d >= %d", c, t.Classes)
		}
	}
	if t.Offsets[0] != 0 || int(t.Offsets[t.States]) != len(t.Explicit) {
		return fmt.Errorf("kernel: explicit offsets do not span %d entries", len(t.Explicit))
	}
	tailBits := t.Classes & 63 // bits allowed in the last word when partial
	for s := 0; s < t.States; s++ {
		if t.Offsets[s+1] < t.Offsets[s] {
			return fmt.Errorf("kernel: state %d offsets not monotone", s)
		}
		pop := 0
		for j := 0; j < wpc; j++ {
			w := t.Bitmaps[s*wpc+j]
			if j == wpc-1 && tailBits != 0 {
				if w>>uint(tailBits) != 0 {
					return fmt.Errorf("kernel: state %d bitmap has bits past class %d", s, t.Classes)
				}
			}
			pop += bits.OnesCount64(w)
		}
		if pop != int(t.Offsets[s+1]-t.Offsets[s]) {
			return fmt.Errorf("kernel: state %d popcount %d != explicit count %d", s, pop, t.Offsets[s+1]-t.Offsets[s])
		}
		if int(t.Defaults[s]) >= t.States {
			return fmt.Errorf("kernel: state %d default %d out of range", s, t.Defaults[s])
		}
		if int(t.Defaults[s]) == s && pop != t.Classes {
			return fmt.Errorf("kernel: state %d is self-default but only %d/%d classes explicit", s, pop, t.Classes)
		}
	}
	for i, e := range t.Explicit {
		dest := e >> 1
		if int(dest) >= t.States {
			return fmt.Errorf("kernel: explicit entry %d targets state %d of %d", i, dest, t.States)
		}
		if flagged, hasOut := e&FlagOut != 0, len(t.Outs[dest]) > 0; flagged != hasOut {
			return fmt.Errorf("kernel: explicit entry %d flag %v but |out|=%d", i, flagged, len(t.Outs[dest]))
		}
	}
	// Chain termination: memoized walk — 0 unknown, 1 terminates,
	// 2 in progress (a revisit while in progress is a cycle).
	state := make([]byte, t.States)
	var stack []uint32
	for s := 0; s < t.States; s++ {
		cur := uint32(s)
		stack = stack[:0]
		for state[cur] == 0 && int(t.Defaults[cur]) != int(cur) {
			state[cur] = 2
			stack = append(stack, cur)
			cur = t.Defaults[cur]
			if state[cur] == 2 {
				return fmt.Errorf("kernel: default chain cycle through state %d", cur)
			}
		}
		for _, v := range stack {
			state[v] = 1
		}
		state[cur] = 1
	}
	return nil
}

// Bytes serializes the whole compressed engine to a container image.
func (e *Compressed) Bytes() []byte {
	imgs := make([][]byte, len(e.Tables))
	size := len(compMagic) + 8
	for i, t := range e.Tables {
		imgs[i] = t.Bytes()
		size += 4 + len(imgs[i])
	}
	out := make([]byte, 0, size)
	out = append(out, compMagic...)
	le := binary.LittleEndian
	out = le.AppendUint32(out, uint32(e.MaxPatternLen))
	out = le.AppendUint32(out, uint32(len(imgs)))
	for _, img := range imgs {
		out = le.AppendUint32(out, uint32(len(img)))
		out = append(out, img...)
	}
	return out
}

// CompressedFromBytes reconstructs a compressed engine from its
// container image, validating every table.
func CompressedFromBytes(img []byte) (*Compressed, error) {
	if len(img) < len(compMagic)+8 || string(img[:len(compMagic)]) != string(compMagic) {
		return nil, fmt.Errorf("kernel: not a compressed container image")
	}
	le := binary.LittleEndian
	p := len(compMagic)
	maxLen := int(le.Uint32(img[p:]))
	count := int(le.Uint32(img[p+4:]))
	p += 8
	if count < 1 || count > 1<<16 {
		return nil, fmt.Errorf("kernel: implausible compressed table count %d", count)
	}
	e := &Compressed{MaxPatternLen: maxLen, Tables: make([]*CTable, count)}
	for i := 0; i < count; i++ {
		if len(img) < p+4 {
			return nil, fmt.Errorf("kernel: truncated compressed container")
		}
		n := int(le.Uint32(img[p:]))
		p += 4
		if n < 0 || len(img) < p+n {
			return nil, fmt.Errorf("kernel: truncated compressed table %d", i)
		}
		t, err := CTableFromBytes(img[p : p+n])
		if err != nil {
			return nil, fmt.Errorf("compressed table %d: %w", i, err)
		}
		e.Tables[i] = t
		p += n
	}
	if p != len(img) {
		return nil, fmt.Errorf("kernel: %d trailing container bytes", len(img)-p)
	}
	return e, nil
}
