package kernel

import (
	"fmt"
	"math/rand"
	"testing"
)

// stripHot removes the derived hot-row accelerator so the bitmap/chain
// fallback loops run. Hotness affects only speed, never output, so
// every scan surface must produce identical matches without it.
func stripHot(c *Compressed) {
	for _, t := range c.Tables {
		t.hot = nil
		t.hotLimit = 0
	}
}

// Every scan surface must agree with its hot-rows result after the
// accelerator is stripped: the chain-walk loops are the correctness
// reference the hot path merely shortcuts.
func TestCompressedColdPathEquivalence(t *testing.T) {
	eng, comp := compileBoth(t, []string{"virus", "rus w", "worm", "us"}, false)
	cold, err := CompileCompressed(testSystem(t, []string{"virus", "rus w", "worm", "us"}, false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stripHot(cold)
	for _, ct := range cold.Tables {
		if ct.hot != nil || ct.hotLimit != 0 {
			t.Fatal("stripHot left hot rows behind")
		}
	}
	for _, n := range []int{0, 1, 3, 17, 100, 1023, 4096, 60_000} {
		data := testInput(n, int64(n)+7)
		want := eng.FindAllK(data, 1)
		for k := 1; k <= MaxInterleave; k++ {
			if got := cold.FindAllK(data, k); !matchesEqual(got, want) {
				t.Fatalf("n=%d k=%d: cold path %d matches, dense %d", n, k, len(got), len(want))
			}
		}
		if got, wantN := cold.Count(data), len(want); got != wantN {
			t.Fatalf("n=%d cold Count=%d want %d", n, got, wantN)
		}
		if got := cold.ScanChunk(data, 0, 0); len(got) != len(want) {
			t.Fatalf("n=%d cold ScanChunk %d matches, want %d", n, len(got), len(want))
		}
	}
	// Streaming continuation through the cold ScanCarry loop.
	data := testInput(3000, 13)
	var want, got []int
	for _, kt := range eng.Tables {
		kt.ScanCarry(data, kt.StartRow(), func(pid int32, end int) { want = append(want, int(pid), end) })
	}
	for _, split := range []int{1, 9, 257} {
		got = got[:0]
		for _, ct := range cold.Tables {
			cur := ct.StartRow()
			for off := 0; off < len(data); off += split {
				end := min(off+split, len(data))
				base := off
				cur = ct.ScanCarry(data[off:end], cur, func(pid int32, end int) {
					got = append(got, int(pid), base+end)
				})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("split=%d: cold carry %d match words, dense %d", split, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("split=%d cold carry diverges at word %d", split, i)
			}
		}
	}
	_ = comp
}

// wideSystemPatterns spans well over 64 distinct bytes so the
// class-bitmap rows need more than one uint64 word: wpc > 1, the
// nextWide rank path, and no hot rows (the accelerator is gated to
// <= 32 classes).
func wideSystemPatterns() []string {
	pats := []string{"virus", "worm!", "Zx9?~", "{edge}", "[#&*]"}
	// Printable ASCII 0x21..0x7e in 5-byte runs: ~94 distinct symbols.
	for b := 0x21; b+5 <= 0x7f; b += 5 {
		pats = append(pats, fmt.Sprintf("%c%c%c%c%c", b, b+1, b+2, b+3, b+4))
	}
	return pats
}

func wideTestInput(n int, seed int64, pats []string) []byte {
	rng := rand.New(rand.NewSource(seed))
	filler := []byte("abcZx9?~{}[#&*]@!0123ABCDEF <>=+-_;:,.|/^%$")
	out := make([]byte, 0, n)
	for len(out) < n {
		if rng.Intn(12) == 0 {
			out = append(out, pats[rng.Intn(len(pats))]...)
		} else {
			out = append(out, filler[rng.Intn(len(filler))])
		}
	}
	return out[:n]
}

// The >64-class form (nextWide, multi-word bitmap rank) must agree with
// the dense kernel on every scan surface.
func TestCompressedWideClasses(t *testing.T) {
	pats := wideSystemPatterns()
	sys := testSystem(t, pats, false)
	eng, err := Compile(sys, Options{Stride: 1, MaxTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CompileCompressed(sys, Options{MaxTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	sawWide := false
	for _, ct := range comp.Tables {
		if ct.wpc > 1 {
			sawWide = true
		}
		if ct.hot != nil {
			t.Fatalf("hot rows built for %d classes (gate is 32)", ct.Classes)
		}
	}
	if !sawWide {
		t.Fatalf("probe too weak: no table has wpc > 1")
	}
	for _, n := range []int{0, 1, 37, 1024, 20_000} {
		data := wideTestInput(n, int64(n)+3, pats)
		want := eng.FindAllK(data, 1)
		if n >= 1024 && len(want) == 0 {
			t.Fatalf("n=%d probe too weak: no matches", n)
		}
		for _, k := range []int{1, 2, MaxInterleave} {
			if got := comp.FindAllK(data, k); !matchesEqual(got, want) {
				t.Fatalf("n=%d k=%d: wide compressed %d matches, dense %d", n, k, len(got), len(want))
			}
		}
		if got, wantN := comp.Count(data), len(want); got != wantN {
			t.Fatalf("n=%d wide Count=%d want %d", n, got, wantN)
		}
	}
	// Streaming continuation through the wide ScanCarry loop.
	data := wideTestInput(2500, 41, pats)
	var want, got []int
	for _, kt := range eng.Tables {
		kt.ScanCarry(data, kt.StartRow(), func(pid int32, end int) { want = append(want, int(pid), end) })
	}
	for _, ct := range comp.Tables {
		cur := ct.StartRow()
		for off := 0; off < len(data); off += 113 {
			end := min(off+113, len(data))
			base := off
			cur = ct.ScanCarry(data[off:end], cur, func(pid int32, end int) {
				got = append(got, int(pid), base+end)
			})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("wide carry %d match words, dense %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wide carry diverges at word %d", i)
		}
	}
}

// A dictionary with more states than hotRowCap exercises the hot/cold
// boundary inside the accelerated loops: filler bytes stay in hot
// root-adjacent states while embedded full patterns walk deep cold
// states (low stationary mass), so cold5 and the hot loops' fallback
// arms both run and must agree with the dense kernel.
func TestCompressedHotColdBoundary(t *testing.T) {
	pats := make([]string, 0, 60)
	for i := 0; i < 60; i++ {
		pats = append(pats, fmt.Sprintf("deepsig%02d-%08x-tail", i, i*2654435761))
	}
	sys := testSystem(t, pats, false)
	eng, err := Compile(sys, Options{Stride: 1, MaxTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CompileCompressed(sys, Options{MaxTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	sawBoundary := false
	for _, ct := range comp.Tables {
		if ct.hot == nil {
			t.Fatalf("hot rows missing on a %d-class table", ct.Classes)
		}
		if ct.States > hotRowCap {
			sawBoundary = true
		}
	}
	if !sawBoundary {
		t.Fatalf("probe too weak: every table fits inside %d hot rows", hotRowCap)
	}
	rng := rand.New(rand.NewSource(97))
	filler := []byte("deepsig0123456789abcdef-til ")
	data := make([]byte, 0, 120_000)
	for len(data) < 120_000 {
		if rng.Intn(20) == 0 {
			data = append(data, pats[rng.Intn(len(pats))]...)
		} else {
			data = append(data, filler[rng.Intn(len(filler))])
		}
	}
	want := eng.FindAllK(data, 1)
	if len(want) == 0 {
		t.Fatal("probe too weak: no matches")
	}
	for _, k := range []int{1, 2, MaxInterleave} {
		if got := comp.FindAllK(data, k); !matchesEqual(got, want) {
			t.Fatalf("k=%d: hot/cold scan %d matches, dense %d", k, len(got), len(want))
		}
	}
	if got, wantN := comp.Count(data), len(want); got != wantN {
		t.Fatalf("hot/cold Count=%d want %d", got, wantN)
	}
	var wantC, gotC []int
	for _, kt := range eng.Tables {
		kt.ScanCarry(data, kt.StartRow(), func(pid int32, end int) { wantC = append(wantC, int(pid), end) })
	}
	for _, ct := range comp.Tables {
		cur := ct.StartRow()
		for off := 0; off < len(data); off += 1021 {
			end := min(off+1021, len(data))
			base := off
			cur = ct.ScanCarry(data[off:end], cur, func(pid int32, end int) {
				gotC = append(gotC, int(pid), base+end)
			})
		}
	}
	if len(gotC) != len(wantC) {
		t.Fatalf("hot/cold carry %d match words, dense %d", len(gotC), len(wantC))
	}
	for i := range wantC {
		if gotC[i] != wantC[i] {
			t.Fatalf("hot/cold carry diverges at word %d", i)
		}
	}
}

// InterleaveFor mirrors FindAll's lane policy: explicit InterleaveK
// wins (clamped to MaxInterleave), auto mode stays serial under the
// small-input threshold.
func TestCompressedInterleaveFor(t *testing.T) {
	sys := testSystem(t, []string{"virus", "worm"}, false)
	auto, err := CompileCompressed(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := auto.InterleaveFor(autoInterleaveMin - 1); got != 1 {
		t.Fatalf("auto small input: k=%d want 1", got)
	}
	if got := auto.InterleaveFor(autoInterleaveMin); got != autoInterleaveK {
		t.Fatalf("auto large input: k=%d want %d", got, autoInterleaveK)
	}
	pinned, err := CompileCompressed(sys, Options{InterleaveK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := pinned.InterleaveFor(autoInterleaveMin * 2); got != 3 {
		t.Fatalf("pinned k=%d want 3", got)
	}
	clamped, err := CompileCompressed(sys, Options{InterleaveK: MaxInterleave + 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := clamped.InterleaveFor(autoInterleaveMin * 2); got != MaxInterleave {
		t.Fatalf("clamped k=%d want %d", got, MaxInterleave)
	}
}
