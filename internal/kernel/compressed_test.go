package kernel

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func compileBoth(t *testing.T, patterns []string, caseFold bool) (*Engine, *Compressed) {
	t.Helper()
	sys := testSystem(t, patterns, caseFold)
	eng, err := Compile(sys, Options{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CompileCompressed(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, comp
}

// The compressed engine must agree with the dense kernel match-for-match
// on every lane count, including boundary-straddling matches.
func TestCompressedMatchesDense(t *testing.T) {
	eng, comp := compileBoth(t, []string{"virus", "rus w", "worm", "us"}, false)
	for _, n := range []int{0, 1, 3, 17, 100, 1023, 4096, 100_000} {
		data := testInput(n, int64(n))
		want := eng.FindAllK(data, 1)
		for k := 1; k <= MaxInterleave; k++ {
			got := comp.FindAllK(data, k)
			if !matchesEqual(got, want) {
				t.Fatalf("n=%d k=%d: compressed %d matches, dense %d", n, k, len(got), len(want))
			}
		}
		if got := comp.FindAll(data); !matchesEqual(got, want) {
			t.Fatalf("n=%d FindAll diverges", n)
		}
		if got, wantN := comp.Count(data), len(want); got != wantN {
			t.Fatalf("n=%d Count=%d want %d", n, got, wantN)
		}
	}
}

func TestCompressedCaseFold(t *testing.T) {
	eng, comp := compileBoth(t, []string{"Virus", "WORM"}, true)
	data := []byte("a vIrUs crossed a woRM and a VIRUS")
	want := eng.FindAll(data)
	if len(want) < 3 {
		t.Fatalf("probe too weak: %d matches", len(want))
	}
	if got := comp.FindAll(data); !matchesEqual(got, want) {
		t.Fatalf("casefold diverges: %v vs %v", got, want)
	}
}

// ScanChunk with a dedupe window must agree with the dense engine's.
func TestCompressedScanChunk(t *testing.T) {
	eng, comp := compileBoth(t, []string{"virus", "worm", "us"}, false)
	data := testInput(4096, 7)
	for _, dedupe := range []int{0, 3, 10} {
		want := eng.ScanChunkStride1(data, 100, dedupe)
		got := comp.ScanChunk(data, 100, dedupe)
		if !matchesEqual(got, want) {
			t.Fatalf("dedupe=%d: %d vs %d matches", dedupe, len(got), len(want))
		}
	}
}

// Streaming via ScanCarry across arbitrary piece splits must equal the
// one-shot scan, with the carry round-tripping through StartRow's
// encoding.
func TestCompressedScanCarry(t *testing.T) {
	eng, comp := compileBoth(t, []string{"virus", "worm", "us"}, false)
	data := testInput(2000, 11)
	var want []int
	for _, kt := range eng.Tables {
		cur := kt.StartRow()
		cur = kt.ScanCarry(data, cur, func(pid int32, end int) { want = append(want, int(pid), end) })
		_ = cur
	}
	for _, split := range []int{1, 7, 64, 1999} {
		var got []int
		for _, ct := range comp.Tables {
			cur := ct.StartRow()
			for off := 0; off < len(data); off += split {
				end := off + split
				if end > len(data) {
					end = len(data)
				}
				base := off
				cur = ct.ScanCarry(data[off:end], cur, func(pid int32, end int) {
					got = append(got, int(pid), base+end)
				})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("split=%d: %d match words, dense %d", split, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("split=%d diverges at %d", split, i)
			}
		}
	}
}

// An impossible budget must be rejected with ErrBudget before any
// table is built, exactly like the dense compiler.
func TestCompressedBudget(t *testing.T) {
	sys := testSystem(t, []string{"virus", "worm"}, false)
	if _, err := CompileCompressed(sys, Options{MaxTableBytes: 16}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// The whole point of the rung: on an Aho-Corasick dictionary the
// compressed footprint must be well under the dense one.
func TestCompressedFootprintSmaller(t *testing.T) {
	pats := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		pats = append(pats, fmt.Sprintf("sig%04d-%08x-payload", i, i*2654435761))
	}
	sys := testSystem(t, pats, true)
	eng, err := Compile(sys, Options{Stride: 1, MaxTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := CompileCompressed(sys, Options{MaxTableBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	dense, cb := eng.TableBytes(), comp.TableBytes()
	if cb*2 > dense {
		t.Fatalf("compressed %d bytes vs dense %d: expected >= 2x compression", cb, dense)
	}
}

// Serialization round trip: the loaded engine must re-serialize
// byte-identically and scan identically.
func TestCompressedRoundTrip(t *testing.T) {
	eng, comp := compileBoth(t, []string{"virus", "worm", "us"}, true)
	img := comp.Bytes()
	loaded, err := CompressedFromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(loaded.Bytes(), img) {
		t.Fatal("round trip is not byte-identical")
	}
	if loaded.MaxPatternLen != comp.MaxPatternLen {
		t.Fatalf("MaxPatternLen %d vs %d", loaded.MaxPatternLen, comp.MaxPatternLen)
	}
	data := testInput(8192, 3)
	want := eng.FindAll(data)
	if got := loaded.FindAll(data); !matchesEqual(got, want) {
		t.Fatalf("loaded engine diverges: %d vs %d matches", len(got), len(want))
	}
}

func TestCompressedFromBytesRejectsCorruption(t *testing.T) {
	_, comp := compileBoth(t, []string{"virus", "worm"}, false)
	img := comp.Bytes()
	if _, err := CompressedFromBytes(img[:len(img)-3]); err == nil {
		t.Fatal("truncated container accepted")
	}
	if _, err := CompressedFromBytes([]byte("CMCPS1\x00garbage!")); err == nil {
		t.Fatal("garbage container accepted")
	}
	bad := append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0xff
	if _, err := CompressedFromBytes(bad); err == nil {
		t.Fatal("corrupted tail accepted")
	}
}

// Validate must reject a default-pointer cycle: two states defaulting
// to each other would loop the scan forever.
func TestCompressedValidateCycle(t *testing.T) {
	_, comp := compileBoth(t, []string{"virus", "worm"}, false)
	ct := comp.Tables[0]
	if ct.States < 3 {
		t.Fatal("fixture too small")
	}
	saved1, saved2 := ct.Defaults[1], ct.Defaults[2]
	ct.Defaults[1], ct.Defaults[2] = 2, 1
	if err := ct.Validate(); err == nil {
		t.Fatal("default cycle accepted")
	}
	ct.Defaults[1], ct.Defaults[2] = saved1, saved2
	if err := ct.Validate(); err != nil {
		t.Fatalf("restored table invalid: %v", err)
	}
}

// Determinism: the compressed build must be byte-identical at any
// worker count (the same invariant the dense compile pipeline keeps).
func TestCompressedDeterministicAcrossWorkers(t *testing.T) {
	pats := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		pats = append(pats, fmt.Sprintf("w%03d-pattern-%d", i, i*i))
	}
	sys := testSystem(t, pats, true)
	base, err := CompileCompressed(sys, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Bytes()
	for _, w := range []int{0, 2, 5} {
		got, err := CompileCompressed(sys, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("workers=%d image differs from sequential build", w)
		}
	}
}
