package kernel

import (
	"bytes"
	"strings"
	"testing"

	"cellmatch/internal/compose"
)

// engineImage concatenates an engine's table images — the byte-level
// identity witness for the parallel and delta compile paths.
func engineImage(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tab := range e.Tables {
		buf.Write(tab.Bytes())
	}
	return buf.Bytes()
}

func compileWorkers(t *testing.T, pats [][]byte, workers int) *Engine {
	t.Helper()
	sys, err := compose.NewSystem(pats, compose.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Compile(sys, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// The tentpole invariant at the kernel tier: a parallel compile emits
// the same bytes as a sequential one, table for table, across worker
// counts and dictionary shapes.
func TestCompileParallelIdentical(t *testing.T) {
	dicts := [][][]byte{
		toBytes([]string{"virus", "worm", "trojan", "rootkit"}),
		randomShardDict(257, 3),
	}
	for di, pats := range dicts {
		seq := compileWorkers(t, pats, 1)
		want := engineImage(t, seq)
		for _, w := range []int{2, 3, 8} {
			par := compileWorkers(t, pats, w)
			if !bytes.Equal(engineImage(t, par), want) {
				t.Fatalf("dict %d: workers=%d image differs from sequential", di, w)
			}
			if par.Stride() != seq.Stride() {
				t.Fatalf("dict %d: workers=%d stride %d, want %d", di, w, par.Stride(), seq.Stride())
			}
		}
	}
}

func TestCompileShardedParallelIdentical(t *testing.T) {
	_, pats := shardedFixture(t, false)
	budget := shardedFixtureBudget(t, pats, false)
	seq, err := CompileSharded(pats, ShardConfig{MaxTableBytes: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par, err := CompileSharded(pats, ShardConfig{MaxTableBytes: budget, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(par.Bytes(), seq.Bytes()) {
			t.Fatalf("workers=%d sharded image differs from sequential", w)
		}
	}
}

func shardedFixtureBudget(t *testing.T, pats [][]byte, fold bool) int {
	t.Helper()
	red := reductionFor(t, pats, fold)
	return 16 * widthFor(red.Classes) * 4
}

// randomShardDict builds a deterministic dictionary large enough to
// exercise multi-slot systems without trig functions or rand.
func randomShardDict(n int, seed uint32) [][]byte {
	x := seed | 1
	out := make([][]byte, n)
	for i := range out {
		l := 3 + int(x%9)
		p := make([]byte, l)
		for j := range p {
			x = x*1664525 + 1013904223
			p[j] = 'a' + byte((x>>16)%17)
		}
		out[i] = p
	}
	return out
}

// Appending a pattern must leave the untouched shards' engines reused
// by pointer, and the delta-compiled image byte-identical to a cold
// compile of the new dictionary.
func TestCompileShardedDeltaAppend(t *testing.T) {
	prevPats := toBytes([]string{
		"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd",
		"aaaabbbb", "ccccdddd", "abcd", "dcba",
	})
	budget := shardedFixtureBudget(t, prevPats, false)
	cfg := ShardConfig{MaxTableBytes: budget, MaxShards: MaxShardsLimit}
	prev, err := CompileSharded(prevPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	newPats := append(append([][]byte{}, prevPats...), []byte("ddddcccc"))

	cold, err := CompileSharded(newPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	delta, reused, err := CompileShardedDelta(newPats, cfg, prev, prevPats)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(delta.Bytes(), cold.Bytes()) {
		t.Fatal("delta sharded image differs from cold compile")
	}
	nReused := 0
	for si, r := range reused {
		if r {
			nReused++
			// Reuse must be by pointer: the donor engine is adopted, not
			// recompiled.
			found := false
			for _, e := range prev.Engines {
				if e == delta.Engines[si] {
					found = true
				}
			}
			if !found {
				t.Fatalf("shard %d marked reused but engine is not prev's", si)
			}
		}
	}
	if nReused == 0 {
		t.Fatalf("append reused no shards (mask %v, %d shards)", reused, len(reused))
	}
	// Scan behavior unchanged versus the reference.
	data := []byte(strings.Repeat("aaaaaaaaxddddccccxabcd", 20))
	assertMatchesEqual(t, "delta FindAll", delta.FindAll(data), cold.FindAll(data))
}

// A prev without a plan (loaded from a serialized image) must fall
// back to a cold compile with an all-false mask instead of guessing.
func TestCompileShardedDeltaNoPlan(t *testing.T) {
	prevPats := toBytes([]string{
		"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd",
		"aaaabbbb", "ccccdddd", "abcd", "dcba",
	})
	budget := shardedFixtureBudget(t, prevPats, false)
	cfg := ShardConfig{MaxTableBytes: budget, MaxShards: MaxShardsLimit}
	prev, err := CompileSharded(prevPats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ShardedFromBytes(prev.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	delta, reused, err := CompileShardedDelta(prevPats, cfg, loaded, prevPats)
	if err != nil {
		t.Fatal(err)
	}
	for si, r := range reused {
		if r {
			t.Fatalf("plan-less prev reused shard %d", si)
		}
	}
	if !bytes.Equal(delta.Bytes(), prev.Bytes()) {
		t.Fatal("cold fallback image differs")
	}
}

// withPair must never mutate the donor table, and must be a no-op when
// the stride already matches.
func TestWithPairCopySemantics(t *testing.T) {
	pats := toBytes([]string{"ab", "ba", "aab"})
	sys, err := compose.NewSystem(pats, compose.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Compile(sys, Options{Stride: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab := eng.Tables[0]
	if tab.Pair == nil {
		t.Fatal("stride-2 compile produced no pair table")
	}
	if got := tab.withPair(true, 1); got != tab {
		t.Fatal("withPair(true) on a paired table must be identity")
	}
	stripped := tab.withPair(false, 1)
	if stripped == tab || stripped.Pair != nil {
		t.Fatal("withPair(false) must return a pair-less copy")
	}
	if tab.Pair == nil {
		t.Fatal("withPair mutated the donor table")
	}
	regrown := stripped.withPair(true, 2)
	if regrown == stripped || regrown.Pair == nil {
		t.Fatal("withPair(true) must rebuild the pair table")
	}
	if !bytes.Equal(regrown.Bytes(), tab.Bytes()) {
		t.Fatal("pair rebuild changed the serialized image")
	}
}
