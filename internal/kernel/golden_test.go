package kernel

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenTable compiles the fixed fixture dictionary. Everything in the
// pipeline (alphabet assignment, Aho-Corasick construction, entry
// encoding) is deterministic, so the serialized image is reproducible
// bit-for-bit; any encoding drift fails this test.
func goldenTable(t *testing.T) *Table {
	t.Helper()
	sys := testSystem(t, []string{"VIRUS", "WORM", "RUSV"}, true)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Tables) != 1 {
		t.Fatalf("fixture dictionary split into %d slots", len(eng.Tables))
	}
	return eng.Tables[0]
}

func TestGoldenKernelImage(t *testing.T) {
	path := filepath.Join("testdata", "kernel_v1.golden")
	img := goldenTable(t).Bytes()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("kernel image drifted from golden fixture: %d bytes vs %d", len(img), len(want))
	}
}

// goldenSharded compiles the fixed sharded fixture: the same
// deterministic pipeline as goldenTable, but forced through the shard
// planner by a budget that fits roughly one pattern per shard.
func goldenSharded(t *testing.T) *Sharded {
	t.Helper()
	pats := [][]byte{[]byte("VIRUS"), []byte("WORMHOLE"), []byte("RUSTED")}
	red := reductionFor(t, pats, true)
	sh, err := CompileSharded(pats, ShardConfig{
		CaseFold:      true,
		MaxTableBytes: 10 * widthFor(red.Classes) * 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() < 2 {
		t.Fatalf("golden fixture did not shard: %d shards", sh.Shards())
	}
	return sh
}

func TestGoldenShardedImage(t *testing.T) {
	path := filepath.Join("testdata", "sharded_v1.golden")
	img := goldenSharded(t).Bytes()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("sharded image drifted from golden fixture: %d bytes vs %d", len(img), len(want))
	}
}

func TestGoldenShardedReload(t *testing.T) {
	path := filepath.Join("testdata", "sharded_v1.golden")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	loaded, err := ShardedFromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	fresh := goldenSharded(t)
	probe := []byte("a virus fell down a wormhole and rusted: virusrusted")
	want := fresh.FindAll(probe)
	if len(want) == 0 {
		t.Fatal("probe found no matches; fixture too weak")
	}
	got := loaded.FindAll(probe)
	if len(got) != len(want) {
		t.Fatalf("loaded sharded engine: %d matches, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// goldenCompressed compiles the fixed compressed-container fixture:
// same deterministic pipeline (BFS default recovery, class-order
// explicit packing), so the container image is reproducible
// bit-for-bit.
func goldenCompressed(t *testing.T) *Compressed {
	t.Helper()
	sys := testSystem(t, []string{"VIRUS", "WORM", "RUSV"}, true)
	comp, err := CompileCompressed(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestGoldenCompressedImage(t *testing.T) {
	path := filepath.Join("testdata", "compressed_v1.golden")
	img := goldenCompressed(t).Bytes()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("compressed image drifted from golden fixture: %d bytes vs %d", len(img), len(want))
	}
}

func TestGoldenCompressedReload(t *testing.T) {
	path := filepath.Join("testdata", "compressed_v1.golden")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	loaded, err := CompressedFromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	fresh := goldenCompressed(t)
	probe := []byte("a virus, a WORM, and virusvirus rusv")
	want := fresh.FindAll(probe)
	if len(want) == 0 {
		t.Fatal("probe found no matches; fixture too weak")
	}
	got := loaded.FindAll(probe)
	if len(got) != len(want) {
		t.Fatalf("loaded compressed engine: %d matches, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// The checked-in image must load and produce the exact matches the
// freshly compiled table does.
func TestGoldenKernelReload(t *testing.T) {
	path := filepath.Join("testdata", "kernel_v1.golden")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	loaded, err := FromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	fresh := goldenTable(t)
	probe := []byte("a virus, a WORM, and virusvirus rusv")
	var a, b []int
	fresh.ScanCarry(probe, fresh.StartRow(), func(pid int32, end int) { a = append(a, int(pid), end) })
	loaded.ScanCarry(probe, loaded.StartRow(), func(pid int32, end int) { b = append(b, int(pid), end) })
	if len(a) == 0 {
		t.Fatal("probe found no matches; fixture too weak")
	}
	if len(a) != len(b) {
		t.Fatalf("loaded table: %d match words, fresh %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match stream diverges at %d: %d vs %d", i, b[i], a[i])
		}
	}
}
