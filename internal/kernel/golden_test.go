package kernel

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenTable compiles the fixed fixture dictionary. Everything in the
// pipeline (alphabet assignment, Aho-Corasick construction, entry
// encoding) is deterministic, so the serialized image is reproducible
// bit-for-bit; any encoding drift fails this test.
func goldenTable(t *testing.T) *Table {
	t.Helper()
	sys := testSystem(t, []string{"VIRUS", "WORM", "RUSV"}, true)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Tables) != 1 {
		t.Fatalf("fixture dictionary split into %d slots", len(eng.Tables))
	}
	return eng.Tables[0]
}

func TestGoldenKernelImage(t *testing.T) {
	path := filepath.Join("testdata", "kernel_v1.golden")
	img := goldenTable(t).Bytes()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("kernel image drifted from golden fixture: %d bytes vs %d", len(img), len(want))
	}
}

// The checked-in image must load and produce the exact matches the
// freshly compiled table does.
func TestGoldenKernelReload(t *testing.T) {
	path := filepath.Join("testdata", "kernel_v1.golden")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update): %v", err)
	}
	loaded, err := FromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	fresh := goldenTable(t)
	probe := []byte("a virus, a WORM, and virusvirus rusv")
	var a, b []int
	fresh.ScanCarry(probe, fresh.StartRow(), func(pid int32, end int) { a = append(a, int(pid), end) })
	loaded.ScanCarry(probe, loaded.StartRow(), func(pid int32, end int) { b = append(b, int(pid), end) })
	if len(a) == 0 {
		t.Fatal("probe found no matches; fixture too weak")
	}
	if len(a) != len(b) {
		t.Fatalf("loaded table: %d match words, fresh %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match stream diverges at %d: %d vs %d", i, b[i], a[i])
		}
	}
}
