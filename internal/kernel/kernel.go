// Package kernel is the compiled host-CPU scan engine: the paper's
// cache-resident DFA tile translated to commodity hardware. Where
// internal/stt keeps the paper's literal SPE encoding (32-bit local
// store pointers, big-endian image) and internal/dfa keeps the
// textbook indexed automaton, this package flattens a compiled
// dictionary into the representation a superscalar host scans fastest:
//
//   - a 256-entry byte→class map with the alphabet reduction baked in,
//     so the kernel consumes raw input — no separate reduction pass and
//     no reduced copy of the data;
//   - a dense, cache-line-aligned []uint32 transition table whose
//     entries are pre-shifted row indexes (state × row width) with the
//     "destination state has output" flag packed into bit 0, the host
//     analog of the paper's pointer-encoded STT tile: one transition is
//     one indexed load, one AND, one ADD, with no multiply and no
//     per-byte output-set probe;
//   - two scan loops: a single-stream unrolled loop, and a K-way
//     interleaved loop that advances K independent chunks of the input
//     per iteration — the host equivalent of the paper's Figure 6a
//     multi-buffered streams — so K dependent table loads are in
//     flight at once and the L1/L2 hit latency of the resident table
//     is hidden behind instruction-level parallelism.
//
// Chunk boundaries in the interleaved loop reuse
// interleave.SplitWithOverlap: each lane re-scans an overlap window of
// MaxPatternLen-1 bytes from the root and drops matches ending inside
// it, so the output is byte-for-byte identical to the sequential scan
// (same guarantee, and the same mechanism, as internal/parallel).
//
// Dictionaries whose dense tables exceed the configured budget (dense
// rows cost width × 4 bytes per state) are rejected by Compile with
// ErrBudget; callers fall back to the stt/dfa path.
package kernel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/fanout"
	"cellmatch/internal/interleave"
)

// FlagOut is packed into entry bit 0: the transition's destination
// state has a non-empty output set (a dictionary hit ends here).
const FlagOut uint32 = 1

// rowMask clears the flag bit, yielding the destination row index.
const rowMask = ^uint32(1)

const (
	// DefaultMaxTableBytes is the dense-table budget when Options
	// leaves it zero: 8 MiB keeps the working set inside a commodity
	// last-level cache slice with room for the input stream.
	DefaultMaxTableBytes = 8 << 20

	// L1DataBudget and L2Budget classify table residency for
	// diagnostics (Matcher.Stats): typical per-core data cache sizes.
	L1DataBudget = 32 << 10
	L2Budget     = 1 << 20

	// MaxInterleave caps the K-way loop: past eight lanes the lockstep
	// loop's register pressure outweighs the latency hiding.
	MaxInterleave = 8

	// autoInterleaveMin is the input size at which the auto heuristic
	// switches from the single-stream loop to K-way interleaving.
	autoInterleaveMin = 256 << 10

	// autoInterleaveK is the lane count the auto heuristic picks.
	autoInterleaveK = 4
)

// ErrBudget is returned by Compile when the dictionary's dense tables
// exceed the configured byte budget.
var ErrBudget = errors.New("kernel: dense table exceeds budget")

// Options tune compilation and scanning.
type Options struct {
	// MaxTableBytes is the aggregate dense-table budget across series
	// slots. <=0 means DefaultMaxTableBytes. With the stride-2 rung
	// live the budget covers the dense AND pair tables together.
	MaxTableBytes int
	// InterleaveK forces the lane count of the interleaved scan loop:
	// 1 forces the single-stream loop, 2..MaxInterleave force K lanes,
	// 0 picks automatically by input size.
	InterleaveK int
	// Stride selects the symbols consumed per table transition.
	// 0 (auto) compiles the stride-2 pair tables when every slot stays
	// within AutoStride2MaxClasses classes, the aggregate pair table is
	// L2-resident (<= L2Budget — past that the pair loads on the serial
	// chain cost more than the two 1-byte loads they replace), and the
	// aggregate footprint (dense + pair) fits MaxTableBytes; 1 pins the
	// 1-byte kernel; 2 requests pair tables regardless of the auto
	// gates, still falling back to the 1-byte kernel when they cannot
	// fit MaxTableBytes.
	Stride int
	// Workers bounds the compile-time fan-out (fanout semantics:
	// 0 = one per core, 1 = sequential): slot tables compile
	// concurrently and the row/pair emission of large single tables
	// splits into ranges. The compiled engine is byte-identical at any
	// worker count.
	Workers int
}

// ResolveMaxTableBytes maps an Options.MaxTableBytes (or
// ShardConfig.MaxTableBytes) value to the effective byte budget:
// <= 0 selects DefaultMaxTableBytes, anything positive is taken
// verbatim. Every consumer of the budget — Options.withDefaults, the
// shard planner, and core's Stats()/compressed-tier admission —
// resolves through this one function so the default cannot drift
// between layers.
func ResolveMaxTableBytes(v int) int {
	if v <= 0 {
		return DefaultMaxTableBytes
	}
	return v
}

func (o Options) withDefaults() Options {
	o.MaxTableBytes = ResolveMaxTableBytes(o.MaxTableBytes)
	if o.InterleaveK > MaxInterleave {
		o.InterleaveK = MaxInterleave
	}
	if o.InterleaveK < 0 {
		o.InterleaveK = 0
	}
	return o
}

// Table is one series slot's compiled automaton: the paper's STT tile
// re-encoded for host caches.
type Table struct {
	// Classes is the meaningful symbol count (the reduced alphabet).
	Classes int
	// Width is the row width in entries: a power of two >= Classes, so
	// a row index plus a class is a single add with no multiply.
	Width int
	// States is the automaton size.
	States int

	// ByteClass folds the alphabet reduction into the table: raw input
	// byte -> column index. The kernel scans unreduced data.
	ByteClass [256]byte

	// Entries holds States*Width encoded words, row-major, sliced from
	// a cache-line-aligned backing array. Entry = destRow | FlagOut,
	// where destRow = destState << shift.
	Entries []uint32

	// Pair holds the stride-2 rung's States*Width*Width pair-transition
	// words (see stride2.go), nil when the rung is not compiled in.
	// Entry = destPairRow | FlagOut, where destPairRow =
	// destState << (2*shift) and the flag squashes "either the
	// intermediate or the destination state has output".
	Pair []uint32

	// Outs lists the pattern ids reported when entering each state.
	// Ids are global dictionary indices (the slot mapping is baked in).
	Outs [][]int32

	shift     uint32 // log2(Width)
	pairShift uint32 // 2*shift, valid when Pair != nil
	start     uint32 // start state's row index
}

// alignedWords allocates n uint32s whose first element lies on a
// 64-byte cache-line boundary, so every table row (Width*4 >= 8 bytes,
// power of two) starts at a fixed line offset.
func alignedWords(n int) []uint32 {
	const line = 64
	buf := make([]uint32, n+line/4)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % line; rem != 0 {
		off = int(line-rem) / 4
	}
	return buf[off : off+n : off+n]
}

// widthFor returns the smallest power of two >= n, minimum 2 (so row
// indexes always have bit 0 free for FlagOut).
func widthFor(n int) int {
	w := 2
	for w < n {
		w *= 2
	}
	return w
}

func log2(w int) uint32 {
	var s uint32
	for 1<<s < w {
		s++
	}
	return s
}

// compileTable flattens one slot DFA. byteClass is the reduction map;
// ids maps slot-local pattern ids to global ones; workers splits the
// dense row fill into contiguous state ranges (disjoint writes, so the
// emitted table is identical at any worker count).
func compileTable(d *dfa.DFA, byteClass [256]byte, ids []int, workers int) (*Table, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Out == nil {
		return nil, fmt.Errorf("kernel: DFA lacks output sets")
	}
	width := widthFor(d.Syms)
	shift := log2(width)
	n := d.NumStates()
	if uint64(n)<<shift >= 1<<31 {
		return nil, fmt.Errorf("kernel: %d states at width %d overflow row indexing", n, width)
	}
	// Every byte must map to a real symbol column: classes in
	// [Syms, width) would silently alias the reset-to-start padding,
	// dropping matches. True by construction for a healthy system;
	// guards against corrupted/loaded reductions.
	for b, c := range byteClass {
		if int(c) >= d.Syms {
			return nil, fmt.Errorf("kernel: byte %#x maps to class %d, alphabet %d", b, c, d.Syms)
		}
	}
	t := &Table{
		Classes:   d.Syms,
		Width:     width,
		States:    n,
		ByteClass: byteClass,
		Entries:   alignedWords(n * width),
		Outs:      make([][]int32, n),
		shift:     shift,
		start:     uint32(d.Start) << shift,
	}
	for s := 0; s < n; s++ {
		if len(d.Out[s]) > 0 {
			out := make([]int32, len(d.Out[s]))
			for i, pid := range d.Out[s] {
				if pid < 0 || int(pid) >= len(ids) {
					// Healthy automata never hit this; guards loaded
					// artifacts whose output sets are corrupt.
					return nil, fmt.Errorf("kernel: state %d reports pattern %d of %d", s, pid, len(ids))
				}
				out[i] = int32(ids[pid])
			}
			t.Outs[s] = out
		}
	}
	fanout.ForRanges(n, workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			row := s * width
			for c := 0; c < width; c++ {
				var next int32
				if c < d.Syms {
					next = d.Next[s*d.Syms+c]
				} else {
					next = int32(d.Start) // padding columns restart, no flag
				}
				e := uint32(next) << shift
				if c < d.Syms && len(d.Out[next]) > 0 {
					e |= FlagOut
				}
				t.Entries[row+c] = e
			}
		}
	})
	return t, nil
}

// SizeBytes is the dense table's memory footprint.
func (t *Table) SizeBytes() int { return t.States * t.Width * 4 }

// StartRow returns the start state's encoded row index, the carry
// value for ScanCarry.
func (t *Table) StartRow() uint32 { return t.start }

// emit appends the output set of the state entry e transitioned into,
// unless the match ends inside the chunk's dedupe window.
func (t *Table) emit(e uint32, localEnd, base, dedupe int, sink *[]dfa.Match) {
	if localEnd <= dedupe {
		return
	}
	for _, pid := range t.Outs[e>>t.shift] {
		*sink = append(*sink, dfa.Match{Pattern: pid, End: base + localEnd})
	}
}

// scanSerial runs the single-stream unrolled loop over raw bytes,
// appending matches with End = base + local offset and dropping those
// ending at local offsets <= dedupe (the overlap window).
func (t *Table) scanSerial(piece []byte, base, dedupe int, sink *[]dfa.Match) {
	entries := t.Entries
	cls := &t.ByteClass
	cur := t.start
	n := len(piece)
	i := 0
	for ; i+4 <= n; i += 4 {
		e := entries[cur+uint32(cls[piece[i]])]
		if e&FlagOut != 0 {
			t.emit(e, i+1, base, dedupe, sink)
		}
		cur = e & rowMask
		e = entries[cur+uint32(cls[piece[i+1]])]
		if e&FlagOut != 0 {
			t.emit(e, i+2, base, dedupe, sink)
		}
		cur = e & rowMask
		e = entries[cur+uint32(cls[piece[i+2]])]
		if e&FlagOut != 0 {
			t.emit(e, i+3, base, dedupe, sink)
		}
		cur = e & rowMask
		e = entries[cur+uint32(cls[piece[i+3]])]
		if e&FlagOut != 0 {
			t.emit(e, i+4, base, dedupe, sink)
		}
		cur = e & rowMask
	}
	for ; i < n; i++ {
		e := entries[cur+uint32(cls[piece[i]])]
		if e&FlagOut != 0 {
			t.emit(e, i+1, base, dedupe, sink)
		}
		cur = e & rowMask
	}
}

// ScanCarry scans piece from the encoded row cur (stream continuation:
// no speculative restart, no dedupe), calling emit for every hit with
// a 1-based piece-local end offset, and returns the final row. It is
// the kernel backend of core.Stream and of the sharded engine's
// sequential chunk-interleaved scan. Carried rows are always 1-byte
// encoded rows, even on the stride-2 rung (scanCarry2 converts at the
// boundaries), so stream state is representation-independent.
func (t *Table) ScanCarry(piece []byte, cur uint32, emit func(pid int32, end int)) uint32 {
	if t.Pair != nil {
		return t.scanCarry2(piece, cur, emit)
	}
	entries := t.Entries
	cls := &t.ByteClass
	cur &= rowMask
	n := len(piece)
	i := 0
	for ; i+4 <= n; i += 4 {
		e := entries[cur+uint32(cls[piece[i]])]
		if e&FlagOut != 0 {
			t.emitCarry(e, i+1, emit)
		}
		cur = e & rowMask
		e = entries[cur+uint32(cls[piece[i+1]])]
		if e&FlagOut != 0 {
			t.emitCarry(e, i+2, emit)
		}
		cur = e & rowMask
		e = entries[cur+uint32(cls[piece[i+2]])]
		if e&FlagOut != 0 {
			t.emitCarry(e, i+3, emit)
		}
		cur = e & rowMask
		e = entries[cur+uint32(cls[piece[i+3]])]
		if e&FlagOut != 0 {
			t.emitCarry(e, i+4, emit)
		}
		cur = e & rowMask
	}
	for ; i < n; i++ {
		e := entries[cur+uint32(cls[piece[i]])]
		if e&FlagOut != 0 {
			t.emitCarry(e, i+1, emit)
		}
		cur = e & rowMask
	}
	return cur
}

// emitCarry reports the output set of the state entry e transitioned
// into (kept out of ScanCarry's hot loop).
func (t *Table) emitCarry(e uint32, end int, emit func(pid int32, end int)) {
	for _, pid := range t.Outs[e>>t.shift] {
		emit(pid, end)
	}
}

// scanInterleaved advances every chunk's cursor once per lockstep
// iteration — K independent dependency chains, so K table loads are in
// flight per iteration — then drains the uneven tails serially. Each
// lane starts from the root and its overlap prefix is deduped, exactly
// like a parallel worker, so the union of lane matches equals the
// sequential scan's.
func (t *Table) scanInterleaved(data []byte, chunks []interleave.Chunk, sink *[]dfa.Match) {
	k := len(chunks)
	if k > MaxInterleave {
		// Dropping chunks would silently lose matches; callers
		// (laneChunks) clamp the lane count before splitting.
		panic("kernel: more chunks than interleave lanes")
	}
	var cur [MaxInterleave]uint32
	minLen := -1
	for l := 0; l < k; l++ {
		cur[l] = t.start
		if n := chunks[l].Len(); minLen < 0 || n < minLen {
			minLen = n
		}
	}
	entries := t.Entries
	cls := &t.ByteClass
	for p := 0; p < minLen; p++ {
		for l := 0; l < k; l++ {
			c := chunks[l]
			e := entries[cur[l]+uint32(cls[data[c.Start+p]])]
			if e&FlagOut != 0 {
				t.emit(e, p+1, c.Start, c.Overlap, sink)
			}
			cur[l] = e & rowMask
		}
	}
	// Uneven tails (the last chunk is usually shorter).
	for l := 0; l < k; l++ {
		c := chunks[l]
		for p := minLen; p < c.Len(); p++ {
			e := entries[cur[l]+uint32(cls[data[c.Start+p]])]
			if e&FlagOut != 0 {
				t.emit(e, p+1, c.Start, c.Overlap, sink)
			}
			cur[l] = e & rowMask
		}
	}
}

// Engine is a compiled matcher: one dense table per series slot plus
// the scan policy.
type Engine struct {
	// Tables holds one compiled table per series slot.
	Tables []*Table
	// MaxPatternLen sizes the interleave overlap window.
	MaxPatternLen int

	opts   Options
	stride int // 2 when every table carries pair tables, else 1
}

// Stride reports the live transition stride: 2 when the pair tables
// are compiled in (the stride-2 rung), 1 for the plain dense kernel.
func (e *Engine) Stride() int {
	if e.stride == 2 {
		return 2
	}
	return 1
}

// PairBytes is the aggregate pair-table footprint (0 at stride 1).
func (e *Engine) PairBytes() int {
	total := 0
	for _, t := range e.Tables {
		total += t.PairSizeBytes()
	}
	return total
}

// Compile flattens a composed system into a dense engine. It returns
// ErrBudget (wrapped) when the aggregate table size exceeds
// Options.MaxTableBytes; callers are expected to fall back to the
// stt/dfa scan path. Per Options.Stride the engine additionally
// compiles the stride-2 pair tables; a pair set that cannot fit the
// remaining budget degrades to the plain 1-byte kernel rather than
// failing (the rung below on the selection ladder).
func Compile(sys *compose.System, opts Options) (*Engine, error) {
	return CompileReusing(sys, opts, nil)
}

// CompileReusing is Compile with per-slot table reuse for the delta
// path: prebuilt[i], when non-nil, is a table already compiled for slot
// i with the same reduction and the same global pattern ids (the caller
// establishes that by content fingerprint), adopted instead of
// recompiled. Reused tables are never mutated — if the stride decision
// differs from the donor engine's, the table is shallow-copied and its
// pair table built or dropped on the copy — so the donor engine keeps
// scanning unchanged and the result is byte-identical to a cold
// Compile of the same system.
func CompileReusing(sys *compose.System, opts Options, prebuilt []*Table) (*Engine, error) {
	o := opts.withDefaults()
	if o.Stride < 0 || o.Stride > 2 {
		return nil, fmt.Errorf("kernel: bad stride %d (want 0 auto, 1, or 2)", o.Stride)
	}
	if len(sys.Slots) == 0 {
		return nil, fmt.Errorf("kernel: system has no slots")
	}
	// Budget first, from predicted sizes (states × row width × 4 — the
	// exact arithmetic the tables compile to): an over-budget dictionary
	// is rejected before any table is emitted, so the doomed kernel
	// attempt on a sharded- or stt-bound dictionary costs a size sum,
	// not a full table build.
	total := 0
	for _, d := range sys.Slots {
		total += d.NumStates() * widthFor(d.Syms) * 4
		if total > o.MaxTableBytes {
			return nil, fmt.Errorf("%w: %d slots need > %d bytes", ErrBudget, len(sys.Slots), o.MaxTableBytes)
		}
	}
	e := &Engine{MaxPatternLen: sys.MaxPatternLen, opts: o, stride: 1}
	e.Tables = make([]*Table, len(sys.Slots))
	inner := 1
	if w := fanout.Workers(o.Workers); len(sys.Slots) < w {
		inner = (w + len(sys.Slots) - 1) / len(sys.Slots)
	}
	err := fanout.ForEachErr(len(sys.Slots), o.Workers, func(i int) error {
		if prebuilt != nil && prebuilt[i] != nil {
			e.Tables[i] = prebuilt[i]
			return nil
		}
		t, err := compileTable(sys.Slots[i], sys.Red.Map, sys.SlotPatterns[i], inner)
		if err != nil {
			return err
		}
		e.Tables[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	wantPair := o.Stride != 1 && e.pairEligible(o, total)
	if wantPair {
		e.stride = 2
	}
	fanout.ForEach(len(e.Tables), o.Workers, func(i int) {
		e.Tables[i] = e.Tables[i].withPair(wantPair, inner)
	})
	return e, nil
}

// pairEligible decides whether the stride-2 pair tables come up:
// every slot's pair row indexing must fit and the aggregate dense +
// pair footprint must stay within the byte budget. The auto policy
// (Stride 0) additionally requires every slot within
// AutoStride2MaxClasses classes AND the aggregate pair table
// L2-resident (<= L2Budget): a pair load is on the scan's serial
// dependency chain, so a pair table that spills past L2 trades one
// L1-speed load per byte for one slower load per pair and measures
// at or below the 1-byte kernel — the measured NIDS-dictionary
// regime (6 MiB pair table, 0.97x). An explicit Stride 2 skips both
// auto gates and builds whatever fits MaxTableBytes. denseTotal is
// the already-accumulated dense footprint.
//
// Ladder-footprint rule: every rung admits itself by comparing its
// AGGREGATE resident footprint against the budget resolved by
// ResolveMaxTableBytes — stride-2 charges dense + pair here, the
// dense kernel charges states × width × 4 in CompileReusing, the
// compressed tier charges bitmaps + defaults + offsets + explicit in
// CompileCompressed (auto-capped at L2Budget by the core ladder), and
// the sharded planner charges per-shard dense tables. Each rung's
// predicate is monotone in the budget and the rungs are tried
// fastest-first, so growing the budget can only move selection up the
// ladder, never down — the property TestLadderMonotonicity pins.
func (e *Engine) pairEligible(o Options, denseTotal int) bool {
	pairTotal := 0
	for _, t := range e.Tables {
		if !t.pairFits() {
			return false
		}
		if o.Stride == 0 && t.Classes > AutoStride2MaxClasses {
			return false
		}
		pairTotal += t.States * t.Width * t.Width * 4
	}
	if o.Stride == 0 && pairTotal > L2Budget {
		return false
	}
	return denseTotal+pairTotal <= o.MaxTableBytes
}

// TableBytes is the aggregate dense-table footprint.
func (e *Engine) TableBytes() int {
	total := 0
	for _, t := range e.Tables {
		total += t.SizeBytes()
	}
	return total
}

// InterleaveFor reports the lane count FindAll would use on an input
// of n bytes (diagnostics and benchmarks).
func (e *Engine) InterleaveFor(n int) int { return e.chooseK(n) }

func (e *Engine) chooseK(n int) int {
	if k := e.opts.InterleaveK; k >= 1 {
		return k
	}
	if n < autoInterleaveMin {
		return 1
	}
	return autoInterleaveK
}

func (e *Engine) overlap() int {
	if e.MaxPatternLen > 0 {
		return e.MaxPatternLen - 1
	}
	return 0
}

// FindAll scans raw data and returns every dictionary occurrence with
// global pattern ids, sorted by (End, Pattern) — byte-for-byte the
// output of compose.System.Scan.
func (e *Engine) FindAll(data []byte) []dfa.Match {
	return e.FindAllK(data, e.chooseK(len(data)))
}

// FindAllK is FindAll with an explicit lane count (1 = single-stream
// loop). Any k >= 1 yields identical matches.
func (e *Engine) FindAllK(data []byte, k int) []dfa.Match {
	return e.findAllK(data, k, false)
}

// FindAllStride1 is FindAll forced onto the 1-byte loops even when the
// stride-2 pair tables are live — the per-request stride=1 opt-out the
// serving layer exposes. Output is byte-identical to FindAll.
func (e *Engine) FindAllStride1(data []byte) []dfa.Match {
	return e.findAllK(data, e.chooseK(len(data)), true)
}

func (e *Engine) findAllK(data []byte, k int, force1 bool) []dfa.Match {
	var out []dfa.Match
	chunks := e.laneChunks(data, k)
	for _, t := range e.Tables {
		stride2 := t.Pair != nil && !force1
		switch {
		case chunks == nil && stride2:
			t.scanSerial2(data, 0, 0, &out)
		case chunks == nil:
			t.scanSerial(data, 0, 0, &out)
		case stride2:
			t.scanInterleaved2(data, chunks, &out)
		default:
			t.scanInterleaved(data, chunks, &out)
		}
	}
	dfa.SortMatches(out)
	return out
}

// laneChunks returns the interleave split for a k-lane scan, or nil
// when the single-stream loop should run instead.
func (e *Engine) laneChunks(data []byte, k int) []interleave.Chunk {
	if k <= 1 || len(data) == 0 {
		return nil
	}
	if k > MaxInterleave {
		k = MaxInterleave
	}
	chunks, err := interleave.SplitWithOverlap(len(data), k, e.overlap())
	if err != nil { // unreachable for k >= 1, n >= 0
		return nil
	}
	return chunks
}

// Count returns the total occurrence count without materializing the
// match list — the packet-discard path: same loops, a counter instead
// of a sink, no allocation and no sort.
func (e *Engine) Count(data []byte) int {
	total := 0
	chunks := e.laneChunks(data, e.chooseK(len(data)))
	for _, t := range e.Tables {
		switch {
		case chunks == nil && t.Pair != nil:
			total += t.countSerial2(data, 0)
		case chunks == nil:
			total += t.countSerial(data, 0)
		case t.Pair != nil:
			total += t.countInterleaved2(data, chunks)
		default:
			total += t.countInterleaved(data, chunks)
		}
	}
	return total
}

// countSerial counts hits in piece from the root, ignoring matches
// that end inside the dedupe-byte overlap prefix.
func (t *Table) countSerial(piece []byte, dedupe int) int {
	entries := t.Entries
	cls := &t.ByteClass
	cur := t.start
	count := 0
	for i := 0; i < len(piece); i++ {
		e := entries[cur+uint32(cls[piece[i]])]
		if e&FlagOut != 0 && i >= dedupe {
			count += len(t.Outs[e>>t.shift])
		}
		cur = e & rowMask
	}
	return count
}

// countInterleaved is scanInterleaved with a counter instead of a
// sink: lockstep over the lanes, then serial tails.
func (t *Table) countInterleaved(data []byte, chunks []interleave.Chunk) int {
	k := len(chunks)
	if k > MaxInterleave {
		panic("kernel: more chunks than interleave lanes")
	}
	var cur [MaxInterleave]uint32
	minLen := -1
	for l := 0; l < k; l++ {
		cur[l] = t.start
		if n := chunks[l].Len(); minLen < 0 || n < minLen {
			minLen = n
		}
	}
	entries := t.Entries
	cls := &t.ByteClass
	count := 0
	for p := 0; p < minLen; p++ {
		for l := 0; l < k; l++ {
			c := chunks[l]
			e := entries[cur[l]+uint32(cls[data[c.Start+p]])]
			if e&FlagOut != 0 && p >= c.Overlap {
				count += len(t.Outs[e>>t.shift])
			}
			cur[l] = e & rowMask
		}
	}
	for l := 0; l < k; l++ {
		c := chunks[l]
		for p := minLen; p < c.Len(); p++ {
			e := entries[cur[l]+uint32(cls[data[c.Start+p]])]
			if e&FlagOut != 0 && p >= c.Overlap {
				count += len(t.Outs[e>>t.shift])
			}
			cur[l] = e & rowMask
		}
	}
	return count
}

// ScanChunk scans one raw piece from the root for the parallel engine:
// matches ending at local offsets <= dedupe are dropped (overlap
// duplicates), the rest are shifted by base. Output order is per-table
// scan order; the caller merges and sorts.
func (e *Engine) ScanChunk(piece []byte, base, dedupe int) []dfa.Match {
	var out []dfa.Match
	for _, t := range e.Tables {
		if t.Pair != nil {
			t.scanSerial2(piece, base, dedupe, &out)
		} else {
			t.scanSerial(piece, base, dedupe, &out)
		}
	}
	return out
}

// ScanChunkStride1 is ScanChunk pinned to the 1-byte loops — the
// parallel-path form of the per-request stride=1 opt-out.
func (e *Engine) ScanChunkStride1(piece []byte, base, dedupe int) []dfa.Match {
	var out []dfa.Match
	for _, t := range e.Tables {
		t.scanSerial(piece, base, dedupe, &out)
	}
	return out
}

// Image serialization -------------------------------------------------
//
// Layout (little-endian):
//
//	magic "CMKRN1\x00"
//	u32 classes, width, states, startState
//	byteClass [256]u8
//	entries states*width x u32
//	outs: per state: u32 count, count x u32 pattern ids

var imgMagic = []byte("CMKRN1\x00")

// Bytes serializes the table to its kernel image.
func (t *Table) Bytes() []byte {
	size := len(imgMagic) + 4*4 + 256 + len(t.Entries)*4
	for _, o := range t.Outs {
		size += 4 + len(o)*4
	}
	out := make([]byte, 0, size)
	out = append(out, imgMagic...)
	le := binary.LittleEndian
	out = le.AppendUint32(out, uint32(t.Classes))
	out = le.AppendUint32(out, uint32(t.Width))
	out = le.AppendUint32(out, uint32(t.States))
	out = le.AppendUint32(out, t.start>>t.shift)
	out = append(out, t.ByteClass[:]...)
	for _, e := range t.Entries {
		out = le.AppendUint32(out, e)
	}
	for _, o := range t.Outs {
		out = le.AppendUint32(out, uint32(len(o)))
		for _, pid := range o {
			out = le.AppendUint32(out, uint32(pid))
		}
	}
	return out
}

// FromBytes reconstructs and validates a table image, re-aligning the
// entry array. A loaded table scans identically to the compiled one.
func FromBytes(img []byte) (*Table, error) {
	if len(img) < len(imgMagic)+4*4+256 || string(img[:len(imgMagic)]) != string(imgMagic) {
		return nil, fmt.Errorf("kernel: not a kernel image")
	}
	le := binary.LittleEndian
	p := len(imgMagic)
	get := func() uint32 {
		v := le.Uint32(img[p:])
		p += 4
		return v
	}
	classes, width, states, start := int(get()), int(get()), int(get()), get()
	if classes < 1 || classes > 256 || width < classes || width&(width-1) != 0 || width < 2 {
		return nil, fmt.Errorf("kernel: bad geometry classes=%d width=%d", classes, width)
	}
	if states < 1 || uint64(states)*uint64(width) > 1<<28 {
		return nil, fmt.Errorf("kernel: implausible state count %d", states)
	}
	if int(start) >= states {
		return nil, fmt.Errorf("kernel: start state %d out of range", start)
	}
	t := &Table{
		Classes: classes,
		Width:   width,
		States:  states,
		Outs:    make([][]int32, states),
		shift:   log2(width),
	}
	t.start = start << t.shift
	if len(img) < p+256+states*width*4 {
		return nil, fmt.Errorf("kernel: truncated image")
	}
	copy(t.ByteClass[:], img[p:p+256])
	p += 256
	for _, c := range t.ByteClass {
		if int(c) >= classes {
			return nil, fmt.Errorf("kernel: byte class %d >= %d", c, classes)
		}
	}
	t.Entries = alignedWords(states * width)
	for i := range t.Entries {
		t.Entries[i] = get()
	}
	for s := 0; s < states; s++ {
		if len(img) < p+4 {
			return nil, fmt.Errorf("kernel: truncated output sets")
		}
		n := int(get())
		if n > 1<<20 || len(img) < p+n*4 {
			return nil, fmt.Errorf("kernel: implausible output set %d", n)
		}
		if n > 0 {
			o := make([]int32, n)
			for i := range o {
				pid := get()
				if pid > 1<<31-1 {
					return nil, fmt.Errorf("kernel: state %d output id %d overflows int32", s, pid)
				}
				o[i] = int32(pid)
			}
			t.Outs[s] = o
		}
	}
	if p != len(img) {
		return nil, fmt.Errorf("kernel: %d trailing bytes", len(img)-p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Validate checks structural invariants: every entry targets a real
// row with clean padding bits, and its flag agrees with the
// destination's output set.
func (t *Table) Validate() error {
	for i, e := range t.Entries {
		dest := e >> t.shift
		if int(dest) >= t.States {
			return fmt.Errorf("kernel: entry %d targets state %d of %d", i, dest, t.States)
		}
		if e&rowMask != dest<<t.shift {
			return fmt.Errorf("kernel: entry %d has dirty padding bits: %#x", i, e)
		}
		if col := i % t.Width; col < t.Classes {
			if flagged, hasOut := e&FlagOut != 0, len(t.Outs[dest]) > 0; flagged != hasOut {
				return fmt.Errorf("kernel: entry %d flag %v but |out|=%d", i, flagged, len(t.Outs[dest]))
			}
		} else if e&FlagOut != 0 {
			return fmt.Errorf("kernel: padding entry %d carries a flag", i)
		}
	}
	return t.validatePair()
}
