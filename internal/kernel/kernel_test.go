package kernel

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"unsafe"

	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
)

func testSystem(t testing.TB, patterns []string, caseFold bool) *compose.System {
	t.Helper()
	bs := make([][]byte, len(patterns))
	for i, p := range patterns {
		bs[i] = []byte(p)
	}
	sys, err := compose.NewSystem(bs, compose.Config{CaseFold: caseFold})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testInput(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	letters := []byte("abcdefgh virus worm!")
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return out
}

func matchesEqual(a, b []dfa.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The engine must agree with compose.System.Scan for every lane count,
// on inputs with boundary-straddling matches.
func TestFindAllKEquivalence(t *testing.T) {
	sys := testSystem(t, []string{"virus", "rus w", "worm", "us"}, false)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 3, 17, 100, 1023, 4096} {
		data := testInput(n, int64(n))
		want, err := sys.Scan(data)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= MaxInterleave; k++ {
			got := eng.FindAllK(data, k)
			if !matchesEqual(got, want) {
				t.Fatalf("n=%d k=%d: kernel %d matches, scan %d", n, k, len(got), len(want))
			}
		}
		if got := eng.FindAll(data); !matchesEqual(got, want) {
			t.Fatalf("n=%d auto: kernel diverges", n)
		}
	}
}

// Count must agree with len(FindAll) for every lane count, through
// both the serial and the interleaved counting loops.
func TestCountEquivalence(t *testing.T) {
	for k := 0; k <= MaxInterleave; k++ {
		sys := testSystem(t, []string{"virus", "rus w", "worm", "us"}, false)
		eng, err := Compile(sys, Options{InterleaveK: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 17, 300, 5000} {
			data := testInput(n, int64(n)+7)
			if got, want := eng.Count(data), len(eng.FindAllK(data, max(k, 1))); got != want {
				t.Fatalf("k=%d n=%d: Count %d, FindAll %d", k, n, got, want)
			}
			want, err := sys.CountMatches(data)
			if err != nil {
				t.Fatal(err)
			}
			if got := eng.Count(data); got != want {
				t.Fatalf("k=%d n=%d: Count %d, system %d", k, n, got, want)
			}
		}
	}
}

// Case folding is baked into the byte→class map.
func TestCaseFoldBaked(t *testing.T) {
	sys := testSystem(t, []string{"ViRuS"}, true)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.FindAll([]byte("a vIrUs and a VIRUS"))
	if len(got) != 2 {
		t.Fatalf("case-folded matches = %d, want 2", len(got))
	}
	want, err := sys.Scan([]byte("a vIrUs and a VIRUS"))
	if err != nil {
		t.Fatal(err)
	}
	if !matchesEqual(got, want) {
		t.Fatal("kernel diverges from scan under case folding")
	}
}

// Multi-slot systems (dictionary larger than one tile budget) compile
// one table per slot and merge matches identically.
func TestMultiSlot(t *testing.T) {
	var pats [][]byte
	for i := 0; i < 40; i++ {
		p := bytes.Repeat([]byte{byte('a' + i%8)}, 3)
		p = append(p, byte('a'+(i/8)%8), byte('a'+i%8))
		pats = append(pats, p)
	}
	sys, err := compose.NewSystem(pats, compose.Config{MaxStatesPerTile: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Slots) < 2 {
		t.Fatalf("want multi-slot system, got %d slots", len(sys.Slots))
	}
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Tables) != len(sys.Slots) {
		t.Fatalf("tables %d != slots %d", len(eng.Tables), len(sys.Slots))
	}
	data := testInput(2000, 99)
	want, err := sys.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		if got := eng.FindAllK(data, k); !matchesEqual(got, want) {
			t.Fatalf("k=%d: multi-slot kernel diverges", k)
		}
	}
}

func TestBudgetFallback(t *testing.T) {
	sys := testSystem(t, []string{"abcdefgh"}, false)
	if _, err := Compile(sys, Options{MaxTableBytes: 64}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if _, err := Compile(sys, Options{}); err != nil {
		t.Fatalf("default budget rejected a tiny dictionary: %v", err)
	}
}

func TestTableValidateAndAlignment(t *testing.T) {
	sys := testSystem(t, []string{"abc", "bca"}, false)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range eng.Tables {
		if err := tab.Validate(); err != nil {
			t.Fatal(err)
		}
		if addr := uintptr(unsafe.Pointer(&tab.Entries[0])); addr%64 != 0 {
			t.Fatalf("entries not cache-line aligned: %#x", addr)
		}
		if tab.Width&(tab.Width-1) != 0 || tab.Width < tab.Classes {
			t.Fatalf("bad width %d for %d classes", tab.Width, tab.Classes)
		}
	}
}

// ScanCarry across arbitrary cut points must equal a one-shot scan.
func TestScanCarrySplits(t *testing.T) {
	sys := testSystem(t, []string{"virus", "us v"}, false)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab := eng.Tables[0]
	data := []byte("virus us virus a us virus")
	var whole []dfa.Match
	tab.ScanCarry(data, tab.StartRow(), func(pid int32, end int) {
		whole = append(whole, dfa.Match{Pattern: pid, End: end})
	})
	for cut := 0; cut <= len(data); cut++ {
		var got []dfa.Match
		cur := tab.StartRow()
		cur = tab.ScanCarry(data[:cut], cur, func(pid int32, end int) {
			got = append(got, dfa.Match{Pattern: pid, End: end})
		})
		tab.ScanCarry(data[cut:], cur, func(pid int32, end int) {
			got = append(got, dfa.Match{Pattern: pid, End: cut + end})
		})
		if !matchesEqual(got, whole) {
			t.Fatalf("cut %d: carry scan diverges (%v vs %v)", cut, got, whole)
		}
	}
}

// Serialize → reload must reproduce the table exactly: same geometry,
// same entries, same matches.
func TestImageRoundTrip(t *testing.T) {
	sys := testSystem(t, []string{"worm", "ormwo"}, true)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig := eng.Tables[0]
	back, err := FromBytes(orig.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Classes != orig.Classes || back.Width != orig.Width ||
		back.States != orig.States || back.start != orig.start ||
		back.ByteClass != orig.ByteClass {
		t.Fatal("geometry does not round-trip")
	}
	if !reflect.DeepEqual(back.Entries, orig.Entries) {
		t.Fatal("entries do not round-trip")
	}
	if !reflect.DeepEqual(back.Outs, orig.Outs) {
		t.Fatal("output sets do not round-trip")
	}
	data := []byte("a worm wormwormWORMworm")
	var a, b []dfa.Match
	orig.scanSerial(data, 0, 0, &a)
	back.scanSerial(data, 0, 0, &b)
	if !matchesEqual(a, b) {
		t.Fatalf("reloaded table scans differently: %v vs %v", b, a)
	}
}

func TestFromBytesRejectsCorruption(t *testing.T) {
	sys := testSystem(t, []string{"ab"}, false)
	eng, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	img := eng.Tables[0].Bytes()
	if _, err := FromBytes(img[:10]); err == nil {
		t.Fatal("truncated image accepted")
	}
	if _, err := FromBytes(append([]byte(nil), img[:len(img)-1]...)); err == nil {
		t.Fatal("short image accepted")
	}
	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	if _, err := FromBytes(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Flip an entry to point out of range.
	bad = append([]byte(nil), img...)
	entryOff := len(imgMagic) + 16 + 256
	bad[entryOff+3] = 0xFF
	if _, err := FromBytes(bad); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
}

func TestInterleaveForHeuristic(t *testing.T) {
	sys := testSystem(t, []string{"abc"}, false)
	auto, err := Compile(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k := auto.InterleaveFor(1 << 10); k != 1 {
		t.Fatalf("small input picked k=%d", k)
	}
	if k := auto.InterleaveFor(1 << 20); k <= 1 {
		t.Fatalf("large input stayed serial (k=%d)", k)
	}
	forced, err := Compile(sys, Options{InterleaveK: 7})
	if err != nil {
		t.Fatal(err)
	}
	if k := forced.InterleaveFor(10); k != 7 {
		t.Fatalf("forced k not honored: %d", k)
	}
}
