// Sharded multi-kernel engine: the paper's Section 5 answer to
// dictionaries that outgrow one SPE's 256 KB local store, translated
// to the host. Where a single dense Engine must fit MaxTableBytes (the
// host analog of the local-store STT budget), a Sharded engine
// partitions the pattern set into K sub-dictionaries whose compiled
// kernels each fit that budget — the Figure 6b "series" composition,
// one shard per SPE, every shard scanning the same input stream — and
// merges the per-shard match streams back into the exact (End,
// Pattern) order the unsharded scan would have produced.
//
// The planner is a greedy bin-packer over a prefix-sorted pattern
// order: patterns are sorted by their reduced byte image so entries
// sharing a prefix land in the same shard and share trie states
// instead of duplicating them across shards, and each shard is grown
// until its estimated dense-table footprint would exceed the per-shard
// budget. The estimate mirrors what the shard will actually compile
// to: incremental Aho-Corasick trie node count × the shard's own row
// width (the power of two covering the distinct symbol classes of
// that shard's patterns, plus the "other" class — not the full
// dictionary's width, which can be 8x wider) × 4 bytes. Estimation
// errs low only through cross-slot prefix loss inside a shard, so the
// packer targets a 7/8 fill and the per-shard Compile still enforces
// the true budget.
//
// Scanning offers the two schedules the paper's composition section
// describes:
//
//   - FindAll: sequential, chunk-interleaved. The input is walked in
//     ShardChunkBytes pieces and every shard's tables scan each piece
//     (via ScanCarry, exact state carry — no speculation, no overlap)
//     before the scan advances, so the input chunk stays cache-resident
//     while the shard tables cycle through it — the single-Cell
//     time-multiplexed schedule.
//   - ScanShardChunk: the unit of the pool-fanned schedule. The
//     parallel engine builds one work item per (shard, input chunk), so
//     each worker holds one shard's tables hot while scanning — the
//     multi-SPE schedule, one shard set per worker.
package kernel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/fanout"
)

const (
	// DefaultMaxShards caps the shard count when ShardConfig leaves it
	// zero: 8, the paper's SPE count per Cell.
	DefaultMaxShards = 8

	// MaxShardsLimit is the hard ceiling on the shard count: past this
	// the per-shard scan passes dominate and the stt fallback is the
	// honest answer.
	MaxShardsLimit = 64

	// ShardChunkBytes is the input chunk of the sequential
	// chunk-interleaved scan: small enough to stay L2-resident while
	// every shard's tables cycle over it.
	ShardChunkBytes = 256 << 10

	// packTarget/packDiv make the planner fill shards to 7/8 of the
	// budget: estimation counts whole-shard trie nodes, but a shard that
	// compose splits across series slots loses a little prefix sharing,
	// and the per-shard Compile enforces the full budget strictly.
	packTarget = 7
	packDiv    = 8
)

// ShardPlan is the planner's output: Shards[i] lists the global
// pattern ids assigned to shard i, EstBytes[i] its estimated dense
// footprint, and Classes[i] the distinct reduced symbol classes its
// patterns use (the row-width driver CompileSharded sizes slots with).
type ShardPlan struct {
	Shards   [][]int
	EstBytes []int
	Classes  []int
}

// PlanShards partitions a dictionary into shards whose estimated dense
// tables each fit budget bytes, using at most maxShards shards
// (<=0 means DefaultMaxShards). Patterns are packed in reduced
// lexicographic order so shared prefixes stay within one shard. Errors
// that mean "this dictionary cannot be sharded within the constraints"
// (a single pattern outgrowing the budget, or the plan needing more
// than maxShards shards) wrap ErrBudget; callers fall back to the
// stt/dfa path exactly as they do for the unsharded kernel.
func PlanShards(patterns [][]byte, red *alphabet.Reduction, budget, maxShards int) (*ShardPlan, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("kernel: empty dictionary")
	}
	if red == nil {
		red = alphabet.Identity()
	}
	if maxShards <= 0 {
		maxShards = DefaultMaxShards
	}
	if maxShards > MaxShardsLimit {
		maxShards = MaxShardsLimit
	}
	target := budget * packTarget / packDiv
	if target < 2*2*4 {
		// Not even a two-state automaton at the minimum row width fits
		// the packing target.
		return nil, fmt.Errorf("%w: shard budget %d below one row pair", ErrBudget, budget)
	}

	// Reduced images, sorted so shared prefixes are adjacent (and
	// duplicates collapse onto the same trie path). The per-pattern
	// budget check prices the pattern at its own row width, the widest
	// a single-pattern shard can cost.
	reduced := make([][]byte, len(patterns))
	order := make([]int, len(patterns))
	for i, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("kernel: pattern %d is empty", i)
		}
		reduced[i] = red.Reduce(p)
		own := (len(p) + 1) * shardEntryBytes(classCount(reduced[i]))
		if own > budget {
			return nil, fmt.Errorf("%w: pattern %d alone needs %d bytes, shard budget %d",
				ErrBudget, i, own, budget)
		}
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bytes.Compare(reduced[order[a]], reduced[order[b]]) < 0
	})

	plan := &ShardPlan{}
	trie := newShardTrie()
	var seen [256]bool
	distinct := 0
	var cur []int
	reset := func() {
		trie = newShardTrie()
		seen = [256]bool{}
		distinct = 0
		cur = nil
	}
	flush := func() {
		if len(cur) > 0 {
			plan.Shards = append(plan.Shards, cur)
			plan.EstBytes = append(plan.EstBytes, trie.nodes*shardEntryBytes(distinct))
			plan.Classes = append(plan.Classes, distinct)
			reset()
		}
	}
	take := func(id int) {
		trie.insert(reduced[id])
		for _, c := range reduced[id] {
			if !seen[c] {
				seen[c] = true
				distinct++
			}
		}
		cur = append(cur, id)
	}
	// wouldCost prices the shard as if pattern id joined it: the new
	// trie node count at the row width its new symbol diversity needs.
	wouldCost := func(id int) int {
		added := trie.wouldAdd(reduced[id])
		grown := distinct
		var fresh [256]bool
		for _, c := range reduced[id] {
			if !seen[c] && !fresh[c] {
				fresh[c] = true
				grown++
			}
		}
		return (trie.nodes + added) * shardEntryBytes(grown)
	}
	for _, id := range order {
		// Early exit: once the plan outgrows maxShards the outcome is
		// fixed (shard counts only grow), so stop walking — on a
		// million-pattern stt-bound dictionary this turns the doomed
		// sharding attempt from a full trie pass into a prefix of one.
		if len(plan.Shards) > maxShards {
			return nil, fmt.Errorf("%w: dictionary needs more than %d shards, max %d",
				ErrBudget, maxShards, maxShards)
		}
		cost := wouldCost(id)
		if cost > target && len(cur) > 0 {
			flush()
			cost = wouldCost(id)
		}
		if cost > target {
			// A lone pattern over the packing target but under the raw
			// budget: give it its own shard (Compile still checks it).
			take(id)
			flush()
			continue
		}
		take(id)
	}
	flush()
	if len(plan.Shards) > maxShards {
		return nil, fmt.Errorf("%w: dictionary needs %d shards, max %d",
			ErrBudget, len(plan.Shards), maxShards)
	}
	return plan, nil
}

// shardEntryBytes is the per-trie-node dense cost for a shard whose
// patterns use `distinct` symbol classes: the compiled row width is
// the power of two covering those classes plus the "other" class
// (class 0), at 4 bytes per entry — the same arithmetic compileTable
// applies to the shard's own reduction.
func shardEntryBytes(distinct int) int {
	return widthFor(distinct+1) * 4
}

// classCount counts distinct reduced symbol classes in one image.
func classCount(reduced []byte) int {
	var seen [256]bool
	n := 0
	for _, c := range reduced {
		if !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}

// shardTrie incrementally counts Aho-Corasick goto-trie nodes (the
// automaton state count) for the packer's size estimate.
type shardTrie struct {
	children map[shardTrieKey]int32
	nodes    int
	next     int32
}

type shardTrieKey struct {
	node int32
	sym  byte
}

func newShardTrie() *shardTrie {
	return &shardTrie{children: map[shardTrieKey]int32{}, nodes: 1, next: 1}
}

func (t *shardTrie) wouldAdd(p []byte) int {
	cur := int32(0)
	added := 0
	for _, c := range p {
		if added > 0 {
			added++
			continue
		}
		next, ok := t.children[shardTrieKey{cur, c}]
		if !ok {
			added++
			continue
		}
		cur = next
	}
	return added
}

func (t *shardTrie) insert(p []byte) {
	cur := int32(0)
	for _, c := range p {
		k := shardTrieKey{cur, c}
		next, ok := t.children[k]
		if !ok {
			next = t.next
			t.next++
			t.nodes++
			t.children[k] = next
		}
		cur = next
	}
}

// ShardConfig tunes CompileSharded.
type ShardConfig struct {
	// CaseFold selects the paper's case-insensitive reduction, matching
	// the owning matcher's compile options.
	CaseFold bool
	// MaxTableBytes is the per-shard dense-table budget. <=0 means
	// DefaultMaxTableBytes.
	MaxTableBytes int
	// MaxShards caps the shard count. <=0 means DefaultMaxShards.
	MaxShards int
	// Workers bounds the compile-time fan-out (fanout semantics:
	// 0 = one per core, 1 = sequential): shards compose and compile
	// concurrently, each internally parallel when shards are fewer than
	// cores. Output is byte-identical at any worker count.
	Workers int
}

// Sharded is a multi-kernel engine: one dense Engine per dictionary
// shard, all scanning the same input, match streams merged into the
// unsharded (End, Pattern) order. Pattern ids inside every shard's
// tables are global dictionary ids, so merging is concatenate + sort.
type Sharded struct {
	// Engines holds one compiled kernel per shard.
	Engines []*Engine
	// Plan records each shard's global pattern ids (diagnostics, and
	// the delta path's reuse key source). Nil on engines loaded from a
	// serialized image — those support no delta reuse.
	Plan [][]int

	// shardFP caches per-shard reuse fingerprints (see sharddelta.go).
	shardFP [][fpSize]byte
}

// CompileSharded plans and compiles a sharded engine for a dictionary
// whose single dense kernel exceeds the table budget. Each shard is
// composed into its own system (its own alphabet reduction and slot
// split, sized so a shard is normally a single slot) and compiled
// against the per-shard budget. Errors wrapping ErrBudget mean the
// dictionary cannot be sharded within the constraints and the caller
// should fall back to the stt/dfa path.
func CompileSharded(patterns [][]byte, cfg ShardConfig) (*Sharded, error) {
	return CompileShardedReusing(patterns, cfg, nil)
}

// CompileShardedReusing is CompileSharded with per-shard engine reuse
// for the delta path: prebuilt maps a shard's reuse fingerprint (see
// shardFingerprint) to an engine already compiled for identical shard
// content, identical global ids, and identical config. Matching shards
// adopt the donor engine untouched; the rest compile cold, fanned
// across cfg.Workers. The result is byte-identical to a cold
// CompileSharded of the same dictionary.
func CompileShardedReusing(patterns [][]byte, cfg ShardConfig, prebuilt map[[fpSize]byte]*Engine) (*Sharded, error) {
	budget := ResolveMaxTableBytes(cfg.MaxTableBytes)
	red, err := alphabet.ForDictionary(patterns, cfg.CaseFold)
	if err != nil {
		return nil, err
	}
	plan, err := PlanShards(patterns, red, budget, cfg.MaxShards)
	if err != nil {
		return nil, err
	}
	sh := &Sharded{
		Plan:    plan.Shards,
		Engines: make([]*Engine, len(plan.Shards)),
		shardFP: make([][fpSize]byte, len(plan.Shards)),
	}
	inner := 1
	if w := fanout.Workers(cfg.Workers); len(plan.Shards) < w {
		inner = (w + len(plan.Shards) - 1) / len(plan.Shards)
	}
	err = fanout.ForEachErr(len(plan.Shards), cfg.Workers, func(si int) error {
		ids := plan.Shards[si]
		sh.shardFP[si] = shardFingerprint(patterns, ids, cfg.CaseFold, budget)
		if prebuilt != nil {
			if donor, ok := prebuilt[sh.shardFP[si]]; ok {
				sh.Engines[si] = donor
				return nil
			}
		}
		sub := make([][]byte, len(ids))
		for i, id := range ids {
			sub[i] = patterns[id]
		}
		// One slot should hold the whole shard: derive the state budget
		// from the byte budget at this shard's own row width (not the
		// paper's 16 KB-tile default, and not the full dictionary's
		// width), so a shard costs one scan pass, not several.
		maxStates := budget / shardEntryBytes(plan.Classes[si])
		sys, err := compose.NewSystem(sub, compose.Config{
			MaxStatesPerTile: maxStates,
			CaseFold:         cfg.CaseFold,
			Workers:          inner,
		})
		if err != nil {
			// A shard that cannot compose within its state budget is a
			// planning miss, not a caller defect (the full dictionary
			// composed fine): degrade to the stt fallback.
			return fmt.Errorf("%w: shard %d composition: %v", ErrBudget, si, err)
		}
		// Rewrite the shard-local pattern ids to global dictionary ids
		// before the tables bake them in, so every shard's match stream
		// already speaks global ids and the merge is a plain sort.
		for slot, local := range sys.SlotPatterns {
			global := make([]int, len(local))
			for j, l := range local {
				global[j] = ids[l]
			}
			sys.SlotPatterns[slot] = global
		}
		// Shards pin stride 1: the sharded tier sits BELOW the stride-2
		// rung on the selection ladder, and per-shard pair tables would
		// burn the very budget that forced sharding in the first place.
		eng, err := Compile(sys, Options{MaxTableBytes: budget, Stride: 1, Workers: inner})
		if err != nil {
			return fmt.Errorf("kernel: shard %d: %w", si, err)
		}
		sh.Engines[si] = eng
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sh, nil
}

// ShardFingerprints exposes the per-shard reuse keys of a compiled
// sharded engine built from the given global pattern list — the donor
// map source for CompileShardedReusing. Engines loaded from a
// serialized image have no plan and return nil (no reuse).
func (s *Sharded) ShardFingerprints(patterns [][]byte, caseFold bool, budget, workers int) map[[fpSize]byte]*Engine {
	if s.Plan == nil {
		return nil
	}
	budget = ResolveMaxTableBytes(budget)
	if s.shardFP == nil {
		s.shardFP = make([][fpSize]byte, len(s.Plan))
		fanout.ForEach(len(s.Plan), workers, func(si int) {
			s.shardFP[si] = shardFingerprint(patterns, s.Plan[si], caseFold, budget)
		})
	}
	out := make(map[[fpSize]byte]*Engine, len(s.Engines))
	for si, e := range s.Engines {
		out[s.shardFP[si]] = e
	}
	return out
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.Engines) }

// TableBytes is the aggregate dense-table footprint across shards.
func (s *Sharded) TableBytes() int {
	total := 0
	for _, e := range s.Engines {
		total += e.TableBytes()
	}
	return total
}

// MaxShardBytes is the largest single shard's footprint — the cache
// residency unit, since only one shard's tables are hot at a time.
func (s *Sharded) MaxShardBytes() int {
	maxB := 0
	for _, e := range s.Engines {
		if b := e.TableBytes(); b > maxB {
			maxB = b
		}
	}
	return maxB
}

// MaxPatternLen is the longest pattern across shards: the overlap
// bound for speculative chunk scans.
func (s *Sharded) MaxPatternLen() int {
	maxL := 0
	for _, e := range s.Engines {
		if e.MaxPatternLen > maxL {
			maxL = e.MaxPatternLen
		}
	}
	return maxL
}

// AllTables flattens every shard's tables, in shard order — the
// carry-state unit list for incremental (Stream) scans.
func (s *Sharded) AllTables() []*Table {
	var out []*Table
	for _, e := range s.Engines {
		out = append(out, e.Tables...)
	}
	return out
}

// FindAll scans data against every shard and returns the merged match
// stream, sorted by (End, Pattern) — byte-identical to the unsharded
// scan. The schedule is sequential chunk-interleaved: each
// ShardChunkBytes piece of input is scanned by every shard (with exact
// per-table state carry, so no overlap or dedupe is needed) before the
// scan advances, keeping the input piece cache-resident while the
// shard tables cycle.
func (s *Sharded) FindAll(data []byte) []dfa.Match {
	var out []dfa.Match
	tables := s.AllTables()
	rows := make([]uint32, len(tables))
	for i, t := range tables {
		rows[i] = t.StartRow()
	}
	for base := 0; base < len(data); base += ShardChunkBytes {
		end := min(base+ShardChunkBytes, len(data))
		piece := data[base:end]
		for i, t := range tables {
			off := base
			rows[i] = t.ScanCarry(piece, rows[i], func(pid int32, pend int) {
				out = append(out, dfa.Match{Pattern: pid, End: off + pend})
			})
		}
	}
	dfa.SortMatches(out)
	return out
}

// Count returns the total occurrence count across shards without
// materializing the match list, on the same chunk-interleaved
// cache-resident schedule as FindAll (one pass over the input, not
// one per shard).
func (s *Sharded) Count(data []byte) int {
	tables := s.AllTables()
	rows := make([]uint32, len(tables))
	for i, t := range tables {
		rows[i] = t.StartRow()
	}
	count := 0
	bump := func(int32, int) { count++ }
	for base := 0; base < len(data); base += ShardChunkBytes {
		end := min(base+ShardChunkBytes, len(data))
		piece := data[base:end]
		for i, t := range tables {
			rows[i] = t.ScanCarry(piece, rows[i], bump)
		}
	}
	return count
}

// ScanShardChunk scans one piece against a single shard — the
// (shard × chunk) work item of the pool-fanned schedule, where each
// worker keeps one shard's tables hot.
func (s *Sharded) ScanShardChunk(shard int, piece []byte, base, dedupe int) []dfa.Match {
	return s.Engines[shard].ScanChunk(piece, base, dedupe)
}

// Sharded image serialization ------------------------------------------
//
// A versioned container around the per-table kernel images, so a
// sharded artifact ships as one blob (little-endian):
//
//	magic "CMSHD1\x00"
//	u32 shardCount
//	per shard: u32 maxPatternLen, u32 tableCount,
//	           per table: u32 imageLen, kernel image bytes
//
// Shard plans are not stored: tables already carry global pattern ids.

var shardMagic = []byte("CMSHD1\x00")

// Bytes serializes the sharded engine to its container image.
func (s *Sharded) Bytes() []byte {
	le := binary.LittleEndian
	out := append([]byte(nil), shardMagic...)
	out = le.AppendUint32(out, uint32(len(s.Engines)))
	for _, e := range s.Engines {
		out = le.AppendUint32(out, uint32(e.MaxPatternLen))
		out = le.AppendUint32(out, uint32(len(e.Tables)))
		for _, t := range e.Tables {
			img := t.Bytes()
			out = le.AppendUint32(out, uint32(len(img)))
			out = append(out, img...)
		}
	}
	return out
}

// ShardedFromBytes reconstructs and validates a sharded container
// image. A loaded engine scans identically to the compiled one.
func ShardedFromBytes(img []byte) (*Sharded, error) {
	if len(img) < len(shardMagic)+4 || !bytes.Equal(img[:len(shardMagic)], shardMagic) {
		return nil, fmt.Errorf("kernel: not a sharded kernel image")
	}
	le := binary.LittleEndian
	p := len(shardMagic)
	get := func() (uint32, error) {
		if len(img) < p+4 {
			return 0, fmt.Errorf("kernel: truncated sharded image")
		}
		v := le.Uint32(img[p:])
		p += 4
		return v, nil
	}
	nShards, err := get()
	if err != nil {
		return nil, err
	}
	if nShards == 0 || nShards > MaxShardsLimit {
		return nil, fmt.Errorf("kernel: implausible shard count %d", nShards)
	}
	s := &Sharded{}
	for si := 0; si < int(nShards); si++ {
		maxLen, err := get()
		if err != nil {
			return nil, err
		}
		if maxLen > 1<<20 {
			return nil, fmt.Errorf("kernel: shard %d implausible pattern length %d", si, maxLen)
		}
		nTables, err := get()
		if err != nil {
			return nil, err
		}
		if nTables == 0 || nTables > 1<<16 {
			return nil, fmt.Errorf("kernel: shard %d implausible table count %d", si, nTables)
		}
		e := &Engine{MaxPatternLen: int(maxLen)}
		for ti := 0; ti < int(nTables); ti++ {
			l, err := get()
			if err != nil {
				return nil, err
			}
			if len(img) < p+int(l) {
				return nil, fmt.Errorf("kernel: shard %d table %d truncated", si, ti)
			}
			t, err := FromBytes(img[p : p+int(l)])
			if err != nil {
				return nil, fmt.Errorf("kernel: shard %d table %d: %w", si, ti, err)
			}
			p += int(l)
			e.Tables = append(e.Tables, t)
		}
		s.Engines = append(s.Engines, e)
	}
	if p != len(img) {
		return nil, fmt.Errorf("kernel: %d trailing bytes in sharded image", len(img)-p)
	}
	return s, nil
}
