package kernel

import (
	"errors"
	"strings"
	"testing"

	"cellmatch/internal/alphabet"
	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
)

func reductionFor(t *testing.T, patterns [][]byte, fold bool) *alphabet.Reduction {
	t.Helper()
	red, err := alphabet.ForDictionary(patterns, fold)
	if err != nil {
		t.Fatal(err)
	}
	return red
}

func toBytes(ps []string) [][]byte {
	out := make([][]byte, len(ps))
	for i, p := range ps {
		out[i] = []byte(p)
	}
	return out
}

func TestPlanShardsEmptyDictionary(t *testing.T) {
	if _, err := PlanShards(nil, alphabet.Identity(), 1<<20, 4); err == nil {
		t.Fatal("empty dictionary accepted")
	}
}

func TestPlanShardsPatternLargerThanBudget(t *testing.T) {
	pats := toBytes([]string{strings.Repeat("a", 64), "bb"})
	red := reductionFor(t, pats, false)
	// 65 trie states x width x 4 cannot fit a 256-byte budget.
	_, err := PlanShards(pats, red, 256, 8)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("oversized pattern: err = %v, want ErrBudget", err)
	}
}

func TestPlanShardsDegenerateSingleShard(t *testing.T) {
	pats := toBytes([]string{"virus", "worm", "trojan"})
	red := reductionFor(t, pats, false)
	plan, err := PlanShards(pats, red, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 1 {
		t.Fatalf("K=1 plan produced %d shards", len(plan.Shards))
	}
	if got := len(plan.Shards[0]); got != len(pats) {
		t.Fatalf("single shard holds %d of %d patterns", got, len(pats))
	}
	if plan.EstBytes[0] <= 0 {
		t.Fatalf("estimate missing: %+v", plan.EstBytes)
	}
}

func TestPlanShardsMaxShardsExceeded(t *testing.T) {
	// Four disjoint 8-byte patterns, a budget that fits about one each
	// (a lone pattern costs 9 states x width 2 x 4 = 72 bytes; any two
	// cost 17 states x width 4 x 4 = 272), capped at 2 shards: the
	// plan must refuse with ErrBudget.
	pats := toBytes([]string{"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd"})
	red := reductionFor(t, pats, false)
	_, err := PlanShards(pats, red, 100, 2)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("over-cap plan: err = %v, want ErrBudget", err)
	}
}

func TestPlanShardsAssignsEveryPatternOnce(t *testing.T) {
	pats := toBytes([]string{
		"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd",
		"aaaaaaaa", // duplicate of pattern 0
		"aaaabbbb", "ccccdddd",
	})
	red := reductionFor(t, pats, false)
	width := widthFor(red.Classes)
	plan, err := PlanShards(pats, red, 16*width*4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) < 2 {
		t.Fatalf("budget did not force sharding: %d shards", len(plan.Shards))
	}
	seen := make([]bool, len(pats))
	for _, ids := range plan.Shards {
		for _, id := range ids {
			if id < 0 || id >= len(pats) || seen[id] {
				t.Fatalf("pattern %d missing or duplicated in plan %v", id, plan.Shards)
			}
			seen[id] = true
		}
	}
	for id, s := range seen {
		if !s {
			t.Fatalf("pattern %d unassigned in plan %v", id, plan.Shards)
		}
	}
}

func TestPlanShardsPrefixAffinity(t *testing.T) {
	// Patterns sharing a long prefix must land in the same shard (the
	// sorted packing order makes them adjacent), so the shared prefix
	// costs its trie states once.
	pats := toBytes([]string{
		"prefix-shared-aa", "zzzzzzzzzzzzzzzz", "prefix-shared-bb", "qqqqqqqqqqqqqqqq",
	})
	red := reductionFor(t, pats, false)
	width := widthFor(red.Classes)
	// Room for ~2 disjoint 16-byte patterns per shard; the two
	// prefix-sharers together cost barely more than one.
	plan, err := PlanShards(pats, red, 40*width*4, 8)
	if err != nil {
		t.Fatal(err)
	}
	shardOf := make(map[int]int)
	for si, ids := range plan.Shards {
		for _, id := range ids {
			shardOf[id] = si
		}
	}
	if shardOf[0] != shardOf[2] {
		t.Fatalf("prefix-sharing patterns split across shards %d and %d (plan %v)",
			shardOf[0], shardOf[2], plan.Shards)
	}
}

// referenceScan is the unsharded oracle: the composed system's own
// sorted global-id scan.
func referenceScan(t *testing.T, pats [][]byte, fold bool, data []byte) []dfa.Match {
	t.Helper()
	sys, err := compose.NewSystem(pats, compose.Config{CaseFold: fold})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertMatchesEqual(t *testing.T, ctx string, got, want []dfa.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d is %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

func shardedFixture(t *testing.T, fold bool) (*Sharded, [][]byte) {
	t.Helper()
	pats := toBytes([]string{
		"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd",
		"aaaabbbb", "ccccdddd", "abcd", "dcba",
	})
	red := reductionFor(t, pats, fold)
	budget := 16 * widthFor(red.Classes) * 4
	sh, err := CompileSharded(pats, ShardConfig{CaseFold: fold, MaxTableBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() < 2 {
		t.Fatalf("fixture budget did not force sharding: %d shards", sh.Shards())
	}
	if sh.MaxShardBytes() <= 0 || sh.MaxShardBytes() > budget || sh.TableBytes() < sh.MaxShardBytes() {
		t.Fatalf("shard footprints out of range: max %d, total %d, budget %d",
			sh.MaxShardBytes(), sh.TableBytes(), budget)
	}
	return sh, pats
}

func TestShardedFindAllEquivalence(t *testing.T) {
	for _, fold := range []bool{false, true} {
		sh, pats := shardedFixture(t, fold)
		data := []byte(strings.Repeat("aaaaaaaabbbbbbbbxabcdxccccddddxdcba", 30))
		want := referenceScan(t, pats, fold, data)
		if len(want) == 0 {
			t.Fatal("fixture traffic has no matches")
		}
		assertMatchesEqual(t, "FindAll", sh.FindAll(data), want)
		if got := sh.Count(data); got != len(want) {
			t.Fatalf("Count = %d, want %d", got, len(want))
		}
		// Every prefix too, so chunk boundaries of the carry loop land
		// on every offset class.
		for n := 0; n <= len(data); n += 7 {
			assertMatchesEqual(t, "prefix", sh.FindAll(data[:n]), referenceScan(t, pats, fold, data[:n]))
		}
	}
}

func TestShardedChunkCarryBoundaries(t *testing.T) {
	// Matches straddling the ShardChunkBytes boundary must survive the
	// carry: plant one right across it.
	sh, pats := shardedFixture(t, false)
	data := make([]byte, ShardChunkBytes+64)
	for i := range data {
		data[i] = 'x'
	}
	copy(data[ShardChunkBytes-4:], []byte("aaaaaaaa")) // straddles
	copy(data[ShardChunkBytes+20:], []byte("dcba"))
	want := referenceScan(t, pats, false, data)
	if len(want) < 2 {
		t.Fatalf("planted %d matches", len(want))
	}
	assertMatchesEqual(t, "straddle", sh.FindAll(data), want)
}

// Duplicates straddling shards: build an explicit plan that forces two
// copies of the same pattern into different shards and check the
// merged stream still reports both global ids, exactly like the
// unsharded scan.
func TestShardedDuplicateStraddle(t *testing.T) {
	pats := toBytes([]string{"aaaa", "bbbb", "aaaa"})
	plan := [][]int{{0, 1}, {2}}
	var sh Sharded
	sh.Plan = plan
	for _, ids := range plan {
		sub := make([][]byte, len(ids))
		for i, id := range ids {
			sub[i] = pats[id]
		}
		sys, err := compose.NewSystem(sub, compose.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for slot, local := range sys.SlotPatterns {
			global := make([]int, len(local))
			for j, l := range local {
				global[j] = ids[l]
			}
			sys.SlotPatterns[slot] = global
		}
		eng, err := Compile(sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sh.Engines = append(sh.Engines, eng)
	}
	data := []byte("xxaaaaxxbbbbxxaaaa")
	want := referenceScan(t, pats, false, data)
	assertMatchesEqual(t, "duplicate straddle", sh.FindAll(data), want)
	// Both ids 0 and 2 must appear for every "aaaa" occurrence.
	var ids []int32
	for _, m := range sh.FindAll(data) {
		ids = append(ids, m.Pattern)
	}
	saw0, saw2 := false, false
	for _, id := range ids {
		saw0 = saw0 || id == 0
		saw2 = saw2 || id == 2
	}
	if !saw0 || !saw2 {
		t.Fatalf("duplicate ids lost: %v", ids)
	}
}

func TestShardedScanShardChunkDedupe(t *testing.T) {
	sh, pats := shardedFixture(t, false)
	data := []byte(strings.Repeat("aaaaaaaaccccddddabcd", 20))
	want := referenceScan(t, pats, false, data)
	// Shard x chunk work items (the parallel engine's unit):
	// overlap-prefixed pieces with dedupe reassemble to the exact match
	// set, one shard at a time.
	ov := sh.MaxPatternLen() - 1
	step := 37
	var perShard []dfa.Match
	for si := 0; si < sh.Shards(); si++ {
		for start := 0; start < len(data); start += step {
			end := min(start+step, len(data))
			pre := min(ov, start)
			perShard = append(perShard, sh.ScanShardChunk(si, data[start-pre:end], start-pre, pre)...)
		}
	}
	dfa.SortMatches(perShard)
	assertMatchesEqual(t, "ScanShardChunk", perShard, want)
}

func TestShardedImageRoundTrip(t *testing.T) {
	sh, pats := shardedFixture(t, true)
	img := sh.Bytes()
	back, err := ShardedFromBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards() != sh.Shards() {
		t.Fatalf("loaded %d shards, want %d", back.Shards(), sh.Shards())
	}
	if back.MaxPatternLen() != sh.MaxPatternLen() {
		t.Fatalf("MaxPatternLen %d, want %d", back.MaxPatternLen(), sh.MaxPatternLen())
	}
	data := []byte(strings.Repeat("AAAAAAAAbbbbBBBBccccDDDDabcd", 25))
	assertMatchesEqual(t, "loaded", back.FindAll(data), sh.FindAll(data))
	_ = pats

	// Corruption must be rejected, never panic.
	if _, err := ShardedFromBytes(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := ShardedFromBytes([]byte("CMKRN1\x00")); err == nil {
		t.Fatal("table magic accepted as sharded image")
	}
	for cut := 0; cut < len(img); cut += 11 {
		if _, err := ShardedFromBytes(img[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ShardedFromBytes(append(append([]byte(nil), img...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
