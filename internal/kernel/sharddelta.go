// Incremental sharded compilation: rebuild only the shards a
// dictionary edit actually touched. The shard planner is deterministic
// (a greedy walk over the reduced-lex-sorted dictionary), so after an
// edit the plan is recomputed cheaply and each planned shard's engine
// is reused from the previous build whenever its reuse fingerprint
// matches — a shard engine depends only on its members' pattern bytes,
// their global ids, the casefold flag, and the byte budget. Reused
// engines are the previous build's immutable values, and rebuilt ones
// run the same construction a cold build would, so the delta-compiled
// sharded engine is bit-identical to a cold CompileSharded.
package kernel

import (
	"crypto/sha256"
	"encoding/binary"
)

// fpSize is the shard fingerprint width. SHA-256 keeps accidental
// collisions out of the question: a collision would silently reuse an
// engine compiled for different patterns.
const fpSize = sha256.Size

// shardFingerprint hashes everything a shard engine's bytes depend on:
// the casefold flag and byte budget (they shape the reduction and the
// state budget), then per member pattern its global id, length, and
// bytes — ids included because the emitted tables bake global pattern
// ids into their out sets. Lengths are uvarint-framed so concatenation
// ambiguity is impossible.
func shardFingerprint(patterns [][]byte, ids []int, caseFold bool, budget int) [fpSize]byte {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	if caseFold {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	n := binary.PutUvarint(buf[:], uint64(budget))
	h.Write(buf[:n])
	for _, id := range ids {
		n = binary.PutUvarint(buf[:], uint64(id))
		h.Write(buf[:n])
		p := patterns[id]
		n = binary.PutUvarint(buf[:], uint64(len(p)))
		h.Write(buf[:n])
		h.Write(p)
	}
	var fp [fpSize]byte
	h.Sum(fp[:0])
	return fp
}

// CompileShardedDelta compiles the new dictionary into a sharded
// engine, reusing every shard engine of prev (built from prevPatterns
// under the same config) whose planned content is unchanged. It
// returns the engine plus a per-shard reuse mask for delta accounting.
// When prev is nil, was loaded from a serialized image (no plan), or
// the configs disagree on what matters, the cold path runs and the
// mask is all-false.
func CompileShardedDelta(patterns [][]byte, cfg ShardConfig, prev *Sharded, prevPatterns [][]byte) (*Sharded, []bool, error) {
	budget := cfg.MaxTableBytes
	if budget <= 0 {
		budget = DefaultMaxTableBytes
	}
	var prebuilt map[[fpSize]byte]*Engine
	if prev != nil {
		prebuilt = prev.ShardFingerprints(prevPatterns, cfg.CaseFold, budget, cfg.Workers)
	}
	sh, err := CompileShardedReusing(patterns, cfg, prebuilt)
	if err != nil {
		return nil, nil, err
	}
	reused := make([]bool, len(sh.Engines))
	if prebuilt != nil {
		for si := range sh.Engines {
			if donor, ok := prebuilt[sh.shardFP[si]]; ok && donor == sh.Engines[si] {
				reused[si] = true
			}
		}
	}
	return sh, reused, nil
}
