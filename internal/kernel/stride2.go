// Stride-2 scan rung: the kernel's answer to the load-to-use wall.
//
// The dense 1-byte loop issues one dependent table load per input
// byte, so its throughput is capped by the table's hit latency divided
// by one — interleaving hides some of it, but every lane still pays a
// full load per byte. Processing two symbols per transition halves the
// depth of the dependency chain: a pair table maps
// (state, class1, class2) -> next state in ONE load, so the serial
// chain costs one L1/L2 hit per TWO bytes (Bille's packed-string
// matching and Faro & Külekci's packed short-pattern matchers use the
// same trade: table footprint for fewer dependent loads).
//
// Geometry. The pair table reuses the 1-byte table's power-of-two row
// width W (>= Classes): a pair row holds W*W entries and the pair
// column index of bytes (b1, b2) is (class(b1) << log2(W)) | class(b2)
// — two independent byte-class loads, a shift and an OR, all off the
// critical path. A pair entry is the destination state's PAIR row
// index (state << 2*log2(W)) with the same FlagOut convention in bit
// 0. Pair rows are multiples of W*W >= 4, so the flag bit (and bit 1)
// are always free.
//
// Outputs. A dictionary hit can end on either byte of the pair: after
// consuming class1 (the intermediate state) or after consuming class2
// (the destination). The pair entry squashes both into one flag —
// FlagOut is set when EITHER state has a non-empty output set — and
// the rare flagged iteration replays the two bytes through the 1-byte
// table (the epilogue/verify step) to recover exactly which positions
// emit and what. The hot loop therefore stays two loads + mask per
// pair, and emitted (End, Pattern) output is byte-identical to the
// 1-byte loops, including matches ending on odd offsets.
//
// Odd lengths and cuts. A piece with an odd byte count finishes with
// one 1-byte step (the tail epilogue); a stream cut at any parity is
// safe because carried state is a DFA state, not a parity — each
// chunk re-pairs its own bytes from offset 0. The exhaustive split
// and stream-cut matrixes in stride2 tests pin this down.
//
// Budget. Pair tables cost States * W^2 * 4 bytes ON TOP of the dense
// 1-byte tables (the epilogue and the odd-tail step need them), and
// the sum must fit Options.MaxTableBytes. Over-budget dictionaries
// fall back to the plain 1-byte kernel automatically — the selection
// ladder is filter -> stride-2 -> dense kernel -> sharded -> stt.
package kernel

import (
	"fmt"

	"cellmatch/internal/dfa"
	"cellmatch/internal/fanout"
	"cellmatch/internal/interleave"
)

// AutoStride2MaxClasses gates the auto stride policy: beyond 64
// reduced classes a pair row is at least 64 KiB and the pair table
// rarely earns its cache footprint, so auto keeps the 1-byte loop and
// only an explicit Stride=2 builds pairs (budget permitting).
const AutoStride2MaxClasses = 64

// pairRow converts an encoded 1-byte row index to the same state's
// pair row index.
func (t *Table) pairRow(row uint32) uint32 {
	return (row >> t.shift) << t.pairShift
}

// byteRow converts an encoded pair row index back to the 1-byte row.
func (t *Table) byteRow(prow uint32) uint32 {
	return (prow >> t.pairShift) << t.shift
}

// PairSizeBytes is the pair table's memory footprint (0 when the
// stride-2 rung is not compiled in).
func (t *Table) PairSizeBytes() int { return len(t.Pair) * 4 }

// pairFits reports whether this table's pair geometry is even
// addressable: the pair row index of the last state, plus a full row,
// must stay clear of the uint32 flag bits.
func (t *Table) pairFits() bool {
	pairShift := 2 * t.shift
	return uint64(t.States)<<pairShift < 1<<31
}

// buildPair derives the pair table from the dense 1-byte table: entry
// (s, c1, c2) composes the two 1-byte transitions and squashes their
// output flags. Deriving from Entries (not the DFA) means a table
// loaded from its serialized image can build pairs identically.
// Padding cells (either class >= Classes) reset to the start state
// with no flag, like the 1-byte padding columns; they are unreachable
// because the byte-class map only yields real classes.
func (t *Table) buildPair() { t.buildPairW(1) }

// buildPairW is buildPair with the per-state emission split into
// contiguous state ranges across workers (fanout semantics). Pair rows
// are disjoint per state and derived from the immutable 1-byte entries,
// so the emitted table is identical at any worker count.
func (t *Table) buildPairW(workers int) {
	pairShift := 2 * t.shift
	pw := t.Width * t.Width
	pair := alignedWords(t.States * pw)
	startPair := (t.start >> t.shift) << pairShift
	fanout.ForRanges(t.States, workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			row := uint32(s) << t.shift
			prow := uint32(s) << pairShift
			for c1 := 0; c1 < t.Width; c1++ {
				e1 := t.Entries[row+uint32(c1)]
				midRow := e1 & rowMask
				for c2 := 0; c2 < t.Width; c2++ {
					idx := prow + uint32(c1)<<t.shift + uint32(c2)
					if c1 >= t.Classes || c2 >= t.Classes {
						pair[idx] = startPair
						continue
					}
					e2 := t.Entries[midRow+uint32(c2)]
					pe := ((e2 & rowMask) >> t.shift) << pairShift
					if (e1|e2)&FlagOut != 0 {
						pe |= FlagOut
					}
					pair[idx] = pe
				}
			}
		}
	})
	t.Pair = pair
	t.pairShift = pairShift
}

// withPair returns a view of the table whose pair-table presence
// matches want, never mutating the receiver: a table that already
// agrees is returned as-is; otherwise a shallow copy (sharing the
// immutable Entries and Outs) gains or drops its pair table. This is
// how the delta path adopts tables from a donor engine whose stride
// decision differed — the donor keeps scanning unchanged.
func (t *Table) withPair(want bool, workers int) *Table {
	if (t.Pair != nil) == want {
		return t
	}
	c := *t
	c.Pair = nil
	c.pairShift = 0
	if want {
		c.buildPairW(workers)
	}
	return &c
}

// emitPair is the flagged-iteration epilogue: replay bytes b1, b2 from
// the state owning pair row prow through the 1-byte table, emitting
// the output sets the squashed flag stood for. i is the piece-local
// offset of b1.
func (t *Table) emitPair(prow uint32, b1, b2 byte, i, base, dedupe int, sink *[]dfa.Match) {
	row := t.byteRow(prow)
	e1 := t.Entries[row+uint32(t.ByteClass[b1])]
	if e1&FlagOut != 0 {
		t.emit(e1, i+1, base, dedupe, sink)
	}
	e2 := t.Entries[(e1&rowMask)+uint32(t.ByteClass[b2])]
	if e2&FlagOut != 0 {
		t.emit(e2, i+2, base, dedupe, sink)
	}
}

// scanSerial2 is the single-stream stride-2 loop: one pair-table load
// per two input bytes, the squashed flag branching to the epilogue,
// and a final 1-byte step for odd lengths. Matches ending at local
// offsets <= dedupe are dropped, exactly like scanSerial.
func (t *Table) scanSerial2(piece []byte, base, dedupe int, sink *[]dfa.Match) {
	pair := t.Pair
	cls := &t.ByteClass
	shift := t.shift
	cur := t.pairRow(t.start)
	n := len(piece)
	i := 0
	for ; i+4 <= n; i += 4 {
		e := pair[cur+(uint32(cls[piece[i]])<<shift|uint32(cls[piece[i+1]]))]
		if e&FlagOut != 0 {
			t.emitPair(cur, piece[i], piece[i+1], i, base, dedupe, sink)
		}
		cur = e & rowMask
		e = pair[cur+(uint32(cls[piece[i+2]])<<shift|uint32(cls[piece[i+3]]))]
		if e&FlagOut != 0 {
			t.emitPair(cur, piece[i+2], piece[i+3], i+2, base, dedupe, sink)
		}
		cur = e & rowMask
	}
	for ; i+2 <= n; i += 2 {
		e := pair[cur+(uint32(cls[piece[i]])<<shift|uint32(cls[piece[i+1]]))]
		if e&FlagOut != 0 {
			t.emitPair(cur, piece[i], piece[i+1], i, base, dedupe, sink)
		}
		cur = e & rowMask
	}
	if i < n {
		e := t.Entries[t.byteRow(cur)+uint32(cls[piece[i]])]
		if e&FlagOut != 0 {
			t.emit(e, i+1, base, dedupe, sink)
		}
	}
}

// scanCarry2 is ScanCarry on the stride-2 rung: same carry contract
// (1-byte encoded rows in and out, so stream state is representation-
// independent), pair-table steps inside. An odd trailing byte takes
// one 1-byte step; chunk parity never leaks into the carried state.
func (t *Table) scanCarry2(piece []byte, cur uint32, emit func(pid int32, end int)) uint32 {
	pair := t.Pair
	cls := &t.ByteClass
	shift := t.shift
	pcur := t.pairRow(cur & rowMask)
	n := len(piece)
	i := 0
	for ; i+2 <= n; i += 2 {
		e := pair[pcur+(uint32(cls[piece[i]])<<shift|uint32(cls[piece[i+1]]))]
		if e&FlagOut != 0 {
			t.emitPairCarry(pcur, piece[i], piece[i+1], i, emit)
		}
		pcur = e & rowMask
	}
	row := t.byteRow(pcur)
	if i < n {
		e := t.Entries[row+uint32(cls[piece[i]])]
		if e&FlagOut != 0 {
			t.emitCarry(e, i+1, emit)
		}
		row = e & rowMask
	}
	return row
}

// emitPairCarry is emitPair for the carry (stream) path: offsets are
// 1-based piece-local ends, no dedupe window.
func (t *Table) emitPairCarry(prow uint32, b1, b2 byte, i int, emit func(pid int32, end int)) {
	row := t.byteRow(prow)
	e1 := t.Entries[row+uint32(t.ByteClass[b1])]
	if e1&FlagOut != 0 {
		t.emitCarry(e1, i+1, emit)
	}
	e2 := t.Entries[(e1&rowMask)+uint32(t.ByteClass[b2])]
	if e2&FlagOut != 0 {
		t.emitCarry(e2, i+2, emit)
	}
}

// scanInterleaved2 is the K-way lockstep loop at stride 2: each
// iteration advances every lane by one PAIR, so K pair-table loads
// are in flight while each lane's chain is half as deep as the 1-byte
// loop's. Lanes then drain their uneven tails (including the odd final
// byte) serially. Lane boundaries and overlap dedupe are identical to
// scanInterleaved, so the match union equals the sequential scan's.
func (t *Table) scanInterleaved2(data []byte, chunks []interleave.Chunk, sink *[]dfa.Match) {
	k := len(chunks)
	if k > MaxInterleave {
		panic("kernel: more chunks than interleave lanes")
	}
	var cur [MaxInterleave]uint32
	minLen := -1
	for l := 0; l < k; l++ {
		cur[l] = t.pairRow(t.start)
		if n := chunks[l].Len(); minLen < 0 || n < minLen {
			minLen = n
		}
	}
	pair := t.Pair
	cls := &t.ByteClass
	shift := t.shift
	pairEnd := minLen &^ 1
	for p := 0; p < pairEnd; p += 2 {
		for l := 0; l < k; l++ {
			c := chunks[l]
			b1, b2 := data[c.Start+p], data[c.Start+p+1]
			e := pair[cur[l]+(uint32(cls[b1])<<shift|uint32(cls[b2]))]
			if e&FlagOut != 0 {
				t.emitPair(cur[l], b1, b2, p, c.Start, c.Overlap, sink)
			}
			cur[l] = e & rowMask
		}
	}
	// Uneven tails: per-byte on the 1-byte table — tails are at most a
	// chunk-length difference plus one parity byte, so the simple loop
	// costs noise.
	for l := 0; l < k; l++ {
		c := chunks[l]
		row := t.byteRow(cur[l])
		for p := pairEnd; p < c.Len(); p++ {
			e := t.Entries[row+uint32(cls[data[c.Start+p]])]
			if e&FlagOut != 0 {
				t.emit(e, p+1, c.Start, c.Overlap, sink)
			}
			row = e & rowMask
		}
	}
}

// countSerial2 counts hits at stride 2: the flagged epilogue counts
// output-set sizes instead of materializing matches.
func (t *Table) countSerial2(piece []byte, dedupe int) int {
	pair := t.Pair
	cls := &t.ByteClass
	shift := t.shift
	cur := t.pairRow(t.start)
	n := len(piece)
	count := 0
	i := 0
	for ; i+2 <= n; i += 2 {
		e := pair[cur+(uint32(cls[piece[i]])<<shift|uint32(cls[piece[i+1]]))]
		if e&FlagOut != 0 {
			count += t.countPair(cur, piece[i], piece[i+1], i, dedupe)
		}
		cur = e & rowMask
	}
	if i < n {
		e := t.Entries[t.byteRow(cur)+uint32(cls[piece[i]])]
		if e&FlagOut != 0 && i >= dedupe {
			count += len(t.Outs[e>>t.shift])
		}
	}
	return count
}

// countPair is the counting epilogue: replay the pair on the 1-byte
// table and sum the output sets whose end offsets clear the dedupe
// window.
func (t *Table) countPair(prow uint32, b1, b2 byte, i, dedupe int) int {
	row := t.byteRow(prow)
	count := 0
	e1 := t.Entries[row+uint32(t.ByteClass[b1])]
	if e1&FlagOut != 0 && i >= dedupe {
		count += len(t.Outs[e1>>t.shift])
	}
	e2 := t.Entries[(e1&rowMask)+uint32(t.ByteClass[b2])]
	if e2&FlagOut != 0 && i+1 >= dedupe {
		count += len(t.Outs[e2>>t.shift])
	}
	return count
}

// countInterleaved2 is scanInterleaved2 with counters: lockstep pair
// steps, then per-byte tails.
func (t *Table) countInterleaved2(data []byte, chunks []interleave.Chunk) int {
	k := len(chunks)
	if k > MaxInterleave {
		panic("kernel: more chunks than interleave lanes")
	}
	var cur [MaxInterleave]uint32
	minLen := -1
	for l := 0; l < k; l++ {
		cur[l] = t.pairRow(t.start)
		if n := chunks[l].Len(); minLen < 0 || n < minLen {
			minLen = n
		}
	}
	pair := t.Pair
	cls := &t.ByteClass
	shift := t.shift
	count := 0
	pairEnd := minLen &^ 1
	for p := 0; p < pairEnd; p += 2 {
		for l := 0; l < k; l++ {
			c := chunks[l]
			b1, b2 := data[c.Start+p], data[c.Start+p+1]
			e := pair[cur[l]+(uint32(cls[b1])<<shift|uint32(cls[b2]))]
			if e&FlagOut != 0 {
				count += t.countPair(cur[l], b1, b2, p, c.Overlap)
			}
			cur[l] = e & rowMask
		}
	}
	for l := 0; l < k; l++ {
		c := chunks[l]
		row := t.byteRow(cur[l])
		for p := pairEnd; p < c.Len(); p++ {
			e := t.Entries[row+uint32(cls[data[c.Start+p]])]
			if e&FlagOut != 0 && p >= c.Overlap {
				count += len(t.Outs[e>>t.shift])
			}
			row = e & rowMask
		}
	}
	return count
}

// validatePair checks the pair table's structural invariants against
// the 1-byte table it was derived from: every entry must equal the
// composition of the two 1-byte transitions, with the flag equal to
// the OR of their flags, and padding cells must reset cleanly.
func (t *Table) validatePair() error {
	if t.Pair == nil {
		return nil
	}
	pw := t.Width * t.Width
	if len(t.Pair) != t.States*pw {
		return fmt.Errorf("kernel: pair table has %d entries, want %d", len(t.Pair), t.States*pw)
	}
	for s := 0; s < t.States; s++ {
		row := uint32(s) << t.shift
		prow := uint32(s) << t.pairShift
		for c1 := 0; c1 < t.Width; c1++ {
			e1 := t.Entries[row+uint32(c1)]
			for c2 := 0; c2 < t.Width; c2++ {
				got := t.Pair[prow+uint32(c1)<<t.shift+uint32(c2)]
				if c1 >= t.Classes || c2 >= t.Classes {
					if got != t.pairRow(t.start) {
						return fmt.Errorf("kernel: pair padding (%d,%d,%d) = %#x", s, c1, c2, got)
					}
					continue
				}
				e2 := t.Entries[(e1&rowMask)+uint32(c2)]
				want := ((e2 & rowMask) >> t.shift) << t.pairShift
				if (e1|e2)&FlagOut != 0 {
					want |= FlagOut
				}
				if got != want {
					return fmt.Errorf("kernel: pair entry (%d,%d,%d) = %#x, want %#x", s, c1, c2, got, want)
				}
			}
		}
	}
	return nil
}
