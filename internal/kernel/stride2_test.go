package kernel

import (
	"testing"

	"cellmatch/internal/dfa"
)

// stridePatterns produce matches that end on both parities, overlap,
// and nest — the cases the squashed pair flag and its epilogue must
// reconstruct exactly.
var stridePatterns = []string{"virus", "rus w", "worm", "us", "w", "abcde"}

func compileStride(t *testing.T, patterns []string, o Options) *Engine {
	t.Helper()
	sys := testSystem(t, patterns, false)
	eng, err := Compile(sys, o)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// The auto policy must build pair tables for a qualifying dictionary,
// and the forced strides must land where they point.
func TestStrideSelection(t *testing.T) {
	auto := compileStride(t, stridePatterns, Options{})
	if auto.Stride() != 2 {
		t.Fatalf("auto stride = %d, want 2 (tiny dictionary passes every gate)", auto.Stride())
	}
	if auto.PairBytes() <= 0 {
		t.Fatal("stride-2 engine reports no pair bytes")
	}
	one := compileStride(t, stridePatterns, Options{Stride: 1})
	if one.Stride() != 1 || one.PairBytes() != 0 {
		t.Fatalf("stride 1 = (%d, %d pair bytes), want (1, 0)", one.Stride(), one.PairBytes())
	}
	two := compileStride(t, stridePatterns, Options{Stride: 2})
	if two.Stride() != 2 {
		t.Fatalf("forced stride 2 = %d", two.Stride())
	}
	if _, err := Compile(testSystem(t, stridePatterns, false), Options{Stride: 3}); err == nil {
		t.Fatal("stride 3 accepted")
	}
	if _, err := Compile(testSystem(t, stridePatterns, false), Options{Stride: -1}); err == nil {
		t.Fatal("stride -1 accepted")
	}
}

// A pair table that cannot fit the budget degrades to the 1-byte
// kernel — never to a lower rung, never to an error — for both the
// auto and the forced policy.
func TestStrideBudgetFallback(t *testing.T) {
	sys := testSystem(t, stridePatterns, false)
	dense, err := Compile(sys, Options{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A budget that admits the dense table but not dense+pair.
	budget := dense.TableBytes() + dense.Tables[0].States*dense.Tables[0].Width*dense.Tables[0].Width*4/2
	for _, stride := range []int{0, 2} {
		eng, err := Compile(testSystem(t, stridePatterns, false), Options{Stride: stride, MaxTableBytes: budget})
		if err != nil {
			t.Fatalf("stride %d with tight budget: %v", stride, err)
		}
		if eng.Stride() != 1 {
			t.Fatalf("stride %d with tight budget compiled stride %d, want 1-byte fallback", stride, eng.Stride())
		}
	}
}

// Auto refuses pair tables that spill past L2Budget (they lose to the
// 1-byte kernel on the scan's serial chain), while an explicit
// Stride 2 still builds them as long as MaxTableBytes admits them.
func TestStrideAutoL2Gate(t *testing.T) {
	// ~600 distinct patterns drive the state count high enough that
	// states * width^2 * 4 clears 1 MiB.
	patterns := make([]string, 0, 600)
	for i := 0; i < 600; i++ {
		patterns = append(patterns, string([]byte{
			'a' + byte(i%26), 'a' + byte((i/26)%26), 'a' + byte((i/676)%26),
			'x', 'a' + byte(i%26), 'q', 'a' + byte((i/26)%26),
		}))
	}
	auto := compileStride(t, patterns, Options{MaxTableBytes: 64 << 20})
	forced := compileStride(t, patterns, Options{Stride: 2, MaxTableBytes: 64 << 20})
	if forced.Stride() != 2 {
		t.Fatalf("forced stride = %d, want 2", forced.Stride())
	}
	if forced.PairBytes() <= L2Budget {
		t.Fatalf("fixture pair table %d bytes fits L2Budget %d; grow the dictionary", forced.PairBytes(), L2Budget)
	}
	if auto.Stride() != 1 {
		t.Fatalf("auto built a %d-byte pair table past L2Budget", forced.PairBytes())
	}
}

// Auto also refuses alphabets wider than AutoStride2MaxClasses; an
// explicit Stride 2 does not.
func TestStrideAutoClassGate(t *testing.T) {
	// 70+ distinct bytes -> more classes than the auto gate admits.
	var wide []string
	for b := byte(' '); b < ' '+70; b++ {
		wide = append(wide, string([]byte{b, b + 1, b}))
	}
	auto := compileStride(t, wide, Options{})
	if auto.Tables[0].Classes <= AutoStride2MaxClasses {
		t.Fatalf("fixture has %d classes, need > %d", auto.Tables[0].Classes, AutoStride2MaxClasses)
	}
	if auto.Stride() != 1 {
		t.Fatalf("auto stride = %d with %d classes, want 1", auto.Stride(), auto.Tables[0].Classes)
	}
	forced := compileStride(t, wide, Options{Stride: 2, MaxTableBytes: 64 << 20})
	if forced.Stride() != 2 {
		t.Fatalf("forced stride = %d, want 2", forced.Stride())
	}
}

// The stride-2 rung must agree with the 1-byte kernel for every lane
// count and odd/even input length: FindAllK, FindAllStride1, Count.
func TestStride2FindAllEquivalence(t *testing.T) {
	s2 := compileStride(t, stridePatterns, Options{Stride: 2})
	s1 := compileStride(t, stridePatterns, Options{Stride: 1})
	if err := s2.Tables[0].Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 3, 17, 100, 101, 1023, 1024, 4097} {
		data := testInput(n, int64(n)+7)
		want := s1.FindAll(data)
		if got := s2.FindAll(data); !matchesEqual(got, want) {
			t.Fatalf("n=%d: stride-2 FindAll diverged: %d vs %d matches", n, len(got), len(want))
		}
		if got := s2.FindAllStride1(data); !matchesEqual(got, want) {
			t.Fatalf("n=%d: FindAllStride1 on stride-2 engine diverged", n)
		}
		for k := 1; k <= 8; k++ {
			if got := s2.FindAllK(data, k); !matchesEqual(got, want) {
				t.Fatalf("n=%d k=%d: stride-2 interleaved diverged: %d vs %d matches", n, k, len(got), len(want))
			}
		}
		if got, wantN := s2.Count(data), len(want); got != wantN {
			t.Fatalf("n=%d: stride-2 Count = %d, want %d", n, got, wantN)
		}
	}
}

// ScanCarry at stride 2 must emit the same hits as the 1-byte carry
// loop for every cut position and parity, and the carried row must be
// identical (1-byte encoded) so stream state can cross strides.
func TestStride2ScanCarryCuts(t *testing.T) {
	s2 := compileStride(t, stridePatterns, Options{Stride: 2})
	s1 := compileStride(t, stridePatterns, Options{Stride: 1})
	t2, t1 := s2.Tables[0], s1.Tables[0]
	data := testInput(257, 99)
	type hit struct {
		pid int32
		end int
	}
	run := func(tab *Table, cuts []int) ([]hit, uint32) {
		var hits []hit
		row := tab.StartRow()
		prev := 0
		for _, cut := range append(cuts, len(data)) {
			base := prev
			row = tab.ScanCarry(data[prev:cut], row, func(pid int32, end int) {
				hits = append(hits, hit{pid, base + end})
			})
			prev = cut
		}
		return hits, row
	}
	wantHits, wantRow := run(t1, nil)
	for cut := 0; cut <= len(data); cut++ {
		gotHits, gotRow := run(t2, []int{cut})
		if gotRow != wantRow {
			t.Fatalf("cut=%d: carried row %#x, want %#x", cut, gotRow, wantRow)
		}
		if len(gotHits) != len(wantHits) {
			t.Fatalf("cut=%d: %d hits, want %d", cut, len(gotHits), len(wantHits))
		}
		for i := range gotHits {
			if gotHits[i] != wantHits[i] {
				t.Fatalf("cut=%d hit %d: %+v, want %+v", cut, i, gotHits[i], wantHits[i])
			}
		}
	}
	// Chunk-size sweep: every chunking of the stream yields the same.
	for size := 1; size <= 16; size++ {
		var cuts []int
		for c := size; c < len(data); c += size {
			cuts = append(cuts, c)
		}
		gotHits, gotRow := run(t2, cuts)
		if gotRow != wantRow || len(gotHits) != len(wantHits) {
			t.Fatalf("chunk=%d: %d hits row %#x, want %d hits row %#x",
				size, len(gotHits), gotRow, len(wantHits), wantRow)
		}
	}
}

// Validate must reject a corrupted pair table: flipped flag, wrong
// destination, dirtied padding.
func TestValidateCatchesPairCorruption(t *testing.T) {
	corrupt := func(mutate func(tab *Table)) error {
		eng := compileStride(t, stridePatterns, Options{Stride: 2})
		mutate(eng.Tables[0])
		return eng.Tables[0].Validate()
	}
	if err := corrupt(func(tab *Table) { tab.Pair[0] ^= FlagOut }); err == nil {
		t.Fatal("flipped pair flag passed Validate")
	}
	if err := corrupt(func(tab *Table) {
		tab.Pair[1] += 1 << tab.pairShift
	}); err == nil {
		t.Fatal("wrong pair destination passed Validate")
	}
	if err := corrupt(func(tab *Table) {
		// Last column of row 0 is padding when Classes < Width.
		if tab.Classes == tab.Width {
			t.Skip("no padding columns")
		}
		tab.Pair[uint32(tab.Width*tab.Width-1)] = 1 << tab.pairShift
	}); err == nil {
		t.Fatal("dirty pair padding passed Validate")
	}
	if err := corrupt(func(tab *Table) {
		tab.Pair = tab.Pair[:len(tab.Pair)-1]
	}); err == nil {
		t.Fatal("truncated pair table passed Validate")
	}
}

// The flagged-pair epilogue must dedupe matches inside overlap windows
// exactly like the 1-byte loop: ScanChunk with a dedupe window on both
// rungs, every window size.
func TestStride2ChunkDedupe(t *testing.T) {
	s2 := compileStride(t, stridePatterns, Options{Stride: 2})
	s1 := compileStride(t, stridePatterns, Options{Stride: 1})
	data := testInput(300, 5)
	for dedupe := 0; dedupe <= 12; dedupe++ {
		want := s1.ScanChunk(data, 1000, dedupe)
		got := s2.ScanChunk(data, 1000, dedupe)
		if !matchesEqual(got, want) {
			t.Fatalf("dedupe=%d: stride-2 chunk scan diverged: %d vs %d", dedupe, len(got), len(want))
		}
		if got := s2.ScanChunkStride1(data, 1000, dedupe); !matchesEqual(got, want) {
			t.Fatalf("dedupe=%d: ScanChunkStride1 diverged", dedupe)
		}
	}
	_ = dfa.Match{}
}
