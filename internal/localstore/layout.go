// Package localstore manages the 256 KB software-controlled scratchpad
// of a Cell SPE and reproduces the budget arithmetic of the paper's
// Figure 3: how many DFA states fit in a tile for a given input-buffer
// size.
//
// The three cases of Figure 3 are exact fixed points of this arithmetic:
//
//	buffers 2 x 16 KB -> 1520 states (190 KB STT)
//	buffers 2 x  8 KB -> 1648 states (206 KB STT)
//	buffers 2 x  4 KB -> 1712 states (214 KB STT)
//
// with 34 KB reserved for code and stack and 128 bytes per STT row
// (32 symbols x 4 bytes).
package localstore

import (
	"fmt"
	"sort"
)

// Size is the local store capacity in bytes.
const Size = 256 * 1024

// CodeAndStack is the paper's reservation for program text and stack.
const CodeAndStack = 34 * 1024

// Region is a named, aligned slice of the local store.
type Region struct {
	Name string
	Addr uint32
	Len  uint32
}

// End returns the first address past the region.
func (r Region) End() uint32 { return r.Addr + r.Len }

// Layout is an allocation plan for one SPE's local store.
type Layout struct {
	regions []Region
	next    uint32
}

// New returns an empty layout.
func New() *Layout { return &Layout{} }

// align rounds addr up to the given power-of-two boundary.
func align(addr, boundary uint32) uint32 {
	return (addr + boundary - 1) &^ (boundary - 1)
}

// Alloc reserves n bytes aligned to the given boundary (power of two,
// >= 16: the DMA alignment minimum). It returns the region or an error
// if the local store is exhausted.
func (l *Layout) Alloc(name string, n, boundary uint32) (Region, error) {
	if boundary < 16 || boundary&(boundary-1) != 0 {
		return Region{}, fmt.Errorf("localstore: bad alignment %d for %q", boundary, name)
	}
	addr := align(l.next, boundary)
	if addr+n > Size || addr+n < addr {
		return Region{}, fmt.Errorf("localstore: %q needs %d bytes at %#x, exceeds %d KB store",
			name, n, addr, Size/1024)
	}
	r := Region{Name: name, Addr: addr, Len: n}
	l.regions = append(l.regions, r)
	l.next = addr + n
	return r, nil
}

// Used returns the total bytes consumed including alignment padding.
func (l *Layout) Used() uint32 { return l.next }

// Free returns the remaining bytes.
func (l *Layout) Free() uint32 { return Size - l.next }

// Regions returns a copy of the allocated regions in address order.
func (l *Layout) Regions() []Region {
	out := make([]Region, len(l.regions))
	copy(out, l.regions)
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Lookup finds a region by name.
func (l *Layout) Lookup(name string) (Region, bool) {
	for _, r := range l.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// TilePlan is the resolved local-store budget for one DFA tile,
// the quantity Figure 3 tabulates.
type TilePlan struct {
	BufBytes     uint32 // one input buffer (two are allocated)
	RowBytes     uint32 // STT row stride (symbols x 4)
	MaxStates    int    // states that fit
	STTBytes     uint32 // MaxStates x RowBytes
	CodeStack    uint32
	InputBuffers uint32 // 2 x BufBytes
}

// PlanTile computes the maximum DFA size for a tile with two input
// buffers of bufBytes each and rows of rowBytes (which must be a power
// of two so that state pointers have free low bits).
func PlanTile(bufBytes, rowBytes uint32) (TilePlan, error) {
	if rowBytes == 0 || rowBytes&(rowBytes-1) != 0 {
		return TilePlan{}, fmt.Errorf("localstore: STT row size %d not a power of two", rowBytes)
	}
	if bufBytes%16 != 0 || bufBytes == 0 {
		return TilePlan{}, fmt.Errorf("localstore: buffer size %d not DMA-aligned", bufBytes)
	}
	avail := int64(Size) - int64(CodeAndStack) - 2*int64(bufBytes)
	if avail < int64(rowBytes) {
		return TilePlan{}, fmt.Errorf("localstore: buffers of %d KB leave no room for an STT", bufBytes/1024)
	}
	states := avail / int64(rowBytes)
	return TilePlan{
		BufBytes:     bufBytes,
		RowBytes:     rowBytes,
		MaxStates:    int(states),
		STTBytes:     uint32(states) * rowBytes,
		CodeStack:    CodeAndStack,
		InputBuffers: 2 * bufBytes,
	}, nil
}

// Figure3Cases returns the paper's three tabulated layouts in order.
func Figure3Cases() []TilePlan {
	var out []TilePlan
	for _, kb := range []uint32{16, 8, 4} {
		p, err := PlanTile(kb*1024, 128)
		if err != nil {
			panic(err) // fixed inputs; cannot fail
		}
		out = append(out, p)
	}
	return out
}

// BuildTileLayout allocates the concrete regions of a tile plan in the
// order the paper draws them: STT first, input buffers, then code+stack.
// The STT is 128-byte aligned so every row is 128-byte aligned, the
// condition for the pointer/flag encoding and for peak DMA bandwidth.
func BuildTileLayout(p TilePlan) (*Layout, error) {
	l := New()
	if _, err := l.Alloc("stt", p.STTBytes, 128); err != nil {
		return nil, err
	}
	if _, err := l.Alloc("input0", p.BufBytes, 128); err != nil {
		return nil, err
	}
	if _, err := l.Alloc("input1", p.BufBytes, 128); err != nil {
		return nil, err
	}
	if _, err := l.Alloc("code+stack", p.CodeStack, 16); err != nil {
		return nil, err
	}
	return l, nil
}

// ReplacementPlan is the Section 6 layout: two half-size STT slots that
// are double-buffered while the dictionary streams through.
type ReplacementPlan struct {
	SlotBytes  uint32 // one STT slot
	SlotStates int    // states per slot
	BufBytes   uint32
}

// PlanReplacement computes the double-STT layout of Section 6. The
// paper quotes ~95-100 KB per slot, roughly 800 states, with the same
// 34 KB code+stack reservation and two input buffers.
func PlanReplacement(bufBytes, rowBytes uint32) (ReplacementPlan, error) {
	base, err := PlanTile(bufBytes, rowBytes)
	if err != nil {
		return ReplacementPlan{}, err
	}
	slotStates := base.MaxStates / 2
	return ReplacementPlan{
		SlotBytes:  uint32(slotStates) * rowBytes,
		SlotStates: slotStates,
		BufBytes:   bufBytes,
	}, nil
}
