package localstore

import (
	"testing"
	"testing/quick"
)

// TestFigure3Exact verifies the paper's Figure 3 cases are exact
// consequences of the budget arithmetic: 1520/1648/1712 states and
// 190/206/214 KB STTs for 16/8/4 KB input buffers.
func TestFigure3Exact(t *testing.T) {
	cases := Figure3Cases()
	want := []struct {
		bufKB  uint32
		states int
		sttKB  uint32
	}{
		{16, 1520, 190},
		{8, 1648, 206},
		{4, 1712, 214},
	}
	if len(cases) != len(want) {
		t.Fatalf("got %d cases", len(cases))
	}
	for i, w := range want {
		c := cases[i]
		if c.BufBytes != w.bufKB*1024 {
			t.Errorf("case %d: buf %d", i, c.BufBytes)
		}
		if c.MaxStates != w.states {
			t.Errorf("case %d: states %d want %d", i, c.MaxStates, w.states)
		}
		if c.STTBytes != w.sttKB*1024 {
			t.Errorf("case %d: STT %d bytes want %d KB", i, c.STTBytes, w.sttKB)
		}
	}
}

func TestBudgetClosure(t *testing.T) {
	// STT + both buffers + code/stack must exactly fill the 256 KB
	// store in every Figure 3 case (the paper's diagram sums to 256 KB).
	for i, c := range Figure3Cases() {
		total := c.STTBytes + c.InputBuffers + c.CodeStack
		if total != Size {
			t.Errorf("case %d: budget sums to %d, want %d", i, total, Size)
		}
	}
}

func TestPlanTileErrors(t *testing.T) {
	if _, err := PlanTile(16*1024, 96); err == nil {
		t.Fatal("non-power-of-two row accepted")
	}
	if _, err := PlanTile(0, 128); err == nil {
		t.Fatal("zero buffer accepted")
	}
	if _, err := PlanTile(7, 128); err == nil {
		t.Fatal("unaligned buffer accepted")
	}
	if _, err := PlanTile(120*1024, 128); err == nil {
		t.Fatal("oversized buffers accepted")
	}
}

func TestBuildTileLayout(t *testing.T) {
	p, err := PlanTile(16*1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	l, err := BuildTileLayout(p)
	if err != nil {
		t.Fatal(err)
	}
	stt, ok := l.Lookup("stt")
	if !ok {
		t.Fatal("no stt region")
	}
	if stt.Addr%128 != 0 {
		t.Fatalf("STT not 128-byte aligned: %#x", stt.Addr)
	}
	if stt.Len != p.STTBytes {
		t.Fatalf("STT length %d", stt.Len)
	}
	// Regions must not overlap and must fit.
	regs := l.Regions()
	for i := 1; i < len(regs); i++ {
		if regs[i].Addr < regs[i-1].End() {
			t.Fatalf("overlap between %q and %q", regs[i-1].Name, regs[i].Name)
		}
	}
	if l.Used() > Size {
		t.Fatalf("used %d exceeds store", l.Used())
	}
	if regs[len(regs)-1].End() != Size {
		t.Fatalf("layout does not exactly fill the store: ends at %d", regs[len(regs)-1].End())
	}
}

func TestAllocAlignment(t *testing.T) {
	l := New()
	a, err := l.Alloc("a", 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr != 0 {
		t.Fatalf("first alloc at %d", a.Addr)
	}
	b, err := l.Alloc("b", 64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr != 128 {
		t.Fatalf("aligned alloc at %d, want 128", b.Addr)
	}
	if _, err := l.Alloc("bad", 16, 24); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
}

func TestAllocExhaustion(t *testing.T) {
	l := New()
	if _, err := l.Alloc("big", Size, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Alloc("more", 16, 16); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if l.Free() != 0 {
		t.Fatalf("free = %d", l.Free())
	}
}

func TestLookupMissing(t *testing.T) {
	l := New()
	if _, ok := l.Lookup("ghost"); ok {
		t.Fatal("found nonexistent region")
	}
}

func TestPlanReplacement(t *testing.T) {
	// Section 6: slots of roughly 95-100 KB, ~800 states.
	p, err := PlanReplacement(16*1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotStates < 700 || p.SlotStates > 900 {
		t.Fatalf("slot states = %d, want ~800", p.SlotStates)
	}
	kb := p.SlotBytes / 1024
	if kb < 90 || kb > 100 {
		t.Fatalf("slot = %d KB, want ~95", kb)
	}
	// Two slots plus buffers plus code must fit.
	total := 2*p.SlotBytes + 2*p.BufBytes + CodeAndStack
	if total > Size {
		t.Fatalf("replacement layout overflows: %d", total)
	}
}

// Property: for any valid buffer size, the plan never overflows the
// store and uses every whole row available.
func TestPlanTileProperty(t *testing.T) {
	f := func(rawKB uint8) bool {
		kb := uint32(rawKB%64) + 1 // 1..64 KB buffers
		p, err := PlanTile(kb*1024, 128)
		if err != nil {
			// Acceptable only when buffers leave no STT room.
			return 2*kb*1024+CodeAndStack+128 > Size
		}
		total := p.STTBytes + p.InputBuffers + p.CodeStack
		if total > Size {
			return false
		}
		// Adding one more row must overflow.
		return total+p.RowBytes > Size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
