// Package mfc models the Memory Flow Controller attached to each SPE:
// the asynchronous DMA engine through which all local-store <-> main
// memory traffic moves.
//
// The model captures the MFC properties the paper's schedules depend on:
//
//   - commands are asynchronous: the SPU keeps computing while DMA is
//     in flight (the basis of double buffering, Figure 5);
//   - each command belongs to one of 32 tag groups; the SPU waits on a
//     tag mask to synchronize;
//   - a single command moves at most 16 KB; larger requests (the 95 KB
//     STT chunks of Figure 8) are modeled as DMA lists that pay the
//     command overhead once per 16 KB piece;
//   - addresses and sizes must be 16-byte aligned (128-byte alignment
//     gives peak bandwidth; the alignment checks mirror the rules the
//     paper's implementation had to follow);
//   - the command queue holds at most 16 entries; enqueueing into a
//     full queue is a model bug and panics.
package mfc

import (
	"fmt"

	"cellmatch/internal/eib"
	"cellmatch/internal/sim"
)

// QueueDepth is the MFC command-queue capacity.
const QueueDepth = 16

// MaxTags is the number of DMA tag groups.
const MaxTags = 32

// Command describes one queued DMA request.
type Command struct {
	Tag   int
	Dir   eib.Direction
	Bytes int64
	// Block is the per-piece payload used for bandwidth efficiency
	// accounting (<= 16 KB).
	Block int64
	// LocalAddr and MainAddr are kept for alignment checking and
	// debugging; the model does not move real bytes (the functional
	// simulation copies data separately, at zero model cost, because
	// payload content does not affect timing).
	LocalAddr uint32
	MainAddr  uint64

	transfer *eib.Transfer
}

// MFC is one SPE's DMA engine.
type MFC struct {
	SPE int

	eng *sim.Engine
	bus *eib.Bus

	inFlight map[int]int // tag -> outstanding commands
	queued   int
	waiters  []waiter

	// Issued and Completed count commands for schedule assertions.
	Issued    int
	Completed int
}

type waiter struct {
	mask uint32
	fn   func()
}

// New creates the MFC for one SPE.
func New(eng *sim.Engine, bus *eib.Bus, spe int) *MFC {
	return &MFC{SPE: spe, eng: eng, bus: bus, inFlight: make(map[int]int)}
}

// AlignmentError reports a DMA parameter violation.
type AlignmentError struct {
	What string
	Val  uint64
}

func (e *AlignmentError) Error() string {
	return fmt.Sprintf("mfc: %s not 16-byte aligned: %#x", e.What, e.Val)
}

// checkAlign validates the Cell DMA alignment rules.
func checkAlign(local uint32, main uint64, n int64) error {
	if local%16 != 0 {
		return &AlignmentError{"local address", uint64(local)}
	}
	if main%16 != 0 {
		return &AlignmentError{"main address", main}
	}
	if n%16 != 0 {
		return &AlignmentError{"size", uint64(n)}
	}
	return nil
}

// Get enqueues a main-memory -> local-store transfer.
func (m *MFC) Get(tag int, local uint32, main uint64, n int64) error {
	return m.enqueue(tag, eib.Get, local, main, n)
}

// Put enqueues a local-store -> main-memory transfer.
func (m *MFC) Put(tag int, local uint32, main uint64, n int64) error {
	return m.enqueue(tag, eib.Put, local, main, n)
}

func (m *MFC) enqueue(tag int, dir eib.Direction, local uint32, main uint64, n int64) error {
	if tag < 0 || tag >= MaxTags {
		return fmt.Errorf("mfc: tag %d out of range", tag)
	}
	if n <= 0 {
		return fmt.Errorf("mfc: non-positive DMA size %d", n)
	}
	if err := checkAlign(local, main, n); err != nil {
		return err
	}
	if m.queued >= QueueDepth {
		panic("mfc: command queue overflow (model bug: more than 16 outstanding commands)")
	}
	block := n
	if block > 16*1024 {
		block = 16 * 1024 // DMA-list pieces
	}
	m.queued++
	m.inFlight[tag]++
	m.Issued++
	m.bus.Start(m.SPE, dir, n, block, func(t *eib.Transfer) {
		m.queued--
		m.inFlight[tag]--
		if m.inFlight[tag] == 0 {
			delete(m.inFlight, tag)
		}
		m.Completed++
		m.wake()
	})
	return nil
}

// Outstanding reports commands in flight for the given tag.
func (m *MFC) Outstanding(tag int) int { return m.inFlight[tag] }

// QueueLen reports total queued commands.
func (m *MFC) QueueLen() int { return m.queued }

// WaitTagMask invokes fn as soon as no command with a tag in mask is
// outstanding (the MFC "read tag-group status" with all-complete
// semantics). If the condition already holds, fn runs via a zero-delay
// event to preserve causal ordering.
func (m *MFC) WaitTagMask(mask uint32, fn func()) {
	if m.maskClear(mask) {
		m.eng.After(0, fn)
		return
	}
	m.waiters = append(m.waiters, waiter{mask, fn})
}

// TagMask builds a mask from tag numbers.
func TagMask(tags ...int) uint32 {
	var m uint32
	for _, t := range tags {
		m |= 1 << uint(t)
	}
	return m
}

func (m *MFC) maskClear(mask uint32) bool {
	for tag, n := range m.inFlight {
		if n > 0 && mask&(1<<uint(tag)) != 0 {
			return false
		}
	}
	return true
}

func (m *MFC) wake() {
	if len(m.waiters) == 0 {
		return
	}
	still := m.waiters[:0]
	var ready []waiter
	for _, w := range m.waiters {
		if m.maskClear(w.mask) {
			ready = append(ready, w)
		} else {
			still = append(still, w)
		}
	}
	m.waiters = still
	for _, w := range ready {
		w.fn()
	}
}
