package mfc

import (
	"strings"
	"testing"
)

func TestAlignmentErrorMessage(t *testing.T) {
	e := &AlignmentError{What: "local address", Val: 0x13}
	if msg := e.Error(); !strings.Contains(msg, "local address") || !strings.Contains(msg, "0x13") {
		t.Fatalf("message = %q", msg)
	}
}

func TestPutCompletes(t *testing.T) {
	eng, m := newTestMFC()
	if err := m.Put(1, 0, 0, 16384); err != nil {
		t.Fatal(err)
	}
	done := false
	m.WaitTagMask(TagMask(1), func() { done = true })
	eng.Run()
	if !done || m.Completed != 1 {
		t.Fatalf("put: done=%v completed=%d", done, m.Completed)
	}
}
