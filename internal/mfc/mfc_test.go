package mfc

import (
	"testing"

	"cellmatch/internal/eib"
	"cellmatch/internal/sim"
)

func newTestMFC() (*sim.Engine, *MFC) {
	eng := sim.New()
	bus := eib.NewBus(eng, eib.Default())
	return eng, New(eng, bus, 0)
}

func TestGetCompletes(t *testing.T) {
	eng, m := newTestMFC()
	if err := m.Get(0, 0, 0, 16384); err != nil {
		t.Fatal(err)
	}
	done := false
	m.WaitTagMask(TagMask(0), func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("wait never fired")
	}
	if m.Issued != 1 || m.Completed != 1 {
		t.Fatalf("issued=%d completed=%d", m.Issued, m.Completed)
	}
	if eng.Now() <= 0 {
		t.Fatal("transfer took zero time")
	}
}

func TestAlignmentErrors(t *testing.T) {
	_, m := newTestMFC()
	cases := []struct {
		local uint32
		main  uint64
		n     int64
	}{
		{1, 0, 16},
		{0, 8, 16},
		{0, 0, 17},
	}
	for i, c := range cases {
		if err := m.Get(0, c.local, c.main, c.n); err == nil {
			t.Fatalf("case %d: expected alignment error", i)
		}
	}
}

func TestBadTagAndSize(t *testing.T) {
	_, m := newTestMFC()
	if err := m.Get(-1, 0, 0, 16); err == nil {
		t.Fatal("negative tag accepted")
	}
	if err := m.Get(32, 0, 0, 16); err == nil {
		t.Fatal("tag 32 accepted")
	}
	if err := m.Get(0, 0, 0, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestTagGroupsIndependent(t *testing.T) {
	eng, m := newTestMFC()
	// Tag 1 carries a large transfer, tag 2 a small one; waiting on
	// tag 2 must fire before tag 1 completes.
	var order []int
	if err := m.Get(1, 0, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := m.Get(2, 4096, 4096, 1024); err != nil {
		t.Fatal(err)
	}
	m.WaitTagMask(TagMask(2), func() { order = append(order, 2) })
	m.WaitTagMask(TagMask(1), func() { order = append(order, 1) })
	eng.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("completion order = %v", order)
	}
}

func TestWaitMultipleTags(t *testing.T) {
	eng, m := newTestMFC()
	m.Get(0, 0, 0, 4096)
	m.Get(1, 8192, 8192, 65536)
	fired := sim.Time(-1)
	m.WaitTagMask(TagMask(0, 1), func() { fired = eng.Now() })
	eng.Run()
	if fired < 0 {
		t.Fatal("combined wait never fired")
	}
	if fired != eng.Now() {
		t.Fatalf("combined wait fired at %v before all complete at %v", fired, eng.Now())
	}
}

func TestWaitOnIdleTagFiresImmediately(t *testing.T) {
	eng, m := newTestMFC()
	fired := false
	m.WaitTagMask(TagMask(5), func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("idle-tag wait never fired")
	}
	if eng.Now() != 0 {
		t.Fatalf("idle wait advanced time to %v", eng.Now())
	}
}

func TestQueueOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("queue overflow did not panic")
		}
	}()
	_, m := newTestMFC()
	for i := 0; i <= QueueDepth; i++ {
		m.Get(0, 0, 0, 16384)
	}
}

func TestOutstandingAndQueueLen(t *testing.T) {
	eng, m := newTestMFC()
	m.Get(3, 0, 0, 16384)
	m.Get(3, 16384, 16384, 16384)
	if m.Outstanding(3) != 2 {
		t.Fatalf("outstanding = %d", m.Outstanding(3))
	}
	if m.QueueLen() != 2 {
		t.Fatalf("queue len = %d", m.QueueLen())
	}
	eng.Run()
	if m.Outstanding(3) != 0 || m.QueueLen() != 0 {
		t.Fatal("not drained")
	}
}

func TestLargeTransferUsesDMAList(t *testing.T) {
	// A 95 KB STT chunk (Figure 8) moves as one command stream; its
	// duration must be close to 95K/bandwidth, not one 16K piece.
	eng, m := newTestMFC()
	var done sim.Time
	if err := m.Get(0, 0, 0, 96*1024); err != nil {
		t.Fatal(err)
	}
	m.WaitTagMask(TagMask(0), func() { done = eng.Now() })
	eng.Run()
	// Alone on the bus at ~7 GB/s: 98304/7e9 = 14.0 us.
	us := done.Micros()
	if us < 13.0 || us > 15.5 {
		t.Fatalf("96KB DMA list took %.2f us, want ~14", us)
	}
}

func TestTagMaskHelper(t *testing.T) {
	if TagMask(0) != 1 || TagMask(1, 3) != 0b1010 {
		t.Fatal("TagMask arithmetic")
	}
}

func TestManySequentialTransfers(t *testing.T) {
	eng, m := newTestMFC()
	count := 0
	var next func()
	next = func() {
		if count >= 50 {
			return
		}
		count++
		if err := m.Get(0, 0, 0, 4096); err != nil {
			t.Fatal(err)
		}
		m.WaitTagMask(TagMask(0), next)
	}
	next()
	eng.Run()
	if count != 50 {
		t.Fatalf("count = %d", count)
	}
	if m.Completed != 50 {
		t.Fatalf("completed = %d", m.Completed)
	}
}
