package parallel

import (
	"bytes"
	"sync/atomic"
	"testing"

	"cellmatch/internal/filter"
	"cellmatch/internal/kernel"
)

// filterFor builds the skip-scan front-end from the same patterns and
// reduction the system compiled with.
func filterFor(t *testing.T, patterns []string, sysRedPatterns []string) *filter.Filter {
	t.Helper()
	sys := mustSystem(t, sysRedPatterns)
	bs := make([][]byte, len(patterns))
	for i, p := range patterns {
		bs[i] = []byte(p)
	}
	f, err := filter.Build(bs, sys.Red)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestScanFilteredEquivalence: Options.Filter must be invisible in the
// output on every engine (stt scratch path, dense kernel, sharded) for
// chunk sizes that cut through matches, windows, and verify segments —
// including chunks smaller than the filter window.
func TestScanFilteredEquivalence(t *testing.T) {
	sys := mustSystem(t, testDict)
	f := filterFor(t, testDict, testDict)
	data := repeatedText(4096)
	want := sequential(t, sys, data)
	if len(want) == 0 {
		t.Fatal("fixture has no matches")
	}
	eng, err := kernel.Compile(sys, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bs := make([][]byte, len(testDict))
	for i, p := range testDict {
		bs[i] = []byte(p)
	}
	sharded, err := kernel.CompileSharded(bs, kernel.ShardConfig{
		CaseFold: true, MaxTableBytes: 1 << 10, MaxShards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]Options{
		"stt":     {Filter: f},
		"kernel":  {Filter: f, Engine: eng},
		"sharded": {Filter: f, Sharded: sharded},
	}
	for name, base := range engines {
		for _, chunk := range []int{1, 2, 3, 7, 64, 500, 4096, 9000} {
			o := base
			o.Workers = 3
			o.ChunkBytes = chunk
			got, err := Scan(sys, data, o)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s chunk %d: %d matches, want %d", name, chunk, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s chunk %d: match %d = %+v, want %+v", name, chunk, i, got[i], want[i])
				}
			}
			rd, err := ScanReader(sys, bytes.NewReader(data), o)
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, want, rd)
		}
	}
}

// TestScanFilteredSkipCounter: the skip counter must advance exactly
// once per chunk even when the sharded engine fans one task per
// (shard, chunk) — the shared segment provider computes (and counts)
// once and every shard unit reuses it.
func TestScanFilteredSkipCounter(t *testing.T) {
	// Long patterns over input that contains none of them: every
	// window dies immediately, so skips are near-maximal.
	dict := []string{"VIRUSSIGNATURE", "WORMSIGNATURES"}
	sys := mustSystem(t, dict)
	f := filterFor(t, dict, dict)
	data := bytes.Repeat([]byte("benign lowercase traffic 0123456789 "), 200)
	var adhoc, pooled atomic.Uint64
	o := Options{Filter: f, FilterSkipped: &adhoc, Workers: 2, ChunkBytes: 512}
	if _, err := Scan(sys, data, o); err != nil {
		t.Fatal(err)
	}
	if adhoc.Load() == 0 {
		t.Fatal("no windows skipped on clean input")
	}
	// Sharded fan-out (one unit per shard) must not multiply the count:
	// re-scan with a sharded engine and compare against the ad-hoc run.
	bs := make([][]byte, len(dict))
	for i, p := range dict {
		bs[i] = []byte(p)
	}
	sharded, err := kernel.CompileSharded(bs, kernel.ShardConfig{
		CaseFold: true, MaxTableBytes: 1 << 11, MaxShards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() < 2 {
		t.Fatalf("fixture needs >= 2 shards, got %d", sharded.Shards())
	}
	o = Options{Filter: f, FilterSkipped: &pooled, Sharded: sharded, Workers: 2, ChunkBytes: 512}
	if _, err := Scan(sys, data, o); err != nil {
		t.Fatal(err)
	}
	if pooled.Load() != adhoc.Load() {
		t.Fatalf("sharded fan-out inflated the skip counter: %d vs %d", pooled.Load(), adhoc.Load())
	}
}

// TestScanManyFiltered: the batch-coalescing primitive must stay
// payload-identical with the filter live.
func TestScanManyFiltered(t *testing.T) {
	sys := mustSystem(t, testDict)
	f := filterFor(t, testDict, testDict)
	data := repeatedText(1500)
	payloads := [][]byte{data[:500], nil, data[500:900], data[900:]}
	got, err := ScanMany(sys, payloads, Options{Filter: f, Workers: 2, ChunkBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		want := sequential(t, sys, p)
		assertSameMatches(t, want, got[i])
	}
}
