// Package parallel is the host-CPU analogue of the paper's Figure 6a
// composition: one DFA tiled across many workers scanning disjoint
// input slices. Where the paper assigns input portions to SPEs, this
// engine assigns fixed-size chunks to goroutines; where the paper's
// tiles overlap their portions by the longest pattern length minus
// one, each chunk here is re-scanned from a speculative root start
// over the same bounded overlap window, in the style of speculative
// parallel DFA matching (Ko et al.): every worker guesses the
// root state at its chunk boundary and the guess is reconciled by the
// overlap prefix, whose matches are discarded as duplicates of the
// previous chunk.
//
// For Aho-Corasick automata the speculation is exact, not heuristic:
// a match ending at offset e depends only on the MaxPatternLen bytes
// before e, so scanning from the root over an overlap of
// MaxPatternLen-1 bytes recovers every boundary-straddling match.
// Results are therefore byte-for-byte identical to the sequential
// scan — same match set, same (End, Pattern) order — for every
// worker count and chunk size, which the differential fuzz target
// FuzzParallelEquivalence asserts.
package parallel

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/filter"
	"cellmatch/internal/kernel"
)

// DefaultChunkBytes is the per-worker slice size when Options leaves
// it zero: 64 KiB keeps per-chunk state in L1/L2 while amortizing the
// overlap re-scan (a few dozen bytes) to noise.
const DefaultChunkBytes = 64 << 10

// Options tune the engine. The zero value means "one chunk per
// 64 KiB, one worker per CPU".
type Options struct {
	// Workers is the goroutine pool size. <=0 means GOMAXPROCS.
	Workers int
	// ChunkBytes is the per-worker slice size. <=0 means
	// DefaultChunkBytes. Chunks smaller than the longest pattern are
	// legal (the overlap window is clamped to the available prefix).
	ChunkBytes int
	// Engine, when non-nil, scans chunks with the dense compiled
	// kernel (raw bytes, reduction baked in) instead of the
	// reduce + dfa.FindAll path. Results are identical.
	Engine *kernel.Engine
	// Compressed, when non-nil, scans chunks with the compressed-row
	// tier (bitmap rows + default-pointer chains). Takes precedence
	// over Engine. Results are identical.
	Compressed *kernel.Compressed
	// Sharded, when non-nil, scans with the sharded multi-kernel
	// engine: the task set becomes one work item per (shard, chunk), so
	// each worker keeps a single shard's tables cache-hot while
	// scanning — the paper's one-shard-per-SPE schedule mapped onto the
	// pool. Takes precedence over Engine and Compressed. Results are
	// identical.
	Sharded *kernel.Sharded
	// Pool, when non-nil, submits chunk jobs to a persistent shared
	// worker pool instead of spawning goroutines per call — the
	// long-running-server mode, where many concurrent scans coalesce
	// onto one fixed set of scanning threads. Workers is ignored for
	// execution (the pool's size governs) but still bounds ScanReader's
	// batch sizing.
	Pool *Pool
	// Filter, when non-nil, runs the skip-scan front-end over each
	// chunk piece (overlap prefix included): only candidate segments
	// pass through the configured engine, and the usual overlap dedupe
	// applies afterwards, so results stay byte-identical to the
	// unfiltered scan. Windows straddling a chunk boundary re-form in
	// the next chunk's overlap-prefixed view, exactly like matches do.
	Filter *filter.Filter
	// FilterSkipped, when non-nil, accumulates the window positions
	// the filter skipped (the owning matcher's WindowsSkipped counter).
	// Each chunk is filtered once, shared across the sharded engine's
	// per-shard work items, so the stat counts every chunk exactly once.
	FilterSkipped *atomic.Uint64
	// ForceStride1 pins Engine to its 1-byte scan loops even when its
	// 2-byte-stride pair tables are live — the per-request stride=1
	// opt-out. Results are identical either way.
	ForceStride1 bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = DefaultChunkBytes
	}
	return o
}

// overlapOf is the reconciliation window: the longest dictionary
// entry minus one, the same bound compose.Scan uses for tile groups.
func overlapOf(sys *compose.System) int {
	if sys.MaxPatternLen > 0 {
		return sys.MaxPatternLen - 1
	}
	return 0
}

// Scan matches data against the composed system using a chunked
// speculative scan, returning global-offset matches sorted by
// (End, Pattern) — the exact output of compose.System.Scan.
func Scan(sys *compose.System, data []byte, opts Options) ([]dfa.Match, error) {
	o := opts.withDefaults()
	chunks := scanChunks(sys, data, overlapOf(sys), o)
	out := mergeChunks(chunks, 0, 0)
	return out, nil
}

// scanChunks splits raw data into ChunkBytes-sized pieces and scans
// them on a pool of Workers goroutines (or Options.Pool's shared
// workers). Alphabet reduction happens per chunk inside each worker
// (it is a byte-wise map, so chunking commutes with it), keeping the
// whole pipeline parallel and the extra memory O(Workers x ChunkBytes)
// instead of O(input). Each chunk fans into one work item per shard
// unit (see shardUnits); results[i*units+u] holds chunk i / unit u's
// matches in data's coordinates, already deduplicated against chunk
// i-1's overlap. The flat slice order is irrelevant downstream —
// mergeChunks re-sorts globally.
func scanChunks(sys *compose.System, data []byte, overlap int, o Options) [][]dfa.Match {
	n := len(data)
	if n == 0 {
		return nil
	}
	nchunks := (n + o.ChunkBytes - 1) / o.ChunkBytes
	units := o.shardUnits()
	results := make([][]dfa.Match, nchunks*units)
	tasks := make([]func(), 0, nchunks*units)
	for i := 0; i < nchunks; i++ {
		start := i * o.ChunkBytes
		end := min(start+o.ChunkBytes, n)
		ov := min(overlap, start)
		segs := o.segmentProvider(data[start-ov : end])
		for u := 0; u < units; u++ {
			i, u := i, u
			tasks = append(tasks, func() {
				results[i*units+u] = scanPiece(sys, data[start-ov:end], start-ov, ov, o, u, segs)
			})
		}
	}
	runTasks(o, tasks)
	return results
}

// segmentProvider returns a compute-once view of the filter's verify
// segments for one piece, shared by every shard unit of the chunk so
// the front-end scan runs once per chunk, not once per (shard, chunk)
// work item. The skip counter is credited exactly once, by whichever
// unit computes first. Nil when the filter is off.
func (o Options) segmentProvider(piece []byte) func() []filter.Segment {
	if o.Filter == nil {
		return nil
	}
	return sync.OnceValue(func() []filter.Segment {
		segs, skipped := o.Filter.Segments(piece)
		if o.FilterSkipped != nil {
			o.FilterSkipped.Add(uint64(skipped))
		}
		return segs
	})
}

// shardUnits is how many work items one input chunk fans into: one per
// shard on the sharded engine (each worker holds one shard's tables),
// one otherwise.
func (o Options) shardUnits() int {
	if o.Sharded != nil {
		return o.Sharded.Shards()
	}
	return 1
}

// scanPiece scans one overlap-prefixed piece from the speculative root
// on whichever engine is configured, returning data-coordinate matches
// with the ov-byte overlap prefix deduplicated. unit selects the shard
// on the sharded engine (callers fan one task per shard) and is
// ignored otherwise; segs is the chunk's shared segment provider (nil
// when the filter is off).
func scanPiece(sys *compose.System, piece []byte, base, ov int, o Options, unit int, segs func() []filter.Segment) []dfa.Match {
	if segs != nil {
		return scanPieceFiltered(sys, piece, base, ov, o, unit, segs)
	}
	return scanPieceEngine(sys, piece, base, ov, o, unit)
}

// scanPieceEngine is the unfiltered per-piece scan on the configured
// engine.
func scanPieceEngine(sys *compose.System, piece []byte, base, ov int, o Options, unit int) []dfa.Match {
	if o.Sharded != nil {
		return o.Sharded.ScanShardChunk(unit, piece, base, ov)
	}
	if o.Compressed != nil {
		// Compressed tables always step one byte per transition, so the
		// stride-1 pin is a no-op here.
		return o.Compressed.ScanChunk(piece, base, ov)
	}
	if o.Engine != nil {
		// The kernel consumes raw bytes (reduction baked into its
		// byte→class map): no scratch copy at all.
		if o.ForceStride1 {
			return o.Engine.ScanChunkStride1(piece, base, ov)
		}
		return o.Engine.ScanChunk(piece, base, ov)
	}
	scratch := getScratch(len(piece))
	defer putScratch(scratch)
	sys.Red.Apply(*scratch, piece)
	return scanChunk(sys, *scratch, base, ov)
}

// scanPieceFiltered verifies only the piece's candidate segments, each
// from the root. Any match fully inside the piece starts at a
// candidate and lies wholly inside one segment (the filter's
// containment guarantee applied to the piece as an isolated text), so
// the segment union reports exactly the matches the whole-piece scan
// would; the overlap dedupe then drops matches ending inside the
// ov-byte prefix as usual.
func scanPieceFiltered(sys *compose.System, piece []byte, base, ov int, o Options, unit int, segments func() []filter.Segment) []dfa.Match {
	var out []dfa.Match
	for _, sg := range segments() {
		ms := scanPieceEngine(sys, piece[sg.Start:sg.End], base+sg.Start, 0, o, unit)
		for _, mt := range ms {
			if mt.End-base <= ov {
				continue // ends inside the reconciliation window
			}
			out = append(out, mt)
		}
	}
	return out
}

// runTasks executes the chunk jobs: on the shared pool when one is
// configured, otherwise on up to Workers ad-hoc goroutines (the
// one-shot mode), inline when there is no parallelism to exploit.
func runTasks(o Options, tasks []func()) {
	if o.Pool != nil {
		o.Pool.Run(tasks)
		return
	}
	workers := min(o.Workers, len(tasks))
	if workers <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				tasks[i]()
			}
		}()
	}
	wg.Wait()
}

// scanChunk runs every series slot over one reduced piece (overlap
// prefix included) from the speculative root state, reusing the same
// dfa.FindAll the sequential path is built on. Matches ending inside
// the ov-byte overlap prefix are duplicates of the previous chunk and
// dropped; the rest are shifted by base into data coordinates.
func scanChunk(sys *compose.System, piece []byte, base, ov int) []dfa.Match {
	var out []dfa.Match
	for slot, d := range sys.Slots {
		ids := sys.SlotPatterns[slot]
		for _, m := range d.FindAll(piece) {
			if m.End <= ov {
				continue // ends inside the reconciliation window
			}
			out = append(out, dfa.Match{
				Pattern: int32(ids[m.Pattern]),
				End:     base + m.End,
			})
		}
	}
	return out
}

// mergeChunks flattens per-chunk results into one sorted slice,
// dropping matches whose local End is <= dedupe (already reported by
// a previous reader batch) and shifting the rest by base.
func mergeChunks(chunks [][]dfa.Match, base, dedupe int) []dfa.Match {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]dfa.Match, 0, total)
	for _, c := range chunks {
		for _, m := range c {
			if m.End <= dedupe {
				continue
			}
			m.End += base
			out = append(out, m)
		}
	}
	dfa.SortMatches(out)
	return out
}

// ScanMany scans every payload independently — one result slice per
// payload, each byte-identical to Scan over that payload alone — but
// flattens all payloads' chunk jobs into a single task set executed in
// one pass over the worker pool. This is the batch-coalescing
// primitive behind the server's /scan/batch endpoint: many small
// requests cost one pool submission instead of one goroutine fan-out
// each. Payloads larger than ChunkBytes are still chunked with the
// usual overlap reconciliation.
func ScanMany(sys *compose.System, payloads [][]byte, opts Options) ([][]dfa.Match, error) {
	o := opts.withDefaults()
	overlap := overlapOf(sys)
	units := o.shardUnits()
	out := make([][]dfa.Match, len(payloads))
	perPayload := make([][][]dfa.Match, len(payloads))
	var tasks []func()
	for pi, data := range payloads {
		n := len(data)
		if n == 0 {
			continue
		}
		nchunks := (n + o.ChunkBytes - 1) / o.ChunkBytes
		perPayload[pi] = make([][]dfa.Match, nchunks*units)
		for ci := 0; ci < nchunks; ci++ {
			start := ci * o.ChunkBytes
			end := min(start+o.ChunkBytes, n)
			ov := min(overlap, start)
			segs := o.segmentProvider(data[start-ov : end])
			for u := 0; u < units; u++ {
				pi, ci, u, data := pi, ci, u, data
				tasks = append(tasks, func() {
					perPayload[pi][ci*units+u] = scanPiece(sys, data[start-ov:end], start-ov, ov, o, u, segs)
				})
			}
		}
	}
	runTasks(o, tasks)
	for pi := range payloads {
		out[pi] = mergeChunks(perPayload[pi], 0, 0)
	}
	return out, nil
}

// ScanReader scans r in batches of Workers x ChunkBytes, carrying the
// last MaxPatternLen-1 bytes between batches so matches spanning a
// batch boundary are recovered exactly once. The returned matches are
// identical to Scan over the reader's whole contents; memory is
// O(Workers x ChunkBytes + matches), not O(input).
func ScanReader(sys *compose.System, r io.Reader, opts Options) ([]dfa.Match, error) {
	o := opts.withDefaults()
	overlap := overlapOf(sys)
	batch := o.Workers * o.ChunkBytes
	if batch/o.Workers != o.ChunkBytes { // overflow
		batch = o.ChunkBytes
	}
	buf := make([]byte, overlap+batch)
	carry := 0 // bytes of buf holding the previous batch's tail
	base := 0  // global offset of buf[0]
	var out []dfa.Match
	for {
		n, err := io.ReadFull(r, buf[carry:])
		if n == 0 {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("parallel: read: %w", err)
			}
		}
		data := buf[:carry+n]
		chunks := scanChunks(sys, data, overlap, o)
		out = append(out, mergeChunks(chunks, base, carry)...)
		keep := min(overlap, len(data))
		copy(buf, data[len(data)-keep:])
		base += len(data) - keep
		carry = keep
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("parallel: read: %w", err)
		}
	}
	return out, nil
}
