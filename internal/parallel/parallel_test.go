package parallel

import (
	"bytes"
	"io"
	"testing"
	"testing/iotest"

	"cellmatch/internal/compose"
	"cellmatch/internal/dfa"
	"cellmatch/internal/kernel"
)

func mustSystem(t *testing.T, patterns []string) *compose.System {
	t.Helper()
	bs := make([][]byte, len(patterns))
	for i, p := range patterns {
		bs[i] = []byte(p)
	}
	sys, err := compose.NewSystem(bs, compose.Config{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func sequential(t *testing.T, sys *compose.System, data []byte) []dfa.Match {
	t.Helper()
	want, err := sys.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertSameMatches(t *testing.T, want, got []dfa.Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("match count: sequential %d, parallel %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("match %d: sequential %+v, parallel %+v", i, want[i], got[i])
		}
	}
}

// repeatedText builds input with matches planted at known strides so
// chunk boundaries of every size cut through some of them.
func repeatedText(n int) []byte {
	const motif = "xx abra cadabra ABRACADABRA junk bytes in between ra "
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString(motif)
	}
	return b.Bytes()[:n]
}

var testDict = []string{"abra", "cadabra", "abracadabra", "ra", "junk"}

// TestScanKernelEngine drives the worker pool over the dense kernel:
// chunks are scanned in place (raw bytes, no reduction scratch), and
// results must stay byte-identical to the sequential scan for chunk
// sizes that cut through planted matches. Runs clean under -race.
func TestScanKernelEngine(t *testing.T) {
	sys := mustSystem(t, testDict)
	eng, err := kernel.Compile(sys, kernel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := repeatedText(10000)
	want := sequential(t, sys, data)
	for _, chunk := range []int{1, 2, 3, 7, 64, 1000, 20000} {
		opts := Options{Workers: 4, ChunkBytes: chunk, Engine: eng}
		got, err := Scan(sys, data, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, want, got)
		streamed, err := ScanReader(sys, bytes.NewReader(data), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, want, streamed)
	}
}

func TestScanMatchesSequential(t *testing.T) {
	sys := mustSystem(t, testDict)
	data := repeatedText(10000)
	want := sequential(t, sys, data)
	if len(want) == 0 {
		t.Fatal("test input has no matches")
	}
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		for _, chunk := range []int{0, 1, 2, 5, 64, 1000, 4096, 1 << 20} {
			got, err := Scan(sys, data, Options{Workers: workers, ChunkBytes: chunk})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d chunk=%d: got %d matches, want %d",
					workers, chunk, len(got), len(want))
			}
			assertSameMatches(t, want, got)
		}
	}
}

func TestScanChunkSmallerThanPattern(t *testing.T) {
	// "abracadabra" is 11 bytes; 4-byte chunks force every match to
	// straddle boundaries and exercise overlap clamping at chunk 0.
	sys := mustSystem(t, testDict)
	data := []byte("abracadabra abracadabra")
	want := sequential(t, sys, data)
	got, err := Scan(sys, data, Options{Workers: 4, ChunkBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, want, got)
}

func TestScanEmptyAndTiny(t *testing.T) {
	sys := mustSystem(t, testDict)
	for _, data := range [][]byte{nil, {}, []byte("a"), []byte("abra")} {
		want := sequential(t, sys, data)
		got, err := Scan(sys, data, Options{Workers: 8, ChunkBytes: 3})
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, want, got)
	}
}

func TestScanMultiSlotDictionary(t *testing.T) {
	// A dictionary large enough to partition into several series
	// slots: per-slot pattern id remapping must survive the merge.
	var pats []string
	for i := 0; i < 26; i++ {
		for j := 0; j < 26; j++ {
			pats = append(pats, string([]byte{
				byte('a' + i), byte('a' + j), byte('a' + (i+j)%26),
				byte('a' + i), byte('a' + j), byte('a' + (i+j)%26),
				byte('a' + i), byte('a' + j),
			}))
		}
	}
	bs := make([][]byte, len(pats))
	for i, p := range pats {
		bs[i] = []byte(p)
	}
	sys, err := compose.NewSystem(bs, compose.Config{MaxStatesPerTile: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Slots) < 2 {
		t.Fatalf("want a multi-slot system, got %d slots", len(sys.Slots))
	}
	data := bytes.Repeat([]byte("aabaabaab zzyzzyzzy mnymnymny "), 300)
	want := sequential(t, sys, data)
	if len(want) == 0 {
		t.Fatal("no matches planted")
	}
	got, err := Scan(sys, data, Options{Workers: 5, ChunkBytes: 97})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, want, got)
}

func TestScanReaderMatchesScan(t *testing.T) {
	sys := mustSystem(t, testDict)
	data := repeatedText(50000)
	want := sequential(t, sys, data)
	for _, opts := range []Options{
		{},
		{Workers: 1, ChunkBytes: 100},
		{Workers: 4, ChunkBytes: 7},
		{Workers: 3, ChunkBytes: 4096},
	} {
		got, err := ScanReader(sys, bytes.NewReader(data), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, want, got)
	}
}

func TestScanReaderDribbledInput(t *testing.T) {
	// One-byte reads force many partial batches; OneByteReader also
	// exercises the io.ErrUnexpectedEOF path of io.ReadFull.
	sys := mustSystem(t, testDict)
	data := repeatedText(3000)
	want := sequential(t, sys, data)
	got, err := ScanReader(sys, iotest.OneByteReader(bytes.NewReader(data)), Options{
		Workers: 2, ChunkBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, want, got)
}

func TestScanReaderEmpty(t *testing.T) {
	sys := mustSystem(t, testDict)
	got, err := ScanReader(sys, bytes.NewReader(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty reader produced %d matches", len(got))
	}
}

func TestScanReaderPropagatesError(t *testing.T) {
	sys := mustSystem(t, testDict)
	boom := iotest.ErrReader(io.ErrClosedPipe)
	if _, err := ScanReader(sys, boom, Options{}); err == nil {
		t.Fatal("reader error swallowed")
	}
	// An error after some data must also surface.
	r := io.MultiReader(bytes.NewReader(repeatedText(1000)), boom)
	if _, err := ScanReader(sys, r, Options{Workers: 2, ChunkBytes: 64}); err == nil {
		t.Fatal("mid-stream reader error swallowed")
	}
}

// TestScanConcurrentUse runs many Scans over one shared system at
// once: the engine must be race-clean under `go test -race` with
// read-only shared state.
func TestScanConcurrentUse(t *testing.T) {
	sys := mustSystem(t, testDict)
	data := repeatedText(20000)
	want := sequential(t, sys, data)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			got, err := Scan(sys, data, Options{Workers: 3, ChunkBytes: 512 + g})
			if err == nil && len(got) != len(want) {
				err = io.ErrShortBuffer
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers < 1 {
		t.Fatalf("default workers %d", o.Workers)
	}
	if o.ChunkBytes != DefaultChunkBytes {
		t.Fatalf("default chunk %d", o.ChunkBytes)
	}
	o = Options{Workers: -3, ChunkBytes: -1}.withDefaults()
	if o.Workers < 1 || o.ChunkBytes != DefaultChunkBytes {
		t.Fatalf("negative options not normalized: %+v", o)
	}
}
