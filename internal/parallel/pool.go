package parallel

import (
	"runtime"
	"sync"
)

// Pool is a persistent worker pool for chunk-scan jobs: the shared-pool
// mode of the engine. Where Scan spawns goroutines per call — fine for
// a CLI, wasteful for a server handling thousands of small requests —
// a Pool keeps Workers goroutines alive for the process lifetime and
// every scan submits its chunk jobs to them, so concurrent requests
// coalesce onto one fixed set of scanning threads (the host analog of
// the paper's fixed SPE allotment: the tiles are provisioned once and
// traffic is fed to them, not the other way around).
//
// A Pool is safe for concurrent use. Submitting callers never block on
// a saturated pool: jobs that cannot be enqueued immediately run
// inline on the submitting goroutine, which bounds latency under
// overload and makes deadlock impossible even if a job itself submits
// more jobs.
type Pool struct {
	jobs    chan func()
	workers int
	wg      sync.WaitGroup
	once    sync.Once
}

// NewPool starts a pool of workers goroutines (<=0 means GOMAXPROCS).
// Call Close to release them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		jobs:    make(chan func(), workers*4),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers after the queue drains. Jobs submitted via
// Run after Close run inline on the submitting goroutine, so a racing
// scan still completes correctly.
func (p *Pool) Close() {
	p.once.Do(func() { close(p.jobs) })
	p.wg.Wait()
}

// Run executes every task and returns when all have completed. Tasks
// are enqueued to the pool workers; when the queue is full (or the
// pool is closed) the submitting goroutine runs the task itself, so
// Run never blocks on submission and overload degrades to inline
// scanning instead of queue collapse. While waiting, the submitting
// goroutine help-executes queued jobs (its own or other callers'), so
// nested Run calls from inside pool jobs make progress instead of
// deadlocking the fixed worker set.
func (p *Pool) Run(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		wrapped := func() {
			defer wg.Done()
			t()
		}
		if !p.trySubmit(wrapped) {
			wrapped()
		}
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		case job, ok := <-p.jobs:
			if !ok {
				// Pool closed and queue empty: the remaining tasks are
				// running on workers draining out; just wait.
				<-done
				return
			}
			job()
		}
	}
}

// trySubmit enqueues without blocking; false means the caller must run
// the job inline (queue full or pool closed).
func (p *Pool) trySubmit(job func()) (ok bool) {
	defer func() {
		if recover() != nil { // send on closed channel: pool shut down
			ok = false
		}
	}()
	select {
	case p.jobs <- job:
		return true
	default:
		return false
	}
}

// scratchPool recycles reduction buffers across chunk jobs on the
// stt/dfa path (the kernel engine scans raw bytes and needs none).
// Pointer-to-slice entries keep Put allocation-free (staticcheck
// SA6002).
var scratchPool = sync.Pool{New: func() any { return new([]byte) }}

func getScratch(n int) *[]byte {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putScratch(p *[]byte) {
	scratchPool.Put(p)
}
