package parallel

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellmatch/internal/compose"
	"cellmatch/internal/workload"
)

func poolTestSystem(t *testing.T) *compose.System {
	t.Helper()
	sys, err := compose.NewSystem(workload.SignatureDictionary(), compose.Config{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func poolTestTraffic(t *testing.T, n int, seed int64) []byte {
	t.Helper()
	data, _, err := workload.Traffic(workload.TrafficConfig{
		Bytes: n, MatchEvery: 4 << 10, Dictionary: workload.SignatureDictionary(), Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A pool-executed scan must be byte-identical to the sequential and
// ad-hoc-goroutine scans for every chunk size.
func TestPoolScanEquivalence(t *testing.T) {
	sys := poolTestSystem(t)
	data := poolTestTraffic(t, 1<<18, 11)
	want, err := Scan(sys, data, Options{Workers: 1, ChunkBytes: len(data)})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()
	for _, chunk := range []int{1 << 10, 7 << 10, 64 << 10, 1 << 20} {
		got, err := Scan(sys, data, Options{ChunkBytes: chunk, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: pool scan diverged: %d vs %d matches", chunk, len(got), len(want))
		}
	}
}

// Many goroutines sharing one pool must each get correct results — the
// server's steady state.
func TestPoolConcurrentScans(t *testing.T) {
	sys := poolTestSystem(t)
	pool := NewPool(3)
	defer pool.Close()
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := poolTestTraffic(t, 96<<10, int64(100+c))
			want, err := Scan(sys, data, Options{Workers: 1, ChunkBytes: len(data)})
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 4; i++ {
				got, err := Scan(sys, data, Options{ChunkBytes: 8 << 10, Pool: pool})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("client %d iter %d: diverged", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// ScanMany's per-payload results must match independent Scans, across
// payload sizes spanning sub-chunk to multi-chunk, with and without a
// pool.
func TestScanManyEquivalence(t *testing.T) {
	sys := poolTestSystem(t)
	payloads := [][]byte{
		poolTestTraffic(t, 128, 1),
		{},
		poolTestTraffic(t, 5000, 2),
		[]byte("no hits here at all"),
		poolTestTraffic(t, 150<<10, 3),
	}
	want := make([][]int, len(payloads))
	for i, p := range payloads {
		m, err := Scan(sys, p, Options{Workers: 1, ChunkBytes: 64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, hit := range m {
			want[i] = append(want[i], int(hit.Pattern)<<32|hit.End)
		}
	}
	pool := NewPool(4)
	defer pool.Close()
	for name, opts := range map[string]Options{
		"adhoc": {Workers: 4, ChunkBytes: 8 << 10},
		"pool":  {ChunkBytes: 8 << 10, Pool: pool},
		"seq":   {Workers: 1, ChunkBytes: 3000},
	} {
		got, err := ScanMany(sys, payloads, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payloads) {
			t.Fatalf("%s: %d results for %d payloads", name, len(got), len(payloads))
		}
		for i, ms := range got {
			var keys []int
			for _, hit := range ms {
				keys = append(keys, int(hit.Pattern)<<32|hit.End)
			}
			if !reflect.DeepEqual(keys, want[i]) {
				t.Fatalf("%s: payload %d diverged: %d vs %d matches", name, i, len(keys), len(want[i]))
			}
		}
	}
}

// Jobs that themselves call Run on the same pool must complete: Run
// help-executes queued jobs while waiting, so a fully-busy worker set
// cannot deadlock on nested submissions.
func TestPoolNestedRunNoDeadlock(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	donec := make(chan struct{})
	go func() {
		defer close(donec)
		var outer []func()
		var leafs atomic.Int64
		for i := 0; i < 8; i++ {
			outer = append(outer, func() {
				inner := make([]func(), 4)
				for j := range inner {
					inner[j] = func() { leafs.Add(1) }
				}
				pool.Run(inner)
			})
		}
		pool.Run(outer)
		if got := leafs.Load(); got != 32 {
			t.Errorf("ran %d leaf jobs, want 32", got)
		}
	}()
	select {
	case <-donec:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Run deadlocked")
	}
}

// A closed pool must still complete scans (inline), never deadlock.
func TestPoolClosedRunsInline(t *testing.T) {
	sys := poolTestSystem(t)
	data := poolTestTraffic(t, 32<<10, 5)
	want, err := Scan(sys, data, Options{Workers: 1, ChunkBytes: len(data)})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(2)
	pool.Close()
	got, err := Scan(sys, data, Options{ChunkBytes: 4 << 10, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("closed-pool scan diverged")
	}
}

// ScanReader through a pool: identical to the buffered scan.
func TestPoolScanReader(t *testing.T) {
	sys := poolTestSystem(t)
	data := poolTestTraffic(t, 300<<10, 7)
	want, err := Scan(sys, data, Options{Workers: 1, ChunkBytes: len(data)})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(4)
	defer pool.Close()
	got, err := ScanReader(sys, bytes.NewReader(data), Options{Workers: 4, ChunkBytes: 16 << 10, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pool ScanReader diverged: %d vs %d", len(got), len(want))
	}
}

func TestPoolWorkers(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	if got := p.Workers(); got != 3 {
		t.Fatalf("Workers() = %d", got)
	}
}
