// Package pipeline implements the paper's two SPE schedules on the
// discrete-event substrate:
//
//   - double buffering (Section 4, Figure 5): input blocks stream into
//     one buffer while the other is matched, hiding the 5.94 us
//     transfer under the 25.64 us computation entirely;
//   - dynamic STT replacement (Section 6, Figure 8): dictionaries
//     larger than the local store rotate half-size STTs through two
//     resident slots, loaded in the idle DMA time, degrading
//     throughput smoothly (Figure 9).
package pipeline

import (
	"fmt"

	"cellmatch/internal/eib"
	"cellmatch/internal/mfc"
	"cellmatch/internal/sim"
)

// Phase is one labeled interval of a schedule timeline.
type Phase struct {
	Name  string // "compute" or "dma"
	Label string
	Start sim.Time
	End   sim.Time
}

// Duration returns the phase length.
func (p Phase) Duration() sim.Time { return p.End - p.Start }

// Figure5Config parameterizes the double-buffering experiment.
type Figure5Config struct {
	// BlockBytes is the input block (and buffer) size.
	BlockBytes int64
	// Blocks is how many blocks each SPE processes.
	Blocks int
	// CyclesPerTransition is the measured kernel cost (Table 1 V4:
	// ~5 cycles -> 25.64 us per 16 KB block at 3.2 GHz).
	CyclesPerTransition float64
	// ClockHz is the SPU clock.
	ClockHz float64
	// SPEs is how many SPEs run the same schedule concurrently (8 =
	// the paper's worst-case traffic).
	SPEs int
}

// Defaults fills zero fields with the paper's parameters.
func (c *Figure5Config) Defaults() {
	if c.BlockBytes == 0 {
		c.BlockBytes = 16 * 1024
	}
	if c.Blocks == 0 {
		c.Blocks = 16
	}
	if c.CyclesPerTransition == 0 {
		c.CyclesPerTransition = 5.01
	}
	if c.ClockHz == 0 {
		c.ClockHz = 3.2e9
	}
	if c.SPEs == 0 {
		c.SPEs = 8
	}
}

// Figure5Result reports the schedule achieved by SPE 0.
type Figure5Result struct {
	Computes  []Phase
	Transfers []Phase
	// Total is the makespan for SPE 0.
	Total sim.Time
	// ComputeBusy is the sum of compute phase durations.
	ComputeBusy sim.Time
	// SteadyUtilization is compute busy time divided by elapsed time
	// after the first block's transfer (the paper: all transfer cost
	// except the first is hidden).
	SteadyUtilization float64
	// ThroughputGbps is the effective filtered bandwidth.
	ThroughputGbps float64
	// ComputePeriod and TransferTime are the steady-state durations
	// (the 25.64 us and 5.94 us of Figure 5).
	ComputePeriod sim.Time
	TransferTime  sim.Time
}

// speState drives one SPE's double-buffer loop.
type speState struct {
	eng       *sim.Engine
	m         *mfc.MFC
	cfg       Figure5Config
	compute   sim.Time
	processed int
	loaded    [2]bool
	busy      bool
	record    bool
	computes  []Phase
	transfers []Phase
	doneAt    sim.Time
}

func (s *speState) loadBuffer(buf int, onDone func()) {
	start := s.eng.Now()
	tag := buf
	if err := s.m.Get(tag, uint32(buf*int(s.cfg.BlockBytes)), 0, s.cfg.BlockBytes); err != nil {
		panic(err)
	}
	s.m.WaitTagMask(mfc.TagMask(tag), func() {
		if s.record {
			s.transfers = append(s.transfers, Phase{
				Name: "dma", Label: fmt.Sprintf("load input buffer %d", buf),
				Start: start, End: s.eng.Now(),
			})
		}
		onDone()
	})
}

func (s *speState) tryCompute() {
	if s.busy || s.processed >= s.cfg.Blocks {
		return
	}
	buf := s.processed % 2
	if !s.loaded[buf] {
		return
	}
	s.busy = true
	s.loaded[buf] = false
	start := s.eng.Now()
	// Prefetch the block after next into this buffer as soon as the
	// compute starts (the buffer's data is consumed by the kernel; in
	// the model the content is irrelevant so the reload can overlap).
	next := s.processed + 2
	if next < s.cfg.Blocks {
		s.loadBuffer(buf, func() {
			s.loaded[buf] = true
			s.tryCompute()
		})
	}
	s.eng.After(s.compute, func() {
		if s.record {
			s.computes = append(s.computes, Phase{
				Name: "compute", Label: fmt.Sprintf("process buffer %d", buf),
				Start: start, End: s.eng.Now(),
			})
		}
		s.processed++
		s.busy = false
		s.doneAt = s.eng.Now()
		s.tryCompute()
	})
}

// RunDoubleBuffer executes the Figure 5 schedule and returns SPE 0's
// timeline and utilization.
func RunDoubleBuffer(cfg Figure5Config) Figure5Result {
	cfg.Defaults()
	eng := sim.New()
	bus := eib.NewBus(eng, eib.Default())
	compute := sim.CyclesToTime(int64(float64(cfg.BlockBytes)*cfg.CyclesPerTransition), cfg.ClockHz)
	spes := make([]*speState, cfg.SPEs)
	for i := range spes {
		s := &speState{
			eng:     eng,
			m:       mfc.New(eng, bus, i),
			cfg:     cfg,
			compute: compute,
			record:  i == 0,
		}
		spes[i] = s
		// Figure 5: buffer 0 loads first; buffer 1's load overlaps the
		// first computation.
		s.loadBuffer(0, func() {
			s.loaded[0] = true
			if cfg.Blocks > 1 {
				s.loadBuffer(1, func() {
					s.loaded[1] = true
					s.tryCompute()
				})
			}
			s.tryCompute()
		})
	}
	eng.Run()
	s0 := spes[0]
	var busy sim.Time
	for _, p := range s0.computes {
		busy += p.Duration()
	}
	res := Figure5Result{
		Computes:      s0.computes,
		Transfers:     s0.transfers,
		Total:         s0.doneAt,
		ComputeBusy:   busy,
		ComputePeriod: compute,
	}
	if len(s0.transfers) > 0 {
		res.TransferTime = s0.transfers[0].Duration()
	}
	if len(s0.computes) > 0 {
		span := s0.doneAt - s0.computes[0].Start
		if span > 0 {
			res.SteadyUtilization = float64(busy) / float64(span)
		}
	}
	if s0.doneAt > 0 {
		bits := float64(cfg.BlockBytes) * float64(cfg.Blocks) * 8
		res.ThroughputGbps = bits / s0.doneAt.Seconds() / 1e9
	}
	return res
}
