package pipeline

import (
	"math"
	"testing"

	"cellmatch/internal/sim"
)

func TestFigure5PaperNumbers(t *testing.T) {
	// Paper: 16 KB block at 5.01 cycles/transition -> 25.64 us compute;
	// transfer at 2.76 GB/s -> 5.94 us; transfers fully hidden.
	res := RunDoubleBuffer(Figure5Config{Blocks: 12})
	cp := res.ComputePeriod.Micros()
	if cp < 25.5 || cp > 25.8 {
		t.Fatalf("compute period = %.2f us, want 25.64", cp)
	}
	tt := res.TransferTime.Micros()
	if tt < 2.0 || tt > 7.0 {
		t.Fatalf("transfer = %.2f us, want <= ~5.94", tt)
	}
	if res.SteadyUtilization < 0.99 {
		t.Fatalf("compute utilization = %.3f, transfers not hidden", res.SteadyUtilization)
	}
}

func TestFigure5TransferHidden(t *testing.T) {
	res := RunDoubleBuffer(Figure5Config{Blocks: 10})
	// Makespan ~= first transfer + blocks x compute.
	ideal := res.TransferTime + sumPhases(res.Computes)
	slack := float64(res.Total-ideal) / float64(res.Total)
	if slack > 0.02 {
		t.Fatalf("schedule has %.1f%% unexplained gaps (total %v, ideal %v)",
			slack*100, res.Total, ideal)
	}
	if len(res.Computes) != 10 {
		t.Fatalf("computed %d blocks", len(res.Computes))
	}
}

func TestFigure5ComputesNeverOverlap(t *testing.T) {
	res := RunDoubleBuffer(Figure5Config{Blocks: 8})
	for i := 1; i < len(res.Computes); i++ {
		if res.Computes[i].Start < res.Computes[i-1].End {
			t.Fatalf("compute %d overlaps previous", i)
		}
	}
}

func TestFigure5ThroughputMatchesKernel(t *testing.T) {
	// End-to-end throughput must equal the kernel's 5.11 Gbps (within
	// the first-transfer amortization).
	res := RunDoubleBuffer(Figure5Config{Blocks: 50})
	if res.ThroughputGbps < 4.9 || res.ThroughputGbps > 5.2 {
		t.Fatalf("throughput = %.2f Gbps, want ~5.11", res.ThroughputGbps)
	}
}

func TestFigure5SmallBlocksStillHidden(t *testing.T) {
	// The paper: "the same considerations hold even when smaller block
	// sizes are chosen, down to 512 bytes".
	for _, kb := range []int64{512, 4096, 8192} {
		res := RunDoubleBuffer(Figure5Config{BlockBytes: kb, Blocks: 20})
		if res.SteadyUtilization < 0.98 {
			t.Fatalf("%d-byte blocks: utilization %.3f", kb, res.SteadyUtilization)
		}
	}
}

func sumPhases(ps []Phase) (total sim.Time) {
	for _, p := range ps {
		total += p.Duration()
	}
	return total
}

func TestPaperReplacementFormula(t *testing.T) {
	if PaperReplacementGbps(5.11, 1) != 5.11 {
		t.Fatal("n=1 should be full speed")
	}
	if got := PaperReplacementGbps(5.11, 2); math.Abs(got-2.555) > 1e-9 {
		t.Fatalf("n=2: %.3f", got)
	}
	if got := PaperReplacementGbps(5.11, 6); math.Abs(got-0.511) > 1e-9 {
		t.Fatalf("n=6: %.3f (paper: 5.11/10)", got)
	}
}

func TestReplacementN1IsDoubleBuffering(t *testing.T) {
	res := RunReplacement(ReplacementConfig{STTs: 1, Pairs: 10})
	if res.EffectiveGbps < 4.8 || res.EffectiveGbps > 5.3 {
		t.Fatalf("n=1 effective = %.2f Gbps, want ~5.11", res.EffectiveGbps)
	}
}

func TestReplacementN2HalvesThroughput(t *testing.T) {
	res := RunReplacement(ReplacementConfig{STTs: 2, Pairs: 10})
	want := PaperReplacementGbps(5.11, 2)
	if math.Abs(res.EffectiveGbps-want)/want > 0.08 {
		t.Fatalf("n=2 effective = %.2f Gbps, paper %.2f", res.EffectiveGbps, want)
	}
}

func TestReplacementDecaysHyperbolically(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 3, 4, 6} {
		res := RunReplacement(ReplacementConfig{STTs: n, Pairs: 6})
		if res.EffectiveGbps >= prev {
			t.Fatalf("throughput not decreasing at n=%d: %.2f >= %.2f",
				n, res.EffectiveGbps, prev)
		}
		prev = res.EffectiveGbps
		// The schedule can never beat processing each block n times.
		ceiling := 5.2 / float64(n)
		if res.EffectiveGbps > ceiling {
			t.Fatalf("n=%d: %.2f Gbps exceeds the n-pass ceiling %.2f",
				n, res.EffectiveGbps, ceiling)
		}
	}
}

func TestReplacementTimelineShape(t *testing.T) {
	// Figure 8: computes alternate buffers; STT loads appear for n>2.
	res := RunReplacement(ReplacementConfig{STTs: 3, Pairs: 3})
	var computes, sttLoads int
	for _, p := range res.Timeline {
		switch {
		case p.Name == "compute":
			computes++
		case p.Name == "dma" && len(p.Label) > 12 && p.Label[:13] == "load next STT":
			sttLoads++
		}
	}
	if computes == 0 || sttLoads == 0 {
		t.Fatalf("timeline lacks phases: computes=%d sttLoads=%d", computes, sttLoads)
	}
	// Every pair costs n visits = 2n computes.
	if computes != 3*2*3 {
		t.Fatalf("computes = %d, want %d", computes, 18)
	}
}

func TestReplacementScalesWithSPEs(t *testing.T) {
	one := RunReplacement(ReplacementConfig{STTs: 3, SPEs: 1, Pairs: 4})
	eight := RunReplacement(ReplacementConfig{STTs: 3, SPEs: 8, Pairs: 4})
	if eight.SystemGbps < 6*one.SystemGbps {
		t.Fatalf("8 SPEs give %.2f vs 1 SPE %.2f Gbps: poor scaling",
			eight.SystemGbps, one.SystemGbps)
	}
}

func TestFigure9Sweep(t *testing.T) {
	pts := Figure9(5.11, []int{1, 8}, 4)
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SimulatedGbps <= 0 || p.PaperGbps <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		// Same decay family: simulated within a factor ~2.2 of the
		// paper's conservative closed form, never slower than it.
		if p.SimulatedGbps < 0.85*p.PaperGbps || p.SimulatedGbps > 2.4*p.PaperGbps {
			t.Fatalf("point %+v: simulated diverges from paper form", p)
		}
	}
	// 8-SPE n=1 start: ~40.88 Gbps (Section 5).
	start := pts[4]
	if start.SPEs != 8 || start.STTs != 1 {
		t.Fatalf("unexpected ordering: %+v", start)
	}
	if start.SimulatedGbps < 38 || start.SimulatedGbps > 42 {
		t.Fatalf("8-SPE static throughput = %.2f, want ~40.9", start.SimulatedGbps)
	}
}
