package pipeline

import (
	"fmt"

	"cellmatch/internal/eib"
	"cellmatch/internal/mfc"
	"cellmatch/internal/sim"
)

// ReplacementConfig parameterizes the Section 6 dynamic STT
// replacement experiment.
type ReplacementConfig struct {
	// SlotBytes is one resident STT slot (~95 KB: half the Figure 3
	// budget, about 800 states).
	SlotBytes int64
	// STTs is the dictionary's STT count n (>= 1).
	STTs int
	// BlockBytes is the input block size.
	BlockBytes int64
	// CyclesPerTransition and ClockHz define the compute rate.
	CyclesPerTransition float64
	ClockHz             float64
	// SPEs run the schedule concurrently, sharing the bus.
	SPEs int
	// Pairs is how many buffer pairs of unique input each SPE pushes
	// through the full STT cycle.
	Pairs int
}

// Defaults fills zero fields with the paper's parameters.
func (c *ReplacementConfig) Defaults() {
	if c.SlotBytes == 0 {
		c.SlotBytes = 95 * 1024
	}
	if c.STTs == 0 {
		c.STTs = 2
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 16 * 1024
	}
	if c.CyclesPerTransition == 0 {
		c.CyclesPerTransition = 5.01
	}
	if c.ClockHz == 0 {
		c.ClockHz = 3.2e9
	}
	if c.SPEs == 0 {
		c.SPEs = 1
	}
	if c.Pairs == 0 {
		c.Pairs = 8
	}
}

// ReplacementResult reports the achieved schedule.
type ReplacementResult struct {
	// Timeline is SPE 0's phase list (Figure 8).
	Timeline []Phase
	// Total is SPE 0's makespan.
	Total sim.Time
	// UniqueBytes is the unique input volume SPE 0 filtered against
	// the whole dictionary.
	UniqueBytes int64
	// EffectiveGbps is the per-SPE filtered bandwidth.
	EffectiveGbps float64
	// SystemGbps = SPEs x EffectiveGbps (distinct input portions).
	SystemGbps float64
}

// PaperReplacementGbps is the paper's closed form for the effective
// per-SPE bandwidth with n STTs: base for n=1, base/(2(n-1)) for n>=2.
func PaperReplacementGbps(baseGbps float64, n int) float64 {
	if n <= 1 {
		return baseGbps
	}
	return baseGbps / float64(2*(n-1))
}

// replacementSPE drives one SPE through the Figure 8 schedule: two
// input buffers advance together through the STT rotation; while STT k
// is matched against both buffers, STT k+1 streams into the other slot
// during the idle DMA time. Input blocks are (re)fetched once per pass
// — a block's passes against successive STTs each reload it, which is
// what the per-period "load input to buffer" boxes of Figure 8 are.
type replacementSPE struct {
	eng     *sim.Engine
	m       *mfc.MFC
	cfg     ReplacementConfig
	compute sim.Time

	phase      int // visit state machine: see the vs* constants
	visit      int // STT visits completed in the current cycle
	pairsDone  int
	sttReady   bool
	inReady    [2]bool
	record     bool
	timeline   []Phase
	doneAt     sim.Time
	uniqueByte int64
}

// Visit states.
const (
	vsIdle     = iota // between visits: wait for STT and buffer 0
	vsRunning0        // matching buffer 0
	vsWaiting1        // buffer 0 done; waiting for buffer 1's fetch
	vsRunning1        // matching buffer 1
)

const (
	tagIn0 = 0
	tagIn1 = 1
	tagSTT = 2
)

func (r *replacementSPE) fetchInput(buf int, onDone func()) {
	start := r.eng.Now()
	tag := tagIn0 + buf
	if err := r.m.Get(tag, uint32(buf)*uint32(r.cfg.BlockBytes), 0, r.cfg.BlockBytes); err != nil {
		panic(err)
	}
	r.m.WaitTagMask(mfc.TagMask(tag), func() {
		if r.record {
			r.timeline = append(r.timeline, Phase{
				Name: "dma", Label: fmt.Sprintf("load input to buffer %d", buf),
				Start: start, End: r.eng.Now(),
			})
		}
		onDone()
	})
}

func (r *replacementSPE) loadNextSTT(slot, stt int, onDone func()) {
	start := r.eng.Now()
	// The 95 KB slot streams as two ~48 KB chunks (Figure 8), placed
	// in the idle DMA time; the fluid bus model interleaves them with
	// the input transfers automatically.
	half := r.cfg.SlotBytes / 2 / 16 * 16
	rest := r.cfg.SlotBytes - half
	if err := r.m.Get(tagSTT, 0x20000, 0, half); err != nil {
		panic(err)
	}
	if err := r.m.Get(tagSTT, 0x20000+uint32(half), 0, rest); err != nil {
		panic(err)
	}
	r.m.WaitTagMask(mfc.TagMask(tagSTT), func() {
		if r.record {
			r.timeline = append(r.timeline, Phase{
				Name: "dma", Label: fmt.Sprintf("load next STT into slot %d (STT %d)", slot, stt),
				Start: start, End: r.eng.Now(),
			})
		}
		onDone()
	})
}

// pump advances the visit state machine. It is invoked from every
// completion callback (input fetch, STT load, compute) and is safe to
// call redundantly: each state only fires when its preconditions hold.
func (r *replacementSPE) pump() {
	switch r.phase {
	case vsIdle:
		if r.pairsDone >= r.cfg.Pairs || !r.sttReady || !r.inReady[0] {
			return
		}
		n := r.cfg.STTs
		stt := r.visit % n
		slot := r.visit % 2
		// Begin streaming the next STT while this one is in use; with
		// n <= 2 every STT stays resident and no traffic is needed.
		if n > 2 {
			r.sttReady = false
			r.loadNextSTT(1-slot, (r.visit+1)%n, func() {
				r.sttReady = true
				r.pump()
			})
		}
		r.phase = vsRunning0
		r.computeBuf(0, stt, func() {
			r.phase = vsWaiting1
			r.pump()
		})
	case vsWaiting1:
		if !r.inReady[1] {
			return
		}
		stt := r.visit % r.cfg.STTs
		r.phase = vsRunning1
		r.computeBuf(1, stt, func() {
			r.finishVisit()
		})
	}
}

// computeBuf matches one buffer against the current STT and refetches
// it afterwards for its next pass.
func (r *replacementSPE) computeBuf(buf, stt int, after func()) {
	start := r.eng.Now()
	r.inReady[buf] = false
	r.eng.After(r.compute, func() {
		if r.record {
			r.timeline = append(r.timeline, Phase{
				Name:  "compute",
				Label: fmt.Sprintf("process buffer %d (match against STT %d)", buf, stt),
				Start: start, End: r.eng.Now(),
			})
		}
		r.fetchInput(buf, func() {
			r.inReady[buf] = true
			r.pump()
		})
		after()
	})
}

func (r *replacementSPE) finishVisit() {
	r.visit++
	r.doneAt = r.eng.Now()
	if r.visit%r.cfg.STTs == 0 {
		// Both in-flight blocks have now met every STT.
		r.uniqueByte += 2 * r.cfg.BlockBytes
		r.pairsDone++
	}
	r.phase = vsIdle
	r.pump()
}

// RunReplacement executes the dynamic STT replacement schedule.
func RunReplacement(cfg ReplacementConfig) ReplacementResult {
	cfg.Defaults()
	eng := sim.New()
	bus := eib.NewBus(eng, eib.Default())
	compute := sim.CyclesToTime(int64(float64(cfg.BlockBytes)*cfg.CyclesPerTransition), cfg.ClockHz)
	spes := make([]*replacementSPE, cfg.SPEs)
	for i := range spes {
		r := &replacementSPE{
			eng: eng, m: mfc.New(eng, bus, i), cfg: cfg,
			compute: compute, record: i == 0, sttReady: true,
		}
		spes[i] = r
		r.fetchInput(0, func() {
			r.inReady[0] = true
			r.pump()
		})
		r.fetchInput(1, func() {
			r.inReady[1] = true
			r.pump()
		})
	}
	eng.Run()
	r0 := spes[0]
	res := ReplacementResult{
		Timeline:    r0.timeline,
		Total:       r0.doneAt,
		UniqueBytes: r0.uniqueByte,
	}
	if r0.doneAt > 0 {
		res.EffectiveGbps = float64(r0.uniqueByte) * 8 / r0.doneAt.Seconds() / 1e9
		res.SystemGbps = res.EffectiveGbps * float64(cfg.SPEs)
	}
	return res
}

// Figure9Point is one sample of the throughput-vs-dictionary curve.
type Figure9Point struct {
	STTs          int
	AggregateKB   int64
	SPEs          int
	PaperGbps     float64
	SimulatedGbps float64
}

// Figure9 sweeps dictionary sizes for each SPE count, producing both
// the paper's closed-form curve and the simulated schedule's value.
func Figure9(baseGbps float64, speCounts []int, maxSTTs int) []Figure9Point {
	var out []Figure9Point
	for _, k := range speCounts {
		for n := 1; n <= maxSTTs; n++ {
			cfg := ReplacementConfig{STTs: n, SPEs: k, Pairs: 4}
			cfg.Defaults()
			r := RunReplacement(cfg)
			out = append(out, Figure9Point{
				STTs:          n,
				AggregateKB:   int64(n) * cfg.SlotBytes / 1024,
				SPEs:          k,
				PaperGbps:     PaperReplacementGbps(baseGbps, n) * float64(k),
				SimulatedGbps: r.SystemGbps,
			})
		}
	}
	return out
}
