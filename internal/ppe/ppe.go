// Package ppe models the Power Processor Element's role in the
// paper's system: Section 4 maps the 16-way stream interleaving onto
// the PPE ("stream interleaving is a reasonably inexpensive operation,
// and can actually be mapped on the PPE, thus leaving all the 8 SPEs
// ... available"), and Section 5's 40.88 Gbps full-machine number is
// stated "under the assumption that ... the remaining computational
// power of the PPE is sufficient".
//
// This package makes that assumption checkable: an analytic PPE
// throughput model (cycles per interleaved byte for scalar vs VMX
// implementations) plus a native measurement of the actual interleave
// kernel, and a feasibility predicate for any tile configuration.
package ppe

import (
	"fmt"
	"time"

	"cellmatch/internal/interleave"
)

// ClockHz is the PPE clock (same 3.2 GHz as the SPEs).
const ClockHz = 3.2e9

// Model parameterizes the PPE-side interleaving cost.
type Model struct {
	// CyclesPerByte is the interleaving cost. A scalar byte-copy loop
	// runs at roughly 2-4 cycles/byte on the in-order PPE; a VMX
	// implementation (16-byte permutes building one output quadword
	// per instruction group) reaches ~0.4-0.6 cycles/byte.
	CyclesPerByte float64
	// Threads counts usable SMT threads (the PPE is 2-way SMT; the
	// second thread shares most resources, so its yield is partial).
	Threads float64
}

// ScalarPPE is the conservative scalar model.
func ScalarPPE() Model { return Model{CyclesPerByte: 3.0, Threads: 1.3} }

// VMXPPE is the vectorized model the paper's assumption needs.
func VMXPPE() Model { return Model{CyclesPerByte: 0.5, Threads: 1.3} }

// InterleaveBps returns sustainable interleaving throughput in
// bytes/second.
func (m Model) InterleaveBps() float64 {
	if m.CyclesPerByte <= 0 {
		return 0
	}
	return ClockHz / m.CyclesPerByte * m.Threads
}

// InterleaveGbps returns the same in gigabits/second of input stream.
func (m Model) InterleaveGbps() float64 { return m.InterleaveBps() * 8 / 1e9 }

// Feasible reports whether the PPE keeps tiles fed: the aggregate
// input demand of `parallelTiles` tiles at perTileGbps each must not
// exceed the PPE's interleaving rate. The returned margin is
// supply/demand.
func (m Model) Feasible(parallelTiles int, perTileGbps float64) (bool, float64) {
	demand := float64(parallelTiles) * perTileGbps
	supply := m.InterleaveGbps()
	if demand <= 0 {
		return true, 0
	}
	return supply >= demand, supply / demand
}

// RequiredCyclesPerByte inverts the model: the interleaving budget
// that a configuration demands of the PPE.
func RequiredCyclesPerByte(parallelTiles int, perTileGbps float64, threads float64) (float64, error) {
	demandBps := float64(parallelTiles) * perTileGbps / 8 * 1e9
	if demandBps <= 0 {
		return 0, fmt.Errorf("ppe: non-positive demand")
	}
	return ClockHz * threads / demandBps, nil
}

// MeasureNative times the repository's interleave kernel on the host
// and returns bytes/second — evidence that 16-way interleaving is the
// cheap transpose the paper claims, on any hardware.
func MeasureNative(bytesPerStream int) (float64, error) {
	if bytesPerStream <= 0 {
		return 0, fmt.Errorf("ppe: non-positive size")
	}
	streams := make([][]byte, interleave.Streams)
	for i := range streams {
		streams[i] = make([]byte, bytesPerStream)
		for j := range streams[i] {
			streams[i][j] = byte(i + j)
		}
	}
	// Warm up once, then time a few rounds.
	if _, err := interleave.Interleave(streams); err != nil {
		return 0, err
	}
	const rounds = 8
	start := time.Now()
	for r := 0; r < rounds; r++ {
		if _, err := interleave.Interleave(streams); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	total := float64(rounds) * float64(bytesPerStream) * float64(interleave.Streams)
	return total / elapsed, nil
}
