package ppe

import "testing"

func TestVMXFeedsFullMachine(t *testing.T) {
	// Section 5's 8-tile configuration demands 40.88 Gbps of
	// interleaved input; the VMX-model PPE must keep up (this is the
	// paper's stated assumption).
	ok, margin := VMXPPE().Feasible(8, 5.11)
	if !ok {
		t.Fatalf("VMX PPE cannot feed 8 tiles (margin %.2f)", margin)
	}
	if margin < 1.0 || margin > 5.0 {
		t.Fatalf("margin %.2f implausible", margin)
	}
}

func TestScalarPPEIsInsufficient(t *testing.T) {
	// The assumption genuinely requires vectorized interleaving: a
	// scalar byte loop cannot feed even a quarter machine at line rate.
	ok, _ := ScalarPPE().Feasible(8, 5.11)
	if ok {
		t.Fatal("scalar PPE should not feed 8 tiles")
	}
	ok, _ = ScalarPPE().Feasible(2, 5.11)
	if !ok {
		t.Fatal("scalar PPE should feed the 2-tile headline config")
	}
}

func TestRequiredBudget(t *testing.T) {
	// Inverting the model: 8 tiles need ~<= 0.81 cycles/byte.
	c, err := RequiredCyclesPerByte(8, 5.11, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.6 || c > 1.1 {
		t.Fatalf("required cycles/byte = %.2f, want ~0.8", c)
	}
	if _, err := RequiredCyclesPerByte(0, 5.11, 1); err == nil {
		t.Fatal("zero demand accepted")
	}
}

func TestModelArithmetic(t *testing.T) {
	m := Model{CyclesPerByte: 1.0, Threads: 1.0}
	if got := m.InterleaveGbps(); got < 25.5 || got > 25.7 {
		t.Fatalf("1 cyc/B at 3.2 GHz = %.2f Gbps, want 25.6", got)
	}
	bad := Model{}
	if bad.InterleaveBps() != 0 {
		t.Fatal("zero model should yield zero")
	}
	if ok, _ := m.Feasible(0, 0); !ok {
		t.Fatal("zero demand should be feasible")
	}
}

func TestMeasureNative(t *testing.T) {
	bps, err := MeasureNative(16 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Any host manages at least 50 MB/s for a byte transpose; the
	// point is that interleaving is cheap, not a specific number.
	// Race-detector instrumentation slows the byte loop an order of
	// magnitude, so the floor only holds uninstrumented.
	if !raceEnabled && bps < 50e6 {
		t.Fatalf("native interleave only %.0f MB/s", bps/1e6)
	}
	if _, err := MeasureNative(0); err == nil {
		t.Fatal("zero size accepted")
	}
}
