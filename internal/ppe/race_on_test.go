//go:build race

package ppe

const raceEnabled = true
