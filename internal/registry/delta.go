// Delta-aware reloading: loaders that see the currently published
// matcher and may patch it (core.RecompileDelta) instead of rebuilding,
// or skip the swap entirely when the pattern set is unchanged. The RCU
// read path is untouched — a delta reload still publishes a complete
// immutable matcher; only the time spent compiling it shrinks.
package registry

import (
	"fmt"
	"os"

	"cellmatch/internal/core"
)

// DeltaOutcome classifies what a delta-aware reload actually did.
type DeltaOutcome int

const (
	// Rebuilt: a full cold compile (first load, reduction change, plain
	// Loader, or nothing was reusable).
	Rebuilt DeltaOutcome = iota
	// Patched: an incremental recompile reused at least one compiled
	// unit of the previous matcher.
	Patched
	// Unchanged: the source's pattern set is identical to the published
	// matcher's (possibly reordered); the previous entry stays live and
	// no new generation is published.
	Unchanged
)

// String names the outcome for logs, /reload responses, and metrics
// labels.
func (o DeltaOutcome) String() string {
	switch o {
	case Patched:
		return "patched"
	case Unchanged:
		return "unchanged"
	default:
		return "rebuilt"
	}
}

// DeltaLoader produces the next matcher given the currently published
// one (nil before the first successful load). Implementations decide
// whether to patch, rebuild, or report the set unchanged; like Loader,
// every call re-reads the source.
type DeltaLoader func(prev *core.Matcher) (*core.Matcher, DeltaOutcome, error)

// NewDelta creates a registry bound to a delta-aware loader without
// loading it yet; call Reload (or ReloadOutcome) to publish the first
// entry.
func NewDelta(source string, load DeltaLoader) *Registry {
	return &Registry{source: source, loadDelta: load}
}

// RetargetDelta points the registry at a new source with a delta-aware
// loader and loads it immediately. On failure the previous source,
// loader, and entry stay live.
func (r *Registry) RetargetDelta(source string, load DeltaLoader) (*Entry, DeltaOutcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prevSource, prevLoad, prevDelta := r.source, r.load, r.loadDelta
	r.source, r.load, r.loadDelta = source, nil, load
	e, outcome, err := r.reloadOutcomeLocked()
	if err != nil {
		r.source, r.load, r.loadDelta = prevSource, prevLoad, prevDelta
		return nil, Rebuilt, err
	}
	return e, outcome, nil
}

// ReloadOutcome is Reload with the delta classification attached:
// whether the published matcher was rebuilt cold, patched from the
// previous one, or left in place because the pattern set is unchanged
// (in which case the returned entry is the still-current one and no
// generation was consumed). Registries built on a plain Loader always
// report Rebuilt.
func (r *Registry) ReloadOutcome() (*Entry, DeltaOutcome, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reloadOutcomeLocked()
}

func (r *Registry) reloadOutcomeLocked() (*Entry, DeltaOutcome, error) {
	if r.loadDelta == nil {
		e, err := r.reloadLocked()
		return e, Rebuilt, err
	}
	// Stat before loading, same baseline contract as reloadLocked.
	var id fileID
	if fi, err := os.Stat(r.source); err == nil {
		id = identityOf(fi)
	}
	var prev *core.Matcher
	if cur := r.cur.Load(); cur != nil {
		prev = cur.Matcher
	}
	m, outcome, err := r.loadDelta(prev)
	if err != nil {
		r.failed.Add(1)
		return nil, Rebuilt, err
	}
	r.baseID = id
	if outcome == Unchanged && prev != nil && m == prev {
		// The source changed on disk but the pattern set did not (a
		// rewrite that only reordered lines, touched comments, or reset
		// timestamps): keep serving the published entry. The baseline
		// still advances so Watch stops re-detecting the same rewrite.
		r.unchanged.Add(1)
		return r.cur.Load(), Unchanged, nil
	}
	e := r.publishLocked(m, r.source)
	r.reloads.Add(1)
	if outcome == Patched {
		r.patched.Add(1)
	}
	return e, outcome, nil
}

// ReloadFull re-runs the installed loader with patching and the
// unchanged short-circuit disabled: a delta-aware loader sees
// prev == nil, so it compiles cold and the swap always publishes — the
// escape hatch for callers that need pattern ids in source-file order
// after reorder-only rewrites were short-circuited.
func (r *Registry) ReloadFull() (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.loadDelta == nil {
		return r.reloadLocked()
	}
	var id fileID
	if fi, err := os.Stat(r.source); err == nil {
		id = identityOf(fi)
	}
	m, _, err := r.loadDelta(nil)
	if err != nil {
		r.failed.Add(1)
		return nil, err
	}
	r.baseID = id
	e := r.publishLocked(m, r.source)
	r.reloads.Add(1)
	return e, nil
}

// DeltaReloads reports how many reloads were patched incrementally and
// how many were short-circuited as unchanged. Rebuilt reloads are
// Reloads() minus patched (unchanged reloads never count in Reloads —
// no swap was published).
func (r *Registry) DeltaReloads() (patched, unchanged uint64) {
	return r.patched.Load(), r.unchanged.Load()
}

// DictDeltaLoader is DictLoader with incremental recompilation: when a
// matcher is already published and compatible (literal dictionary,
// same options), an edit is patched via core.RecompileDelta, and a
// rewrite whose pattern multiset is unchanged short-circuits to
// Unchanged without compiling anything — the fix for watchers burning
// a full rebuild every time a dictionary file is regenerated in a
// different order.
//
// Unchanged caveat: the published matcher keeps ITS pattern order, not
// the file's — pattern ids in match output stay stable across the
// short-circuit, which is exactly why the swap is skipped. Callers
// that need file-order ids must force a full reload (mode=full).
func DictDeltaLoader(path string, opts core.Options) DeltaLoader {
	return func(prev *core.Matcher) (*core.Matcher, DeltaOutcome, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, Rebuilt, fmt.Errorf("registry: %w", err)
		}
		defer f.Close()
		pats, err := ParsePatterns(f)
		if err != nil {
			return nil, Rebuilt, fmt.Errorf("registry: dict %s: %w", path, err)
		}
		if len(pats) == 0 {
			return nil, Rebuilt, fmt.Errorf("registry: dict %s: no patterns", path)
		}
		if prev != nil && !prev.IsRegex() && prev.Options() == opts {
			if core.PatternSetFingerprint(pats) == prev.PatternSetFingerprint() {
				return prev, Unchanged, nil
			}
			m, ds, err := prev.RecompileDelta(pats)
			if err != nil {
				return nil, Rebuilt, fmt.Errorf("registry: dict %s: %w", path, err)
			}
			if ds.Reused() {
				return m, Patched, nil
			}
			return m, Rebuilt, nil
		}
		m, err := core.Compile(pats, opts)
		if err != nil {
			return nil, Rebuilt, fmt.Errorf("registry: dict %s: %w", path, err)
		}
		return m, Rebuilt, nil
	}
}

// RegexDeltaLoader is RegexLoader with the unchanged-set short-circuit.
// Regex matchers have no incremental decomposition (see
// core.RecompileDelta), so a genuinely changed expression set always
// rebuilds cold — but the fingerprint check still spares the rebuild
// when a file rewrite only reordered expressions.
func RegexDeltaLoader(path string, opts core.Options) DeltaLoader {
	return func(prev *core.Matcher) (*core.Matcher, DeltaOutcome, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, Rebuilt, fmt.Errorf("registry: %w", err)
		}
		defer f.Close()
		lines, err := ParsePatterns(f)
		if err != nil {
			return nil, Rebuilt, fmt.Errorf("registry: regex %s: %w", path, err)
		}
		if len(lines) == 0 {
			return nil, Rebuilt, fmt.Errorf("registry: regex %s: no expressions", path)
		}
		if prev != nil && prev.IsRegex() && prev.Options() == opts &&
			core.PatternSetFingerprint(lines) == prev.PatternSetFingerprint() {
			return prev, Unchanged, nil
		}
		exprs := make([]string, len(lines))
		for i, l := range lines {
			exprs[i] = string(l)
		}
		m, err := core.CompileRegexSearch(exprs, opts)
		if err != nil {
			return nil, Rebuilt, fmt.Errorf("registry: regex %s: %w", path, err)
		}
		return m, Rebuilt, nil
	}
}
