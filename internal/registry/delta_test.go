package registry

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellmatch/internal/core"
)

func writeDict(t *testing.T, path string, lines []string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// deltaOpts forces several compose slots so an append has prefix slots
// to reuse.
var deltaOpts = core.Options{MaxStatesPerTile: 150, Engine: core.EngineOptions{Filter: core.FilterOff}}

func deltaDictLines(n int) []string {
	out := make([]string, n)
	x := uint32(11)
	for i := range out {
		var b []byte
		l := 4 + int(x%7)
		for j := 0; j < l; j++ {
			x = x*1664525 + 1013904223
			b = append(b, byte('a'+(x>>16)%11))
		}
		out[i] = string(b)
	}
	return out
}

func TestDictDeltaLoaderReorderShortCircuit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dict.txt")
	lines := []string{"alpha", "beta", "gamma"}
	writeDict(t, path, lines)

	r := NewDelta(path, DictDeltaLoader(path, core.Options{}))
	e1, outcome, err := r.ReloadOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Rebuilt || e1.Generation != 1 {
		t.Fatalf("first load: outcome %v gen %d", outcome, e1.Generation)
	}

	// Rewrite the file with the same patterns in a different order (a
	// comment too, so the bytes clearly differ): the registry must keep
	// serving the published entry, with no new generation.
	writeDict(t, path, []string{"# regenerated", "gamma", "alpha", "beta"})
	e2, outcome, err := r.ReloadOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Unchanged {
		t.Fatalf("reordered rewrite: outcome %v, want Unchanged", outcome)
	}
	if e2 != e1 {
		t.Fatal("unchanged reload replaced the entry")
	}
	if ok, _ := r.Reloads(); ok != 1 {
		t.Fatalf("unchanged reload counted as a swap: reloads=%d", ok)
	}
	patched, unchanged := r.DeltaReloads()
	if patched != 0 || unchanged != 1 {
		t.Fatalf("delta counters: patched=%d unchanged=%d", patched, unchanged)
	}

	// A real edit must publish a new generation again.
	writeDict(t, path, []string{"gamma", "alpha", "beta", "epsilon"})
	e3, outcome, err := r.ReloadOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if outcome == Unchanged || e3.Generation != 2 {
		t.Fatalf("real edit: outcome %v gen %d", outcome, e3.Generation)
	}
}

func TestDictDeltaLoaderPatchedIdentity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dict.txt")
	lines := deltaDictLines(150)
	writeDict(t, path, lines)

	r := NewDelta(path, DictDeltaLoader(path, deltaOpts))
	if _, _, err := r.ReloadOutcome(); err != nil {
		t.Fatal(err)
	}

	appended := append(append([]string{}, lines...), "abcabca", "kjihgfe")
	writeDict(t, path, appended)
	e, outcome, err := r.ReloadOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Patched {
		t.Fatalf("append outcome %v, want Patched", outcome)
	}
	patched, _ := r.DeltaReloads()
	if patched != 1 {
		t.Fatalf("patched counter %d", patched)
	}

	// The patched matcher must behave exactly like a cold compile of
	// the appended dictionary.
	cold, err := core.CompileStrings(appended, deltaOpts)
	if err != nil {
		t.Fatal(err)
	}
	probe := []byte(strings.Repeat("xxabcabcaxx"+lines[0]+"yy", 30))
	want, err := cold.FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Matcher.FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("patched matcher: %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("patched matcher: match %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	var sv1, sv2 bytes.Buffer
	if err := e.Matcher.Save(&sv1); err != nil {
		t.Fatal(err)
	}
	if err := cold.Save(&sv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sv1.Bytes(), sv2.Bytes()) {
		t.Fatal("patched matcher artifact differs from cold compile")
	}
}

// The Watch regression for the order-only rewrite: the poller detects
// the file change (mtime/size/inode moved) but must not publish a new
// generation — and must not keep re-detecting the same rewrite.
func TestWatchShortCircuitsReorderedRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dict.txt")
	writeDict(t, path, []string{"alpha", "beta", "gamma"})

	r := NewDelta(path, DictDeltaLoader(path, core.Options{}))
	if _, _, err := r.ReloadOutcome(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Watch(ctx, 5*time.Millisecond, nil)
	}()

	// Keep rewriting in shuffled order until the watcher has consumed
	// at least one rewrite (the unchanged counter moves).
	deadline := time.After(10 * time.Second)
	for {
		_, unchanged := r.DeltaReloads()
		if unchanged >= 1 {
			break
		}
		writeDict(t, path, []string{"gamma", "alpha", "beta"})
		select {
		case <-deadline:
			t.Fatal("watch never processed the reordered rewrite")
		case <-time.After(15 * time.Millisecond):
		}
	}
	if gen := r.Current().Generation; gen != 1 {
		t.Fatalf("order-only rewrite bumped generation to %d", gen)
	}

	// A genuine edit through the same watcher still lands.
	deadline = time.After(10 * time.Second)
	for r.Current().Generation < 2 {
		writeDict(t, path, []string{"gamma", "alpha", "beta", "delta"})
		select {
		case <-deadline:
			t.Fatal("watch never published the real edit")
		case <-time.After(15 * time.Millisecond):
		}
	}
	cancel()
	wg.Wait()
}

// Delta reloads must never stall the read path: scans running on the
// current entry proceed while a patch compiles and swaps. The RCU
// contract is per-entry immutability, so each scan pins one entry and
// is oblivious to swaps landing mid-scan.
func TestDeltaReloadNeverBlocksScans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dict.txt")
	lines := deltaDictLines(200)
	writeDict(t, path, lines)

	r := NewDelta(path, DictDeltaLoader(path, deltaOpts))
	if _, _, err := r.ReloadOutcome(); err != nil {
		t.Fatal(err)
	}

	probe := []byte(strings.Repeat(lines[0]+" filler "+lines[3]+" ", 50))
	stop := make(chan struct{})
	var scans atomic.Uint64
	var scanErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := r.Current()
				if _, err := e.Matcher.FindAll(probe); err != nil {
					scanErr.Store(err)
					return
				}
				scans.Add(1)
			}
		}()
	}

	// Ten reload rounds alternating append and reorder while scans spin.
	cur := append([]string{}, lines...)
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			cur = append(cur, "hijk"+string(rune('a'+i)))
		} else {
			cur[0], cur[len(cur)-1] = cur[len(cur)-1], cur[0]
		}
		writeDict(t, path, cur)
		if _, _, err := r.ReloadOutcome(); err != nil {
			t.Fatal(err)
		}
	}
	// On a single-core runner the reload loop can finish before the
	// scan goroutines are ever scheduled; hold the swap storm open
	// until at least one scan has landed so the non-blocking claim is
	// actually exercised.
	waitDeadline := time.After(10 * time.Second)
	for scans.Load() == 0 {
		if err := scanErr.Load(); err != nil {
			t.Fatalf("scan failed during delta reloads: %v", err)
		}
		select {
		case <-waitDeadline:
			t.Fatal("no scans completed within 10s of the reload storm")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	if err := scanErr.Load(); err != nil {
		t.Fatalf("scan failed during delta reloads: %v", err)
	}
	patched, _ := r.DeltaReloads()
	if patched == 0 {
		t.Fatal("no reload was patched")
	}
}

func TestDeltaOutcomeString(t *testing.T) {
	cases := map[DeltaOutcome]string{
		Rebuilt:         "rebuilt",
		Patched:         "patched",
		Unchanged:       "unchanged",
		DeltaOutcome(9): "rebuilt", // unknown values fold into the default
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Fatalf("DeltaOutcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

// RetargetDelta swaps source and loader atomically; a failing target
// must leave the previous source, loader, and entry fully live.
func TestRetargetDelta(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	writeDict(t, a, []string{"alpha", "beta"})
	writeDict(t, b, []string{"gamma", "delta", "epsilon"})

	r := NewDelta(a, DictDeltaLoader(a, deltaOpts))
	if _, _, err := r.ReloadOutcome(); err != nil {
		t.Fatal(err)
	}
	first := r.Current()

	e, outcome, err := r.RetargetDelta(b, DictDeltaLoader(b, deltaOpts))
	if err != nil {
		t.Fatal(err)
	}
	if outcome == Unchanged {
		t.Fatal("retarget to a different dictionary reported Unchanged")
	}
	if e.Generation <= first.Generation {
		t.Fatalf("retarget did not publish a new generation: %d -> %d", first.Generation, e.Generation)
	}

	// Retargeting at a missing file fails and rolls back: the b entry
	// keeps serving and a subsequent reload still uses b's loader.
	missing := filepath.Join(dir, "missing.txt")
	if _, _, err := r.RetargetDelta(missing, DictDeltaLoader(missing, deltaOpts)); err == nil {
		t.Fatal("retarget at a missing file succeeded")
	}
	if cur := r.Current(); cur.Generation != e.Generation {
		t.Fatalf("failed retarget disturbed the live entry: gen %d -> %d", e.Generation, cur.Generation)
	}
	writeDict(t, b, []string{"gamma", "delta", "epsilon", "zeta"})
	if _, _, err := r.ReloadOutcome(); err != nil {
		t.Fatalf("reload after failed retarget should use the rolled-back source: %v", err)
	}
}

func TestRegexDeltaLoader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rx.txt")
	writeDict(t, path, []string{"foo[0-9]{1,3}", "bar(baz)?"})
	opts := core.Options{}

	r := NewDelta(path, RegexDeltaLoader(path, opts))
	e, outcome, err := r.ReloadOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Rebuilt {
		t.Fatalf("first regex load reported %v, want rebuilt", outcome)
	}
	if !e.Matcher.IsRegex() {
		t.Fatal("regex loader produced a literal matcher")
	}

	// Reordered rewrite: fingerprint matches, no rebuild, no new
	// generation.
	writeDict(t, path, []string{"bar(baz)?", "foo[0-9]{1,3}"})
	e2, outcome, err := r.ReloadOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Unchanged {
		t.Fatalf("reordered regex rewrite reported %v, want unchanged", outcome)
	}
	if e2.Generation != e.Generation {
		t.Fatal("unchanged regex reload consumed a generation")
	}

	// A genuinely new expression rebuilds cold (regex has no
	// incremental decomposition).
	writeDict(t, path, []string{"bar(baz)?", "foo[0-9]{1,3}", "qu[xy]{1,3}"})
	_, outcome, err = r.ReloadOutcome()
	if err != nil {
		t.Fatal(err)
	}
	if outcome != Rebuilt {
		t.Fatalf("changed regex set reported %v, want rebuilt", outcome)
	}
	got, err := r.Current().Matcher.FindAll([]byte("quxxx and foo42"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("rebuilt regex matcher found nothing in a matching probe")
	}

	// Error paths: unreadable file, then an empty expression list.
	if _, _, err := RegexDeltaLoader(filepath.Join(dir, "gone.txt"), opts)(nil); err == nil {
		t.Fatal("missing regex file loaded")
	}
	empty := filepath.Join(dir, "empty.txt")
	writeDict(t, empty, nil)
	if _, _, err := RegexDeltaLoader(empty, opts)(nil); err == nil {
		t.Fatal("empty regex file loaded")
	}
	bad := filepath.Join(dir, "bad.txt")
	writeDict(t, bad, []string{"unclosed("})
	if _, _, err := RegexDeltaLoader(bad, opts)(nil); err == nil {
		t.Fatal("invalid regex compiled")
	}
}

func TestDictDeltaLoaderErrorPaths(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := DictDeltaLoader(filepath.Join(dir, "gone.txt"), deltaOpts)(nil); err == nil {
		t.Fatal("missing dict file loaded")
	}
	empty := filepath.Join(dir, "empty.txt")
	writeDict(t, empty, nil)
	if _, _, err := DictDeltaLoader(empty, deltaOpts)(nil); err == nil {
		t.Fatal("empty dict file loaded")
	}
}

// ReloadFull bypasses the delta loader's patching and unchanged
// short-circuit: the swap always publishes, with pattern ids in file
// order.
func TestReloadFull(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dict.txt")
	writeDict(t, path, []string{"alpha", "beta"})

	r := NewDelta(path, DictDeltaLoader(path, core.Options{}))
	if _, _, err := r.ReloadOutcome(); err != nil {
		t.Fatal(err)
	}
	gen := r.Current().Generation

	// Reorder-only rewrite: the delta path short-circuits...
	writeDict(t, path, []string{"beta", "alpha"})
	if _, outcome, err := r.ReloadOutcome(); err != nil || outcome != Unchanged {
		t.Fatalf("delta reload: outcome=%v err=%v", outcome, err)
	}
	// ...but ReloadFull rebuilds and republishes with file-order ids.
	e, err := r.ReloadFull()
	if err != nil {
		t.Fatal(err)
	}
	if e.Generation != gen+1 {
		t.Fatalf("ReloadFull generation %d, want %d", e.Generation, gen+1)
	}
	ms, err := e.Matcher.FindAll([]byte("beta"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Pattern != 0 {
		t.Fatalf("ReloadFull ids not in file order: %+v", ms)
	}

	// A plain (non-delta) registry takes the ordinary reload path.
	rp := New(path, DictLoader(path, core.Options{}))
	if _, err := rp.ReloadFull(); err != nil {
		t.Fatal(err)
	}
	if rp.Current() == nil {
		t.Fatal("plain ReloadFull did not publish")
	}

	// Failure keeps the previous entry live.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReloadFull(); err == nil {
		t.Fatal("ReloadFull of a missing file succeeded")
	}
	if got := r.Current().Generation; got != gen+1 {
		t.Fatalf("failed ReloadFull disturbed the live entry: gen %d", got)
	}
}
