//go:build !unix

package registry

import "os"

// sysInode has no portable analogue off unix; change detection falls
// back to (mtime, size) there.
func sysInode(os.FileInfo) uint64 { return 0 }
