//go:build unix

package registry

import (
	"os"
	"syscall"
)

// sysInode returns the file's inode number, the identity component
// that survives mtime/size collisions across atomic rename replaces.
func sysInode(fi os.FileInfo) uint64 {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return st.Ino
	}
	return 0
}
