package registry

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"
)

// DefaultTenant is the namespace slot serving the un-prefixed HTTP
// paths (/scan, /reload, ...): single-tenant deployments never name a
// tenant and land here.
const DefaultTenant = "default"

// tenantNameRE bounds tenant names to URL- and metrics-label-safe
// identifiers.
var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidTenantName reports whether name is a legal tenant identifier:
// 1-64 characters of letters, digits, '.', '_', '-', starting with a
// letter or digit.
func ValidTenantName(name string) bool { return tenantNameRE.MatchString(name) }

// Namespace is a set of named dictionaries: one independent RCU
// Registry per tenant, each with its own loader, generation sequence,
// and watchable source, all typically served behind one worker pool.
// It is the multi-tenant generalization of a single Registry — slot
// "default" is what single-tenant deployments use without knowing it.
//
// Slots are added with Set before serving begins; lookups (Get) are
// lock-cheap and safe against concurrent Set, but the serving layer
// snapshots the tenant set at construction, so populate the namespace
// fully before handing it to server.New.
type Namespace struct {
	mu    sync.RWMutex
	slots map[string]*Registry
}

// NewNamespace creates an empty namespace.
func NewNamespace() *Namespace {
	return &Namespace{slots: make(map[string]*Registry)}
}

// Set installs (or replaces) the tenant's registry. The name must
// satisfy ValidTenantName.
func (n *Namespace) Set(tenant string, r *Registry) error {
	if !ValidTenantName(tenant) {
		return fmt.Errorf("registry: invalid tenant name %q", tenant)
	}
	if r == nil {
		return fmt.Errorf("registry: tenant %q: nil registry", tenant)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.slots[tenant] = r
	return nil
}

// Get returns the tenant's registry, or nil when the tenant is
// unknown.
func (n *Namespace) Get(tenant string) *Registry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.slots[tenant]
}

// Default returns the default tenant's registry, or nil when the
// namespace has no default slot.
func (n *Namespace) Default() *Registry { return n.Get(DefaultTenant) }

// Tenants returns the sorted tenant names.
func (n *Namespace) Tenants() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.slots))
	for t := range n.slots {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// WatchAll runs Registry.Watch for every slot concurrently, delivering
// each tenant's reload outcomes to onEvent (which may be nil; it must
// be safe for concurrent calls — tenants poll independently). It
// blocks until ctx is cancelled; run it in its own goroutine. Slots
// added after WatchAll starts are not picked up.
func (n *Namespace) WatchAll(ctx context.Context, interval time.Duration, onEvent func(tenant string, e *Entry, err error)) {
	var wg sync.WaitGroup
	for _, tenant := range n.Tenants() {
		reg := n.Get(tenant)
		wg.Add(1)
		go func(tenant string, reg *Registry) {
			defer wg.Done()
			reg.Watch(ctx, interval, func(e *Entry, err error) {
				if onEvent != nil {
					onEvent(tenant, e, err)
				}
			})
		}(tenant, reg)
	}
	wg.Wait()
}
