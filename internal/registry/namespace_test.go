package registry

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellmatch/internal/core"
)

func TestNamespaceSlots(t *testing.T) {
	dir := t.TempDir()
	pathA := saveArtifact(t, dir, "a.cms", []string{"alpha"})
	pathB := saveArtifact(t, dir, "b.cms", []string{"beta"})

	ns := NewNamespace()
	regA := New(pathA, ArtifactLoader(pathA))
	regB := New(pathB, ArtifactLoader(pathB))
	if err := ns.Set(DefaultTenant, regA); err != nil {
		t.Fatal(err)
	}
	if err := ns.Set("team-b", regB); err != nil {
		t.Fatal(err)
	}
	if ns.Get(DefaultTenant) != regA || ns.Default() != regA {
		t.Fatal("default slot lookup failed")
	}
	if ns.Get("team-b") != regB {
		t.Fatal("named slot lookup failed")
	}
	if ns.Get("ghost") != nil {
		t.Fatal("unknown tenant returned a registry")
	}
	if got := ns.Tenants(); len(got) != 2 || got[0] != DefaultTenant || got[1] != "team-b" {
		t.Fatalf("Tenants() = %v", got)
	}

	// Each slot hot-swaps independently: reloading B leaves A's
	// generation alone.
	if _, err := regA.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Reload(); err != nil {
		t.Fatal(err)
	}
	if ga, gb := regA.Current().Generation, regB.Current().Generation; ga != 1 || gb != 2 {
		t.Fatalf("generations: a=%d b=%d, want 1/2", ga, gb)
	}
}

func TestNamespaceSetValidation(t *testing.T) {
	ns := NewNamespace()
	reg := NewWithMatcher(mustCompile(t, []string{"x"}), "inline")
	for _, bad := range []string{"", "-leading", "has space", "semi;colon", "a/b",
		"waaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaytoolong"} {
		if err := ns.Set(bad, reg); err == nil {
			t.Fatalf("tenant name %q accepted", bad)
		}
	}
	if err := ns.Set("ok.name_1-x", reg); err != nil {
		t.Fatal(err)
	}
	if err := ns.Set("nil-reg", nil); err == nil {
		t.Fatal("nil registry accepted")
	}
}

// WatchAll must poll every slot: touching each tenant's source file
// reloads only that tenant.
func TestNamespaceWatchAll(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	pathA := write("a.txt", "alpha\n")
	pathB := write("b.txt", "beta\n")
	ns := NewNamespace()
	regA := New(pathA, DictLoader(pathA, core.Options{CaseFold: true}))
	regB := New(pathB, DictLoader(pathB, core.Options{CaseFold: true}))
	for tenant, reg := range map[string]*Registry{DefaultTenant: regA, "b": regB} {
		if _, err := reg.Reload(); err != nil {
			t.Fatal(err)
		}
		if err := ns.Set(tenant, reg); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	events := map[string]int{}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ns.WatchAll(ctx, 5*time.Millisecond, func(tenant string, e *Entry, err error) {
			if err != nil {
				t.Errorf("tenant %s reload: %v", tenant, err)
				return
			}
			mu.Lock()
			events[tenant]++
			mu.Unlock()
		})
	}()

	// Rewrite only tenant b's source until its watcher fires.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		fired := events["b"]
		mu.Unlock()
		if fired > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant b watcher never fired")
		}
		write("b.txt", "gamma\n# rev "+time.Now().String()+"\n")
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	mu.Lock()
	defer mu.Unlock()
	if events[DefaultTenant] != 0 {
		t.Fatalf("untouched default tenant reloaded %d times", events[DefaultTenant])
	}
	if regB.Current().Generation < 2 {
		t.Fatalf("tenant b generation %d, want >= 2", regB.Current().Generation)
	}
	if regA.Current().Generation != 1 {
		t.Fatalf("default tenant generation %d, want 1", regA.Current().Generation)
	}
}

// Regression for the Watch-vs-Retarget race: Watch used to read the
// change-detection baseline and the source path under two separate
// lock acquisitions, so a Retarget landing between them statted the
// new source against the old source's baseline and fired a spurious
// reload of a dictionary Retarget had just published (or, on identity
// collision, missed a real change). With both snapshotted under one
// lock, alternating Retargets of two unchanged files must produce zero
// watch-initiated reloads.
func TestWatchRetargetRaceNoSpuriousReload(t *testing.T) {
	dir := t.TempDir()
	pathA := saveArtifact(t, dir, "a.cms", []string{"alpha"})
	pathB := saveArtifact(t, dir, "b.cms", []string{"beta"})
	r := New(pathA, ArtifactLoader(pathA))
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}

	var spurious atomic.Uint64
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Interval 0 clamps to 1s inside Watch; use the minimum legal
		// positive interval to maximize poll pressure on the race window.
		r.Watch(ctx, time.Microsecond, func(e *Entry, err error) {
			// Neither file ever changes after its Retarget load, so any
			// event here means Watch compared a stat against the wrong
			// source's baseline.
			spurious.Add(1)
		})
	}()

	paths := []string{pathB, pathA}
	for i := 0; i < 400; i++ {
		p := paths[i%2]
		if _, err := r.Retarget(p, ArtifactLoader(p)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the watcher take a few more polls against the settled state.
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-done

	if n := spurious.Load(); n != 0 {
		t.Fatalf("watcher fired %d spurious reloads across retargets of unchanged sources", n)
	}
}
