// Package registry manages the live dictionary of a long-running
// matching service. A Registry owns one published *core.Matcher behind
// an atomic pointer and hot-swaps it RCU-style: readers grab the
// current entry once per request and keep scanning it even if a swap
// lands mid-scan; new requests observe the new entry. No lock sits on
// the read path, so a reload never stalls traffic — the serving analog
// of the paper's dynamic STT replacement schedule (Figure 8), where
// fresh tables are streamed in while the tile keeps scanning the ones
// it has.
//
// Dictionaries come from pluggable Loaders: ArtifactLoader reads a
// Save/Load v2 (or v1) artifact, DictLoader compiles a plain-text
// pattern file. Watch polls the backing file and reloads on change —
// the daemon's -watch mode.
package registry

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cellmatch/internal/core"
)

// Loader produces a fresh matcher from a configured source. Loaders
// must be safe to call repeatedly; each call re-reads the source.
type Loader func() (*core.Matcher, error)

// Entry is one published dictionary: the matcher plus provenance. An
// Entry is immutable once published; requests capture one and use it
// for their whole lifetime.
type Entry struct {
	Matcher *core.Matcher
	// Source names where the dictionary came from (a path, or a label
	// like "inline" for directly-swapped matchers).
	Source string
	// Generation increments on every successful swap, starting at 1.
	Generation uint64
	// LoadedAt is when this entry was published.
	LoadedAt time.Time
}

// Registry holds the active matcher and its reload machinery.
type Registry struct {
	cur atomic.Pointer[Entry]

	mu     sync.Mutex // serializes swaps; never held on the read path
	gen    uint64
	source string
	load   Loader
	// loadDelta, when set, takes precedence over load: reloads see the
	// published matcher and may patch it or report the set unchanged
	// (see delta.go). Exactly one of load/loadDelta is non-nil on a
	// configured registry.
	loadDelta DeltaLoader
	// baseID is the source file's identity captured just before the
	// last successful load — the change-detection baseline Watch starts
	// from, so a rewrite landing between Reload and Watch's first poll
	// is still detected.
	baseID fileID

	reloads   atomic.Uint64 // successful reloads (diagnostics)
	failed    atomic.Uint64 // failed reload attempts
	patched   atomic.Uint64 // reloads satisfied by incremental recompile
	unchanged atomic.Uint64 // reloads short-circuited: pattern set unchanged
}

// New creates a registry bound to a loader without loading it yet;
// call Reload to publish the first entry.
func New(source string, load Loader) *Registry {
	return &Registry{source: source, load: load}
}

// NewWithMatcher creates a registry with an already-compiled matcher
// published as generation 1. Reload re-publishes the same matcher
// unless a loader is installed via Retarget.
func NewWithMatcher(m *core.Matcher, source string) *Registry {
	r := &Registry{source: source, load: func() (*core.Matcher, error) { return m, nil }}
	r.Swap(m, source)
	return r
}

// Current returns the live entry, or nil before the first successful
// load. The returned entry stays valid (and scannable) forever; it
// just stops being current after the next swap.
func (r *Registry) Current() *Entry { return r.cur.Load() }

// Reload runs the loader and, on success, atomically publishes the new
// matcher. In-flight scans on the previous matcher are unaffected. On
// failure the current entry stays live and the error is returned.
func (r *Registry) Reload() (*Entry, error) {
	e, _, err := r.ReloadOutcome()
	return e, err
}

func (r *Registry) reloadLocked() (*Entry, error) {
	if r.load == nil {
		return nil, fmt.Errorf("registry: no loader configured")
	}
	// Stat before loading: if the file changes mid-load, the baseline
	// is the older stat and the next Watch poll re-detects the change.
	var id fileID
	if fi, err := os.Stat(r.source); err == nil {
		id = identityOf(fi)
	}
	m, err := r.load()
	if err != nil {
		r.failed.Add(1)
		return nil, err
	}
	r.baseID = id
	e := r.publishLocked(m, r.source)
	r.reloads.Add(1)
	return e, nil
}

// Retarget points the registry at a new source and loads it
// immediately. On failure the previous source and entry stay live.
func (r *Registry) Retarget(source string, load Loader) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prevSource, prevLoad, prevDelta := r.source, r.load, r.loadDelta
	r.source, r.load, r.loadDelta = source, load, nil
	e, err := r.reloadLocked()
	if err != nil {
		r.source, r.load, r.loadDelta = prevSource, prevLoad, prevDelta
		return nil, err
	}
	return e, nil
}

// Swap publishes an already-built matcher directly (no loader).
func (r *Registry) Swap(m *core.Matcher, source string) *Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.publishLocked(m, source)
}

func (r *Registry) publishLocked(m *core.Matcher, source string) *Entry {
	r.gen++
	e := &Entry{Matcher: m, Source: source, Generation: r.gen, LoadedAt: time.Now()}
	r.cur.Store(e)
	return e
}

// Reloads reports (successful, failed) reload counts.
func (r *Registry) Reloads() (ok, failed uint64) {
	return r.reloads.Load(), r.failed.Load()
}

// fileID is the change-detection identity of the watched source:
// modification time, size, and (where the platform exposes one) inode
// number. Mtime alone misses a rewrite landing within the filesystem's
// timestamp granularity of the previous one; size alone misses
// same-length rewrites; the inode catches the common atomic-replace
// pattern (write temp file, rename over the source), which always
// changes it even when mtime and size collide.
type fileID struct {
	mod  time.Time
	size int64
	ino  uint64
}

// identityOf extracts the change-detection identity from a stat.
func identityOf(fi os.FileInfo) fileID {
	return fileID{mod: fi.ModTime(), size: fi.Size(), ino: sysInode(fi)}
}

func (a fileID) equal(b fileID) bool {
	return a.mod.Equal(b.mod) && a.size == b.size && a.ino == b.ino
}

// Watch polls the registry's source file every interval and reloads
// when its modification time, size, or inode changes, until ctx is
// cancelled.
// Each attempt's outcome is delivered to onEvent (which may be nil);
// failed reloads keep the previous entry live and are retried on
// every subsequent poll until one succeeds (the change-detection
// baseline only advances on success), so a transient read failure can
// never permanently wedge the daemon on a stale generation. It
// blocks; run it in its own goroutine.
func (r *Registry) Watch(ctx context.Context, interval time.Duration, onEvent func(*Entry, error)) {
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		// The baseline is the stat captured just before the last
		// successful load (see reloadLocked): a rewrite landing between
		// that load and this poll is still detected, and a failed
		// reload leaves the baseline behind so the next poll retries.
		// Baseline and source are snapshotted under one lock: reading
		// them separately opens a window where a concurrent Retarget
		// swaps the source between the two reads, statting the new
		// source against the old source's baseline — a spurious reload
		// of a dictionary Retarget just published, or a missed one if
		// the identities happen to collide.
		last, source := r.watchState()
		fi, err := os.Stat(source)
		if err != nil {
			continue // transient: file being replaced, or gone
		}
		if identityOf(fi).equal(last) {
			continue
		}
		e, err := r.Reload()
		if onEvent != nil {
			onEvent(e, err)
		}
	}
}

// watchState snapshots the change-detection baseline and the source it
// belongs to under a single lock acquisition, so Watch always compares
// a stat of some source against that same source's baseline even while
// Retarget swaps both.
func (r *Registry) watchState() (fileID, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.baseID, r.source
}

// ArtifactLoader loads a compiled Save/Load artifact from path.
func ArtifactLoader(path string) Loader {
	return func() (*core.Matcher, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		defer f.Close()
		m, err := core.Load(f)
		if err != nil {
			return nil, fmt.Errorf("registry: artifact %s: %w", path, err)
		}
		return m, nil
	}
}

// DictLoader compiles a plain-text pattern file (one pattern per line,
// blank lines and '#' comments ignored) with the given options.
func DictLoader(path string, opts core.Options) Loader {
	return func() (*core.Matcher, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		defer f.Close()
		pats, err := ParsePatterns(f)
		if err != nil {
			return nil, fmt.Errorf("registry: dict %s: %w", path, err)
		}
		if len(pats) == 0 {
			return nil, fmt.Errorf("registry: dict %s: no patterns", path)
		}
		m, err := core.Compile(pats, opts)
		if err != nil {
			return nil, fmt.Errorf("registry: dict %s: %w", path, err)
		}
		return m, nil
	}
}

// RegexLoader compiles a plain-text regular-expression file (one
// expression per line, blank lines and '#' comments ignored) into a
// search matcher with full (End, Pattern) reporting — see
// core.CompileRegexSearch for the dialect and the bounded-length
// restrictions.
func RegexLoader(path string, opts core.Options) Loader {
	return func() (*core.Matcher, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("registry: %w", err)
		}
		defer f.Close()
		lines, err := ParsePatterns(f)
		if err != nil {
			return nil, fmt.Errorf("registry: regex %s: %w", path, err)
		}
		if len(lines) == 0 {
			return nil, fmt.Errorf("registry: regex %s: no expressions", path)
		}
		exprs := make([]string, len(lines))
		for i, l := range lines {
			exprs[i] = string(l)
		}
		m, err := core.CompileRegexSearch(exprs, opts)
		if err != nil {
			return nil, fmt.Errorf("registry: regex %s: %w", path, err)
		}
		return m, nil
	}
}

// ParsePatterns reads a pattern-per-line dictionary: blank lines and
// lines starting with '#' are skipped. An empty dictionary is not an
// error here — callers decide whether zero patterns is acceptable
// (the CLI allows it when inline patterns were also given).
func ParsePatterns(r io.Reader) ([][]byte, error) {
	var out [][]byte
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, []byte(line))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
