package registry

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cellmatch/internal/core"
)

// saveArtifact compiles patterns and writes a Save artifact to dir.
func saveArtifact(t *testing.T, dir, name string, patterns []string) string {
	t.Helper()
	m, err := core.CompileStrings(patterns, core.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// The satellite round trip: compile → Save → registry load → scan →
// swap to a second artifact → scan again. Both generations must report
// exactly what a freshly compiled matcher reports.
func TestArtifactHotSwapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pathA := saveArtifact(t, dir, "a.cms", []string{"alpha", "omega"})
	pathB := saveArtifact(t, dir, "b.cms", []string{"beta", "omega"})

	r := New(pathA, ArtifactLoader(pathA))
	if r.Current() != nil {
		t.Fatal("entry published before first Reload")
	}
	ea, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if ea.Generation != 1 || ea.Source != pathA {
		t.Fatalf("bad first entry: %+v", ea)
	}

	probe := []byte("xx ALPHA yy beta zz omega")
	wantA, err := mustCompile(t, []string{"alpha", "omega"}).FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	gotA, err := ea.Matcher.FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatalf("loaded matcher diverged: %v vs %v", gotA, wantA)
	}

	eb, err := r.Retarget(pathB, ArtifactLoader(pathB))
	if err != nil {
		t.Fatal(err)
	}
	if eb.Generation != 2 || r.Current() != eb {
		t.Fatalf("swap not published: %+v", eb)
	}
	wantB, err := mustCompile(t, []string{"beta", "omega"}).FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := eb.Matcher.FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("swapped matcher diverged: %v vs %v", gotB, wantB)
	}
	// RCU: the old entry keeps scanning correctly after the swap.
	gotA2, err := ea.Matcher.FindAll(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA2, wantA) {
		t.Fatal("pre-swap entry no longer scans correctly")
	}
	if ok, failed := r.Reloads(); ok != 2 || failed != 0 {
		t.Fatalf("reload counters: ok=%d failed=%d", ok, failed)
	}
}

func mustCompile(t *testing.T, patterns []string) *core.Matcher {
	t.Helper()
	m, err := core.CompileStrings(patterns, core.Options{CaseFold: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A failed reload (corrupt artifact, missing file) must leave the live
// entry untouched.
func TestFailedReloadKeepsCurrent(t *testing.T) {
	dir := t.TempDir()
	path := saveArtifact(t, dir, "good.cms", []string{"alpha"})
	r := New(path, ArtifactLoader(path))
	e1, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the artifact in place.
	if err := os.WriteFile(path, []byte("garbage, not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reload(); err == nil {
		t.Fatal("corrupt reload accepted")
	}
	if r.Current() != e1 {
		t.Fatal("failed reload displaced the live entry")
	}
	// Retarget to a missing path: loader and source must roll back.
	if _, err := r.Retarget(filepath.Join(dir, "missing.cms"), ArtifactLoader(filepath.Join(dir, "missing.cms"))); err == nil {
		t.Fatal("retarget to missing path accepted")
	}
	if _, src := r.watchState(); src != path {
		t.Fatalf("source not rolled back: %s", src)
	}
	if ok, failed := r.Reloads(); ok != 1 || failed != 2 {
		t.Fatalf("reload counters: ok=%d failed=%d", ok, failed)
	}
}

func TestDictLoaderAndParse(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dict.txt")
	content := "# signatures\nvirus\n\n  worm  \n#skip\ntrojan\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(path, DictLoader(path, core.Options{CaseFold: true}))
	e, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n := e.Matcher.NumPatterns(); n != 3 {
		t.Fatalf("parsed %d patterns, want 3", n)
	}
	hits, err := e.Matcher.FindAll([]byte("a WORM and a trojan"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	// Comments-only parses to zero patterns (the caller's call), and
	// DictLoader refuses to serve an empty dictionary.
	pats, err := ParsePatterns(strings.NewReader("# only comments\n\n"))
	if err != nil || len(pats) != 0 {
		t.Fatalf("comments-only parse: %v, %d patterns", err, len(pats))
	}
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DictLoader(empty, core.Options{})(); err == nil {
		t.Fatal("empty dictionary served")
	}
}

func TestRegexLoader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "exprs.txt")
	content := "# expressions\nerr(or)?\n\n  [0-9]{3}  \n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(path, RegexLoader(path, core.Options{}))
	e, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n := e.Matcher.NumPatterns(); n != 2 {
		t.Fatalf("parsed %d expressions, want 2", n)
	}
	if !e.Matcher.IsRegex() {
		t.Fatal("loaded matcher not flagged regex")
	}
	hits, err := e.Matcher.FindAll([]byte("an error code 404"))
	if err != nil {
		t.Fatal(err)
	}
	// "err" at 6, "error" at 8, "404" at 17.
	if len(hits) != 3 {
		t.Fatalf("got %d hits, want 3: %+v", len(hits), hits)
	}
	// Empty and unbounded expression files are refused, keeping the
	// previous generation live on hot reload.
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RegexLoader(empty, core.Options{})(); err == nil {
		t.Fatal("empty expression file served")
	}
	unbounded := filepath.Join(dir, "unbounded.txt")
	if err := os.WriteFile(unbounded, []byte("a+\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RegexLoader(unbounded, core.Options{})(); err == nil {
		t.Fatal("unbounded expression served")
	}
}

// Regression: a same-second atomic replace (write temp, rename over
// the source) can leave mtime and size both identical to the previous
// file — mtime because the filesystem's timestamp granularity (or a
// deliberate Chtimes, as build tools do) collides, size because the
// dictionaries happen to be the same length. Only the inode changes,
// and Watch must still detect it.
func TestWatchDetectsSameSecondSameSizeReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dict.txt")
	// Same byte length, different content.
	oldContent, newContent := "virus\nworms\n", "virus\ntroja\n"
	if err := os.WriteFile(path, []byte(oldContent), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(path, DictLoader(path, core.Options{CaseFold: true}))
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	base, _ := r.watchState()
	if base.ino == 0 {
		t.Skip("platform exposes no inode; (mtime,size) detection only")
	}

	// Atomic replace with pinned mtime: the classic Watch blind spot.
	tmp := filepath.Join(dir, "dict.txt.tmp")
	if err := os.WriteFile(tmp, []byte(newContent), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(tmp, base.mod, base.mod); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	now := identityOf(fi)
	if !now.mod.Equal(base.mod) || now.size != base.size {
		t.Fatalf("replace was not mtime/size-identical: %+v vs %+v", now, base)
	}
	if now.equal(base) {
		t.Fatal("identity unchanged across rename: inode not captured")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Watch(ctx, 5*time.Millisecond, nil)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for r.Current().Generation < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watch never detected the same-second same-size replace")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	hits, err := r.Current().Matcher.FindAll([]byte("a TROJA rides in"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("new dictionary not live: %d hits", len(hits))
	}
}

// Hot-swapping from a kernel-tier dictionary to one running the
// sharded tier must publish cleanly, with the old entry still
// scannable — the shard-aware reload path of the serving stack.
func TestHotSwapToShardedMatcher(t *testing.T) {
	dir := t.TempDir()
	small := mustCompile(t, []string{"alpha", "omega"})
	big, err := core.CompileStrings(
		[]string{"aaaaaaaa", "bbbbbbbb", "cccccccc", "dddddddd", "eeeeeeee"},
		core.Options{Engine: core.EngineOptions{MaxTableBytes: 1 << 10, Compressed: core.CompressedOff}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := big.EngineName(); got != "sharded" {
		t.Fatalf("fixture engine = %q, want sharded", got)
	}
	path := filepath.Join(dir, "sharded.cms")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewWithMatcher(small, "inline")
	old := r.Current()
	e, err := r.Retarget(path, ArtifactLoader(path))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Matcher.EngineName(); got != "sharded" {
		t.Fatalf("swapped-in engine = %q, want sharded (V3 artifact must carry MaxShards)", got)
	}
	if st := e.Matcher.Stats(); st.Shards < 2 {
		t.Fatalf("swapped-in stats: %+v", st)
	}
	hits, err := e.Matcher.FindAll([]byte("xxaaaaaaaayy"))
	if err != nil || len(hits) != 1 {
		t.Fatalf("sharded entry does not scan: %d hits, %v", len(hits), err)
	}
	// RCU: the displaced kernel-tier entry keeps working.
	if hits, err := old.Matcher.FindAll([]byte("alpha")); err != nil || len(hits) != 1 {
		t.Fatalf("old entry broken after swap: %d hits, %v", len(hits), err)
	}
}

// Watch must pick up a rewritten artifact and publish a new
// generation; an in-place corruption must not displace the live entry.
func TestWatchReloadsOnChange(t *testing.T) {
	dir := t.TempDir()
	path := saveArtifact(t, dir, "live.cms", []string{"alpha"})
	r := New(path, ArtifactLoader(path))
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := make(chan error, 16)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		r.Watch(ctx, 5*time.Millisecond, func(_ *Entry, err error) { events <- err })
	}()

	// Replace the artifact with a different dictionary. Watch's
	// baseline stat races with the first rewrite (it may already see
	// the new file), so keep rewriting — each write bumps the mtime —
	// until a reload lands.
	deadline := time.After(10 * time.Second)
	for r.Current().Generation < 2 {
		saveArtifact(t, dir, "live.cms", []string{"beta", "gamma", "delta"})
		select {
		case err := <-events:
			if err != nil {
				// A poll can catch the file mid-write; the registry keeps
				// the old entry and retries on the next mtime change —
				// transient by design, so keep rewriting.
				t.Logf("transient reload failure (expected under write races): %v", err)
			}
		case <-deadline:
			t.Fatal("watch never reloaded")
		case <-time.After(20 * time.Millisecond):
		}
	}
	e := r.Current()
	if e.Generation < 2 || e.Matcher.NumPatterns() != 3 {
		t.Fatalf("watch published wrong entry: gen=%d patterns=%d", e.Generation, e.Matcher.NumPatterns())
	}
	cancel()
	wg.Wait()
}
