// Package report formats experiment output in the paper's style:
// fixed-width tables for Table 1 and labeled data series for the
// figures, plus ASCII timelines for the Figure 5/8 schedules.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table writer.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// Series is a labeled (x, y) sequence for figure regeneration.
type Series struct {
	Label  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Write renders the series as gnuplot-style columns.
func (s *Series) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s vs %s\n", s.Label, s.YLabel, s.XLabel); err != nil {
		return err
	}
	for i := range s.X {
		if _, err := fmt.Fprintf(w, "%g\t%g\n", s.X[i], s.Y[i]); err != nil {
			return err
		}
	}
	return nil
}

// TimelineEntry is one bar of an ASCII schedule rendering.
type TimelineEntry struct {
	Lane  string // e.g. "compute", "dma"
	Label string
	Start float64 // microseconds
	End   float64
}

// WriteTimeline renders entries as a two-lane schedule like the
// paper's Figures 5 and 8.
func WriteTimeline(w io.Writer, entries []TimelineEntry) error {
	for _, e := range entries {
		lane := "CPU"
		if e.Lane == "dma" {
			lane = "DMA"
		}
		if _, err := fmt.Fprintf(w, "%s  %9.2fus - %9.2fus  %s (%.2fus)\n",
			lane, e.Start, e.End, e.Label, e.End-e.Start); err != nil {
			return err
		}
	}
	return nil
}
