package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("Version", "Cycles", "Gbps")
	tab.Row(1, 19.0, 1.35)
	tab.Row(4, 5.01, 5.11)
	var b strings.Builder
	if err := tab.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Version") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "19.00") || !strings.Contains(lines[3], "5.11") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestSeriesOutput(t *testing.T) {
	s := Series{Label: "fig9", XLabel: "kbytes", YLabel: "Gbps"}
	s.Add(95, 5.11)
	s.Add(190, 2.56)
	var b strings.Builder
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# fig9") || !strings.Contains(out, "95\t5.11") {
		t.Fatalf("series output:\n%s", out)
	}
}

func TestTimeline(t *testing.T) {
	var b strings.Builder
	err := WriteTimeline(&b, []TimelineEntry{
		{Lane: "dma", Label: "load buffer 0", Start: 0, End: 5.94},
		{Lane: "compute", Label: "process buffer 0", Start: 5.94, End: 31.58},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "DMA") || !strings.Contains(out, "CPU") {
		t.Fatalf("timeline lanes missing:\n%s", out)
	}
	if !strings.Contains(out, "5.94") {
		t.Fatalf("times missing:\n%s", out)
	}
}
