package server

import (
	"net/http"
	"sync/atomic"
)

// admission is the scan-path load shedder: a fixed budget of
// concurrent requests and admitted body bytes, checked before any
// work is done for a request. Over budget, the request is refused
// with 429 + Retry-After instead of joining the pool's queue — the
// pool's full-queue fallback degrades every request to inline
// scanning, which under sustained overload turns into unbounded
// goroutine latency; shedding keeps the admitted requests at line
// rate and pushes the excess back to the clients, the fixed-compute
// provisioning the paper's sustained line-rate story assumes.
//
// The gauges are maintained even when no budget is configured (both
// maxima <= 0, shedding disabled) so /metrics always reports queue
// depth.
type admission struct {
	maxInflight    int64 // concurrent scan requests; <=0 means unlimited
	maxQueuedBytes int64 // admitted request bytes in flight; <=0 means unlimited

	inflight    atomic.Int64
	queuedBytes atomic.Int64
	peak        atomic.Int64  // high-water inflight mark since start
	shed        atomic.Uint64 // requests refused with 429
}

// admit reserves a request slot plus bytes of body budget, or refuses
// (false) and counts the shed. Callers must release exactly what they
// admitted.
func (a *admission) admit(bytes int64) bool {
	in := a.inflight.Add(1)
	q := a.queuedBytes.Add(bytes)
	if (a.maxInflight > 0 && in > a.maxInflight) ||
		(a.maxQueuedBytes > 0 && q > a.maxQueuedBytes) {
		a.inflight.Add(-1)
		a.queuedBytes.Add(-bytes)
		a.shed.Add(1)
		return false
	}
	for {
		p := a.peak.Load()
		if in <= p || a.peak.CompareAndSwap(p, in) {
			return true
		}
	}
}

func (a *admission) release(bytes int64) {
	a.inflight.Add(-1)
	a.queuedBytes.Add(-bytes)
}

// admitted wraps a scan handler with the admission check. The byte
// reservation uses the declared Content-Length (0 when unknown, e.g. a
// chunked /scan/stream upload — those are bounded by the inflight
// budget alone).
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hint := r.ContentLength
		if hint < 0 {
			hint = 0
		}
		if !s.adm.admit(hint) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: admission budget exceeded, retry later",
				http.StatusTooManyRequests)
			return
		}
		defer s.adm.release(hint)
		h(w, r)
	}
}
