package server

import (
	"errors"
	"io"
	"net/http"
	"sync/atomic"
)

// admission is the scan-path load shedder: a fixed budget of
// concurrent requests and admitted body bytes, checked before any
// work is done for a request. Over budget, the request is refused
// with 429 + Retry-After instead of joining the pool's queue — the
// pool's full-queue fallback degrades every request to inline
// scanning, which under sustained overload turns into unbounded
// goroutine latency; shedding keeps the admitted requests at line
// rate and pushes the excess back to the clients, the fixed-compute
// provisioning the paper's sustained line-rate story assumes.
//
// The gauges are maintained even when no budget is configured (both
// maxima <= 0, shedding disabled) so /metrics always reports queue
// depth.
type admission struct {
	maxInflight    int64 // concurrent scan requests; <=0 means unlimited
	maxQueuedBytes int64 // admitted request bytes in flight; <=0 means unlimited

	inflight    atomic.Int64
	queuedBytes atomic.Int64
	peak        atomic.Int64  // high-water inflight mark since start
	shed        atomic.Uint64 // requests refused with 429
}

// admit reserves a request slot plus bytes of body budget, or refuses
// (false) and counts the shed. Callers must release exactly what they
// admitted.
func (a *admission) admit(bytes int64) bool {
	in := a.inflight.Add(1)
	q := a.queuedBytes.Add(bytes)
	if (a.maxInflight > 0 && in > a.maxInflight) ||
		(a.maxQueuedBytes > 0 && q > a.maxQueuedBytes) {
		a.inflight.Add(-1)
		a.queuedBytes.Add(-bytes)
		a.shed.Add(1)
		return false
	}
	for {
		p := a.peak.Load()
		if in <= p || a.peak.CompareAndSwap(p, in) {
			return true
		}
	}
}

func (a *admission) release(bytes int64) {
	a.inflight.Add(-1)
	a.queuedBytes.Add(-bytes)
}

// reserveBytes admits n more body bytes mid-request — the metering
// path for bodies with no declared Content-Length, whose size is only
// discovered as the stream is read. Over budget, the reservation is
// rolled back and counted as a shed.
func (a *admission) reserveBytes(n int64) bool {
	q := a.queuedBytes.Add(n)
	if a.maxQueuedBytes > 0 && q > a.maxQueuedBytes {
		a.queuedBytes.Add(-n)
		a.shed.Add(1)
		return false
	}
	return true
}

func (a *admission) releaseBytes(n int64) {
	a.queuedBytes.Add(-n)
}

// errOverBudget is the mid-stream shed signal: a read on a metered
// body pushed the admitted-bytes gauge past MaxQueuedBytes. Handlers
// classify it as 429 + Retry-After, like an up-front admission refusal.
var errOverBudget = errors.New("overloaded: admitted byte budget exceeded mid-stream, retry later")

// meteredBody wraps a body of undeclared length (chunked upload) and
// charges every byte actually read against the admission byte budget.
// Once a read overflows the budget the body is dead: that read and
// every later one fail with errOverBudget (the overflowing bytes are
// not charged — reserveBytes rolled them back).
type meteredBody struct {
	r        io.ReadCloser
	adm      *admission
	reserved int64
	dead     bool
}

func (b *meteredBody) Read(p []byte) (int, error) {
	if b.dead {
		return 0, errOverBudget
	}
	n, err := b.r.Read(p)
	if n > 0 {
		if !b.adm.reserveBytes(int64(n)) {
			b.dead = true
			return n, errOverBudget
		}
		b.reserved += int64(n)
	}
	return n, err
}

func (b *meteredBody) Close() error { return b.r.Close() }

// admitted wraps a scan handler with the admission check. The byte
// reservation uses the declared Content-Length; a body of unknown
// length (chunked /scan/stream upload, ContentLength -1) reserves
// nothing up front and is instead metered as it is read, so a
// long-running stream cannot slip an unbounded body past
// MaxQueuedBytes — it sheds mid-flight with 429 the moment its actual
// bytes overflow the budget.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hint := r.ContentLength
		if hint < 0 {
			hint = 0
		}
		if !s.adm.admit(hint) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded: admission budget exceeded, retry later",
				http.StatusTooManyRequests)
			return
		}
		defer s.adm.release(hint)
		if r.ContentLength < 0 && s.adm.maxQueuedBytes > 0 {
			mb := &meteredBody{r: r.Body, adm: &s.adm}
			r.Body = mb
			defer func() { s.adm.releaseBytes(mb.reserved) }()
		}
		h(w, r)
	}
}
