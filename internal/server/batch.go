package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
)

// counters are the service-level request/byte/match totals /stats
// reports.
type counters struct {
	requests atomic.Uint64
	bytes    atomic.Uint64
	matches  atomic.Uint64
}

func (c *counters) scan(n, m int) {
	c.requests.Add(1)
	c.bytes.Add(uint64(n))
	c.matches.Add(uint64(m))
}

// batcher coalesces /scan/batch payloads arriving from many concurrent
// HTTP handlers into grouped kernel passes: the first payload opens a
// batch, the collector lingers briefly for more, and the whole group
// is scanned as one FindAllBatch task set on the shared pool — one
// fan-out for N requests instead of N. Payloads that captured
// different registry entries (a reload landed between them) are split
// into per-entry groups, so no request is ever scanned against a
// dictionary it didn't observe.
type batcher struct {
	in     chan *batchReq
	done   chan struct{}
	wg     sync.WaitGroup
	max    int
	linger time.Duration
	scan   func(*registry.Entry, [][]byte) ([][]core.Match, error)

	closeOnce sync.Once
	batches   atomic.Uint64 // coalesced passes executed
	payloads  atomic.Uint64 // payloads scanned through batches
}

type batchReq struct {
	entry *registry.Entry
	data  []byte
	resp  chan batchResult
}

type batchResult struct {
	matches []core.Match
	err     error
}

func newBatcher(max int, linger time.Duration, scan func(*registry.Entry, [][]byte) ([][]core.Match, error)) *batcher {
	b := &batcher{
		in:     make(chan *batchReq, max),
		done:   make(chan struct{}),
		max:    max,
		linger: linger,
		scan:   scan,
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// submit enqueues one payload and blocks until its batch is scanned.
func (b *batcher) submit(e *registry.Entry, data []byte) ([]core.Match, error) {
	req := &batchReq{entry: e, data: data, resp: make(chan batchResult, 1)}
	select {
	case b.in <- req:
	case <-b.done:
		return nil, fmt.Errorf("server: shutting down")
	}
	select {
	case res := <-req.resp:
		return res.matches, res.err
	case <-b.done:
		// The collector may have exited before dequeuing us (the send
		// raced close); resp is buffered, so a result that did land is
		// still collectable.
		select {
		case res := <-req.resp:
			return res.matches, res.err
		default:
			return nil, fmt.Errorf("server: shutting down")
		}
	}
}

// stats reports (batches executed, payloads batched).
func (b *batcher) stats() (uint64, uint64) {
	return b.batches.Load(), b.payloads.Load()
}

// close stops the collector; queued requests are failed, not dropped.
func (b *batcher) close() {
	b.closeOnce.Do(func() { close(b.done) })
	b.wg.Wait()
}

func (b *batcher) run() {
	defer b.wg.Done()
	for {
		var first *batchReq
		select {
		case first = <-b.in:
		case <-b.done:
			b.drain()
			return
		}
		reqs := b.collect(first)
		b.flush(reqs)
	}
}

// collect gathers up to max payloads, waiting at most linger after the
// first.
func (b *batcher) collect(first *batchReq) []*batchReq {
	reqs := []*batchReq{first}
	timer := time.NewTimer(b.linger)
	defer timer.Stop()
	for len(reqs) < b.max {
		select {
		case r := <-b.in:
			reqs = append(reqs, r)
		case <-timer.C:
			return reqs
		case <-b.done:
			return reqs
		}
	}
	return reqs
}

// flush groups the batch by captured registry entry and runs one
// coalesced scan per group, delivering per-payload results.
func (b *batcher) flush(reqs []*batchReq) {
	groups := make(map[*registry.Entry][]*batchReq)
	var order []*registry.Entry
	for _, r := range reqs {
		if _, ok := groups[r.entry]; !ok {
			order = append(order, r.entry)
		}
		groups[r.entry] = append(groups[r.entry], r)
	}
	for _, e := range order {
		group := groups[e]
		payloads := make([][]byte, len(group))
		for i, r := range group {
			payloads[i] = r.data
		}
		results, err := b.scan(e, payloads)
		b.batches.Add(1)
		b.payloads.Add(uint64(len(group)))
		for i, r := range group {
			if err != nil {
				r.resp <- batchResult{err: err}
				continue
			}
			r.resp <- batchResult{matches: results[i]}
		}
	}
}

// drain fails any requests that raced shutdown.
func (b *batcher) drain() {
	for {
		select {
		case r := <-b.in:
			r.resp <- batchResult{err: fmt.Errorf("server: shutting down")}
		default:
			return
		}
	}
}
