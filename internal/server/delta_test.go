package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cellmatch/internal/core"
)

func postReload(t *testing.T, url string) (ReloadResponse, int) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var rr ReloadResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatalf("bad reload JSON: %v: %s", err, raw)
		}
	}
	return rr, resp.StatusCode
}

func writeDictFile(t *testing.T, path string, lines []string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// The /reload?mode=delta path end to end: retarget onto a dict file,
// patch it with an appended pattern, short-circuit an order-only
// rewrite, and watch the accounting land in /stats and /metrics.
func TestReloadModeDelta(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"placeholder"}, Config{})
	dir := t.TempDir()
	dict := filepath.Join(dir, "dict.txt")
	writeDictFile(t, dict, []string{"virus", "worm", "trojan"})

	// Delta retarget onto the dict source: first load is a cold build.
	rr, code := postReload(t, ts.URL+"/reload?mode=delta&format=dict&path="+dict)
	if code != http.StatusOK {
		t.Fatalf("delta retarget: %d", code)
	}
	if rr.Outcome != "rebuilt" || rr.Patterns != 3 {
		t.Fatalf("first delta load: %+v", rr)
	}
	gen := rr.Generation

	// Append a pattern: the reload must patch and publish a new
	// generation, and the scan surface must serve the new pattern.
	writeDictFile(t, dict, []string{"virus", "worm", "trojan", "rootkit"})
	rr, code = postReload(t, ts.URL+"/reload?mode=delta&format=dict&path="+dict)
	if code != http.StatusOK {
		t.Fatalf("delta append: %d", code)
	}
	if rr.Outcome == "unchanged" || rr.Generation != gen+1 || rr.Patterns != 4 {
		t.Fatalf("delta append: %+v", rr)
	}
	sr := postScan(t, ts.URL+"/scan", []byte("xx rootkit yy virus"))
	if sr.Count != 2 {
		t.Fatalf("scan after delta append found %d matches", sr.Count)
	}

	// Rewrite the same set in a different order: unchanged, same
	// generation, no swap.
	writeDictFile(t, dict, []string{"rootkit", "trojan", "worm", "virus"})
	rr, code = postReload(t, ts.URL+"/reload?mode=delta&format=dict&path="+dict)
	if code != http.StatusOK {
		t.Fatalf("delta reorder: %d", code)
	}
	if rr.Outcome != "unchanged" || rr.Generation != gen+1 {
		t.Fatalf("delta reorder: %+v", rr)
	}

	st := getStats(t, ts.URL+"/stats")
	if st.ReloadsUnchanged != 1 {
		t.Fatalf("stats reloads_unchanged = %d", st.ReloadsUnchanged)
	}
	if st.ReloadsPatched == 0 && rr.Outcome != "unchanged" {
		t.Fatalf("stats reloads_patched = %d", st.ReloadsPatched)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `cellmatch_reloads_delta_total{tenant="default",mode="unchanged"} 1`) {
		t.Fatalf("metrics missing delta reload counter:\n%s", body)
	}
}

// mode=delta against a pre-compiled artifact has nothing to patch and
// must refuse with 422, leaving the live dictionary untouched.
func TestReloadModeDeltaArtifactRejected(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"alpha"}, Config{})
	dir := t.TempDir()
	art := filepath.Join(dir, "a.cms")
	m, err := core.CompileStrings([]string{"beta"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, code := postReload(t, ts.URL+"/reload?mode=delta&path="+art)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("delta artifact: %d, want 422", code)
	}
	_, code = postReload(t, ts.URL+"/reload?mode=delta&format=artifact&path="+art)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("delta format=artifact: %d, want 422", code)
	}
	_, code = postReload(t, ts.URL+"/reload?mode=bogus&path="+art)
	if code != http.StatusBadRequest {
		t.Fatalf("bogus mode: %d, want 400", code)
	}
	// Still serving the original dictionary.
	sr := postScan(t, ts.URL+"/scan", []byte("xx alpha yy"))
	if sr.Count != 1 {
		t.Fatalf("original dictionary gone after rejected reloads: %+v", sr)
	}
}

// Concurrent /scan traffic must flow uninterrupted while delta reloads
// patch and swap the dictionary underneath it.
func TestDeltaReloadDoesNotBlockScans(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"placeholder"}, Config{})
	dir := t.TempDir()
	dict := filepath.Join(dir, "dict.txt")
	lines := []string{"virus", "worm", "trojan", "rootkit", "exploit"}
	writeDictFile(t, dict, lines)
	if _, code := postReload(t, ts.URL+"/reload?mode=delta&format=dict&path="+dict); code != http.StatusOK {
		t.Fatalf("initial delta retarget: %d", code)
	}

	stop := make(chan struct{})
	var scanned atomic.Uint64
	var failed atomic.Value
	var wg sync.WaitGroup
	payload := []byte(strings.Repeat("xx virus yy worm zz ", 200))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/scan?count=1", "application/octet-stream", bytes.NewReader(payload))
				if err != nil {
					failed.Store(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Store(err)
					return
				}
				scanned.Add(1)
			}
		}()
	}
	cur := append([]string{}, lines...)
	for i := 0; i < 8; i++ {
		cur = append(cur, "sig"+string(rune('a'+i))+"x")
		writeDictFile(t, dict, cur)
		if _, code := postReload(t, ts.URL+"/reload?mode=delta&format=dict&path="+dict); code != http.StatusOK {
			t.Fatalf("delta reload %d failed: %d", i, code)
		}
	}
	close(stop)
	wg.Wait()
	if err := failed.Load(); err != nil {
		t.Fatalf("scan failed during delta reloads: %v", err)
	}
	if scanned.Load() == 0 {
		t.Fatal("no scans completed during reload churn")
	}
}

// Pathless mode=full must force a cold rebuild even when the installed
// loader is delta-aware: a reorder-only rewrite that mode=delta (and
// the bare reload) would short-circuit still publishes a new
// generation with pattern ids in file order — the documented escape
// hatch from the unchanged short-circuit.
func TestReloadModeFullForcesRebuild(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"placeholder"}, Config{})
	dir := t.TempDir()
	dict := filepath.Join(dir, "dict.txt")
	writeDictFile(t, dict, []string{"virus", "worm"})

	rr, code := postReload(t, ts.URL+"/reload?mode=delta&format=dict&path="+dict)
	if code != http.StatusOK {
		t.Fatalf("delta retarget: %d", code)
	}
	gen := rr.Generation

	// Reorder only: the bare delta reload short-circuits.
	writeDictFile(t, dict, []string{"worm", "virus"})
	rr, code = postReload(t, ts.URL+"/reload")
	if code != http.StatusOK || rr.Outcome != "unchanged" || rr.Generation != gen {
		t.Fatalf("bare reload after reorder: code=%d %+v", code, rr)
	}

	// mode=full on the same state must rebuild and bump the generation,
	// and the published matcher must use file order: "worm" is now
	// pattern 0.
	rr, code = postReload(t, ts.URL+"/reload?mode=full")
	if code != http.StatusOK {
		t.Fatalf("full reload: %d", code)
	}
	if rr.Outcome != "rebuilt" || rr.Generation != gen+1 {
		t.Fatalf("full reload did not force a rebuild: %+v", rr)
	}
	sr := postScan(t, ts.URL+"/scan", []byte("a worm"))
	if sr.Count != 1 || len(sr.Matches) != 1 || sr.Matches[0].Pattern != 0 {
		t.Fatalf("full reload did not publish file-order ids: %+v", sr)
	}
}
