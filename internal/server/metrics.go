package server

import (
	"fmt"
	"net/http"
	"time"
)

// handleMetrics serves the Prometheus text exposition (version 0.0.4):
// the same counters /stats reports as JSON, shaped for scraping —
// service totals per tenant, batch coalescing, reload outcomes, the
// admission gauges, and each tenant's live dictionary generation. All
// sources are atomics or RCU reads; scraping never contends with the
// scan path.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	metric := func(name, help, typ string, emit func()) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		emit()
		fmt.Fprintln(w)
	}
	perTenant := func(name string, value func(*tenantState) any) func() {
		return func() {
			for _, tn := range s.tenantNames {
				fmt.Fprintf(w, "%s{tenant=%q} %v\n", name, tn, value(s.tenants[tn]))
			}
		}
	}

	metric("cellmatch_uptime_seconds", "Seconds since the server started.", "gauge", func() {
		fmt.Fprintf(w, "cellmatch_uptime_seconds %.3f\n", time.Since(s.started).Seconds())
	})
	metric("cellmatch_pool_workers", "Shared scan pool size.", "gauge", func() {
		fmt.Fprintf(w, "cellmatch_pool_workers %d\n", s.pool.Workers())
	})

	metric("cellmatch_requests_total", "Scan requests served, by tenant.", "counter",
		perTenant("cellmatch_requests_total", func(t *tenantState) any { return t.counters.requests.Load() }))
	metric("cellmatch_bytes_scanned_total", "Payload bytes scanned, by tenant.", "counter",
		perTenant("cellmatch_bytes_scanned_total", func(t *tenantState) any { return t.counters.bytes.Load() }))
	metric("cellmatch_matches_total", "Dictionary matches reported, by tenant.", "counter",
		perTenant("cellmatch_matches_total", func(t *tenantState) any { return t.counters.matches.Load() }))
	metric("cellmatch_dictionary_generation", "Live dictionary generation, by tenant (0 = none loaded).", "gauge",
		perTenant("cellmatch_dictionary_generation", func(t *tenantState) any {
			if e := t.reg.Current(); e != nil {
				return e.Generation
			}
			return 0
		}))
	metric("cellmatch_reloads_total", "Dictionary reload attempts, by tenant and result.", "counter", func() {
		for _, tn := range s.tenantNames {
			ok, failed := s.tenants[tn].reg.Reloads()
			fmt.Fprintf(w, "cellmatch_reloads_total{tenant=%q,result=\"ok\"} %d\n", tn, ok)
			fmt.Fprintf(w, "cellmatch_reloads_total{tenant=%q,result=\"failed\"} %d\n", tn, failed)
		}
	})
	metric("cellmatch_reloads_delta_total", "Delta-aware reload outcomes, by tenant and mode: patched (incremental recompile reused compiled units) or unchanged (pattern set identical, swap skipped).", "counter", func() {
		for _, tn := range s.tenantNames {
			patched, unchanged := s.tenants[tn].reg.DeltaReloads()
			fmt.Fprintf(w, "cellmatch_reloads_delta_total{tenant=%q,mode=\"patched\"} %d\n", tn, patched)
			fmt.Fprintf(w, "cellmatch_reloads_delta_total{tenant=%q,mode=\"unchanged\"} %d\n", tn, unchanged)
		}
	})

	batches, payloads := s.batch.stats()
	metric("cellmatch_batches_total", "Coalesced /scan/batch kernel passes executed.", "counter", func() {
		fmt.Fprintf(w, "cellmatch_batches_total %d\n", batches)
	})
	metric("cellmatch_batch_payloads_total", "Payloads scanned through coalesced batches.", "counter", func() {
		fmt.Fprintf(w, "cellmatch_batch_payloads_total %d\n", payloads)
	})

	metric("cellmatch_inflight_requests", "Scan requests currently admitted.", "gauge", func() {
		fmt.Fprintf(w, "cellmatch_inflight_requests %d\n", s.adm.inflight.Load())
	})
	metric("cellmatch_inflight_requests_peak", "High-water mark of admitted concurrent scan requests.", "gauge", func() {
		fmt.Fprintf(w, "cellmatch_inflight_requests_peak %d\n", s.adm.peak.Load())
	})
	metric("cellmatch_queued_bytes", "Declared body bytes of admitted in-flight scan requests.", "gauge", func() {
		fmt.Fprintf(w, "cellmatch_queued_bytes %d\n", s.adm.queuedBytes.Load())
	})
	metric("cellmatch_requests_shed_total", "Scan requests refused with 429 by admission control.", "counter", func() {
		fmt.Fprintf(w, "cellmatch_requests_shed_total %d\n", s.adm.shed.Load())
	})
}
