package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"cellmatch/internal/core"
	"cellmatch/internal/registry"
)

// newRegexTestServer serves a compiled regex dictionary over httptest.
func newRegexTestServer(t *testing.T, exprs []string, cfg Config) (*httptest.Server, *registry.Registry, *core.Matcher) {
	t.Helper()
	m, err := core.CompileRegexSearch(exprs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.NewWithMatcher(m, "inline-regex")
	cfg.Registry = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, reg, m
}

// TestRegexDictionaryServing drives a regex dictionary through every
// scan endpoint: the responses must flag the dictionary kind, report
// Start=-1 (match lengths vary), carry the expression source as Text,
// and agree with the library-level scan match-for-match.
func TestRegexDictionaryServing(t *testing.T) {
	exprs := []string{"err(or)?", "[0-9]{3}"}
	ts, _, m := newRegexTestServer(t, exprs, Config{})
	payload := []byte("an error code 404 err and 007 too")
	want, err := m.FindAll(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture matches nothing")
	}

	for _, mode := range []string{"pool", "seq", "adhoc"} {
		sr := postScan(t, ts.URL+"/scan?mode="+mode, payload)
		if !sr.Regex {
			t.Fatalf("mode %s: response not flagged regex", mode)
		}
		if sr.Filter {
			t.Fatalf("mode %s: filter reported live on a regex dictionary", mode)
		}
		if sr.Count != len(want) {
			t.Fatalf("mode %s: count %d, want %d", mode, sr.Count, len(want))
		}
		for i, mj := range sr.Matches {
			if mj.Pattern != want[i].Pattern || mj.End != want[i].End {
				t.Fatalf("mode %s: match %d = %+v, want %+v", mode, i, mj, want[i])
			}
			if mj.Start != -1 {
				t.Fatalf("mode %s: match %d Start = %d, want -1", mode, i, mj.Start)
			}
			if mj.Text != exprs[mj.Pattern] {
				t.Fatalf("mode %s: match %d Text = %q, want expression source %q",
					mode, i, mj.Text, exprs[mj.Pattern])
			}
		}
	}

	// Streaming and batch endpoints agree too.
	sr := postScan(t, ts.URL+"/scan/stream", payload)
	if !sr.Regex || sr.Count != len(want) {
		t.Fatalf("stream: regex=%v count=%d, want regex=true count=%d", sr.Regex, sr.Count, len(want))
	}
	sr = postScan(t, ts.URL+"/scan/batch", payload)
	if !sr.Regex || sr.Count != len(want) {
		t.Fatalf("batch: regex=%v count=%d, want regex=true count=%d", sr.Regex, sr.Count, len(want))
	}

	// /stats reports the dictionary kind.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Dictionary.Regex {
		t.Fatal("/stats does not flag the regex dictionary")
	}
}

// TestReloadRegexFormat hot-swaps a literal dictionary for a regex one
// via /reload?format=regex and back via format=dict, checking the
// reload response and subsequent scans track the dictionary kind.
func TestReloadRegexFormat(t *testing.T) {
	ts, _, _ := newTestServer(t, []string{"virus"}, Config{})
	dir := t.TempDir()

	rxPath := filepath.Join(dir, "exprs.txt")
	if err := os.WriteFile(rxPath, []byte("# demo\nerr(or)?\n[0-9]{3}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/reload?format=regex&path="+rxPath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload regex: %d: %s", resp.StatusCode, raw)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Regex || rr.Patterns != 2 {
		t.Fatalf("reload response %+v, want regex with 2 patterns", rr)
	}
	sr := postScan(t, ts.URL+"/scan", []byte("error 404"))
	if !sr.Regex || sr.Count == 0 {
		t.Fatalf("post-swap scan: regex=%v count=%d", sr.Regex, sr.Count)
	}

	// An invalid regex file must fail the reload and keep serving the
	// regex generation.
	badPath := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badPath, []byte("a*\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/reload?format=regex&path="+badPath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unbounded regex reload: status %d, want 422", resp.StatusCode)
	}
	sr = postScan(t, ts.URL+"/scan", []byte("error 404"))
	if !sr.Regex || sr.Generation != rr.Generation {
		t.Fatalf("failed reload disturbed serving: %+v", sr)
	}

	// Swap back to a literal dictionary.
	dictPath := filepath.Join(dir, "dict.txt")
	if err := os.WriteFile(dictPath, []byte("error\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/reload?format=dict&path="+dictPath, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload dict: status %d", resp.StatusCode)
	}
	sr = postScan(t, ts.URL+"/scan", []byte("error 404"))
	if sr.Regex {
		t.Fatal("literal dictionary still flagged regex")
	}
	if len(sr.Matches) != 1 || sr.Matches[0].Start != 0 {
		t.Fatalf("literal matches lost start offsets: %+v", sr.Matches)
	}
}

// TestRegexArtifactServing round-trips a regex matcher through a saved
// artifact and serves the loaded copy — the artifact path end to end.
func TestRegexArtifactServing(t *testing.T) {
	exprs := []string{"GET /[a-z]{1,8}", "[0-9]{3}"}
	m, err := core.CompileRegexSearch(exprs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	artPath := filepath.Join(dir, "regex.cms")
	f, err := os.Create(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := registry.New(artPath, registry.ArtifactLoader(artPath))
	if _, err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	payload := []byte("GET /index HTTP 200")
	want, err := m.FindAll(payload)
	if err != nil {
		t.Fatal(err)
	}
	sr := postScan(t, ts.URL+"/scan", payload)
	if !sr.Regex {
		t.Fatal("artifact-served dictionary not flagged regex")
	}
	if sr.Count != len(want) {
		t.Fatalf("count %d, want %d", sr.Count, len(want))
	}
	for i := range want {
		got := sr.Matches[i]
		if got.Pattern != want[i].Pattern || got.End != want[i].End || got.Start != -1 {
			t.Fatalf("match %d: %+v, want pattern=%d end=%d start=-1",
				i, got, want[i].Pattern, want[i].End)
		}
	}
}
